// util: stats, rng, units, table, csv, histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/arena.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/indexed_heap.hpp"
#include "util/pair_map.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mrl {
namespace {

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status s(ErrorCode::kInvalidArgument, "bad");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad");
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status(ErrorCode::kNotFound, "missing"));
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(median(v), 5.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 3.25);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Geomean, Basic) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsAreIndependentlySeeded) {
  Xoshiro256 a = Xoshiro256::for_stream(1, 0);
  Xoshiro256 b = Xoshiro256::for_stream(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 g(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g.uniform(10), 10u);
    const double u = g.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = g.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(bytes_per_us_to_gbs(32000.0, 1.0), 32.0);
  EXPECT_DOUBLE_EQ(gbs_to_us_per_byte(32.0) * 32e9, 1e6);
  EXPECT_NEAR(us_per_byte_to_gbs(gbs_to_us_per_byte(25.0)), 25.0, 1e-12);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(24), "24 B");
  EXPECT_EQ(format_bytes(131072), "128 KiB");
  EXPECT_EQ(format_bytes(2u << 20), "2 MiB");
  EXPECT_EQ(format_time_us(3.3), "3.30 us");
  EXPECT_EQ(format_time_us(1234.0), "1.23 ms");
  EXPECT_EQ(format_gbs(32.0), "32.00 GB/s");
  EXPECT_EQ(format_count(1000000), "1M");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"a", "bb"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"longer", "2"});
  const std::string out = t.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b,c"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n");
}

TEST(Csv, WriteToUnwritablePathSurfacesStatus) {
  const Status st = write_csv_file("/nonexistent-dir-for-msgroof/x.csv",
                                   {{"a", "b"}, {"1", "2"}});
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_NE(st.message().find("x.csv"), std::string::npos) << st.message();
}

TEST(Csv, WriteToValidPathSucceeds) {
  const std::string path =
      std::filesystem::temp_directory_path() / "msgroof_csv_test.csv";
  const Status st = write_csv_file(path, {{"h1", "h2"}, {"1", "2,3"}});
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "h1,h2\n1,\"2,3\"\n");
  std::filesystem::remove(path);
}

TEST(Histogram, BucketsPowersOfTwo) {
  Log2Histogram h;
  h.add(1);    // bucket 0
  h.add(3);    // bucket 1
  h.add(1024); // bucket 10
  h.add_n(1025, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 3u);
  EXPECT_EQ(h.min_bucket(), 0);
  EXPECT_EQ(h.max_bucket(), 10);
  EXPECT_NE(h.render("B").find("1024"), std::string::npos);
}

TEST(Histogram, BucketZeroLabelCoversZero) {
  // Bucket 0 absorbs everything in [0, 2) — including exact zeros — so its
  // label must not claim a lower edge of 1.
  EXPECT_EQ(Log2Histogram::bucket_label(0), "[0, 2)");
  EXPECT_EQ(Log2Histogram::bucket_label(1), "[2, 4)");
  EXPECT_EQ(Log2Histogram::bucket_label(10), "[1024, 2048)");
}

TEST(Histogram, ZeroValueLandsInBucketZero) {
  Log2Histogram h;
  h.add(0.0);
  h.add(0.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_NE(h.render().find("[0, 2)"), std::string::npos);
}

TEST(Histogram, RareBucketStillDrawsABar) {
  Log2Histogram h;
  h.add_n(1.0, 100000);
  h.add(1024.0);  // 1e-5 of the peak: proportional width rounds to 0
  const std::string out = h.render();
  std::istringstream is(out);
  std::string line;
  bool saw_rare = false;
  while (std::getline(is, line)) {
    if (line.find("[1024, 2048)") == std::string::npos) continue;
    saw_rare = true;
    EXPECT_NE(line.find('#'), std::string::npos)
        << "non-empty bucket rendered without a bar: " << line;
  }
  EXPECT_TRUE(saw_rare) << out;
}

TEST(Histogram, MergeAddsBucketwise) {
  Log2Histogram a, b;
  a.add_n(1.0, 3);
  a.add(100.0);
  b.add_n(1.0, 2);
  b.add(5000.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_EQ(a.bucket_count(0), 5u);
  EXPECT_EQ(a.bucket_count(6), 1u);   // 100 in [64, 128)
  EXPECT_EQ(a.bucket_count(12), 1u);  // 5000 in [4096, 8192)
  Log2Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 7u);
}

TEST(Stats, EmptyAccumulatorReportsNaN) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  // NaN, not 0: an empty accumulator must be distinguishable from one that
  // observed genuine zeros.
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(2.0);
  s.add(4.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Stats, PercentileRejectsNaNSample) {
  // Sorting a NaN-containing range is UB; the check must fire before sort.
  EXPECT_DEATH(
      percentile({1.0, std::numeric_limits<double>::quiet_NaN(), 3.0}, 50.0),
      "NaN");
}

TEST(Parse, I64AcceptsCanonicalIntegers) {
  EXPECT_EQ(parse_i64("42").value(), 42);
  EXPECT_EQ(parse_i64("-7").value(), -7);
  EXPECT_EQ(parse_i64("0").value(), 0);
}

TEST(Parse, I64RejectsGarbage) {
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("banana"));
  EXPECT_FALSE(parse_i64("12x"));   // atoi would return 12
  EXPECT_FALSE(parse_i64(" 42"));   // no leading whitespace
  EXPECT_FALSE(parse_i64("42 "));
  EXPECT_FALSE(parse_i64("4.2"));
  EXPECT_FALSE(parse_i64("0x10"));  // base 10 only
}

TEST(Parse, U64HandlesFullRangeAndBases) {
  EXPECT_EQ(parse_u64("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_EQ(parse_u64("0x10", 0).value(), 16u);
}

TEST(Parse, F64RejectsNonFiniteAndTrailingJunk) {
  EXPECT_DOUBLE_EQ(parse_f64("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_f64("1e3").value(), 1000.0);
  EXPECT_FALSE(parse_f64("nan"));
  EXPECT_FALSE(parse_f64("inf"));
  EXPECT_FALSE(parse_f64("1.5x"));
  EXPECT_FALSE(parse_f64(""));
}

TEST(Parse, CliIntEnforcesMinimum) {
  EXPECT_EQ(parse_cli_int("8", 1, "rank count").value(), 8);
  EXPECT_FALSE(parse_cli_int("0", 1, "rank count"));
  EXPECT_FALSE(parse_cli_int("banana", 1, "rank count"));
}

// ---------------------------------------------------------------------------
// IndexedMinHeap — the scheduler's ready queue (DESIGN.md §10)
// ---------------------------------------------------------------------------

TEST(IndexedMinHeap, PopsInKeyOrder) {
  util::IndexedMinHeap<double> h;
  h.reset(8);
  const double keys[8] = {5.0, 1.0, 7.0, 3.0, 0.5, 6.0, 2.0, 4.0};
  for (int id = 0; id < 8; ++id) h.push(id, keys[id]);
  EXPECT_EQ(h.size(), 8);
  double prev = -1.0;
  for (int i = 0; i < 8; ++i) {
    const int id = h.top();
    EXPECT_EQ(h.top_key(), keys[id]);
    EXPECT_GE(keys[id], prev);
    prev = keys[id];
    h.pop();
  }
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.top(), -1);
}

TEST(IndexedMinHeap, DuplicateKeysBreakTiesTowardLowestId) {
  // The engine's documented contract: at equal wake time the LOWEST rank id
  // runs first — the heap's top must equal what an ascending-id linear scan
  // would pick, including when every key is identical.
  util::IndexedMinHeap<double> h;
  h.reset(16);
  for (int id = 15; id >= 0; --id) h.push(id, 2.5);  // adversarial order
  for (int id = 0; id < 16; ++id) {
    EXPECT_EQ(h.top(), id);
    h.pop();
  }
}

TEST(IndexedMinHeap, UpdateMovesKeysBothWays) {
  util::IndexedMinHeap<int> h;
  h.reset(4);
  for (int id = 0; id < 4; ++id) h.push(id, 10 + id);
  EXPECT_EQ(h.top(), 0);
  h.update(3, 1);  // decrease-key: jumps to the front
  EXPECT_EQ(h.top(), 3);
  EXPECT_EQ(h.key_of(3), 1);
  h.update(3, 99);  // increase-key: sinks to the back
  EXPECT_EQ(h.top(), 0);
  h.update(0, 10);  // no-op update keeps position
  EXPECT_EQ(h.top(), 0);
}

TEST(IndexedMinHeap, EraseArbitraryIdAndReuse) {
  util::IndexedMinHeap<int> h;
  h.reset(6);
  for (int id = 0; id < 6; ++id) h.push(id, id);
  EXPECT_TRUE(h.contains(2));
  h.erase(2);
  EXPECT_FALSE(h.contains(2));
  EXPECT_EQ(h.size(), 5);
  h.push(2, -1);  // ids are reusable after erase
  EXPECT_EQ(h.top(), 2);
  h.reset(6);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(0));
}

TEST(IndexedMinHeap, MatchesLinearScanOracle) {
  // Randomized equivalence against the structure it replaced: a linear scan
  // picking the (key, id)-lexicographic minimum.
  util::IndexedMinHeap<std::uint64_t> h;
  const int n = 64;
  h.reset(n);
  SplitMix64 rng(0xBADC0FFEEULL);
  std::vector<std::uint64_t> keys(n, 0);
  std::vector<bool> present(n, false);
  for (int step = 0; step < 2000; ++step) {
    const int id = static_cast<int>(rng.next() % n);
    const std::uint64_t key = rng.next() % 8;  // few values => many ties
    if (!present[static_cast<std::size_t>(id)]) {
      h.push(id, key);
      keys[static_cast<std::size_t>(id)] = key;
      present[static_cast<std::size_t>(id)] = true;
    } else if (rng.next() % 2 == 0) {
      h.update(id, key);
      keys[static_cast<std::size_t>(id)] = key;
    } else {
      h.erase(id);
      present[static_cast<std::size_t>(id)] = false;
    }
    int best = -1;
    for (int i = 0; i < n; ++i) {
      if (!present[static_cast<std::size_t>(i)]) continue;
      if (best == -1 ||
          keys[static_cast<std::size_t>(i)] < keys[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    EXPECT_EQ(h.top(), best) << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// Arena — per-run transient scratch (DESIGN.md §10)
// ---------------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  util::Arena a(/*min_block_bytes=*/64);
  double* d = a.alloc_array<double>(7);
  std::uint8_t* b = a.alloc_array<std::uint8_t>(3);
  std::uint64_t* q = a.alloc_array<std::uint64_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
  for (int i = 0; i < 7; ++i) d[i] = 1.5 * i;
  for (int i = 0; i < 3; ++i) b[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 5; ++i) q[i] = 77u * static_cast<std::uint64_t>(i);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(d[i], 1.5 * i);  // no overlap
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q[i], 77u * static_cast<std::uint64_t>(i));
  EXPECT_GE(a.bytes_in_use(), 7 * sizeof(double) + 3 + 5 * sizeof(std::uint64_t));
}

TEST(Arena, ResetRetainsCapacityForReuse) {
  util::Arena a(/*min_block_bytes=*/128);
  (void)a.alloc_array<double>(1000);  // forces growth past the first block
  const std::size_t grown = a.capacity();
  EXPECT_GE(grown, 1000 * sizeof(double));
  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.capacity(), grown);  // blocks retained, not freed
  // Steady state: the same allocation pattern must not grow capacity again.
  (void)a.alloc_array<double>(1000);
  EXPECT_EQ(a.capacity(), grown);
}

// ---------------------------------------------------------------------------
// PairMap — sparse (src, dst) channel state for large worlds
// ---------------------------------------------------------------------------

TEST(PairMap, DenseAndSparseModesAgree) {
  // The same access sequence through both representations must read/write
  // the same logical cells. Dense mode below kDenseRanks, hash mode above.
  util::PairMap<std::uint64_t> dense;
  util::PairMap<std::uint64_t> sparse;
  dense.reset(64);                                  // dense matrix
  sparse.reset(util::PairMap<std::uint64_t>::kDenseRanks + 1);  // hash table
  SplitMix64 rng(0x5EEDULL);
  for (int step = 0; step < 5000; ++step) {
    const int src = static_cast<int>(rng.next() % 64);
    const int dst = static_cast<int>(rng.next() % 64);
    const std::uint64_t inc = rng.next() % 100;
    dense.at(src, dst) += inc;
    sparse.at(src, dst) += inc;
  }
  for (int s = 0; s < 64; ++s) {
    for (int d = 0; d < 64; ++d) {
      EXPECT_EQ(dense.at(s, d), sparse.at(s, d)) << s << "," << d;
    }
  }
}

TEST(PairMap, SparseModeStoresOnlyTouchedPairs) {
  util::PairMap<double> m;
  m.reset(100000);  // dense would be 80 GB; sparse must stay tiny
  EXPECT_EQ(m.entries(), 0u);
  for (int r = 0; r < 1000; ++r) {
    m.at(r, (r + 1) % 100000) = 1.0 + r;
    m.at(r, (r + 99999) % 100000) = 2.0 + r;
  }
  EXPECT_EQ(m.entries(), 2000u);
  for (int r = 0; r < 1000; ++r) {
    EXPECT_EQ(m.at(r, (r + 1) % 100000), 1.0 + r);
    EXPECT_EQ(m.at(r, (r + 99999) % 100000), 2.0 + r);
  }
  EXPECT_EQ(m.entries(), 2000u);  // reads created nothing new
  EXPECT_EQ(m.at(99999, 0), 0.0);  // untouched cells default-construct
}

TEST(PairMap, HashModeReferencesSurviveGrowth) {
  // WaitGate counters hold &at(src, dst) while thousands of later inserts
  // grow and rehash the key table (DESIGN.md §12): values live in fixed
  // chunks, so references must stay valid until reset().
  util::PairMap<std::uint64_t> m;
  m.reset(100000);  // hash mode
  std::vector<std::uint64_t*> addrs;
  for (int i = 0; i < 64; ++i) {
    std::uint64_t& cell = m.at(i, 99999 - i);
    cell = 1000u + static_cast<std::uint64_t>(i);
    addrs.push_back(&cell);
  }
  // Enough fresh keys to force several grow() rehashes.
  for (int i = 0; i < 20000; ++i) {
    m.at(500 + i % 9000, (i * 13) % 100000) += 1;
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(&m.at(i, 99999 - i), addrs[static_cast<std::size_t>(i)]) << i;
    // Churn keys are disjoint from the probed keys, so values are untouched.
    EXPECT_EQ(*addrs[static_cast<std::size_t>(i)],
              1000u + static_cast<std::uint64_t>(i))
        << i;
  }
}

}  // namespace
}  // namespace mrl
