// RMA race & synchronization checker (DESIGN.md §11): injected-race corpus
// (every diagnostic family fires with rank/time/op/byte-range detail),
// zero-false-positive runs over the paper workloads, verdict byte-identity
// across backends and schedulers, zero perturbation of simulated time, the
// violations metrics family, and the enriched deadlock/watchdog notes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "runtime/engine.hpp"
#include "shmem/shmem.hpp"
#include "simnet/platform.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl {
namespace {

using runtime::Engine;
using runtime::EngineBackend;
using runtime::EngineOptions;
using runtime::SchedulerKind;

EngineOptions checked() {
  EngineOptions o;
  o.check = true;
  return o;
}

bool contains(const std::string& hay, const char* needle) {
  return hay.find(needle) != std::string::npos;
}

// --- injected-race corpus -------------------------------------------------
// Each program is a minimal known-bad pattern; helpers return the run Status
// so the identity test can replay them under every backend/scheduler.

Status mpi_overlapping_puts(EngineOptions opt) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, opt);
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(32, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    double v = c.rank();
    if (c.rank() < 2) {
      // Both origins write rank 2's bytes [0, 8) in the same fence epoch.
      win.put(&v, sizeof(v), 2, 0);
      win.flush(2);
    }
    win.fence();
  });
  return res.status;
}

Status shmem_overlapping_puts(EngineOptions opt) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 3, opt);
  const auto res = shmem::World::run(eng, [](shmem::Ctx& s) {
    auto data = s.allocate<double>(8);
    double v = s.pe();
    if (s.pe() < 2) {
      s.put_nbi(data, &v, 1, 2);
      s.quiet();
    }
    s.barrier_all();
  });
  return res.status;
}

TEST(CheckCorpus, MpiOverlappingConcurrentPuts) {
  const Status st = mpi_overlapping_puts(checked());
  ASSERT_EQ(st.code(), ErrorCode::kFailedPrecondition) << st.to_string();
  EXPECT_TRUE(contains(st.to_string(), "race on win0@rank2"))
      << st.to_string();
  EXPECT_TRUE(contains(st.to_string(), "unordered in happens-before"))
      << st.to_string();
  EXPECT_TRUE(contains(st.to_string(), "bytes [0, 8)")) << st.to_string();
}

TEST(CheckCorpus, MpiGetRacesWithPut) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    double v = 1.0;
    if (c.rank() == 0) {
      win.put(&v, sizeof(v), 2, 0);
      win.flush(2);
    } else if (c.rank() == 1) {
      win.get(&v, sizeof(v), 2, 0);  // unordered against rank 0's put
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(), "race on win0@rank2"));
  EXPECT_TRUE(contains(res.status.to_string(), "get"));
}

TEST(CheckCorpus, MpiMissingFlushBeforeSignalPut) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(16, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double data[8] = {0};
      std::uint64_t sig = 1;
      win.put(data, sizeof(data), 1, 0);
      // BUG: no flush between the data put and the signal put.
      win.put(&sig, sizeof(sig), 1, 64, simnet::OpKind::kSignal);
      win.flush_all();
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(), "flush before signaling"))
      << res.status.to_string();
}

TEST(CheckCorpus, MpiLocalReadWithoutWinSync) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 7.0;
      win.put(&v, sizeof(v), 1, 0);
      win.flush(1);
    }
    // The barrier orders the flushed put (no race) and guarantees it has
    // arrived at rank 1 — but window memory is NOT coherent: it stays
    // unapplied until a Win_sync/fence.
    c.barrier();
    if (c.rank() == 1) {
      win.local_read(0, 8);  // BUG: reads bytes an arrived put will change
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(), "missing MPI_Win_sync"))
      << res.status.to_string();
}

TEST(CheckCorpus, MpiPutNeverFlushedAtExit) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 1.0;
      win.put(&v, sizeof(v), 1, 0);
      // BUG: rank finishes with the put still in flight.
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(),
                       "missing flush/quiet/fence before finishing"))
      << res.status.to_string();
}

TEST(CheckCorpus, MpiCollectiveKindMismatch) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
    } else {
      c.allreduce_sum(1.0);
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(),
                       "collective mismatch on mpi.world"))
      << res.status.to_string();
}

TEST(CheckCorpus, MpiBcastRootMismatch) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    double v = 0;
    c.bcast(&v, sizeof(v), c.rank());  // BUG: every rank names itself root
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "collective mismatch")) << s;
  EXPECT_TRUE(contains(s, "root=")) << s;
}

TEST(CheckCorpus, MpiCreateWinCannotPairWithUserBarrier) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> buf(8, 0.0);
      c.create_win(buf.data(), buf.size() * sizeof(double));
    } else {
      c.barrier();
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "collective mismatch")) << s;
  EXPECT_TRUE(contains(s, "win.create")) << s;
}

TEST(CheckCorpus, ShmemMissingQuietBeforePutSignal) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2, checked());
  const auto res = shmem::World::run(eng, [](shmem::Ctx& s) {
    auto data = s.allocate<double>(64);
    auto aux = s.allocate<double>(8);
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      double src[64] = {0};
      s.put_nbi(data, src, 64, 1);
      // BUG: fused signal issued while the plain put is still in flight.
      s.put_signal_nbi(aux, src, 8, sig, 1, 1);
      s.quiet();
    }
    s.barrier_all();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(), "quiet before put_signal"))
      << res.status.to_string();
}

TEST(CheckCorpus, ShmemOverlappingPuts) {
  const Status st = shmem_overlapping_puts(checked());
  ASSERT_EQ(st.code(), ErrorCode::kFailedPrecondition) << st.to_string();
  EXPECT_TRUE(contains(st.to_string(), "race on symheap@rank2"))
      << st.to_string();
}

TEST(CheckCorpus, ShmemAtomicRacesWithDataPut) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 3, checked());
  const auto res = shmem::World::run(eng, [](shmem::Ctx& s) {
    auto data = s.allocate<std::uint64_t>(4);
    if (s.pe() == 0) {
      std::uint64_t src[4] = {0};
      s.put_nbi(data, src, 4, 2);  // plain data put covering the word
      s.quiet();
    } else if (s.pe() == 1) {
      s.atomic_fetch_add(data, 1, 2);  // atomic on the same word, unordered
    }
    s.barrier_all();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string st = res.status.to_string();
  EXPECT_TRUE(contains(st, "race on symheap@rank2")) << st;
  EXPECT_TRUE(contains(st, "atomic")) << st;
}

TEST(CheckCorpus, ShmemBarrierVsSumAllMismatch) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2, checked());
  const auto res = shmem::World::run(eng, [](shmem::Ctx& s) {
    if (s.pe() == 0) {
      s.barrier_all();
    } else {
      s.sum_all(1.0);
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(),
                       "collective mismatch on shmem.world"))
      << res.status.to_string();
}

// --- flush_local vs flush (the PR 8 soundness fixes) ----------------------
// MPI_Win_flush_local licenses origin-buffer reuse only. Pre-fix the checker
// had no notion of it at all: these programs were vetted as if no completion
// call had been made, so W1/W2 verdicts blamed a "never completed" put even
// when the program did call flush_local — the diagnostics pinned here did
// not exist.

TEST(CheckCorpus, MpiFlushLocalDoesNotDischargeSignalObligation) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(16, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double data[8] = {0};
      std::uint64_t sig = 1;
      win.put(data, sizeof(data), 1, 0);
      win.flush_local(1);  // BUG: local completion does not order delivery
      win.put(&sig, sizeof(sig), 1, 64, simnet::OpKind::kSignal);
      win.flush_all();
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "flush before signaling")) << s;
  EXPECT_TRUE(contains(s, "flush_local completed it locally only")) << s;
}

TEST(CheckCorpus, MpiFlushLocalLeakedToExit) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 1.0;
      win.put(&v, sizeof(v), 1, 0);
      win.flush_local_all();  // BUG: rank finishes with no remote completion
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "completed only locally (flush_local is not "
                          "remote completion)"))
      << s;
  EXPECT_TRUE(contains(s, "missing flush/quiet/fence before finishing")) << s;
}

// Same program twice, differing only in the completion call: flush orders the
// put through the barrier (clean); flush_local leaves it in flight (race).
Status mpi_put_complete_then_read(EngineOptions opt, bool local_only) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, opt);
  const auto res = mpi::World::run(eng, [local_only](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 1.0;
      win.put(&v, sizeof(v), 2, 0);
      if (local_only) {
        win.flush_local(2);
      } else {
        win.flush(2);
      }
    }
    c.barrier();
    if (c.rank() == 1) {
      double v = 0.0;
      win.get(&v, sizeof(v), 2, 0);
    }
    win.fence();
  });
  return res.status;
}

TEST(CheckCorpus, MpiFlushLocalDoesNotOrderRemoteReads) {
  const Status clean = mpi_put_complete_then_read(checked(), false);
  EXPECT_TRUE(clean.is_ok()) << clean.to_string();
  const Status racy = mpi_put_complete_then_read(checked(), true);
  ASSERT_EQ(racy.code(), ErrorCode::kFailedPrecondition);
  const std::string s = racy.to_string();
  EXPECT_TRUE(contains(s, "race on win0@rank2")) << s;
  EXPECT_TRUE(contains(s, "(in flight; flush_local only)")) << s;
}

TEST(CheckCorpus, MpiFlushWrongTargetDoesNotDischargeExitObligation) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 1.0;
      win.put(&v, sizeof(v), 1, 0);
      win.put(&v, sizeof(v), 2, 0);
      win.flush(1);  // BUG: completes the put to rank 1 only
    }
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "to win0@rank2")) << s;
  EXPECT_FALSE(contains(s, "to win0@rank1")) << s;
}

TEST(CheckCorpus, MpiFlushWrongTargetDoesNotDischargeSignalObligation) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(16, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double data[8] = {0};
      std::uint64_t sig = 1;
      win.put(data, sizeof(data), 2, 0);
      win.flush(1);  // BUG: wrong target; the put to rank 2 is still in flight
      win.put(&sig, sizeof(sig), 2, 64, simnet::OpKind::kSignal);
      win.flush_all();
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(contains(res.status.to_string(), "flush before signaling"))
      << res.status.to_string();
}

TEST(CheckCorpus, MultiWriterRaceReportsFirstDivergencePairOnly) {
  // Four unordered writers to the same bytes: quadratic pair reporting would
  // emit 6 lines; first-divergence reporting emits one per racing access.
  Engine eng(simnet::Platform::perlmutter_cpu(1), 5, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    double v = c.rank();
    if (c.rank() < 4) {
      win.put(&v, sizeof(v), 4, 0);
      win.flush(4);
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "RMA checker: 3 violation(s)")) << s;
}

// --- clean programs: zero false positives ---------------------------------

TEST(CheckClean, FlushLocalThenFlushIsClean) {
  // The hashtable's Treiber push pattern: put, flush_local (reuse the source
  // buffer), then real flush before anyone reads. Must stay verdict-free.
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    if (c.rank() == 0) {
      double v = 1.0;
      win.put(&v, sizeof(v), 1, 0);
      win.flush_local(1);
      v = 2.0;  // source buffer legally reused after flush_local
      win.put(&v, sizeof(v), 1, 0);
      win.flush(1);
    }
    win.fence();
  });
  ASSERT_TRUE(res.ok()) << res.status.to_string();
}


TEST(CheckClean, FencedPutsAndSignalWaitPatternsPass) {
  // MPI: the paper's fence-delimited exchange. Also exercises Win_sync.
  {
    Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
    const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
      std::vector<double> buf(8, 0.0);
      auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
      win.fence();
      double v = c.rank();
      win.put(&v, sizeof(v), 1 - c.rank(), 0);
      win.flush(1 - c.rank());
      win.fence();
      win.local_read(0, 8);  // ordered: the fence applied everything
      win.fence();
    });
    ASSERT_TRUE(res.ok()) << res.status.to_string();
  }
  // SHMEM: put-with-signal + wait_until + quiet (the paper's GPU pattern).
  {
    Engine eng(simnet::Platform::perlmutter_gpu(), 2, checked());
    const auto res = shmem::World::run(eng, [](shmem::Ctx& s) {
      auto data = s.allocate<double>(64);
      auto sig = s.allocate<std::uint64_t>(1);
      if (s.pe() == 0) {
        double src[64] = {0};
        s.put_signal_nbi(data, src, 64, sig, 1, 1);
        s.quiet();
      } else {
        s.wait_until(sig, 1);
        s.local_read(data, 64);  // ordered through the signal wait
      }
      s.barrier_all();
    });
    ASSERT_TRUE(res.ok()) << res.status.to_string();
  }
}

TEST(CheckClean, AllPaperWorkloadsRunCleanUnderChecker) {
  check::set_default_check(true);
  const auto cpu = simnet::Platform::perlmutter_cpu(1);
  const auto gpu = simnet::Platform::perlmutter_gpu();

  workloads::stencil::Config scfg;
  scfg.n = 64;
  scfg.iters = 2;
  for (const auto& r : {workloads::stencil::run_two_sided(cpu, 4, scfg),
                        workloads::stencil::run_one_sided(cpu, 4, scfg),
                        workloads::stencil::run_shmem_gpu(gpu, 4, scfg),
                        workloads::stencil::run_host_staged_gpu(gpu, 4, scfg)}) {
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  }

  workloads::sptrsv::GenConfig g;
  g.n = 400;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config pcfg;
  for (const auto& r : {workloads::sptrsv::run_two_sided(cpu, 4, L, pcfg),
                        workloads::sptrsv::run_one_sided(cpu, 4, L, pcfg),
                        workloads::sptrsv::run_shmem_gpu(gpu, 4, L, pcfg)}) {
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  }

  workloads::hashtable::Config hcfg;
  hcfg.total_inserts = 2000;
  for (const auto& r : {workloads::hashtable::run_one_sided(cpu, 4, hcfg),
                        workloads::hashtable::run_two_sided(cpu, 4, hcfg),
                        workloads::hashtable::run_shmem_gpu(gpu, 4, hcfg)}) {
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  }
  check::set_default_check(false);
}

// --- determinism ----------------------------------------------------------

TEST(CheckIdentity, VerdictBytesIdenticalAcrossBackendsAndSchedulers) {
  std::vector<std::string> mpi_verdicts;
  std::vector<std::string> shmem_verdicts;
  for (EngineBackend backend :
       {EngineBackend::kFibers, EngineBackend::kThreads}) {
    if (backend == EngineBackend::kFibers && !runtime::fibers_supported()) {
      continue;
    }
    for (SchedulerKind sched :
         {SchedulerKind::kIndexedHeap, SchedulerKind::kLinearScan}) {
      EngineOptions o = checked();
      o.backend = backend;
      o.scheduler = sched;
      mpi_verdicts.push_back(mpi_overlapping_puts(o).to_string());
      shmem_verdicts.push_back(shmem_overlapping_puts(o).to_string());
    }
  }
  ASSERT_GE(mpi_verdicts.size(), 2u);
  for (std::size_t i = 1; i < mpi_verdicts.size(); ++i) {
    EXPECT_EQ(mpi_verdicts[0], mpi_verdicts[i]);
    EXPECT_EQ(shmem_verdicts[0], shmem_verdicts[i]);
  }
  EXPECT_TRUE(contains(mpi_verdicts[0], "race on"));
  EXPECT_TRUE(contains(shmem_verdicts[0], "race on"));
}

TEST(CheckZeroPerturbation, CheckerOnLeavesSimulatedTimeIdentical) {
  const auto cpu = simnet::Platform::perlmutter_cpu(1);
  workloads::stencil::Config cfg;
  cfg.n = 64;
  cfg.iters = 2;
  const auto plain = workloads::stencil::run_one_sided(cpu, 4, cfg);
  check::set_default_check(true);
  const auto under_check = workloads::stencil::run_one_sided(cpu, 4, cfg);
  check::set_default_check(false);
  ASSERT_TRUE(plain.status.is_ok());
  ASSERT_TRUE(under_check.status.is_ok());
  EXPECT_EQ(plain.time_us, under_check.time_us);
}

// --- metrics + diagnostics satellites -------------------------------------

TEST(CheckMetrics, ViolationsCounterFamilyPublishes) {
  EngineOptions o = checked();
  o.metrics = true;
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, o);
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(8, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    double v = c.rank();
    if (c.rank() < 2) {
      win.put(&v, sizeof(v), 2, 0);
      win.flush(2);
    }
    win.fence();
  });
  ASSERT_EQ(res.status.code(), ErrorCode::kFailedPrecondition);
  const runtime::MetricsReport rep = eng.metrics_report();
  std::uint64_t total = 0;
  for (const auto& r : rep.ranks) total += r.ops.violations;
  EXPECT_GE(total, 1u);
}

TEST(CheckDiagnostics, DeadlockReportsLastBlockingOpOfDoneRanks) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    double v = 0;
    if (c.rank() == 0) {
      c.send(&v, sizeof(v), 1, 0);
      c.recv(&v, sizeof(v), 1, 0);  // never sent: deadlock once rank 1 exits
    } else {
      c.recv(&v, sizeof(v), 0, 0);
    }
  });
  ASSERT_FALSE(res.ok());
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "recv")) << s;
  EXPECT_TRUE(contains(s, "last blocked on [recv]")) << s;
}

TEST(CheckDiagnostics, DeadlockNoteNamesStragglersOfOpenCollective) {
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, checked());
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    if (c.rank() == 0) c.barrier();  // rank 1 never joins
  });
  ASSERT_FALSE(res.ok());
  const std::string s = res.status.to_string();
  EXPECT_TRUE(contains(s, "collective mpi.world gen 0: 1/2 entered (barrier)"))
      << s;
  EXPECT_TRUE(contains(s, "waiting for ranks 1")) << s;
}

TEST(CheckDisabled, ChecksAreFreeWhenOff) {
  // Same bad program, checker off: the run must succeed untouched.
  EngineOptions o;
  o.check = false;
  const Status st = mpi_overlapping_puts(o);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
}

}  // namespace
}  // namespace mrl
