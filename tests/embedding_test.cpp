// Embedding-lookup workload: sharding arithmetic, the deterministic Zipf
// query stream (golden values), software combining, end-to-end payload
// verification on both APIs, backend/scheduler bit-identity, and clean
// --check runs.
#include <gtest/gtest.h>

#include <vector>

#include "check/checker.hpp"
#include "runtime/engine.hpp"
#include "simnet/platform.hpp"
#include "workloads/embedding/embedding.hpp"

namespace mrl::workloads::embedding {
namespace {

// ---------------------------------------------------------------------------
// Sharding arithmetic
// ---------------------------------------------------------------------------

TEST(EmbeddingShard, HybridGridFactorizes) {
  for (int n : {1, 2, 3, 4, 6, 7, 8, 12, 16, 64, 100}) {
    const Grid g = hybrid_grid(n);
    EXPECT_EQ(g.pr * g.pc, n) << n;
    EXPECT_LE(g.pr, g.pc) << n;  // pr = largest divisor <= sqrt(n)
  }
  EXPECT_EQ(hybrid_grid(16).pr, 4);
  EXPECT_EQ(hybrid_grid(16).pc, 4);
  EXPECT_EQ(hybrid_grid(8).pr, 2);
  EXPECT_EQ(hybrid_grid(8).pc, 4);
  EXPECT_EQ(hybrid_grid(7).pr, 1);  // prime degenerates to column-major
  EXPECT_EQ(hybrid_grid(7).pc, 7);
}

// Every (row, col) of the table must live on exactly one rank, at exactly
// one local element — including awkward shapes where rows % P != 0 and
// dim % Pc != 0.
void expect_exact_cover(ShardPolicy policy, int nranks, std::uint64_t rows,
                        std::uint64_t dim) {
  std::vector<int> covered(rows * dim, 0);
  for (int pe = 0; pe < nranks; ++pe) {
    const std::uint64_t elems = local_elems(policy, pe, nranks, rows, dim);
    for (std::uint64_t e = 0; e < elems; ++e) {
      const RowCol rc = elem_to_rowcol(policy, pe, nranks, rows, dim, e);
      ASSERT_LT(rc.row, rows);
      ASSERT_LT(rc.col, dim);
      ++covered[rc.row * dim + rc.col];
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    ASSERT_EQ(covered[i], 1) << to_string(policy) << " elem " << i;
  }
}

TEST(EmbeddingShard, AllPoliciesCoverTheTableExactlyOnce) {
  for (const ShardPolicy p :
       {ShardPolicy::kRow, ShardPolicy::kColumn, ShardPolicy::kHybrid}) {
    expect_exact_cover(p, 5, 37, 13);  // nothing divides anything
    expect_exact_cover(p, 4, 64, 8);   // everything divides everything
    expect_exact_cover(p, 6, 10, 4);   // fewer columns than grid columns
  }
}

TEST(EmbeddingShard, LocalElemsSumToTable) {
  const std::uint64_t rows = 37, dim = 13;
  for (const ShardPolicy p :
       {ShardPolicy::kRow, ShardPolicy::kColumn, ShardPolicy::kHybrid}) {
    std::uint64_t total = 0;
    for (int pe = 0; pe < 5; ++pe) total += local_elems(p, pe, 5, rows, dim);
    EXPECT_EQ(total, rows * dim) << to_string(p);
  }
}

TEST(EmbeddingShard, TableValueIsMantissaExact) {
  // 20-bit payloads round-trip float storage exactly — the runners compare
  // fetched bytes with == and no tolerance.
  for (std::uint64_t r : {0ull, 1ull, 12345ull}) {
    for (std::uint64_t c : {0ull, 7ull, 63ull}) {
      const float v = table_value(r, c);
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 1.0f);
      EXPECT_EQ(v, table_value(r, c));
    }
  }
  EXPECT_NE(table_value(3, 4), table_value(4, 3));
}

// ---------------------------------------------------------------------------
// Zipf query stream
// ---------------------------------------------------------------------------

TEST(EmbeddingZipf, GoldenValues) {
  // Pinned against the initial implementation: any change to the CDF or the
  // (seed, query) keying silently reshuffles every bench number, so it must
  // show up here first.
  const ZipfGen z(1024, 0.99);
  EXPECT_DOUBLE_EQ(z.cdf(0), 0.12895976572899961);
  EXPECT_DOUBLE_EQ(z.cdf(9), 0.38121893279891139);
  EXPECT_DOUBLE_EQ(z.cdf(1023), 1.0);
  EXPECT_EQ(z.sample(0.0), 0u);
  EXPECT_EQ(z.sample(0.25), 3u);
  EXPECT_EQ(z.sample(0.5), 25u);
  EXPECT_EQ(z.sample(0.9), 495u);
  EXPECT_EQ(z.sample(0.9999), 1023u);

  std::vector<std::uint64_t> rows;
  query_rows(z, 1234, 0, 6, rows);
  EXPECT_EQ(rows, (std::vector<std::uint64_t>{4, 0, 41, 70, 10, 4}));
  query_rows(z, 1234, 7, 6, rows);
  EXPECT_EQ(rows, (std::vector<std::uint64_t>{4, 1, 298, 48, 778, 501}));
}

TEST(EmbeddingZipf, ZeroSkewIsUniform) {
  const ZipfGen z(8, 0.0);
  EXPECT_DOUBLE_EQ(z.cdf(3), 0.5);
  EXPECT_EQ(z.sample(0.374), 2u);
}

TEST(EmbeddingZipf, CdfIsMonotoneAndSamplingInverts) {
  const ZipfGen z(100, 1.2);
  for (std::uint64_t i = 1; i < 100; ++i) {
    EXPECT_GT(z.cdf(i), z.cdf(i - 1));
  }
  // sample(u) returns the first index whose CDF exceeds u.
  for (std::uint64_t i = 0; i < 100; i += 7) {
    EXPECT_EQ(z.sample(z.cdf(i)), i == 99 ? 99 : i + 1);
  }
}

TEST(EmbeddingZipf, StreamIsKeyedByQueryId) {
  const ZipfGen z(256, 0.9);
  std::vector<std::uint64_t> a, b;
  query_rows(z, 42, 5, 8, a);
  query_rows(z, 42, 5, 8, b);
  EXPECT_EQ(a, b);  // same key, same draws — regardless of caller order
  query_rows(z, 42, 6, 8, b);
  EXPECT_NE(a, b);
  query_rows(z, 43, 5, 8, b);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Software combining
// ---------------------------------------------------------------------------

TEST(EmbeddingSpans, RowPolicyFusesAdjacentLocalRows) {
  // P=4 row sharding: rows 2 and 6 are local rows 0 and 1 of rank 2 —
  // adjacent, so combining fuses them into one get of 2*dim elements.
  std::vector<GetSpan> spans;
  const std::uint64_t naive =
      build_spans(ShardPolicy::kRow, 4, 64, 8, {2, 6}, true, spans);
  EXPECT_EQ(naive, 2u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].owner, 2);
  EXPECT_EQ(spans[0].elem_off, 0u);
  EXPECT_EQ(spans[0].elems, 16u);
}

TEST(EmbeddingSpans, DuplicateRowsCollapse) {
  std::vector<GetSpan> spans;
  const std::uint64_t naive =
      build_spans(ShardPolicy::kRow, 4, 64, 8, {5, 5, 5}, true, spans);
  EXPECT_EQ(naive, 3u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].owner, 1);
  EXPECT_EQ(spans[0].elems, 8u);
}

TEST(EmbeddingSpans, CombineOffPreservesNaiveCount) {
  std::vector<GetSpan> spans;
  const std::uint64_t naive =
      build_spans(ShardPolicy::kRow, 4, 64, 8, {2, 6, 5, 5}, false, spans);
  EXPECT_EQ(naive, 4u);
  EXPECT_EQ(spans.size(), 4u);
}

TEST(EmbeddingSpans, ColumnPolicySplitsAcrossOwners) {
  // One row under column sharding fans out to every rank owning a non-empty
  // dim slice; distinct rows on the same owner do NOT merge (their local
  // offsets are dim/pc apart).
  std::vector<GetSpan> spans;
  const std::uint64_t naive =
      build_spans(ShardPolicy::kColumn, 4, 64, 8, {3}, true, spans);
  EXPECT_EQ(naive, 4u);
  ASSERT_EQ(spans.size(), 4u);
  for (int cp = 0; cp < 4; ++cp) {
    EXPECT_EQ(spans[cp].owner, cp);
    EXPECT_EQ(spans[cp].elem_off, 3u * 2u);
    EXPECT_EQ(spans[cp].elems, 2u);
  }
}

TEST(EmbeddingSpans, TotalElementsMatchRequestedRows) {
  // Combining changes message count, never byte count (dups aside).
  for (const ShardPolicy p :
       {ShardPolicy::kRow, ShardPolicy::kColumn, ShardPolicy::kHybrid}) {
    std::vector<GetSpan> spans;
    build_spans(p, 6, 100, 10, {0, 7, 13, 99, 42}, true, spans);
    std::uint64_t total = 0;
    for (const GetSpan& s : spans) total += s.elems;
    EXPECT_EQ(total, 5u * 10u) << to_string(p);
  }
}

// ---------------------------------------------------------------------------
// End-to-end runs
// ---------------------------------------------------------------------------

Config small_cfg() {
  Config cfg;
  cfg.rows = 256;
  cfg.dim = 16;
  cfg.queries_per_rank = 4;
  cfg.lookups_per_query = 8;
  cfg.batch = 2;
  cfg.zipf_s = 0.9;
  return cfg;
}

class EmbeddingRun : public ::testing::TestWithParam<ShardPolicy> {};

TEST_P(EmbeddingRun, MpiServesVerifiedPayloads) {
  Config cfg = small_cfg();
  cfg.policy = GetParam();
  const Result r = run_mpi(simnet::Platform::perlmutter_cpu(1), 4, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_EQ(r.queries, 16u);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_GT(r.gets, 0u);
  EXPECT_LE(r.gets, r.gets_naive);
}

TEST_P(EmbeddingRun, ShmemServesVerifiedPayloads) {
  Config cfg = small_cfg();
  cfg.policy = GetParam();
  const Result r = run_shmem(simnet::Platform::perlmutter_gpu(), 4, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_EQ(r.queries, 16u);
  EXPECT_LE(r.gets, r.gets_naive);
}

INSTANTIATE_TEST_SUITE_P(Policies, EmbeddingRun,
                         ::testing::Values(ShardPolicy::kRow,
                                           ShardPolicy::kColumn,
                                           ShardPolicy::kHybrid),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(EmbeddingRunAblations, CombiningReducesGetsNotBytes) {
  Config cfg = small_cfg();
  cfg.batch = 4;
  Config off = cfg;
  off.combine = false;
  const auto plat = simnet::Platform::perlmutter_cpu(1);
  const Result a = run_mpi(plat, 4, cfg);
  const Result b = run_mpi(plat, 4, off);
  ASSERT_TRUE(a.status.is_ok() && b.status.is_ok());
  EXPECT_LT(a.gets, b.gets);
  EXPECT_EQ(a.gets_naive, b.gets);  // combine off issues the naive count
  EXPECT_LE(a.bytes, b.bytes);      // dup rows fetched once vs repeatedly
  EXPECT_TRUE(a.verify_ok && b.verify_ok);
}

TEST(EmbeddingRunAblations, HotRowCacheCutsTraffic) {
  Config cfg = small_cfg();
  Config hot = cfg;
  hot.hot_rows = 32;  // Zipf head at s=0.9 concentrates here
  const auto plat = simnet::Platform::perlmutter_cpu(1);
  const Result a = run_mpi(plat, 4, cfg);
  const Result b = run_mpi(plat, 4, hot);
  ASSERT_TRUE(a.status.is_ok() && b.status.is_ok());
  EXPECT_EQ(a.cache_hits, 0u);
  EXPECT_GT(b.cache_hits, 0u);
  EXPECT_LT(b.bytes, a.bytes);
  EXPECT_TRUE(b.verify_ok);
}

// The same config must produce bit-identical Results on every backend ×
// scheduler combination — the workload's numbers are virtual-time facts.
TEST(EmbeddingDeterminism, ResultsAreBackendAndSchedulerInvariant) {
  Config cfg = small_cfg();
  cfg.policy = ShardPolicy::kHybrid;
  const auto plat = simnet::Platform::perlmutter_cpu(1);

  const auto saved_backend = runtime::default_backend();
  const auto saved_sched = runtime::default_scheduler();
  std::vector<Result> rs;
  for (const auto backend :
       {runtime::EngineBackend::kFibers, runtime::EngineBackend::kThreads}) {
    for (const auto sched : {runtime::SchedulerKind::kIndexedHeap,
                             runtime::SchedulerKind::kLinearScan}) {
      runtime::set_default_backend(backend);
      runtime::set_default_scheduler(sched);
      rs.push_back(run_mpi(plat, 4, cfg));
    }
  }
  runtime::set_default_backend(saved_backend);
  runtime::set_default_scheduler(saved_sched);

  for (const Result& r : rs) {
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_EQ(r.time_us, rs[0].time_us);
    EXPECT_EQ(r.qps, rs[0].qps);
    EXPECT_EQ(r.p50_us, rs[0].p50_us);
    EXPECT_EQ(r.p95_us, rs[0].p95_us);
    EXPECT_EQ(r.p99_us, rs[0].p99_us);
    EXPECT_EQ(r.gets, rs[0].gets);
    EXPECT_EQ(r.bytes, rs[0].bytes);
  }
}

// Both runners must be race-free under the checker in every configuration
// the bench sweeps — including the ablations, whose code paths differ.
TEST(EmbeddingCheck, RunnersAreCleanUnderTheChecker) {
  const bool saved = check::default_check();
  check::set_default_check(true);
  for (const ShardPolicy p :
       {ShardPolicy::kRow, ShardPolicy::kColumn, ShardPolicy::kHybrid}) {
    Config cfg = small_cfg();
    cfg.policy = p;
    const Result r = run_mpi(simnet::Platform::perlmutter_cpu(1), 4, cfg);
    EXPECT_TRUE(r.status.is_ok()) << to_string(p) << ": "
                                  << r.status.to_string();
    const Result s = run_shmem(simnet::Platform::perlmutter_gpu(), 4, cfg);
    EXPECT_TRUE(s.status.is_ok()) << to_string(p) << ": "
                                  << s.status.to_string();
  }
  Config abl = small_cfg();
  abl.combine = false;
  abl.hot_rows = 32;
  const Result r = run_mpi(simnet::Platform::perlmutter_cpu(1), 4, abl);
  EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  check::set_default_check(saved);
}

}  // namespace
}  // namespace mrl::workloads::embedding
