// Engine semantics: virtual-time ordering, determinism, blocking/waking,
// deadlock detection, error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/engine.hpp"
#include "simnet/platform.hpp"

namespace mrl::runtime {
namespace {

simnet::Platform plat() { return simnet::Platform::perlmutter_cpu(); }

TEST(Engine, RunsAllRanksToCompletion) {
  Engine eng(plat(), 8);
  std::vector<int> visited(8, 0);
  const RunResult r = eng.run([&](Rank& rank) { visited[rank.id()] = 1; });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  for (int v : visited) EXPECT_EQ(v, 1);
  EXPECT_EQ(r.rank_end_us.size(), 8u);
}

TEST(Engine, AdvanceAccumulatesVirtualTime) {
  Engine eng(plat(), 2);
  const RunResult r = eng.run([](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.now(), 0.0);
    rank.advance(1.5);
    rank.advance(2.5);
    EXPECT_DOUBLE_EQ(rank.now(), 4.0);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.makespan_us, 4.0);
}

TEST(Engine, PerformExecutesInGlobalClockOrder) {
  Engine eng(plat(), 4);
  std::vector<int> order;
  const RunResult r = eng.run([&](Rank& rank) {
    // Rank i performs at time 10*(3 - i): rank 3 first, rank 0 last.
    rank.advance(10.0 * (3 - rank.id()));
    eng.perform(rank, [&] { order.push_back(rank.id()); });
  });
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Engine, TiesBrokenByRankId) {
  Engine eng(plat(), 4);
  std::vector<int> order;
  const RunResult r = eng.run([&](Rank& rank) {
    rank.advance(5.0);
    eng.perform(rank, [&] { order.push_back(rank.id()); });
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, WaitWakesAtConditionTime) {
  Engine eng(plat(), 2);
  double flag_time = -1;
  bool flag = false;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      rank.advance(7.0);
      eng.perform(rank, [&] {
        flag = true;
        flag_time = rank.now();
      });
    } else {
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        if (!flag) return std::nullopt;
        return flag_time + 3.0;
      });
      EXPECT_DOUBLE_EQ(rank.now(), 10.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Engine, WaitDoesNotGoBackwards) {
  Engine eng(plat(), 2);
  bool flag = false;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      eng.perform(rank, [&] { flag = true; });
    } else {
      rank.advance(50.0);
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        return flag ? std::optional<double>(1.0) : std::nullopt;
      });
      // Wake time 1.0 is in this rank's past; clock must not regress.
      EXPECT_DOUBLE_EQ(rank.now(), 50.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Engine, DeadlockIsDetectedAndReported) {
  Engine eng(plat(), 2);
  const RunResult r = eng.run([&](Rank& rank) {
    eng.wait(rank, "never-satisfied",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kDeadlock);
  EXPECT_NE(r.status.message().find("never-satisfied"), std::string::npos);
}

TEST(Engine, PartialDeadlockAlsoDetected) {
  // One rank finishes; the other waits forever.
  Engine eng(plat(), 2);
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 1) {
      eng.wait(rank, "orphan wait",
               []() -> std::optional<double> { return std::nullopt; });
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kDeadlock);
}

TEST(Engine, BodyExceptionIsPropagatedNotCrashed) {
  Engine eng(plat(), 4);
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 2) throw std::runtime_error("boom");
    // Other ranks block; the abort must unwind them.
    eng.wait(rank, "forever",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("boom"), std::string::npos);
}

TEST(Engine, DeterministicAcrossRepeatedRuns) {
  Engine eng(plat(), 16);
  auto body = [&](Rank& rank) {
    for (int i = 0; i < 20; ++i) {
      rank.advance(0.1 * ((rank.id() * 7 + i) % 5 + 1));
      eng.perform(rank, [] {});
    }
  };
  const RunResult a = eng.run(body);
  const RunResult b = eng.run(body);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.rank_end_us.size(), b.rank_end_us.size());
  for (std::size_t i = 0; i < a.rank_end_us.size(); ++i) {
    EXPECT_EQ(a.rank_end_us[i], b.rank_end_us[i]) << "rank " << i;
  }
}

TEST(Engine, ManyRanksComplete) {
  Engine eng(plat(), 128);
  std::atomic<int> count{0};
  const RunResult r = eng.run([&](Rank& rank) {
    rank.advance(static_cast<double>(rank.id()));
    eng.perform(rank, [&] { count.fetch_add(1); });
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count.load(), 128);
  EXPECT_DOUBLE_EQ(r.makespan_us, 127.0);
}

TEST(Engine, RejectsMoreRanksThanPlatformHosts) {
  EXPECT_DEATH(Engine(simnet::Platform::perlmutter_gpu(), 5),
               "more ranks than the platform");
}

TEST(Engine, EpochBumpTracked) {
  Engine eng(plat(), 1);
  const RunResult r = eng.run([&](Rank& rank) {
    EXPECT_EQ(rank.epoch(), 0u);
    rank.bump_epoch();
    rank.bump_epoch();
    EXPECT_EQ(rank.epoch(), 2u);
  });
  ASSERT_TRUE(r.ok());
}

}  // namespace
}  // namespace mrl::runtime
