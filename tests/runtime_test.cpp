// Engine semantics: virtual-time ordering, determinism, blocking/waking,
// deadlock detection, error propagation.
//
// Every semantic test runs under both execution backends (fibers and
// threads) via the EngineBackends fixture: the two must be observationally
// indistinguishable — same grants, same clocks, same error statuses. Under
// ThreadSanitizer the fiber variants skip (TSan cannot follow user-level
// context switches; see runtime/fiber.hpp) and the thread variants keep the
// whole suite meaningful.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "simnet/platform.hpp"

namespace mrl::runtime {
namespace {

simnet::Platform plat() { return simnet::Platform::perlmutter_cpu(); }

class EngineBackends : public ::testing::TestWithParam<EngineBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == EngineBackend::kFibers && !fibers_supported()) {
      GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
    }
  }
  /// Stamps the parameterized backend onto (a copy of) the options.
  EngineOptions opts(EngineOptions base = {}) const {
    base.backend = GetParam();
    return base;
  }
};

INSTANTIATE_TEST_SUITE_P(
    All, EngineBackends,
    ::testing::Values(EngineBackend::kFibers, EngineBackend::kThreads),
    [](const ::testing::TestParamInfo<EngineBackend>& info) {
      return std::string(to_string(info.param));
    });

TEST_P(EngineBackends, RunsAllRanksToCompletion) {
  Engine eng(plat(), 8, opts());
  std::vector<int> visited(8, 0);
  const RunResult r = eng.run([&](Rank& rank) { visited[rank.id()] = 1; });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  for (int v : visited) EXPECT_EQ(v, 1);
  EXPECT_EQ(r.rank_end_us.size(), 8u);
}

TEST_P(EngineBackends, AdvanceAccumulatesVirtualTime) {
  Engine eng(plat(), 2, opts());
  const RunResult r = eng.run([](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.now(), 0.0);
    rank.advance(1.5);
    rank.advance(2.5);
    EXPECT_DOUBLE_EQ(rank.now(), 4.0);
  });
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.makespan_us, 4.0);
}

TEST_P(EngineBackends, PerformExecutesInGlobalClockOrder) {
  Engine eng(plat(), 4, opts());
  std::vector<int> order;
  const RunResult r = eng.run([&](Rank& rank) {
    // Rank i performs at time 10*(3 - i): rank 3 first, rank 0 last.
    rank.advance(10.0 * (3 - rank.id()));
    eng.perform(rank, [&] { order.push_back(rank.id()); });
  });
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST_P(EngineBackends, TiesBrokenByRankId) {
  Engine eng(plat(), 4, opts());
  std::vector<int> order;
  const RunResult r = eng.run([&](Rank& rank) {
    rank.advance(5.0);
    eng.perform(rank, [&] { order.push_back(rank.id()); });
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(EngineBackends, WaitWakesAtConditionTime) {
  Engine eng(plat(), 2, opts());
  double flag_time = -1;
  bool flag = false;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      rank.advance(7.0);
      eng.perform(rank, [&] {
        flag = true;
        flag_time = rank.now();
      });
    } else {
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        if (!flag) return std::nullopt;
        return flag_time + 3.0;
      });
      EXPECT_DOUBLE_EQ(rank.now(), 10.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST_P(EngineBackends, WaitDoesNotGoBackwards) {
  Engine eng(plat(), 2, opts());
  bool flag = false;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      eng.perform(rank, [&] { flag = true; });
    } else {
      rank.advance(50.0);
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        return flag ? std::optional<double>(1.0) : std::nullopt;
      });
      // Wake time 1.0 is in this rank's past; clock must not regress.
      EXPECT_DOUBLE_EQ(rank.now(), 50.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST_P(EngineBackends, DeadlockIsDetectedAndReported) {
  Engine eng(plat(), 2, opts());
  const RunResult r = eng.run([&](Rank& rank) {
    eng.wait(rank, "never-satisfied",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kDeadlock);
  EXPECT_NE(r.status.message().find("never-satisfied"), std::string::npos);
}

TEST_P(EngineBackends, PartialDeadlockAlsoDetected) {
  // One rank finishes; the other waits forever.
  Engine eng(plat(), 2, opts());
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 1) {
      eng.wait(rank, "orphan wait",
               []() -> std::optional<double> { return std::nullopt; });
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kDeadlock);
}

TEST_P(EngineBackends, BodyExceptionIsPropagatedNotCrashed) {
  Engine eng(plat(), 4, opts());
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 2) throw std::runtime_error("boom");
    // Other ranks block; the abort must unwind them.
    eng.wait(rank, "forever",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("boom"), std::string::npos);
}

TEST_P(EngineBackends, DeterministicAcrossRepeatedRuns) {
  Engine eng(plat(), 16, opts());
  auto body = [&](Rank& rank) {
    for (int i = 0; i < 20; ++i) {
      rank.advance(0.1 * ((rank.id() * 7 + i) % 5 + 1));
      eng.perform(rank, [] {});
    }
  };
  const RunResult a = eng.run(body);
  const RunResult b = eng.run(body);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.rank_end_us.size(), b.rank_end_us.size());
  for (std::size_t i = 0; i < a.rank_end_us.size(); ++i) {
    EXPECT_EQ(a.rank_end_us[i], b.rank_end_us[i]) << "rank " << i;
  }
}

TEST_P(EngineBackends, ManyRanksComplete) {
  Engine eng(plat(), 128, opts());
  std::atomic<int> count{0};
  const RunResult r = eng.run([&](Rank& rank) {
    rank.advance(static_cast<double>(rank.id()));
    eng.perform(rank, [&] { count.fetch_add(1); });
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count.load(), 128);
  EXPECT_DOUBLE_EQ(r.makespan_us, 127.0);
}

TEST_P(EngineBackends, ReusesExecutionContextsAcrossManyRuns) {
  // The sweep runner calls run() thousands of times per engine; rank
  // fibers/threads are created once and parked between runs, and every run
  // must start from pristine clocks/epochs/trace regardless of history.
  EngineOptions opt = opts();
  opt.trace = true;
  Engine eng(plat(), 4, opt);
  auto body = [&](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.now(), 0.0);   // clock reset by run()
    EXPECT_EQ(rank.epoch(), 0u);         // epoch reset by run()
    rank.advance(1.0 + rank.id());
    rank.bump_epoch();
    eng.perform(rank, [] {});
  };
  for (int i = 0; i < 100; ++i) {
    const RunResult r = eng.run(body);
    ASSERT_TRUE(r.ok()) << "run " << i << ": " << r.status.to_string();
    EXPECT_DOUBLE_EQ(r.makespan_us, 4.0) << "run " << i;
    ASSERT_EQ(r.rank_end_us.size(), 4u);
    for (int id = 0; id < 4; ++id) {
      EXPECT_DOUBLE_EQ(r.rank_end_us[static_cast<std::size_t>(id)],
                       1.0 + id)
          << "run " << i;
    }
  }
}

TEST_P(EngineBackends, CleanRunAfterDeadlockedRun) {
  Engine eng(plat(), 2, opts());
  // Run 1: deadlock — both ranks block forever.
  const RunResult bad = eng.run([&](Rank& rank) {
    eng.wait(rank, "never",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status.code(), ErrorCode::kDeadlock);

  // Run 2 on the same engine (same parked contexts) must be pristine: no
  // leftover abort flag, grants, or blocked bookkeeping.
  bool flag = false;
  const RunResult good = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      rank.advance(2.0);
      eng.perform(rank, [&] { flag = true; });
    } else {
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        return flag ? std::optional<double>(3.0) : std::nullopt;
      });
      EXPECT_DOUBLE_EQ(rank.now(), 3.0);
    }
  });
  ASSERT_TRUE(good.ok()) << good.status.to_string();
  EXPECT_DOUBLE_EQ(good.makespan_us, 3.0);

  // Run 3: deadlock again, then run 4 clean again — alternating states.
  const RunResult bad2 = eng.run([&](Rank& rank) {
    if (rank.id() == 1) {
      eng.wait(rank, "orphan",
               []() -> std::optional<double> { return std::nullopt; });
    }
  });
  EXPECT_EQ(bad2.status.code(), ErrorCode::kDeadlock);
  const RunResult good2 = eng.run([](Rank& rank) { rank.advance(1.0); });
  ASSERT_TRUE(good2.ok());
  EXPECT_DOUBLE_EQ(good2.makespan_us, 1.0);
}

TEST_P(EngineBackends, CleanRunAfterBodyExceptionRun) {
  Engine eng(plat(), 2, opts());
  const RunResult bad = eng.run([&](Rank& rank) {
    if (rank.id() == 0) throw std::runtime_error("boom");
    eng.wait(rank, "forever",
             []() -> std::optional<double> { return std::nullopt; });
  });
  EXPECT_FALSE(bad.ok());
  const RunResult good = eng.run([](Rank& rank) { rank.advance(5.0); });
  ASSERT_TRUE(good.ok()) << good.status.to_string();
  EXPECT_DOUBLE_EQ(good.makespan_us, 5.0);
}

TEST_P(EngineBackends, TraceResetsBetweenRuns) {
  EngineOptions opt = opts();
  opt.trace = true;
  Engine eng(plat(), 2, opt);
  auto record_one = [&](Rank& rank) {
    if (rank.id() == 0) {
      eng.perform(rank, [&] {
        simnet::MsgRecord rec;
        rec.src_rank = 0;
        rec.dst_rank = 1;
        rec.bytes = 8;
        eng.trace().record(rec);
      });
    }
  };
  ASSERT_TRUE(eng.run(record_one).ok());
  EXPECT_EQ(eng.trace().records().size(), 1u);
  // A second run starts a fresh trace instead of accumulating.
  ASSERT_TRUE(eng.run(record_one).ok());
  EXPECT_EQ(eng.trace().records().size(), 1u);
}

TEST_P(EngineBackends, RepeatedRunsAreDeterministicWithBlockingWaits) {
  // Exercises the targeted-handoff scheduler: blocked ranks are re-queued
  // without waking, so repeated runs of a blocking workload must still give
  // identical clocks.
  Engine eng(plat(), 6, opts());
  std::vector<double> flags_time(6, -1.0);
  std::vector<bool> flags(6, false);
  auto body = [&](Rank& rank) {
    if (rank.id() == 0) {
      for (int i = 0; i < 6; ++i) flags[static_cast<std::size_t>(i)] = false;
    }
    const int peer = (rank.id() + 1) % 6;
    rank.advance(0.5 * (rank.id() + 1));
    eng.perform(rank, [&] {
      flags[static_cast<std::size_t>(rank.id())] = true;
      flags_time[static_cast<std::size_t>(rank.id())] = rank.now();
    });
    eng.wait(rank, "peer flag", [&]() -> std::optional<double> {
      if (!flags[static_cast<std::size_t>(peer)]) return std::nullopt;
      return flags_time[static_cast<std::size_t>(peer)] + 0.25;
    });
  };
  const RunResult a = eng.run(body);
  ASSERT_TRUE(a.ok()) << a.status.to_string();
  for (int i = 0; i < 20; ++i) {
    const RunResult b = eng.run(body);
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.rank_end_us.size(), b.rank_end_us.size());
    for (std::size_t j = 0; j < a.rank_end_us.size(); ++j) {
      EXPECT_EQ(a.rank_end_us[j], b.rank_end_us[j]) << "run " << i;
    }
  }
}

TEST(Engine, RejectsMoreRanksThanPlatformHosts) {
  EXPECT_DEATH(Engine(simnet::Platform::perlmutter_gpu(), 5),
               "more ranks than the platform");
}

TEST_P(EngineBackends, EpochBumpTracked) {
  Engine eng(plat(), 1, opts());
  const RunResult r = eng.run([&](Rank& rank) {
    EXPECT_EQ(rank.epoch(), 0u);
    rank.bump_epoch();
    rank.bump_epoch();
    EXPECT_EQ(rank.epoch(), 2u);
  });
  ASSERT_TRUE(r.ok());
}

TEST_P(EngineBackends, WatchdogConvertsLivelockToTimeout) {
  // A rank that keeps making virtual-time "progress" without ever reaching
  // its wait condition is a livelock the deadlock detector cannot see: the
  // rank is always runnable. The watchdog caps virtual time instead.
  EngineOptions opt = opts();
  opt.watchdog_virtual_us = 500.0;
  Engine eng(plat(), 2, opt);
  const RunResult r = eng.run([&](Rank& rank) {
    for (;;) {
      rank.advance(10.0);
      eng.perform(rank, [] {});  // retry loop: spins forever
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kTimeout);
  EXPECT_NE(r.status.message().find("watchdog"), std::string::npos)
      << r.status.message();
  // Diagnostics name the per-rank clocks.
  EXPECT_NE(r.status.message().find("rank 0"), std::string::npos)
      << r.status.message();
}

TEST_P(EngineBackends, WatchdogAlsoTripsInsideWaits) {
  EngineOptions opt = opts();
  opt.watchdog_virtual_us = 200.0;
  Engine eng(plat(), 2, opt);
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      // Waits that keep resolving a little further in the future: never
      // blocked (no deadlock), never done.
      for (;;) {
        const double target = rank.now() + 50.0;
        eng.wait(rank, "chasing-horizon",
                 [target]() -> std::optional<double> { return target; });
      }
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kTimeout);
}

TEST_P(EngineBackends, CleanRunAfterWatchdogTimeout) {
  EngineOptions opt = opts();
  opt.watchdog_virtual_us = 300.0;
  Engine eng(plat(), 2, opt);
  const RunResult bad = eng.run([&](Rank& rank) {
    for (;;) {
      rank.advance(25.0);
      eng.perform(rank, [] {});
    }
  });
  ASSERT_EQ(bad.status.code(), ErrorCode::kTimeout);
  // The engine must stay usable, and a run that finishes under the limit
  // must be untouched by the watchdog.
  const RunResult good = eng.run([&](Rank& rank) {
    rank.advance(100.0);
    eng.perform(rank, [] {});
  });
  ASSERT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(good.makespan_us, 100.0);
}

TEST_P(EngineBackends, StragglerScalesComputeNotWaits) {
  // With a straggler_prob of 1 every rank is a straggler; compute_scale()
  // must reflect the factor while plain advance() stays unscaled.
  simnet::Platform p = plat();
  simnet::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_factor = 3.0;
  p.set_faults(spec);
  Engine eng(p, 2, opts());
  const RunResult r = eng.run([&](Rank& rank) {
    EXPECT_DOUBLE_EQ(rank.compute_scale(), 3.0);
    rank.advance(10.0);  // absolute virtual time: not scaled
    EXPECT_DOUBLE_EQ(rank.now(), 10.0);
  });
  ASSERT_TRUE(r.ok());
}

TEST_P(EngineBackends, ReentrantRunReturnsInvalidArgument) {
  // A rank body that calls run() again on its own engine must get a clean
  // error status back — not a crash, not a hang — and the outer run must
  // complete normally.
  Engine eng(plat(), 2, opts());
  Status inner_status;
  const RunResult outer = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      const RunResult inner = eng.run([](Rank&) {});
      inner_status = inner.status;
    }
    rank.advance(1.0);
  });
  ASSERT_TRUE(outer.ok()) << outer.status.to_string();
  EXPECT_EQ(inner_status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(inner_status.message().find("reentrant"), std::string::npos);
  // The guard must release: a fresh top-level run still works.
  EXPECT_TRUE(eng.run([](Rank& rank) { rank.advance(1.0); }).ok());
}

TEST(EngineFibers, TwoThousandRanksRunOnOneThread) {
  // The headline scaling win: 2048 ranks as fibers on a single OS thread —
  // a rank count where spawning one OS thread per rank is already at or
  // past typical ulimit/VM limits. Trivial body plus a ring of sends so the
  // scheduler, waker, and blocking paths all engage at scale.
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  const int n = 2048;
  EngineOptions opt;
  opt.backend = EngineBackend::kFibers;
  opt.fiber_stack_bytes = 128 * 1024;  // 2048 * 128KiB = 256MiB virtual
  Engine eng(simnet::Platform::perlmutter_cpu(/*nodes=*/16), n, opt);
  std::vector<bool> sent(static_cast<std::size_t>(n), false);
  std::vector<double> sent_time(static_cast<std::size_t>(n), 0.0);
  const RunResult r = eng.run([&](Rank& rank) {
    const int id = rank.id();
    const int prev = (id + n - 1) % n;
    rank.advance(0.01 * (id % 7 + 1));
    // "Send" to the successor...
    eng.perform(rank, [&] {
      sent[static_cast<std::size_t>(id)] = true;
      sent_time[static_cast<std::size_t>(id)] = rank.now();
    });
    // ...and block until the predecessor's send arrives.
    eng.wait(rank, "ring recv", [&]() -> std::optional<double> {
      if (!sent[static_cast<std::size_t>(prev)]) return std::nullopt;
      return sent_time[static_cast<std::size_t>(prev)] + 0.1;
    });
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  ASSERT_EQ(r.rank_end_us.size(), static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    EXPECT_GT(r.rank_end_us[static_cast<std::size_t>(id)], 0.0)
        << "rank " << id;
  }
}

TEST(EngineCrossBackend, BitIdenticalClocksAndTraces) {
  // The backends must be interchangeable down to the last bit: identical
  // virtual clocks AND an identical trace byte stream for a workload that
  // exercises perform, blocking waits, and tie-breaking.
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  const int n = 8;
  auto run_backend = [&](EngineBackend backend) {
    EngineOptions opt;
    opt.backend = backend;
    opt.trace = true;
    Engine eng(plat(), n, opt);
    std::vector<bool> flags(static_cast<std::size_t>(n), false);
    std::vector<double> flag_time(static_cast<std::size_t>(n), 0.0);
    const RunResult r = eng.run([&](Rank& rank) {
      const int id = rank.id();
      const int peer = (id + 3) % n;
      for (int i = 0; i < 10; ++i) {
        rank.advance(0.1 * ((id * 13 + i) % 7 + 1));
        eng.perform(rank, [&] {
          simnet::MsgRecord rec;
          rec.src_rank = id;
          rec.dst_rank = peer;
          rec.bytes = 64u * static_cast<std::uint64_t>(i + 1);
          rec.t_issue = rank.now();
          rec.t_arrival = rank.now() + 1.5;
          eng.trace().record(rec);
        });
      }
      eng.perform(rank, [&] {
        flags[static_cast<std::size_t>(id)] = true;
        flag_time[static_cast<std::size_t>(id)] = rank.now();
      });
      const int prev = (id + n - 1) % n;
      eng.wait(rank, "peer", [&]() -> std::optional<double> {
        if (!flags[static_cast<std::size_t>(prev)]) return std::nullopt;
        return flag_time[static_cast<std::size_t>(prev)] + 0.5;
      });
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return std::make_pair(r, eng.trace().records());
  };

  const auto [rf, tf] = run_backend(EngineBackend::kFibers);
  const auto [rt, tt] = run_backend(EngineBackend::kThreads);
  ASSERT_EQ(rf.rank_end_us.size(), rt.rank_end_us.size());
  for (std::size_t i = 0; i < rf.rank_end_us.size(); ++i) {
    EXPECT_EQ(rf.rank_end_us[i], rt.rank_end_us[i]) << "rank " << i;
  }
  EXPECT_EQ(rf.makespan_us, rt.makespan_us);
  ASSERT_EQ(tf.size(), tt.size());
  for (std::size_t i = 0; i < tf.size(); ++i) {
    EXPECT_EQ(tf[i].src_rank, tt[i].src_rank) << i;
    EXPECT_EQ(tf[i].dst_rank, tt[i].dst_rank) << i;
    EXPECT_EQ(tf[i].bytes, tt[i].bytes) << i;
    EXPECT_EQ(tf[i].t_issue, tt[i].t_issue) << i;
    EXPECT_EQ(tf[i].t_arrival, tt[i].t_arrival) << i;
  }
}

TEST(EngineCrossScheduler, BitIdenticalClocksAndTracesOnBothBackends) {
  // The indexed-heap scheduler must be a drop-in replacement for the linear
  // scan: same grant order (including the lowest-id tie-break), same clocks,
  // same trace bytes — on both execution backends. The body manufactures
  // wake-time ties (many ranks advancing by identical deltas) plus blocking
  // waits so both pick_min and wake paths are exercised.
  const int n = 12;
  auto run_config = [&](EngineBackend backend, SchedulerKind sched) {
    EngineOptions opt;
    opt.backend = backend;
    opt.scheduler = sched;
    opt.trace = true;
    Engine eng(plat(), n, opt);
    std::vector<bool> flags(static_cast<std::size_t>(n), false);
    std::vector<double> flag_time(static_cast<std::size_t>(n), 0.0);
    const RunResult r = eng.run([&](Rank& rank) {
      const int id = rank.id();
      const int peer = (id + 5) % n;
      for (int i = 0; i < 8; ++i) {
        // Half the ranks advance by the SAME amount each round — guaranteed
        // wake-time ties that only the lowest-id rule orders.
        rank.advance(id % 2 == 0 ? 1.0 : 0.25 * ((id + i) % 3 + 1));
        eng.perform(rank, [&] {
          simnet::MsgRecord rec;
          rec.src_rank = id;
          rec.dst_rank = peer;
          rec.bytes = 32u * static_cast<std::uint64_t>(i + 1);
          rec.t_issue = rank.now();
          rec.t_arrival = rank.now() + 2.0;
          eng.trace().record(rec);
        });
      }
      eng.perform(rank, [&] {
        flags[static_cast<std::size_t>(id)] = true;
        flag_time[static_cast<std::size_t>(id)] = rank.now();
      });
      const int prev = (id + n - 1) % n;
      eng.wait(rank, "peer", [&]() -> std::optional<double> {
        if (!flags[static_cast<std::size_t>(prev)]) return std::nullopt;
        return flag_time[static_cast<std::size_t>(prev)] + 0.125;
      });
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return std::make_pair(r, eng.trace().records());
  };

  std::vector<std::pair<EngineBackend, SchedulerKind>> configs;
  for (auto backend : {EngineBackend::kFibers, EngineBackend::kThreads}) {
    if (backend == EngineBackend::kFibers && !fibers_supported()) continue;
    configs.emplace_back(backend, SchedulerKind::kIndexedHeap);
    configs.emplace_back(backend, SchedulerKind::kLinearScan);
  }
  ASSERT_GE(configs.size(), 2u);
  const auto [r0, t0] = run_config(configs[0].first, configs[0].second);
  for (std::size_t c = 1; c < configs.size(); ++c) {
    const auto [r, t] = run_config(configs[c].first, configs[c].second);
    SCOPED_TRACE("config " + std::to_string(c));
    EXPECT_EQ(r.makespan_us, r0.makespan_us);
    ASSERT_EQ(r.rank_end_us.size(), r0.rank_end_us.size());
    for (std::size_t i = 0; i < r0.rank_end_us.size(); ++i) {
      EXPECT_EQ(r.rank_end_us[i], r0.rank_end_us[i]) << "rank " << i;
    }
    ASSERT_EQ(t.size(), t0.size());
    for (std::size_t i = 0; i < t0.size(); ++i) {
      EXPECT_EQ(t[i].src_rank, t0[i].src_rank) << i;
      EXPECT_EQ(t[i].t_issue, t0[i].t_issue) << i;
      EXPECT_EQ(t[i].t_arrival, t0[i].t_arrival) << i;
    }
  }
}

TEST(EngineWaitGate, GatedBarrierMatchesUngatedOracleAcrossSchedulers) {
  // WaitGate semantics (DESIGN.md §10): a generation-counter barrier built
  // exactly like mpi::Comm::collective, with the gate passed through
  // Engine::wait. The heap scheduler parks gated waiters in the threshold
  // heap; the linear scheduler ignores the gate and brute-force re-evaluates
  // every condition. Identical clocks across all four configs prove the
  // gated fast path wakes the same ranks at the same times as the oracle.
  const int n = 10;
  auto run_config = [&](EngineBackend backend, SchedulerKind sched) {
    EngineOptions opt;
    opt.backend = backend;
    opt.scheduler = sched;
    Engine eng(plat(), n, opt);
    std::uint64_t generation = 0;
    int entered = 0;
    double max_enter = 0.0;
    std::array<double, 4> done{};
    const RunResult r = eng.run([&](Rank& rank) {
      for (int round = 0; round < 5; ++round) {
        // Uneven arrivals (with ties) so the barrier actually reorders.
        rank.advance(0.5 * ((rank.id() + round) % 4));
        std::uint64_t my_gen = 0;
        eng.perform(rank, [&] {
          my_gen = generation;
          if (entered == 0) max_enter = 0.0;
          ++entered;
          max_enter = std::max(max_enter, rank.now());
          if (entered == n) {
            done[my_gen % done.size()] = max_enter + 1.0;
            entered = 0;
            ++generation;
          }
        });
        eng.wait(
            rank, "test.barrier",
            [&]() -> std::optional<double> {
              if (generation <= my_gen) return std::nullopt;
              return done[my_gen % done.size()];
            },
            {}, WaitGate{&generation, my_gen + 1});
      }
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return r;
  };

  std::vector<RunResult> results;
  for (auto backend : {EngineBackend::kFibers, EngineBackend::kThreads}) {
    if (backend == EngineBackend::kFibers && !fibers_supported()) continue;
    results.push_back(run_config(backend, SchedulerKind::kIndexedHeap));
    results.push_back(run_config(backend, SchedulerKind::kLinearScan));
  }
  ASSERT_GE(results.size(), 2u);
  for (std::size_t c = 1; c < results.size(); ++c) {
    SCOPED_TRACE("config " + std::to_string(c));
    EXPECT_EQ(results[c].makespan_us, results[0].makespan_us);
    ASSERT_EQ(results[c].rank_end_us.size(), results[0].rank_end_us.size());
    for (std::size_t i = 0; i < results[0].rank_end_us.size(); ++i) {
      EXPECT_EQ(results[c].rank_end_us[i], results[0].rank_end_us[i])
          << "rank " << i;
    }
  }
}

TEST(EngineWaitGate, UnreachedGateStillReportsDeadlock) {
  // A gated waiter whose counter never advances must be caught by the
  // engine's deadlock detector (gated ranks are kBlocked and counted), not
  // silently parked forever.
  EngineOptions opt;
  opt.scheduler = SchedulerKind::kIndexedHeap;
  Engine eng(plat(), 2, opt);
  std::uint64_t counter = 0;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      eng.wait(
          rank, "gate.never",
          [&]() -> std::optional<double> {
            if (counter == 0) return std::nullopt;
            return 1.0;
          },
          {}, WaitGate{&counter, 1});
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.to_string().find("deadlock"), std::string::npos)
      << r.status.to_string();
  EXPECT_NE(r.status.to_string().find("gate.never"), std::string::npos)
      << r.status.to_string();
}

TEST(EngineSchedulerDefaults, ProcessWideDefaultIsHonored) {
  const SchedulerKind saved = default_scheduler();
  set_default_scheduler(SchedulerKind::kLinearScan);
  EXPECT_EQ(EngineOptions{}.scheduler, SchedulerKind::kLinearScan);
  EXPECT_STREQ(to_string(SchedulerKind::kLinearScan), "linear");
  set_default_scheduler(saved);
  EXPECT_EQ(EngineOptions{}.scheduler, saved);
  EXPECT_STREQ(to_string(SchedulerKind::kIndexedHeap), "heap");
}

TEST(EngineBackendDefaults, ProcessWideDefaultIsHonored) {
  const EngineBackend saved = default_backend();
  set_default_backend(EngineBackend::kThreads);
  {
    Engine eng(plat(), 2);
    EXPECT_EQ(eng.backend(), EngineBackend::kThreads);
  }
  set_default_backend(saved);
  Engine eng(plat(), 2);
  EXPECT_EQ(eng.backend(), saved);
  // Watchdog default plumbs through the same way.
  const double saved_wd = default_watchdog_virtual_us();
  set_default_watchdog_virtual_us(123.0);
  EXPECT_DOUBLE_EQ(EngineOptions{}.watchdog_virtual_us, 123.0);
  set_default_watchdog_virtual_us(saved_wd);
}

// ---------------------------------------------------------------------------
// Metrics (DESIGN.md §9)
// ---------------------------------------------------------------------------

TEST_P(EngineBackends, MetricsDisabledByDefaultAndReportEmpty) {
  Engine eng(plat(), 2, opts());
  EXPECT_FALSE(eng.metrics().enabled());
  const RunResult r = eng.run([](Rank& rank) { rank.advance(1.0); });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const MetricsReport rep = eng.metrics_report();
  EXPECT_TRUE(rep.ranks.empty());
  EXPECT_TRUE(rep.links.empty());
  EXPECT_TRUE(rep.stack_hwm_bytes.empty());
}

TEST_P(EngineBackends, MetricsCountWaitsAndBlockedTime) {
  EngineOptions o = opts();
  o.metrics = true;
  Engine eng(plat(), 2, o);
  bool flag = false;
  const RunResult r = eng.run([&](Rank& rank) {
    if (rank.id() == 0) {
      rank.advance(7.0);
      eng.perform(rank, [&] { flag = true; });
    } else {
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        return flag ? std::optional<double>(7.0) : std::nullopt;
      });
    }
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const MetricsReport rep = eng.metrics_report();
  ASSERT_EQ(rep.ranks.size(), 2u);
  EXPECT_EQ(rep.ranks[1].ops.waits, 1u);
  // Rank 1 entered the wait at t=0 and woke at t=7.
  EXPECT_DOUBLE_EQ(rep.ranks[1].blocked_us, 7.0);
  EXPECT_EQ(rep.ranks[1].wait_us.total(), 1u);
  EXPECT_EQ(rep.ranks[0].ops.waits, 0u);
  EXPECT_DOUBLE_EQ(rep.makespan_us, 7.0);
}

TEST_P(EngineBackends, MetricsResetBetweenRuns) {
  EngineOptions o = opts();
  o.metrics = true;
  Engine eng(plat(), 2, o);
  bool flag = false;
  auto body = [&](Rank& rank) {
    if (rank.id() == 0) {
      rank.advance(2.0);
      eng.perform(rank, [&] { flag = true; });
    } else {
      eng.wait(rank, "flag", [&]() -> std::optional<double> {
        return flag ? std::optional<double>(2.0) : std::nullopt;
      });
    }
  };
  ASSERT_TRUE(eng.run(body).ok());
  const RankMetrics first = eng.metrics_report().totals();
  EXPECT_EQ(first.ops.waits, 1u);
  flag = false;
  ASSERT_TRUE(eng.run(body).ok());
  // Counters re-zero each run: the second report equals the first instead of
  // doubling.
  const RankMetrics second = eng.metrics_report().totals();
  EXPECT_EQ(second.ops.waits, first.ops.waits);
  EXPECT_EQ(second.blocked_us, first.blocked_us);
}

// The per-run report must be bit-identical across execution backends: same
// CSV bytes from a fiber engine and a thread engine running the same body.
TEST(EngineMetrics, ReportBytesIdenticalAcrossBackends) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  auto run_one = [](EngineBackend backend) {
    EngineOptions o;
    o.backend = backend;
    o.metrics = true;
    Engine eng(plat(), 8, o);
    bool ready = false;
    const RunResult r = eng.run([&](Rank& rank) {
      rank.advance(0.5 * (rank.id() + 1));
      if (rank.id() == 0) {
        eng.perform(rank, [&] { ready = true; });
      } else {
        eng.wait(rank, "ready", [&]() -> std::optional<double> {
          return ready ? std::optional<double>(4.0) : std::nullopt;
        });
      }
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return eng.metrics_report().csv_rows();
  };
  const auto fib = run_one(EngineBackend::kFibers);
  const auto thr = run_one(EngineBackend::kThreads);
  EXPECT_EQ(fib, thr);
}

TEST(EngineMetrics, FiberStackHighWaterMarksAreMeasured) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  EngineOptions o;
  o.backend = EngineBackend::kFibers;
  o.metrics = true;
  Engine eng(plat(), 4, o);
  ASSERT_TRUE(eng.run([](Rank& rank) {
    // Burn some stack so the high-water-mark is visibly above zero.
    volatile char sink[2048];
    for (std::size_t i = 0; i < sizeof(sink); ++i) sink[i] = 'x';
    rank.advance(static_cast<double>(sink[0]));
  }).ok());
  const MetricsReport rep = eng.metrics_report();
  ASSERT_EQ(rep.stack_hwm_bytes.size(), 4u);
  EXPECT_GT(rep.stack_usable_bytes, 0u);
  for (std::size_t hwm : rep.stack_hwm_bytes) {
    EXPECT_GT(hwm, 2048u);
    EXPECT_LE(hwm, rep.stack_usable_bytes);
  }
  // The stack section exports through stack_csv_rows, not csv_rows — the
  // latter must stay backend-independent.
  EXPECT_FALSE(rep.stack_csv_rows().empty());
  for (const auto& row : rep.csv_rows()) EXPECT_NE(row[0], "stack");
}

TEST(EngineMetrics, ThreadBackendHasNoStackSection) {
  EngineOptions o;
  o.backend = EngineBackend::kThreads;
  o.metrics = true;
  Engine eng(plat(), 2, o);
  ASSERT_TRUE(eng.run([](Rank& rank) { rank.advance(1.0); }).ok());
  EXPECT_TRUE(eng.metrics_report().stack_hwm_bytes.empty());
  EXPECT_TRUE(eng.metrics_report().stack_csv_rows().empty());
}

TEST(EngineMetrics, ProcessWideDefaultIsHonored) {
  ASSERT_FALSE(default_metrics()) << "tests assume metrics default off";
  set_default_metrics(true);
  EXPECT_TRUE(EngineOptions{}.metrics);
  set_default_metrics(false);
  EXPECT_FALSE(EngineOptions{}.metrics);
}

// ---------------------------------------------------------------------------
// StackPool — pooled fiber stacks (DESIGN.md §12)
// ---------------------------------------------------------------------------

namespace {

// Deliberately odd slot size so these tests get their own pool size class,
// undisturbed by other tests (and the pool default) using standard sizes.
constexpr std::size_t kOddStackBytes = 9 * 4096;

__attribute__((noinline)) std::size_t burn_stack(int depth) {
  volatile char pad[1024];
  pad[0] = static_cast<char>(depth);
  pad[sizeof(pad) - 1] = 1;
  if (depth <= 0) return static_cast<std::size_t>(pad[0]);
  return burn_stack(depth - 1) + static_cast<std::size_t>(pad[sizeof(pad) - 1]);
}

}  // namespace

TEST(EngineStackPool, SlotsAreRecycledAcrossEngineLifetimes) {
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  EngineOptions o;
  o.backend = EngineBackend::kFibers;
  o.stack_pool = true;
  o.fiber_stack_bytes = kOddStackBytes;
  const StackPoolStats before = stack_pool_stats();
  {
    Engine eng(plat(), 8, o);
    ASSERT_TRUE(eng.run([](Rank& rank) { rank.advance(1.0); }).ok());
  }  // ~Engine releases every slot back to the freelist
  const StackPoolStats mid = stack_pool_stats();
  EXPECT_GT(mid.total_slots, before.total_slots);  // first engine carved
  EXPECT_GE(mid.free_slots, before.free_slots + 8);
  {
    Engine eng(plat(), 8, o);
    ASSERT_TRUE(eng.run([](Rank& rank) { rank.advance(1.0); }).ok());
    // The second engine reuses the released slots: nothing new is carved.
    EXPECT_EQ(stack_pool_stats().total_slots, mid.total_slots);
    EXPECT_EQ(stack_pool_stats().free_slots, mid.free_slots - 8);
  }
  EXPECT_EQ(stack_pool_stats().free_slots, mid.free_slots);
}

TEST(EngineStackPool, ReusedSlotsRepoisonSoHwmIsPerTenant) {
  // Engine A burns deep frames, dies, and its slots go back to the pool
  // dirty. Engine B reuses them with a shallow body: poison_stack() must
  // overwrite A's scribbles or B's high-water marks report A's depth.
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  EngineOptions o;
  o.backend = EngineBackend::kFibers;
  o.stack_pool = true;
  o.fiber_stack_bytes = kOddStackBytes;
  o.metrics = true;
  auto peak_hwm = [](const Engine& eng) {
    std::size_t peak = 0;
    for (std::size_t h : eng.metrics_report().stack_hwm_bytes) {
      peak = std::max(peak, h);
    }
    return peak;
  };
  std::size_t deep = 0;
  {
    Engine eng(plat(), 4, o);
    ASSERT_TRUE(eng.run([](Rank& rank) {
      rank.advance(static_cast<double>(burn_stack(16)) * 0 + 1.0);
    }).ok());
    deep = peak_hwm(eng);
    EXPECT_GE(deep, 16u * 1024u);  // 16 frames x 1 KiB pad each
    EXPECT_LE(deep, kOddStackBytes);
  }
  {
    Engine eng(plat(), 4, o);
    ASSERT_TRUE(eng.run([](Rank& rank) { rank.advance(1.0); }).ok());
    const std::size_t shallow = peak_hwm(eng);
    EXPECT_GT(shallow, 0u);
    EXPECT_LT(shallow, deep / 2);
  }
}

TEST(EngineStackPool, PooledAndUnpooledRunsAreBitIdentical) {
  // Stack placement is invisible to the simulation: same clocks either way.
  if (!fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  auto run_once = [&](bool pooled) {
    EngineOptions o;
    o.backend = EngineBackend::kFibers;
    o.stack_pool = pooled;
    o.fiber_stack_bytes = kOddStackBytes;
    Engine eng(plat(), 12, o);
    std::vector<bool> flags(12, false);
    const RunResult r = eng.run([&](Rank& rank) {
      const int id = rank.id();
      rank.advance(0.25 * (id % 5 + 1));
      eng.perform(rank, [&] { flags[static_cast<std::size_t>(id)] = true; });
      const int prev = (id + 11) % 12;
      eng.wait(rank, "peer", [&]() -> std::optional<double> {
        if (!flags[static_cast<std::size_t>(prev)]) return std::nullopt;
        return rank.now();
      });
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return r;
  };
  const RunResult a = run_once(true);
  const RunResult b = run_once(false);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  ASSERT_EQ(a.rank_end_us.size(), b.rank_end_us.size());
  for (std::size_t i = 0; i < a.rank_end_us.size(); ++i) {
    EXPECT_EQ(a.rank_end_us[i], b.rank_end_us[i]) << i;
  }
}

TEST(EngineStackPool, ProcessWideDefaultIsHonored) {
  ASSERT_TRUE(default_stack_pool()) << "pooled stacks should default on";
  EXPECT_TRUE(EngineOptions{}.stack_pool);
  set_default_stack_pool(false);
  EXPECT_FALSE(EngineOptions{}.stack_pool);
  set_default_stack_pool(true);
  EXPECT_TRUE(EngineOptions{}.stack_pool);
}

}  // namespace
}  // namespace mrl::runtime
