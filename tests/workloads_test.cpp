// Workload correctness: every communication variant must reproduce the
// serial reference numerics, across platforms and rank counts (TEST_P).
#include <gtest/gtest.h>

#include "simnet/platform.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl::workloads {
namespace {

// ---------------------------------------------------------------------------
// Stencil
// ---------------------------------------------------------------------------

stencil::Config small_stencil() {
  stencil::Config cfg;
  cfg.n = 64;
  cfg.iters = 4;
  return cfg;
}

TEST(StencilDecomp, GridChoicesMultiplyOut) {
  int px = 0, py = 0;
  stencil::choose_grid(12, &px, &py);
  EXPECT_EQ(px * py, 12);
  stencil::choose_grid(7, &px, &py);
  EXPECT_EQ(px * py, 7);
  stencil::choose_grid(1, &px, &py);
  EXPECT_EQ(px * py, 1);
}

TEST(StencilDecomp, BlocksTileTheGrid) {
  const int n = 100, nranks = 6;
  std::vector<int> covered(static_cast<std::size_t>(n) * n, 0);
  for (int r = 0; r < nranks; ++r) {
    const stencil::Decomp d = stencil::make_decomp(n, nranks, r, 0, 0);
    for (int y = d.y0; y < d.y1; ++y) {
      for (int x = d.x0; x < d.x1; ++x) {
        ++covered[static_cast<std::size_t>(y) * n + x];
      }
    }
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(StencilDecomp, NeighborsAreMutual) {
  const int n = 64, nranks = 8;
  for (int r = 0; r < nranks; ++r) {
    const stencil::Decomp d = stencil::make_decomp(n, nranks, r, 0, 0);
    if (d.east >= 0) {
      const stencil::Decomp e = stencil::make_decomp(n, nranks, d.east, 0, 0);
      EXPECT_EQ(e.west, r);
    }
    if (d.south >= 0) {
      const stencil::Decomp s2 = stencil::make_decomp(n, nranks, d.south, 0, 0);
      EXPECT_EQ(s2.north, r);
    }
  }
}

class StencilRanks : public ::testing::TestWithParam<int> {};

TEST_P(StencilRanks, TwoSidedMatchesSerialBitwise) {
  const auto r = stencil::run_two_sided(simnet::Platform::perlmutter_cpu(),
                                        GetParam(), small_stencil());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.max_abs_err, 0.0);
  EXPECT_GT(r.time_us, 0.0);
}

TEST_P(StencilRanks, OneSidedMatchesSerialBitwise) {
  const auto r = stencil::run_one_sided(simnet::Platform::perlmutter_cpu(),
                                        GetParam(), small_stencil());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.max_abs_err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, StencilRanks, ::testing::Values(1, 2, 4, 6, 9, 16));

TEST(StencilGpu, MatchesSerialOnPerlmutterGpu) {
  const auto r = stencil::run_shmem_gpu(simnet::Platform::perlmutter_gpu(), 4,
                                        small_stencil());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.max_abs_err, 0.0);
}

TEST(StencilGpu, MatchesSerialOnSummitDumbbell) {
  const auto r = stencil::run_shmem_gpu(simnet::Platform::summit_gpu(), 6,
                                        small_stencil());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.max_abs_err, 0.0);
}

TEST(StencilGpu, HostStagedMatchesSerialAndLosesToGpuInitiated) {
  // The paper's motivation: host-initiated staging (D2H + MPI + H2D with
  // launch overheads) is slower than GPU-initiated put-with-signal for
  // latency-sensitive halo exchanges — and both are numerically identical.
  stencil::Config cfg = small_stencil();
  const auto plat = simnet::Platform::perlmutter_gpu();
  const auto staged = stencil::run_host_staged_gpu(plat, 4, cfg);
  const auto direct = stencil::run_shmem_gpu(plat, 4, cfg);
  ASSERT_TRUE(staged.status.is_ok()) << staged.status.to_string();
  EXPECT_EQ(staged.max_abs_err, 0.0);
  EXPECT_GT(staged.time_us, direct.time_us);
}

TEST(StencilMsgs, FourMessagesPerSyncForInteriorRanks) {
  // 3x3 rank grid: the center rank has 4 neighbors (Table II: msg/sync = 4).
  stencil::Config cfg = small_stencil();
  cfg.n = 66;
  const auto r =
      stencil::run_two_sided(simnet::Platform::perlmutter_cpu(), 9, cfg);
  ASSERT_TRUE(r.status.is_ok());
  // Average over edge+corner+center ranks lies between 2 and 4.
  EXPECT_GT(r.msgs.avg_msgs_per_sync, 2.0);
  EXPECT_LE(r.msgs.avg_msgs_per_sync, 4.0);
}

TEST(StencilPerf, CpuOneSidedRoughlyEqualsTwoSided) {
  // Paper Fig 5: stencil is bandwidth/compute bound on CPUs, so the 20%
  // latency advantage of one-sided does not show end-to-end.
  stencil::Config cfg;
  cfg.n = 1024;  // large enough that compute dominates, as in the paper
  cfg.iters = 2;
  cfg.verify = false;
  const auto two =
      stencil::run_two_sided(simnet::Platform::perlmutter_cpu(), 16, cfg);
  const auto one =
      stencil::run_one_sided(simnet::Platform::perlmutter_cpu(), 16, cfg);
  ASSERT_TRUE(two.status.is_ok());
  ASSERT_TRUE(one.status.is_ok());
  EXPECT_NEAR(one.time_us / two.time_us, 1.0, 0.15);
}

// ---------------------------------------------------------------------------
// SpTRSV
// ---------------------------------------------------------------------------

sptrsv::GenConfig small_gen() {
  sptrsv::GenConfig g;
  g.n = 600;
  g.min_sn = 3;
  g.max_sn = 40;
  g.fill = 3.0;
  return g;
}

TEST(SptrsvMatrix, GeneratorInvariants) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  EXPECT_EQ(L.n(), 600);
  int cols = 0;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    cols += L.sn_size(J);
    EXPECT_GE(L.sn_size(J), 1);
    EXPECT_LE(L.sn_size(J), 40);
    int prev_i = J;
    for (const auto& blk : L.col(J)) {
      EXPECT_GT(blk.I, prev_i);  // sorted ascending, strictly below diagonal
      prev_i = blk.I;
      EXPECT_EQ(blk.vals.size(),
                static_cast<std::size_t>(L.sn_size(blk.I)) * L.sn_size(J));
    }
    // Diagonal dominance of the triangular block diag entries.
    const auto& dg = L.diag(J);
    for (int r = 0; r < L.sn_size(J); ++r) {
      EXPECT_GE(dg[static_cast<std::size_t>(r) * L.sn_size(J) + r], 1.0);
    }
  }
  EXPECT_EQ(cols, 600);
  EXPECT_GT(L.nnz(), 0u);
}

TEST(SptrsvMatrix, DeterministicForSeed) {
  const auto a = sptrsv::SupernodalMatrix::generate(small_gen());
  const auto b = sptrsv::SupernodalMatrix::generate(small_gen());
  ASSERT_EQ(a.num_supernodes(), b.num_supernodes());
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.diag(0), b.diag(0));
}

TEST(SptrsvReference, SolvesTheSystem) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  const auto b = L.make_rhs(3);
  const auto x = sptrsv::reference_solve(L, b);
  // Residual check: recompute L*x column by column.
  std::vector<double> lx(static_cast<std::size_t>(L.n()), 0.0);
  for (int J = 0; J < L.num_supernodes(); ++J) {
    const int f = L.sn_first(J);
    const int cj = L.sn_size(J);
    for (int r = 0; r < cj; ++r) {
      for (int c = 0; c <= r; ++c) {
        lx[static_cast<std::size_t>(f + r)] +=
            L.diag(J)[static_cast<std::size_t>(r) * cj + c] *
            x[static_cast<std::size_t>(f + c)];
      }
    }
    for (const auto& blk : L.col(J)) {
      const int fi = L.sn_first(blk.I);
      for (int r = 0; r < L.sn_size(blk.I); ++r) {
        for (int c = 0; c < cj; ++c) {
          lx[static_cast<std::size_t>(fi + r)] +=
              blk.vals[static_cast<std::size_t>(r) * cj + c] *
              x[static_cast<std::size_t>(f + c)];
        }
      }
    }
  }
  EXPECT_LT(sptrsv::relative_error(lx, b), 1e-10);
}

TEST(SptrsvPlan, MessageCountsBalance) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  const int P = 6;
  // Sum over receivers of expected messages equals sum over plan structure.
  int total_expected = 0;
  std::size_t total_slots = 0;
  for (int r = 0; r < P; ++r) {
    const auto plan = sptrsv::SolvePlan::build(L, P, r);
    EXPECT_EQ(plan.expected_x + plan.expected_lsum, plan.total_slots(r));
    total_expected += plan.expected_x + plan.expected_lsum;
    total_slots += static_cast<std::size_t>(plan.total_slots(r));
  }
  EXPECT_EQ(static_cast<std::size_t>(total_expected), total_slots);
  EXPECT_GT(total_expected, 0);
}

class SptrsvRanks : public ::testing::TestWithParam<int> {};

TEST_P(SptrsvRanks, TwoSidedMatchesReference) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  sptrsv::Config cfg;
  const auto r = sptrsv::run_two_sided(simnet::Platform::perlmutter_cpu(),
                                       GetParam(), L, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_LT(r.rel_err, 1e-9);
}

TEST_P(SptrsvRanks, OneSidedMatchesReference) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  sptrsv::Config cfg;
  const auto r = sptrsv::run_one_sided(simnet::Platform::perlmutter_cpu(),
                                       GetParam(), L, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_LT(r.rel_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SptrsvRanks, ::testing::Values(1, 2, 4, 6, 8, 12));

TEST(SptrsvGpu, MatchesReferenceOnBothGpuPlatforms) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  sptrsv::Config cfg;
  const auto a =
      sptrsv::run_shmem_gpu(simnet::Platform::perlmutter_gpu(), 4, L, cfg);
  ASSERT_TRUE(a.status.is_ok()) << a.status.to_string();
  EXPECT_LT(a.rel_err, 1e-9);
  const auto b =
      sptrsv::run_shmem_gpu(simnet::Platform::summit_gpu(), 6, L, cfg);
  ASSERT_TRUE(b.status.is_ok()) << b.status.to_string();
  EXPECT_LT(b.rel_err, 1e-9);
}

TEST(SptrsvPerf, OneSidedSlowerThanTwoSidedOnCpu) {
  // Fig 8 headline: 4 MPI ops per message + the ack scan make one-sided
  // SpTRSV slower than two-sided on CPUs.
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  sptrsv::Config cfg;
  cfg.verify = false;
  const auto two =
      sptrsv::run_two_sided(simnet::Platform::perlmutter_cpu(), 8, L, cfg);
  const auto one =
      sptrsv::run_one_sided(simnet::Platform::perlmutter_cpu(), 8, L, cfg);
  ASSERT_TRUE(two.status.is_ok());
  ASSERT_TRUE(one.status.is_ok());
  EXPECT_GT(one.time_us, two.time_us);
}

TEST(SptrsvMsgs, OneMessagePerSyncAndPaperSizes) {
  const auto L = sptrsv::SupernodalMatrix::generate(small_gen());
  sptrsv::Config cfg;
  const auto r = sptrsv::run_two_sided(simnet::Platform::perlmutter_cpu(), 8,
                                       L, cfg);
  ASSERT_TRUE(r.status.is_ok());
  // Table II: 1 msg/sync. Our sender-side trace epochs batch a fan-out of
  // x_J to several destinations into one epoch, so the average sits between
  // 1 and 2 while the per-receive behaviour is one message per sync.
  EXPECT_GE(r.msgs.avg_msgs_per_sync, 1.0);
  EXPECT_LE(r.msgs.avg_msgs_per_sync, 2.0);
  EXPECT_GE(r.msgs.min_msg_bytes, 24.0);   // >= 3 words + header
  EXPECT_LE(r.msgs.max_msg_bytes, 1048.0); // <= 130 words + header
}

// ---------------------------------------------------------------------------
// HashTable
// ---------------------------------------------------------------------------

hashtable::Config small_ht() {
  hashtable::Config cfg;
  cfg.total_inserts = 3000;
  cfg.slots_per_rank = 1u << 12;
  cfg.overflow_per_rank = 1u << 12;
  return cfg;
}

TEST(HashtablePlacement, DeterministicAndInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t key = hashtable::key_for(1, i);
    EXPECT_NE(key, 0u);
    const auto p = hashtable::place(key, 8, 1024);
    EXPECT_GE(p.owner, 0);
    EXPECT_LT(p.owner, 8);
    EXPECT_LT(p.slot, 1024u);
    const auto q = hashtable::place(key, 8, 1024);
    EXPECT_EQ(p.owner, q.owner);
    EXPECT_EQ(p.slot, q.slot);
  }
}

class HashtableRanks : public ::testing::TestWithParam<int> {};

TEST_P(HashtableRanks, OneSidedStoresEveryKey) {
  const auto r = hashtable::run_one_sided(simnet::Platform::perlmutter_cpu(),
                                          GetParam(), small_ht());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GT(r.collisions, 0u);  // load factor high enough to chain
}

TEST_P(HashtableRanks, TwoSidedStoresEveryKey) {
  const auto r = hashtable::run_two_sided(simnet::Platform::perlmutter_cpu(),
                                          GetParam(), small_ht());
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
}

INSTANTIATE_TEST_SUITE_P(Ranks, HashtableRanks, ::testing::Values(1, 2, 4, 8));

TEST(HashtableOverflow, RequiredOverflowIsExactAndOrderIndependent) {
  // One key wins each table slot; every other key hashed to that slot takes
  // exactly one overflow node, whatever the insert interleaving. So the
  // requirement equals max over owners of sum_slot max(0, count - 1).
  hashtable::Config cfg;
  cfg.total_inserts = 5000;
  cfg.slots_per_rank = 256;  // heavy chaining
  for (int nranks : {1, 2, 8}) {
    const std::uint64_t need = hashtable::required_overflow_per_rank(cfg, nranks);
    EXPECT_GT(need, 0u) << nranks;
    // Oracle: brute-force per-slot counts.
    const std::uint64_t total =
        (cfg.total_inserts / static_cast<std::uint64_t>(nranks)) *
        static_cast<std::uint64_t>(nranks);
    std::map<std::pair<int, std::uint64_t>, std::uint64_t> counts;
    for (std::uint64_t i = 0; i < total; ++i) {
      const auto p = hashtable::place(hashtable::key_for(cfg.seed, i), nranks,
                                      cfg.slots_per_rank);
      ++counts[{p.owner, p.slot}];
    }
    std::vector<std::uint64_t> per_owner(static_cast<std::size_t>(nranks), 0);
    for (const auto& [k, c] : counts) {
      per_owner[static_cast<std::size_t>(k.first)] += c - 1;
    }
    const std::uint64_t oracle =
        *std::max_element(per_owner.begin(), per_owner.end());
    EXPECT_EQ(need, oracle) << nranks;
  }
}

TEST(HashtableOverflow, AutoSizingGrowsOnlyAndPreservesFittingConfigs) {
  hashtable::Config cfg;
  cfg.total_inserts = 5000;
  cfg.slots_per_rank = 256;
  const std::uint64_t need = hashtable::required_overflow_per_rank(cfg, 4);
  cfg.overflow_per_rank = need + 100;  // already ample
  const auto same = hashtable::with_sized_overflow(cfg, 4);
  EXPECT_EQ(same.overflow_per_rank, cfg.overflow_per_rank);  // untouched
  cfg.overflow_per_rank = 1;  // would previously abort the run
  const auto grown = hashtable::with_sized_overflow(cfg, 4);
  EXPECT_EQ(grown.overflow_per_rank, need);
  EXPECT_EQ(grown.slots_per_rank, cfg.slots_per_rank);  // placement untouched
}

TEST(HashtableOverflow, UndersizedConfigAutoHealsInsteadOfAborting) {
  // The fig07 --full failure mode: this config used to MRL_CHECK-abort the
  // whole process ("overflow heap exhausted"). The runners now auto-size
  // via with_sized_overflow, so the same config must complete and verify
  // (and if sizing were ever bypassed, the inserters return
  // Status(kResourceExhausted) instead of aborting — see one_sided.cpp).
  hashtable::Config cfg;
  cfg.total_inserts = 4000;
  cfg.slots_per_rank = 64;   // forces deep chains
  cfg.overflow_per_rank = 1; // hopeless without auto-sizing
  const auto r = hashtable::run_one_sided(simnet::Platform::perlmutter_cpu(),
                                          4, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GT(r.collisions, 0u);
}

TEST(HashtableGpu, StoresEveryKeyOnBothGpuPlatforms) {
  const auto a = hashtable::run_shmem_gpu(simnet::Platform::perlmutter_gpu(),
                                          4, small_ht());
  ASSERT_TRUE(a.status.is_ok()) << a.status.to_string();
  EXPECT_TRUE(a.verify_ok);
  const auto b =
      hashtable::run_shmem_gpu(simnet::Platform::summit_gpu(), 6, small_ht());
  ASSERT_TRUE(b.status.is_ok()) << b.status.to_string();
  EXPECT_TRUE(b.verify_ok);
}

TEST(HashtablePerf, OneSidedWinsAtScaleLosesAtTwoRanks) {
  // Fig 9: one-sided ~5x faster at high rank counts, but SLOWER at P=2
  // (a 2 us CAS vs a single 1.1 us two-sided message round).
  hashtable::Config cfg = small_ht();
  cfg.verify = false;
  const auto p = simnet::Platform::perlmutter_cpu();
  const auto one16 = hashtable::run_one_sided(p, 16, cfg);
  const auto two16 = hashtable::run_two_sided(p, 16, cfg);
  ASSERT_TRUE(one16.status.is_ok());
  ASSERT_TRUE(two16.status.is_ok());
  EXPECT_LT(one16.time_us, two16.time_us);
  EXPECT_GT(two16.time_us / one16.time_us, 2.0);

  const auto one2 = hashtable::run_one_sided(p, 2, cfg);
  const auto two2 = hashtable::run_two_sided(p, 2, cfg);
  EXPECT_GT(one2.time_us, two2.time_us);
}

}  // namespace
}  // namespace mrl::workloads
