// Virtual-time profiler (DESIGN.md §14): per-rank execution spans, the
// deterministic ProfileCapture selection, Perfetto/Chrome + CSV exports, the
// critical-path analyzer's exact makespan partition, the --trace-ranks
// filter, the --check-report JSON schema, and strict flag parsing.
//
// The load-bearing properties: every exported byte is identical across
// execution backends, schedulers, and job counts; category totals sum
// EXACTLY (integer picoseconds) to the run's final virtual time; and spans
// recording perturbs nothing — simulated times are bitwise unchanged.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "check/checker.hpp"
#include "core/sweep.hpp"
#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "runtime/engine.hpp"
#include "runtime/profiler.hpp"
#include "simnet/critpath.hpp"
#include "simnet/platform.hpp"
#include "simnet/trace_export.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl {
namespace {

using runtime::Engine;
using runtime::EngineBackend;
using runtime::EngineOptions;
using runtime::ProfileCapture;
using runtime::SchedulerKind;

bool contains(const std::string& hay, const char* needle) {
  return hay.find(needle) != std::string::npos;
}

/// Restores the process-wide profiler/backend defaults a test flips.
struct DefaultsGuard {
  ~DefaultsGuard() {
    runtime::set_default_trace(false);
    runtime::set_default_spans(false);
    runtime::set_default_trace_ranks({0, -1});
    if (runtime::fibers_supported()) {
      runtime::set_default_backend(EngineBackend::kFibers);
    }
    runtime::set_default_scheduler(SchedulerKind::kIndexedHeap);
    check::set_default_check(false);
    check::set_default_check_report(false);
    check::CheckReportRegistry::instance().reset();
    ProfileCapture::instance().reset();
  }
};

/// Runs the small stencil under the process-wide defaults and returns the
/// ProfileCapture winner (the capture the --trace/--profile dumps would use).
simnet::RunCapture captured_stencil(int nranks = 16) {
  ProfileCapture::instance().reset();
  workloads::stencil::Config cfg;
  cfg.n = 64;
  cfg.iters = 3;
  const auto r = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(nranks > 128 ? nranks / 128 : 1),
      nranks, cfg);
  EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(ProfileCapture::instance().has_capture());
  return ProfileCapture::instance().capture();
}

struct Exports {
  std::string spans_csv;
  std::string chrome;
  std::string profile;
};

Exports export_all(const simnet::RunCapture& c) {
  Exports e;
  std::ostringstream s1, s2;
  simnet::export_spans_csv(c, s1);
  simnet::export_capture_chrome(c, s2);
  e.spans_csv = s1.str();
  e.chrome = s2.str();
  simnet::CritPathInput in;
  in.nranks = c.nranks;
  in.msgs = &c.msgs;
  in.spans = &c.spans;
  in.rank_end_us = &c.rank_end_us;
  in.dlink_names = &c.dlink_names;
  e.profile = simnet::analyze_critical_path(in).text;
  return e;
}

// --- byte-identity across backends × schedulers ---------------------------

TEST(ProfileIdentity, SpansChromeAndCritPathAcrossBackendsAndSchedulers) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);

  Exports base;
  bool have_base = false;
  for (EngineBackend b : {EngineBackend::kFibers, EngineBackend::kThreads}) {
    if (b == EngineBackend::kFibers && !runtime::fibers_supported()) continue;
    for (SchedulerKind s :
         {SchedulerKind::kIndexedHeap, SchedulerKind::kLinearScan}) {
      runtime::set_default_backend(b);
      runtime::set_default_scheduler(s);
      const Exports e = export_all(captured_stencil());
      EXPECT_FALSE(e.spans_csv.empty());
      EXPECT_TRUE(contains(e.profile, "critical path: makespan"));
      if (!have_base) {
        base = e;
        have_base = true;
        continue;
      }
      EXPECT_EQ(base.spans_csv, e.spans_csv)
          << "spans CSV differs under backend/scheduler variation";
      EXPECT_EQ(base.chrome, e.chrome)
          << "chrome trace differs under backend/scheduler variation";
      EXPECT_EQ(base.profile, e.profile)
          << "critical-path report differs under backend/scheduler variation";
    }
  }
  ASSERT_TRUE(have_base);
}

// ProfileCapture keeps one deterministic winner even when a sweep completes
// thousands of runs in a jobs-dependent order.
TEST(ProfileIdentity, CaptureIsIndependentOfJobsOrder) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);

  const simnet::Platform plat = simnet::Platform::perlmutter_cpu(1);
  Exports base;
  for (int jobs : {1, 4}) {
    ProfileCapture::instance().reset();
    core::SweepConfig cfg = core::SweepConfig::defaults(core::SweepKind::kOneSidedMpi);
    cfg.iters = 2;
    cfg.jobs = jobs;
    const auto sweep = core::run_sweep(plat, cfg);
    ASSERT_TRUE(sweep.is_ok()) << sweep.status().to_string();
    ASSERT_TRUE(ProfileCapture::instance().has_capture());
    const Exports e = export_all(ProfileCapture::instance().capture());
    if (jobs == 1) {
      base = e;
      continue;
    }
    EXPECT_EQ(base.spans_csv, e.spans_csv) << "capture depends on --jobs";
    EXPECT_EQ(base.chrome, e.chrome) << "capture depends on --jobs";
    EXPECT_EQ(base.profile, e.profile) << "capture depends on --jobs";
  }
}

// --- the exact-partition invariant ----------------------------------------

void expect_exact_partition(const simnet::RunCapture& c) {
  simnet::CritPathInput in;
  in.nranks = c.nranks;
  in.msgs = &c.msgs;
  in.spans = &c.spans;
  in.rank_end_us = &c.rank_end_us;
  in.dlink_names = &c.dlink_names;
  const simnet::CritPathReport rep = simnet::analyze_critical_path(in);
  EXPECT_EQ(rep.total_pico(), rep.makespan_pico)
      << "category totals must partition the makespan exactly";
  EXPECT_EQ(rep.makespan_pico,
            static_cast<std::uint64_t>(std::llround(c.makespan_us * 1e6)));
  EXPECT_FALSE(rep.truncated);
  EXPECT_GE(rep.end_rank, 0);
  EXPECT_TRUE(contains(rep.text, "category totals"));
}

TEST(CritPath, TotalsPartitionMakespanOnStencil) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  expect_exact_partition(captured_stencil());
}

// The acceptance-scale configuration: the paper-shaped 4096-rank stencil.
TEST(CritPath, TotalsPartitionMakespanOnStencil4096Ranks) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  ProfileCapture::instance().reset();
  workloads::stencil::Config cfg;
  cfg.n = 256;
  cfg.iters = 2;
  const auto r = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(32), 4096, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(ProfileCapture::instance().has_capture());
  expect_exact_partition(ProfileCapture::instance().capture());
}

TEST(CritPath, TotalsPartitionMakespanOnSptrsv) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  ProfileCapture::instance().reset();
  workloads::sptrsv::GenConfig g;
  g.n = 1500;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  const auto r = workloads::sptrsv::run_two_sided(
      simnet::Platform::perlmutter_cpu(1), 8, L, {});
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(ProfileCapture::instance().has_capture());
  expect_exact_partition(ProfileCapture::instance().capture());
}

TEST(CritPath, TotalsPartitionMakespanOnHashtable) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  ProfileCapture::instance().reset();
  workloads::hashtable::Config cfg;
  cfg.total_inserts = 4000;
  const auto r = workloads::hashtable::run_one_sided(
      simnet::Platform::perlmutter_cpu(1), 8, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(ProfileCapture::instance().has_capture());
  expect_exact_partition(ProfileCapture::instance().capture());
}

// --- zero perturbation -----------------------------------------------------

TEST(Spans, RecordingDoesNotPerturbSimulatedTime) {
  DefaultsGuard guard;
  workloads::stencil::Config cfg;
  cfg.n = 64;
  cfg.iters = 3;
  const auto plain = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(1), 16, cfg);
  ASSERT_TRUE(plain.status.is_ok());
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  const auto traced = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(1), 16, cfg);
  ASSERT_TRUE(traced.status.is_ok());
  EXPECT_EQ(plain.time_us, traced.time_us);  // bitwise, not approximately
}

// --- deadlock reports carry span tails -------------------------------------

Status run_deadlocked(bool spans) {
  EngineOptions opt;
  opt.trace = spans;
  opt.spans = spans;
  Engine eng(simnet::Platform::perlmutter_cpu(1), 2, opt);
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    double v = 0;
    if (c.rank() == 0) {
      // A real message first, so rank 0 has history to report...
      c.send(&v, sizeof(v), 1, 0);
      c.recv(&v, sizeof(v), 1, 1);  // ...then a recv nobody answers.
    } else {
      c.recv(&v, sizeof(v), 0, 0);
    }
  });
  return res.status;
}

TEST(SpanTails, DeadlockReportAppendsRecentSpansWhenEnabled) {
  DefaultsGuard guard;
  const Status with = run_deadlocked(/*spans=*/true);
  ASSERT_EQ(with.code(), ErrorCode::kDeadlock) << with.to_string();
  EXPECT_TRUE(contains(with.to_string(), "recent spans:"))
      << with.to_string();
  EXPECT_TRUE(contains(with.to_string(), "rank 0 [")) << with.to_string();

  const Status without = run_deadlocked(/*spans=*/false);
  ASSERT_EQ(without.code(), ErrorCode::kDeadlock);
  EXPECT_FALSE(contains(without.to_string(), "recent spans:"));
}

// --- the --trace-ranks filter ----------------------------------------------

TEST(TraceRanks, FilterBoundsSliceOutputButKeepsCounters) {
  DefaultsGuard guard;
  runtime::set_default_trace(true);
  runtime::set_default_spans(true);
  const simnet::RunCapture c = captured_stencil();

  std::ostringstream csv;
  simnet::export_spans_csv(c, csv, /*rank_lo=*/2, /*rank_hi=*/3);
  std::istringstream lines(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // header
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    EXPECT_TRUE(line.rfind("2,", 0) == 0 || line.rfind("3,", 0) == 0)
        << "row outside --trace-ranks 2-3: " << line;
  }
  EXPECT_GT(rows, 0);

  std::ostringstream chrome;
  simnet::export_capture_chrome(c, chrome, 2, 3);
  const std::string j = chrome.str();
  EXPECT_FALSE(contains(j, "\"pid\":1,\"tid\":0,"));
  EXPECT_TRUE(contains(j, "\"pid\":1,\"tid\":2,"));
  // Counter tracks deliberately stay global under the filter. (A two-sided
  // run has no puts, so only the per-link in-flight counters appear.)
  EXPECT_TRUE(contains(j, "\"ph\":\"C\",\"pid\":2"));
  EXPECT_TRUE(contains(j, " in-flight\""));
}

// --- --check-report JSON ---------------------------------------------------

Status run_overlapping_puts() {
  EngineOptions opt;
  opt.check = true;
  Engine eng(simnet::Platform::perlmutter_cpu(1), 3, opt);
  const auto res = mpi::World::run(eng, [](mpi::Comm& c) {
    std::vector<double> buf(32, 0.0);
    auto win = c.create_win(buf.data(), buf.size() * sizeof(double));
    double v = c.rank();
    if (c.rank() < 2) {
      win.put(&v, sizeof(v), 2, 0);
      win.flush(2);
    }
    win.fence();
  });
  return res.status;
}

TEST(CheckReport, SchemaStableJsonAndBackendIdentity) {
  DefaultsGuard guard;
  check::set_default_check_report(true);

  std::string base;
  for (EngineBackend b : {EngineBackend::kFibers, EngineBackend::kThreads}) {
    if (b == EngineBackend::kFibers && !runtime::fibers_supported()) continue;
    runtime::set_default_backend(b);
    check::CheckReportRegistry::instance().reset();
    const Status st = run_overlapping_puts();
    ASSERT_EQ(st.code(), ErrorCode::kFailedPrecondition) << st.to_string();
    std::ostringstream os;
    check::write_check_report_json(
        check::CheckReportRegistry::instance().sorted_violations(), os);
    const std::string json = os.str();
    // Schema pins: tools may rely on these exact keys.
    EXPECT_TRUE(contains(json, "\"schema\": \"msgroof.check_report.v1\""))
        << json;
    EXPECT_TRUE(contains(json, "\"violation_count\": 1")) << json;
    EXPECT_TRUE(contains(json, "\"kind\": \"race\"")) << json;
    EXPECT_TRUE(contains(json, "\"space\": \"win0@rank2\"")) << json;
    EXPECT_TRUE(contains(json, "\"rank_a\": ")) << json;
    EXPECT_TRUE(contains(json, "\"rank_b\": ")) << json;
    EXPECT_TRUE(contains(json, "\"t_a_us\": ")) << json;
    EXPECT_TRUE(contains(json, "\"off_a\": 0")) << json;
    EXPECT_TRUE(contains(json, "\"bytes_a\": 8")) << json;
    EXPECT_TRUE(contains(json, "\"text\": ")) << json;
    if (base.empty()) {
      base = json;
    } else {
      EXPECT_EQ(base, json) << "check-report bytes differ across backends";
    }
  }
  ASSERT_FALSE(base.empty());
}

TEST(CheckReport, EmptyRegistryWritesValidEmptyReport) {
  DefaultsGuard guard;
  check::CheckReportRegistry::instance().reset();
  std::ostringstream os;
  check::write_check_report_json(
      check::CheckReportRegistry::instance().sorted_violations(), os);
  EXPECT_TRUE(contains(os.str(), "\"violation_count\": 0")) << os.str();
  EXPECT_TRUE(contains(os.str(), "\"violations\": []")) << os.str();
}

// --- strict flag parsing (rc 2 on garbage) ---------------------------------

int parse_flags(std::vector<std::string> argv_strs) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("bench"));
  for (std::string& s : argv_strs) argv.push_back(s.data());
  bench::Args::parse(static_cast<int>(argv.size()), argv.data());
  return 0;  // parse() exits on error
}

TEST(FlagParsing, GarbageIsRejectedWithRc2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(parse_flags({"--trace-ranks", "junk"}),
              ::testing::ExitedWithCode(2), "invalid --trace-ranks");
  EXPECT_EXIT(parse_flags({"--trace-ranks", "5-3"}),
              ::testing::ExitedWithCode(2), "invalid --trace-ranks");
  EXPECT_EXIT(parse_flags({"--trace-ranks", "7"}),
              ::testing::ExitedWithCode(2), "invalid --trace-ranks");
  EXPECT_EXIT(parse_flags({"--trace-ranks", "-2-4"}),
              ::testing::ExitedWithCode(2), "invalid --trace-ranks");
  EXPECT_EXIT(parse_flags({"--trace-format", "flamegraph"}),
              ::testing::ExitedWithCode(2), "invalid --trace-format");
  EXPECT_EXIT(parse_flags({"--trace"}), ::testing::ExitedWithCode(2),
              "--trace requires a path");
  EXPECT_EXIT(parse_flags({"--trace="}), ::testing::ExitedWithCode(2),
              "--trace requires a non-empty path");
  EXPECT_EXIT(parse_flags({"--profile"}), ::testing::ExitedWithCode(2),
              "--profile requires a path");
  EXPECT_EXIT(parse_flags({"--check-report"}), ::testing::ExitedWithCode(2),
              "--check-report requires a path");
  EXPECT_EXIT(parse_flags({"--check-report="}), ::testing::ExitedWithCode(2),
              "--check-report requires a non-empty path");
}

}  // namespace
}  // namespace mrl
