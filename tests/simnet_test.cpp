// simnet: links, topology/routing, fabric cost arithmetic, platforms, trace.
#include <gtest/gtest.h>

#include "simnet/fabric.hpp"
#include "simnet/platform.hpp"
#include "simnet/topology.hpp"
#include "simnet/trace.hpp"

namespace mrl::simnet {
namespace {

Topology two_node_topo(int channels = 1) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"wire", /*bw=*/10.0, /*lat=*/1.0, channels});
  t.finalize();
  return t;
}

TEST(Link, ChannelMath) {
  LinkSpec s{"x", 100.0, 0.1, 4};
  EXPECT_DOUBLE_EQ(s.channel_gbs(), 25.0);
  // 25 GB/s = 25000 bytes/us -> 1 MiB takes ~41.9 us on one lane.
  EXPECT_NEAR(s.channel_ser_us(1 << 20), 41.94, 0.01);
  EXPECT_NEAR(s.full_ser_us(1 << 20), 10.49, 0.01);
}

TEST(LinkState, PicksEarliestLane) {
  LinkSpec spec{"x", 100.0, 0.1, 3};
  LinkState st(spec);
  st.set_lane_free_at(0, 5.0);
  st.set_lane_free_at(1, 2.0);
  st.set_lane_free_at(2, 9.0);
  EXPECT_EQ(st.earliest_lane(), 1);
  st.reset();
  EXPECT_EQ(st.earliest_lane(), 0);
}

TEST(Topology, RoutesAreMinHopAndDeterministic) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSocket);
  const int c = t.add_endpoint("c", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"ab", 10, 0.5, 1});
  t.add_link(b, c, LinkSpec{"bc", 10, 0.5, 1});
  t.add_link(a, c, LinkSpec{"ac", 10, 2.0, 1});
  t.finalize();
  EXPECT_EQ(t.route(a, c).size(), 1u);  // direct edge wins on hops
  EXPECT_EQ(t.route(a, b).size(), 1u);
  EXPECT_DOUBLE_EQ(t.route_latency_us(a, c), 2.0);
  EXPECT_DOUBLE_EQ(t.route_latency_us(a, b), 0.5);
  EXPECT_EQ(t.route(a, a).size(), 0u);
}

TEST(Topology, DisconnectedGraphAborts) {
  Topology t;
  t.add_endpoint("a", EndpointKind::kSocket);
  t.add_endpoint("b", EndpointKind::kSocket);
  EXPECT_DEATH(t.finalize(), "disconnected");
}

TEST(Fabric, SingleTransferCost) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, /*local_bw=*/20.0, /*local_lat=*/0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // at 10 GB/s: 1 us
  p.start_us = 5.0;
  p.sw_latency_us = 2.0;
  p.inj_gap_us = 0.05;
  const TransferResult r = f.transfer(p);
  // arrival = start + hop latency + serialization + software latency.
  EXPECT_DOUBLE_EQ(r.arrival_us, 5.0 + 1.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(r.inject_free_us, 5.05);
}

TEST(Fabric, LocalTransferUsesLocalParams) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 0;
  p.bytes = 20000;  // at 20 GB/s: 1 us
  p.start_us = 0;
  p.sw_latency_us = 0.5;
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 0.5 + 0.1 + 1.0);
}

TEST(Fabric, ContentionSerializesOnOneLane) {
  const Topology t = two_node_topo(/*channels=*/1);
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // 1 us serialization
  p.start_us = 0.0;
  const TransferResult r1 = f.transfer(p);
  const TransferResult r2 = f.transfer(p);  // must queue behind r1
  EXPECT_DOUBLE_EQ(r1.arrival_us, 0.0 + 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(r2.arrival_us, 1.0 + 1.0 + 1.0);
}

TEST(Fabric, ChannelsAllowConcurrentStreams) {
  const Topology t = two_node_topo(/*channels=*/2);
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // one lane = 5 GB/s -> 2 us serialization
  p.start_us = 0.0;
  const TransferResult r1 = f.transfer(p);
  const TransferResult r2 = f.transfer(p);  // second lane: no queueing
  EXPECT_DOUBLE_EQ(r1.arrival_us, r2.arrival_us);
  const TransferResult r3 = f.transfer(p);  // lanes busy: queues
  EXPECT_GT(r3.arrival_us, r1.arrival_us);
}

TEST(Fabric, StoreForwardSlowerThanCutThroughOnMultiHop) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSwitch);
  const int c = t.add_endpoint("c", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"ab", 10, 0.5, 1});
  t.add_link(b, c, LinkSpec{"bc", 10, 0.5, 1});
  t.finalize();
  TransferParams p;
  p.src_ep = a;
  p.dst_ep = c;
  p.bytes = 100000;  // 10 us per hop at 10 GB/s
  Fabric ct(&t, RouteMode::kCutThrough, 20, 0.1);
  Fabric sf(&t, RouteMode::kStoreForward, 20, 0.1);
  const double t_ct = ct.transfer(p).arrival_us;
  const double t_sf = sf.transfer(p).arrival_us;
  EXPECT_DOUBLE_EQ(t_ct, 0.5 + 0.5 + 10.0);
  EXPECT_DOUBLE_EQ(t_sf, 0.5 + 10.0 + 0.5 + 10.0);
}

TEST(Fabric, PerStreamCapApplies)
{
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;
  p.per_stream_gbs = 5.0;  // cap below the 10 GB/s link
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 1.0 + 2.0);
}

TEST(Fabric, ResetClearsContention) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;
  (void)f.transfer(p);
  f.reset();
  EXPECT_EQ(f.total_msgs(), 0u);
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 2.0);
}

// --- platform registry invariants, parameterized over Table I machines ---

class PlatformTest : public ::testing::TestWithParam<int> {
 protected:
  Platform p_ = Platform::all()[static_cast<std::size_t>(GetParam())];
};

TEST_P(PlatformTest, TopologyIsFinalizedAndConnected) {
  EXPECT_TRUE(p_.topology().finalized());
  EXPECT_GE(p_.topology().num_endpoints(), 2);
  EXPECT_GE(p_.topology().num_links(), 1);
}

TEST_P(PlatformTest, RankMappingRespectsCapacity) {
  const int n = p_.max_ranks();
  for (int rank = 0; rank < n; ++rank) {
    const int ep = p_.endpoint_of_rank(rank, n);
    ASSERT_GE(ep, 0);
    ASSERT_LT(ep, p_.topology().num_endpoints());
    const EndpointKind k = p_.topology().endpoint(ep).kind;
    EXPECT_TRUE(k == EndpointKind::kSocket || k == EndpointKind::kGpu);
  }
}

TEST_P(PlatformTest, LogGPParametersArePositive) {
  for (Runtime r : {Runtime::kTwoSidedMpi, Runtime::kOneSidedMpi,
                    Runtime::kShmem}) {
    const LogGP& g = p_.params(r);
    EXPECT_GT(g.L_us, 0) << to_string(r);
    EXPECT_GT(g.o_us, 0) << to_string(r);
    EXPECT_GE(g.g_us, 0) << to_string(r);
    EXPECT_GE(g.atomic_L_us, 0) << to_string(r);
  }
}

TEST_P(PlatformTest, FabricConstructs) {
  auto f = p_.make_fabric();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(&f->topology(), &p_.topology());
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformTest, ::testing::Range(0, 6),
                         [](const auto& info) {
                           return Platform::all()[static_cast<std::size_t>(
                                      info.param)]
                                      .name()
                                      .find("GPU") != std::string::npos
                                      ? "gpu" + std::to_string(info.param)
                                      : "cpu" + std::to_string(info.param);
                         });

TEST(PlatformCalibration, PerlmutterCpuPairBandwidthIs32) {
  const Platform p = Platform::perlmutter_cpu();
  // Rank 0 on socket 0, last rank on socket 1 (block distribution).
  EXPECT_DOUBLE_EQ(p.pair_peak_gbs(0, 127, 128), 128.0);
  const Topology& t = p.topology();
  EXPECT_DOUBLE_EQ(t.route_channel_gbs(0, 1), 32.0);
}

TEST(PlatformCalibration, SummitGpuDumbbellRouting) {
  const Platform p = Platform::summit_gpu();
  // Intra-island: 1 hop; cross-island: via both sockets (3 hops).
  const int g0 = p.endpoint_of_rank(0, 6);
  const int g1 = p.endpoint_of_rank(1, 6);
  const int g3 = p.endpoint_of_rank(3, 6);
  EXPECT_EQ(p.topology().route(g0, g1).size(), 1u);
  EXPECT_EQ(p.topology().route(g0, g3).size(), 3u);
  EXPECT_NEAR(p.hw_rtt_us(0, 1, 6), 0.5, 1e-9);
  EXPECT_NEAR(p.hw_rtt_us(0, 3, 6), 1.1, 1e-9);
}

TEST(PlatformCalibration, FrontierUltimateBoundIs36) {
  const Platform p = Platform::frontier_cpu();
  EXPECT_DOUBLE_EQ(p.topology().route_channel_gbs(0, 1), 36.0);
}

TEST(Trace, SummaryComputesMsgsPerSyncAndBandwidth) {
  Trace tr;
  tr.set_enabled(true);
  // Two epochs from rank 0: 3 msgs in epoch 0, 1 msg in epoch 1.
  tr.record({0, 1, 1000, 0.0, 2.0, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 0.5, 2.5, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 1.0, 3.0, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 5.0, 10.0, OpKind::kSend, 1});
  const TraceSummary s = tr.summarize();
  EXPECT_EQ(s.num_msgs, 4u);
  EXPECT_EQ(s.num_epochs, 2u);
  EXPECT_DOUBLE_EQ(s.avg_msgs_per_sync, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_msg_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(s.span_us, 10.0);
  EXPECT_DOUBLE_EQ(s.sustained_gbs, 0.4);  // 4000 B / 10 us
  EXPECT_DOUBLE_EQ(s.avg_latency_us, (2.0 + 2.0 + 2.0 + 5.0) / 4.0);
}

TEST(Trace, KindFilteredSummary) {
  Trace tr;
  tr.set_enabled(true);
  tr.record({0, 1, 100, 0.0, 1.0, OpKind::kPut, 0});
  tr.record({0, 1, 8, 0.0, 1.0, OpKind::kSignal, 0});
  EXPECT_EQ(tr.summarize(OpKind::kPut).num_msgs, 1u);
  EXPECT_DOUBLE_EQ(tr.summarize(OpKind::kPut).avg_msg_bytes, 100.0);
  EXPECT_EQ(tr.summarize(OpKind::kAtomic).num_msgs, 0u);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace tr;
  tr.record({0, 1, 100, 0.0, 1.0, OpKind::kPut, 0});
  EXPECT_TRUE(tr.records().empty());
}

}  // namespace
}  // namespace mrl::simnet
