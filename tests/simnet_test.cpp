// simnet: links, topology/routing, fabric cost arithmetic, platforms, trace.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/fault.hpp"
#include "simnet/platform.hpp"
#include "simnet/topology.hpp"
#include "simnet/trace.hpp"

namespace mrl::simnet {
namespace {

Topology two_node_topo(int channels = 1) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"wire", /*bw=*/10.0, /*lat=*/1.0, channels});
  t.finalize();
  return t;
}

TEST(Link, ChannelMath) {
  LinkSpec s{"x", 100.0, 0.1, 4};
  EXPECT_DOUBLE_EQ(s.channel_gbs(), 25.0);
  // 25 GB/s = 25000 bytes/us -> 1 MiB takes ~41.9 us on one lane.
  EXPECT_NEAR(s.channel_ser_us(1 << 20), 41.94, 0.01);
  EXPECT_NEAR(s.full_ser_us(1 << 20), 10.49, 0.01);
}

TEST(LinkState, PicksEarliestLane) {
  LinkSpec spec{"x", 100.0, 0.1, 3};
  LinkState st(spec);
  st.set_lane_free_at(0, 5.0);
  st.set_lane_free_at(1, 2.0);
  st.set_lane_free_at(2, 9.0);
  EXPECT_EQ(st.earliest_lane(), 1);
  st.reset();
  EXPECT_EQ(st.earliest_lane(), 0);
}

TEST(Topology, RoutesAreMinHopAndDeterministic) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSocket);
  const int c = t.add_endpoint("c", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"ab", 10, 0.5, 1});
  t.add_link(b, c, LinkSpec{"bc", 10, 0.5, 1});
  t.add_link(a, c, LinkSpec{"ac", 10, 2.0, 1});
  t.finalize();
  EXPECT_EQ(t.route(a, c).size(), 1u);  // direct edge wins on hops
  EXPECT_EQ(t.route(a, b).size(), 1u);
  EXPECT_DOUBLE_EQ(t.route_latency_us(a, c), 2.0);
  EXPECT_DOUBLE_EQ(t.route_latency_us(a, b), 0.5);
  EXPECT_EQ(t.route(a, a).size(), 0u);
}

TEST(Topology, DisconnectedGraphAborts) {
  Topology t;
  t.add_endpoint("a", EndpointKind::kSocket);
  t.add_endpoint("b", EndpointKind::kSocket);
  EXPECT_DEATH(t.finalize(), "disconnected");
}

TEST(Fabric, SingleTransferCost) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, /*local_bw=*/20.0, /*local_lat=*/0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // at 10 GB/s: 1 us
  p.start_us = 5.0;
  p.sw_latency_us = 2.0;
  p.inj_gap_us = 0.05;
  const TransferResult r = f.transfer(p);
  // arrival = start + hop latency + serialization + software latency.
  EXPECT_DOUBLE_EQ(r.arrival_us, 5.0 + 1.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(r.inject_free_us, 5.05);
}

TEST(Fabric, LocalTransferUsesLocalParams) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 0;
  p.bytes = 20000;  // at 20 GB/s: 1 us
  p.start_us = 0;
  p.sw_latency_us = 0.5;
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 0.5 + 0.1 + 1.0);
}

TEST(Fabric, ContentionSerializesOnOneLane) {
  const Topology t = two_node_topo(/*channels=*/1);
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // 1 us serialization
  p.start_us = 0.0;
  const TransferResult r1 = f.transfer(p);
  const TransferResult r2 = f.transfer(p);  // must queue behind r1
  EXPECT_DOUBLE_EQ(r1.arrival_us, 0.0 + 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(r2.arrival_us, 1.0 + 1.0 + 1.0);
}

TEST(Fabric, ChannelsAllowConcurrentStreams) {
  const Topology t = two_node_topo(/*channels=*/2);
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;  // one lane = 5 GB/s -> 2 us serialization
  p.start_us = 0.0;
  const TransferResult r1 = f.transfer(p);
  const TransferResult r2 = f.transfer(p);  // second lane: no queueing
  EXPECT_DOUBLE_EQ(r1.arrival_us, r2.arrival_us);
  const TransferResult r3 = f.transfer(p);  // lanes busy: queues
  EXPECT_GT(r3.arrival_us, r1.arrival_us);
}

TEST(Fabric, StoreForwardSlowerThanCutThroughOnMultiHop) {
  Topology t;
  const int a = t.add_endpoint("a", EndpointKind::kSocket);
  const int b = t.add_endpoint("b", EndpointKind::kSwitch);
  const int c = t.add_endpoint("c", EndpointKind::kSocket);
  t.add_link(a, b, LinkSpec{"ab", 10, 0.5, 1});
  t.add_link(b, c, LinkSpec{"bc", 10, 0.5, 1});
  t.finalize();
  TransferParams p;
  p.src_ep = a;
  p.dst_ep = c;
  p.bytes = 100000;  // 10 us per hop at 10 GB/s
  Fabric ct(&t, RouteMode::kCutThrough, 20, 0.1);
  Fabric sf(&t, RouteMode::kStoreForward, 20, 0.1);
  const double t_ct = ct.transfer(p).arrival_us;
  const double t_sf = sf.transfer(p).arrival_us;
  EXPECT_DOUBLE_EQ(t_ct, 0.5 + 0.5 + 10.0);
  EXPECT_DOUBLE_EQ(t_sf, 0.5 + 10.0 + 0.5 + 10.0);
}

TEST(Fabric, PerStreamCapApplies)
{
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;
  p.per_stream_gbs = 5.0;  // cap below the 10 GB/s link
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 1.0 + 2.0);
}

TEST(Fabric, ResetClearsContention) {
  const Topology t = two_node_topo();
  Fabric f(&t, RouteMode::kCutThrough, 20.0, 0.1);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  p.bytes = 10000;
  (void)f.transfer(p);
  f.reset();
  EXPECT_EQ(f.total_msgs(), 0u);
  const TransferResult r = f.transfer(p);
  EXPECT_DOUBLE_EQ(r.arrival_us, 2.0);
}

// --- platform registry invariants, parameterized over Table I machines ---

class PlatformTest : public ::testing::TestWithParam<int> {
 protected:
  Platform p_ = Platform::all()[static_cast<std::size_t>(GetParam())];
};

TEST_P(PlatformTest, TopologyIsFinalizedAndConnected) {
  EXPECT_TRUE(p_.topology().finalized());
  EXPECT_GE(p_.topology().num_endpoints(), 2);
  EXPECT_GE(p_.topology().num_links(), 1);
}

TEST_P(PlatformTest, RankMappingRespectsCapacity) {
  const int n = p_.max_ranks();
  for (int rank = 0; rank < n; ++rank) {
    const int ep = p_.endpoint_of_rank(rank, n);
    ASSERT_GE(ep, 0);
    ASSERT_LT(ep, p_.topology().num_endpoints());
    const EndpointKind k = p_.topology().endpoint(ep).kind;
    EXPECT_TRUE(k == EndpointKind::kSocket || k == EndpointKind::kGpu);
  }
}

TEST_P(PlatformTest, LogGPParametersArePositive) {
  for (Runtime r : {Runtime::kTwoSidedMpi, Runtime::kOneSidedMpi,
                    Runtime::kShmem}) {
    const LogGP& g = p_.params(r);
    EXPECT_GT(g.L_us, 0) << to_string(r);
    EXPECT_GT(g.o_us, 0) << to_string(r);
    EXPECT_GE(g.g_us, 0) << to_string(r);
    EXPECT_GE(g.atomic_L_us, 0) << to_string(r);
  }
}

TEST_P(PlatformTest, FabricConstructs) {
  auto f = p_.make_fabric();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(&f->topology(), &p_.topology());
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformTest, ::testing::Range(0, 6),
                         [](const auto& info) {
                           return Platform::all()[static_cast<std::size_t>(
                                      info.param)]
                                      .name()
                                      .find("GPU") != std::string::npos
                                      ? "gpu" + std::to_string(info.param)
                                      : "cpu" + std::to_string(info.param);
                         });

TEST(PlatformCalibration, PerlmutterCpuPairBandwidthIs32) {
  const Platform p = Platform::perlmutter_cpu();
  // Rank 0 on socket 0, last rank on socket 1 (block distribution).
  EXPECT_DOUBLE_EQ(p.pair_peak_gbs(0, 127, 128), 128.0);
  const Topology& t = p.topology();
  EXPECT_DOUBLE_EQ(t.route_channel_gbs(0, 1), 32.0);
}

TEST(PlatformCalibration, SummitGpuDumbbellRouting) {
  const Platform p = Platform::summit_gpu();
  // Intra-island: 1 hop; cross-island: via both sockets (3 hops).
  const int g0 = p.endpoint_of_rank(0, 6);
  const int g1 = p.endpoint_of_rank(1, 6);
  const int g3 = p.endpoint_of_rank(3, 6);
  EXPECT_EQ(p.topology().route(g0, g1).size(), 1u);
  EXPECT_EQ(p.topology().route(g0, g3).size(), 3u);
  EXPECT_NEAR(p.hw_rtt_us(0, 1, 6), 0.5, 1e-9);
  EXPECT_NEAR(p.hw_rtt_us(0, 3, 6), 1.1, 1e-9);
}

TEST(PlatformCalibration, FrontierUltimateBoundIs36) {
  const Platform p = Platform::frontier_cpu();
  EXPECT_DOUBLE_EQ(p.topology().route_channel_gbs(0, 1), 36.0);
}

TEST(Trace, SummaryComputesMsgsPerSyncAndBandwidth) {
  Trace tr;
  tr.set_enabled(true);
  // Two epochs from rank 0: 3 msgs in epoch 0, 1 msg in epoch 1.
  tr.record({0, 1, 1000, 0.0, 2.0, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 0.5, 2.5, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 1.0, 3.0, OpKind::kSend, 0});
  tr.record({0, 1, 1000, 5.0, 10.0, OpKind::kSend, 1});
  const TraceSummary s = tr.summarize();
  EXPECT_EQ(s.num_msgs, 4u);
  EXPECT_EQ(s.num_epochs, 2u);
  EXPECT_DOUBLE_EQ(s.avg_msgs_per_sync, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_msg_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(s.span_us, 10.0);
  EXPECT_DOUBLE_EQ(s.sustained_gbs, 0.4);  // 4000 B / 10 us
  EXPECT_DOUBLE_EQ(s.avg_latency_us, (2.0 + 2.0 + 2.0 + 5.0) / 4.0);
}

TEST(Trace, KindFilteredSummary) {
  Trace tr;
  tr.set_enabled(true);
  tr.record({0, 1, 100, 0.0, 1.0, OpKind::kPut, 0});
  tr.record({0, 1, 8, 0.0, 1.0, OpKind::kSignal, 0});
  EXPECT_EQ(tr.summarize(OpKind::kPut).num_msgs, 1u);
  EXPECT_DOUBLE_EQ(tr.summarize(OpKind::kPut).avg_msg_bytes, 100.0);
  EXPECT_EQ(tr.summarize(OpKind::kAtomic).num_msgs, 0u);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace tr;
  tr.record({0, 1, 100, 0.0, 1.0, OpKind::kPut, 0});
  EXPECT_TRUE(tr.records().empty());
}

TEST(Trace, RecordStoreSurvivesChunkBoundariesAndClear) {
  // The chunked store must behave exactly like the vector it replaced:
  // indexed reads, in-order iteration, deep copies, and clear()+refill — all
  // across the 64Ki-record chunk boundary.
  Trace tr;
  tr.set_enabled(true);
  const std::size_t n = RecordStore::kChunkSize + RecordStore::kChunkSize / 2;
  for (std::size_t i = 0; i < n; ++i) {
    tr.record({static_cast<std::int32_t>(i % 97), 1, i, 0.0,
               static_cast<double>(i), OpKind::kPut, i / 7});
  }
  const RecordStore& rs = tr.records();
  ASSERT_EQ(rs.size(), n);
  EXPECT_EQ(rs[0].bytes, 0u);
  EXPECT_EQ(rs[RecordStore::kChunkSize - 1].bytes, RecordStore::kChunkSize - 1);
  EXPECT_EQ(rs[RecordStore::kChunkSize].bytes, RecordStore::kChunkSize);
  EXPECT_EQ(rs[n - 1].bytes, n - 1);
  std::size_t seen = 0;
  for (const MsgRecord& r : rs) {
    ASSERT_EQ(r.bytes, seen);
    ++seen;
  }
  EXPECT_EQ(seen, n);
  // Copies are deep: mutating the original must not show through.
  RecordStore copy = rs;
  ASSERT_EQ(copy.size(), n);
  tr.record({5, 6, 7777, 0.0, 1.0, OpKind::kSend, 0});
  EXPECT_EQ(copy.size(), n);
  EXPECT_EQ(copy[n - 1].bytes, n - 1);
  // clear() resets the logical size; refilled records land at index 0.
  tr.clear();
  EXPECT_TRUE(tr.records().empty());
  tr.record({2, 3, 42, 0.0, 1.0, OpKind::kAtomic, 0});
  ASSERT_EQ(tr.records().size(), 1u);
  EXPECT_EQ(tr.records()[0].bytes, 42u);
}

// --- fault injection ------------------------------------------------------

TEST(Fault, DefaultSpecIsBitIdenticalNoOp) {
  // A fabric carrying a default (empty) FaultSpec must reproduce the exact
  // arrival bits of a fabric built without one — this is the contract that
  // keeps every pre-fault CSV byte-identical.
  const Topology t = two_node_topo(/*channels=*/2);
  Fabric plain(&t, RouteMode::kCutThrough, 20.0, 0.1);
  Fabric faulted(&t, RouteMode::kCutThrough, 20.0, 0.1, FaultSpec{});
  Fabric sf_plain(&t, RouteMode::kStoreForward, 20.0, 0.1);
  Fabric sf_faulted(&t, RouteMode::kStoreForward, 20.0, 0.1, FaultSpec{});
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  for (int i = 0; i < 16; ++i) {
    p.bytes = 64ull << i;
    p.start_us = 0.37 * i;
    const TransferResult a = plain.transfer(p);
    const TransferResult b = faulted.transfer(p);
    EXPECT_EQ(a.arrival_us, b.arrival_us) << i;  // bitwise, not NEAR
    EXPECT_EQ(b.drops, 0) << i;
    EXPECT_EQ(sf_plain.transfer(p).arrival_us,
              sf_faulted.transfer(p).arrival_us)
        << i;
  }
}

TEST(Fault, HopFaultsAreSeededAndReplayable) {
  FaultSpec spec;
  spec.seed = 1234;
  spec.latency_jitter_us = 2.0;
  spec.drop_prob = 0.3;
  FaultModel a(spec, /*num_dlinks=*/4);
  FaultModel b(spec, /*num_dlinks=*/4);
  std::vector<FaultModel::HopFault> seq;
  for (int i = 0; i < 32; ++i) {
    const auto fa = a.next_hop_fault(1, 10.0 * i);
    const auto fb = b.next_hop_fault(1, 10.0 * i);
    EXPECT_EQ(fa.extra_latency_us, fb.extra_latency_us) << i;
    EXPECT_EQ(fa.drops, fb.drops) << i;
    seq.push_back(fa);
  }
  // reset() rewinds the ordinals: the same sequence replays exactly.
  a.reset();
  for (int i = 0; i < 32; ++i) {
    const auto fa = a.next_hop_fault(1, 10.0 * i);
    EXPECT_EQ(fa.extra_latency_us, seq[static_cast<std::size_t>(i)]
                                       .extra_latency_us)
        << i;
    EXPECT_EQ(fa.drops, seq[static_cast<std::size_t>(i)].drops) << i;
  }
  // A different link id draws from an independent substream.
  FaultModel c(spec, 4);
  bool any_differ = false;
  for (int i = 0; i < 32; ++i) {
    if (c.next_hop_fault(2, 10.0 * i).extra_latency_us !=
        seq[static_cast<std::size_t>(i)].extra_latency_us) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(Fault, FaultsOnlySlowTransfersDown) {
  const Topology t = two_node_topo();
  FaultSpec spec = FaultSpec::at_intensity(0.8, 77);
  ASSERT_TRUE(spec.enabled());
  Fabric pristine(&t, RouteMode::kCutThrough, 20.0, 0.1);
  Fabric degraded(&t, RouteMode::kCutThrough, 20.0, 0.1, spec);
  TransferParams p;
  p.src_ep = 0;
  p.dst_ep = 1;
  bool any_slower = false;
  for (int i = 0; i < 64; ++i) {
    p.bytes = 1024 + 997 * i;
    p.start_us = 3.1 * i;
    const double t0 = pristine.transfer(p).arrival_us;
    const double t1 = degraded.transfer(p).arrival_us;
    EXPECT_GE(t1, t0) << i;  // faults never speed a message up
    if (t1 > t0) any_slower = true;
  }
  EXPECT_TRUE(any_slower);
}

TEST(Fault, BackoffSumsExponentiallyWithCap) {
  FaultSpec spec;
  spec.drop_prob = 0.1;
  spec.backoff_base_us = 10.0;
  spec.backoff_cap_us = 35.0;
  const FaultModel m(spec, 2);
  EXPECT_DOUBLE_EQ(m.backoff_us(0), 0.0);
  EXPECT_DOUBLE_EQ(m.backoff_us(1), 10.0);
  EXPECT_DOUBLE_EQ(m.backoff_us(2), 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(m.backoff_us(3), 10.0 + 20.0 + 35.0);  // capped
}

TEST(Fault, StragglerScaleIsStablePerRank) {
  FaultSpec spec;
  spec.straggler_prob = 0.5;
  spec.straggler_factor = 2.0;
  const FaultModel m(spec, 2);
  int stragglers = 0;
  for (int r = 0; r < 64; ++r) {
    const double s = m.straggler_scale(r);
    EXPECT_EQ(s, m.straggler_scale(r)) << r;  // stable across queries
    EXPECT_TRUE(s == 1.0 || s == 2.0) << r;
    if (s > 1.0) ++stragglers;
  }
  EXPECT_GT(stragglers, 8);   // ~half of 64 at prob 0.5
  EXPECT_LT(stragglers, 56);
}

}  // namespace
}  // namespace mrl::simnet
