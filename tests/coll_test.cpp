// Collective algorithms: correctness across rank counts (TEST_P) and the
// expected performance asymmetries (ring is bandwidth-optimal; recursive
// doubling is latency-optimal).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "coll/algorithms.hpp"
#include "simnet/platform.hpp"

namespace mrl::coll {
namespace {

simnet::Platform plat() { return simnet::Platform::perlmutter_cpu(); }

class CollRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollRanks, DisseminationBarrierSynchronizes) {
  const int p = GetParam();
  runtime::Engine eng(plat(), p);
  std::vector<double> after(static_cast<std::size_t>(p));
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    c.compute(5.0 * c.rank());
    dissemination_barrier(c);
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  // Nobody can leave before the slowest entrant.
  for (double t : after) EXPECT_GE(t, 5.0 * (p - 1));
}

TEST_P(CollRanks, BinomialBcastDeliversFromEveryRoot) {
  const int p = GetParam();
  runtime::Engine eng(plat(), p);
  for (int root : {0, p - 1, p / 2}) {
    const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
      std::array<double, 6> buf{};
      if (c.rank() == root) {
        std::iota(buf.begin(), buf.end(), 100.0);
      }
      binomial_bcast(c, buf.data(), sizeof(buf), root);
      for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(buf[i], 100.0 + i);
    });
    ASSERT_TRUE(r.ok()) << "root=" << root << ": " << r.status.to_string();
  }
}

TEST_P(CollRanks, RecursiveDoublingAllreduceSums) {
  const int p = GetParam();
  runtime::Engine eng(plat(), p);
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    std::vector<double> v(17);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<double>(c.rank() + 1) * (i + 1);
    }
    rd_allreduce_sum(c, v.data(), v.size());
    const double ranksum = p * (p + 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_DOUBLE_EQ(v[i], ranksum * (i + 1)) << i;
    }
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
}

TEST_P(CollRanks, RingAllreduceSums) {
  const int p = GetParam();
  runtime::Engine eng(plat(), p);
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    std::vector<double> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<double>(c.rank() + 1) * (i + 1);
    }
    ring_allreduce_sum(c, v.data(), v.size());
    const double ranksum = p * (p + 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i], ranksum * (i + 1), 1e-9) << i;
    }
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollRanks,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(CollShmem, RingAllreduceOnGpuPlatforms) {
  for (auto make :
       {&simnet::Platform::perlmutter_gpu, &simnet::Platform::frontier_gpu}) {
    const simnet::Platform p = make();
    const int npes = p.max_ranks();
    runtime::Engine eng(p, npes);
    const auto r = shmem::World::run(eng, [&](shmem::Ctx& s) {
      std::vector<double> v(128);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = static_cast<double>(s.pe() + 1) * (i + 1);
      }
      shmem_ring_allreduce_sum(s, v.data(), v.size());
      const double ranksum = npes * (npes + 1) / 2.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        ASSERT_NEAR(v[i], ranksum * (i + 1), 1e-9) << i;
      }
    });
    ASSERT_TRUE(r.ok()) << p.name() << ": " << r.status.to_string();
  }
}

TEST(CollPerf, RingBeatsRecursiveDoublingForLargeVectors) {
  // Ring moves 2(P-1)/P of the data per rank; recursive doubling moves
  // log2(P) full copies — ring must win once vectors are big.
  const int p = 8;
  runtime::Engine eng(plat(), p);
  double t_ring = 0, t_rd = 0;
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    std::vector<double> v(1 << 18, 1.0);  // 2 MiB
    c.barrier();
    double t0 = c.now();
    ring_allreduce_sum(c, v.data(), v.size());
    c.barrier();
    if (c.rank() == 0) t_ring = c.now() - t0;
    t0 = c.now();
    rd_allreduce_sum(c, v.data(), v.size());
    c.barrier();
    if (c.rank() == 0) t_rd = c.now() - t0;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_LT(t_ring, t_rd);
}

TEST(CollPerf, RecursiveDoublingWinsForTinyVectors) {
  const int p = 8;
  runtime::Engine eng(plat(), p);
  double t_ring = 0, t_rd = 0;
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    std::vector<double> v(8, 1.0);
    c.barrier();
    double t0 = c.now();
    ring_allreduce_sum(c, v.data(), v.size());
    c.barrier();
    if (c.rank() == 0) t_ring = c.now() - t0;
    t0 = c.now();
    rd_allreduce_sum(c, v.data(), v.size());
    c.barrier();
    if (c.rank() == 0) t_rd = c.now() - t0;
  });
  ASSERT_TRUE(r.ok());
  // 2(P-1) = 14 latency steps for the ring vs log2(8) = 3 rounds.
  EXPECT_LT(t_rd, t_ring);
}

TEST(CollPerf, BcastLatencyScalesLogarithmically) {
  auto bcast_time = [&](int p) {
    runtime::Engine eng(plat(), p);
    double t = 0;
    const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
      double x = 1.0;
      c.barrier();
      const double t0 = c.now();
      binomial_bcast(c, &x, sizeof(x), 0);
      c.barrier();
      if (c.rank() == 0) t = c.now() - t0;
    });
    EXPECT_TRUE(r.ok());
    return t;
  };
  const double t4 = bcast_time(4);
  const double t64 = bcast_time(64);
  // 64 ranks = 3x the rounds of 4 ranks, not 16x the cost.
  EXPECT_LT(t64, 6.0 * t4);
  EXPECT_GT(t64, 1.5 * t4);
}

}  // namespace
}  // namespace mrl::coll
