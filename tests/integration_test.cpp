// Cross-layer integration and property tests: full-stack determinism,
// fabric invariants under random traffic, model-vs-measurement consistency
// across every platform x runtime, plan conservation over seeds, stress
// configurations, and trace export round-trips.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/fit.hpp"
#include "core/sweep.hpp"
#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "simnet/platform.hpp"
#include "simnet/trace_export.hpp"
#include "util/units.hpp"
#include "util/rng.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl {
namespace {

// ---------------------------------------------------------------------------
// Full-stack determinism
// ---------------------------------------------------------------------------

TEST(Determinism, StencilRunsAreBitIdentical) {
  workloads::stencil::Config cfg;
  cfg.n = 128;
  cfg.iters = 3;
  const auto a = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(), 9, cfg);
  const auto b = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(), 9, cfg);
  ASSERT_TRUE(a.status.is_ok());
  EXPECT_EQ(a.time_us, b.time_us);
  EXPECT_EQ(a.msgs.num_msgs, b.msgs.num_msgs);
  EXPECT_EQ(a.msgs.span_us, b.msgs.span_us);
}

TEST(Determinism, SptrsvRunsAreBitIdentical) {
  workloads::sptrsv::GenConfig g;
  g.n = 800;
  g.max_sn = 40;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config cfg;
  const auto a = workloads::sptrsv::run_one_sided(
      simnet::Platform::perlmutter_cpu(), 6, L, cfg);
  const auto b = workloads::sptrsv::run_one_sided(
      simnet::Platform::perlmutter_cpu(), 6, L, cfg);
  ASSERT_TRUE(a.status.is_ok());
  EXPECT_EQ(a.time_us, b.time_us);
  EXPECT_EQ(a.rel_err, b.rel_err);
}

// ---------------------------------------------------------------------------
// Execution backends: fibers and threads must be interchangeable end-to-end
// ---------------------------------------------------------------------------

TEST(Backends, StencilMakespanIdenticalAcrossBackendsAt256Ranks) {
  // A rank count both backends can host comfortably: the full workload
  // stack (real Jacobi numerics + MPI halo exchange + fabric) must produce
  // the same makespan and message stats to the last bit on either backend.
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  workloads::stencil::Config cfg;
  cfg.n = 256;
  cfg.iters = 2;
  const auto plat = simnet::Platform::perlmutter_cpu(/*nodes=*/2);
  const auto saved = runtime::default_backend();
  runtime::set_default_backend(runtime::EngineBackend::kFibers);
  const auto f = workloads::stencil::run_two_sided(plat, 256, cfg);
  runtime::set_default_backend(runtime::EngineBackend::kThreads);
  const auto t = workloads::stencil::run_two_sided(plat, 256, cfg);
  runtime::set_default_backend(saved);
  ASSERT_TRUE(f.status.is_ok()) << f.status.to_string();
  ASSERT_TRUE(t.status.is_ok()) << t.status.to_string();
  EXPECT_TRUE(f.verified);
  EXPECT_TRUE(t.verified);
  EXPECT_EQ(f.time_us, t.time_us);
  EXPECT_EQ(f.msgs.num_msgs, t.msgs.num_msgs);
  EXPECT_EQ(f.msgs.span_us, t.msgs.span_us);
}

TEST(Backends, FourThousandRankStencilCompletesOnFibers) {
  // The scaling headline: 4096 ranks is far past what one-OS-thread-per-rank
  // can host (default thread stacks alone would reserve ~32 GiB and typical
  // task limits are lower), but as fibers it is routine. Real verified
  // numerics, not a toy body.
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  workloads::stencil::Config cfg;
  cfg.n = 512;  // 4096 ranks -> 64x64 process grid, 8x8 cells each
  cfg.iters = 2;
  const auto saved = runtime::default_backend();
  runtime::set_default_backend(runtime::EngineBackend::kFibers);
  const auto r = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(/*nodes=*/32), 4096, cfg);
  runtime::set_default_backend(saved);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verified);
  EXPECT_DOUBLE_EQ(r.max_abs_err, 0.0);
  EXPECT_GT(r.time_us, 0.0);
  EXPECT_GT(r.msgs.num_msgs, 0u);
}

TEST(Backends, TraceBytesIdenticalAcrossBackends) {
  // Byte-level equality of the exported trace stream — the strongest
  // observable-equivalence check: ordering, clocks, epochs, and payload
  // accounting all have to match exactly.
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  auto trace_bytes = [&](runtime::EngineBackend backend) {
    runtime::EngineOptions opt;
    opt.backend = backend;
    opt.trace = true;
    runtime::Engine eng(simnet::Platform::perlmutter_cpu(), 8, opt);
    const auto r = mpi::World::run(eng, [](mpi::Comm& c) {
      double buf[64] = {};
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      for (int i = 0; i < 5; ++i) {
        const std::size_t bytes = 8u << i;
        if (c.rank() % 2 == 0) {
          c.send(buf, bytes, next, i);
          c.recv(buf, bytes, prev, i);
        } else {
          c.recv(buf, bytes, prev, i);
          c.send(buf, bytes, next, i);
        }
      }
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    std::ostringstream os;
    simnet::export_trace_csv(eng.trace(), os);
    return os.str();
  };
  const std::string fibers = trace_bytes(runtime::EngineBackend::kFibers);
  const std::string threads = trace_bytes(runtime::EngineBackend::kThreads);
  EXPECT_FALSE(fibers.empty());
  EXPECT_EQ(fibers, threads);
}

TEST(Determinism, RandomTrafficIsReproducible) {
  const simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  auto run_once = [&] {
    runtime::Engine eng(plat, 16);
    double sum = 0;
    const auto res = mpi::World::run(eng, [&](mpi::Comm& c) {
      Xoshiro256 rng = Xoshiro256::for_stream(11, c.rank());
      // Random ring-ish traffic: every rank sends 30 messages of random
      // sizes to random peers, receives exactly 30 (counts precomputed by
      // symmetry: everyone sends k to (rank + i) % size).
      for (int i = 0; i < 30; ++i) {
        const int dst =
            (c.rank() + 1 + static_cast<int>(rng.uniform(7))) % c.size();
        std::vector<std::byte> buf(rng.uniform(4096) + 1);
        mpi::Request req =
            c.isend(buf.data(), buf.size(), dst, /*tag=*/i % 3);
        static_cast<void>(req);
      }
      c.barrier();  // everything delivered (modeled barrier dominates)
      // Drain whatever arrived for me.
      std::vector<std::byte> rbuf(4097);
      while (true) {
        // No probe API: receive until the mailbox is empty via a sentinel
        // count — each rank received some number of messages; just stop at
        // the barrier-consistent state by receiving nothing further.
        break;
      }
      if (c.rank() == 0) sum = c.now();
    });
    EXPECT_TRUE(res.ok());
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Fabric invariants under random traffic (property tests over platforms)
// ---------------------------------------------------------------------------

class FabricProps : public ::testing::TestWithParam<int> {
 protected:
  simnet::Platform plat_ =
      simnet::Platform::all()[static_cast<std::size_t>(GetParam())];
};

TEST_P(FabricProps, ArrivalsRespectCausalityAndLatency) {
  auto fabric = plat_.make_fabric();
  Xoshiro256 rng(42);
  const int neps = plat_.topology().num_endpoints();
  double clock = 0;
  for (int i = 0; i < 500; ++i) {
    simnet::TransferParams p;
    p.src_ep = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(neps)));
    p.dst_ep = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(neps)));
    p.src_rank = static_cast<int>(rng.uniform(8));
    p.bytes = rng.uniform(1 << 20) + 1;
    p.start_us = clock;
    p.sw_latency_us = rng.uniform01() * 5;
    p.inj_gap_us = 0.05;
    const simnet::TransferResult r = fabric->transfer(p);
    // Causality: nothing arrives before issue + hardware latency + software.
    const double hw = p.src_ep == p.dst_ep
                          ? plat_.local_latency_us()
                          : plat_.topology().route_latency_us(p.src_ep,
                                                              p.dst_ep);
    EXPECT_GE(r.arrival_us, p.start_us + hw + p.sw_latency_us - 1e-9);
    EXPECT_GE(r.inject_free_us, p.start_us);
    clock += rng.uniform01();  // nondecreasing issue order (engine invariant)
  }
}

TEST_P(FabricProps, SustainedRateNeverExceedsPairPeak) {
  if (plat_.topology().num_endpoints() < 2) GTEST_SKIP();
  auto fabric = plat_.make_fabric();
  const int n = plat_.max_ranks();
  const double peak = plat_.pair_peak_gbs(0, n - 1, n);
  const std::uint64_t bytes = 1 << 20;
  double last_arrival = 0;
  const int reps = 64;
  for (int i = 0; i < reps; ++i) {
    simnet::TransferParams p;
    p.src_ep = plat_.endpoint_of_rank(0, n);
    p.dst_ep = plat_.endpoint_of_rank(n - 1, n);
    p.src_rank = 0;
    p.bytes = bytes;
    p.start_us = 0;
    const auto r = fabric->transfer(p);
    last_arrival = std::max(last_arrival, r.arrival_us);
  }
  if (plat_.endpoint_of_rank(0, n) == plat_.endpoint_of_rank(n - 1, n)) {
    GTEST_SKIP();  // same-endpoint path is costed by local bw instead
  }
  const double gbs = bytes_per_us_to_gbs(
      static_cast<double>(bytes) * reps, last_arrival);
  EXPECT_LE(gbs, peak * 1.001) << plat_.name();
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, FabricProps, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Model vs measurement across every platform x runtime
// ---------------------------------------------------------------------------

struct Cal {
  int plat_idx;
  core::SweepKind kind;
};

class Calibration : public ::testing::TestWithParam<Cal> {};

TEST_P(Calibration, FittedParametersTrackConfiguredLogGP) {
  const simnet::Platform plat =
      simnet::Platform::all()[static_cast<std::size_t>(GetParam().plat_idx)];
  core::SweepConfig cfg = core::SweepConfig::defaults(GetParam().kind);
  cfg.iters = 3;
  const auto pts = core::run_sweep(plat, cfg).value();
  const auto fit = core::fit_roofline(pts);
  // The fit must land in the physical ballpark of the platform: overhead
  // within [0.3x, 4x] of the configured o, peak within [0.5x, 1.5x] of the
  // pair peak (benchmark structure shifts L into o and vice versa).
  const simnet::Runtime rt =
      GetParam().kind == core::SweepKind::kTwoSided
          ? simnet::Runtime::kTwoSidedMpi
          : (GetParam().kind == core::SweepKind::kOneSidedMpi
                 ? simnet::Runtime::kOneSidedMpi
                 : simnet::Runtime::kShmem);
  const simnet::LogGP& g = plat.params(rt);
  EXPECT_GT(fit.params.o_us, 0.3 * g.o_us) << plat.name();
  EXPECT_LT(fit.params.o_us, 4.0 * g.o_us + 0.2) << plat.name();
  const double peak = plat.pair_peak_gbs(0, 1, 2);
  EXPECT_GT(fit.params.peak_gbs, 0.25 * peak) << plat.name();
  EXPECT_LT(fit.params.peak_gbs, 1.5 * peak) << plat.name();
  EXPECT_LT(fit.rms_log_error, 0.6) << plat.name();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Calibration,
    ::testing::Values(Cal{2, core::SweepKind::kTwoSided},      // PM CPU
                      Cal{2, core::SweepKind::kOneSidedMpi},
                      Cal{3, core::SweepKind::kTwoSided},      // Frontier CPU
                      Cal{3, core::SweepKind::kOneSidedMpi},
                      Cal{4, core::SweepKind::kTwoSided},      // Summit CPU
                      Cal{1, core::SweepKind::kShmemPutSignal},  // PM GPU
                      Cal{0, core::SweepKind::kShmemPutSignal}   // Summit GPU
                      ));

// ---------------------------------------------------------------------------
// SpTRSV plan conservation over seeds
// ---------------------------------------------------------------------------

class PlanSeeds : public ::testing::TestWithParam<int> {};

TEST_P(PlanSeeds, MessageAccountingBalances) {
  workloads::sptrsv::GenConfig g;
  g.n = 900;
  g.max_sn = 50;
  g.seed = static_cast<std::uint64_t>(GetParam());
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  for (int P : {2, 5, 8}) {
    // Fan-out lists summed over diag owners must equal the x-slot totals.
    std::size_t fanout_total = 0, x_total = 0, lsum_total = 0;
    for (int r = 0; r < P; ++r) {
      const auto plan = workloads::sptrsv::SolvePlan::build(L, P, r);
      for (int J : plan.my_diag) {
        fanout_total += plan.fanout[static_cast<std::size_t>(J)].size();
      }
      x_total += static_cast<std::size_t>(plan.expected_x);
      lsum_total += static_cast<std::size_t>(plan.expected_lsum);
      // Slot lookups must be consistent for everything I expect.
      const auto& xc = plan.x_cols[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < xc.size(); ++i) {
        EXPECT_EQ(plan.x_slot(r, xc[i]), static_cast<int>(i));
      }
    }
    EXPECT_EQ(fanout_total, x_total) << "P=" << P;
    EXPECT_GE(lsum_total, 0u);
  }
}

TEST_P(PlanSeeds, SolveMatchesReferenceAcrossSeeds) {
  workloads::sptrsv::GenConfig g;
  g.n = 700;
  g.max_sn = 40;
  g.seed = static_cast<std::uint64_t>(GetParam());
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config cfg;
  const auto r = workloads::sptrsv::run_two_sided(
      simnet::Platform::perlmutter_cpu(), 7, L, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_LT(r.rel_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanSeeds, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Stress configurations
// ---------------------------------------------------------------------------

TEST(Stress, HashtableHeavyChaining) {
  // Tiny table: nearly every insert collides and chains.
  workloads::hashtable::Config cfg;
  cfg.total_inserts = 2000;
  cfg.slots_per_rank = 64;
  cfg.overflow_per_rank = 4096;
  const auto r = workloads::hashtable::run_one_sided(
      simnet::Platform::perlmutter_cpu(), 4, cfg);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_TRUE(r.verify_ok);
  EXPECT_GT(r.collisions, cfg.total_inserts / 2);
}

TEST(Stress, StencilStripDecompositions) {
  workloads::stencil::Config cfg;
  cfg.n = 96;
  cfg.iters = 3;
  for (auto [px, py] : {std::pair{8, 1}, std::pair{1, 8}, std::pair{2, 4}}) {
    cfg.px = px;
    cfg.py = py;
    const auto r = workloads::stencil::run_one_sided(
        simnet::Platform::perlmutter_cpu(), 8, cfg);
    ASSERT_TRUE(r.status.is_ok()) << px << "x" << py;
    EXPECT_EQ(r.max_abs_err, 0.0) << px << "x" << py;
  }
}

TEST(Stress, SptrsvOnAllCpuPlatforms) {
  workloads::sptrsv::GenConfig g;
  g.n = 700;
  g.max_sn = 40;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config cfg;
  for (auto make : {&simnet::Platform::perlmutter_cpu,
                    &simnet::Platform::frontier_cpu}) {
    const simnet::Platform p = make(1);
    const auto r2 = workloads::sptrsv::run_two_sided(p, 8, L, cfg);
    ASSERT_TRUE(r2.status.is_ok()) << p.name();
    EXPECT_LT(r2.rel_err, 1e-9) << p.name();
    const auto r1 = workloads::sptrsv::run_one_sided(p, 8, L, cfg);
    ASSERT_TRUE(r1.status.is_ok()) << p.name();
    EXPECT_LT(r1.rel_err, 1e-9) << p.name();
  }
}

TEST(Stress, FrontierGpuRunsAllWorkloads) {
  // The paper's missing configuration: ROC_SHMEM-style Frontier GPUs.
  const auto fr = simnet::Platform::frontier_gpu();
  workloads::stencil::Config scfg;
  scfg.n = 64;
  scfg.iters = 3;
  const auto st = workloads::stencil::run_shmem_gpu(fr, 8, scfg);
  ASSERT_TRUE(st.status.is_ok());
  EXPECT_EQ(st.max_abs_err, 0.0);

  workloads::sptrsv::GenConfig g;
  g.n = 700;
  g.max_sn = 40;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config pcfg;
  const auto sp = workloads::sptrsv::run_shmem_gpu(fr, 8, L, pcfg);
  ASSERT_TRUE(sp.status.is_ok());
  EXPECT_LT(sp.rel_err, 1e-9);

  workloads::hashtable::Config hcfg;
  hcfg.total_inserts = 2000;
  const auto hb = workloads::hashtable::run_shmem_gpu(fr, 8, hcfg);
  ASSERT_TRUE(hb.status.is_ok());
  EXPECT_TRUE(hb.verify_ok);
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

TEST(TraceExport, CsvAndChromeJsonContainEveryRecord) {
  simnet::Trace tr;
  tr.set_enabled(true);
  tr.record({0, 1, 64, 1.0, 3.5, simnet::OpKind::kSend, 0});
  tr.record({1, 0, 8, 2.0, 4.0, simnet::OpKind::kAtomic, 1});

  std::ostringstream csv;
  simnet::export_trace_csv(tr, csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("src,dst,bytes"), std::string::npos);
  EXPECT_NE(c.find("send"), std::string::npos);
  EXPECT_NE(c.find("atomic"), std::string::npos);
  EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), 3);  // header + 2 rows

  std::ostringstream js;
  simnet::export_trace_chrome(tr, js);
  const std::string j = js.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_NE(j.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2.5"), std::string::npos);
}

TEST(TraceExport, WorkloadTraceExportsEndToEnd) {
  workloads::stencil::Config cfg;
  cfg.n = 64;
  cfg.iters = 2;
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(simnet::Platform::perlmutter_cpu(), 4, opt);
  const auto res = mpi::World::run(eng, [&](mpi::Comm& c) {
    double x = 1;
    if (c.rank() == 0) c.send(&x, 8, 1, 0);
    if (c.rank() == 1) c.recv(&x, 8, 0, 0);
  });
  ASSERT_TRUE(res.ok());
  std::ostringstream os;
  simnet::export_trace_chrome(eng.trace(), os);
  EXPECT_GT(os.str().size(), 50u);
}

// ---------------------------------------------------------------------------
// Metrics end-to-end (DESIGN.md §9)
// ---------------------------------------------------------------------------

TEST(Metrics, StencilReportBytesIdenticalAcrossBackends) {
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  workloads::stencil::Config cfg;
  cfg.n = 96;
  cfg.iters = 3;
  const auto saved = runtime::default_backend();
  const bool saved_metrics = runtime::default_metrics();
  runtime::set_default_metrics(true);
  std::vector<std::vector<std::vector<std::string>>> rows;
  for (auto backend :
       {runtime::EngineBackend::kFibers, runtime::EngineBackend::kThreads}) {
    runtime::set_default_backend(backend);
    const auto r = workloads::stencil::run_one_sided(
        simnet::Platform::perlmutter_cpu(), 9, cfg);
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
    rows.push_back(r.metrics.csv_rows());
  }
  runtime::set_default_backend(saved);
  runtime::set_default_metrics(saved_metrics);
  runtime::MetricsRegistry::instance().reset();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].size(), 1u);
  // csv_rows excludes the stack section, so fiber and thread reports must
  // agree byte for byte.
  EXPECT_EQ(rows[0], rows[1]);
}

TEST(Metrics, TenThousandRankStencilReportsStackHighWaterMarks) {
  // The capacity smoke from the roadmap: 10k ranks on one process, with the
  // metrics layer measuring how much of each 64 KiB fiber stack was actually
  // touched — the number that justifies shrinking stacks further.
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  workloads::stencil::Config cfg;
  cfg.n = 256;
  cfg.iters = 2;
  cfg.verify = false;  // serial 256x256 reference x 10k compares is wasted time
  const auto saved = runtime::default_backend();
  const bool saved_metrics = runtime::default_metrics();
  const std::size_t saved_stack = runtime::default_fiber_stack_bytes();
  runtime::set_default_backend(runtime::EngineBackend::kFibers);
  runtime::set_default_metrics(true);
  runtime::set_default_fiber_stack_bytes(64 * 1024);
  const auto r = workloads::stencil::run_two_sided(
      simnet::Platform::perlmutter_cpu(/*nodes=*/80), 10000, cfg);
  runtime::set_default_backend(saved);
  runtime::set_default_metrics(saved_metrics);
  runtime::set_default_fiber_stack_bytes(saved_stack);
  runtime::MetricsRegistry::instance().reset();

  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_EQ(r.metrics.stack_hwm_bytes.size(), 10000u);
  EXPECT_GT(r.metrics.stack_usable_bytes, 0u);
  std::size_t peak = 0;
  for (std::size_t hwm : r.metrics.stack_hwm_bytes) {
    EXPECT_GT(hwm, 0u);
    EXPECT_LE(hwm, r.metrics.stack_usable_bytes);
    peak = std::max(peak, hwm);
  }
  // Headroom is the whole point: the busiest fiber must fit comfortably
  // inside the shrunken 64 KiB stack.
  EXPECT_LT(peak, r.metrics.stack_usable_bytes);
  EXPECT_EQ(r.metrics.nranks, 10000);
  EXPECT_GT(r.metrics.totals().ops.sends, 0u);
}

// Process-wide peak RSS in MiB from /proc/self/status (VmHWM); 0 when the
// proc interface is unavailable (non-Linux), which skips the RSS assertion.
std::size_t peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kib);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024;
}

TEST(Scale, HundredThousandRankStencilSmokesUnderRssAndRateFloors) {
  // The scheduler-core capacity smoke (DESIGN.md §10): 100k one-sided ranks
  // in one process. This exercises every piece of the 100k regime at once —
  // heap scheduler, gated fence/collective waits (O(P log P) waves instead
  // of O(P²) condition re-evaluation), sparse PairMap FIFO state (dense
  // matrices would be 80 GB here), and unguarded fiber stacks (200k VMAs
  // would exceed vm.max_map_count). Metrics stay off so the 100k stacks are
  // never poison-committed and the footprint stays lazy.
  if (!runtime::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  // This is a capacity test, not a memory-error test: ASan's shadow memory
  // and per-stack redzones roughly triple the 100k-fiber footprint and slow
  // the run ~10x, so both floors below would measure the sanitizer, not the
  // engine. The same machinery runs under ASan at 4096 and 10k ranks.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  GTEST_SKIP() << "100k-rank capacity floors are not meaningful under ASan";
#endif
#elif defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "100k-rank capacity floors are not meaningful under ASan";
#endif
  constexpr int kRanks = 100000;
  workloads::stencil::Config cfg;
  cfg.n = 512;  // the decomposition needs px,py <= n (100k ranks ~ 400x250)
  cfg.iters = 1;
  cfg.verify = false;
  const auto saved = runtime::default_backend();
  const bool saved_metrics = runtime::default_metrics();
  const std::size_t saved_stack = runtime::default_fiber_stack_bytes();
  runtime::set_default_backend(runtime::EngineBackend::kFibers);
  runtime::set_default_metrics(false);
  runtime::set_default_fiber_stack_bytes(64 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = workloads::stencil::run_one_sided(
      simnet::Platform::perlmutter_cpu(/*nodes=*/800), kRanks, cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  runtime::set_default_backend(saved);
  runtime::set_default_metrics(saved_metrics);
  runtime::set_default_fiber_stack_bytes(saved_stack);

  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_GT(r.time_us, 0.0);
  EXPECT_GT(r.msgs.num_msgs, 0u);
  // Rate floor: the pre-heap/pre-gate engine took tens of minutes here (the
  // O(P²) fence waves alone are ~10^10 closure calls); the floor is ~10x
  // headroom over the observed ~8 s so slow CI machines still pass while a
  // scan/wave regression still trips it.
  const double ranks_per_sec = kRanks / wall_s;
  EXPECT_GT(ranks_per_sec, 1000.0)
      << "100k-rank stencil took " << wall_s << " s";
  // RSS ceiling: a single resurrected dense (src,dst) matrix is 80 GB at
  // this scale, so staying under 16 GiB proves all per-rank-pair state is
  // sparse. (VmHWM is process-wide, so earlier tests only add slack to the
  // margin, not flakiness.)
  const std::size_t rss_mib = peak_rss_mib();
  if (rss_mib > 0) {
    EXPECT_LT(rss_mib, 16u * 1024u) << "peak RSS " << rss_mib << " MiB";
  }
}

}  // namespace
}  // namespace mrl
