// minimpi semantics: matching, FIFO, timing, windows, atomics, collectives.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "simnet/platform.hpp"

namespace mrl::mpi {
namespace {

using runtime::Engine;

simnet::Platform plat() { return simnet::Platform::perlmutter_cpu(); }

TEST(P2P, SendRecvDeliversPayload) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<double> buf(16);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 1.0);
      c.send(buf.data(), buf.size() * sizeof(double), 1, 7);
    } else {
      const RecvInfo info =
          c.recv(buf.data(), buf.size() * sizeof(double), 0, 7);
      EXPECT_EQ(info.src, 0);
      EXPECT_EQ(info.tag, 7);
      EXPECT_EQ(info.bytes, 16 * sizeof(double));
      for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(buf[i], i + 1.0);
    }
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
}

TEST(P2P, SingleSmallMessageLatencyMatchesCalibration) {
  // Perlmutter CPU two-sided: recv completes at
  // o_send + hop(0.25) + ser(~0) + L(2.7) + o_recv = ~3.55 us.
  Engine eng(plat(), 2);
  double recv_done = 0;
  const auto r = World::run(eng, [&](Comm& c) {
    double x = 42.0;
    if (c.rank() == 0) {
      c.send(&x, sizeof(x), 1, 0);
    } else {
      c.recv(&x, sizeof(x), 0, 0);
      recv_done = c.now();
    }
  });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(recv_done, 3.55, 0.1);
}

TEST(P2P, AnySourceMatchesEarliestArrival) {
  Engine eng(plat(), 3);
  const auto r = World::run(eng, [](Comm& c) {
    int v = c.rank();
    if (c.rank() == 1 || c.rank() == 2) {
      if (c.rank() == 2) c.compute(100.0);  // rank 2 sends much later
      c.send(&v, sizeof(v), 0, 0);
    } else {
      int got = -1;
      const RecvInfo a = c.recv(&got, sizeof(got), kAnySource, kAnyTag);
      EXPECT_EQ(a.src, 1);  // rank 1's message arrives first
      EXPECT_EQ(got, 1);
      const RecvInfo b = c.recv(&got, sizeof(got), kAnySource, kAnyTag);
      EXPECT_EQ(b.src, 2);
      EXPECT_EQ(got, 2);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, TagSelectivity) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    if (c.rank() == 0) {
      int a = 10, b = 20;
      c.send(&a, sizeof(a), 1, /*tag=*/5);
      c.send(&b, sizeof(b), 1, /*tag=*/6);
    } else {
      int got = 0;
      c.recv(&got, sizeof(got), 0, 6);  // tag 6 first despite arriving second
      EXPECT_EQ(got, 20);
      c.recv(&got, sizeof(got), 0, 5);
      EXPECT_EQ(got, 10);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, FifoPerPairEvenWithMixedSizes) {
  // A big message followed by a tiny one from the same sender must not be
  // overtaken (FIFO clamping).
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> big(4 << 20);
      int tiny = 99;
      c.send(big.data(), big.size(), 1, 0);
      c.send(&tiny, sizeof(tiny), 1, 0);
    } else {
      std::vector<std::byte> big(4 << 20);
      int tiny = 0;
      const RecvInfo first = c.recv(big.data(), big.size(), 0, 0);
      const RecvInfo second = c.recv(&tiny, sizeof(tiny), 0, 0);
      EXPECT_EQ(first.bytes, big.size());
      EXPECT_EQ(tiny, 99);
      EXPECT_GE(second.arrival_us, first.arrival_us);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, WaitallCompletesAllRequests) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    constexpr int kN = 8;
    std::vector<int> vals(kN);
    std::vector<Request> reqs;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        vals[i] = i * i;
        reqs.push_back(c.isend(&vals[i], sizeof(int), 1, i));
      }
      c.waitall(reqs);
    } else {
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(c.irecv(&vals[i], sizeof(int), 0, i));
      }
      c.waitall(reqs);
      for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[i], i * i);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    if (c.rank() == 1) {
      int x;
      c.recv(&x, sizeof(x), 0, 0);  // nobody sends
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kDeadlock);
}

TEST(Collective, BarrierSynchronizesClocks) {
  Engine eng(plat(), 4);
  std::vector<double> after(4);
  const auto r = World::run(eng, [&](Comm& c) {
    c.compute(c.rank() * 10.0);
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  ASSERT_TRUE(r.ok());
  for (int i = 1; i < 4; ++i) EXPECT_DOUBLE_EQ(after[0], after[i]);
  EXPECT_GT(after[0], 30.0);  // at least the slowest entrant
}

TEST(Collective, AllreduceValues) {
  Engine eng(plat(), 8);
  const auto r = World::run(eng, [](Comm& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(s, 36.0);  // 1+..+8
    const double m = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(m, 7.0);
  });
  ASSERT_TRUE(r.ok());
}

TEST(Collective, BcastDistributesPayload) {
  Engine eng(plat(), 4);
  const auto r = World::run(eng, [](Comm& c) {
    std::array<int, 4> data{};
    if (c.rank() == 2) data = {1, 2, 3, 4};
    c.bcast(data.data(), sizeof(data), /*root=*/2);
    EXPECT_EQ(data, (std::array<int, 4>{1, 2, 3, 4}));
  });
  ASSERT_TRUE(r.ok());
}

TEST(Collective, RepeatedCollectivesKeepWorking) {
  Engine eng(plat(), 4);
  const auto r = World::run(eng, [](Comm& c) {
    for (int i = 0; i < 10; ++i) {
      const double s = c.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 4.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, PutVisibleAfterFence) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<double> window(8, 0.0);
    WinHandle win = c.create_win(window.data(), window.size() * sizeof(double));
    double payload = 3.25;
    if (c.rank() == 0) {
      win.put(&payload, sizeof(payload), 1, 2 * sizeof(double));
    }
    win.fence();
    if (c.rank() == 1) {
      EXPECT_DOUBLE_EQ(window[2], 3.25);
      EXPECT_DOUBLE_EQ(window[0], 0.0);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, PutNotVisibleBeforeSync) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(2, 0);
    WinHandle win =
        c.create_win(window.data(), window.size() * sizeof(std::uint64_t));
    if (c.rank() == 0) {
      std::uint64_t one = 1;
      win.put(&one, sizeof(one), 1, 0);
      win.flush(1);
      // Tell rank 1 (two-sided) that the put has fully completed.
      int go = 1;
      c.send(&go, sizeof(go), 1, 0);
    } else {
      // Window memory must stay stale until we sync, even though the put
      // has remotely completed (separate-memory RMA model).
      int go = 0;
      c.recv(&go, sizeof(go), 0, 0);
      EXPECT_EQ(window[0], 0u);
      win.sync();
      EXPECT_EQ(window[0], 1u);
    }
    win.fence();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, FlushAdvancesClockToRemoteCompletion) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::byte> window(1 << 20);
    WinHandle win = c.create_win(window.data(), window.size());
    if (c.rank() == 0) {
      std::vector<std::byte> buf(1 << 20);
      const double t0 = c.now();
      win.put(buf.data(), buf.size(), 1, 0);
      const double after_put = c.now();
      win.flush(1);
      const double after_flush = c.now();
      // The nonblocking put costs ~o; the flush must absorb latency + 1 MiB
      // serialization (~32.8 us at 32 GB/s).
      EXPECT_LT(after_put - t0, 1.0);
      EXPECT_GT(after_flush - t0, 30.0);
    }
    win.fence();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, WaitAnyUnappliedWakesOnArrival) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(4, 0);
    WinHandle win =
        c.create_win(window.data(), window.size() * sizeof(std::uint64_t));
    if (c.rank() == 0) {
      c.compute(25.0);  // delay so receiver genuinely blocks
      std::uint64_t v = 7;
      win.put(&v, sizeof(v), 1, 3 * sizeof(std::uint64_t));
    } else {
      win.wait_any_unapplied();
      EXPECT_EQ(window[3], 7u);
      EXPECT_GT(c.now(), 25.0);
    }
    win.fence();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, CompareAndSwapSemantics) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(1, 5);
    WinHandle win = c.create_win(window.data(), sizeof(std::uint64_t));
    c.barrier();
    if (c.rank() == 0) {
      EXPECT_EQ(win.compare_and_swap(4, 9, 1, 0), 5u);  // mismatch: no swap
      EXPECT_EQ(win.compare_and_swap(5, 9, 1, 0), 5u);  // match: swaps
      EXPECT_EQ(win.compare_and_swap(9, 1, 1, 0), 9u);
    }
    c.barrier();
    if (c.rank() == 1) EXPECT_EQ(window[0], 1u);
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, FetchAddAccumulatesAcrossRanks) {
  Engine eng(plat(), 8);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(1, 0);
    WinHandle win = c.create_win(window.data(), sizeof(std::uint64_t));
    c.barrier();
    if (c.rank() != 0) {
      win.fetch_add(static_cast<std::uint64_t>(c.rank()), 0, 0);
    }
    c.barrier();
    if (c.rank() == 0) EXPECT_EQ(window[0], 28u);  // 1+..+7
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, CasCostMatchesPaperCalibration) {
  // Perlmutter CPU one-sided CAS: ~2 us ("one CAS in 2 us", Sec III-C).
  Engine eng(plat(), 2);
  double per_op = 0;
  const auto r = World::run(eng, [&](Comm& c) {
    std::vector<std::uint64_t> window(1, 0);
    WinHandle win = c.create_win(window.data(), sizeof(std::uint64_t));
    c.barrier();
    if (c.rank() == 0) {
      constexpr int kReps = 32;
      const double t0 = c.now();
      for (int i = 0; i < kReps; ++i) {
        win.fetch_add(1, 1, 0);
      }
      per_op = (c.now() - t0) / kReps;
    }
    c.barrier();
  });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(per_op, 2.0, 0.4);
}

TEST(Rma, OneSidedUsesItsOwnLogGP) {
  // The 4-op one-sided pattern (put, flush, put, flush) on Perlmutter must
  // land near the paper's 5 us per message (Fig 6b).
  Engine eng(plat(), 2);
  double per_msg = 0;
  const auto r = World::run(eng, [&](Comm& c) {
    std::vector<std::byte> window(4096);
    WinHandle win = c.create_win(window.data(), window.size());
    c.barrier();
    if (c.rank() == 0) {
      std::vector<std::byte> data(100 * 8);  // ~100 words, like SpTRSV
      std::uint64_t sig = 1;
      constexpr int kReps = 16;
      const double t0 = c.now();
      for (int i = 0; i < kReps; ++i) {
        win.put(data.data(), data.size(), 1, 0);
        win.flush(1);
        win.put(&sig, sizeof(sig), 1, 2048, simnet::OpKind::kSignal);
        win.flush(1);
      }
      per_msg = (c.now() - t0) / kReps;
    }
    c.barrier();
  });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(per_msg, 5.0, 1.0);
}

TEST(P2P, ZeroByteMessages) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(nullptr, 0, 1, 3);
    } else {
      const RecvInfo info = c.recv(nullptr, 0, 0, 3);
      EXPECT_EQ(info.bytes, 0u);
      EXPECT_GT(info.arrival_us, 0.0);  // still pays latency
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, SelfSendMatchesOwnMailbox) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    if (c.rank() == 0) {
      int v = 77;
      Request req = c.isend(&v, sizeof(v), 0, 0);
      int got = 0;
      c.recv(&got, sizeof(got), 0, 0);
      EXPECT_EQ(got, 77);
      c.wait(req);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, ManyTagsMatchIndependently) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    constexpr int kN = 20;
    if (c.rank() == 0) {
      for (int t = 0; t < kN; ++t) {
        int v = 1000 + t;
        c.send(&v, sizeof(v), 1, t);
      }
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      for (int t = kN - 1; t >= 0; --t) {
        int got = 0;
        c.recv(&got, sizeof(got), 0, t);
        EXPECT_EQ(got, 1000 + t);
      }
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(P2P, ReceiveBufferTooSmallAborts) {
  Engine eng(plat(), 2);
  EXPECT_DEATH(
      {
        auto res = World::run(eng, [](Comm& c) {
          double big[8] = {};
          if (c.rank() == 0) c.send(big, sizeof(big), 1, 0);
          if (c.rank() == 1) {
            double small[2];
            c.recv(small, sizeof(small), 0, 0);
          }
        });
        (void)res;
      },
      "receive buffer too small");
}

TEST(Rma, GetReadsCommittedMemory) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<double> window(4, 0.0);
    if (c.rank() == 1) window[2] = 6.5;
    WinHandle win = c.create_win(window.data(), window.size() * sizeof(double));
    c.barrier();
    if (c.rank() == 0) {
      double got = 0;
      const double t0 = c.now();
      win.get(&got, sizeof(got), 1, 2 * sizeof(double));
      EXPECT_DOUBLE_EQ(got, 6.5);
      EXPECT_GT(c.now() - t0, 2.0);  // round trip costs latency
    }
    c.barrier();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, PutOutOfBoundsAborts) {
  Engine eng(plat(), 2);
  EXPECT_DEATH(
      {
        auto res = World::run(eng, [](Comm& c) {
          std::vector<std::byte> window(16);
          WinHandle win = c.create_win(window.data(), window.size());
          if (c.rank() == 0) {
            double v = 1;
            win.put(&v, sizeof(v), 1, 12);  // 12 + 8 > 16
          }
          c.barrier();
        });
        (void)res;
      },
      "out of window bounds");
}

TEST(Rma, MultipleWindowsAreIndependent) {
  Engine eng(plat(), 2);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> wa(2, 0), wb(2, 0);
    WinHandle a = c.create_win(wa.data(), wa.size() * 8);
    WinHandle b = c.create_win(wb.data(), wb.size() * 8);
    if (c.rank() == 0) {
      std::uint64_t va = 11, vb = 22;
      a.put(&va, 8, 1, 0);
      b.put(&vb, 8, 1, 8);
    }
    a.fence();
    b.fence();
    if (c.rank() == 1) {
      EXPECT_EQ(wa[0], 11u);
      EXPECT_EQ(wb[1], 22u);
      EXPECT_EQ(wa[1], 0u);
      EXPECT_EQ(wb[0], 0u);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, SignalAfterDataFifoOrdering) {
  // A signal put issued after a data put must never be applied first, even
  // without an intermediate flush (FIFO network path). This pins a
  // simulator guarantee that is deliberately stronger than the MPI
  // standard's, so the RMA checker — which enforces the portable rule
  // (flush before signaling) — must stay off here.
  runtime::EngineOptions opt;
  opt.check = false;
  Engine eng(plat(), 2, opt);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(3, 0);  // [data0, data1, signal]
    WinHandle win = c.create_win(window.data(), window.size() * 8);
    if (c.rank() == 0) {
      const std::uint64_t data[2] = {5, 6};
      const std::uint64_t sig = 1;
      win.put(data, 16, 1, 0);
      win.put(&sig, 8, 1, 16, simnet::OpKind::kSignal);
    } else {
      win.wait_any_unapplied();
      while (window[2] != 1) win.wait_any_unapplied();
      EXPECT_EQ(window[0], 5u);
      EXPECT_EQ(window[1], 6u);
    }
    win.fence();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Rma, FenceAppliesWithoutExplicitSync) {
  Engine eng(plat(), 4);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(4, 0);
    WinHandle win = c.create_win(window.data(), window.size() * 8);
    // All-to-one: everyone puts its rank id into slot [rank] of rank 0.
    win.fence();
    if (c.rank() != 0) {
      const std::uint64_t v = static_cast<std::uint64_t>(c.rank()) + 100;
      win.put(&v, 8, 0, static_cast<std::uint64_t>(c.rank()) * 8);
    }
    win.fence();
    if (c.rank() == 0) {
      for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(window[static_cast<std::size_t>(i)],
                  static_cast<std::uint64_t>(i) + 100);
      }
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(MultiNode, InterNodeTrafficIsNicBound) {
  // Two Perlmutter nodes: the inter-node path crosses PCIe4 (25 GB/s) and
  // the switch, so the pair peak drops from 32 (IF) to 25 GB/s and latency
  // grows by the extra hops.
  const simnet::Platform p2 = simnet::Platform::perlmutter_cpu(2);
  const int n = p2.max_ranks();
  EXPECT_DOUBLE_EQ(p2.pair_peak_gbs(0, n - 1, n), 25.0);
  EXPECT_GT(p2.hw_rtt_us(0, n - 1, n), p2.hw_rtt_us(0, 1, n));

  Engine eng(p2, n);
  double cross = 0, local = 0;
  const auto r = World::run(eng, [&](Comm& c) {
    double x = 0;
    if (c.rank() == 0) {
      c.send(&x, 8, c.size() - 1, 0);  // other node
      c.send(&x, 8, 1, 1);             // same socket
    }
    if (c.rank() == c.size() - 1) {
      const RecvInfo i = c.recv(&x, 8, 0, 0);
      cross = i.arrival_us;
    }
    if (c.rank() == 1) {
      const RecvInfo i = c.recv(&x, 8, 0, 1);
      local = i.arrival_us;
    }
  });
  ASSERT_TRUE(r.ok());
  EXPECT_GT(cross, local);
}

// ---------------------------------------------------------------------------
// Metrics (DESIGN.md §9): op counters mirror what the comm layer issued
// ---------------------------------------------------------------------------

TEST(Metrics, SendRecvCountersAndBytes) {
  runtime::EngineOptions o;
  o.metrics = true;
  Engine eng(plat(), 2, o);
  const auto r = World::run(eng, [](Comm& c) {
    double buf[8] = {};
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) c.send(buf, sizeof(buf), 1, i);
    } else {
      for (int i = 0; i < 3; ++i) c.recv(buf, sizeof(buf), 0, i);
    }
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const runtime::MetricsReport rep = eng.metrics_report();
  ASSERT_EQ(rep.ranks.size(), 2u);
  EXPECT_EQ(rep.ranks[0].ops.sends, 3u);
  EXPECT_EQ(rep.ranks[0].ops.bytes_sent, 3u * sizeof(double[8]));
  EXPECT_EQ(rep.ranks[0].ops.recvs, 0u);
  EXPECT_EQ(rep.ranks[1].ops.recvs, 3u);
  EXPECT_EQ(rep.ranks[1].ops.bytes_recv, 3u * sizeof(double[8]));
  EXPECT_EQ(rep.ranks[1].ops.sends, 0u);
  // 3 messages of 64 B => 3 entries in the size histogram's [64, 128) bucket.
  EXPECT_EQ(rep.totals().msg_bytes.bucket_count(6), 3u);
}

TEST(Metrics, RmaCountersSeparatePutsGetsAtomics) {
  runtime::EngineOptions o;
  o.metrics = true;
  o.trace = true;
  Engine eng(plat(), 2, o);
  const auto r = World::run(eng, [](Comm& c) {
    std::vector<std::uint64_t> window(2, 5);
    WinHandle win = c.create_win(window.data(), 2 * sizeof(std::uint64_t));
    win.fence();
    std::uint64_t v = 7;
    if (c.rank() == 0) win.put(&v, sizeof(v), 1, 0);
    win.fence();
    if (c.rank() == 0) {
      win.get(&v, sizeof(v), 1, 0);
      EXPECT_EQ(win.compare_and_swap(4, 9, 1, 8), 5u);  // mismatch: fails
      EXPECT_EQ(win.compare_and_swap(5, 9, 1, 8), 5u);  // match: wins
      win.fetch_add(1, 1, 8);                           // not a CAS
    }
    win.fence();
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const runtime::MetricsReport rep = eng.metrics_report();
  const runtime::OpCounters& c0 = rep.ranks[0].ops;
  EXPECT_EQ(c0.puts, 1u);
  EXPECT_EQ(c0.gets, 1u);
  EXPECT_EQ(c0.atomics, 3u);
  EXPECT_EQ(c0.cas_failures, 1u);  // only the mismatching CAS
  EXPECT_EQ(rep.ranks[1].ops.puts, 0u);
  // Target rank observed the applied put as a delivery.
  EXPECT_EQ(rep.ranks[1].ops.recvs, 1u);
  EXPECT_EQ(rep.ranks[1].ops.bytes_recv, sizeof(std::uint64_t));
  // Every fabric-visible op has exactly one trace record (MPI layer).
  EXPECT_EQ(rep.totals().ops.fabric_ops(), eng.trace().records().size());
}

TEST(Metrics, CollectivesAndSyncsCounted) {
  runtime::EngineOptions o;
  o.metrics = true;
  Engine eng(plat(), 4, o);
  const auto r = World::run(eng, [](Comm& c) {
    c.barrier();
    (void)c.allreduce_sum(1.0);
    c.barrier();
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const runtime::MetricsReport rep = eng.metrics_report();
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(rep.ranks[static_cast<std::size_t>(rank)].ops.collectives, 3u)
        << rank;
    // Each collective closes one synchronization epoch on every rank.
    EXPECT_EQ(rep.ranks[static_cast<std::size_t>(rank)].ops.syncs, 3u) << rank;
  }
}

TEST(P2P, GatedRecvBitIdenticalToLinearScanOracleUnderTagChurn) {
  // The heap scheduler parks a blocked receiver behind a WaitGate on the
  // sender's push counter and re-parks it when a push doesn't satisfy the
  // match (wrong tag, or an ANY_SOURCE race); the linear scheduler ignores
  // gates and brute-force re-evaluates every condition after every perform.
  // The two must produce bit-identical clocks and traces on both backends.
  //
  // The body manufactures every re-park hazard: receivers post for a tag
  // that arrives SECOND (the first push wakes the gate, the match fails,
  // the waiter re-parks), then drain with ANY_SOURCE + ANY_TAG receives
  // whose gate is the inbox counter shared by several senders.
  const int n = 6;
  const int half = n / 2;
  auto run_config = [&](runtime::EngineBackend backend,
                        runtime::SchedulerKind sched) {
    runtime::EngineOptions o;
    o.backend = backend;
    o.scheduler = sched;
    o.trace = true;
    Engine eng(plat(), n, o);
    const auto r = World::run(eng, [&](Comm& c) {
      double payload = 100.0 * c.rank();
      if (c.rank() >= half) {
        const int dst = c.rank() - half;
        // Mismatched tag first; the receiver's posted recv must skip it.
        c.send(&payload, sizeof(payload), dst, /*tag=*/9);
        c.compute(0.7 * (c.rank() % 3 + 1));
        c.send(&payload, sizeof(payload), dst, /*tag=*/5);
        c.compute(0.3);
        c.send(&payload, sizeof(payload), dst, /*tag=*/9);
      } else {
        double buf = 0;
        // Blocks before anything arrives, wakes on the tag-9 push, fails
        // the match, and re-parks until the tag-5 push.
        const RecvInfo first =
            c.recv(&buf, sizeof(buf), c.rank() + half, /*tag=*/5);
        EXPECT_EQ(first.tag, 5);
        // Drain the two tag-9 messages via the ANY_SOURCE inbox gate.
        for (int k = 0; k < 2; ++k) {
          const RecvInfo any =
              c.recv(&buf, sizeof(buf), kAnySource, kAnyTag);
          EXPECT_EQ(any.tag, 9);
        }
      }
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return std::make_pair(r, eng.trace().records());
  };

  std::vector<std::pair<runtime::EngineBackend, runtime::SchedulerKind>> cfgs;
  for (auto backend :
       {runtime::EngineBackend::kFibers, runtime::EngineBackend::kThreads}) {
    if (backend == runtime::EngineBackend::kFibers &&
        !runtime::fibers_supported()) {
      continue;
    }
    cfgs.emplace_back(backend, runtime::SchedulerKind::kIndexedHeap);
    cfgs.emplace_back(backend, runtime::SchedulerKind::kLinearScan);
  }
  ASSERT_GE(cfgs.size(), 2u);
  const auto [r0, t0] = run_config(cfgs[0].first, cfgs[0].second);
  for (std::size_t i = 1; i < cfgs.size(); ++i) {
    const auto [r, t] = run_config(cfgs[i].first, cfgs[i].second);
    SCOPED_TRACE("config " + std::to_string(i));
    EXPECT_EQ(r.makespan_us, r0.makespan_us);
    ASSERT_EQ(r.rank_end_us.size(), r0.rank_end_us.size());
    for (std::size_t k = 0; k < r0.rank_end_us.size(); ++k) {
      EXPECT_EQ(r.rank_end_us[k], r0.rank_end_us[k]) << "rank " << k;
    }
    ASSERT_EQ(t.size(), t0.size());
    for (std::size_t k = 0; k < t0.size(); ++k) {
      EXPECT_EQ(t[k].src_rank, t0[k].src_rank) << k;
      EXPECT_EQ(t[k].dst_rank, t0[k].dst_rank) << k;
      EXPECT_EQ(t[k].t_issue, t0[k].t_issue) << k;
      EXPECT_EQ(t[k].t_arrival, t0[k].t_arrival) << k;
    }
  }
}

TEST(Metrics, DisabledMetricsLeaveTraceUntouched) {
  // Byte-identity guard at the unit level: the trace from a metrics-enabled
  // run must equal the trace from a metrics-disabled run record for record.
  auto run_trace = [](bool metrics) {
    runtime::EngineOptions o;
    o.metrics = metrics;
    o.trace = true;
    Engine eng(plat(), 2, o);
    const auto r = World::run(eng, [](Comm& c) {
      std::vector<std::uint64_t> window(1, 0);
      WinHandle win = c.create_win(window.data(), sizeof(std::uint64_t));
      win.fence();
      std::uint64_t v = 3;
      if (c.rank() == 0) win.put(&v, sizeof(v), 1, 0);
      win.fence();
    });
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    return eng.trace().records();
  };
  const auto off = run_trace(false);
  const auto on = run_trace(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].t_issue, on[i].t_issue) << i;
    EXPECT_EQ(off[i].t_arrival, on[i].t_arrival) << i;
    EXPECT_EQ(off[i].bytes, on[i].bytes) << i;
  }
}

}  // namespace
}  // namespace mrl::mpi
