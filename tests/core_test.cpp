// core: Message Roofline model identities, parameter fitting, sweeps, splits,
// and the parallel sweep runner's determinism guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/parallel.hpp"
#include "core/plot.hpp"
#include "core/report.hpp"
#include "core/split.hpp"
#include "core/sweep.hpp"
#include "runtime/engine.hpp"
#include "simnet/platform.hpp"

namespace mrl::core {
namespace {

RooflineParams params() { return RooflineParams{0.3, 3.0, 32.0}; }

TEST(Model, SharpNeverBelowRounded) {
  RooflineModel m(params());
  for (double b = 8; b <= (16 << 20); b *= 3.7) {
    for (double msync : {1.0, 10.0, 100.0, 1e4, 1e6}) {
      EXPECT_GE(m.sharp_gbs(b, msync), m.rounded_gbs(b, msync) - 1e-12)
          << "B=" << b << " m=" << msync;
    }
  }
}

TEST(Model, BandwidthMonotonicInMsgsPerSync) {
  RooflineModel m(params());
  for (double b = 8; b <= (1 << 20); b *= 4) {
    double prev = 0;
    for (double msync = 1; msync <= 1e6; msync *= 10) {
      const double bw = m.rounded_gbs(b, msync);
      EXPECT_GE(bw, prev - 1e-12);
      prev = bw;
    }
  }
}

TEST(Model, LargeMessagesApproachPeak) {
  RooflineModel m(params());
  EXPECT_NEAR(m.rounded_gbs(256 << 20, 1), 32.0, 0.5);
  EXPECT_LT(m.rounded_gbs(8, 1), 0.1);  // latency-bound regime
}

TEST(Model, SharpModelEqualsPaperFormula) {
  // B / max(o, L, B*G) for one message.
  RooflineModel m(params());
  const double B = 1024;
  const double G = params().G_us_per_byte();
  const double expect = B / std::max({0.3, 3.0, B * G}) * 1e-3;
  EXPECT_NEAR(m.sharp_gbs(B, 1), expect, 1e-12);
}

TEST(Model, RoundedModelEqualsPaperFormula) {
  // B / (o + max(L, B*G)) for one message.
  RooflineModel m(params());
  const double B = 65536;
  const double G = params().G_us_per_byte();
  const double expect = B / (0.3 + std::max(3.0, B * G)) * 1e-3;
  EXPECT_NEAR(m.rounded_gbs(B, 1), expect, 1e-12);
}

TEST(Model, EffectiveLatencyShrinksWithOverlap) {
  RooflineModel m(params());
  const double l1 = m.effective_latency_us(8, 1);
  const double l100 = m.effective_latency_us(8, 100);
  EXPECT_NEAR(l1, 3.3, 1e-9);       // o + L
  EXPECT_NEAR(l100, 0.33, 0.01);    // o + L/100
  EXPECT_GT(l1 / l100, 9.0);        // the paper's "10x by overlapping"
}

TEST(Model, KneeMovesLeftWithMoreMessages) {
  RooflineModel m(params());
  EXPECT_GT(m.knee_bytes(1), m.knee_bytes(100));
  // At the knee, latency and bandwidth terms balance (sharp model).
  const double b = m.knee_bytes(1);
  EXPECT_NEAR(b * params().G_us_per_byte(), 3.0, 1e-9);
}

TEST(Model, OverlapHeadroomMatchesPaperTenX) {
  // Fig 1: ~10x improvement available for small messages when L >> G*B.
  RooflineModel m(params());
  EXPECT_NEAR(m.overlap_headroom(8), 3.3 / 0.3, 0.01);
  EXPECT_LT(m.overlap_headroom(4 << 20), 1.05);  // bandwidth-bound: no gain
}

TEST(Fit, RecoversSyntheticParameters) {
  const RooflineParams truth{0.25, 2.5, 40.0};
  RooflineModel m(truth);
  std::vector<SweepPoint> pts;
  for (double b = 8; b <= (4 << 20); b *= 4) {
    for (double msync : {1.0, 10.0, 100.0, 1000.0}) {
      pts.push_back({b, msync, m.rounded_gbs(b, msync), 0});
    }
  }
  const FitResult f = fit_roofline(pts);
  EXPECT_NEAR(f.params.o_us, truth.o_us, 0.03);
  EXPECT_NEAR(f.params.L_us, truth.L_us, 0.25);
  EXPECT_NEAR(f.params.peak_gbs, truth.peak_gbs, 2.0);
  EXPECT_LT(f.rms_log_error, 0.05);
}

TEST(Fit, ToleratesNoise) {
  const RooflineParams truth{0.5, 5.0, 25.0};
  RooflineModel m(truth);
  std::vector<SweepPoint> pts;
  double wiggle = 0.95;
  for (double b = 8; b <= (1 << 20); b *= 8) {
    for (double msync : {1.0, 30.0, 1000.0}) {
      pts.push_back({b, msync, m.rounded_gbs(b, msync) * wiggle, 0});
      wiggle = (wiggle == 0.95) ? 1.05 : 0.95;
    }
  }
  const FitResult f = fit_roofline(pts);
  EXPECT_NEAR(f.params.o_us, truth.o_us, 0.15);
  EXPECT_NEAR(f.params.peak_gbs, truth.peak_gbs, 4.0);
}

TEST(Sweep, BandwidthGrowsWithMsgsPerSyncSmallMessages) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kTwoSided;
  cfg.msg_sizes = {64};
  cfg.msgs_per_sync = {1, 10, 100};
  cfg.iters = 4;
  const auto pts = run_sweep(simnet::Platform::perlmutter_cpu(), cfg).value();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].measured_gbs, pts[1].measured_gbs);
  EXPECT_LT(pts[1].measured_gbs, pts[2].measured_gbs);
}

TEST(Sweep, LargeMessagesReachPlatformCeiling) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {4 << 20};
  cfg.msgs_per_sync = {16};
  cfg.iters = 2;
  const auto pts = run_sweep(simnet::Platform::perlmutter_cpu(), cfg).value();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].measured_gbs, 25.0);
  EXPECT_LE(pts[0].measured_gbs, 32.5);
}

TEST(Sweep, OneSidedBeatsTwoSidedAtHighConcurrencyOnPerlmutter) {
  // Fig 3a headline: one-sided MPI overtakes two-sided as msg/sync grows.
  SweepConfig two = SweepConfig{};
  two.kind = SweepKind::kTwoSided;
  two.msg_sizes = {1024};
  two.msgs_per_sync = {100};
  SweepConfig one = two;
  one.kind = SweepKind::kOneSidedMpi;
  const auto p = simnet::Platform::perlmutter_cpu();
  const double bw2 = run_sweep(p, two).value()[0].measured_gbs;
  const double bw1 = run_sweep(p, one).value()[0].measured_gbs;
  EXPECT_GT(bw1, bw2);
}

TEST(Sweep, OneSidedLosesOnSummitSpectrumMpi) {
  // Fig 3c headline: Spectrum MPI one-sided is consistently slower.
  SweepConfig two = SweepConfig{};
  two.kind = SweepKind::kTwoSided;
  two.msg_sizes = {1024};
  two.msgs_per_sync = {1, 100};
  SweepConfig one = two;
  one.kind = SweepKind::kOneSidedMpi;
  const auto p = simnet::Platform::summit_cpu();
  const auto pts2 = run_sweep(p, two).value();
  const auto pts1 = run_sweep(p, one).value();
  for (std::size_t i = 0; i < pts2.size(); ++i) {
    EXPECT_LT(pts1[i].measured_gbs, pts2[i].measured_gbs) << i;
  }
}

TEST(Sweep, CasLatencyProbeMatchesShmemCalibration) {
  EXPECT_NEAR(
      measure_cas_latency_us(simnet::Platform::perlmutter_gpu(), 2, 1, 0),
      0.8, 0.1);
}

TEST(Parallel, ForIndexedCoversEveryIndexOnce) {
  for (int jobs : {1, 3, 8}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    parallel_for_indexed(hits.size(), jobs, [&](int worker, std::size_t i) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, jobs);
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(Parallel, SequentialPathRunsInOrderOnCallerThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for_indexed(5, 1, [&](int worker, std::size_t i) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, PropagatesFirstException) {
  for (int jobs : {1, 4}) {
    EXPECT_THROW(
        parallel_for_indexed(50, jobs,
                             [&](int, std::size_t i) {
                               if (i == 7) throw std::runtime_error("kaboom");
                             }),
        std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(Parallel, ResolveJobsHonorsOverride) {
  const int saved = default_jobs();
  set_default_jobs(3);
  EXPECT_EQ(resolve_jobs(0), 3);
  EXPECT_EQ(resolve_jobs(-2), 3);
  EXPECT_EQ(resolve_jobs(7), 7);
  set_default_jobs(0);  // back to hardware concurrency
  EXPECT_GE(default_jobs(), 1);
  set_default_jobs(saved);
}

// The tentpole determinism guarantee: a parallel sweep is byte-identical to
// the sequential legacy path — grid points are isolated simulations written
// to pre-assigned slots, so completion order cannot leak into the results.
TEST(Parallel, SweepJobs4BitIdenticalToJobs1) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {64, 4096, 262144};
  cfg.msgs_per_sync = {1, 10, 100};
  cfg.iters = 3;
  const auto plat = simnet::Platform::perlmutter_cpu();

  cfg.jobs = 1;
  const auto seq = run_sweep(plat, cfg).value();
  cfg.jobs = 4;
  const auto par = run_sweep(plat, cfg).value();

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    // Bit-level equality, not EXPECT_DOUBLE_EQ: the parallel runner must
    // reproduce the exact same virtual-time arithmetic per point.
    EXPECT_EQ(seq[i].bytes, par[i].bytes) << i;
    EXPECT_EQ(seq[i].msgs_per_sync, par[i].msgs_per_sync) << i;
    EXPECT_EQ(seq[i].measured_gbs, par[i].measured_gbs) << i;
    EXPECT_EQ(seq[i].eff_latency_us, par[i].eff_latency_us) << i;
  }
}

// Execution-backend interchangeability at the sweep level: a fig01-style
// grid must be bit-identical across {fibers, threads} × {jobs 1, jobs 4}.
// Nesting check for the fiber backend: with jobs=4 each pool worker owns an
// engine whose fiber scheduler runs on that worker's thread, under
// parallel_for_indexed.
TEST(Parallel, SweepBitIdenticalAcrossBackendsAndJobs) {
  namespace rt = mrl::runtime;
  if (!rt::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {64, 4096, 262144};
  cfg.msgs_per_sync = {1, 10, 100};
  cfg.iters = 3;
  const auto plat = simnet::Platform::perlmutter_cpu();

  const rt::EngineBackend saved = rt::default_backend();
  std::vector<std::vector<SweepPoint>> results;
  for (rt::EngineBackend backend :
       {rt::EngineBackend::kFibers, rt::EngineBackend::kThreads}) {
    rt::set_default_backend(backend);
    for (int jobs : {1, 4}) {
      cfg.jobs = jobs;
      results.push_back(run_sweep(plat, cfg).value());
    }
  }
  rt::set_default_backend(saved);

  const auto& ref = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(ref.size(), results[v].size()) << "variant " << v;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].bytes, results[v][i].bytes) << v << "/" << i;
      EXPECT_EQ(ref[i].msgs_per_sync, results[v][i].msgs_per_sync)
          << v << "/" << i;
      EXPECT_EQ(ref[i].measured_gbs, results[v][i].measured_gbs)
          << v << "/" << i;
      EXPECT_EQ(ref[i].eff_latency_us, results[v][i].eff_latency_us)
          << v << "/" << i;
    }
  }
}

// The process-wide metrics registry only aggregates commutative quantities
// (integer sums, histogram buckets, maxima), so its CSV must come out
// byte-for-byte identical no matter which backend ran the sweep or in what
// order the parallel grid points published their reports.
TEST(Parallel, MetricsRegistryBytesIdenticalAcrossBackendsAndJobs) {
  namespace rt = mrl::runtime;
  if (!rt::fibers_supported()) {
    GTEST_SKIP() << "fiber backend unavailable in this build (TSan)";
  }
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {64, 4096, 262144};
  cfg.msgs_per_sync = {1, 10, 100};
  cfg.iters = 3;
  const auto plat = simnet::Platform::perlmutter_cpu();

  const rt::EngineBackend saved = rt::default_backend();
  const bool saved_metrics = rt::default_metrics();
  rt::set_default_metrics(true);
  std::vector<std::vector<std::vector<std::string>>> rows;
  std::vector<std::uint64_t> runs;
  for (rt::EngineBackend backend :
       {rt::EngineBackend::kFibers, rt::EngineBackend::kThreads}) {
    rt::set_default_backend(backend);
    for (int jobs : {1, 4}) {
      rt::MetricsRegistry::instance().reset();
      cfg.jobs = jobs;
      (void)run_sweep(plat, cfg).value();
      runs.push_back(rt::MetricsRegistry::instance().runs());
      rows.push_back(rt::MetricsRegistry::instance().csv_rows());
    }
  }
  rt::set_default_backend(saved);
  rt::set_default_metrics(saved_metrics);
  rt::MetricsRegistry::instance().reset();

  ASSERT_EQ(rows.size(), 4u);
  EXPECT_GT(runs[0], 0u) << "sweep engines did not publish any reports";
  for (std::size_t v = 1; v < rows.size(); ++v) {
    EXPECT_EQ(runs[0], runs[v]) << "variant " << v;
    EXPECT_EQ(rows[0], rows[v]) << "variant " << v;
  }
}

TEST(Parallel, SweepParityAcrossKindsAndJobCounts) {
  const auto plat = simnet::Platform::perlmutter_gpu();
  for (SweepKind kind : {SweepKind::kTwoSided, SweepKind::kShmemPutSignal,
                         SweepKind::kAtomicCas}) {
    SweepConfig cfg;
    cfg.kind = kind;
    cfg.msg_sizes = {8, 65536};
    cfg.msgs_per_sync = {1, 100};
    cfg.iters = 2;
    cfg.jobs = 1;
    const auto seq = run_sweep(plat, cfg).value();
    for (int jobs : {2, 7}) {
      cfg.jobs = jobs;
      const auto par = run_sweep(plat, cfg).value();
      ASSERT_EQ(seq.size(), par.size());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].measured_gbs, par[i].measured_gbs)
            << to_string(kind) << " jobs=" << jobs << " i=" << i;
        EXPECT_EQ(seq[i].eff_latency_us, par[i].eff_latency_us)
            << to_string(kind) << " jobs=" << jobs << " i=" << i;
      }
    }
  }
}

TEST(Parallel, CalibrateRooflineJobs4IdenticalToJobs1) {
  const auto plat = simnet::Platform::frontier_cpu();
  const RooflineParams seq =
      calibrate_roofline(plat, SweepKind::kOneSidedMpi, 1).value();
  const RooflineParams par =
      calibrate_roofline(plat, SweepKind::kOneSidedMpi, 4).value();
  EXPECT_EQ(seq.o_us, par.o_us);
  EXPECT_EQ(seq.L_us, par.L_us);
  EXPECT_EQ(seq.peak_gbs, par.peak_gbs);
}

// Wall-clock speedup demonstration for the parallel runner. Only meaningful
// on a multi-core host, so it skips (after printing the measurement) when
// fewer than 4 cores are available; EXPERIMENTS.md records measured numbers.
TEST(Parallel, SweepSpeedupWithJobs4OnMultiCoreHosts) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {8, 64, 512, 4096, 32768, 262144};
  cfg.msgs_per_sync = {1, 10, 100, 1000};
  cfg.iters = 8;
  const auto plat = simnet::Platform::perlmutter_cpu();

  const auto time_once = [&](int jobs) {
    cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto pts = run_sweep(plat, cfg).value();
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_EQ(pts.size(), cfg.msg_sizes.size() * cfg.msgs_per_sync.size());
    return std::chrono::duration<double>(t1 - t0).count();
  };

  const double t_seq = time_once(1);
  const double t_par = time_once(4);
  const double speedup = t_seq / t_par;
  std::printf("[ INFO     ] 24-point sweep: jobs=1 %.3fs, jobs=4 %.3fs "
              "(%.2fx, %u hardware threads)\n",
              t_seq, t_par, speedup, std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "speedup assertion needs >= 4 cores; measured "
                 << speedup << "x";
  }
  EXPECT_GT(speedup, 1.5);
}

TEST(Split, LargeMessagesGainFromSplittingOnPerlmutterGpu) {
  SplitConfig cfg;
  cfg.volumes = {1 << 20};  // 1 MiB >> the 131 KiB crossover
  cfg.ways = {1, 4};
  cfg.iters = 4;
  const auto pts = run_split_sweep(simnet::Platform::perlmutter_gpu(), cfg);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[1].speedup_vs_1, 2.0);  // paper: up to 2.9x
  EXPECT_LT(pts[1].speedup_vs_1, 4.0);
}

TEST(Split, TinyMessagesLoseFromSplitting) {
  SplitConfig cfg;
  cfg.volumes = {4096};
  cfg.ways = {1, 4};
  cfg.iters = 4;
  const auto pts = run_split_sweep(simnet::Platform::perlmutter_gpu(), cfg);
  EXPECT_LT(pts[1].speedup_vs_1, 1.0);
}

TEST(Report, FigureRendersDotsAndCurves) {
  RooflineFigure fig("test figure", params());
  fig.add_model_curves({1, 100});
  fig.add_sharp_curve();
  fig.add_dot({"stencil", 65536, 4, 10.0});
  const std::string out = fig.render();
  EXPECT_NE(out.find("test figure"), std::string::npos);
  EXPECT_NE(out.find("stencil"), std::string::npos);
  EXPECT_NE(out.find("% of bound"), std::string::npos);
  const auto rows = fig.csv_rows();
  EXPECT_GT(rows.size(), 10u);
}

TEST(Plot, RendersLogLogScatter) {
  AsciiPlot p("t", "x", "y");
  p.add_series({"s", '*', {1, 10, 100}, {1, 100, 10000}});
  const std::string out = p.render();
  EXPECT_NE(out.find("[*] s"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

// --- fault-injected sweeps ------------------------------------------------

TEST(FaultSweep, ZeroIntensitySpecIsBitIdenticalToPristine) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kTwoSided;
  cfg.msg_sizes = {64, 4096, 262144};
  cfg.msgs_per_sync = {1, 100};
  cfg.iters = 2;
  const auto pristine =
      run_sweep(simnet::Platform::perlmutter_cpu(), cfg).value();
  simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  plat.set_faults(simnet::FaultSpec::at_intensity(0.0, 123));
  const auto zero = run_sweep(plat, cfg).value();
  ASSERT_EQ(pristine.size(), zero.size());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    EXPECT_EQ(pristine[i].measured_gbs, zero[i].measured_gbs) << i;
    EXPECT_EQ(pristine[i].eff_latency_us, zero[i].eff_latency_us) << i;
  }
}

TEST(FaultSweep, Jobs4BitIdenticalToJobs1UnderFaults) {
  // The fault layer keys every draw by (seed, link, ordinal), and the engine
  // serializes fabric access in virtual-time order — so even a degraded
  // sweep must be byte-reproducible across worker counts.
  simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  plat.set_faults(simnet::FaultSpec::at_intensity(0.6, 2026));
  SweepConfig cfg;
  cfg.kind = SweepKind::kOneSidedMpi;
  cfg.msg_sizes = {64, 4096, 262144};
  cfg.msgs_per_sync = {1, 10, 100};
  cfg.iters = 3;
  cfg.jobs = 1;
  const auto seq = run_sweep(plat, cfg).value();
  cfg.jobs = 4;
  const auto par = run_sweep(plat, cfg).value();
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].measured_gbs, par[i].measured_gbs) << i;
    EXPECT_EQ(seq[i].eff_latency_us, par[i].eff_latency_us) << i;
  }
}

TEST(FaultSweep, IntensityInflatesEffectiveLatency) {
  SweepConfig cfg;
  cfg.kind = SweepKind::kTwoSided;
  cfg.msg_sizes = {4096};
  cfg.msgs_per_sync = {10};
  cfg.iters = 2;
  const auto base = run_sweep(simnet::Platform::perlmutter_cpu(), cfg).value();
  simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  plat.set_faults(simnet::FaultSpec::at_intensity(0.8, 31337));
  const auto degraded = run_sweep(plat, cfg).value();
  ASSERT_EQ(base.size(), 1u);
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_GT(degraded[0].eff_latency_us, base[0].eff_latency_us);
  EXPECT_LT(degraded[0].measured_gbs, base[0].measured_gbs);
}

}  // namespace
}  // namespace mrl::core
