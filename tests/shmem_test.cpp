// minishmem semantics: symmetric heap, put-with-signal ordering/visibility,
// waits, quiet, atomics, and the paper's GPU CAS latency calibration.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "shmem/shmem.hpp"
#include "simnet/platform.hpp"

namespace mrl::shmem {
namespace {

using runtime::Engine;

TEST(Shmem, SymmetricAllocationReturnsSameOffsets) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 4);
  std::vector<std::uint64_t> offs(4);
  const auto r = World::run(eng, [&](Ctx& s) {
    auto a = s.allocate<double>(100);
    auto b = s.allocate<std::uint64_t>(10);
    s.barrier_all();
    offs[static_cast<std::size_t>(s.pe())] = a.offset * 1000000 + b.offset;
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  for (int i = 1; i < 4; ++i) EXPECT_EQ(offs[0], offs[static_cast<std::size_t>(i)]);
}

TEST(Shmem, PutSignalDeliversDataThenSignal) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<double>(64);
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      std::vector<double> src(64);
      std::iota(src.begin(), src.end(), 0.0);
      s.put_signal_nbi(data, src.data(), 64, sig, 1, 1);
      s.quiet();
    } else {
      s.wait_until(sig, 1);
      const double* d = s.local(data);
      for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(d[i], i);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, SignalNotVisibleBeforeArrivalTime) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      std::uint64_t dummy = 0;
      s.put_signal_nbi(Sym<std::uint64_t>{sig.offset}, &dummy, 0, sig, 1, 1);
      s.quiet();
    } else {
      // PE 1 reads its local memory immediately at t=0: the signal put needs
      // >= L (~3.35us) to arrive, so a raw read shows 0.
      EXPECT_EQ(*s.local(sig), 0u);
      s.wait_until(sig, 1);
      EXPECT_EQ(*s.local(sig), 1u);
      EXPECT_GT(s.now(), 3.0);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, WaitUntilAnyRespectsMask) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto sig = s.allocate<std::uint64_t>(4);
    if (s.pe() == 0) {
      std::uint64_t dummy = 0;
      // Set signals 1 and 3; index 1 is masked out at the receiver.
      s.put_signal_nbi(sig.at(1), &dummy, 0, sig.at(1), 1, 1);
      s.put_signal_nbi(sig.at(3), &dummy, 0, sig.at(3), 1, 1);
      s.quiet();
    } else {
      const std::int32_t status[4] = {0, 1, 0, 0};  // ignore slot 1
      const std::size_t idx = s.wait_until_any(sig, 4, status, 1);
      EXPECT_EQ(idx, 3u);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, WaitUntilAllBlocksForEveryUnmaskedSignal) {
  Engine eng(simnet::Platform::summit_gpu(), 3);
  const auto r = World::run(eng, [](Ctx& s) {
    auto sig = s.allocate<std::uint64_t>(3);
    if (s.pe() != 0) {
      std::uint64_t dummy = 0;
      s.compute(10.0 * s.pe());
      s.put_signal_nbi(sig.at(static_cast<std::uint64_t>(s.pe())), &dummy, 0,
                       sig.at(static_cast<std::uint64_t>(s.pe())), 1, 0);
      s.quiet();
    } else {
      const std::int32_t status[3] = {1, 0, 0};  // my own slot is masked
      s.wait_until_all(sig, 3, status, 1);
      EXPECT_EQ(s.local(sig)[1], 1u);
      EXPECT_EQ(s.local(sig)[2], 1u);
      EXPECT_GT(s.now(), 20.0);  // had to wait for the slowest (PE 2)
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, QuietWaitsForRemoteCompletion) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<std::byte>(4 << 20);
    if (s.pe() == 0) {
      std::vector<std::byte> src(4 << 20);
      const double t0 = s.now();
      s.put_nbi(data, src.data(), src.size(), 1);
      const double after_put = s.now() - t0;
      s.quiet();
      const double after_quiet = s.now() - t0;
      EXPECT_LT(after_put, 1.0);
      // 4 MiB over one NVLink3 lane (25 GB/s) ~ 168 us.
      EXPECT_GT(after_quiet, 150.0);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, FetchAddAccumulates) {
  Engine eng(simnet::Platform::summit_gpu(), 6);
  const auto r = World::run(eng, [](Ctx& s) {
    auto counter = s.allocate<std::uint64_t>(1);
    s.barrier_all();
    s.atomic_fetch_add(counter, 1, 0);
    s.barrier_all();
    if (s.pe() == 0) EXPECT_EQ(*s.local(counter), 6u);
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, CasReturnsOldValueAndSwaps) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto word = s.allocate<std::uint64_t>(1);
    s.barrier_all();
    if (s.pe() == 1) {
      EXPECT_EQ(s.atomic_compare_swap(word, 0, 11, 0), 0u);
      EXPECT_EQ(s.atomic_compare_swap(word, 0, 22, 0), 11u);  // fails
      EXPECT_EQ(s.atomic_compare_swap(word, 11, 22, 0), 11u);
    }
    s.barrier_all();
    if (s.pe() == 0) EXPECT_EQ(*s.local(word), 22u);
  });
  ASSERT_TRUE(r.ok());
}

// --- paper Fig 4 / Sec III-C CAS latency calibration ---

double cas_latency(const simnet::Platform& p, int npes, int origin,
                   int target) {
  Engine eng(p, npes);
  double per_op = 0;
  const auto r = World::run(eng, [&](Ctx& s) {
    auto word = s.allocate<std::uint64_t>(1);
    s.barrier_all();
    if (s.pe() == origin) {
      constexpr int kReps = 32;
      const double t0 = s.now();
      for (int i = 0; i < kReps; ++i) s.atomic_fetch_add(word, 1, target);
      per_op = (s.now() - t0) / kReps;
    }
    s.barrier_all();
  });
  EXPECT_TRUE(r.ok());
  return per_op;
}

TEST(ShmemCalibration, PerlmutterGpuCasIs0p8us) {
  EXPECT_NEAR(cas_latency(simnet::Platform::perlmutter_gpu(), 4, 1, 0), 0.8,
              0.1);
}

TEST(ShmemCalibration, SummitGpuCasIntraSocketIs1us) {
  EXPECT_NEAR(cas_latency(simnet::Platform::summit_gpu(), 6, 1, 0), 1.0, 0.1);
}

TEST(ShmemCalibration, SummitGpuCasCrossSocketIs1p6us) {
  EXPECT_NEAR(cas_latency(simnet::Platform::summit_gpu(), 6, 4, 0), 1.6, 0.1);
}

TEST(Shmem, PutSignalSingleMessageLatencyPerlmutterGpu) {
  // Fig 4a: ~4 us end-to-end latency at 1 msg/sync on Perlmutter GPUs.
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  double arrival = 0;
  const auto r = World::run(eng, [&](Ctx& s) {
    auto data = s.allocate<double>(1);
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      double v = 1.0;
      s.put_signal_nbi(data, &v, 1, sig, 1, 1);
      s.quiet();
    } else {
      s.wait_until(sig, 1);
      arrival = s.now();
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(arrival, 4.0, 0.5);
}

TEST(Shmem, AsymmetricAllocationAborts) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  EXPECT_DEATH(
      {
        auto res = World::run(eng, [](Ctx& s) {
          auto a = s.allocate<double>(s.pe() == 0 ? 10 : 20);
          (void)a;
          s.barrier_all();
        });
        (void)res;
      },
      "asymmetric");
}

TEST(Shmem, GetReadsRemoteHeap) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<double>(4);
    if (s.pe() == 1) s.local(data)[3] = 9.75;
    s.barrier_all();
    if (s.pe() == 0) {
      double got = 0;
      s.get(&got, data.at(3), 1, 1);
      EXPECT_DOUBLE_EQ(got, 9.75);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, PlainPutNbiAppliedAtBarrier) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<double>(8);
    if (s.pe() == 0) {
      double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      s.put_nbi(data, src, 8, 1);
      s.quiet();
    }
    s.barrier_all();
    if (s.pe() == 1) {
      for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(s.local(data)[i], i + 1);
    }
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, WaitUntilArbitraryValue) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      for (std::uint64_t v = 1; v <= 3; ++v) {
        std::uint64_t dummy = 0;
        s.put_signal_nbi(sig, &dummy, 0, sig, v, 1);
      }
      s.quiet();
    } else {
      s.wait_until(sig, 3);  // intermediate values 1, 2 must not satisfy
      EXPECT_EQ(*s.local(sig), 3u);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, AllocationAlignmentIsRespected) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  const auto r = World::run(eng, [](Ctx& s) {
    auto a = s.allocate<std::byte>(3);       // odd size
    auto b = s.allocate<double>(1);          // must be 8-aligned
    auto cc = s.allocate<std::uint64_t>(1);
    EXPECT_EQ(b.offset % alignof(double), 0u);
    EXPECT_EQ(cc.offset % 8, 0u);
    EXPECT_GE(b.offset, a.offset + 3);
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, SumAllReducesValues) {
  Engine eng(simnet::Platform::summit_gpu(), 6);
  const auto r = World::run(eng, [](Ctx& s) {
    const double total = s.sum_all(static_cast<double>(s.pe() + 1));
    EXPECT_DOUBLE_EQ(total, 21.0);
  });
  ASSERT_TRUE(r.ok());
}

TEST(Shmem, FrontierGpuCalibration) {
  // Extension platform: ROC_SHMEM-projected atomics stay fast and scale
  // with the Infinity-Fabric route (in-package vs package-to-package).
  const auto p = simnet::Platform::frontier_gpu();
  const double intra = cas_latency(p, 8, 1, 0);  // same MI250X package
  const double inter = cas_latency(p, 8, 2, 0);  // across packages
  EXPECT_LT(intra, inter);
  EXPECT_LT(inter, 2.5);
  EXPECT_GT(intra, 0.5);
}

TEST(Shmem, HeapExhaustionAborts) {
  Engine eng(simnet::Platform::perlmutter_gpu(), 2);
  World::Options opt;
  opt.heap_bytes = 1024;
  EXPECT_DEATH(
      {
        auto res = World::run(
            eng, [](Ctx& s) { auto big = s.allocate<double>(4096); (void)big; },
            opt);
        (void)res;
      },
      "heap exhausted");
}

TEST(Shmem, CasRetrySpinUnderDropsTripsWatchdog) {
  // A CAS spin-loop that can never succeed (the expected value is never
  // stored) is a livelock, not a deadlock: each retry makes virtual-time
  // progress, amplified by drop-retransmit backoff. The engine's watchdog
  // must convert it into a diagnosable Status instead of hanging the test.
  simnet::Platform plat = simnet::Platform::perlmutter_gpu();
  simnet::FaultSpec spec;
  spec.seed = 42;
  spec.drop_prob = 0.3;
  spec.retransmit_timeout_us = 20.0;
  spec.backoff_base_us = 5.0;
  plat.set_faults(spec);
  runtime::EngineOptions opt;
  opt.watchdog_virtual_us = 50000.0;
  Engine eng(plat, 2, opt);
  const auto r = World::run(eng, [](Ctx& s) {
    auto word = s.allocate<std::uint64_t>(1);
    s.barrier_all();
    if (s.pe() == 0) {
      while (s.atomic_compare_swap(word, 42, 9, 1) != 42) {
        // never succeeds: *word stays 0 forever
      }
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kTimeout);
  EXPECT_NE(r.status.message().find("watchdog"), std::string::npos)
      << r.status.message();
}

TEST(Shmem, DropsChargeBackoffOnAtomics) {
  // Same program, pristine vs drop-degraded fabric: the degraded run's
  // virtual completion time must be strictly larger (drops are pure cost).
  const auto run_once = [](bool faults) {
    simnet::Platform plat = simnet::Platform::perlmutter_gpu();
    if (faults) {
      simnet::FaultSpec spec;
      spec.seed = 7;
      spec.drop_prob = 0.4;
      spec.retransmit_timeout_us = 25.0;
      spec.backoff_base_us = 10.0;
      plat.set_faults(spec);
    }
    Engine eng(plat, 2);
    const auto r = World::run(eng, [](Ctx& s) {
      auto word = s.allocate<std::uint64_t>(1);
      s.barrier_all();
      if (s.pe() == 0) {
        for (int i = 0; i < 32; ++i) s.atomic_fetch_add(word, 1, 1);
      }
      s.barrier_all();
    });
    EXPECT_TRUE(r.ok());
    return r.makespan_us;
  };
  const double pristine = run_once(false);
  const double degraded = run_once(true);
  EXPECT_GT(degraded, pristine);
}

// ---------------------------------------------------------------------------
// Metrics (DESIGN.md §9)
// ---------------------------------------------------------------------------

TEST(Metrics, PutGetAtomicCountersAndCasFailures) {
  runtime::EngineOptions o;
  o.metrics = true;
  o.trace = true;
  Engine eng(simnet::Platform::perlmutter_gpu(), 2, o);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<double>(8);
    auto word = s.allocate<std::uint64_t>(1);
    if (s.pe() == 1) s.local(data)[0] = 2.5;
    s.barrier_all();
    if (s.pe() == 0) {
      double src[8] = {};
      s.put_nbi(data, src, 8, 1);
      s.quiet();
      double got = 0;
      s.get(&got, data.at(0), 1, 1);
      EXPECT_EQ(s.atomic_compare_swap(word, 5, 9, 1), 0u);   // fails
      EXPECT_EQ(s.atomic_compare_swap(word, 0, 9, 1), 0u);   // wins
      s.atomic_fetch_add(word, 1, 1);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const runtime::MetricsReport rep = eng.metrics_report();
  const runtime::OpCounters& c0 = rep.ranks[0].ops;
  EXPECT_EQ(c0.puts, 1u);
  EXPECT_EQ(c0.gets, 1u);
  EXPECT_EQ(c0.bytes_recv, sizeof(double));
  EXPECT_EQ(c0.atomics, 3u);
  EXPECT_EQ(c0.cas_failures, 1u);
  EXPECT_EQ(c0.collectives, 2u);
  EXPECT_EQ(rep.ranks[1].ops.collectives, 2u);
  // SHMEM gets bypass the trace (adding a record would change trace bytes),
  // so trace records = fabric ops minus the get round trips.
  const runtime::OpCounters totals = rep.totals().ops;
  EXPECT_EQ(totals.fabric_ops() - totals.gets, eng.trace().records().size());
}

TEST(Metrics, PutSignalCountsOnePut) {
  runtime::EngineOptions o;
  o.metrics = true;
  Engine eng(simnet::Platform::perlmutter_gpu(), 2, o);
  const auto r = World::run(eng, [](Ctx& s) {
    auto data = s.allocate<double>(16);
    auto sig = s.allocate<std::uint64_t>(1);
    if (s.pe() == 0) {
      double src[16] = {};
      s.put_signal_nbi(data, src, 16, sig, 1, 1);
      s.quiet();
    } else {
      s.wait_until(sig, 1);
    }
    s.barrier_all();
  });
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  const runtime::MetricsReport rep = eng.metrics_report();
  // One put-with-signal = one put (data+signal ride one fabric op here).
  EXPECT_EQ(rep.ranks[0].ops.puts, 1u);
  EXPECT_EQ(rep.ranks[0].ops.bytes_sent, 16 * sizeof(double));
  // The landed payload shows up as a delivery on the target.
  EXPECT_EQ(rep.ranks[1].ops.recvs, 1u);
  EXPECT_GE(rep.ranks[1].ops.waits, 1u);
}

}  // namespace
}  // namespace mrl::shmem
