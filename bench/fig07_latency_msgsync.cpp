// Fig 7: more messages per synchronization overlap the latency — effective
// per-message latency of the three workloads against their msg/sync, plus
// the model's latency-vs-concurrency curve.
//
// Headline ordering: Hashtable (1e6 msg/sync) has the smallest effective
// messaging latency, SpTRSV (1 msg/sync) the largest, Stencil (4) between.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/plot.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig07_latency_msgsync — latency overlap by msg/sync",
                "Fig 7 (GPU workloads: Perlmutter GPU, 4 PEs)");

  const auto gpu = simnet::Platform::perlmutter_gpu();
  const int P = 4;

  workloads::stencil::Config stc;
  stc.n = args.full ? 16384 : 2048;
  stc.iters = 4;
  stc.verify = false;
  const auto st = workloads::stencil::run_shmem_gpu(gpu, P, stc);

  workloads::sptrsv::GenConfig g;
  g.n = args.full ? 60000 : 8000;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config spc;
  spc.verify = false;
  const auto sp = workloads::sptrsv::run_shmem_gpu(gpu, P, L, spc);

  workloads::hashtable::Config hc;
  hc.total_inserts = args.full ? 1000000 : 20000;
  hc.verify = false;
  const auto hb = workloads::hashtable::run_shmem_gpu(gpu, P, hc);

  // Model curve: effective latency vs msg/sync for an 8 B message.
  core::SweepConfig scfg =
      core::SweepConfig::defaults(core::SweepKind::kShmemPutSignal);
  scfg.iters = 4;
  const auto fit = core::fit_roofline(bench::unwrap(core::run_sweep(gpu, scfg)));
  core::RooflineModel model(fit.params);

  // Overlap-amortized latency: o + L_msg / m — messages issued in the same
  // synchronization window hide each other's latency; only the per-op
  // overhead o can never be overlapped (the paper's Fig 7 argument).
  auto amortized = [&](const simnet::TraceSummary& s) {
    return fit.params.o_us + s.avg_latency_us / s.avg_msgs_per_sync;
  };

  core::AsciiPlot plot("Fig 7: overlap-amortized message latency vs msg/sync",
                       "messages per synchronization", "latency (us)");
  core::Series curve;
  curve.label = "rounded model (8 B messages)";
  curve.symbol = '.';
  for (double m = 1; m <= 1e6; m *= 2) {
    curve.xs.push_back(m);
    curve.ys.push_back(model.effective_latency_us(8, m));
  }
  plot.add_series(std::move(curve));
  plot.add_series({"SpTRSV", 'S', {sp.msgs.avg_msgs_per_sync},
                   {amortized(sp.msgs)}});
  plot.add_series({"Stencil", 'T', {st.msgs.avg_msgs_per_sync},
                   {amortized(st.msgs)}});
  plot.add_series({"Hashtable", 'H', {hb.msgs.avg_msgs_per_sync},
                   {amortized(hb.msgs)}});
  std::printf("%s\n", plot.render().c_str());

  TextTable t({"workload", "msg/sync", "amortized latency", "paper rank"});
  t.add_row({"SpTRSV", format_double(sp.msgs.avg_msgs_per_sync, 1),
             format_time_us(amortized(sp.msgs)), "largest"});
  t.add_row({"Stencil", format_double(st.msgs.avg_msgs_per_sync, 1),
             format_time_us(amortized(st.msgs)), "middle"});
  t.add_row({"Hashtable", format_double(hb.msgs.avg_msgs_per_sync, 0),
             format_time_us(amortized(hb.msgs)), "smallest"});
  std::printf("%s\n", t.render("measured ordering").c_str());

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"workload", "msgs_per_sync", "amortized_latency_us",
                 "raw_latency_us"});
  csv.push_back({"sptrsv", format_double(sp.msgs.avg_msgs_per_sync, 2),
                 format_double(amortized(sp.msgs), 3),
                 format_double(sp.msgs.avg_latency_us, 3)});
  csv.push_back({"stencil", format_double(st.msgs.avg_msgs_per_sync, 2),
                 format_double(amortized(st.msgs), 3),
                 format_double(st.msgs.avg_latency_us, 3)});
  csv.push_back({"hashtable", format_double(hb.msgs.avg_msgs_per_sync, 2),
                 format_double(amortized(hb.msgs), 3),
                 format_double(hb.msgs.avg_latency_us, 3)});
  bench::dump_csv("fig07_latency_msgsync", csv);
  return 0;
}
