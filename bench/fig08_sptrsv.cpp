// Fig 8: SpTRSV time on CPUs and GPUs using two-sided and one-sided
// communication, vs rank/PE count.
//
// Headlines: one-sided SLOWER than two-sided on CPUs (4 MPI ops + ack scan)
// and it stops scaling at higher parallelism; Perlmutter GPUs scale while
// Summit GPUs don't (NVLink3 latency/bandwidth advantage, ~3.7x at 4 PEs);
// Summit CPUs scale to 32 ranks but get worse at 42.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  namespace sp = workloads::sptrsv;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig08_sptrsv — SpTRSV on CPUs and GPUs",
                "Fig 8 (paper matrix: 126K x 126K, 1e8 nnz; scaled synthetic "
                "supernodal factor by default)");

  sp::GenConfig g;
  g.n = args.full ? 126000 : 30000;
  g.fill = args.full ? 8.0 : 6.0;
  const auto L = sp::SupernodalMatrix::generate(g);
  std::printf("matrix: n=%d, %d supernodes, %llu nnz\n\n", L.n(),
              L.num_supernodes(),
              static_cast<unsigned long long>(L.nnz()));

  sp::Config cfg;
  cfg.verify = false;

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"series", "ranks", "time_us"});
  TextTable t({"series", "ranks", "SOLVE time", "avg msg", "msg latency"});
  auto row = [&](const std::string& series, int ranks, const sp::Result& r) {
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    t.add_row({series, std::to_string(ranks), format_time_us(r.time_us),
               format_bytes(static_cast<std::uint64_t>(r.msgs.avg_msg_bytes)),
               format_time_us(r.msgs.avg_latency_us)});
    csv.push_back({series, std::to_string(ranks), format_double(r.time_us, 2)});
  };

  const auto pm_cpu = simnet::Platform::perlmutter_cpu();
  for (int p : {1, 4, 8, 16, 32}) {
    row("Perlmutter CPU two-sided", p, sp::run_two_sided(pm_cpu, p, L, cfg));
  }
  t.add_separator();
  for (int p : {1, 4, 8, 16, 32}) {
    row("Perlmutter CPU one-sided", p, sp::run_one_sided(pm_cpu, p, L, cfg));
  }
  t.add_separator();
  const auto sm_cpu = simnet::Platform::summit_cpu();
  for (int p : {1, 8, 32, 42}) {
    row("Summit CPU two-sided", p, sp::run_two_sided(sm_cpu, p, L, cfg));
  }
  t.add_separator();
  const auto pm_gpu = simnet::Platform::perlmutter_gpu();
  sp::Result pm_gpu4;
  for (int p : {1, 2, 4}) {
    auto r = sp::run_shmem_gpu(pm_gpu, p, L, cfg);
    if (p == 4) pm_gpu4 = r;
    row("Perlmutter GPU NVSHMEM", p, r);
  }
  t.add_separator();
  const auto sm_gpu = simnet::Platform::summit_gpu();
  sp::Result sm_gpu4;
  for (int p : {1, 2, 4, 6}) {
    auto r = sp::run_shmem_gpu(sm_gpu, p, L, cfg);
    if (p == 4) sm_gpu4 = r;
    row("Summit GPU NVSHMEM", p, r);
  }

  std::printf("%s\n", t.render("Fig 8: SpTRSV SOLVE time").c_str());
  if (pm_gpu4.time_us > 0) {
    std::printf("Perlmutter GPU vs Summit GPU at 4 PEs: %.2fx (paper: 3.7x)\n",
                sm_gpu4.time_us / pm_gpu4.time_us);
  }
  bench::dump_csv("fig08_sptrsv", csv);
  return 0;
}
