// Table II: workload characterization — pattern, receiver notification,
// operations, P2P pairing, msg/sync and words/msg, with the msg/sync and
// message-size columns measured from actual traced runs.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  bench::Args::parse(argc, argv);
  bench::banner("tab02_workloads — workload characterization",
                "Table II (measured msg/sync and words/msg columns)");

  const auto plat = simnet::Platform::perlmutter_cpu();

  workloads::stencil::Config scfg;
  scfg.n = 1024;
  scfg.iters = 4;
  scfg.verify = false;
  const auto st = workloads::stencil::run_two_sided(plat, 16, scfg);

  workloads::sptrsv::GenConfig g;
  g.n = 6000;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config pcfg;
  pcfg.verify = false;
  const auto sp = workloads::sptrsv::run_two_sided(plat, 16, L, pcfg);

  workloads::hashtable::Config hcfg;
  hcfg.total_inserts = 20000;
  hcfg.verify = false;
  const auto hb1 = workloads::hashtable::run_one_sided(plat, 16, hcfg);
  const auto hb2 = workloads::hashtable::run_two_sided(plat, 16, hcfg);

  TextTable t({"Workload", "Pattern", "Notify", "Operation", "P2P pair",
               "#Msg/sync (meas.)", "Words/Msg (meas.)"});
  t.add_row({"Stencil", "BSP sync", "Yes",
             "2-sided: Isend/Irecv+Waitall; 1-sided: Put+fence",
             "deterministic & fixed",
             format_double(st.msgs.avg_msgs_per_sync, 1) + " (paper: 4)",
             format_double(st.msgs.avg_msg_bytes / 8, 0) +
                 " (paper: size/P)"});
  t.add_row({"SpTRSV", "DAG async", "Yes",
             "2-sided: Isend+Recv loop; 1-sided: Put+flush x2 + ack",
             "deterministic & variable",
             format_double(sp.msgs.avg_msgs_per_sync, 1) + " (paper: 1)",
             format_double(sp.msgs.avg_msg_bytes / 8, 0) +
                 " (paper: avg 100)"});
  t.add_row({"Hashtable", "Random async", "No",
             "2-sided: Isend + blocking Recv; 1-sided: atomic CAS",
             "indeterministic",
             format_double(hb2.msgs.avg_msgs_per_sync, 1) + " / " +
                 format_count(static_cast<std::uint64_t>(
                     hb1.msgs.avg_msgs_per_sync)) +
                 " (paper: P / 1e6)",
             format_double(hb2.msgs.avg_msg_bytes / 8, 0) + " / " +
                 format_double(hb1.msgs.avg_msg_bytes / 8, 0) +
                 " (paper: 3 / 1)"});
  std::printf("%s\n",
              t.render("Table II: evaluated workload characterization "
                       "(16 ranks on Perlmutter CPU)")
                  .c_str());

  std::printf("message-size ranges: stencil %s..%s, sptrsv %s..%s\n",
              format_bytes(static_cast<std::uint64_t>(st.msgs.min_msg_bytes))
                  .c_str(),
              format_bytes(static_cast<std::uint64_t>(st.msgs.max_msg_bytes))
                  .c_str(),
              format_bytes(static_cast<std::uint64_t>(sp.msgs.min_msg_bytes))
                  .c_str(),
              format_bytes(static_cast<std::uint64_t>(sp.msgs.max_msg_bytes))
                  .c_str());
  return 0;
}
