// Fig 1: Message Roofline Model overview on Frontier — sharp vs rounded
// ceilings, msg/sync curves from 1 to 1e6, and empirical one-sided MPI dots.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig01_roofline_overview — Message Roofline on Frontier",
                "Fig 1 (sharp B/max(o,L,BG) vs rounded B/(o+max(L,BG)))");

  const simnet::Platform plat = simnet::Platform::frontier_cpu();

  // Empirical dots: one-sided MPI sweep on the simulated Frontier node.
  core::SweepConfig cfg = core::SweepConfig::defaults(
      core::SweepKind::kOneSidedMpi);
  if (!args.full) cfg.iters = 4;
  cfg.jobs = args.jobs;  // <= 0 resolves to hardware concurrency
  const auto points = bench::unwrap(core::run_sweep(plat, cfg));

  // Fit the rounded model from the empirical data — "the diagonal ceilings
  // (latency lines) are inferred based [on] the empirical data".
  const core::FitResult fit = core::fit_roofline(points);
  std::printf("fitted: %s  (rms log error %.3f)\n\n",
              fit.params.to_string().c_str(), fit.rms_log_error);

  core::RooflineFigure fig("Fig 1: Message Roofline overview (Frontier CPU)",
                           fit.params);
  fig.add_model_curves({1, 10, 100, 1000, 1e4, 1e5, 1e6});
  fig.add_sharp_curve();
  fig.add_points("one-sided MPI (measured)", '*', points);
  std::printf("%s\n", fig.render().c_str());

  // The paper's headline: ~10x improvement available from overlapping >=100
  // messages per sync when L >> G*B.
  core::RooflineModel model(fit.params);
  TextTable t({"msg size", "BW @ 1 msg/sync", "BW @ 100 msg/sync",
               "overlap headroom"});
  for (double b : {8.0, 256.0, 8192.0, 262144.0, 4194304.0}) {
    t.add_row({format_bytes(static_cast<std::uint64_t>(b)),
               format_gbs(model.rounded_gbs(b, 1)),
               format_gbs(model.rounded_gbs(b, 100)),
               format_double(model.overlap_headroom(b), 1) + "x"});
  }
  std::printf("%s\n", t.render("overlap benefit by message size").c_str());

  bench::dump_csv("fig01_roofline_overview", fig.csv_rows());
  return 0;
}
