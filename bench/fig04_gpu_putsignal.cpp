// Fig 4: NVSHMEM GPU-initiated put-with-signal bandwidth and atomic CAS on
// Perlmutter and Summit GPUs.
//
// Headlines: latency 4 us -> 0.5 us on Perlmutter GPUs (vs 5 us -> 0.3 us on
// Perlmutter CPUs) with much higher bandwidth; CAS costs 0.8 us (Perlmutter),
// 1.0 us intra-socket / 1.6 us cross-socket (Summit dumbbell).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig04_gpu_putsignal — GPU-initiated put-with-signal + CAS",
                "Fig 4 (a: Perlmutter GPU, b: Summit GPU)");

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"platform", "bytes", "msgs_per_sync", "gbs",
                 "eff_latency_us"});

  struct Case {
    simnet::Platform plat;
    const char* sub;
  };
  const Case cases[] = {{simnet::Platform::perlmutter_gpu(), "(a)"},
                        {simnet::Platform::summit_gpu(), "(b)"}};

  // Both platform sweeps run concurrently into pre-assigned slots; the
  // rendering loop below keeps the fixed (a), (b) order at any --jobs.
  const int jobs = core::resolve_jobs(args.jobs);
  std::vector<core::SweepPoint> results[2];
  core::parallel_for_indexed(2, jobs, [&](int, std::size_t i) {
    core::SweepConfig cfg =
        core::SweepConfig::defaults(core::SweepKind::kShmemPutSignal);
    if (!args.full) cfg.iters = 4;
    cfg.jobs = std::max(1, jobs / 2);  // split the budget across platforms
    results[i] = bench::unwrap(core::run_sweep(cases[i].plat, cfg));
  });

  for (std::size_t ci = 0; ci < 2; ++ci) {
    const Case& cs = cases[ci];
    const auto& pts = results[ci];
    const auto fit = core::fit_roofline(pts);

    core::RooflineFigure fig(
        std::string("Fig 4") + cs.sub + ": " + cs.plat.name() +
            " put-with-signal",
        fit.params);
    fig.add_model_curves({1, 100, 10000});
    fig.add_points("put_signal_nbi (measured)", '*', pts);
    std::printf("%s\n", fig.render().c_str());

    double lat1 = 0, lat_hi = 0;
    for (const auto& p : pts) {
      if (p.bytes == 8 && p.msgs_per_sync == 1) lat1 = p.eff_latency_us;
      if (p.bytes == 8 && p.msgs_per_sync == 10000) lat_hi = p.eff_latency_us;
    }
    std::printf("latency range (8 B): %s -> %s per message\n\n",
                format_time_us(lat1).c_str(), format_time_us(lat_hi).c_str());

    for (const auto& p : pts) {
      csv.push_back({cs.plat.name(), format_double(p.bytes, 0),
                     format_double(p.msgs_per_sync, 0),
                     format_double(p.measured_gbs, 4),
                     format_double(p.eff_latency_us, 4)});
    }
  }

  // Atomic compare-and-swap latencies (the paper's Sec III-C numbers).
  TextTable t({"platform", "pair", "CAS latency", "paper"});
  t.add_row({"Perlmutter GPU", "gpu1 -> gpu0",
             format_time_us(core::measure_cas_latency_us(
                 simnet::Platform::perlmutter_gpu(), 4, 1, 0)),
             "0.8 us"});
  t.add_row({"Summit GPU", "gpu1 -> gpu0 (intra-socket)",
             format_time_us(core::measure_cas_latency_us(
                 simnet::Platform::summit_gpu(), 6, 1, 0)),
             "1.0 us"});
  t.add_row({"Summit GPU", "gpu4 -> gpu0 (cross-socket)",
             format_time_us(core::measure_cas_latency_us(
                 simnet::Platform::summit_gpu(), 6, 4, 0)),
             "1.6 us"});
  std::printf("%s\n", t.render("atomic compare-and-swap").c_str());

  bench::dump_csv("fig04_gpu_putsignal", csv);
  return 0;
}
