// Fig 6: communication upper bounds of the three workloads on Perlmutter
// CPUs — each workload's measured (message size, msg/sync, sustained GB/s)
// dot overlaid on the Message Roofline.
//
// Headlines: Stencil/SpTRSV span wide message-size ranges; the hashtable is
// fixed-size; two-sided SpTRSV pays ~3.3 us per sync (1 op) vs ~5 us for
// one-sided (4 ops).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig06_workload_roofline — workload dots on the roofline",
                "Fig 6 (a: Hashtable, b: Stencil+SpTRSV, c: bounds) on "
                "Perlmutter CPUs");

  const auto plat = simnet::Platform::perlmutter_cpu();
  const int P = 16;

  // Calibrate the roofline from a two-sided sweep.
  core::SweepConfig scfg = core::SweepConfig::defaults(
      core::SweepKind::kTwoSided);
  scfg.iters = 4;
  const auto fit = core::fit_roofline(bench::unwrap(core::run_sweep(plat, scfg)));

  // Stencil dot (two-sided, 4 msgs/sync).
  workloads::stencil::Config stc;
  stc.n = args.full ? 16384 : 2048;
  stc.iters = 4;
  stc.verify = false;
  const auto st = workloads::stencil::run_two_sided(plat, P, stc);

  // SpTRSV dots (two-sided and one-sided).
  workloads::sptrsv::GenConfig g;
  g.n = args.full ? 60000 : 8000;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config spc;
  spc.verify = false;
  const auto sp2 = workloads::sptrsv::run_two_sided(plat, P, L, spc);
  const auto sp1 = workloads::sptrsv::run_one_sided(plat, P, L, spc);

  // Hashtable dots.
  workloads::hashtable::Config hc;
  hc.total_inserts = args.full ? 1000000 : 20000;
  hc.verify = false;
  const auto hb1 = workloads::hashtable::run_one_sided(plat, P, hc);
  const auto hb2 = workloads::hashtable::run_two_sided(plat, P, hc);

  core::RooflineFigure fig(
      "Fig 6: workload communication bounds (Perlmutter CPU, 16 ranks)",
      fit.params);
  fig.add_model_curves({1, 4, 100, 10000});
  fig.add_dot({"Stencil 2-sided", st.msgs.avg_msg_bytes,
               st.msgs.avg_msgs_per_sync, st.msgs.sustained_gbs});
  fig.add_dot({"SpTRSV 2-sided", sp2.msgs.avg_msg_bytes,
               sp2.msgs.avg_msgs_per_sync, sp2.msgs.sustained_gbs});
  fig.add_dot({"SpTRSV 1-sided", sp1.msgs.avg_msg_bytes,
               sp1.msgs.avg_msgs_per_sync, sp1.msgs.sustained_gbs});
  fig.add_dot({"Hashtable CAS", hb1.msgs.avg_msg_bytes,
               hb1.msgs.avg_msgs_per_sync, hb1.msgs.sustained_gbs});
  fig.add_dot({"Hashtable 2-sided", hb2.msgs.avg_msg_bytes,
               hb2.msgs.avg_msgs_per_sync, hb2.msgs.sustained_gbs});
  std::printf("%s\n", fig.render().c_str());

  // Per-message synchronization cost: two-sided = one receive op; one-sided
  // = the full put+flush+signal+flush sequence (measure it directly).
  core::SweepConfig one_cfg;
  one_cfg.kind = core::SweepKind::kOneSidedMpi;
  one_cfg.msg_sizes = {800};
  one_cfg.msgs_per_sync = {1};
  const double one_data = bench::unwrap(core::run_sweep(plat, one_cfg))[0].eff_latency_us;
  one_cfg.msg_sizes = {8};
  const double one_sig = bench::unwrap(core::run_sweep(plat, one_cfg))[0].eff_latency_us;
  std::printf(
      "per-message sync latency: SpTRSV two-sided %s (paper 3.3 us), "
      "one-sided 4-op %s (paper ~5 us)\n",
      format_time_us(sp2.msgs.avg_latency_us).c_str(),
      format_time_us(one_data + one_sig).c_str());

  bench::dump_csv("fig06_workload_roofline", fig.csv_rows());
  return 0;
}
