// Table I / Table III + Fig 2: evaluation platforms and node architectures.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  bench::Args::parse(argc, argv);
  bench::banner("tab01_platforms — evaluation platforms",
                "Table I / Table III and Fig 2 (node architectures)");

  TextTable t({"Machine", "GPUs/node", "GPU Interconnect", "GPU Runtime",
               "GPU-CPU", "CPUs", "CPU-CPU", "CPU Runtime", "CPU-NIC"});
  for (const simnet::Platform& p : simnet::Platform::all()) {
    const simnet::PlatformInfo& i = p.info();
    t.add_row({p.name(), i.gpus_per_node, i.gpu_interconnect, i.gpu_runtime,
               i.gpu_cpu_interconnect, i.cpus, i.cpu_cpu_interconnect,
               i.cpu_runtime, i.cpu_nic_interconnect});
  }
  std::printf("%s\n", t.render("Table I: Evaluation Platforms").c_str());

  std::printf("Fig 2: node architectures (simulated topologies)\n\n");
  for (const simnet::Platform& p : simnet::Platform::all()) {
    std::printf("--- %s ---\n%s\n", p.name().c_str(),
                p.topology().describe().c_str());
    std::printf("  rank pump: %s, local: %s @ %s, max ranks: %d\n\n",
                p.rank_pump_gbs() > 0 ? format_gbs(p.rank_pump_gbs()).c_str()
                                      : "unlimited",
                format_gbs(p.local_bw_gbs()).c_str(),
                format_time_us(p.local_latency_us()).c_str(), p.max_ranks());
  }

  TextTable lg({"Platform", "Runtime", "L (us)", "o (us)", "g (us)",
                "atomic L (us)"});
  for (const simnet::Platform& p : simnet::Platform::all()) {
    for (simnet::Runtime r : {simnet::Runtime::kTwoSidedMpi,
                              simnet::Runtime::kOneSidedMpi,
                              simnet::Runtime::kShmem}) {
      if (!p.is_gpu() && r == simnet::Runtime::kShmem) continue;
      if (p.is_gpu() && r != simnet::Runtime::kShmem) continue;
      const simnet::LogGP& g = p.params(r);
      lg.add_row({p.name(), std::string(simnet::to_string(r)),
                  format_double(g.L_us, 2), format_double(g.o_us, 2),
                  format_double(g.g_us, 2), format_double(g.atomic_L_us, 2)});
    }
  }
  std::printf("%s\n",
              lg.render("Calibrated LogGP parameter sets").c_str());
  return 0;
}
