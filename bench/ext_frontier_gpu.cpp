// Extension (the paper's future work): the experiment the paper could NOT
// run — the three workloads on Frontier's AMD GPUs with a ROC_SHMEM-style
// runtime including wait_until_any (whose absence blocked the original
// study). Parameters are projections (see Platform::frontier_gpu).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("ext_frontier_gpu — the missing Frontier GPU column",
                "paper Sec II: 'Frontier GPU partition is not considered due "
                "to the lack of support of wait_until_any in ROC_SHMEM' — "
                "simulated here with projected ROC_SHMEM parameters");

  const auto fr = simnet::Platform::frontier_gpu();
  const auto pm = simnet::Platform::perlmutter_gpu();

  // Stencil.
  workloads::stencil::Config scfg;
  scfg.n = args.full ? 16384 : 2048;
  scfg.iters = 5;
  scfg.verify = false;
  TextTable st({"platform", "PEs", "stencil time", "comm BW"});
  for (int p : {2, 4, 8}) {
    const auto r = workloads::stencil::run_shmem_gpu(fr, p, scfg);
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    st.add_row({fr.name(), std::to_string(p), format_time_us(r.time_us),
                format_gbs(r.msgs.sustained_gbs)});
  }
  {
    const auto r = workloads::stencil::run_shmem_gpu(pm, 4, scfg);
    st.add_row({pm.name() + " (reference)", "4", format_time_us(r.time_us),
                format_gbs(r.msgs.sustained_gbs)});
  }
  std::printf("%s\n", st.render("stencil (BSP)").c_str());

  // SpTRSV — the workload that needed wait_until_any.
  workloads::sptrsv::GenConfig g;
  g.n = args.full ? 126000 : 30000;
  g.fill = 6.0;
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config pcfg;
  pcfg.verify = false;
  TextTable sp({"platform", "PEs", "SOLVE time"});
  for (int p : {1, 2, 4, 8}) {
    const auto r = workloads::sptrsv::run_shmem_gpu(fr, p, L, pcfg);
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    sp.add_row({fr.name(), std::to_string(p), format_time_us(r.time_us)});
  }
  {
    const auto r = workloads::sptrsv::run_shmem_gpu(pm, 4, L, pcfg);
    sp.add_row({pm.name() + " (reference)", "4", format_time_us(r.time_us)});
  }
  std::printf("%s\n", sp.render("SpTRSV (DAG, wait_until_any)").c_str());

  // HashTable.
  workloads::hashtable::Config hcfg;
  hcfg.total_inserts = args.full ? 1000000 : 16384;
  hcfg.verify = false;
  TextTable hb({"platform", "PEs", "insert time", "updates/s"});
  for (int p : {2, 4, 8}) {
    const auto r = workloads::hashtable::run_shmem_gpu(fr, p, hcfg);
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    hb.add_row({fr.name(), std::to_string(p), format_time_us(r.time_us),
                format_count(static_cast<std::uint64_t>(r.updates_per_sec))});
  }
  std::printf("%s\n", hb.render("distributed hashtable (CAS)").c_str());

  std::printf(
      "Projection caveat: ROC_SHMEM per-op costs are estimated (o=2.0 us,\n"
      "L=3.5 us, fast atomics); shapes — not absolute numbers — are the\n"
      "deliverable, as for the rest of the reproduction.\n");
  return 0;
}
