// Fig 10: splitting one big message into several smaller concurrent ones on
// Perlmutter GPUs — message VOLUME on the x-axis, speedup of k-way split.
//
// Headline: volumes larger than ~131 KiB gain up to ~2.9x from a 4-way
// split, because a single put stream rides one NVLink3 lane (25 GB/s) while
// four concurrent streams use all four (100 GB/s).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/plot.hpp"
#include "core/split.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig10_split — message splitting on Perlmutter GPUs",
                "Fig 10 (volume on x-axis; >=131 KiB gains up to 2.9x)");

  core::SplitConfig cfg = core::SplitConfig::defaults();
  if (args.full) cfg.iters = 16;
  const auto pts = core::run_split_sweep(simnet::Platform::perlmutter_gpu(),
                                         cfg);

  core::AsciiPlot plot("Fig 10: achieved bandwidth by split factor",
                       "message volume (bytes)", "achieved GB/s");
  for (int ways : cfg.ways) {
    core::Series s;
    s.label = std::to_string(ways) + "-way split";
    s.symbol = "1248"[ways == 1 ? 0 : ways == 2 ? 1 : ways == 4 ? 2 : 3];
    for (const auto& p : pts) {
      if (p.ways != ways) continue;
      s.xs.push_back(static_cast<double>(p.volume_bytes));
      s.ys.push_back(p.gbs);
    }
    plot.add_series(std::move(s));
  }
  std::printf("%s\n", plot.render().c_str());

  TextTable t({"volume", "1-way", "2-way", "4-way", "8-way", "4-way speedup"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"volume_bytes", "ways", "time_us", "gbs", "speedup_vs_1"});
  for (std::uint64_t v : cfg.volumes) {
    std::string cells[4];
    double sp4 = 0;
    for (const auto& p : pts) {
      if (p.volume_bytes != v) continue;
      const int idx = p.ways == 1 ? 0 : p.ways == 2 ? 1 : p.ways == 4 ? 2 : 3;
      cells[idx] = format_gbs(p.gbs);
      if (p.ways == 4) sp4 = p.speedup_vs_1;
      csv.push_back({format_double(static_cast<double>(p.volume_bytes), 0),
                     std::to_string(p.ways), format_double(p.time_us, 3),
                     format_double(p.gbs, 3),
                     format_double(p.speedup_vs_1, 3)});
    }
    t.add_row({format_bytes(v), cells[0], cells[1], cells[2], cells[3],
               format_double(sp4, 2) + "x"});
  }
  std::printf("%s\n", t.render("split speedups (Perlmutter GPU)").c_str());

  double best = 0;
  for (const auto& p : pts) {
    if (p.ways == 4) best = std::max(best, p.speedup_vs_1);
  }
  std::printf("best 4-way speedup: %.2fx (paper: up to 2.9x)\n", best);
  bench::dump_csv("fig10_split", csv);
  return 0;
}
