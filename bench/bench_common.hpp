// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) the paper-style table/plot on stdout and (b) dumps
// its series as CSV under bench_out/ so figures can be regenerated with any
// plotting tool. `--full` switches from the fast default problem sizes to
// paper-scale ones.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "core/parallel.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/profiler.hpp"
#include "util/csv.hpp"
#include "util/parse.hpp"
#include "util/status.hpp"

namespace mrl::bench {

namespace detail {
/// Path for the --metrics aggregate dump (empty = disabled).
inline std::string& metrics_path() {
  static std::string path;
  return path;
}

/// atexit hook: dump the process-wide metrics aggregate once the bench has
/// finished all of its runs. The registry only accumulates commutative
/// quantities, so the bytes are independent of backend and --jobs.
///
/// The closing banner repeats the per-link head-of-line queueing from the
/// same registry aggregate the CSV is written from, so the printed numbers
/// and the `--metrics` CSV always agree.
inline void dump_metrics_at_exit() {
  const std::string& path = metrics_path();
  if (path.empty()) return;
  auto& reg = runtime::MetricsRegistry::instance();
  const auto links = reg.link_totals();
  if (!links.empty()) {
    std::printf("\n[metrics] per-link queueing (aggregate over %llu runs)\n",
                static_cast<unsigned long long>(reg.runs()));
    for (const auto& l : links) {
      std::printf("[metrics]   %-18s dir%d  msgs=%-10llu busy=%.3fus  "
                  "queue_us=%.3f\n",
                  l.name.c_str(), l.dir,
                  static_cast<unsigned long long>(l.msgs), l.busy_us(),
                  l.queue_us());
    }
  }
  const Status st = reg.write_csv(path);
  if (!st.is_ok()) {
    std::fprintf(stderr, "FATAL: %s\n", st.to_string().c_str());
    std::_Exit(1);
  }
  std::fprintf(stderr, "[metrics] %s\n", path.c_str());
}

/// Paths/format for the profiler dumps (empty = disabled), DESIGN.md §14.
inline std::string& trace_path() {
  static std::string path;
  return path;
}
inline std::string& trace_format() {
  static std::string fmt = "chrome";
  return fmt;
}
inline std::string& profile_path() {
  static std::string path;
  return path;
}
inline std::string& check_report_path() {
  static std::string path;
  return path;
}

/// atexit hook for --trace: write the deterministically captured run
/// (runtime::ProfileCapture keeps the slowest run, order-independently) in
/// the selected format.
inline void dump_trace_at_exit() {
  const std::string& path = trace_path();
  if (path.empty()) return;
  if (runtime::dump_captured_trace(path, trace_format())) {
    std::fprintf(stderr, "[trace] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "FATAL: could not write --trace %s\n", path.c_str());
    std::_Exit(1);
  }
}

/// atexit hook for --profile: run the critical-path analyzer on the captured
/// run and write its fixed-format report.
inline void dump_profile_at_exit() {
  const std::string& path = profile_path();
  if (path.empty()) return;
  if (runtime::dump_captured_profile(path)) {
    std::fprintf(stderr, "[profile] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "FATAL: could not write --profile %s\n",
                 path.c_str());
    std::_Exit(1);
  }
}

/// atexit hook for --check-report: dump the process-wide registry of checker
/// verdicts as schema-stable JSON (sorted, so bytes are independent of
/// backend/scheduler/--jobs).
inline void dump_check_report_at_exit() {
  const std::string& path = check_report_path();
  if (path.empty()) return;
  const Status st = check::CheckReportRegistry::instance().write_json(path);
  if (!st.is_ok()) {
    std::fprintf(stderr, "FATAL: %s\n", st.to_string().c_str());
    std::_Exit(1);
  }
  std::fprintf(stderr, "[check-report] %s\n", path.c_str());
}
}  // namespace detail

/// Bench-specific flag extension for Args::parse. `handler(argc, argv, i)`
/// returns true when it consumed argv[i] (advancing `i` past any value it
/// took); on a malformed value it must diagnose, print usage and exit(2)
/// itself. `usage` lines are appended to the shared usage text. Unconsumed
/// arguments still reject with usage + rc 2, same as the shared flags.
struct ExtraFlags {
  const char* usage = "";
  std::function<bool(int, char**, int&)> handler;
};

struct Args {
  bool full = false;  ///< paper-scale problem sizes (slower)
  int jobs = 0;       ///< concurrent grid points; 0 = hardware concurrency
  /// Experiment seed for fault-injection substreams (benches that sweep
  /// FaultSpecs, e.g. ext_fault_sweep). Same seed => byte-identical output.
  std::uint64_t fault_seed = 0x5EEDF007ULL;

  static void usage(const char* prog, std::FILE* out,
                    const ExtraFlags* extra = nullptr) {
    std::fprintf(out,
                 "usage: %s [--full] [--jobs N] [--backend B] "
                 "[--scheduler S] [--fault-seed S] [--metrics PATH] "
                 "[--check] [--check-history N] [--check-report PATH]\n"
                 "                 [--trace PATH] [--trace-format F] "
                 "[--trace-ranks A-B] [--profile PATH]\n",
                 prog);
    std::fprintf(out,
                 "  --full         paper-scale problem sizes (slower)\n"
                 "  --jobs N       run up to N independent grid points "
                 "concurrently (N >= 1;\n"
                 "                 default: hardware concurrency; 1 = "
                 "sequential; output is\n"
                 "                 bit-identical for every N)\n"
                 "  --backend B    rank execution backend: 'fibers' "
                 "(default) or 'threads';\n"
                 "                 output is bit-identical across backends\n"
                 "  --scheduler S  engine ready-queue structure: 'heap' "
                 "(default, indexed\n"
                 "                 min-heap) or 'linear' (legacy O(ranks) "
                 "scan); output is\n"
                 "                 bit-identical across both\n"
                 "  --fault-seed S seed for fault-injection substreams "
                 "(fault-sweep benches)\n"
                 "  --metrics PATH enable the deterministic metrics layer "
                 "and write the\n"
                 "                 process-wide aggregate CSV to PATH at "
                 "exit (bytes are\n"
                 "                 identical across backends and --jobs "
                 "values)\n"
                 "  --check        enable the RMA race & synchronization "
                 "checker (off by\n"
                 "                 default; violations fail the run with a "
                 "diagnostic; when\n"
                 "                 clean, output bytes are unchanged; also "
                 "MSGROOF_CHECK=1)\n"
                 "  --check-history N  per-region shadow-history cap for "
                 "the checker\n"
                 "                 (N >= 1; default 65536; accesses past "
                 "the cap are still\n"
                 "                 checked but not recorded)\n"
                 "  --check-report PATH  implies --check; write a "
                 "machine-readable JSON\n"
                 "                 dump of all checker verdicts to PATH at "
                 "exit (sorted, so\n"
                 "                 bytes are identical across backends, "
                 "schedulers, --jobs)\n"
                 "  --trace PATH   enable per-rank execution spans and "
                 "write the captured\n"
                 "                 run's timeline to PATH at exit "
                 "(deterministic: the\n"
                 "                 slowest run wins, ties broken "
                 "content-first)\n"
                 "  --trace-format F  trace output format: 'chrome' "
                 "(default; Perfetto/\n"
                 "                 chrome://tracing JSON with rank "
                 "timelines and counter\n"
                 "                 tracks) or 'csv' (message records)\n"
                 "  --trace-ranks A-B  only emit rank timelines for ranks "
                 "A..B inclusive\n"
                 "                 (0 <= A <= B; bounds trace size at large "
                 "rank counts;\n"
                 "                 counter tracks stay global)\n"
                 "  --profile PATH run the deterministic critical-path "
                 "analyzer on the\n"
                 "                 captured run and write its report to "
                 "PATH at exit\n"
                 "                 (category totals exactly partition the "
                 "makespan)\n");
    if (extra != nullptr && extra->usage[0] != '\0') {
      std::fprintf(out, "%s", extra->usage);
    }
  }

  /// Parses the shared bench flags (plus a bench's ExtraFlags, if given);
  /// unrecognized arguments are an error.
  static Args parse(int argc, char** argv,
                    const ExtraFlags* extra = nullptr) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--full") == 0) {
        a.full = true;
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        usage(argv[0], stdout, extra);
        std::exit(0);
      } else if (std::strcmp(arg, "--jobs") == 0 ||
                 std::strncmp(arg, "--jobs=", 7) == 0) {
        const char* val = nullptr;
        if (arg[6] == '=') {
          val = arg + 7;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --jobs requires a value\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        char* end = nullptr;
        const long n = std::strtol(val, &end, 10);
        if (end == val || *end != '\0' || n < 1) {
          std::fprintf(stderr, "%s: invalid --jobs value '%s' (need N >= 1)\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
        a.jobs = static_cast<int>(n);
      } else if (std::strcmp(arg, "--backend") == 0 ||
                 std::strncmp(arg, "--backend=", 10) == 0) {
        const char* val = nullptr;
        if (arg[9] == '=') {
          val = arg + 10;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --backend requires a value\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (std::strcmp(val, "fibers") == 0) {
          if (!runtime::fibers_supported()) {
            std::fprintf(stderr,
                         "%s: --backend fibers is unavailable in this build "
                         "(ThreadSanitizer); use --backend threads\n",
                         argv[0]);
            std::exit(2);
          }
          runtime::set_default_backend(runtime::EngineBackend::kFibers);
        } else if (std::strcmp(val, "threads") == 0) {
          runtime::set_default_backend(runtime::EngineBackend::kThreads);
        } else {
          std::fprintf(stderr,
                       "%s: invalid --backend value '%s' (expected 'fibers' "
                       "or 'threads')\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
      } else if (std::strcmp(arg, "--scheduler") == 0 ||
                 std::strncmp(arg, "--scheduler=", 12) == 0) {
        const char* val = nullptr;
        if (arg[11] == '=') {
          val = arg + 12;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --scheduler requires a value\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (std::strcmp(val, "heap") == 0) {
          runtime::set_default_scheduler(runtime::SchedulerKind::kIndexedHeap);
        } else if (std::strcmp(val, "linear") == 0) {
          runtime::set_default_scheduler(runtime::SchedulerKind::kLinearScan);
        } else {
          std::fprintf(stderr,
                       "%s: invalid --scheduler value '%s' (expected 'heap' "
                       "or 'linear')\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
      } else if (std::strcmp(arg, "--fault-seed") == 0 ||
                 std::strncmp(arg, "--fault-seed=", 13) == 0) {
        const char* val = nullptr;
        if (arg[12] == '=') {
          val = arg + 13;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --fault-seed requires a value\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        char* end = nullptr;
        const unsigned long long s = std::strtoull(val, &end, 0);
        if (end == val || *end != '\0') {
          std::fprintf(stderr, "%s: invalid --fault-seed value '%s'\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
        a.fault_seed = static_cast<std::uint64_t>(s);
      } else if (std::strcmp(arg, "--metrics") == 0 ||
                 std::strncmp(arg, "--metrics=", 10) == 0) {
        const char* val = nullptr;
        if (arg[9] == '=') {
          val = arg + 10;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --metrics requires a path\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (val[0] == '\0') {
          std::fprintf(stderr, "%s: --metrics requires a non-empty path\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        detail::metrics_path() = val;
        runtime::set_default_metrics(true);
        std::atexit(&detail::dump_metrics_at_exit);
      } else if (std::strcmp(arg, "--check") == 0) {
        check::set_default_check(true);
      } else if (std::strcmp(arg, "--check-history") == 0 ||
                 std::strncmp(arg, "--check-history=", 16) == 0) {
        const char* val = nullptr;
        if (arg[15] == '=') {
          val = arg + 16;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --check-history requires a value\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        const std::optional<long long> n =
            parse_cli_int(val, 1, "--check-history");
        if (!n) {
          usage(argv[0], stderr);
          std::exit(2);
        }
        check::set_default_check_history(static_cast<std::uint64_t>(*n));
      } else if (std::strcmp(arg, "--check-report") == 0 ||
                 std::strncmp(arg, "--check-report=", 15) == 0) {
        const char* val = nullptr;
        if (arg[14] == '=') {
          val = arg + 15;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --check-report requires a path\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (val[0] == '\0') {
          std::fprintf(stderr, "%s: --check-report requires a non-empty path\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        detail::check_report_path() = val;
        check::set_default_check(true);
        check::set_default_check_report(true);
        std::atexit(&detail::dump_check_report_at_exit);
      } else if (std::strcmp(arg, "--trace") == 0 ||
                 std::strncmp(arg, "--trace=", 8) == 0) {
        const char* val = nullptr;
        if (arg[7] == '=') {
          val = arg + 8;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --trace requires a path\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (val[0] == '\0') {
          std::fprintf(stderr, "%s: --trace requires a non-empty path\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        detail::trace_path() = val;
        runtime::set_default_trace(true);
        runtime::set_default_spans(true);
        std::atexit(&detail::dump_trace_at_exit);
      } else if (std::strcmp(arg, "--trace-format") == 0 ||
                 std::strncmp(arg, "--trace-format=", 15) == 0) {
        const char* val = nullptr;
        if (arg[14] == '=') {
          val = arg + 15;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --trace-format requires a value\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (std::strcmp(val, "chrome") != 0 && std::strcmp(val, "csv") != 0) {
          std::fprintf(stderr,
                       "%s: invalid --trace-format value '%s' (expected "
                       "'chrome' or 'csv')\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
        detail::trace_format() = val;
      } else if (std::strcmp(arg, "--trace-ranks") == 0 ||
                 std::strncmp(arg, "--trace-ranks=", 14) == 0) {
        const char* val = nullptr;
        if (arg[13] == '=') {
          val = arg + 14;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --trace-ranks requires a value\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        char* end = nullptr;
        const long lo = std::strtol(val, &end, 10);
        long hi = -1;
        bool ok = end != val && *end == '-' && lo >= 0;
        if (ok) {
          const char* rest = end + 1;
          hi = std::strtol(rest, &end, 10);
          ok = end != rest && *end == '\0' && hi >= lo;
        }
        if (!ok) {
          std::fprintf(stderr,
                       "%s: invalid --trace-ranks value '%s' (expected A-B "
                       "with 0 <= A <= B)\n",
                       argv[0], val);
          usage(argv[0], stderr);
          std::exit(2);
        }
        runtime::set_default_trace_ranks(
            {static_cast<int>(lo), static_cast<int>(hi)});
      } else if (std::strcmp(arg, "--profile") == 0 ||
                 std::strncmp(arg, "--profile=", 10) == 0) {
        const char* val = nullptr;
        if (arg[9] == '=') {
          val = arg + 10;
        } else if (i + 1 < argc) {
          val = argv[++i];
        } else {
          std::fprintf(stderr, "%s: --profile requires a path\n", argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        if (val[0] == '\0') {
          std::fprintf(stderr, "%s: --profile requires a non-empty path\n",
                       argv[0]);
          usage(argv[0], stderr);
          std::exit(2);
        }
        detail::profile_path() = val;
        runtime::set_default_trace(true);
        runtime::set_default_spans(true);
        std::atexit(&detail::dump_profile_at_exit);
      } else {
        if (extra != nullptr && extra->handler != nullptr &&
            extra->handler(argc, argv, i)) {
          continue;
        }
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n", argv[0], arg);
        usage(argv[0], stderr, extra);
        std::exit(2);
      }
    }
    if (a.jobs >= 1) core::set_default_jobs(a.jobs);
    return a;
  }
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  // Execution provenance, so saved logs/CSVs are self-describing. Neither
  // knob changes any number (output is bit-identical across both).
  std::printf("backend: %s · jobs: %d\n",
              runtime::to_string(runtime::default_backend()),
              core::resolve_jobs(0));
  std::printf("================================================================\n\n");
}

inline void dump_csv(const std::string& name,
                     const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  const Status st = write_csv_file(path, rows);
  if (!st.is_ok()) {
    // A partial/missing CSV must not look like a successful run.
    std::fprintf(stderr, "FATAL: %s\n", st.to_string().c_str());
    std::exit(1);
  }
  std::printf("[csv] %s\n", path.c_str());
}

/// Unwraps a Result or exits the bench with the carried Status on stderr —
/// a deadlocked/timed-out simulation must fail the binary, not silently
/// emit a partial table.
template <typename T>
T unwrap(Result<T> r) {
  if (!r.is_ok()) {
    std::fprintf(stderr, "FATAL: %s\n", r.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace mrl::bench
