// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) the paper-style table/plot on stdout and (b) dumps
// its series as CSV under bench_out/ so figures can be regenerated with any
// plotting tool. `--full` switches from the fast default problem sizes to
// paper-scale ones.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace mrl::bench {

struct Args {
  bool full = false;  ///< paper-scale problem sizes (slower)

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) a.full = true;
      if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--full]\n", argv[0]);
        std::exit(0);
      }
    }
    return a;
  }
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

inline void dump_csv(const std::string& name,
                     const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  if (write_csv_file(path, rows)) {
    std::printf("[csv] %s\n", path.c_str());
  }
}

}  // namespace mrl::bench
