// Fig 9: distributed hashtable time using two-sided and one-sided
// communication, vs rank/PE count.
//
// Headlines: one-sided ~5x faster than two-sided at high rank counts but
// SLOWER at 2 ranks; Summit GPUs stop scaling past 3 PEs because the
// cross-socket CAS costs 1.6 us vs 1.0 us within an island.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  namespace hb = workloads::hashtable;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig09_hashtable — distributed hashtable inserts",
                "Fig 9 (paper: 1e6 total inserts; scaled by default)");

  hb::Config cfg;
  cfg.total_inserts = args.full ? 1000000 : 16384;
  cfg.slots_per_rank = 1u << 15;
  cfg.overflow_per_rank = 1u << 14;
  cfg.verify = false;
  std::printf("%llu total inserts (fixed across rank counts, as the paper)\n\n",
              static_cast<unsigned long long>(cfg.total_inserts));

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"series", "ranks", "time_us", "updates_per_sec"});
  TextTable t({"series", "ranks", "time", "updates/s", "collisions"});
  auto row = [&](const std::string& series, int ranks, const hb::Result& r) {
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    t.add_row({series, std::to_string(ranks), format_time_us(r.time_us),
               format_count(static_cast<std::uint64_t>(r.updates_per_sec)),
               std::to_string(r.collisions)});
    csv.push_back({series, std::to_string(ranks), format_double(r.time_us, 2),
                   format_double(r.updates_per_sec, 0)});
  };

  const auto pm_cpu = simnet::Platform::perlmutter_cpu();
  hb::Result one2, two2, one128, two128;
  for (int p : {2, 8, 32, 128}) {
    auto r = hb::run_one_sided(pm_cpu, p, cfg);
    if (p == 2) one2 = r;
    if (p == 128) one128 = r;
    row("Perlmutter CPU one-sided (CAS)", p, r);
  }
  t.add_separator();
  for (int p : {2, 8, 32, 128}) {
    auto r = hb::run_two_sided(pm_cpu, p, cfg);
    if (p == 2) two2 = r;
    if (p == 128) two128 = r;
    row("Perlmutter CPU two-sided", p, r);
  }
  t.add_separator();
  const auto fr_cpu = simnet::Platform::frontier_cpu();
  for (int p : {2, 16, 64}) {
    row("Frontier CPU one-sided (CAS)", p, hb::run_one_sided(fr_cpu, p, cfg));
  }
  t.add_separator();
  const auto sm_cpu = simnet::Platform::summit_cpu();
  for (int p : {2, 16, 42}) {
    row("Summit CPU one-sided (CAS)", p, hb::run_one_sided(sm_cpu, p, cfg));
  }
  t.add_separator();
  const auto pm_gpu = simnet::Platform::perlmutter_gpu();
  for (int p : {2, 4}) {
    row("Perlmutter GPU NVSHMEM (CAS)", p, hb::run_shmem_gpu(pm_gpu, p, cfg));
  }
  t.add_separator();
  const auto sm_gpu = simnet::Platform::summit_gpu();
  for (int p : {2, 3, 4, 6}) {
    row("Summit GPU NVSHMEM (CAS)", p, hb::run_shmem_gpu(sm_gpu, p, cfg));
  }

  std::printf("%s\n", t.render("Fig 9: hashtable insert time").c_str());
  std::printf("one-sided vs two-sided at 128 ranks: %.1fx faster (paper: ~5x)\n",
              two128.time_us / one128.time_us);
  std::printf("one-sided vs two-sided at 2 ranks: %.2fx (paper: one-sided "
              "slower, i.e. > 1x means slower)\n",
              one2.time_us / two2.time_us);
  bench::dump_csv("fig09_hashtable", csv);
  return 0;
}
