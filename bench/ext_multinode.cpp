// Extension: multi-node Message Rooflines. The paper's CPU measurements are
// on-node (Infinity Fabric / X-Bus); production runs cross the NIC. Two
// simulated Perlmutter nodes put the Slingshot NIC (25 GB/s PCIe4) on the
// path: the roofline ceiling drops from 32 to 25 GB/s and the latency lines
// shift up by the extra hops.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("ext_multinode — crossing the NIC (extension)",
                "on-node (paper Fig 3a) vs 2-node Perlmutter CPU rooflines");

  const simnet::Platform one_node = simnet::Platform::perlmutter_cpu(1);
  const simnet::Platform two_node = simnet::Platform::perlmutter_cpu(2);

  // Pairwise sweeps: on-node pair vs cross-node pair.
  core::SweepConfig base =
      core::SweepConfig::defaults(core::SweepKind::kOneSidedMpi);
  if (!args.full) base.iters = 4;

  core::SweepConfig cross = base;
  cross.nranks = two_node.max_ranks();
  cross.sender = 0;
  cross.receiver = cross.nranks - 1;  // lands on the second node

  // Both path sweeps run concurrently into pre-assigned slots.
  const int jobs = core::resolve_jobs(args.jobs);
  base.jobs = std::max(1, jobs / 2);
  cross.jobs = std::max(1, jobs / 2);
  std::vector<core::SweepPoint> pts_on, pts_cross;
  core::parallel_for_indexed(2, jobs, [&](int, std::size_t i) {
    if (i == 0) {
      pts_on = bench::unwrap(core::run_sweep(one_node, base));
    } else {
      pts_cross = bench::unwrap(core::run_sweep(two_node, cross));
    }
  });

  const auto fit_on = core::fit_roofline(pts_on);
  const auto fit_cross = core::fit_roofline(pts_cross);

  core::RooflineFigure fig("on-node vs cross-node one-sided MPI (Perlmutter)",
                           fit_on.params);
  fig.add_model_curves({1, 100, 10000});
  fig.add_points("on-node (IF)", 'o', pts_on);
  fig.add_points("cross-node (NIC + switch)", 'x', pts_cross);
  std::printf("%s\n", fig.render().c_str());

  TextTable t({"path", "fitted peak", "fitted L", "fitted o"});
  t.add_row({"on-node (IF)", format_gbs(fit_on.params.peak_gbs),
             format_time_us(fit_on.params.L_us),
             format_time_us(fit_on.params.o_us)});
  t.add_row({"cross-node (NIC)", format_gbs(fit_cross.params.peak_gbs),
             format_time_us(fit_cross.params.L_us),
             format_time_us(fit_cross.params.o_us)});
  std::printf("%s\n", t.render("fitted rooflines").c_str());

  // Stencil across two nodes: the NIC only carries the halo cut between the
  // node halves, so the BSP workload barely notices (bandwidth-bound again).
  workloads::stencil::Config scfg;
  scfg.n = args.full ? 16384 : 2048;
  scfg.iters = 4;
  scfg.verify = false;
  const auto r1 = workloads::stencil::run_two_sided(one_node, 128, scfg);
  const auto r2 = workloads::stencil::run_two_sided(two_node, 256, scfg);
  MRL_CHECK_MSG(r1.status.is_ok(), r1.status.to_string().c_str());
  MRL_CHECK_MSG(r2.status.is_ok(), r2.status.to_string().c_str());
  TextTable st({"config", "ranks", "stencil time"});
  st.add_row({"1 node", "128", format_time_us(r1.time_us)});
  st.add_row({"2 nodes", "256", format_time_us(r2.time_us)});
  std::printf("%s\n", st.render("stencil strong scaling across nodes").c_str());

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"path", "bytes", "msgs_per_sync", "gbs"});
  for (const auto& p : pts_on) {
    csv.push_back({"on_node", format_double(p.bytes, 0),
                   format_double(p.msgs_per_sync, 0),
                   format_double(p.measured_gbs, 4)});
  }
  for (const auto& p : pts_cross) {
    csv.push_back({"cross_node", format_double(p.bytes, 0),
                   format_double(p.msgs_per_sync, 0),
                   format_double(p.measured_gbs, 4)});
  }
  bench::dump_csv("ext_multinode", csv);
  return 0;
}
