// Extension (the paper's future work): NCCL/RCCL-style collectives on the
// Message Roofline. Ring vs recursive-doubling allreduce across message
// sizes on CPU and GPU platforms, with the per-size roofline bound.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "coll/algorithms.hpp"
#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace mrl;

double time_cpu_allreduce(const simnet::Platform& plat, int p,
                          std::size_t count, bool ring) {
  runtime::Engine eng(plat, p);
  double t = 0;
  const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
    c.world().capture_payloads = true;
    std::vector<double> v(count, 1.0);
    c.barrier();
    const double t0 = c.now();
    if (ring) {
      coll::ring_allreduce_sum(c, v.data(), v.size());
    } else {
      coll::rd_allreduce_sum(c, v.data(), v.size());
    }
    c.barrier();
    if (c.rank() == 0) t = c.now() - t0;
  });
  MRL_CHECK_MSG(r.ok(), r.status.message().c_str());
  return t;
}

double time_gpu_ring(const simnet::Platform& plat, int p, std::size_t count) {
  runtime::Engine eng(plat, p);
  double t = 0;
  shmem::World::Options opt;
  // Staging: 2(P-1) slots of one chunk each, plus signals and slack.
  opt.heap_bytes = 2ull * static_cast<std::uint64_t>(p) *
                       (count / static_cast<std::uint64_t>(p) + 2) * 8 +
                   (1u << 20);
  const auto r = shmem::World::run(eng, [&](shmem::Ctx& s) {
    std::vector<double> v(count, 1.0);
    s.barrier_all();
    const double t0 = s.now();
    coll::shmem_ring_allreduce_sum(s, v.data(), v.size());
    if (s.pe() == 0) t = s.now() - t0;
  }, opt);
  MRL_CHECK_MSG(r.ok(), r.status.message().c_str());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrl;
  bench::Args::parse(argc, argv);
  bench::banner("ext_collectives — NCCL/RCCL-style allreduce (extension)",
                "paper Sec V future work: 'AI applications using NCCL, "
                "RCCL, HCCL'");

  // CPU: ring vs recursive doubling on 16 Perlmutter ranks.
  {
    const auto plat = simnet::Platform::perlmutter_cpu();
    TextTable t({"vector", "ring allreduce", "recursive doubling", "winner"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"bytes", "ring_us", "rd_us"});
    for (std::size_t count : {64u, 1024u, 16384u, 262144u, 2097152u}) {
      const double ring = time_cpu_allreduce(plat, 16, count, true);
      const double rd = time_cpu_allreduce(plat, 16, count, false);
      t.add_row({format_bytes(count * 8), format_time_us(ring),
                 format_time_us(rd), ring < rd ? "ring" : "recursive-dbl"});
      csv.push_back({format_double(static_cast<double>(count) * 8, 0),
                     format_double(ring, 2), format_double(rd, 2)});
    }
    std::printf("%s\n",
                t.render("allreduce on 16 Perlmutter CPU ranks").c_str());
    bench::dump_csv("ext_collectives_cpu", csv);
  }

  // GPU: SHMEM ring allreduce bus bandwidth across the three GPU machines,
  // against the put-with-signal roofline bound.
  {
    TextTable t({"platform", "PEs", "64 MiB allreduce", "bus bandwidth",
                 "roofline peak"});
    struct Case {
      simnet::Platform plat;
      int pes;
    };
    const Case cases[] = {{simnet::Platform::perlmutter_gpu(), 4},
                          {simnet::Platform::summit_gpu(), 6},
                          {simnet::Platform::frontier_gpu(), 8}};
    for (const Case& cs : cases) {
      const std::size_t count = (64u << 20) / 8;
      const double us = time_gpu_ring(cs.plat, cs.pes, count);
      // NCCL "bus bandwidth": 2(P-1)/P * bytes / time.
      const double bus =
          bytes_per_us_to_gbs(2.0 * (cs.pes - 1) / cs.pes *
                                  static_cast<double>(count) * 8,
                              us);
      const core::RooflineParams fit = bench::unwrap(core::calibrate_roofline(
          cs.plat, core::SweepKind::kShmemPutSignal));
      t.add_row({cs.plat.name(), std::to_string(cs.pes), format_time_us(us),
                 format_gbs(bus), format_gbs(fit.peak_gbs)});
    }
    std::printf("%s\n",
                t.render("SHMEM ring allreduce (RCCL/NCCL analog)").c_str());
  }
  return 0;
}
