// Microbenchmarks (google-benchmark): raw costs of the simulator substrate —
// fabric transfers, topology routing, engine baton handoffs, and full
// communication round trips. These bound how large a virtual experiment the
// harness can execute per wall-clock second.
#include <benchmark/benchmark.h>

#include "mpi/comm.hpp"
#include "runtime/engine.hpp"
#include "shmem/shmem.hpp"
#include "simnet/fabric.hpp"
#include "simnet/platform.hpp"

namespace {

using namespace mrl;

void BM_FabricTransfer(benchmark::State& state) {
  const simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  auto fabric = plat.make_fabric();
  simnet::TransferParams p;
  p.src_ep = plat.endpoint_of_rank(0, 2);
  p.dst_ep = plat.endpoint_of_rank(1, 2);
  p.bytes = static_cast<std::uint64_t>(state.range(0));
  p.sw_latency_us = 2.7;
  p.inj_gap_us = 0.05;
  p.pump_gbs = 32.0;
  double t = 0;
  for (auto _ : state) {
    p.start_us = t;
    const auto r = fabric->transfer(p);
    benchmark::DoNotOptimize(r.arrival_us);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricTransfer)->Arg(8)->Arg(4096)->Arg(1 << 20);

void BM_TopologyRoute(benchmark::State& state) {
  const simnet::Platform plat = simnet::Platform::summit_gpu();
  const simnet::Topology& topo = plat.topology();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.route(0, 5).size());
    benchmark::DoNotOptimize(topo.route_latency_us(0, 5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyRoute);

// One baton handoff per op, across both execution backends (arg 1:
// 0 = fibers, 1 = threads). The persistent engine is hoisted out of the
// timing loop so the number is pure per-op dispatch cost, not pool spawn.
void BM_EnginePerformHandoff(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto backend = state.range(1) == 0 ? runtime::EngineBackend::kFibers
                                           : runtime::EngineBackend::kThreads;
  if (backend == runtime::EngineBackend::kFibers &&
      !runtime::fibers_supported()) {
    state.SkipWithError("fiber backend unavailable in this build (TSan)");
    return;
  }
  const simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  const int ops = 200;
  runtime::EngineOptions opt;
  opt.backend = backend;
  runtime::Engine eng(plat, nranks, opt);
  for (auto _ : state) {
    const auto r = eng.run([&](runtime::Rank& rank) {
      for (int i = 0; i < ops; ++i) {
        rank.advance(0.1);
        eng.perform(rank, [] {});
      }
    });
    benchmark::DoNotOptimize(r.makespan_us);
  }
  state.SetLabel(runtime::to_string(backend));
  state.SetItemsProcessed(state.iterations() * ops * nranks);
}
BENCHMARK(BM_EnginePerformHandoff)
    ->ArgsProduct({{2, 16, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_MpiPingPong(benchmark::State& state) {
  const simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  const int rounds = 100;
  for (auto _ : state) {
    runtime::Engine eng(plat, 2);
    const auto r = mpi::World::run(eng, [&](mpi::Comm& c) {
      double v = 1.0;
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send(&v, sizeof(v), 1, 0);
          c.recv(&v, sizeof(v), 1, 0);
        } else {
          c.recv(&v, sizeof(v), 0, 0);
          c.send(&v, sizeof(v), 0, 0);
        }
      }
    });
    benchmark::DoNotOptimize(r.makespan_us);
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_MpiPingPong)->Unit(benchmark::kMillisecond);

void BM_ShmemPutSignal(benchmark::State& state) {
  const simnet::Platform plat = simnet::Platform::perlmutter_gpu();
  const int puts = 200;
  for (auto _ : state) {
    runtime::Engine eng(plat, 2);
    const auto r = shmem::World::run(eng, [&](shmem::Ctx& s) {
      auto data = s.allocate<double>(16);
      auto sig = s.allocate<std::uint64_t>(1);
      if (s.pe() == 0) {
        double buf[16] = {};
        for (int i = 0; i < puts; ++i) {
          s.put_signal_nbi(data, buf, 16, sig, 1, 1);
        }
        s.quiet();
      }
      s.barrier_all();
    });
    benchmark::DoNotOptimize(r.makespan_us);
  }
  state.SetItemsProcessed(state.iterations() * puts);
}
BENCHMARK(BM_ShmemPutSignal)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
