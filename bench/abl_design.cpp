// Ablations over the design choices called out in DESIGN.md:
//   1. cut-through vs store-and-forward link costing,
//   2. link channel count (what creates the Fig 10 split win),
//   3. Listing-1 poll cost (what stops one-sided SpTRSV scaling),
//   4. put-with-signal (1 fused op) vs the 4-op one-sided MPI message,
//   5. engine scheduling fast paths: persistent rank-thread pool vs the
//      legacy fresh-engine-per-grid-point execution,
//   6. execution backend dispatch cost: fibers vs threads,
//   7. scheduler core: indexed min-heap vs legacy linear scan.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/split.hpp"
#include "core/sweep.hpp"
#include "runtime/engine.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("abl_design — design-choice ablations",
                "DESIGN.md ablation index (not a paper figure)");

  // 1. Cut-through vs store-and-forward on the Summit GPU dumbbell (the
  //    longest routes: 3 hops across sockets).
  {
    TextTable t({"route mode", "cross-island 1 MiB put+quiet"});
    for (auto mode : {simnet::RouteMode::kCutThrough,
                      simnet::RouteMode::kStoreForward}) {
      simnet::Platform plat = simnet::Platform::summit_gpu();
      plat.set_route_mode(mode);
      core::SweepConfig cfg;
      cfg.kind = core::SweepKind::kShmemPutSignal;
      cfg.msg_sizes = {1 << 20};
      cfg.msgs_per_sync = {1};
      cfg.nranks = 4;
      cfg.sender = 0;
      cfg.receiver = 3;  // crosses the X-Bus
      const auto pts = bench::unwrap(core::run_sweep(plat, cfg));
      t.add_row({mode == simnet::RouteMode::kCutThrough ? "cut-through"
                                                        : "store-and-forward",
                 format_time_us(pts[0].eff_latency_us)});
    }
    std::printf("%s\n", t.render("ablation 1: link costing mode").c_str());
  }

  // 2. Channel count: the 4-way split speedup tracks the number of link
  //    lanes — Perlmutter NVLink3 pairs have 4, Summit NVLink2 pairs have 2.
  {
    TextTable t({"platform (lanes per pair)", "4-way split speedup (1 MiB)"});
    core::SplitConfig scfg;
    scfg.volumes = {1 << 20};
    scfg.ways = {1, 4};
    scfg.iters = args.full ? 16 : 6;
    {
      const auto pts =
          core::run_split_sweep(simnet::Platform::perlmutter_gpu(), scfg);
      t.add_row({"Perlmutter GPU (4 x 25 GB/s)",
                 format_double(pts[1].speedup_vs_1, 2) + "x"});
    }
    {
      const auto pts =
          core::run_split_sweep(simnet::Platform::summit_gpu(), scfg);
      t.add_row({"Summit GPU (2 x 25 GB/s)",
                 format_double(pts[1].speedup_vs_1, 2) + "x"});
    }
    std::printf("%s\n", t.render("ablation 2: channelized links").c_str());
  }

  // 3. Poll cost of the Listing-1 acknowledgment scan.
  {
    workloads::sptrsv::GenConfig g;
    g.n = args.full ? 40000 : 8000;
    const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
    TextTable t({"poll cost / element", "one-sided SpTRSV @ 16 ranks"});
    for (double poll : {0.0, 0.003, 0.03}) {
      workloads::sptrsv::Config cfg;
      cfg.verify = false;
      cfg.poll_cost_us = poll;
      const auto r = workloads::sptrsv::run_one_sided(
          simnet::Platform::perlmutter_cpu(), 16, L, cfg);
      t.add_row({format_time_us(poll), format_time_us(r.time_us)});
    }
    std::printf("%s\n",
                t.render("ablation 3: receiver-ack scan cost").c_str());
  }

  // 4. Put-with-signal vs 4-op one-sided MPI for a SpTRSV-sized message.
  {
    TextTable t({"protocol", "ops/msg", "time per 800 B notified message"});
    const auto plat = simnet::Platform::perlmutter_cpu();
    {
      core::SweepConfig cfg;
      cfg.kind = core::SweepKind::kShmemPutSignal;
      cfg.msg_sizes = {800};
      cfg.msgs_per_sync = {1};
      const auto pts = bench::unwrap(core::run_sweep(plat, cfg));
      t.add_row({"put-with-signal (fused)", "1",
                 format_time_us(pts[0].eff_latency_us)});
    }
    {
      // 4-op: measured through the one-sided sweep plus the extra signal
      // round (put+flush+put+flush) — approximate with two back-to-back
      // one-sided syncs of 800 B and 8 B.
      core::SweepConfig cfg;
      cfg.kind = core::SweepKind::kOneSidedMpi;
      cfg.msg_sizes = {800};
      cfg.msgs_per_sync = {1};
      const auto data_pts = bench::unwrap(core::run_sweep(plat, cfg));
      cfg.msg_sizes = {8};
      const auto sig_pts = bench::unwrap(core::run_sweep(plat, cfg));
      t.add_row({"MPI put+flush+signal+flush", "4",
                 format_time_us(data_pts[0].eff_latency_us +
                                sig_pts[0].eff_latency_us)});
    }
    std::printf(
        "%s\n",
        t.render("ablation 4: hardware put-with-signal support "
                 "(the paper's 'intuitively inferred' win)")
            .c_str());
  }

  // 5. Engine scheduling fast paths. Sweeps execute thousands of tiny
  //    independent simulations; the legacy path built a fresh engine (and
  //    spawned nranks OS threads) for every grid point, while the current
  //    run_sweep reuses one engine per worker. Time both over the same
  //    many-point grid of trivial runs to isolate the dispatch overhead.
  {
    using clock = std::chrono::steady_clock;
    const int points = args.full ? 2000 : 500;
    const int nranks = 8;
    const auto plat = simnet::Platform::perlmutter_cpu();
    const auto body = [](runtime::Rank& r) { r.advance(1.0); };

    const auto t0 = clock::now();
    for (int i = 0; i < points; ++i) {
      runtime::Engine eng(plat, nranks);  // legacy: fresh threads per point
      const auto res = eng.run(body);
      MRL_CHECK(res.ok());
    }
    const auto t1 = clock::now();
    runtime::Engine eng(plat, nranks);  // current: persistent thread pool
    for (int i = 0; i < points; ++i) {
      const auto res = eng.run(body);
      MRL_CHECK(res.ok());
    }
    const auto t2 = clock::now();

    const double fresh_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double reuse_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    TextTable t({"execution mode", "wall-clock", "per point"});
    t.add_row({"fresh engine per point (legacy)",
               format_double(fresh_ms, 1) + " ms",
               format_time_us(1000.0 * fresh_ms / points)});
    t.add_row({"persistent engine reuse (run_sweep)",
               format_double(reuse_ms, 1) + " ms",
               format_time_us(1000.0 * reuse_ms / points)});
    std::printf("%s", t.render("ablation 5: engine scheduling fast paths "
                               "(" + std::to_string(points) + " points x " +
                               std::to_string(nranks) + " ranks)")
                          .c_str());
    std::printf("  -> reuse speedup: %.2fx\n\n",
                reuse_ms > 0 ? fresh_ms / reuse_ms : 0.0);
  }

  // 6. Execution backend dispatch cost: fibers vs threads. Every perform()
  //    is one baton handoff — on the thread backend that is a mutex +
  //    condvar + two kernel-mediated context switches; on the fiber backend
  //    it is a user-space register swap. The body forces a real handoff per
  //    op (advance desynchronizes the clocks so the caller is never the
  //    min-clock rank at its own yield), isolating exactly the per-op
  //    dispatch cost that dominates small-message sweeps.
  {
    using clock = std::chrono::steady_clock;
    const int points = args.full ? 2000 : 500;
    const int nranks = 8;
    const int ops_per_rank = 64;
    const auto plat = simnet::Platform::perlmutter_cpu();
    const auto body = [ops_per_rank](runtime::Rank& r) {
      for (int k = 0; k < ops_per_rank; ++k) {
        r.advance(0.5);
        r.engine().perform(r, [] {});
      }
    };
    const double total_ops =
        static_cast<double>(points) * nranks * ops_per_rank;

    auto time_backend = [&](runtime::EngineBackend backend) {
      runtime::EngineOptions opt;
      opt.backend = backend;
      runtime::Engine eng(plat, nranks, opt);
      const auto t0 = clock::now();
      for (int i = 0; i < points; ++i) {
        const auto res = eng.run(body);
        MRL_CHECK(res.ok());
      }
      const auto t1 = clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };

    const double threads_ms = time_backend(runtime::EngineBackend::kThreads);
    const double fibers_ms =
        runtime::fibers_supported()
            ? time_backend(runtime::EngineBackend::kFibers)
            : 0.0;

    TextTable t({"backend", "wall-clock", "per op"});
    t.add_row({"threads (condvar baton)",
               format_double(threads_ms, 1) + " ms",
               format_time_us(1000.0 * threads_ms / total_ops)});
    if (runtime::fibers_supported()) {
      t.add_row({"fibers (user-space switch)",
                 format_double(fibers_ms, 1) + " ms",
                 format_time_us(1000.0 * fibers_ms / total_ops)});
    }
    std::printf("%s", t.render("ablation 6: execution backend dispatch cost "
                               "(" + std::to_string(points) + " points x " +
                               std::to_string(nranks) + " ranks x " +
                               std::to_string(ops_per_rank) + " ops)")
                          .c_str());
    if (runtime::fibers_supported()) {
      std::printf("  -> fiber speedup: %.2fx\n\n",
                  fibers_ms > 0 ? threads_ms / fibers_ms : 0.0);
      bench::dump_csv(
          "abl_dispatch_cost",
          {{"backend", "wall_ms", "us_per_op", "speedup_vs_threads"},
           {"threads", format_double(threads_ms, 3),
            format_double(1000.0 * threads_ms / total_ops, 4),
            format_double(1.0, 2)},
           {"fibers", format_double(fibers_ms, 3),
            format_double(1000.0 * fibers_ms / total_ops, 4),
            format_double(fibers_ms > 0 ? threads_ms / fibers_ms : 0.0,
                          2)}});
    } else {
      std::printf("  (fiber backend unavailable in this build — TSan)\n\n");
    }
  }

  // 7. Scheduler core: indexed min-heap vs the legacy linear scan. Every
  //    dispatch grants the min-(wake, rank id) ready rank; the linear scan
  //    pays O(P) per grant (plus an O(P) all-ranks pass per wake check)
  //    while the indexed heap pays O(log P) with an O(1) blocked-rank
  //    index — the difference between quadratic and near-linear total work
  //    at paper-scale worlds. Both produce bit-identical schedules (the
  //    heap's tie-break is exactly the scan's lowest-id rule), so this is
  //    pure dispatch cost. 4096 ranks is the fig05 large-world point.
  {
    using clock = std::chrono::steady_clock;
    const int nranks = 4096;
    const int ops_per_rank = args.full ? 32 : 8;
    const auto plat = simnet::Platform::perlmutter_cpu(32);  // 4096 rank slots
    const auto body = [ops_per_rank](runtime::Rank& r) {
      for (int k = 0; k < ops_per_rank; ++k) {
        r.advance(0.5);
        r.engine().perform(r, [] {});
      }
    };
    const double total_ops = static_cast<double>(nranks) * ops_per_rank;

    auto time_scheduler = [&](runtime::SchedulerKind sched) {
      runtime::EngineOptions opt;
      opt.scheduler = sched;
      runtime::Engine eng(plat, nranks, opt);
      MRL_CHECK(eng.run(body).ok());  // warm-up: stacks + page faults
      const auto t0 = clock::now();
      const auto res = eng.run(body);
      MRL_CHECK(res.ok());
      const auto t1 = clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };

    const double linear_ms =
        time_scheduler(runtime::SchedulerKind::kLinearScan);
    const double heap_ms = time_scheduler(runtime::SchedulerKind::kIndexedHeap);
    const double speedup = heap_ms > 0 ? linear_ms / heap_ms : 0.0;

    TextTable t({"scheduler", "wall-clock", "per op"});
    t.add_row({"linear scan (O(P) grant)", format_double(linear_ms, 1) + " ms",
               format_time_us(1000.0 * linear_ms / total_ops)});
    t.add_row({"indexed heap (O(log P))", format_double(heap_ms, 1) + " ms",
               format_time_us(1000.0 * heap_ms / total_ops)});
    std::printf("%s", t.render("ablation 7: scheduler core dispatch cost "
                               "(" + std::to_string(nranks) + " ranks x " +
                               std::to_string(ops_per_rank) + " ops)")
                          .c_str());
    std::printf("  -> heap speedup: %.2fx\n\n", speedup);
    bench::dump_csv(
        "abl_scheduler_dispatch",
        {{"scheduler", "wall_ms", "us_per_op", "speedup_vs_linear"},
         {"linear", format_double(linear_ms, 3),
          format_double(1000.0 * linear_ms / total_ops, 4),
          format_double(1.0, 2)},
         {"heap", format_double(heap_ms, 3),
          format_double(1000.0 * heap_ms / total_ops, 4),
          format_double(speedup, 2)}});
  }
  return 0;
}
