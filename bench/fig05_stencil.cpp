// Fig 5: Stencil time on CPUs and GPUs using two-sided and one-sided
// communication, vs rank/PE count.
//
// Headlines: two-sided ~= one-sided on CPUs (bandwidth-bound); GPUs are much
// faster thanks to parallelism and higher achieved bandwidth (~30 GB/s vs
// ~20 GB/s); stencils scale across the Summit dumbbell (topology-insensitive).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  using workloads::stencil::Config;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig05_stencil — BSP stencil on CPUs and GPUs",
                "Fig 5 (grid 16384^2 in the paper; scaled by default)");

  Config cfg;
  cfg.n = args.full ? 16384 : 2048;
  cfg.iters = args.full ? 10 : 5;
  cfg.verify = false;
  std::printf("grid %dx%d, %d iterations (halo = row/col of %d doubles)\n\n",
              cfg.n, cfg.n, cfg.iters, cfg.n);

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"series", "ranks", "time_us", "sustained_gbs", "msg_bytes"});
  TextTable t({"series", "ranks", "time", "comm BW", "avg msg", "msg/sync"});

  auto row = [&](const std::string& series, int ranks,
                 const workloads::stencil::Result& r) {
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    t.add_row({series, std::to_string(ranks), format_time_us(r.time_us),
               format_gbs(r.msgs.sustained_gbs),
               format_bytes(static_cast<std::uint64_t>(r.msgs.avg_msg_bytes)),
               format_double(r.msgs.avg_msgs_per_sync, 1)});
    csv.push_back({series, std::to_string(ranks), format_double(r.time_us, 2),
                   format_double(r.msgs.sustained_gbs, 3),
                   format_double(r.msgs.avg_msg_bytes, 0)});
  };

  const auto pm_cpu = simnet::Platform::perlmutter_cpu();
  for (int p : {4, 16, 64, 128}) {
    row("Perlmutter CPU two-sided", p,
        workloads::stencil::run_two_sided(pm_cpu, p, cfg));
  }
  t.add_separator();
  for (int p : {4, 16, 64, 128}) {
    row("Perlmutter CPU one-sided", p,
        workloads::stencil::run_one_sided(pm_cpu, p, cfg));
  }
  t.add_separator();
  const auto pm_gpu = simnet::Platform::perlmutter_gpu();
  for (int p : {2, 4}) {
    row("Perlmutter GPU NVSHMEM", p,
        workloads::stencil::run_shmem_gpu(pm_gpu, p, cfg));
  }
  for (int p : {2, 4}) {
    row("Perlmutter GPU host-staged MPI", p,
        workloads::stencil::run_host_staged_gpu(pm_gpu, p, cfg));
  }
  t.add_separator();
  const auto sm_gpu = simnet::Platform::summit_gpu();
  for (int p : {2, 3, 6}) {
    row("Summit GPU NVSHMEM", p,
        workloads::stencil::run_shmem_gpu(sm_gpu, p, cfg));
  }

  std::printf("%s\n", t.render("Fig 5: stencil iteration-loop time").c_str());
  std::printf(
      "expected shape: CPU one-sided ~= two-sided; GPU rows much faster;\n"
      "Summit GPU keeps scaling from 3 -> 6 PEs (dumbbell-insensitive).\n");
  bench::dump_csv("fig05_stencil", csv);
  return 0;
}
