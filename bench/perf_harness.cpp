// Perf harness: pins a fixed set of simulation sweeps and reports
// simulated-ops/sec, wall time, and peak RSS as BENCH_engine.json — the
// tracked, gated number for the engine's hot path (DESIGN.md §10).
//
// Sections (fixed shapes; the point is run-to-run comparability, not scale):
//   fig01_roofline      one-sided MPI roofline sweep on Frontier CPU
//   fig05_stencil_4096  one-sided stencil, 4096 ranks (32 Perlmutter nodes)
//   fig05_stencil_100k  one-sided stencil, 100000 ranks (800 nodes)
//   fig07_grid          the Fig 7 GPU workload trio at 4 PEs
//   ext_fault_sweep     degraded-network sweep, 3 flavors x 5 intensities
//   embedding           DLRM-style embedding-lookup serving: MPI at 64
//                       ranks + SHMEM at 4 PEs (--skip-embedding omits
//                       it, --only-embedding runs nothing else)
//   stencil_1m          one-sided stencil, 1,000,000 ranks — the pooled-stack
//                       + gated-wait + SoA scale smoke (DESIGN.md §12); also
//                       reports ranks/sec. Needs ~71 GB resident (~70 KB per
//                       rank): --skip-1m omits it (small machines, the CI
//                       perf sweep), --only-1m runs nothing else (the CI
//                       guarded smoke job).
//
// "Simulated ops" are scheduler-visible operations counted by the metrics
// layer: fabric ops (sends/puts/gets/atomics) + syncs + waits. Wall time is
// steady_clock. Peak RSS is /proc/self/status VmHWM, reset per section via
// /proc/self/clear_refs (code 5) so each section reports its own high-water
// mark; where the kernel forbids the reset, values degrade to the old
// nondecreasing process-wide peak. The fiber stack pool is trimmed between
// sections so one section's recycled stacks don't count against the next.
//
// With --baseline FILE the harness compares each section's ops_per_sec and
// rss_mb against the committed baseline and exits 1 on a regression beyond
// --tolerance / --rss-tolerance (default 25% each). Absolute throughput and
// RSS are machine-dependent, so CI treats that gate as soft (artifact +
// report); the hard gates remain the bit-identity tests.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/sweep.hpp"
#include "runtime/engine.hpp"
#include "runtime/fiber.hpp"
#include "runtime/metrics.hpp"
#include "simnet/fault.hpp"
#include "simnet/platform.hpp"
#include "util/parse.hpp"
#include "workloads/embedding/embedding.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace {

using namespace mrl;

/// Peak RSS (VmHWM) in MiB from /proc/self/status; 0 if unavailable.
double peak_rss_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// Resets the kernel's peak-RSS counter (VmHWM) to the current RSS so the
/// next peak_rss_mb() reads this section's own high-water mark instead of
/// the monotone process-wide one. Returns false where /proc/self/clear_refs
/// is absent or read-only (non-Linux, hardened kernels); rss_mb then falls
/// back to the old nondecreasing semantics.
bool reset_peak_rss() {
  std::ofstream f("/proc/self/clear_refs");
  if (!f) return false;
  f << "5" << std::flush;
  return f.good();
}

struct SectionResult {
  std::string name;
  std::uint64_t sim_ops = 0;
  double wall_s = 0;
  double ops_per_sec = 0;
  double rss_mb = 0;   ///< VmHWM during the section (see reset_peak_rss)
  std::uint64_t ranks = 0;  ///< simulated ranks; >0 adds ranks_per_sec
};

std::uint64_t scheduler_visible_ops(const runtime::OpCounters& c) {
  return c.fabric_ops() + c.syncs + c.waits;
}

/// Runs `body` as one pinned section with the metrics registry as the
/// simulated-op counter.
template <typename F>
SectionResult run_section(const std::string& name, F&& body,
                          std::uint64_t ranks = 0) {
  auto& reg = runtime::MetricsRegistry::instance();
  reg.reset();
  // Return the previous section's recycled fiber stacks to the kernel and
  // rebase the peak-RSS counter: rss_mb then measures THIS section.
  runtime::stack_pool_trim();
  reset_peak_rss();
  std::printf("[perf] %-20s ...", name.c_str());
  std::fflush(stdout);
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  SectionResult r;
  r.name = name;
  r.sim_ops = scheduler_visible_ops(reg.totals());
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.ops_per_sec = r.wall_s > 0 ? static_cast<double>(r.sim_ops) / r.wall_s : 0;
  r.rss_mb = peak_rss_mb();
  r.ranks = ranks;
  std::printf(" %12llu ops  %8.3f s  %12.0f ops/s  rss %.1f MB",
              static_cast<unsigned long long>(r.sim_ops), r.wall_s,
              r.ops_per_sec, r.rss_mb);
  if (ranks > 0 && r.wall_s > 0) {
    std::printf("  %.0f ranks/s", static_cast<double>(ranks) / r.wall_s);
  }
  std::printf("\n");
  return r;
}

void check_ok(const Status& st, const char* what) {
  if (!st.is_ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, st.to_string().c_str());
    std::exit(1);
  }
}

std::string json_escape_free(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json(const std::string& path, const std::vector<SectionResult>& rs,
                int jobs) {
  std::ostringstream os;
  std::uint64_t total_ops = 0;
  double total_wall = 0, max_rss = 0;
  for (const auto& r : rs) {
    total_ops += r.sim_ops;
    total_wall += r.wall_s;
    max_rss = std::max(max_rss, r.rss_mb);
  }
  os << "{\n"
     << "  \"bench\": \"engine\",\n"
     << "  \"backend\": \"" << runtime::to_string(runtime::default_backend())
     << "\",\n"
     << "  \"scheduler\": \""
     << runtime::to_string(runtime::default_scheduler()) << "\",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"sections\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    os << "    {\"name\": \"" << r.name << "\", \"sim_ops\": " << r.sim_ops
       << ", \"wall_s\": " << json_escape_free(r.wall_s)
       << ", \"ops_per_sec\": " << json_escape_free(r.ops_per_sec)
       << ", \"rss_mb\": " << json_escape_free(r.rss_mb);
    if (r.ranks > 0) {
      os << ", \"ranks\": " << r.ranks << ", \"ranks_per_sec\": "
         << json_escape_free(
                r.wall_s > 0 ? static_cast<double>(r.ranks) / r.wall_s : 0);
    }
    os << "}" << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"total\": {\"sim_ops\": " << total_ops
     << ", \"wall_s\": " << json_escape_free(total_wall)
     << ", \"ops_per_sec\": "
     << json_escape_free(total_wall > 0
                             ? static_cast<double>(total_ops) / total_wall
                             : 0)
     << ", \"peak_rss_mb\": " << json_escape_free(max_rss) << "}\n"
     << "}\n";
  std::ofstream out(path);
  out << os.str();
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("[perf] wrote %s\n", path.c_str());
}

/// Pulls `"key": <number>` immediately following `"name": "<section>"` out
/// of a BENCH_engine.json. Returns -1 if absent.
double json_section_value(const std::string& text, const std::string& section,
                          const std::string& key) {
  const std::string anchor = "\"name\": \"" + section + "\"";
  const std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t line_end = text.find('\n', at);
  const std::string needle = "\"" + key + "\": ";
  const std::size_t k = text.find(needle, at);
  if (k == std::string::npos || k > line_end) return -1;
  return std::strtod(text.c_str() + k + needle.size(), nullptr);
}

int compare_baseline(const std::string& path,
                     const std::vector<SectionResult>& rs, double tol_pct,
                     double rss_tol_pct) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "[perf] baseline %s not readable; skipping gate\n",
                 path.c_str());
    return 0;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  int failures = 0;
  for (const auto& r : rs) {
    const double base = json_section_value(text, r.name, "ops_per_sec");
    if (base <= 0) {
      std::printf("[perf] %-20s no baseline entry; skipped\n", r.name.c_str());
      continue;
    }
    const double ratio = r.ops_per_sec / base;
    const bool ok = ratio >= 1.0 - tol_pct / 100.0;
    std::printf("[perf] %-20s %12.0f vs baseline %12.0f ops/s  (%+.1f%%)%s\n",
                r.name.c_str(), r.ops_per_sec, base, (ratio - 1.0) * 100.0,
                ok ? "" : "  REGRESSION");
    if (!ok) ++failures;
    // RSS gates in the other direction: bigger is worse. Baselines written
    // before the per-section VmHWM reset carry the monotone process-wide
    // peak, which can only over-state a section — so the gate stays sound.
    const double rss_base = json_section_value(text, r.name, "rss_mb");
    if (rss_base > 0 && r.rss_mb > 0) {
      const double rss_ratio = r.rss_mb / rss_base;
      const bool rss_ok = rss_ratio <= 1.0 + rss_tol_pct / 100.0;
      std::printf("[perf] %-20s %10.1f vs baseline %10.1f MB     (%+.1f%%)%s\n",
                  r.name.c_str(), r.rss_mb, rss_base,
                  (rss_ratio - 1.0) * 100.0, rss_ok ? "" : "  RSS REGRESSION");
      if (!rss_ok) ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "[perf] FAIL: %d gate(s) regressed beyond tolerance "
                 "(ops %.0f%%, rss %.0f%%)\n",
                 failures, tol_pct, rss_tol_pct);
    return 1;
  }
  std::printf("[perf] all sections within tolerance (ops %.0f%%, rss %.0f%%)\n",
              tol_pct, rss_tol_pct);
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--baseline PATH] [--tolerance PCT] "
               "[--rss-tolerance PCT] [--jobs N] [--backend fibers|threads] "
               "[--scheduler heap|linear] [--stack-pool on|off] "
               "[--stack-pool-slab-mb N] [--skip-1m | --only-1m] "
               "[--skip-embedding | --only-embedding]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::string baseline_path;
  double tol_pct = 25.0;
  double rss_tol_pct = 25.0;
  int jobs = 1;
  bool skip_1m = false;
  bool only_1m = false;
  bool skip_embedding = false;
  bool only_embedding = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--out") == 0) {
      out_path = value("--out");
    } else if (std::strcmp(arg, "--baseline") == 0) {
      baseline_path = value("--baseline");
    } else if (std::strcmp(arg, "--tolerance") == 0) {
      const auto v = parse_f64(value("--tolerance"));
      if (!v || *v < 0) return usage(argv[0]);
      tol_pct = *v;
    } else if (std::strcmp(arg, "--rss-tolerance") == 0) {
      const auto v = parse_f64(value("--rss-tolerance"));
      if (!v || *v < 0) return usage(argv[0]);
      rss_tol_pct = *v;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const auto v = parse_cli_int(value("--jobs"), 1, "--jobs");
      if (!v) return usage(argv[0]);
      jobs = static_cast<int>(*v);
    } else if (std::strcmp(arg, "--backend") == 0) {
      const char* v = value("--backend");
      if (std::strcmp(v, "threads") == 0) {
        runtime::set_default_backend(runtime::EngineBackend::kThreads);
      } else if (std::strcmp(v, "fibers") == 0) {
        if (runtime::fibers_supported()) {
          runtime::set_default_backend(runtime::EngineBackend::kFibers);
        }
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--scheduler") == 0) {
      const char* v = value("--scheduler");
      if (std::strcmp(v, "linear") == 0) {
        runtime::set_default_scheduler(runtime::SchedulerKind::kLinearScan);
      } else if (std::strcmp(v, "heap") == 0) {
        runtime::set_default_scheduler(runtime::SchedulerKind::kIndexedHeap);
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--stack-pool") == 0) {
      const char* v = value("--stack-pool");
      if (std::strcmp(v, "on") == 0) {
        runtime::set_default_stack_pool(true);
      } else if (std::strcmp(v, "off") == 0) {
        runtime::set_default_stack_pool(false);
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--stack-pool-slab-mb") == 0) {
      const auto v =
          parse_cli_int(value("--stack-pool-slab-mb"), 1, "--stack-pool-slab-mb");
      if (!v) return usage(argv[0]);
      runtime::set_stack_pool_slab_bytes(static_cast<std::size_t>(*v) << 20);
    } else if (std::strcmp(arg, "--skip-1m") == 0) {
      skip_1m = true;
    } else if (std::strcmp(arg, "--only-1m") == 0) {
      only_1m = true;
    } else if (std::strcmp(arg, "--skip-embedding") == 0) {
      skip_embedding = true;
    } else if (std::strcmp(arg, "--only-embedding") == 0) {
      only_embedding = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (skip_1m && only_1m) return usage(argv[0]);
  if (skip_embedding && only_embedding) return usage(argv[0]);
  // The two --only modes are each "run exactly this section": combining
  // them would run nothing, so reject the contradiction up front.
  if (only_1m && only_embedding) return usage(argv[0]);
  if (only_embedding) skip_1m = true;
  if (only_1m) skip_embedding = true;
  const bool core_sections = !only_1m && !only_embedding;

  core::set_default_jobs(jobs);
  runtime::set_default_metrics(true);  // the sim-op counter
  std::printf("perf_harness: backend=%s scheduler=%s jobs=%d\n",
              runtime::to_string(runtime::default_backend()),
              runtime::to_string(runtime::default_scheduler()), jobs);

  std::vector<SectionResult> results;

  if (core_sections) results.push_back(run_section("fig01_roofline", [] {
    const auto plat = simnet::Platform::frontier_cpu();
    auto cfg = core::SweepConfig::defaults(core::SweepKind::kOneSidedMpi);
    cfg.iters = 4;
    cfg.jobs = 0;  // resolve from default_jobs
    const auto pts = core::run_sweep(plat, cfg);
    check_ok(pts.is_ok() ? Status::ok() : pts.status(), "fig01 sweep");
  }));

  if (core_sections) {
    workloads::stencil::Config cfg;
    cfg.n = 1024;
    cfg.iters = 2;
    cfg.verify = false;
    results.push_back(run_section("fig05_stencil_4096", [&cfg] {
      const auto plat = simnet::Platform::perlmutter_cpu(32);  // 4096 ranks
      const auto r = workloads::stencil::run_one_sided(plat, 4096, cfg);
      check_ok(r.status, "stencil 4096");
    }));
  }

  if (core_sections) {
    // 100k ranks: shrink fiber stacks (64 KiB is ample — asserted by the
    // stack high-water-mark layer) so address space stays bounded.
    const std::size_t saved = runtime::default_fiber_stack_bytes();
    runtime::set_default_fiber_stack_bytes(64 * 1024);
    workloads::stencil::Config cfg;
    cfg.n = 512;
    cfg.iters = 2;
    cfg.verify = false;
    results.push_back(run_section("fig05_stencil_100k", [&cfg] {
      const auto plat = simnet::Platform::perlmutter_cpu(800);  // >= 100k
      const auto r = workloads::stencil::run_one_sided(plat, 100000, cfg);
      check_ok(r.status, "stencil 100k");
    }));
    runtime::set_default_fiber_stack_bytes(saved);
  }

  if (core_sections) results.push_back(run_section("fig07_grid", [] {
    const auto gpu = simnet::Platform::perlmutter_gpu();
    const int P = 4;
    workloads::stencil::Config stc;
    stc.n = 2048;
    stc.iters = 4;
    stc.verify = false;
    check_ok(workloads::stencil::run_shmem_gpu(gpu, P, stc).status,
             "fig07 stencil");
    workloads::sptrsv::GenConfig g;
    g.n = 8000;
    const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
    workloads::sptrsv::Config spc;
    spc.verify = false;
    check_ok(workloads::sptrsv::run_shmem_gpu(gpu, P, L, spc).status,
             "fig07 sptrsv");
    workloads::hashtable::Config hc;
    hc.total_inserts = 20000;
    hc.verify = false;
    check_ok(workloads::hashtable::run_shmem_gpu(gpu, P, hc).status,
             "fig07 hashtable");
  }));

  if (core_sections) results.push_back(run_section("ext_fault_sweep", [] {
    struct Flavor {
      core::SweepKind kind;
      simnet::Platform (*platform)();
    };
    const std::vector<Flavor> flavors = {
        {core::SweepKind::kTwoSided,
         +[] { return simnet::Platform::perlmutter_cpu(); }},
        {core::SweepKind::kOneSidedMpi,
         +[] { return simnet::Platform::perlmutter_cpu(); }},
        {core::SweepKind::kShmemPutSignal,
         +[] { return simnet::Platform::perlmutter_gpu(); }},
    };
    for (const auto& fl : flavors) {
      for (const double intensity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        simnet::Platform plat = fl.platform();
        plat.set_faults(
            simnet::FaultSpec::at_intensity(intensity, 0x5EEDF007ULL));
        core::SweepConfig cfg;
        cfg.kind = fl.kind;
        cfg.msg_sizes = {64, 4096, 262144, 4194304};
        cfg.msgs_per_sync = {1, 16, 256};
        cfg.iters = 3;
        cfg.jobs = 0;
        const auto pts = core::run_sweep(plat, cfg);
        check_ok(pts.is_ok() ? Status::ok() : pts.status(), "fault sweep");
      }
    }
  }));

  if (!skip_embedding) results.push_back(run_section("embedding", [] {
    // Serving-scale embedding lookup (DESIGN.md §13): the batched-get hot
    // path with combining on. Moderate scale — the section times the
    // engine's get/flush machinery, not the workload's asymptotics.
    workloads::embedding::Config cfg;
    cfg.rows = 1 << 15;
    cfg.dim = 64;
    cfg.queries_per_rank = 32;
    cfg.lookups_per_query = 16;
    cfg.batch = 8;
    cfg.zipf_s = 0.99;
    cfg.verify = false;
    const auto cpu = simnet::Platform::perlmutter_cpu(1);
    check_ok(workloads::embedding::run_mpi(cpu, 64, cfg).status,
             "embedding mpi");
    const auto gpu = simnet::Platform::perlmutter_gpu();
    check_ok(workloads::embedding::run_shmem(gpu, 4, cfg).status,
             "embedding shmem");
  }));

  if (!skip_1m) {
    // The scale smoke: one million ranks through the full one-sided stencil
    // path. Feasible because of (DESIGN.md §12) pooled 16 KiB fiber stacks
    // (measured stencil high-water mark is ~4.7 KiB, so the 4-page floor
    // leaves >3x headroom), gated p2p/collective waits (no O(P^2) condition
    // scans), the SoA rank hot fields, and chunked trace storage. One
    // iteration keeps the section a smoke rather than a soak.
    const std::size_t saved = runtime::default_fiber_stack_bytes();
    runtime::set_default_fiber_stack_bytes(16 * 1024);
    workloads::stencil::Config cfg;
    cfg.n = 1024;
    cfg.iters = 1;
    cfg.verify = false;
    results.push_back(run_section(
        "stencil_1m",
        [&cfg] {
          const auto plat = simnet::Platform::perlmutter_cpu(8000);  // >= 1M
          const auto r = workloads::stencil::run_one_sided(plat, 1000000, cfg);
          check_ok(r.status, "stencil 1m");
        },
        /*ranks=*/1000000));
    runtime::set_default_fiber_stack_bytes(saved);
  }

  write_json(out_path, results, jobs);
  if (!baseline_path.empty()) {
    return compare_baseline(baseline_path, results, tol_pct, rss_tol_pct);
  }
  return 0;
}
