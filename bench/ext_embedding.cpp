// Extension bench: DLRM-style embedding-lookup serving (queries/sec vs p99
// latency) over the one-sided machinery — the serving-scale workload next
// to the paper's throughput benches. Sweeps batch size × shard policy ×
// Zipf skew, plus three ablations the roofline model predicts:
//
//   - software combining on/off (per-message α amortization; the win grows
//     with skew because hot rows repeat within a batch),
//   - hot-row replication (the Zipf head served without fabric traffic),
//   - degraded network (the fault model's intensity knob) to show how the
//     msg-bound serving path inflates p99 first.
//
// All numbers are virtual-time quantities: the CSV is byte-identical across
// {fibers,threads} × {heap,linear} × --jobs values (CI-enforced) and the
// bench runs clean under --check.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "simnet/fault.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/embedding/embedding.hpp"

namespace {

struct ExtraOpts {
  long long rows = -1;     // -1 = size by --full below
  long long dim = -1;
  long long queries = -1;  // per rank
  long long seed = -1;
};

struct Spec {
  std::string series;
  bool shmem = false;
  double intensity = 0.0;  // fault-model intensity (0 = pristine)
  int ranks = 8;
  mrl::workloads::embedding::Config cfg;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrl;
  namespace emb = workloads::embedding;

  ExtraOpts eo;
  bench::ExtraFlags extra;
  extra.usage =
      "  --rows N       embedding-table rows (N >= 64; default 4096, "
      "--full 65536)\n"
      "  --dim N        floats per row (N >= 1; default 32, --full 64)\n"
      "  --queries N    queries per rank (N >= 1; default 16, --full 64)\n"
      "  --seed S       query-stream seed (S >= 0; default 1234)\n";
  extra.handler = [&eo, &extra](int ac, char** av, int& i) {
    auto value = [&](const char* flag, std::size_t len) -> const char* {
      const char* arg = av[i];
      if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= ac) {
        std::fprintf(stderr, "%s: %s requires a value\n", av[0], flag);
        bench::Args::usage(av[0], stderr, &extra);
        std::exit(2);
      }
      return av[++i];
    };
    auto take = [&](const char* flag, std::size_t len, long long min_v,
                    long long* dst) -> bool {
      const char* val = value(flag, len);
      if (val == nullptr) return false;
      const std::optional<long long> n = parse_cli_int(val, min_v, flag);
      if (!n) {
        bench::Args::usage(av[0], stderr, &extra);
        std::exit(2);
      }
      *dst = *n;
      return true;
    };
    return take("--rows", 6, 64, &eo.rows) || take("--dim", 5, 1, &eo.dim) ||
           take("--queries", 9, 1, &eo.queries) ||
           take("--seed", 6, 0, &eo.seed);
  };
  const auto args = bench::Args::parse(argc, argv, &extra);
  bench::banner("ext_embedding — distributed embedding-lookup serving",
                "extension: DLRM-style serving (QPS vs p99) on the paper's "
                "one-sided model");

  emb::Config base;
  base.rows = eo.rows >= 0 ? static_cast<std::uint64_t>(eo.rows)
                           : (args.full ? 65536 : 4096);
  base.dim =
      eo.dim >= 0 ? static_cast<std::uint64_t>(eo.dim) : (args.full ? 64 : 32);
  base.queries_per_rank = eo.queries >= 0
                              ? static_cast<std::uint64_t>(eo.queries)
                              : (args.full ? 64 : 16);
  base.lookups_per_query = 16;
  if (eo.seed >= 0) base.seed = static_cast<std::uint64_t>(eo.seed);
  base.verify = true;

  std::printf("table: %llu rows x %llu dims, %llu queries/rank, %llu "
              "lookups/query, 8 ranks\n\n",
              static_cast<unsigned long long>(base.rows),
              static_cast<unsigned long long>(base.dim),
              static_cast<unsigned long long>(base.queries_per_rank),
              static_cast<unsigned long long>(base.lookups_per_query));

  // The sweep grid. Row ids are in Zipf popularity order, so hot_rows
  // replicates exactly the head the skew concentrates on.
  std::vector<Spec> specs;
  for (const emb::ShardPolicy policy :
       {emb::ShardPolicy::kRow, emb::ShardPolicy::kColumn,
        emb::ShardPolicy::kHybrid}) {
    for (const std::uint64_t batch : {1ull, 4ull, 16ull}) {
      for (const double zipf : {0.0, 0.9, 1.2}) {
        Spec s;
        s.series = "mpi";
        s.cfg = base;
        s.cfg.policy = policy;
        s.cfg.batch = batch;
        s.cfg.zipf_s = zipf;
        specs.push_back(std::move(s));
      }
    }
  }
  for (const double zipf : {0.9, 1.2}) {  // combining ablation
    Spec s;
    s.series = "mpi-nocombine";
    s.cfg = base;
    s.cfg.batch = 16;
    s.cfg.zipf_s = zipf;
    s.cfg.combine = false;
    specs.push_back(std::move(s));
  }
  {  // hot-row replication ablation
    Spec s;
    s.series = "mpi-hotcache";
    s.cfg = base;
    s.cfg.batch = 16;
    s.cfg.zipf_s = 1.2;
    s.cfg.hot_rows = 128;
    specs.push_back(std::move(s));
  }
  {  // degraded network: the serving path under the fault model
    Spec s;
    s.series = "mpi-degraded";
    s.intensity = 0.5;
    s.cfg = base;
    s.cfg.batch = 8;
    s.cfg.zipf_s = 0.9;
    specs.push_back(std::move(s));
  }
  for (const std::uint64_t batch : {1ull, 16ull}) {  // SHMEM flavor
    Spec s;
    s.series = "shmem";
    s.shmem = true;
    s.ranks = 4;  // one PE per GPU; Perlmutter has 4
    s.cfg = base;
    s.cfg.batch = batch;
    s.cfg.zipf_s = 0.9;
    specs.push_back(std::move(s));
  }

  // Independent engine runs: pre-indexed slots keep output bytes identical
  // for any --jobs value.
  std::vector<emb::Result> results(specs.size());
  core::parallel_for_indexed(specs.size(), args.jobs,
                             [&](int /*worker*/, std::size_t i) {
    const Spec& s = specs[i];
    simnet::Platform plat = s.shmem ? simnet::Platform::perlmutter_gpu()
                                    : simnet::Platform::perlmutter_cpu(1);
    if (s.intensity > 0) {
      plat.set_faults(
          simnet::FaultSpec::at_intensity(s.intensity, args.fault_seed));
    }
    results[i] = s.shmem ? emb::run_shmem(plat, s.ranks, s.cfg)
                         : emb::run_mpi(plat, s.ranks, s.cfg);
  });

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"series", "policy", "batch", "zipf", "combine", "hot_rows",
                 "intensity", "ranks", "qps", "p50_us", "p95_us", "p99_us",
                 "gets", "gets_naive", "cache_hits", "bytes"});
  TextTable t({"series", "policy", "batch", "zipf", "qps", "p50", "p99",
               "gets", "naive"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Spec& s = specs[i];
    const emb::Result& r = results[i];
    MRL_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
    MRL_CHECK_MSG(!r.verified || r.verify_ok,
                  "embedding payload verification failed");
    t.add_row({s.series, emb::to_string(s.cfg.policy),
               std::to_string(s.cfg.batch), format_double(s.cfg.zipf_s, 1),
               format_count(static_cast<std::uint64_t>(r.qps)),
               format_time_us(r.p50_us), format_time_us(r.p99_us),
               std::to_string(r.gets), std::to_string(r.gets_naive)});
    csv.push_back({s.series, emb::to_string(s.cfg.policy),
                   std::to_string(s.cfg.batch),
                   format_double(s.cfg.zipf_s, 1),
                   s.cfg.combine ? "1" : "0", std::to_string(s.cfg.hot_rows),
                   format_double(s.intensity, 2), std::to_string(s.ranks),
                   format_double(r.qps, 2), format_double(r.p50_us, 3),
                   format_double(r.p95_us, 3), format_double(r.p99_us, 3),
                   std::to_string(r.gets), std::to_string(r.gets_naive),
                   std::to_string(r.cache_hits), std::to_string(r.bytes)});
  }

  std::printf("%s\n",
              t.render("ext_embedding: QPS vs p99 per-query latency").c_str());

  // Headline: combining leverage at high skew. Grid order is policy-major
  // (3 batches x 3 skews each): row/batch16/zipf1.2 is slot 8, and the
  // matching combine-off ablation is the second spec after the 27-slot grid.
  const emb::Result& comb_on = results[8];
  const emb::Result& comb_off = results[28];
  if (comb_off.gets > 0) {
    std::printf("software combining at zipf 1.2, batch 16 (row policy): "
                "%llu -> %llu gets (%.1fx fewer), p99 %.1fus -> %.1fus\n",
                static_cast<unsigned long long>(comb_off.gets),
                static_cast<unsigned long long>(comb_on.gets),
                static_cast<double>(comb_off.gets) /
                    static_cast<double>(comb_on.gets),
                comb_off.p99_us, comb_on.p99_us);
  }
  bench::dump_csv("ext_embedding", csv);
  return 0;
}
