// Fig 3: sustained two-sided vs one-sided MPI bandwidth on Perlmutter,
// Frontier, and Summit CPUs as a function of message size and msg/sync.
//
// Headlines to reproduce:
//   (a,b) Perlmutter/Frontier: one-sided achieves higher bandwidth and lower
//         latency than two-sided as msg/sync grows; achieved BW ~ IF peak.
//   (c)   Summit Spectrum MPI: one-sided is consistently SLOWER.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/fit.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("fig03_cpu_bandwidth — two-sided vs one-sided MPI on CPUs",
                "Fig 3 (a: Perlmutter CPU, b: Frontier CPU, c: Summit CPU)");

  const simnet::Platform plats[] = {simnet::Platform::perlmutter_cpu(),
                                    simnet::Platform::frontier_cpu(),
                                    simnet::Platform::summit_cpu()};
  const char* sub[] = {"(a)", "(b)", "(c)"};

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"platform", "kind", "bytes", "msgs_per_sync", "gbs",
                 "eff_latency_us"});

  // All six (platform x kind) sweeps run concurrently, each into its
  // pre-assigned slot; rendering below consumes them in the fixed paper
  // order, so the output is identical at any --jobs.
  core::SweepConfig grid[3][2];
  std::vector<core::SweepPoint> results[3][2];
  const int jobs = core::resolve_jobs(args.jobs);
  for (int pi = 0; pi < 3; ++pi) {
    grid[pi][0] = core::SweepConfig::defaults(core::SweepKind::kTwoSided);
    grid[pi][1] = core::SweepConfig::defaults(core::SweepKind::kOneSidedMpi);
    for (auto& cfg : grid[pi]) {
      if (!args.full) cfg.iters = 4;
      cfg.jobs = std::max(1, jobs / 6);  // split the budget across sweeps
    }
  }
  core::parallel_for_indexed(6, jobs, [&](int, std::size_t i) {
    const auto pi = i / 2, ki = i % 2;
    results[pi][ki] = bench::unwrap(core::run_sweep(plats[pi], grid[pi][ki]));
  });

  for (int pi = 0; pi < 3; ++pi) {
    const simnet::Platform& plat = plats[pi];
    const core::SweepConfig& two = grid[pi][0];
    const auto& pts2 = results[pi][0];
    const auto& pts1 = results[pi][1];
    const auto fit1 = core::fit_roofline(pts1);

    core::RooflineFigure fig(
        std::string("Fig 3") + sub[pi] + ": " + plat.name(), fit1.params);
    fig.add_model_curves({1, 100, 10000});
    fig.add_points("two-sided MPI", 'x', pts2);
    fig.add_points("one-sided MPI", 'o', pts1);
    std::printf("%s\n", fig.render().c_str());

    // Who wins, by message size, at low and high concurrency.
    TextTable t({"msg size", "2-sided m=1", "1-sided m=1", "2-sided m=1e4",
                 "1-sided m=1e4", "winner @ m=1e4"});
    for (std::size_t i = 0; i < two.msg_sizes.size(); ++i) {
      auto find = [&](const std::vector<core::SweepPoint>& pts, double b,
                      double m) {
        for (const auto& p : pts) {
          if (p.bytes == b && p.msgs_per_sync == m) return p.measured_gbs;
        }
        return 0.0;
      };
      const double b = static_cast<double>(two.msg_sizes[i]);
      const double t2lo = find(pts2, b, 1), t1lo = find(pts1, b, 1);
      const double t2hi = find(pts2, b, 10000), t1hi = find(pts1, b, 10000);
      t.add_row({format_bytes(two.msg_sizes[i]), format_gbs(t2lo),
                 format_gbs(t1lo), format_gbs(t2hi), format_gbs(t1hi),
                 t1hi > t2hi ? "one-sided" : "two-sided"});
    }
    std::printf("%s\n", t.render(plat.name() + " summary").c_str());

    for (const auto& p : pts2) {
      csv.push_back({plat.name(), "two-sided", format_double(p.bytes, 0),
                     format_double(p.msgs_per_sync, 0),
                     format_double(p.measured_gbs, 4),
                     format_double(p.eff_latency_us, 4)});
    }
    for (const auto& p : pts1) {
      csv.push_back({plat.name(), "one-sided", format_double(p.bytes, 0),
                     format_double(p.msgs_per_sync, 0),
                     format_double(p.measured_gbs, 4),
                     format_double(p.eff_latency_us, 4)});
    }
  }
  bench::dump_csv("fig03_cpu_bandwidth", csv);
  return 0;
}
