// Extension: robustness curves under a degraded network. The paper measures
// pristine fabrics; production interconnects jitter, drop, and stall. This
// bench sweeps the deterministic fault layer's intensity knob against
// message size for three communication flavors and reports how sustained
// bandwidth decays and completion time inflates as the fabric degrades —
// the robustness analogue of the Fig 3/4 bandwidth curves.
//
// Everything is seeded (--fault-seed): rerunning with the same seed, any
// --jobs value, reproduces this output byte for byte.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/sweep.hpp"
#include "simnet/fault.hpp"
#include "simnet/platform.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct Flavor {
  const char* name;
  mrl::core::SweepKind kind;
  mrl::simnet::Platform (*platform)();
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrl;
  const auto args = bench::Args::parse(argc, argv);
  bench::banner("ext_fault_sweep — robustness under degraded networks "
                "(extension)",
                "bandwidth decay + completion-time inflation vs fault "
                "intensity, three flavors");

  const std::vector<Flavor> flavors = {
      {"two_sided_cpu", core::SweepKind::kTwoSided,
       +[] { return simnet::Platform::perlmutter_cpu(); }},
      {"one_sided_cpu", core::SweepKind::kOneSidedMpi,
       +[] { return simnet::Platform::perlmutter_cpu(); }},
      {"shmem_gpu", core::SweepKind::kShmemPutSignal,
       +[] { return simnet::Platform::perlmutter_gpu(); }},
  };
  const std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::vector<std::uint64_t> sizes = {64, 4096, 262144, 4194304};
  if (args.full) sizes = {8, 64, 512, 4096, 32768, 262144, 2097152, 16777216};

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"flavor", "intensity", "bytes", "msgs_per_sync", "gbs",
                 "eff_latency_us", "gbs_retention", "latency_inflation"});

  TextTable summary({"flavor", "intensity", "geomean GB/s", "GB/s retention",
                     "worst latency inflation"});

  for (const auto& fl : flavors) {
    std::vector<core::SweepPoint> baseline;  // intensity 0 for this flavor
    for (const double intensity : intensities) {
      simnet::Platform plat = fl.platform();
      plat.set_faults(simnet::FaultSpec::at_intensity(intensity,
                                                      args.fault_seed));
      core::SweepConfig cfg;
      cfg.kind = fl.kind;
      cfg.msg_sizes = sizes;
      cfg.msgs_per_sync = {1, 16, 256};
      cfg.iters = args.full ? 8 : 3;
      cfg.jobs = args.jobs;
      const auto pts = bench::unwrap(core::run_sweep(plat, cfg));
      if (intensity == 0.0) baseline = pts;

      std::vector<double> gbs, retention;
      double worst_inflation = 1.0;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const double keep = baseline[i].measured_gbs > 0
                                ? pts[i].measured_gbs / baseline[i].measured_gbs
                                : 1.0;
        const double inflate = baseline[i].eff_latency_us > 0
                                   ? pts[i].eff_latency_us /
                                         baseline[i].eff_latency_us
                                   : 1.0;
        if (inflate > worst_inflation) worst_inflation = inflate;
        gbs.push_back(pts[i].measured_gbs);
        retention.push_back(keep);
        csv.push_back({fl.name, format_double(intensity, 2),
                       format_double(pts[i].bytes, 0),
                       format_double(pts[i].msgs_per_sync, 0),
                       format_double(pts[i].measured_gbs, 4),
                       format_double(pts[i].eff_latency_us, 4),
                       format_double(keep, 4),
                       format_double(inflate, 4)});
      }
      summary.add_row({fl.name, format_double(intensity, 2),
                       format_gbs(geomean(gbs)),
                       format_double(100.0 * geomean(retention), 1) + "%",
                       format_double(worst_inflation, 2) + "x"});
    }
  }

  std::printf("%s\n", summary.render("robustness summary").c_str());
  std::printf("reading: retention = geomean over the size x msg/sync grid of "
              "(degraded GB/s / pristine GB/s);\ninflation = worst-case "
              "effective-latency ratio vs the intensity-0 run of the same "
              "flavor.\nSeeded with --fault-seed %llu; output is "
              "byte-identical across runs and --jobs.\n",
              static_cast<unsigned long long>(args.fault_seed));
  bench::dump_csv("ext_fault_sweep", csv);
  return 0;
}
