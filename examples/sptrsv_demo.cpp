// SpTRSV demo: generates a synthetic supernodal triangular factor, shows its
// DAG/message statistics, then solves it with all three communication models
// and checks each against sequential forward substitution (Sec III-B).
//
// Usage: ./examples/sptrsv_demo [n] [ranks]
#include <cstdio>
#include <cstdlib>

#include "simnet/platform.hpp"
#include "util/histogram.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  namespace sp = workloads::sptrsv;

  const auto n = parse_cli_int(argc > 1 ? argv[1] : "6000", 1, "matrix size");
  const auto ranks_v = parse_cli_int(argc > 2 ? argv[2] : "8", 1, "rank count");
  if (!n || !ranks_v) {
    std::fprintf(stderr, "usage: sptrsv_demo [n] [ranks]\n");
    return 2;
  }
  sp::GenConfig g;
  g.n = static_cast<int>(*n);
  const int ranks = static_cast<int>(*ranks_v);

  const auto L = sp::SupernodalMatrix::generate(g);
  std::printf("synthetic supernodal L: n=%d, %d supernodes, %llu nnz\n",
              L.n(), L.num_supernodes(),
              static_cast<unsigned long long>(L.nnz()));

  Log2Histogram sizes;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    sizes.add_n(static_cast<double>(L.sn_size(J)) * 8, L.col(J).size());
  }
  std::printf("\nmessage-size distribution (bytes, one row block = one "
              "message):\n%s\n", sizes.render("B").c_str());

  sp::Config cfg;
  TextTable t({"variant", "platform", "SOLVE time", "rel. error",
               "avg msg", "msg latency"});
  auto row = [&](const char* name, const char* plat, const sp::Result& r) {
    t.add_row({name, plat, format_time_us(r.time_us),
               format_double(r.rel_err, 14),
               format_bytes(static_cast<std::uint64_t>(r.msgs.avg_msg_bytes)),
               format_time_us(r.msgs.avg_latency_us)});
  };

  const auto cpu = simnet::Platform::perlmutter_cpu();
  row("two-sided MPI", "Perlmutter CPU", sp::run_two_sided(cpu, ranks, L, cfg));
  row("one-sided MPI (4 ops + ack)", "Perlmutter CPU",
      sp::run_one_sided(cpu, ranks, L, cfg));
  const auto gpu = simnet::Platform::perlmutter_gpu();
  row("NVSHMEM put_signal + wait_until_any", "Perlmutter GPU",
      sp::run_shmem_gpu(gpu, std::min(ranks, gpu.max_ranks()), L, cfg));

  std::printf("%s\n", t.render().c_str());
  std::printf("Note: one-sided is SLOWER on CPUs — each message costs four\n"
              "MPI operations plus the Listing-1 acknowledgment scan (Fig 8).\n");
  return 0;
}
