// Quickstart: the msgroof workflow in ~60 lines.
//
//   1. pick a platform from the Table I registry,
//   2. run real MPI-style code on the simulated fabric,
//   3. sweep sustained bandwidth over the msg/sync grid,
//   4. fit a Message Roofline and query it.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "mpi/comm.hpp"
#include "runtime/engine.hpp"
#include "simnet/platform.hpp"
#include "util/units.hpp"

int main() {
  using namespace mrl;

  // 1. A simulated machine: Perlmutter's CPU partition (2x Milan, IF).
  const simnet::Platform plat = simnet::Platform::perlmutter_cpu();
  std::printf("platform: %s\n", plat.name().c_str());

  // 2. SPMD code, MPI style. Virtual time comes out of the LogGP fabric.
  runtime::Engine engine(plat, /*nranks=*/4);
  const auto run = mpi::World::run(engine, [](mpi::Comm& comm) {
    double token = 1000.0 + comm.rank();
    if (comm.rank() == 0) {
      comm.send(&token, sizeof(token), 1, /*tag=*/0);
      comm.recv(&token, sizeof(token), comm.size() - 1, 0);
      std::printf("rank 0 got the ring token back at t=%s (virtual)\n",
                  format_time_us(comm.now()).c_str());
    } else {
      comm.recv(&token, sizeof(token), comm.rank() - 1, 0);
      comm.send(&token, sizeof(token), (comm.rank() + 1) % comm.size(), 0);
    }
  });
  std::printf("ring makespan: %s, status: %s\n\n",
              format_time_us(run.makespan_us).c_str(),
              run.status.to_string().c_str());

  // 3. Bandwidth sweep: 4 sizes x 3 concurrency levels, two-sided MPI.
  core::SweepConfig cfg;
  cfg.kind = core::SweepKind::kTwoSided;
  cfg.msg_sizes = {64, 4096, 262144, 4194304};
  cfg.msgs_per_sync = {1, 32, 1024};
  const auto sweep = core::run_sweep(plat, cfg);
  if (!sweep.is_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().to_string().c_str());
    return 1;
  }
  const auto& points = sweep.value();
  for (const auto& p : points) {
    std::printf("  %10s x %5.0f msg/sync -> %s\n",
                format_bytes(static_cast<std::uint64_t>(p.bytes)).c_str(),
                p.msgs_per_sync, format_gbs(p.measured_gbs).c_str());
  }

  // 4. Fit the Message Roofline and query it.
  const core::FitResult fit = core::fit_roofline(points);
  core::RooflineModel model(fit.params);
  std::printf("\nfitted %s\n", fit.params.to_string().c_str());
  std::printf("bound for 4 KiB @ 100 msg/sync: %s (headroom over 1 msg/sync: "
              "%.1fx)\n",
              format_gbs(model.rounded_gbs(4096, 100)).c_str(),
              model.overlap_headroom(4096));
  return 0;
}
