// Roofline explorer: interactive-ish CLI over the Message Roofline model —
// pick a platform and a runtime, get the calibrated roofline, the knees,
// and a bound lookup for your application's (message size, msg/sync) point.
//
// Usage: ./examples/roofline_explorer [platform] [runtime] [bytes] [msgsync]
//   platform: perlmutter-cpu | frontier-cpu | summit-cpu |
//             perlmutter-gpu | summit-gpu
//   runtime:  two-sided | one-sided | shmem
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/fit.hpp"
#include "core/model.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "simnet/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

mrl::simnet::Platform pick_platform(const std::string& name) {
  using mrl::simnet::Platform;
  if (name == "perlmutter-cpu") return Platform::perlmutter_cpu();
  if (name == "frontier-cpu") return Platform::frontier_cpu();
  if (name == "summit-cpu") return Platform::summit_cpu();
  if (name == "perlmutter-gpu") return Platform::perlmutter_gpu();
  if (name == "summit-gpu") return Platform::summit_gpu();
  std::fprintf(stderr, "unknown platform '%s'\n", name.c_str());
  std::exit(1);
}

mrl::core::SweepKind pick_runtime(const std::string& name) {
  using mrl::core::SweepKind;
  if (name == "two-sided") return SweepKind::kTwoSided;
  if (name == "one-sided") return SweepKind::kOneSidedMpi;
  if (name == "shmem") return SweepKind::kShmemPutSignal;
  std::fprintf(stderr, "unknown runtime '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrl;
  const std::string plat_name = argc > 1 ? argv[1] : "perlmutter-cpu";
  const std::string rt_name =
      argc > 2 ? argv[2] : (plat_name.find("gpu") != std::string::npos
                                ? "shmem"
                                : "two-sided");
  const double bytes = argc > 3 ? std::atof(argv[3]) : 4096.0;
  const double msync = argc > 4 ? std::atof(argv[4]) : 4.0;

  const simnet::Platform plat = pick_platform(plat_name);
  const core::SweepKind kind = pick_runtime(rt_name);

  std::printf("calibrating %s / %s (running sweeps on the simulated fabric)"
              "...\n\n", plat.name().c_str(), core::to_string(kind).c_str());
  const auto calib = core::calibrate_roofline(plat, kind);
  if (!calib.is_ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calib.status().to_string().c_str());
    return 1;
  }
  const core::RooflineParams params = calib.value();
  core::RooflineModel model(params);

  core::RooflineFigure fig(plat.name() + " — " + core::to_string(kind),
                           params);
  fig.add_model_curves({1, 10, 100, 1000, 1e5});
  fig.add_sharp_curve();
  fig.add_dot({"your app", bytes, msync, model.rounded_gbs(bytes, msync)});
  std::printf("%s\n", fig.render().c_str());

  TextTable t({"quantity", "value"});
  t.add_row({"fitted o (per-op overhead)", format_time_us(params.o_us)});
  t.add_row({"fitted L (latency)", format_time_us(params.L_us)});
  t.add_row({"fitted peak bandwidth", format_gbs(params.peak_gbs)});
  t.add_row({"roofline knee @ 1 msg/sync",
             format_bytes(static_cast<std::uint64_t>(model.knee_bytes(1)))});
  t.add_row({"bound for your point",
             format_gbs(model.rounded_gbs(bytes, msync))});
  t.add_row({"effective latency for your point",
             format_time_us(model.effective_latency_us(bytes, msync))});
  t.add_row({"overlap headroom at your size",
             format_double(model.overlap_headroom(bytes), 2) + "x"});
  std::printf("%s\n", t.render("model card").c_str());
  return 0;
}
