// Stencil demo: runs the BSP halo-exchange workload with all three
// communication models and verifies every variant against the serial
// reference — the paper's Sec III-A experiment in miniature.
//
// Usage: ./examples/stencil_demo [grid_n] [ranks] [iters]
#include <cstdio>
#include <cstdlib>

#include "simnet/platform.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/stencil/stencil.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  namespace st = workloads::stencil;

  const auto n = parse_cli_int(argc > 1 ? argv[1] : "512", 2, "grid size");
  const auto ranks_v = parse_cli_int(argc > 2 ? argv[2] : "16", 1, "rank count");
  const auto iters =
      parse_cli_int(argc > 3 ? argv[3] : "5", 1, "iteration count");
  if (!n || !ranks_v || !iters) {
    std::fprintf(stderr, "usage: stencil_demo [grid_n] [ranks] [iters]\n");
    return 2;
  }
  st::Config cfg;
  cfg.n = static_cast<int>(*n);
  int ranks = static_cast<int>(*ranks_v);
  cfg.iters = static_cast<int>(*iters);

  std::printf("2D Jacobi stencil, grid %dx%d, %d ranks, %d iterations\n\n",
              cfg.n, cfg.n, ranks, cfg.iters);

  TextTable t({"variant", "platform", "time", "verified", "comm BW",
               "msg/sync"});
  auto row = [&](const char* name, const char* plat, const st::Result& r) {
    t.add_row({name, plat, format_time_us(r.time_us),
               r.max_abs_err == 0 ? "bitwise ==" : "FAILED",
               format_gbs(r.msgs.sustained_gbs),
               format_double(r.msgs.avg_msgs_per_sync, 1)});
  };

  const auto cpu = simnet::Platform::perlmutter_cpu();
  row("two-sided MPI", "Perlmutter CPU", st::run_two_sided(cpu, ranks, cfg));
  row("one-sided MPI (Put+fence)", "Perlmutter CPU",
      st::run_one_sided(cpu, ranks, cfg));
  const auto gpu = simnet::Platform::perlmutter_gpu();
  row("NVSHMEM put-with-signal", "Perlmutter GPU",
      st::run_shmem_gpu(gpu, std::min(ranks, gpu.max_ranks()), cfg));

  std::printf("%s\n", t.render().c_str());
  std::printf("Note: on CPUs one-sided ~= two-sided (stencils are bandwidth-"
              "bound); the GPU row wins on parallelism + bandwidth (Fig 5).\n");
  return 0;
}
