// Distributed hashtable demo: CAS-based one-sided inserts vs the two-sided
// triplet broadcast protocol, with full content verification (Sec III-C).
//
// Usage: ./examples/hashtable_demo [total_inserts] [ranks]
#include <cstdio>
#include <cstdlib>

#include "simnet/platform.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"

int main(int argc, char** argv) {
  using namespace mrl;
  namespace hb = workloads::hashtable;

  const auto inserts =
      parse_cli_int(argc > 1 ? argv[1] : "20000", 1, "insert count");
  const auto ranks_v = parse_cli_int(argc > 2 ? argv[2] : "16", 1, "rank count");
  if (!inserts || !ranks_v) {
    std::fprintf(stderr, "usage: hashtable_demo [total_inserts] [ranks]\n");
    return 2;
  }
  hb::Config cfg;
  cfg.total_inserts = static_cast<std::uint64_t>(*inserts);
  const int ranks = static_cast<int>(*ranks_v);

  std::printf("distributed hashtable: %llu inserts over %d ranks "
              "(%llu slots + %llu overflow nodes per rank)\n\n",
              static_cast<unsigned long long>(cfg.total_inserts), ranks,
              static_cast<unsigned long long>(cfg.slots_per_rank),
              static_cast<unsigned long long>(cfg.overflow_per_rank));

  TextTable t({"variant", "platform", "time", "updates/s", "collisions",
               "verified"});
  auto row = [&](const char* name, const char* plat, const hb::Result& r) {
    t.add_row({name, plat, format_time_us(r.time_us),
               format_count(static_cast<std::uint64_t>(r.updates_per_sec)),
               std::to_string(r.collisions),
               r.verify_ok ? "all keys stored" : "FAILED"});
  };

  const auto cpu = simnet::Platform::perlmutter_cpu();
  row("one-sided (remote CAS)", "Perlmutter CPU",
      hb::run_one_sided(cpu, ranks, cfg));
  row("two-sided (triplet bcast)", "Perlmutter CPU",
      hb::run_two_sided(cpu, ranks, cfg));
  const auto gpu = simnet::Platform::summit_gpu();
  row("NVSHMEM atomics", "Summit GPU (dumbbell)",
      hb::run_shmem_gpu(gpu, std::min(ranks, gpu.max_ranks()), cfg));

  std::printf("%s\n", t.render().c_str());
  std::printf("Note: one-sided wins at scale (one 2 us CAS beats P-1\n"
              "messages) but loses at 2 ranks — the Fig 9 crossover.\n");
  return 0;
}
