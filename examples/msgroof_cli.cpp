// msgroof_cli — command-line driver over the whole library: list platforms,
// run sweeps, solve workloads, and export Chrome traces, without writing C++.
//
//   msgroof_cli platforms
//   msgroof_cli sweep   <platform> <runtime> [--csv out.csv]
//   msgroof_cli stencil <platform> <ranks> [n] [iters]
//   msgroof_cli sptrsv  <platform> <ranks> [n]
//   msgroof_cli hashtable <platform> <ranks> [inserts]
//   msgroof_cli trace   <platform> <ranks> <out.json>   (stencil run trace)
//
// Platforms: perlmutter-cpu frontier-cpu summit-cpu
//            perlmutter-gpu summit-gpu frontier-gpu
// Runtimes:  two-sided one-sided shmem cas
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "core/fit.hpp"
#include "mpi/comm.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "runtime/engine.hpp"
#include "runtime/fiber.hpp"
#include "runtime/metrics.hpp"
#include "runtime/profiler.hpp"
#include "simnet/platform.hpp"
#include "simnet/trace_export.hpp"
#include "util/csv.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"
#include "workloads/sptrsv/sptrsv.hpp"
#include "workloads/stencil/stencil.hpp"

namespace {

using namespace mrl;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: msgroof_cli [global flags] <command> [...]\n"
      "  platforms\n"
      "  sweep <platform> <runtime> [--csv out.csv] [--jobs N]\n"
      "  stencil <platform> <ranks> [n] [iters]\n"
      "  sptrsv <platform> <ranks> [n]\n"
      "  hashtable <platform> <ranks> [inserts]\n"
      "  trace <platform> <ranks> <out.json>\n"
      "platforms: perlmutter-cpu frontier-cpu summit-cpu perlmutter-gpu "
      "summit-gpu frontier-gpu\n"
      "runtimes: two-sided one-sided shmem cas\n"
      "global flags:\n"
      "  --faults I      inject deterministic fabric faults at intensity I\n"
      "                  (0 = pristine, 1 = heavily degraded)\n"
      "  --fault-seed S  seed for the fault-injection substreams (default\n"
      "                  0x5EEDF007); same seed => byte-identical output\n"
      "  --backend B     rank execution backend: fibers (default; one OS\n"
      "                  thread, user-level context switches) or threads\n"
      "                  (one OS thread per rank); output is bit-identical\n"
      "  --watchdog-us N virtual-time progress limit per run in us (default\n"
      "                  1e9; 0 disables) — livelocked runs exit with a\n"
      "                  TIMEOUT status instead of spinning forever\n"
      "  --metrics PATH  enable the deterministic metrics layer and write a\n"
      "                  metrics CSV to PATH on success (byte-identical\n"
      "                  across backends and --jobs values; see DESIGN §9).\n"
      "                  stencil writes the full per-rank/link report with\n"
      "                  fiber stack high-water marks; other commands write\n"
      "                  the process-wide aggregate\n"
      "  --nodes N       scale CPU platforms to N nodes (default 1; enables\n"
      "                  e.g. a 10240-rank perlmutter-cpu at N=80)\n"
      "  --stack-bytes N fiber stack size in bytes (default 256 KiB; lower\n"
      "                  it for very high rank counts)\n"
      "  --stack-pool on|off  allocate fiber stacks as slots of pooled slabs\n"
      "                  (default on: one VMA hosts many stacks and engines\n"
      "                  recycle slots; off = one guarded mmap per fiber).\n"
      "                  Simulation output is identical either way\n"
      "  --stack-pool-slab-mb N  target MiB per pooled stack slab (default\n"
      "                  64); geometry of future slabs only\n"
      "  --check         enable the RMA race & synchronization checker (off\n"
      "                  by default; violations fail the run with rank/time/\n"
      "                  op/byte-range diagnostics; MSGROOF_CHECK=1 works\n"
      "                  too; clean runs produce unchanged output bytes)\n"
      "  --check-history N  per-region shadow-history cap for the checker\n"
      "                  (N >= 1; default 65536)\n"
      "  --check-report PATH  implies --check; write a machine-readable JSON\n"
      "                  dump of all checker verdicts to PATH on exit\n"
      "                  (sorted => byte-identical across backends and jobs)\n"
      "  --trace PATH    enable per-rank execution spans and write the\n"
      "                  captured run's timeline to PATH on exit (the\n"
      "                  deterministically slowest run wins)\n"
      "  --trace-format F  trace output format: 'chrome' (default;\n"
      "                  Perfetto/chrome://tracing JSON with rank timelines\n"
      "                  and counter tracks) or 'csv' (message records)\n"
      "  --trace-ranks A-B  only emit rank timelines for ranks A..B\n"
      "                  inclusive (0 <= A <= B; counter tracks stay global)\n"
      "  --profile PATH  run the deterministic critical-path analyzer on the\n"
      "                  captured run and write its report to PATH on exit\n"
      "                  (category totals exactly partition the makespan)\n");
  std::exit(2);
}

// Global fault-injection knobs (set by --faults / --fault-seed; applied to
// every platform the chosen command builds).
double g_fault_intensity = 0;
std::uint64_t g_fault_seed = 0x5EEDF007ULL;
// Global metrics/scaling knobs.
std::string g_metrics_path;
int g_nodes = 1;
bool g_metrics_written = false;  // set when a command wrote a full report
// Global profiler/checker-report knobs (DESIGN.md §14).
std::string g_trace_path;
std::string g_trace_format = "chrome";
std::string g_profile_path;
std::string g_check_report_path;

simnet::Platform pick_platform(const std::string& name) {
  using simnet::Platform;
  auto with_faults = [](Platform plat) {
    if (g_fault_intensity > 0) {
      plat.set_faults(
          simnet::FaultSpec::at_intensity(g_fault_intensity, g_fault_seed));
    }
    return plat;
  };
  if (name == "perlmutter-cpu") {
    return with_faults(Platform::perlmutter_cpu(g_nodes));
  }
  if (name == "frontier-cpu") return with_faults(Platform::frontier_cpu(g_nodes));
  if (name == "summit-cpu") return with_faults(Platform::summit_cpu(g_nodes));
  if (g_nodes != 1) {
    std::fprintf(stderr, "--nodes only applies to CPU platforms\n");
    usage();
  }
  if (name == "perlmutter-gpu") return with_faults(Platform::perlmutter_gpu());
  if (name == "summit-gpu") return with_faults(Platform::summit_gpu());
  if (name == "frontier-gpu") return with_faults(Platform::frontier_gpu());
  std::fprintf(stderr, "unknown platform '%s'\n", name.c_str());
  usage();
}

core::SweepKind pick_kind(const std::string& name) {
  using core::SweepKind;
  if (name == "two-sided") return SweepKind::kTwoSided;
  if (name == "one-sided") return SweepKind::kOneSidedMpi;
  if (name == "shmem") return SweepKind::kShmemPutSignal;
  if (name == "cas") return SweepKind::kAtomicCas;
  std::fprintf(stderr, "unknown runtime '%s'\n", name.c_str());
  usage();
}

int cmd_platforms() {
  TextTable t({"name", "max ranks", "kind", "pair peak (0..n-1)",
               "hw RTT (0..n-1)"});
  for (const simnet::Platform& p : simnet::Platform::all()) {
    const int n = p.max_ranks();
    t.add_row({p.name(), std::to_string(n), p.is_gpu() ? "GPU" : "CPU",
               format_gbs(p.pair_peak_gbs(0, n - 1, n)),
               format_time_us(p.hw_rtt_us(0, n - 1, n))});
  }
  std::printf("%s", t.render("registered platforms").c_str());
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 4) usage();
  const simnet::Platform plat = pick_platform(argv[2]);
  const core::SweepKind kind = pick_kind(argv[3]);
  std::string csv_path;
  int jobs = 0;  // 0 = hardware concurrency; results identical at any value
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv_path = argv[i + 1];
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const auto v = parse_cli_int(argv[i + 1], 1, "--jobs value");
      if (!v) usage();
      jobs = static_cast<int>(*v);
    }
  }
  core::SweepConfig cfg = core::SweepConfig::defaults(kind);
  cfg.iters = 4;
  cfg.jobs = jobs;
  const auto sweep = core::run_sweep(plat, cfg);
  if (!sweep.is_ok()) {
    std::fprintf(stderr, "FAILED: %s\n", sweep.status().to_string().c_str());
    return 1;
  }
  const auto& pts = sweep.value();
  const auto fit = core::fit_roofline(pts);

  core::RooflineFigure fig(plat.name() + " / " + core::to_string(kind),
                           fit.params);
  fig.add_model_curves({1, 100, 10000});
  fig.add_points("measured", '*', pts);
  std::printf("%s", fig.render().c_str());
  if (!csv_path.empty()) {
    const Status st = write_csv_file(csv_path, fig.csv_rows());
    if (!st.is_ok()) {
      std::fprintf(stderr, "FAILED: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("[csv] %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_stencil(int argc, char** argv) {
  if (argc < 4) usage();
  const simnet::Platform plat = pick_platform(argv[2]);
  const auto ranks = parse_cli_int(argv[3], 1, "rank count");
  const auto n = parse_cli_int(argc > 4 ? argv[4] : "512", 2, "grid size");
  const auto iters = parse_cli_int(argc > 5 ? argv[5] : "5", 1, "iteration count");
  if (!ranks || !n || !iters) usage();
  workloads::stencil::Config cfg;
  cfg.n = static_cast<int>(*n);
  cfg.iters = static_cast<int>(*iters);
  const int nranks = static_cast<int>(*ranks);
  const auto r =
      plat.is_gpu() ? workloads::stencil::run_shmem_gpu(plat, nranks, cfg)
                    : workloads::stencil::run_two_sided(plat, nranks, cfg);
  if (!r.status.is_ok()) {
    std::fprintf(stderr, "FAILED: %s\n", r.status.to_string().c_str());
    return 1;
  }
  std::printf("stencil %dx%d, %d ranks on %s: %s (verified: %s, comm %s)\n",
              cfg.n, cfg.n, nranks, plat.name().c_str(),
              format_time_us(r.time_us).c_str(),
              r.max_abs_err == 0 ? "bitwise" : "FAILED",
              format_gbs(r.msgs.sustained_gbs).c_str());
  if (!g_metrics_path.empty()) {
    // Full per-rank/per-link report, with the stack-HWM section appended
    // (the comparable sections stay backend-independent; see DESIGN §9).
    auto rows = r.metrics.csv_rows();
    const auto stack = r.metrics.stack_csv_rows();
    rows.insert(rows.end(), stack.begin(), stack.end());
    const Status st = runtime::write_metrics_csv(g_metrics_path, rows);
    if (!st.is_ok()) {
      std::fprintf(stderr, "FAILED: %s\n", st.to_string().c_str());
      return 1;
    }
    g_metrics_written = true;
    std::printf("[metrics] %s\n", g_metrics_path.c_str());
    if (!r.metrics.stack_hwm_bytes.empty()) {
      std::size_t peak = 0;
      for (std::size_t h : r.metrics.stack_hwm_bytes) {
        peak = std::max(peak, h);
      }
      std::printf("[metrics] fiber stack high-water: max %zu of %zu usable "
                  "bytes across %zu fibers\n",
                  peak, r.metrics.stack_usable_bytes,
                  r.metrics.stack_hwm_bytes.size());
    }
  }
  return r.max_abs_err == 0 ? 0 : 1;
}

int cmd_sptrsv(int argc, char** argv) {
  if (argc < 4) usage();
  const simnet::Platform plat = pick_platform(argv[2]);
  const auto ranks_v = parse_cli_int(argv[3], 1, "rank count");
  const auto n_v = parse_cli_int(argc > 4 ? argv[4] : "6000", 1, "matrix size");
  if (!ranks_v || !n_v) usage();
  const int ranks = static_cast<int>(*ranks_v);
  workloads::sptrsv::GenConfig g;
  g.n = static_cast<int>(*n_v);
  const auto L = workloads::sptrsv::SupernodalMatrix::generate(g);
  workloads::sptrsv::Config cfg;
  const auto r =
      plat.is_gpu() ? workloads::sptrsv::run_shmem_gpu(plat, ranks, L, cfg)
                    : workloads::sptrsv::run_two_sided(plat, ranks, L, cfg);
  if (!r.status.is_ok()) {
    std::fprintf(stderr, "FAILED: %s\n", r.status.to_string().c_str());
    return 1;
  }
  std::printf("sptrsv n=%d (%d supernodes, %llu nnz), %d ranks on %s: %s "
              "(rel err %.2e)\n",
              L.n(), L.num_supernodes(),
              static_cast<unsigned long long>(L.nnz()), ranks,
              plat.name().c_str(), format_time_us(r.time_us).c_str(),
              r.rel_err);
  return r.rel_err < 1e-9 ? 0 : 1;
}

int cmd_hashtable(int argc, char** argv) {
  if (argc < 4) usage();
  const simnet::Platform plat = pick_platform(argv[2]);
  const auto ranks_v = parse_cli_int(argv[3], 1, "rank count");
  const auto inserts_v =
      parse_cli_int(argc > 4 ? argv[4] : "20000", 1, "insert count");
  if (!ranks_v || !inserts_v) usage();
  const int ranks = static_cast<int>(*ranks_v);
  workloads::hashtable::Config cfg;
  cfg.total_inserts = static_cast<std::uint64_t>(*inserts_v);
  const auto r =
      plat.is_gpu() ? workloads::hashtable::run_shmem_gpu(plat, ranks, cfg)
                    : workloads::hashtable::run_one_sided(plat, ranks, cfg);
  if (!r.status.is_ok()) {
    std::fprintf(stderr, "FAILED: %s\n", r.status.to_string().c_str());
    return 1;
  }
  std::printf("hashtable %llu inserts, %d ranks on %s: %s (%s updates/s, "
              "%llu collisions, verified: %s)\n",
              static_cast<unsigned long long>(r.inserted), ranks,
              plat.name().c_str(), format_time_us(r.time_us).c_str(),
              format_count(static_cast<std::uint64_t>(r.updates_per_sec))
                  .c_str(),
              static_cast<unsigned long long>(r.collisions),
              r.verify_ok ? "yes" : "NO");
  return r.verify_ok ? 0 : 1;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 5) usage();
  const simnet::Platform plat = pick_platform(argv[2]);
  const auto ranks_v = parse_cli_int(argv[3], 1, "rank count");
  if (!ranks_v) usage();
  const int ranks = static_cast<int>(*ranks_v);
  const std::string out = argv[4];
  workloads::stencil::Config cfg;
  cfg.n = 256;
  cfg.iters = 3;
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(plat, ranks, opt);
  const auto res = mpi::World::run(eng, [&](mpi::Comm& c) {
    const auto d =
        workloads::stencil::make_decomp(cfg.n, c.size(), c.rank(), 0, 0);
    workloads::stencil::LocalBlock blk(cfg, d);
    // One quick round of real halo traffic for the trace.
    const int peers[4] = {d.west, d.east, d.north, d.south};
    for (int it = 0; it < cfg.iters; ++it) {
      blk.pack_edges();
      std::vector<mpi::Request> reqs;
      for (int s2 = 0; s2 < 4; ++s2) {
        if (peers[s2] < 0) continue;
        reqs.push_back(c.isend(blk.out(s2),
                               blk.edge_count(s2) * sizeof(double), peers[s2],
                               s2 ^ 1));
        reqs.push_back(c.irecv(blk.in(s2),
                               blk.edge_count(s2) * sizeof(double), peers[s2],
                               s2));
      }
      c.waitall(reqs);
      blk.sweep();
    }
  });
  if (!res.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", res.status.to_string().c_str());
    return 1;
  }
  if (!simnet::export_trace_chrome(eng.trace(), out)) return 1;
  std::printf("wrote %zu message slices to %s (open in chrome://tracing)\n",
              eng.trace().records().size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global flags (valid before or after the command) so each
  // command parser sees only its own arguments.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check::set_default_check(true);
      continue;
    }
    if (std::strcmp(arg, "--check-history") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg);
        usage();
      }
      const auto v = parse_cli_int(argv[++i], 1, "--check-history value");
      if (!v) usage();
      check::set_default_check_history(static_cast<std::uint64_t>(*v));
      continue;
    }
    if (std::strcmp(arg, "--faults") == 0 ||
        std::strcmp(arg, "--fault-seed") == 0 ||
        std::strcmp(arg, "--backend") == 0 ||
        std::strcmp(arg, "--watchdog-us") == 0 ||
        std::strcmp(arg, "--metrics") == 0 ||
        std::strcmp(arg, "--nodes") == 0 ||
        std::strcmp(arg, "--stack-bytes") == 0 ||
        std::strcmp(arg, "--stack-pool") == 0 ||
        std::strcmp(arg, "--stack-pool-slab-mb") == 0 ||
        std::strcmp(arg, "--check-report") == 0 ||
        std::strcmp(arg, "--trace") == 0 ||
        std::strcmp(arg, "--trace-format") == 0 ||
        std::strcmp(arg, "--trace-ranks") == 0 ||
        std::strcmp(arg, "--profile") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg);
        usage();
      }
      const char* val = argv[++i];
      char* end = nullptr;
      if (std::strcmp(arg, "--faults") == 0) {
        g_fault_intensity = std::strtod(val, &end);
        if (end == val || *end != '\0' || g_fault_intensity < 0) {
          std::fprintf(stderr, "invalid --faults value '%s'\n", val);
          usage();
        }
      } else if (std::strcmp(arg, "--fault-seed") == 0) {
        g_fault_seed =
            static_cast<std::uint64_t>(std::strtoull(val, &end, 0));
        if (end == val || *end != '\0') {
          std::fprintf(stderr, "invalid --fault-seed value '%s'\n", val);
          usage();
        }
      } else if (std::strcmp(arg, "--backend") == 0) {
        if (std::strcmp(val, "fibers") == 0) {
          if (!runtime::fibers_supported()) {
            std::fprintf(stderr,
                         "--backend fibers is unavailable in this build "
                         "(ThreadSanitizer); use --backend threads\n");
            return 2;
          }
          runtime::set_default_backend(runtime::EngineBackend::kFibers);
        } else if (std::strcmp(val, "threads") == 0) {
          runtime::set_default_backend(runtime::EngineBackend::kThreads);
        } else {
          std::fprintf(stderr,
                       "invalid --backend value '%s' (expected 'fibers' or "
                       "'threads')\n",
                       val);
          usage();
        }
      } else if (std::strcmp(arg, "--watchdog-us") == 0) {
        const double us = std::strtod(val, &end);
        if (end == val || *end != '\0' || us < 0) {
          std::fprintf(stderr, "invalid --watchdog-us value '%s'\n", val);
          usage();
        }
        runtime::set_default_watchdog_virtual_us(us);
      } else if (std::strcmp(arg, "--metrics") == 0) {
        if (val[0] == '\0') {
          std::fprintf(stderr, "--metrics requires an output path\n");
          usage();
        }
        g_metrics_path = val;
        runtime::set_default_metrics(true);
      } else if (std::strcmp(arg, "--nodes") == 0) {
        const auto v = parse_cli_int(val, 1, "--nodes value");
        if (!v) usage();
        g_nodes = static_cast<int>(*v);
      } else if (std::strcmp(arg, "--stack-bytes") == 0) {
        const auto v = parse_cli_int(val, 16 * 1024, "--stack-bytes value");
        if (!v) usage();
        runtime::set_default_fiber_stack_bytes(
            static_cast<std::size_t>(*v));
      } else if (std::strcmp(arg, "--stack-pool") == 0) {
        if (std::strcmp(val, "on") == 0) {
          runtime::set_default_stack_pool(true);
        } else if (std::strcmp(val, "off") == 0) {
          runtime::set_default_stack_pool(false);
        } else {
          std::fprintf(stderr,
                       "invalid --stack-pool value '%s' (expected 'on' or "
                       "'off')\n",
                       val);
          usage();
        }
      } else if (std::strcmp(arg, "--stack-pool-slab-mb") == 0) {
        const auto v =
            parse_cli_int(val, 1, "--stack-pool-slab-mb value");
        if (!v) usage();
        runtime::set_stack_pool_slab_bytes(static_cast<std::size_t>(*v)
                                           << 20);
      } else if (std::strcmp(arg, "--check-report") == 0) {
        if (val[0] == '\0') {
          std::fprintf(stderr, "--check-report requires an output path\n");
          usage();
        }
        g_check_report_path = val;
        check::set_default_check(true);
        check::set_default_check_report(true);
      } else if (std::strcmp(arg, "--trace") == 0) {
        if (val[0] == '\0') {
          std::fprintf(stderr, "--trace requires an output path\n");
          usage();
        }
        g_trace_path = val;
        runtime::set_default_trace(true);
        runtime::set_default_spans(true);
      } else if (std::strcmp(arg, "--trace-format") == 0) {
        if (std::strcmp(val, "chrome") != 0 && std::strcmp(val, "csv") != 0) {
          std::fprintf(stderr,
                       "invalid --trace-format value '%s' (expected 'chrome' "
                       "or 'csv')\n",
                       val);
          usage();
        }
        g_trace_format = val;
      } else if (std::strcmp(arg, "--trace-ranks") == 0) {
        const long lo = std::strtol(val, &end, 10);
        long hi = -1;
        bool ok = end != val && *end == '-' && lo >= 0;
        if (ok) {
          const char* rest = end + 1;
          hi = std::strtol(rest, &end, 10);
          ok = end != rest && *end == '\0' && hi >= lo;
        }
        if (!ok) {
          std::fprintf(stderr,
                       "invalid --trace-ranks value '%s' (expected A-B with "
                       "0 <= A <= B)\n",
                       val);
          usage();
        }
        runtime::set_default_trace_ranks(
            {static_cast<int>(lo), static_cast<int>(hi)});
      } else {  // --profile
        if (val[0] == '\0') {
          std::fprintf(stderr, "--profile requires an output path\n");
          usage();
        }
        g_profile_path = val;
        runtime::set_default_trace(true);
        runtime::set_default_spans(true);
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  int rc = 2;
  if (cmd == "platforms") {
    rc = cmd_platforms();
  } else if (cmd == "sweep") {
    rc = cmd_sweep(argc, argv);
  } else if (cmd == "stencil") {
    rc = cmd_stencil(argc, argv);
  } else if (cmd == "sptrsv") {
    rc = cmd_sptrsv(argc, argv);
  } else if (cmd == "hashtable") {
    rc = cmd_hashtable(argc, argv);
  } else if (cmd == "trace") {
    rc = cmd_trace(argc, argv);
  } else {
    usage();
  }
  // Commands without their own report writer dump the process-wide aggregate
  // (order-independent, so byte-identical across backends and job counts).
  if (rc == 0 && !g_metrics_path.empty() && !g_metrics_written) {
    const Status st =
        runtime::MetricsRegistry::instance().write_csv(g_metrics_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "FAILED: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("[metrics] %s\n", g_metrics_path.c_str());
  }
  // Profiler dumps write whatever run was deterministically captured; the
  // checker report dumps even when the run failed with a verdict (that is
  // its whole point).
  if (!g_trace_path.empty()) {
    if (runtime::dump_captured_trace(g_trace_path, g_trace_format)) {
      std::printf("[trace] %s\n", g_trace_path.c_str());
    } else if (rc == 0) {
      rc = 1;
    }
  }
  if (!g_profile_path.empty()) {
    if (runtime::dump_captured_profile(g_profile_path)) {
      std::printf("[profile] %s\n", g_profile_path.c_str());
    } else if (rc == 0) {
      rc = 1;
    }
  }
  if (!g_check_report_path.empty()) {
    const Status st = check::CheckReportRegistry::instance().write_json(
        g_check_report_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "FAILED: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("[check-report] %s\n", g_check_report_path.c_str());
  }
  return rc;
}
