// minimpi RMA windows.
//
// Semantics follow MPI-3 one-sided with the paper's usage pattern:
//   - put() is nonblocking; remote completion is observed via flush().
//   - Network delivery is FIFO per (origin, target) pair, so a signal put
//     issued after a data put lands after the data (the paper still flushes
//     in between, and we charge those ops).
//   - Window memory is NOT coherent with in-flight puts: arrived puts become
//     visible to the target only at fence()/sync()/wait_any_unapplied(),
//     mirroring MPI_Win_sync requirements in passive-target epochs.
//   - Atomics (compare_and_swap / fetch_add) linearize in issue order and
//     block the origin for o + atomic_L + hardware RTT (the paper's measured
//     CAS costs: 0.8 us Perlmutter GPU, 1.0/1.6 us Summit GPU intra/cross
//     socket, ~2 us CPU MPI).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "check/checker.hpp"
#include "mpi/types.hpp"
#include "simnet/trace.hpp"

namespace mrl::mpi {

class Comm;
class World;

/// Shared window state (one object per collective create_win call).
class Win {
 public:
  Win(World* world, int nranks);

  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;

  // --- one-sided operations (called with the caller's Comm) ---

  /// Nonblocking put of `bytes` from `origin` into target's window at byte
  /// offset `target_off`. `kind` tags the trace record (kPut for data,
  /// kSignal for signal words).
  void put(Comm& c, const void* origin, std::uint64_t bytes, int target,
           std::uint64_t target_off,
           simnet::OpKind kind = simnet::OpKind::kPut);

  /// Blocking get (request/response round trip).
  void get(Comm& c, void* dest, std::uint64_t bytes, int target,
           std::uint64_t target_off);

  /// Remote completion of all my outstanding ops to `target` (or to all).
  void flush(Comm& c, int target);
  void flush_all(Comm& c);

  /// Local completion (origin buffers reusable).
  void flush_local(Comm& c, int target);
  void flush_local_all(Comm& c);

  /// Collective fence: barrier + all puts applied and remotely complete.
  void fence(Comm& c);

  /// Applies every arrived-but-unapplied put destined to me (MPI_Win_sync).
  /// Free of charge; poll loops account their own scan cost.
  void sync(Comm& c);

  /// Blocks until at least one unapplied put destined to me exists, then
  /// applies everything that has arrived by the wake time.
  void wait_any_unapplied(Comm& c);

  /// Blocking 8-byte compare-and-swap on target window memory; returns the
  /// old value. Linearizes in issue order.
  std::uint64_t compare_and_swap(Comm& c, std::uint64_t compare,
                                 std::uint64_t value, int target,
                                 std::uint64_t target_off);

  /// Blocking 8-byte atomic fetch-and-add; returns the old value.
  std::uint64_t fetch_add(Comm& c, std::uint64_t add, int target,
                          std::uint64_t target_off);

  /// Number of puts destined to `rank` that have not yet been applied
  /// (test/diagnostic hook).
  [[nodiscard]] std::size_t unapplied_count(int rank) const;

  /// Annotates a local load/store on the caller's own exposure region for
  /// the RMA checker (DESIGN.md §11). Free: no cost model, no clock change,
  /// and a single branch when the checker is off. A local read overlapping
  /// an arrived-but-unapplied put is the missing-MPI_Win_sync bug.
  void local_access(Comm& c, std::uint64_t off, std::uint64_t bytes,
                    bool is_write);

 private:
  friend class Comm;

  struct Region {
    std::byte* base = nullptr;
    std::uint64_t size = 0;
  };
  struct PendingPut {
    std::uint64_t off = 0;
    std::uint64_t bytes = 0;
    std::vector<std::byte> data;  ///< empty when payload capture is off
    simnet::TimeUs arrival = 0;
    std::uint64_t seq = 0;
    /// Checker shadow-record handle; reported back when the put applies.
    std::uint32_t chk_data = check::kNoRec;
  };
  struct Outstanding {
    int target = -1;
    simnet::TimeUs remote_done = 0;
    simnet::TimeUs local_done = 0;
  };
  struct FenceSlot {
    std::uint64_t gen = ~0ULL;
    simnet::TimeUs done_at = 0;
  };

  /// Applies (in arrival,seq order) all pending puts for `rank` with
  /// arrival <= cutoff. Engine lock must be held.
  void apply_pending_locked(int rank, simnet::TimeUs cutoff);

  std::uint64_t atomic_rmw(Comm& c, int target, std::uint64_t target_off,
                           std::uint64_t operand, std::uint64_t compare,
                           bool is_cas);

  World* world_;
  int nranks_;
  std::vector<Region> region_;
  std::vector<std::vector<PendingPut>> pending_;      // per target rank
  std::vector<std::vector<Outstanding>> outstanding_; // per origin rank
  /// Total puts ever pushed toward each target — the WaitGate counter for
  /// wait_any_unapplied (DESIGN.md §12). Sized once, so entries have stable
  /// addresses for the lifetime of the window.
  std::vector<std::uint64_t> put_pushes_;
  std::uint64_t put_seq_ = 0;

  // Fence rendezvous.
  std::uint64_t fence_gen_ = 0;
  int fence_entered_ = 0;
  simnet::TimeUs fence_max_enter_ = 0;
  std::array<FenceSlot, 4> fence_done_;

  // Checker registration (create_win fills these in when the checker is on):
  // this window's shadow space and its fence channel (fence completion is a
  // global sync for the space, so the channel clears it).
  int chk_space_ = -1;
  int chk_chan_ = -1;
};

/// Per-rank view of a window: the handle workload code holds.
class WinHandle {
 public:
  WinHandle() = default;
  WinHandle(Win* win, Comm* comm) : win_(win), comm_(comm) {}

  void put(const void* origin, std::uint64_t bytes, int target,
           std::uint64_t target_off,
           simnet::OpKind kind = simnet::OpKind::kPut) {
    win_->put(*comm_, origin, bytes, target, target_off, kind);
  }
  void get(void* dest, std::uint64_t bytes, int target,
           std::uint64_t target_off) {
    win_->get(*comm_, dest, bytes, target, target_off);
  }
  void flush(int target) { win_->flush(*comm_, target); }
  void flush_all() { win_->flush_all(*comm_); }
  void flush_local(int target) { win_->flush_local(*comm_, target); }
  void flush_local_all() { win_->flush_local_all(*comm_); }
  void fence() { win_->fence(*comm_); }
  void sync() { win_->sync(*comm_); }
  void wait_any_unapplied() { win_->wait_any_unapplied(*comm_); }
  std::uint64_t compare_and_swap(std::uint64_t compare, std::uint64_t value,
                                 int target, std::uint64_t target_off) {
    return win_->compare_and_swap(*comm_, compare, value, target, target_off);
  }
  std::uint64_t fetch_add(std::uint64_t add, int target,
                          std::uint64_t target_off) {
    return win_->fetch_add(*comm_, add, target, target_off);
  }
  /// RMA-checker annotations for direct loads/stores of my own exposure
  /// region (no-ops unless --check is on; see Win::local_access).
  void local_read(std::uint64_t off, std::uint64_t bytes) {
    win_->local_access(*comm_, off, bytes, /*is_write=*/false);
  }
  void local_write(std::uint64_t off, std::uint64_t bytes) {
    win_->local_access(*comm_, off, bytes, /*is_write=*/true);
  }

  [[nodiscard]] Win& win() { return *win_; }

 private:
  Win* win_ = nullptr;
  Comm* comm_ = nullptr;
};

}  // namespace mrl::mpi
