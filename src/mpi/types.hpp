// Shared minimpi constants and small value types.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/time.hpp"

namespace mrl::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completion info for a receive (the MPI_Status essentials).
struct RecvInfo {
  int src = -1;
  int tag = -1;
  std::uint64_t bytes = 0;
  simnet::TimeUs arrival_us = 0;
};

/// A message sitting in a rank's mailbox awaiting a matching receive.
struct Msg {
  int src = -1;
  int tag = 0;
  std::uint64_t seq = 0;  ///< per (src,dst) FIFO sequence
  simnet::TimeUs arrival_us = 0;
  std::uint64_t bytes = 0;           ///< logical message size
  std::vector<std::byte> payload;    ///< empty when payload capture is off
};

/// Nonblocking-operation handle. Move-only value; completed by wait/waitall.
class Request {
 public:
  enum class Kind { kInvalid, kSend, kRecv };

  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const RecvInfo& info() const { return info_; }

 private:
  friend class Comm;
  Kind kind_ = Kind::kInvalid;
  bool done_ = false;
  // Send: when the local buffer is reusable (eager injection complete).
  simnet::TimeUs send_complete_us = 0;
  // Recv: destination buffer and matching selectors.
  void* buf = nullptr;
  std::uint64_t max_bytes = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  RecvInfo info_;
};

}  // namespace mrl::mpi
