// Modeled-cost collectives: a dissemination-style rendezvous whose completion
// time is max(entry times) + ceil(log2 P) rounds of (2o + L [+ payload]).
// Values are reduced exactly; only the cost is modeled rather than executed
// as a p2p fan-in (documented in DESIGN.md — the paper's workloads use
// collectives only for window fences and end-of-run timing).
#include <cmath>
#include <cstring>

#include "mpi/comm.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::mpi {

namespace {
double rounds_for(int nranks) {
  return std::ceil(std::log2(static_cast<double>(std::max(2, nranks))));
}
}  // namespace

void Comm::barrier() { barrier_kind("barrier"); }

void Comm::barrier_kind(const char* kind) {
  const simnet::LogGP& pp = p2p_params();
  rank_->advance(pp.o_us);
  const double cost = rounds_for(size()) * (2.0 * pp.o_us + pp.L_us);
  collective(cost, 0.0, 0.0, nullptr, 0, check::CollSig{kind, -1, 0});
}

double Comm::allreduce_sum(double v) {
  const simnet::LogGP& pp = p2p_params();
  rank_->advance(pp.o_us);
  const double pair_bw = world_->engine_.platform().pair_peak_gbs(
      0, size() - 1, size());
  const double cost = rounds_for(size()) *
                      (2.0 * pp.o_us + pp.L_us + 8.0 * gbs_to_us_per_byte(pair_bw));
  return collective(cost, v, 0.0, nullptr, 0,
                    check::CollSig{"allreduce_sum", -1, 8})
      .sum;
}

double Comm::allreduce_max(double v) {
  const simnet::LogGP& pp = p2p_params();
  rank_->advance(pp.o_us);
  const double pair_bw = world_->engine_.platform().pair_peak_gbs(
      0, size() - 1, size());
  const double cost = rounds_for(size()) *
                      (2.0 * pp.o_us + pp.L_us + 8.0 * gbs_to_us_per_byte(pair_bw));
  return collective(cost, 0.0, v, nullptr, 0,
                    check::CollSig{"allreduce_max", -1, 8})
      .max;
}

void Comm::bcast(void* buf, std::uint64_t bytes, int root) {
  MRL_CHECK(root >= 0 && root < size());
  const simnet::LogGP& pp = p2p_params();
  rank_->advance(pp.o_us);
  const double pair_bw = world_->engine_.platform().pair_peak_gbs(
      0, size() - 1, size());
  const double cost =
      rounds_for(size()) *
      (2.0 * pp.o_us + pp.L_us +
       static_cast<double>(bytes) * gbs_to_us_per_byte(pair_bw));
  const World::CollSlot& slot =
      collective(cost, 0.0, 0.0, rank() == root ? buf : nullptr, bytes,
                 check::CollSig{"bcast", root, bytes});
  if (rank() != root) {
    MRL_CHECK_MSG(slot.payload.size() == bytes, "bcast size mismatch");
    std::memcpy(buf, slot.payload.data(), bytes);
  }
}

}  // namespace mrl::mpi
