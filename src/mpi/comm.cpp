#include "mpi/comm.hpp"

#include <algorithm>
#include <cmath>

#include "mpi/win.hpp"
#include "util/status.hpp"

namespace mrl::mpi {

World::World(runtime::Engine& engine)
    : engine_(engine), nranks_(engine.nranks()) {
  mailbox_.resize(static_cast<std::size_t>(nranks_));
  inbox_pushes_.resize(static_cast<std::size_t>(nranks_), 0);
  fifo_last_.reset(nranks_);
  fifo_seq_.reset(nranks_);
}

simnet::TimeUs World::clamp_fifo(int src, int dst, simnet::TimeUs arrival) {
  simnet::TimeUs& last = fifo_last_.at(src, dst);
  last = std::max(last, arrival);
  return last;
}

runtime::RunResult World::run(runtime::Engine& engine,
                              const std::function<void(Comm&)>& body) {
  World world(engine);
  return engine.run([&world, &body](runtime::Rank& rank) {
    Comm comm(&world, &rank);
    body(comm);
  });
}

const simnet::LogGP& Comm::p2p_params() const {
  return world_->engine_.platform().params(world_->p2p_runtime);
}

const simnet::LogGP& Comm::rma_params() const {
  return world_->engine_.platform().params(world_->rma_runtime);
}

WinHandle Comm::create_win(void* base, std::uint64_t bytes) {
  const int idx = wins_created_++;
  Win* win = nullptr;
  world_->engine_.perform(*rank_, [&] {
    if (static_cast<std::size_t>(idx) >= world_->windows_.size()) {
      world_->windows_.push_back(
          std::make_unique<Win>(world_, world_->nranks_));
    }
    win = world_->windows_[static_cast<std::size_t>(idx)].get();
    win->region_[static_cast<std::size_t>(rank())] =
        Win::Region{static_cast<std::byte*>(base), bytes};
    auto& chk = world_->engine_.checker();
    if (chk.enabled() && win->chk_space_ < 0) {
      // First rank to expose registers the window's shadow space and its
      // fence channel (fence completion is a global sync: it clears the
      // space's access history).
      const std::string name = "win" + std::to_string(idx);
      win->chk_space_ = chk.add_space(name);
      win->chk_chan_ = chk.add_channel(name + ".fence", win->chk_space_);
    }
  });
  // Window is usable only after everyone exposed their region. Tagged
  // distinctly so a create_win on one rank cannot silently pair with a
  // user barrier on another.
  barrier_kind("win.create");
  return WinHandle(win, this);
}

const World::CollSlot& Comm::collective(double cost_us, double sum_contrib,
                                        double max_contrib,
                                        const void* payload,
                                        std::uint64_t payload_bytes,
                                        const check::CollSig& sig) {
  World::Rendezvous& rv = world_->coll_;
  std::uint64_t my_gen = 0;
  world_->engine_.perform(*rank_, [&] {
    auto& chk = world_->engine_.checker();
    if (chk.enabled()) {
      if (world_->chk_chan_ < 0) {
        world_->chk_chan_ = chk.add_channel("mpi.world");
      }
      const check::CollEnter ce = chk.on_collective_enter(
          world_->chk_chan_, rank(), sig, rank_->now());
      if (!ce.ok) {
        // Mismatched collectives abort immediately: letting the kind-blind
        // rendezvous below pair them would deadlock or corrupt payloads.
        world_->engine_.abort_run(*rank_, ErrorCode::kFailedPrecondition,
                                  chk.report());
      }
    }
    if (rv.entered == 0) {
      rv.acc_sum = 0;
      rv.acc_max = -std::numeric_limits<double>::infinity();
      rv.max_enter = 0;
      rv.payload.clear();
    }
    my_gen = rv.generation;
    ++rv.entered;
    rv.max_enter = std::max(rv.max_enter, rank_->now());
    rv.acc_sum += sum_contrib;
    rv.acc_max = std::max(rv.acc_max, max_contrib);
    if (payload != nullptr && payload_bytes > 0) {
      const auto* p = static_cast<const std::byte*>(payload);
      rv.payload.assign(p, p + payload_bytes);
    }
    if (rv.entered == world_->nranks_) {
      World::CollSlot& slot = rv.done[my_gen % rv.done.size()];
      slot.gen = my_gen;
      slot.done_at = rv.max_enter + cost_us;
      slot.sum = rv.acc_sum;
      slot.max = rv.acc_max;
      slot.payload = std::move(rv.payload);
      rv.payload.clear();
      rv.entered = 0;
      ++rv.generation;
    }
  });
  const World::CollSlot& slot = rv.done[my_gen % rv.done.size()];
  // Gated wait: the condition is exactly "rv.generation > my_gen", so the
  // generation counter doubles as a WaitGate — the engine skips this waiter
  // until the last entrant bumps the generation (DESIGN.md §10).
  world_->engine_.wait(
      *rank_, "collective",
      [&]() -> std::optional<double> {
        if (rv.generation <= my_gen) return std::nullopt;
        MRL_CHECK_MSG(slot.gen == my_gen, "collective result slot overwritten");
        return slot.done_at;
      },
      {}, runtime::WaitGate{&rv.generation, my_gen + 1});
  auto& chk = world_->engine_.checker();
  if (chk.enabled() && world_->chk_chan_ >= 0) {
    chk.on_collective_complete(world_->chk_chan_, rank(), my_gen);
  }
  rank_->bump_epoch();
  world_->engine_.metrics().on_collective(rank());
  return slot;
}

}  // namespace mrl::mpi
