// Two-sided point-to-point: eager-protocol Isend/Irecv with FIFO delivery
// and MPI-style (source, tag) matching including ANY_SOURCE / ANY_TAG.
#include <cstring>

#include "mpi/comm.hpp"
#include "util/status.hpp"

namespace mrl::mpi {

namespace {
bool matches(const Msg& m, int src, int tag) {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}
}  // namespace

Request Comm::isend(const void* buf, std::uint64_t bytes, int dst, int tag) {
  MRL_CHECK(dst >= 0 && dst < size());
  MRL_CHECK(tag >= 0);
  const simnet::LogGP& pp = p2p_params();
  rank_->advance(pp.o_us);  // sender overhead

  Request req;
  req.kind_ = Request::Kind::kSend;
  auto& eng = world_->engine_;
  eng.perform(*rank_, [&] {
    simnet::TransferParams tp;
    tp.src_ep = rank_->endpoint();
    tp.dst_ep = eng.platform().endpoint_of_rank(dst, size());
    tp.src_rank = rank();
    tp.pump_gbs = eng.platform().rank_pump_gbs();
    tp.bytes = bytes;
    tp.start_us = rank_->now();
    tp.sw_latency_us = pp.L_us;
    tp.inj_gap_us = pp.g_us;
    tp.per_stream_gbs = pp.per_stream_gbs;
    const simnet::TransferResult tr = eng.fabric().transfer(tp);

    Msg m;
    m.src = rank();
    m.tag = tag;
    m.seq = world_->fifo_seq_.at(rank(), dst)++;
    m.arrival_us = world_->clamp_fifo(rank(), dst, tr.arrival_us);
    m.bytes = bytes;
    if (bytes > 0 && world_->capture_payloads) {
      const auto* p = static_cast<const std::byte*>(buf);
      m.payload.assign(p, p + bytes);
    }
    eng.record_msg(simnet::MsgRecord{rank(), dst, bytes, rank_->now(),
                                     m.arrival_us, simnet::OpKind::kSend,
                                     rank_->epoch(), tr.drops, tr.queue_us,
                                     tr.ser_us, tr.dlink});
    // Happens-before edge: the sender's clock snapshot rides with the
    // message, keyed by the per-pair FIFO seq (matching can be tag-filtered
    // and consume out of FIFO order, so the join is seq-keyed too).
    eng.checker().on_send(rank(), dst, m.seq);
    world_->mailbox_[static_cast<std::size_t>(dst)].push_back(std::move(m));
    // Advance dst's inbox gate counter: a receiver parked in a gated recv
    // wait is only re-evaluated when this moves (match_and_consume).
    ++world_->inbox_pushes_[static_cast<std::size_t>(dst)];
    req.send_complete_us = tr.inject_free_us;
  });
  req.done_ = false;
  return req;
}

Request Comm::irecv(void* buf, std::uint64_t bytes, int src, int tag) {
  MRL_CHECK(src == kAnySource || (src >= 0 && src < size()));
  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.buf = buf;
  req.max_bytes = bytes;
  req.src = src;
  req.tag = tag;
  return req;  // matching happens at wait time (in post order)
}

RecvInfo Comm::match_and_consume(void* buf, std::uint64_t max_bytes, int src,
                                 int tag) {
  auto& eng = world_->engine_;
  auto& box = world_->mailbox_[static_cast<std::size_t>(rank())];

  // Earliest-arriving matching message; FIFO clamping already guarantees
  // per-sender non-overtaking, so min-arrival is a valid MPI match order.
  auto find_best = [&]() -> std::vector<Msg>::iterator {
    auto best = box.end();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (!matches(*it, src, tag)) continue;
      if (best == box.end() || it->arrival_us < best->arrival_us ||
          (it->arrival_us == best->arrival_us && it->src < best->src)) {
        best = it;
      }
    }
    return best;
  };

  // Gate the wait on the message-arrival counter for the channel(s) this
  // receive can match (DESIGN.md §12): a specific-source receive can only
  // become matchable when src pushes again (fifo_seq_ is bumped at every
  // push, and PairMap::at() references are stable), an ANY_SOURCE receive
  // when anyone pushes to this rank's inbox. A push with a non-matching tag
  // wakes the gate once and the engine re-parks the waiter at the next
  // counter value — no per-perform re-evaluation either way.
  runtime::WaitGate gate;
  if (src == kAnySource) {
    const std::uint64_t& ctr =
        world_->inbox_pushes_[static_cast<std::size_t>(rank())];
    gate = runtime::WaitGate{&ctr, ctr + 1};
  } else {
    const std::uint64_t& ctr = world_->fifo_seq_.at(src, rank());
    gate = runtime::WaitGate{&ctr, ctr + 1};
  }

  RecvInfo info;
  eng.wait(
      *rank_, "recv",
      [&]() -> std::optional<double> {
        auto best = find_best();
        if (best == box.end()) return std::nullopt;
        return best->arrival_us;
      },
      [&] {
        auto best = find_best();
        MRL_CHECK(best != box.end());
        MRL_CHECK_MSG(best->bytes <= max_bytes,
                      "receive buffer too small for matched message");
        if (!best->payload.empty()) {
          std::memcpy(buf, best->payload.data(), best->payload.size());
        }
        info.src = best->src;
        info.tag = best->tag;
        info.bytes = best->bytes;
        info.arrival_us = best->arrival_us;
        eng.checker().on_recv(rank(), best->src, best->seq);
        box.erase(best);
      },
      gate);
  rank_->advance(p2p_params().o_us);  // receiver overhead
  eng.metrics().on_recv(rank(), info.bytes);
  return info;
}

void Comm::wait(Request& req) {
  switch (req.kind()) {
    case Request::Kind::kSend:
      if (!req.done_) {
        if (req.send_complete_us > rank_->now()) {
          // Draining the injection pipe is pure sender-side serialization.
          const simnet::TimeUs t0 = rank_->now();
          rank_->advance(req.send_complete_us - t0);
          world_->engine_.record_advance_span(
              *rank_, simnet::SpanKind::kSendDrain, t0, -1, 0, /*q_us=*/0,
              /*s_us=*/req.send_complete_us - t0);
        }
        req.done_ = true;
      }
      break;
    case Request::Kind::kRecv:
      if (!req.done_) {
        req.info_ =
            match_and_consume(req.buf, req.max_bytes, req.src, req.tag);
        req.done_ = true;
      }
      break;
    case Request::Kind::kInvalid:
      MRL_CHECK_MSG(false, "wait on invalid request");
  }
}

void Comm::waitall(std::span<Request> reqs) {
  for (Request& r : reqs) wait(r);
  rank_->bump_epoch();
}

void Comm::send(const void* buf, std::uint64_t bytes, int dst, int tag) {
  Request r = isend(buf, bytes, dst, tag);
  wait(r);
}

RecvInfo Comm::recv(void* buf, std::uint64_t bytes, int src, int tag) {
  RecvInfo info = match_and_consume(buf, bytes, src, tag);
  rank_->bump_epoch();
  return info;
}

}  // namespace mrl::mpi
