// minimpi: an MPI-shaped two-sided + one-sided communication runtime running
// on the msgroof virtual-time engine.
//
// The API mirrors the subset of MPI the paper's three workloads use:
// Isend/Irecv/Send/Recv (with ANY_SOURCE / ANY_TAG), Wait/Waitall, RMA
// windows with Put / fence / flush / flush_local / compare-and-swap /
// fetch-add, and Barrier / Allreduce / Bcast collectives. Every operation
// charges the issuing rank the per-op LogGP overhead `o` of its runtime
// flavor, so the paper's "one-sided needs 4 MPI operations per message"
// penalty is emergent, not hard-coded.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mpi/types.hpp"
#include "runtime/engine.hpp"
#include "simnet/loggp.hpp"
#include "util/pair_map.hpp"

namespace mrl::mpi {

class Comm;
class Win;
class WinHandle;

/// Shared state for one communicator world: mailboxes, FIFO clamps,
/// collective rendezvous, and RMA windows. Created by World::run().
class World {
 public:
  /// Runs `body` as an SPMD program over `engine`'s ranks.
  static runtime::RunResult run(runtime::Engine& engine,
                                const std::function<void(Comm&)>& body);

  /// One-sided runtime flavor used for RMA op costs (default kOneSidedMpi).
  simnet::Runtime rma_runtime = simnet::Runtime::kOneSidedMpi;
  /// Two-sided runtime flavor used for p2p costs.
  simnet::Runtime p2p_runtime = simnet::Runtime::kTwoSidedMpi;
  /// When false, message/put payloads are not captured or delivered (timing
  /// only) — used by bandwidth sweeps whose data content is irrelevant.
  bool capture_payloads = true;

 private:
  friend class Comm;
  friend class Win;

  explicit World(runtime::Engine& engine);

  /// Per-(src,dst) in-order delivery: arrivals are clamped to be
  /// nondecreasing, modeling FIFO network paths.
  simnet::TimeUs clamp_fifo(int src, int dst, simnet::TimeUs arrival);

  runtime::Engine& engine_;
  int nranks_;
  // Per-dst mailboxes. Plain vectors, not deques: matching erases from the
  // middle anyway, and an empty libstdc++ deque preallocates ~half a KiB —
  // which is ~650 MB of dead weight at a million ranks.
  std::vector<std::vector<Msg>> mailbox_;         // per dst rank
  // Keyed (src, dst); sparse above PairMap::kDenseRanks so large worlds
  // don't materialize O(P^2) channel state. at() references are stable until
  // reset(), which lets fifo_seq_ entries double as WaitGate counters for
  // gated receives (DESIGN.md §12).
  util::PairMap<simnet::TimeUs> fifo_last_;
  util::PairMap<std::uint64_t> fifo_seq_;
  /// Total messages ever pushed into each rank's mailbox — the WaitGate
  /// counter for ANY_SOURCE receives (a specific-source receive gates on
  /// fifo_seq_.at(src, dst) instead).
  std::vector<std::uint64_t> inbox_pushes_;

  // Collective rendezvous state (single communicator). Results are kept in a
  // small generation-indexed ring so late wakers of generation g can still
  // read their result after generation g+1 has started.
  struct CollSlot {
    std::uint64_t gen = ~0ULL;
    simnet::TimeUs done_at = 0;
    double sum = 0;
    double max = 0;
    std::vector<std::byte> payload;
  };
  struct Rendezvous {
    std::uint64_t generation = 0;
    int entered = 0;
    simnet::TimeUs max_enter = 0;
    double acc_sum = 0;
    double acc_max = 0;
    std::vector<std::byte> payload;
    std::array<CollSlot, 4> done;
  };
  Rendezvous coll_;
  /// RMA-checker channel for the world collective rendezvous (lazily
  /// registered on first collective when the checker is on).
  int chk_chan_ = -1;

  std::vector<std::unique_ptr<Win>> windows_;
};

/// Per-rank communicator handle (rank-local view of the World).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_->id(); }
  [[nodiscard]] int size() const { return world_->nranks_; }
  [[nodiscard]] simnet::TimeUs now() const { return rank_->now(); }

  /// Charges local compute virtual time (scaled up on fault-injected
  /// straggler ranks).
  void compute(double us) { rank_->advance(us * rank_->compute_scale()); }

  [[nodiscard]] runtime::Rank& rank_ctx() { return *rank_; }
  [[nodiscard]] World& world() { return *world_; }

  // --- two-sided ---
  Request isend(const void* buf, std::uint64_t bytes, int dst, int tag);
  Request irecv(void* buf, std::uint64_t bytes, int src = kAnySource,
                int tag = kAnyTag);
  void send(const void* buf, std::uint64_t bytes, int dst, int tag);
  RecvInfo recv(void* buf, std::uint64_t bytes, int src = kAnySource,
                int tag = kAnyTag);
  void wait(Request& req);
  void waitall(std::span<Request> reqs);

  // --- collectives (modeled cost: log2(P) rounds of (2o + L)) ---
  void barrier();
  double allreduce_sum(double v);
  double allreduce_max(double v);
  void bcast(void* buf, std::uint64_t bytes, int root);

  // --- one-sided ---
  /// Collective window creation; every rank passes its local exposure
  /// region. Returns a per-rank handle to the same window.
  WinHandle create_win(void* base, std::uint64_t bytes);

 private:
  friend class World;
  friend class Win;
  Comm(World* world, runtime::Rank* rank) : world_(world), rank_(rank) {}

  [[nodiscard]] const simnet::LogGP& p2p_params() const;
  [[nodiscard]] const simnet::LogGP& rma_params() const;

  /// Blocks until a matching message exists, consumes it, copies the payload
  /// and returns its info; rank clock advances to the arrival time.
  RecvInfo match_and_consume(void* buf, std::uint64_t max_bytes, int src,
                             int tag);

  /// Modeled-cost collective rendezvous. Contributes the reduction values
  /// (and, for the root, the broadcast payload), blocks until every rank has
  /// entered, and returns the completed generation's result slot. `sig` is
  /// the checker's collective signature (kind must be a string literal);
  /// mismatched signatures across ranks abort the run with a diagnostic.
  const World::CollSlot& collective(double cost_us, double sum_contrib,
                                    double max_contrib, const void* payload,
                                    std::uint64_t payload_bytes,
                                    const check::CollSig& sig);

  /// barrier() with a distinct checker signature kind (create_win tags its
  /// internal barrier "win.create" so it cannot silently match a user
  /// barrier on another rank).
  void barrier_kind(const char* kind);

  World* world_;
  runtime::Rank* rank_;
  int wins_created_ = 0;  ///< per-rank collective create_win counter
};

}  // namespace mrl::mpi
