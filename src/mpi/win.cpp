#include "mpi/win.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "mpi/comm.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::mpi {

Win::Win(World* world, int nranks) : world_(world), nranks_(nranks) {
  region_.resize(static_cast<std::size_t>(nranks_));
  pending_.resize(static_cast<std::size_t>(nranks_));
  outstanding_.resize(static_cast<std::size_t>(nranks_));
  put_pushes_.resize(static_cast<std::size_t>(nranks_), 0);
}

void Win::put(Comm& c, const void* origin, std::uint64_t bytes, int target,
              std::uint64_t target_off, simnet::OpKind kind) {
  MRL_CHECK(target >= 0 && target < nranks_);
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.o_us);

  auto& eng = world_->engine_;
  eng.perform(c.rank_ctx(), [&] {
    const Region& tr = region_[static_cast<std::size_t>(target)];
    MRL_CHECK_MSG(tr.base != nullptr, "put to unexposed window region");
    MRL_CHECK_MSG(target_off + bytes <= tr.size, "put out of window bounds");

    simnet::TransferParams tp;
    tp.src_ep = c.rank_ctx().endpoint();
    tp.dst_ep = eng.platform().endpoint_of_rank(target, c.size());
    tp.src_rank = c.rank();
    tp.pump_gbs = eng.platform().rank_pump_gbs();
    tp.bytes = bytes;
    tp.start_us = c.now();
    tp.sw_latency_us = pp.L_us;
    tp.inj_gap_us = pp.g_us;
    tp.per_stream_gbs = pp.per_stream_gbs;
    const simnet::TransferResult res = eng.fabric().transfer(tp);
    const simnet::TimeUs arrival =
        world_->clamp_fifo(c.rank(), target, res.arrival_us);

    PendingPut pp2;
    pp2.off = target_off;
    pp2.bytes = bytes;
    if (world_->capture_payloads) {
      const auto* p = static_cast<const std::byte*>(origin);
      pp2.data.assign(p, p + bytes);
    }
    pp2.arrival = arrival;
    pp2.seq = put_seq_++;
    auto& chk = eng.checker();
    if (chk.enabled() && chk_space_ >= 0) {
      const check::PutHandles h = chk.on_put(
          c.rank(), chk_space_, target, target_off, bytes,
          kind == simnet::OpKind::kSignal ? check::PutClass::kSignal
                                          : check::PutClass::kData,
          0, c.now());
      pp2.chk_data = h.data;
    }
    pending_[static_cast<std::size_t>(target)].push_back(std::move(pp2));
    // Advance the target's put-arrival gate counter: a rank parked in
    // wait_any_unapplied is only re-evaluated when this moves.
    ++put_pushes_[static_cast<std::size_t>(target)];

    outstanding_[static_cast<std::size_t>(c.rank())].push_back(
        Outstanding{target, arrival, res.inject_free_us});
    eng.record_msg(simnet::MsgRecord{c.rank(), target, bytes, c.now(),
                                     arrival, kind, c.rank_ctx().epoch(),
                                     res.drops, res.queue_us, res.ser_us,
                                     res.dlink});
  });
}

void Win::get(Comm& c, void* dest, std::uint64_t bytes, int target,
              std::uint64_t target_off) {
  MRL_CHECK(target >= 0 && target < nranks_);
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.o_us);
  auto& eng = world_->engine_;
  const simnet::TimeUs t0 = c.now();
  double total_us = 0;
  double q_us = 0;
  double s_us = 0;
  eng.perform(c.rank_ctx(), [&] {
    const Region& tr = region_[static_cast<std::size_t>(target)];
    MRL_CHECK_MSG(tr.base != nullptr, "get from unexposed window region");
    MRL_CHECK_MSG(target_off + bytes <= tr.size, "get out of window bounds");
    // Request/response: software latency + hardware RTT + payload stream-in.
    const double rtt =
        eng.platform().hw_rtt_us(c.rank(), target, c.size());
    const double pair_bw =
        eng.platform().pair_peak_gbs(c.rank(), target, c.size());
    const double ser = static_cast<double>(bytes) * gbs_to_us_per_byte(pair_bw);
    // Under injected faults the round trip additionally pays jitter/outage
    // stalls, per-drop retransmit timeouts, and origin-side retry backoff
    // (all zero on a pristine fabric).
    const simnet::RoundTripFault rtf = eng.fabric().sample_round_trip(
        c.rank_ctx().endpoint(),
        eng.platform().endpoint_of_rank(target, c.size()), c.now());
    // Decomposition: fault stalls + retry backoff count as queueing, the
    // payload stream-in as serialization; the L + RTT remainder is latency.
    q_us = rtf.extra_us + eng.fabric().faults().backoff_us(rtf.drops);
    s_us = ser;
    total_us = pp.L_us + rtt + ser + q_us;
    // Reads current contents: arrived-but-unapplied puts are not visible,
    // matching our separate-memory RMA model.
    std::memcpy(dest, tr.base + target_off, bytes);
    auto& chk = eng.checker();
    if (chk.enabled() && chk_space_ >= 0) {
      chk.on_get(c.rank(), chk_space_, target, target_off, bytes, c.now());
    }
    // Gets keep their historical kPut trace encoding (changing it would
    // change every existing trace byte); is_get reclassifies for metrics.
    eng.record_msg(simnet::MsgRecord{c.rank(), target, bytes, c.now(),
                                     c.now() + total_us, simnet::OpKind::kPut,
                                     c.rank_ctx().epoch(), rtf.drops, q_us,
                                     s_us, -1},
                   /*is_get=*/true);
  });
  c.rank_ctx().advance(total_us);
  eng.record_advance_span(c.rank_ctx(), simnet::SpanKind::kGet, t0, target,
                          bytes, q_us, s_us);
}

void Win::flush(Comm& c, int target) {
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.o_us);
  auto& eng = world_->engine_;
  const simnet::TimeUs t0 = c.now();
  eng.perform(c.rank_ctx(), [&] {
    auto& outs = outstanding_[static_cast<std::size_t>(c.rank())];
    simnet::TimeUs done = c.now();
    auto it = std::remove_if(outs.begin(), outs.end(), [&](const Outstanding& o) {
      if (target != -1 && o.target != target) return false;
      done = std::max(done, o.remote_done);
      return true;
    });
    outs.erase(it, outs.end());
    if (done > c.now()) c.rank_ctx().advance(done - c.now());
    auto& chk = eng.checker();
    if (chk.enabled() && chk_space_ >= 0) {
      chk.on_flush(c.rank(), chk_space_, target);
    }
  });
  eng.record_advance_span(c.rank_ctx(), simnet::SpanKind::kFlush, t0, target,
                          0);
  c.rank_ctx().bump_epoch();
}

void Win::flush_all(Comm& c) { flush(c, -1); }

void Win::flush_local(Comm& c, int target) {
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.o_us);
  auto& eng = world_->engine_;
  const simnet::TimeUs t0 = c.now();
  eng.perform(c.rank_ctx(), [&] {
    simnet::TimeUs done = c.now();
    for (const Outstanding& o :
         outstanding_[static_cast<std::size_t>(c.rank())]) {
      if (target != -1 && o.target != target) continue;
      done = std::max(done, o.local_done);
    }
    if (done > c.now()) c.rank_ctx().advance(done - c.now());
    auto& chk = eng.checker();
    if (chk.enabled() && chk_space_ >= 0) {
      chk.on_flush_local(c.rank(), chk_space_, target);
    }
  });
  eng.record_advance_span(c.rank_ctx(), simnet::SpanKind::kFlush, t0, target,
                          0);
  // No bump_epoch: flush_local is not remote completion, so puts stay in
  // the current outstanding epoch and flush/fence still owe their waits.
}

void Win::flush_local_all(Comm& c) { flush_local(c, -1); }

void Win::apply_pending_locked(int rank, simnet::TimeUs cutoff) {
  auto& pend = pending_[static_cast<std::size_t>(rank)];
  if (pend.empty()) return;
  std::vector<PendingPut> ready;
  auto it = std::partition(pend.begin(), pend.end(), [&](const PendingPut& p) {
    return p.arrival > cutoff;  // keep not-yet-arrived in place
  });
  ready.assign(std::make_move_iterator(it), std::make_move_iterator(pend.end()));
  pend.erase(it, pend.end());
  std::sort(ready.begin(), ready.end(),
            [](const PendingPut& a, const PendingPut& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.seq < b.seq;
            });
  const Region& reg = region_[static_cast<std::size_t>(rank)];
  auto& metrics = world_->engine_.metrics();
  auto& chk = world_->engine_.checker();
  for (const PendingPut& p : ready) {
    if (!p.data.empty()) {
      std::memcpy(reg.base + p.off, p.data.data(), p.data.size());
    }
    metrics.on_recv(rank, p.bytes);
    if (chk.enabled() && chk_space_ >= 0) {
      // Target-side observation: the put completes and `rank` learns the
      // origin's clock at issue.
      chk.on_applied(chk_space_, rank,
                     check::PutHandles{p.chk_data, check::kNoRec});
    }
  }
}

void Win::sync(Comm& c) {
  world_->engine_.perform(c.rank_ctx(), [&] {
    apply_pending_locked(c.rank(), c.now());
  });
}

void Win::wait_any_unapplied(Comm& c) {
  auto& eng = world_->engine_;
  auto& pend = pending_[static_cast<std::size_t>(c.rank())];
  // Gated on my put-arrival counter (DESIGN.md §12): while I am blocked here
  // pending_ can only grow (fence is collective, so nobody else drains it),
  // and every growth bumps the counter — the condition is satisfiable
  // exactly once the counter moves.
  const std::uint64_t& ctr = put_pushes_[static_cast<std::size_t>(c.rank())];
  eng.wait(
      c.rank_ctx(), "win.wait_any_unapplied",
      [&]() -> std::optional<double> {
        if (pend.empty()) return std::nullopt;
        double first = pend.front().arrival;
        for (const PendingPut& p : pend) first = std::min(first, p.arrival);
        return first;
      },
      [&] { apply_pending_locked(c.rank(), c.now()); },
      runtime::WaitGate{&ctr, ctr + 1});
}

std::uint64_t Win::atomic_rmw(Comm& c, int target, std::uint64_t target_off,
                              std::uint64_t operand, std::uint64_t compare,
                              bool is_cas) {
  MRL_CHECK(target >= 0 && target < nranks_);
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.atomic_o());
  auto& eng = world_->engine_;
  std::uint64_t old = 0;
  const simnet::TimeUs t0 = c.now();
  double total_us = 0;
  double q_us = 0;
  double s_us = 0;
  eng.perform(c.rank_ctx(), [&] {
    const Region& tr = region_[static_cast<std::size_t>(target)];
    MRL_CHECK_MSG(tr.base != nullptr, "atomic on unexposed window region");
    MRL_CHECK_MSG(target_off + 8 <= tr.size, "atomic out of window bounds");
    // Linearize in issue order: apply now, charge the round trip to the
    // origin. Atomics act on committed memory directly (they are performed
    // by the target NIC/agent, not subject to the put visibility epoch).
    std::uint64_t* p =
        reinterpret_cast<std::uint64_t*>(tr.base + target_off);
    old = *p;
    if (is_cas) {
      if (old == compare) *p = operand;
      eng.metrics().on_cas_attempt(c.rank(), old == compare);
    } else {
      *p = old + operand;
    }
    auto& chk = eng.checker();
    if (chk.enabled() && chk_space_ >= 0) {
      chk.on_atomic(c.rank(), chk_space_, target, target_off, c.now());
    }
    // Request/response through the fabric: atomics contend on link lanes
    // (e.g. the Summit X-Bus per-transaction occupancy) but skip the put
    // software path — only atomic_L of extra software latency.
    simnet::TransferParams req;
    req.src_ep = c.rank_ctx().endpoint();
    req.dst_ep = eng.platform().endpoint_of_rank(target, c.size());
    req.src_rank = c.rank();
    req.bytes = 8;
    req.start_us = c.now();
    req.sw_latency_us = pp.atomic_L_us / 2;
    const simnet::TransferResult r1 = eng.fabric().transfer(req);
    simnet::TransferParams rsp = req;
    rsp.src_ep = req.dst_ep;
    rsp.dst_ep = req.src_ep;
    rsp.src_rank = target;
    rsp.start_us = r1.arrival_us;
    const simnet::TransferResult r2 = eng.fabric().transfer(rsp);
    // Retry-with-backoff accounting: each dropped request/response attempt
    // already paid its retransmit timeout inside transfer(); the origin
    // additionally backs off exponentially before re-issuing.
    const int drops = r1.drops + r2.drops;
    const double backoff = eng.fabric().faults().backoff_us(drops);
    total_us = r2.arrival_us - c.now() + backoff;
    // Decomposition over both legs; the dominant-queueing leg names the link.
    q_us = r1.queue_us + r2.queue_us + backoff;
    s_us = r1.ser_us + r2.ser_us;
    const std::int32_t dlink =
        r1.queue_us >= r2.queue_us ? r1.dlink : r2.dlink;
    eng.record_msg(simnet::MsgRecord{c.rank(), target, 8, c.now(),
                                     c.now() + total_us,
                                     simnet::OpKind::kAtomic,
                                     c.rank_ctx().epoch(), drops, q_us, s_us,
                                     dlink});
  });
  c.rank_ctx().advance(total_us);
  eng.record_advance_span(c.rank_ctx(), simnet::SpanKind::kAtomic, t0, target,
                          8, q_us, s_us);
  return old;
}

std::uint64_t Win::compare_and_swap(Comm& c, std::uint64_t compare,
                                    std::uint64_t value, int target,
                                    std::uint64_t target_off) {
  return atomic_rmw(c, target, target_off, value, compare, /*is_cas=*/true);
}

std::uint64_t Win::fetch_add(Comm& c, std::uint64_t add, int target,
                             std::uint64_t target_off) {
  return atomic_rmw(c, target, target_off, add, 0, /*is_cas=*/false);
}

void Win::fence(Comm& c) {
  const simnet::LogGP& pp = c.rma_params();
  c.rank_ctx().advance(pp.o_us);
  auto& eng = world_->engine_;
  const double rounds = std::ceil(std::log2(std::max(2, nranks_)));
  const double cost = rounds * (2.0 * pp.o_us + pp.L_us);

  std::uint64_t my_gen = 0;
  eng.perform(c.rank_ctx(), [&] {
    my_gen = fence_gen_;
    if (fence_entered_ == 0) fence_max_enter_ = 0;
    ++fence_entered_;
    fence_max_enter_ = std::max(fence_max_enter_, c.now());
    if (fence_entered_ == nranks_) {
      simnet::TimeUs done = fence_max_enter_ + cost;
      for (int r = 0; r < nranks_; ++r) {
        for (const PendingPut& p : pending_[static_cast<std::size_t>(r)]) {
          done = std::max(done, p.arrival);
        }
        apply_pending_locked(r, simnet::kTimeInf);
        outstanding_[static_cast<std::size_t>(r)].clear();
      }
      FenceSlot& slot = fence_done_[my_gen % fence_done_.size()];
      slot.gen = my_gen;
      slot.done_at = done;
      fence_entered_ = 0;
      ++fence_gen_;
    }
    auto& chk = eng.checker();
    if (chk.enabled() && chk_chan_ >= 0) {
      // After the apply loop above, so every pending put has reported its
      // application before the last entrant's space-clearing enter hook —
      // no shadow-record handle survives the clear.
      const check::CollEnter ce = chk.on_collective_enter(
          chk_chan_, c.rank(), check::CollSig{"win.fence", -1, 0}, c.now());
      if (!ce.ok) {
        eng.abort_run(c.rank_ctx(), ErrorCode::kFailedPrecondition,
                      chk.report());
      }
    }
  });
  const FenceSlot& slot = fence_done_[my_gen % fence_done_.size()];
  // Gated on the fence generation: waiters are not re-evaluated until the
  // last entrant bumps fence_gen_ (see runtime::WaitGate, DESIGN.md §10).
  eng.wait(
      c.rank_ctx(), "win.fence",
      [&]() -> std::optional<double> {
        if (fence_gen_ <= my_gen) return std::nullopt;
        MRL_CHECK_MSG(slot.gen == my_gen, "fence result slot overwritten");
        return slot.done_at;
      },
      {}, runtime::WaitGate{&fence_gen_, my_gen + 1});
  auto& chk = eng.checker();
  if (chk.enabled() && chk_chan_ >= 0) {
    chk.on_collective_complete(chk_chan_, c.rank(), my_gen);
  }
  c.rank_ctx().bump_epoch();
}

std::size_t Win::unapplied_count(int rank) const {
  return pending_[static_cast<std::size_t>(rank)].size();
}

void Win::local_access(Comm& c, std::uint64_t off, std::uint64_t bytes,
                       bool is_write) {
  auto& chk = world_->engine_.checker();
  if (!chk.enabled() || chk_space_ < 0) return;
  // Rank bodies execute one at a time and all window state mutates inside
  // perform bodies, so reading pending_ directly here is race-free and
  // deterministic; no perform, no clock movement, no cost.
  bool unapplied = false;
  for (const PendingPut& p :
       pending_[static_cast<std::size_t>(c.rank())]) {
    if (p.arrival <= c.now() && p.off < off + bytes && off < p.off + p.bytes) {
      unapplied = true;
      break;
    }
  }
  chk.on_local(c.rank(), chk_space_, off, bytes, is_write, unapplied, c.now());
}

}  // namespace mrl::mpi
