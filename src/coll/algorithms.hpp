// Collective algorithms built on real point-to-point messages (in contrast
// to mpi::Comm's modeled-cost collectives). These are the building blocks of
// NCCL/RCCL-style communication — the paper's stated future work ("AI
// applications using NCCL, RCCL, HCCL") — and double as an ablation of the
// modeled-collective design choice.
//
//   dissemination_barrier — ceil(log2 P) rounds of paired token messages
//   binomial_bcast        — classic binomial broadcast tree
//   rd_allreduce_sum      — recursive doubling (any P via pre/post folding)
//   ring_allreduce_sum    — bandwidth-optimal 2(P-1)-step chunked ring
//                           (the NCCL algorithm)
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "shmem/shmem.hpp"

namespace mrl::coll {

/// Dissemination barrier over p2p messages.
void dissemination_barrier(mpi::Comm& c);

/// Binomial-tree broadcast of `bytes` from `root`.
void binomial_bcast(mpi::Comm& c, void* buf, std::uint64_t bytes, int root);

/// Recursive-doubling allreduce (sum) on `count` doubles in place. Handles
/// non-power-of-two P by folding extra ranks into the largest power of two.
void rd_allreduce_sum(mpi::Comm& c, double* data, std::size_t count);

/// Ring allreduce (sum) in place: reduce-scatter + allgather, 2(P-1) steps
/// of count/P-sized chunks — bandwidth optimal for large vectors.
void ring_allreduce_sum(mpi::Comm& c, double* data, std::size_t count);

/// SHMEM ring allreduce (sum) for GPU PEs: chunks move with put-with-signal
/// into a symmetric staging area; signals carry the step number. This is the
/// RCCL/NCCL-style GPU-initiated ring. `data` is PE-local memory of `count`
/// doubles; staging is allocated from the symmetric heap internally (all PEs
/// must call with the same count).
void shmem_ring_allreduce_sum(shmem::Ctx& s, double* data, std::size_t count);

}  // namespace mrl::coll
