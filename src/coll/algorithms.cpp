#include "coll/algorithms.hpp"

#include <algorithm>
#include <cstring>

#include "util/status.hpp"

namespace mrl::coll {

namespace {
constexpr int kTagBarrier = 9001;
constexpr int kTagBcast = 9002;
constexpr int kTagRd = 9003;
constexpr int kTagRingRs = 9004;  // reduce-scatter phase
constexpr int kTagRingAg = 9005;  // allgather phase
}  // namespace

void dissemination_barrier(mpi::Comm& c) {
  const int p = c.size();
  std::byte token{};
  for (int dist = 1; dist < p; dist *= 2) {
    const int to = (c.rank() + dist) % p;
    const int from = (c.rank() - dist % p + p) % p;
    mpi::Request sreq = c.isend(&token, 1, to, kTagBarrier);
    c.recv(&token, 1, from, kTagBarrier);
    c.wait(sreq);
  }
}

void binomial_bcast(mpi::Comm& c, void* buf, std::uint64_t bytes, int root) {
  const int p = c.size();
  MRL_CHECK(root >= 0 && root < p);
  // Rotate ranks so the root is virtual rank 0.
  const int vrank = (c.rank() - root + p) % p;
  // Receive once from the parent, then forward down the tree.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % p;
      c.recv(buf, bytes, parent, kTagBcast);
      break;
    }
    mask *= 2;
  }
  mask /= 2;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = (vrank + mask + root) % p;
      c.send(buf, bytes, child, kTagBcast);
    }
    mask /= 2;
  }
}

void rd_allreduce_sum(mpi::Comm& c, double* data, std::size_t count) {
  const int p = c.size();
  if (p == 1) return;
  const std::uint64_t bytes = count * sizeof(double);
  std::vector<double> incoming(count);

  // Fold ranks above the largest power of two into partners below it.
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  int vrank;  // virtual rank inside the power-of-two group, -1 if folded out
  if (c.rank() < 2 * rem) {
    if (c.rank() % 2 == 0) {
      // Evens send their data to the odd partner and drop out.
      c.send(data, bytes, c.rank() + 1, kTagRd);
      vrank = -1;
    } else {
      c.recv(incoming.data(), bytes, c.rank() - 1, kTagRd);
      for (std::size_t i = 0; i < count; ++i) data[i] += incoming[i];
      vrank = c.rank() / 2;
    }
  } else {
    vrank = c.rank() - rem;
  }

  if (vrank != -1) {
    for (int mask = 1; mask < pof2; mask *= 2) {
      const int vpartner = vrank ^ mask;
      // Map virtual rank back to a real rank.
      const int partner =
          vpartner < rem ? vpartner * 2 + 1 : vpartner + rem;
      mpi::Request sreq = c.isend(data, bytes, partner, kTagRd);
      c.recv(incoming.data(), bytes, partner, kTagRd);
      c.wait(sreq);
      for (std::size_t i = 0; i < count; ++i) data[i] += incoming[i];
    }
  }

  // Unfold: odds return the result to their even partner.
  if (c.rank() < 2 * rem) {
    if (c.rank() % 2 == 1) {
      c.send(data, bytes, c.rank() - 1, kTagRd);
    } else {
      c.recv(data, bytes, c.rank() + 1, kTagRd);
    }
  }
}

void ring_allreduce_sum(mpi::Comm& c, double* data, std::size_t count) {
  const int p = c.size();
  if (p == 1) return;
  MRL_CHECK_MSG(count >= static_cast<std::size_t>(p),
                "ring allreduce needs count >= nranks");
  const int right = (c.rank() + 1) % p;
  const int left = (c.rank() - 1 + p) % p;

  auto chunk_begin = [&](int idx) {
    return count * static_cast<std::size_t>((idx % p + p) % p) /
           static_cast<std::size_t>(p);
  };
  auto chunk_len = [&](int idx) {
    const int k = (idx % p + p) % p;
    return count * static_cast<std::size_t>(k + 1) /
               static_cast<std::size_t>(p) -
           chunk_begin(k);
  };
  std::vector<double> incoming(chunk_len(p - 1) + count / p + 2);

  // Reduce-scatter: after step s, rank r owns the full sum of chunk
  // (r - s - 1); chunks travel rightward accumulating.
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = c.rank() - s;
    const int recv_idx = c.rank() - s - 1;
    mpi::Request sreq =
        c.isend(data + chunk_begin(send_idx),
                chunk_len(send_idx) * sizeof(double), right, kTagRingRs);
    const mpi::RecvInfo info = c.recv(
        incoming.data(), incoming.size() * sizeof(double), left, kTagRingRs);
    MRL_CHECK(info.bytes == chunk_len(recv_idx) * sizeof(double));
    double* dst = data + chunk_begin(recv_idx);
    for (std::size_t i = 0; i < chunk_len(recv_idx); ++i) {
      dst[i] += incoming[i];
    }
    c.wait(sreq);
  }
  // Allgather: fully-reduced chunks circulate once more.
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = c.rank() + 1 - s;
    const int recv_idx = c.rank() - s;
    mpi::Request sreq =
        c.isend(data + chunk_begin(send_idx),
                chunk_len(send_idx) * sizeof(double), right, kTagRingAg);
    const mpi::RecvInfo info = c.recv(
        incoming.data(), incoming.size() * sizeof(double), left, kTagRingAg);
    MRL_CHECK(info.bytes == chunk_len(recv_idx) * sizeof(double));
    std::memcpy(data + chunk_begin(recv_idx), incoming.data(), info.bytes);
    c.wait(sreq);
  }
}

void shmem_ring_allreduce_sum(shmem::Ctx& s, double* data, std::size_t count) {
  const int p = s.n_pes();
  if (p == 1) return;
  MRL_CHECK_MSG(count >= static_cast<std::size_t>(p),
                "ring allreduce needs count >= npes");
  const int right = (s.pe() + 1) % p;

  auto chunk_begin = [&](int idx) {
    return count * static_cast<std::size_t>((idx % p + p) % p) /
           static_cast<std::size_t>(p);
  };
  auto chunk_len = [&](int idx) {
    const int k = (idx % p + p) % p;
    return count * static_cast<std::size_t>(k + 1) /
               static_cast<std::size_t>(p) -
           chunk_begin(k);
  };

  // Symmetric staging: one slot per step (2(P-1) steps), plus signals.
  const std::size_t max_chunk = count / static_cast<std::size_t>(p) + 1;
  const std::size_t steps = 2 * static_cast<std::size_t>(p - 1);
  auto stage = s.allocate<double>(steps * max_chunk);
  auto sig = s.allocate<std::uint64_t>(steps);
  s.barrier_all();  // staging visible everywhere before first put

  for (std::size_t step = 0; step < steps; ++step) {
    const bool rs_phase = step < static_cast<std::size_t>(p - 1);
    const int sidx = static_cast<int>(rs_phase ? step : step - (p - 1));
    const int send_idx = rs_phase ? s.pe() - sidx : s.pe() + 1 - sidx;
    const int recv_idx = send_idx - 1;
    s.put_signal_nbi(stage.at(step * max_chunk),
                     data + chunk_begin(send_idx), chunk_len(send_idx),
                     sig.at(step), 1, right);
    s.wait_until(sig.at(step), 1);
    const double* in = s.local(stage) + step * max_chunk;
    double* dst = data + chunk_begin(recv_idx);
    if (rs_phase) {
      for (std::size_t i = 0; i < chunk_len(recv_idx); ++i) dst[i] += in[i];
    } else {
      std::memcpy(dst, in, chunk_len(recv_idx) * sizeof(double));
    }
  }
  s.quiet();
  s.barrier_all();
}

}  // namespace mrl::coll
