#include "runtime/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/csv.hpp"

namespace mrl::runtime {

namespace {

std::atomic<bool> g_default_metrics{false};

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// %.17g round-trips any double exactly: identical bits => identical text,
// which is what the byte-identity contract needs.
std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

using Row = std::vector<std::string>;

void counter_rows(std::vector<Row>& rows, const std::string& section,
                  const std::string& id, const OpCounters& c) {
  auto put = [&](const char* metric, std::uint64_t v) {
    rows.push_back({section, id, metric, fmt_u64(v)});
  };
  put("sends", c.sends);
  put("recvs", c.recvs);
  put("puts", c.puts);
  put("gets", c.gets);
  put("atomics", c.atomics);
  put("cas_failures", c.cas_failures);
  put("collectives", c.collectives);
  put("syncs", c.syncs);
  put("waits", c.waits);
  put("bytes_sent", c.bytes_sent);
  put("bytes_recv", c.bytes_recv);
  put("drops", c.drops);
  put("violations", c.violations);
}

void hist_rows(std::vector<Row>& rows, const std::string& section,
               const Log2Histogram& h) {
  const int hi = h.max_bucket();
  for (int k = 0; k <= hi; ++k) {
    rows.push_back({section, std::to_string(k), Log2Histogram::bucket_label(k),
                    fmt_u64(h.bucket_count(k))});
  }
}

}  // namespace

void OpCounters::add(const OpCounters& o) {
  sends += o.sends;
  recvs += o.recvs;
  puts += o.puts;
  gets += o.gets;
  atomics += o.atomics;
  cas_failures += o.cas_failures;
  collectives += o.collectives;
  syncs += o.syncs;
  waits += o.waits;
  bytes_sent += o.bytes_sent;
  bytes_recv += o.bytes_recv;
  drops += o.drops;
  violations += o.violations;
}

RankMetrics MetricsReport::totals() const {
  RankMetrics t;
  for (const RankMetrics& r : ranks) {
    t.ops.add(r.ops);
    t.blocked_us += r.blocked_us;  // fixed rank-id order => deterministic
    t.msg_bytes.merge(r.msg_bytes);
    t.wait_us.merge(r.wait_us);
    t.query_us.merge(r.query_us);
  }
  return t;
}

std::vector<std::vector<std::string>> MetricsReport::csv_rows() const {
  std::vector<Row> rows;
  rows.push_back({"section", "id", "metric", "value"});
  const RankMetrics t = totals();
  counter_rows(rows, "total", "", t.ops);
  rows.push_back({"total", "", "blocked_us", fmt_f64(t.blocked_us)});
  rows.push_back({"total", "", "makespan_us", fmt_f64(makespan_us)});
  rows.push_back({"total", "", "nranks", std::to_string(nranks)});
  hist_rows(rows, "hist_msg_bytes", t.msg_bytes);
  hist_rows(rows, "hist_wait_us", t.wait_us);
  hist_rows(rows, "hist_query_us", t.query_us);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const std::string id = std::to_string(i);
    counter_rows(rows, "rank", id, ranks[i].ops);
    rows.push_back({"rank", id, "blocked_us", fmt_f64(ranks[i].blocked_us)});
  }
  for (const LinkMetrics& l : links) {
    const std::string id = std::to_string(l.link) + ":" + std::to_string(l.dir);
    rows.push_back({"link", id, "name", l.name});
    rows.push_back({"link", id, "msgs", fmt_u64(l.msgs)});
    rows.push_back({"link", id, "busy_us", fmt_f64(l.busy_us)});
    rows.push_back({"link", id, "queue_us", fmt_f64(l.queue_us)});
  }
  return rows;
}

std::vector<std::vector<std::string>> MetricsReport::stack_csv_rows() const {
  std::vector<Row> rows;
  if (stack_hwm_bytes.empty()) return rows;
  rows.push_back(
      {"stack", "", "usable_bytes", fmt_u64(stack_usable_bytes)});
  std::size_t peak = 0;
  for (std::size_t i = 0; i < stack_hwm_bytes.size(); ++i) {
    peak = std::max(peak, stack_hwm_bytes[i]);
    rows.push_back({"stack", std::to_string(i), "hwm_bytes",
                    fmt_u64(stack_hwm_bytes[i])});
  }
  rows.push_back({"stack", "", "max_hwm_bytes", fmt_u64(peak)});
  return rows;
}

std::string MetricsReport::to_json() const {
  const RankMetrics t = totals();
  std::ostringstream os;
  auto counters = [&](const OpCounters& c) {
    os << "\"sends\":" << c.sends << ",\"recvs\":" << c.recvs
       << ",\"puts\":" << c.puts << ",\"gets\":" << c.gets
       << ",\"atomics\":" << c.atomics << ",\"cas_failures\":" << c.cas_failures
       << ",\"collectives\":" << c.collectives << ",\"syncs\":" << c.syncs
       << ",\"waits\":" << c.waits << ",\"bytes_sent\":" << c.bytes_sent
       << ",\"bytes_recv\":" << c.bytes_recv << ",\"drops\":" << c.drops
       << ",\"violations\":" << c.violations;
  };
  os << "{\"nranks\":" << nranks << ",\"makespan_us\":" << fmt_f64(makespan_us)
     << ",\"total\":{";
  counters(t.ops);
  os << ",\"blocked_us\":" << fmt_f64(t.blocked_us) << "},\"ranks\":[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) os << ",";
    os << "{";
    counters(ranks[i].ops);
    os << ",\"blocked_us\":" << fmt_f64(ranks[i].blocked_us) << "}";
  }
  os << "],\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkMetrics& l = links[i];
    if (i) os << ",";
    os << "{\"name\":\"" << l.name << "\",\"link\":" << l.link
       << ",\"dir\":" << l.dir << ",\"msgs\":" << l.msgs
       << ",\"busy_us\":" << fmt_f64(l.busy_us)
       << ",\"queue_us\":" << fmt_f64(l.queue_us) << "}";
  }
  os << "],\"stack_hwm_bytes\":[";
  for (std::size_t i = 0; i < stack_hwm_bytes.size(); ++i) {
    if (i) os << ",";
    os << stack_hwm_bytes[i];
  }
  os << "]}";
  return os.str();
}

void Metrics::reset(int nranks) {
  if (!enabled_) return;
  ranks_.assign(static_cast<std::size_t>(nranks), RankMetrics{});
}

void Metrics::on_msg_slow(const simnet::MsgRecord& rec, bool is_get) {
  RankMetrics& m = rank_at(rec.src_rank);
  switch (rec.kind) {
    case simnet::OpKind::kSend: ++m.ops.sends; break;
    case simnet::OpKind::kPut:
    case simnet::OpKind::kPutSignal:
    case simnet::OpKind::kSignal:
      // MPI gets are traced as kPut (pre-existing trace encoding); is_get
      // reclassifies them without perturbing the trace bytes.
      if (is_get) break;
      ++m.ops.puts;
      break;
    case simnet::OpKind::kAtomic: ++m.ops.atomics; break;
    case simnet::OpKind::kCollective: ++m.ops.collectives; break;
  }
  if (is_get) {
    ++m.ops.gets;
    m.ops.bytes_recv += rec.bytes;
  } else {
    m.ops.bytes_sent += rec.bytes;
  }
  m.ops.drops += static_cast<std::uint64_t>(rec.drops);
  m.msg_bytes.add(static_cast<double>(rec.bytes));
}

void Metrics::on_wait_slow(int rank, double blocked_us) {
  RankMetrics& m = rank_at(rank);
  ++m.ops.waits;
  m.blocked_us += blocked_us;
  m.wait_us.add(blocked_us);
}

bool default_metrics() {
  return g_default_metrics.load(std::memory_order_relaxed);
}

void set_default_metrics(bool on) {
  g_default_metrics.store(on, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: atexit-registered dumpers (bench --metrics) may
  // run after function-local statics are destroyed, so the registry must
  // never be torn down.
  static MetricsRegistry* reg = new MetricsRegistry;
  return *reg;
}

void MetricsRegistry::publish(const MetricsReport& report) {
  const RankMetrics t = report.totals();
  std::lock_guard lk(mu_);
  ++runs_;
  max_nranks_ = std::max(max_nranks_, report.nranks);
  max_makespan_us_ = std::max(max_makespan_us_, report.makespan_us);
  totals_.add(t.ops);
  msg_bytes_.merge(t.msg_bytes);
  wait_us_.merge(t.wait_us);
  query_us_.merge(t.query_us);
  for (const LinkMetrics& l : report.links) {
    // Each report's doubles are deterministic per run; quantizing them to
    // integer picoseconds before summing keeps the aggregate commutative.
    LinkAgg& a = links_[{l.name, l.dir}];
    a.msgs += l.msgs;
    a.busy_pico += static_cast<std::uint64_t>(std::llround(l.busy_us * 1e6));
    a.queue_pico += static_cast<std::uint64_t>(std::llround(l.queue_us * 1e6));
  }
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  runs_ = 0;
  max_nranks_ = 0;
  max_makespan_us_ = 0;
  totals_ = OpCounters{};
  msg_bytes_ = Log2Histogram{};
  wait_us_ = Log2Histogram{};
  query_us_ = Log2Histogram{};
  links_.clear();
}

std::uint64_t MetricsRegistry::runs() const {
  std::lock_guard lk(mu_);
  return runs_;
}

OpCounters MetricsRegistry::totals() const {
  std::lock_guard lk(mu_);
  return totals_;
}

std::vector<MetricsRegistry::LinkTotals> MetricsRegistry::link_totals()
    const {
  std::lock_guard lk(mu_);
  std::vector<LinkTotals> out;
  out.reserve(links_.size());
  for (const auto& [key, agg] : links_) {
    LinkTotals t;
    t.name = key.first;
    t.dir = key.second;
    t.msgs = agg.msgs;
    t.busy_pico = agg.busy_pico;
    t.queue_pico = agg.queue_pico;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::vector<std::string>> MetricsRegistry::csv_rows() const {
  std::lock_guard lk(mu_);
  std::vector<Row> rows;
  rows.push_back({"section", "id", "metric", "value"});
  counter_rows(rows, "total", "", totals_);
  rows.push_back({"total", "", "runs", fmt_u64(runs_)});
  rows.push_back({"total", "", "max_nranks", std::to_string(max_nranks_)});
  rows.push_back({"total", "", "max_makespan_us", fmt_f64(max_makespan_us_)});
  hist_rows(rows, "hist_msg_bytes", msg_bytes_);
  hist_rows(rows, "hist_wait_us", wait_us_);
  hist_rows(rows, "hist_query_us", query_us_);
  for (const auto& [key, agg] : links_) {
    const std::string id = key.first + ":" + std::to_string(key.second);
    rows.push_back({"link", id, "msgs", fmt_u64(agg.msgs)});
    rows.push_back({"link", id, "busy_us",
                    fmt_f64(static_cast<double>(agg.busy_pico) * 1e-6)});
    rows.push_back({"link", id, "queue_us",
                    fmt_f64(static_cast<double>(agg.queue_pico) * 1e-6)});
  }
  return rows;
}

Status MetricsRegistry::write_csv(const std::string& path) const {
  return write_metrics_csv(path, csv_rows());
}

Status write_metrics_csv(const std::string& path,
                         const std::vector<std::vector<std::string>>& rows) {
  return write_csv_file(path, rows);
}

}  // namespace mrl::runtime
