#include "runtime/fiber.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/status.hpp"

// ---------------------------------------------------------------------------
// Build-configuration detection.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define MRL_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MRL_FIBER_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define MRL_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MRL_FIBER_TSAN 1
#endif
#endif

// Hand-rolled switch on x86-64; POSIX swapcontext() everywhere else.
// MRL_FIBER_FORCE_UCONTEXT forces the fallback (used to test that path on
// x86-64 hosts).
#if defined(__x86_64__) && !defined(MRL_FIBER_FORCE_UCONTEXT)
#define MRL_FIBER_ASM 1
#else
#include <ucontext.h>
#endif

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

#if defined(MRL_FIBER_ASAN)
extern "C" {
// Declared here instead of including <sanitizer/common_interface_defs.h> so
// non-sanitized builds need no sanitizer headers at all.
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
void __asan_unpoison_memory_region(const volatile void* addr, std::size_t size);
}
#endif

namespace mrl::runtime {

bool fibers_supported() {
#if defined(MRL_FIBER_TSAN)
  return false;
#else
  return true;
#endif
}

namespace {

std::atomic<std::size_t> g_stack_pool_slab_bytes{64 * 1024 * 1024};

// Called first thing on a fiber's stack, for both trampoline flavors:
// completes the sanitizer's view of the inbound switch.
inline void finish_first_entry_switch() {
#if defined(MRL_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

// ---------------------------------------------------------------------------
// StackPool: process-wide pooled fiber stacks (DESIGN.md §12).
//
// One size class per distinct slot size; each class carves slabs of
// ~stack_pool_slab_bytes() into equal slots and keeps released slots on a
// freelist. Slabs are never unmapped: pooled stacks are meant for engines
// that come and go (sweeps construct thousands), so the pages a run faulted
// in stay resident for the next engine instead of being returned and
// re-zeroed by the kernel. A leaked singleton — like MetricsRegistry — so
// fibers destroyed during static destruction can still release their slots.
// ---------------------------------------------------------------------------

class StackPool {
 public:
  static StackPool& instance() {
    static StackPool* pool = new StackPool;  // leaked deliberately
    return *pool;
  }

  void* acquire(std::size_t slot_bytes) {
    std::lock_guard lk(mu_);
    SizeClass& sc = class_for_locked(slot_bytes);
    if (sc.free.empty()) carve_slab_locked(sc);
    void* slot = sc.free.back();
    sc.free.pop_back();
    return slot;
  }

  void release(void* slot, std::size_t slot_bytes) {
#if defined(MRL_FIBER_ASAN)
    // The dead fiber's parked frames left poisoned redzones in shadow
    // memory; munmap would have cleared them, the freelist must too, or the
    // slot's next owner trips over ghost redzones.
    __asan_unpoison_memory_region(slot, slot_bytes);
#endif
    std::lock_guard lk(mu_);
    class_for_locked(slot_bytes).free.push_back(slot);
  }

  [[nodiscard]] StackPoolStats stats() {
    std::lock_guard lk(mu_);
    StackPoolStats st;
    st.slabs = slabs_;
    st.total_slots = total_slots_;
    for (const SizeClass& sc : classes_) st.free_slots += sc.free.size();
    return st;
  }

  void trim() {
    std::lock_guard lk(mu_);
    for (SizeClass& sc : classes_) {
      for (void* slot : sc.free) {
        // Slot addresses are page-aligned (slabs are page-aligned and slot
        // sizes are page multiples), so the advice covers exactly this slot.
        ::madvise(slot, sc.slot_bytes, MADV_DONTNEED);
      }
    }
  }

 private:
  struct SizeClass {
    std::size_t slot_bytes = 0;
    std::vector<void*> free;
  };

  SizeClass& class_for_locked(std::size_t slot_bytes) {
    for (SizeClass& sc : classes_) {
      if (sc.slot_bytes == slot_bytes) return sc;
    }
    SizeClass& sc = classes_.emplace_back();
    sc.slot_bytes = slot_bytes;
    return sc;
  }

  void carve_slab_locked(SizeClass& sc) {
    std::size_t nslots =
        g_stack_pool_slab_bytes.load(std::memory_order_relaxed) /
        sc.slot_bytes;
    if (nslots == 0) nslots = 1;  // slot bigger than the slab target
    const std::size_t bytes = nslots * sc.slot_bytes;
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    MRL_CHECK_MSG(mem != MAP_FAILED, "stack pool slab mmap failed");
    ++slabs_;
    total_slots_ += nslots;
    // Push in reverse so acquire() hands out ascending addresses — nicer
    // fault locality when a fresh engine touches every stack top in rank
    // order.
    for (std::size_t i = nslots; i-- > 0;) {
      sc.free.push_back(static_cast<char*>(mem) + i * sc.slot_bytes);
    }
  }

  std::mutex mu_;
  std::vector<SizeClass> classes_;
  std::size_t slabs_ = 0;
  std::size_t total_slots_ = 0;
};

}  // namespace

std::size_t stack_pool_slab_bytes() {
  return g_stack_pool_slab_bytes.load(std::memory_order_relaxed);
}

void set_stack_pool_slab_bytes(std::size_t bytes) {
  MRL_CHECK(bytes > 0);
  g_stack_pool_slab_bytes.store(bytes, std::memory_order_relaxed);
}

StackPoolStats stack_pool_stats() { return StackPool::instance().stats(); }

void stack_pool_trim() { StackPool::instance().trim(); }

void Fiber::run_entry_for_trampoline() {
  finish_first_entry_switch();
  entry_(arg_);
  MRL_CHECK_MSG(false, "fiber entry returned (it must suspend forever)");
}

// ---------------------------------------------------------------------------
// x86-64 backend: save/restore the SysV callee-saved state by hand.
// ---------------------------------------------------------------------------

#if defined(MRL_FIBER_ASM)

// mrl_fiber_swap(void** save_sp, void* load_sp):
//   pushes rbp rbx r12-r15 + the x87/SSE control words onto the current
//   stack, parks rsp in *save_sp, adopts load_sp, restores the same state
//   from there and returns on the new stack. A freshly created fiber's
//   "restore area" is crafted by Fiber::init_context() so the final ret
//   lands in mrl_fiber_entry_thunk with r12 = the Fiber*.
asm(R"(
.text
.align 16
.globl mrl_fiber_swap
.hidden mrl_fiber_swap
.type mrl_fiber_swap, @function
mrl_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr 4(%rsp)
    fnstcw  (%rsp)
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    fldcw   (%rsp)
    ldmxcsr 4(%rsp)
    addq  $8, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
.size mrl_fiber_swap, .-mrl_fiber_swap

.align 16
.globl mrl_fiber_entry_thunk
.hidden mrl_fiber_entry_thunk
.type mrl_fiber_entry_thunk, @function
mrl_fiber_entry_thunk:
    movq  %r12, %rdi
    pushq %rax
    callq mrl_fiber_entry_c
    ud2
.size mrl_fiber_entry_thunk, .-mrl_fiber_entry_thunk
)");

extern "C" void mrl_fiber_swap(void** save_sp, void* load_sp);
extern "C" void mrl_fiber_entry_thunk();

#else  // ucontext backend

namespace {

// makecontext() only forwards ints: split the Fiber* into two 32-bit halves.
void ucontext_trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(bits)->run_entry_for_trampoline();
}

}  // namespace

#endif

extern "C" [[noreturn]] void mrl_fiber_entry_c(void* fiber);
extern "C" void mrl_fiber_entry_c(void* fiber) {
  static_cast<Fiber*>(fiber)->run_entry_for_trampoline();
  __builtin_unreachable();
}

// ---------------------------------------------------------------------------
// Common: stack allocation, adoption, switching.
// ---------------------------------------------------------------------------

Fiber::~Fiber() {
  if (stack_mem_ != nullptr) {
    if (pooled_) {
      StackPool::instance().release(stack_mem_, stack_total_);
    } else {
      ::munmap(stack_mem_, stack_total_);
    }
  }
#if !defined(MRL_FIBER_ASM)
  delete static_cast<ucontext_t*>(uctx_);
#endif
}

void Fiber::create(std::size_t stack_bytes, void (*entry)(void*), void* arg,
                   bool guard) {
  MRL_CHECK_MSG(stack_mem_ == nullptr, "fiber already created");
  MRL_CHECK_MSG(fibers_supported(),
                "fiber backend is unavailable in this build (TSan)");
  entry_ = entry;
  arg_ = arg;

  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  std::size_t usable = (stack_bytes + page - 1) & ~(page - 1);
  if (usable < 4 * page) usable = 4 * page;  // floor for the entry frames
  guard_bytes_ = guard ? page : 0;
  void* mem = ::mmap(nullptr, usable + guard_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  MRL_CHECK_MSG(mem != MAP_FAILED, "fiber stack mmap failed");
  if (guard) {
    // Guard page at the low end: stacks grow down, so running off the end
    // faults here instead of scribbling over the neighboring mapping.
    // Skipped (guard=false) for 100k+-rank worlds: each PROT_NONE page
    // splits off two VMAs and vm.max_map_count caps the process at ~65k.
    MRL_CHECK(::mprotect(mem, page, PROT_NONE) == 0);
  }
  stack_mem_ = mem;
  stack_total_ = usable + guard_bytes_;
  init_context(static_cast<char*>(mem) + guard_bytes_, usable);
}

void Fiber::create_pooled(std::size_t stack_bytes, void (*entry)(void*),
                          void* arg) {
  MRL_CHECK_MSG(stack_mem_ == nullptr, "fiber already created");
  MRL_CHECK_MSG(fibers_supported(),
                "fiber backend is unavailable in this build (TSan)");
  entry_ = entry;
  arg_ = arg;

  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  std::size_t usable = (stack_bytes + page - 1) & ~(page - 1);
  if (usable < 4 * page) usable = 4 * page;  // floor for the entry frames
  guard_bytes_ = 0;
  pooled_ = true;
  stack_mem_ = StackPool::instance().acquire(usable);
  stack_total_ = usable;
  init_context(static_cast<char*>(stack_mem_), usable);
}

void Fiber::init_context(char* lo, std::size_t usable) {
#if defined(MRL_FIBER_ASAN)
  asan_bottom_ = lo;
  asan_size_ = usable;
#endif

#if defined(MRL_FIBER_ASM)
  // Craft the restore area mrl_fiber_swap() expects, so the first switch-in
  // "returns" into mrl_fiber_entry_thunk with r12 = this. Layout ascending
  // from the parked rsp: [fcw|mxcsr] r15 r14 r13 r12 rbx rbp [ret addr].
  // Alignment: top is page-aligned; after the thunk address is popped by
  // ret, rsp == top-8, i.e. the standard rsp%16==8 function-entry state.
  std::uint64_t fpu = 0;
  asm volatile("fnstcw %0" : "=m"(*reinterpret_cast<std::uint16_t*>(&fpu)));
  std::uint32_t mxcsr = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  fpu |= static_cast<std::uint64_t>(mxcsr) << 32;

  auto* sp = static_cast<std::uint64_t*>(static_cast<void*>(lo + usable));
  *--sp = 0;  // fake caller frame; terminates backtraces
  *--sp = reinterpret_cast<std::uint64_t>(&mrl_fiber_entry_thunk);
  *--sp = 0;                                     // rbp
  *--sp = 0;                                     // rbx
  *--sp = reinterpret_cast<std::uint64_t>(this); // r12
  *--sp = 0;                                     // r13
  *--sp = 0;                                     // r14
  *--sp = 0;                                     // r15
  *--sp = fpu;                                   // fcw @+0, mxcsr @+4
  sp_ = sp;
#else
  auto* ctx = new ucontext_t;
  MRL_CHECK(::getcontext(ctx) == 0);
  ctx->uc_stack.ss_sp = lo;
  ctx->uc_stack.ss_size = usable;
  ctx->uc_link = nullptr;
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(ctx, reinterpret_cast<void (*)()>(&ucontext_trampoline), 2,
                static_cast<unsigned>(bits >> 32),
                static_cast<unsigned>(bits & 0xffffffffu));
  uctx_ = ctx;
#endif
}

// ---------------------------------------------------------------------------
// Stack high-water-mark accounting (metrics runs only).
// ---------------------------------------------------------------------------

namespace {

// Sentinel written over untouched stack bytes. Deliberately not 0x00/0xFF:
// freshly mapped pages are zero and common fill patterns are all-ones, so
// either would mistake real stores for untouched stack.
constexpr unsigned char kStackPoison = 0xA5;

#if defined(MRL_FIBER_ASAN)
#define MRL_NO_ASAN __attribute__((no_sanitize_address))
#else
#define MRL_NO_ASAN
#endif

// Parked fibers hold live frames whose ASan redzones are poisoned, so the
// scan must be exempt from instrumentation and must not call (interceptable)
// libc. Returns the first byte in [lo, hi) that differs from the sentinel,
// i.e. the deepest point execution reached (stacks grow down).
MRL_NO_ASAN const unsigned char* scan_first_touched(const unsigned char* lo,
                                                    const unsigned char* hi) {
  const unsigned char* p = lo;
  while (p < hi && *p == kStackPoison) ++p;
  return p;
}

#undef MRL_NO_ASAN

}  // namespace

void Fiber::poison_stack() {
  MRL_CHECK_MSG(stack_mem_ != nullptr, "poison_stack before create");
  char* lo = static_cast<char*>(stack_mem_) + guard_bytes_;
#if defined(MRL_FIBER_ASM)
  // Everything below the crafted restore area is virgin stack (for a pooled
  // slot: everything the previous tenant may have scribbled).
  const std::size_t fill = static_cast<std::size_t>(
      static_cast<char*>(sp_) - lo);
#else
  // makecontext() parked its trampoline frame near the top; leave a margin
  // so the fill cannot clobber it.
  const std::size_t usable = stack_total_ - guard_bytes_;
  constexpr std::size_t kUcontextMargin = 512;
  const std::size_t fill = usable > kUcontextMargin ? usable - kUcontextMargin
                                                    : 0;
#endif
  std::memset(lo, kStackPoison, fill);
  poisoned_ = true;
}

std::size_t Fiber::stack_high_water_bytes() const {
  if (!poisoned_ || stack_mem_ == nullptr) return 0;
  const auto* lo =
      reinterpret_cast<const unsigned char*>(stack_mem_) + guard_bytes_;
  const std::size_t usable = stack_total_ - guard_bytes_;
  const unsigned char* hi = lo + usable;
  const unsigned char* first = scan_first_touched(lo, hi);
  return static_cast<std::size_t>(hi - first);
}

std::size_t Fiber::stack_usable_bytes() const {
  if (stack_mem_ == nullptr) return 0;
  return stack_total_ - guard_bytes_;
}

void Fiber::adopt_thread() {
  MRL_CHECK_MSG(stack_mem_ == nullptr,
                "cannot adopt a thread into a created fiber");
#if !defined(MRL_FIBER_ASM)
  if (uctx_ == nullptr) uctx_ = new ucontext_t;  // filled by swapcontext()
#endif
#if defined(MRL_FIBER_ASAN)
  // ASan needs the native stack's bounds to switch back onto it.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      asan_bottom_ = addr;
      asan_size_ = size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
}

void Fiber::switch_to(Fiber& from, Fiber& to) {
#if defined(MRL_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&from.asan_fake_, to.asan_bottom_,
                                 to.asan_size_);
#endif
#if defined(MRL_FIBER_ASM)
  mrl_fiber_swap(&from.sp_, to.sp_);
#else
  MRL_CHECK(::swapcontext(static_cast<ucontext_t*>(from.uctx_),
                          static_cast<ucontext_t*>(to.uctx_)) == 0);
#endif
#if defined(MRL_FIBER_ASAN)
  // Control came back to `from` (possibly much later): restore its fake
  // stack. The bounds of whatever context we arrived from are tracked by
  // its own Fiber record, so the out-params are not needed.
  __sanitizer_finish_switch_fiber(from.asan_fake_, nullptr, nullptr);
#endif
}

}  // namespace mrl::runtime
