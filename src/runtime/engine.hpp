// Deterministic cooperative rank engine (conservative parallel discrete-event
// simulation, sequentialized).
//
// Each rank is a real OS thread running real application code, but exactly
// one rank thread executes at a time (a baton). Every fabric-visible action
// goes through Engine::perform(), which re-queues the caller and grants the
// baton to the runnable rank with the smallest virtual clock. Actions
// therefore execute in global virtual-time order, which makes link contention
// causally correct and the whole simulation bit-reproducible.
//
// Blocking operations (receives, signal waits) use Engine::wait() with a
// condition closure that returns the wake-up virtual time once satisfiable.
// If every live rank is blocked, the engine reports a deadlock instead of
// hanging — with each rank's self-described wait reason.
//
// Scheduling hot paths (sweeps call run() thousands of times):
//   * rank threads are spawned once, on the first run(), and parked between
//     runs — repeated run() calls reuse the pool instead of re-spawning
//     nranks OS threads per grid point;
//   * baton handoff is targeted: only the granted rank's condition variable
//     is signaled (a rank whose wait condition becomes satisfiable is
//     re-queued but its thread stays asleep until actually granted);
//   * the scheduler selects the min-clock rank from an incrementally
//     maintained ready list instead of rescanning all ranks, and blocked
//     -condition re-evaluation is skipped entirely while no rank is blocked.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/platform.hpp"
#include "simnet/time.hpp"
#include "simnet/trace.hpp"
#include "util/status.hpp"

namespace mrl::runtime {

class Engine;

/// Per-rank execution context. Handed by reference to the rank body; valid
/// only for the duration of Engine::run().
class Rank {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] simnet::TimeUs now() const { return clock_; }

  /// Charges local compute time (the only way user code consumes virtual
  /// time outside communication).
  void advance(double dt_us) {
    MRL_CHECK(dt_us >= 0.0);
    clock_ += dt_us;
  }

  /// Endpoint hosting this rank on the platform topology.
  [[nodiscard]] int endpoint() const { return endpoint_; }

  /// Compute-time multiplier from fault injection (1.0 unless this rank is
  /// a straggler). Communication layers apply it in their compute() helpers;
  /// advance() itself is unscaled because it also implements absolute-time
  /// waits (flush/quiet completion), which are not compute.
  [[nodiscard]] double compute_scale() const { return compute_scale_; }

  /// Sender-side synchronization epoch (bumped by comm layers at each sync;
  /// the trace uses it to compute messages-per-sync).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }

  [[nodiscard]] Engine& engine() const { return *engine_; }

  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

 private:
  friend class Engine;
  Rank() = default;

  Engine* engine_ = nullptr;
  int id_ = -1;
  int size_ = 0;
  int endpoint_ = -1;
  simnet::TimeUs clock_ = 0;
  std::uint64_t epoch_ = 0;
  double compute_scale_ = 1.0;

  enum class State { kReady, kRunning, kBlocked, kDone };
  State state_ = State::kReady;
  simnet::TimeUs wake_ = 0;  ///< scheduling priority while kReady
  const std::function<std::optional<double>()>* cond_ = nullptr;
  const char* what_ = "";  ///< wait description for deadlock reports
  std::condition_variable cv_;
};

struct EngineOptions {
  bool trace = false;                ///< record every message
  bool reset_fabric_each_run = true; ///< clear contention state per run()
  /// Virtual-time progress watchdog: when a rank's clock passes this limit
  /// at a communication operation (perform/wait), the run is converted into
  /// Status(kTimeout) with per-rank diagnostics instead of spinning forever
  /// (e.g. a CAS retry storm that never wins under injected faults). The
  /// watchdog only observes communication ops — a body that loops without
  /// ever touching the engine is outside its contract. 0 disables it.
  double watchdog_virtual_us = 1e9;
};

struct RunResult {
  Status status;
  simnet::TimeUs makespan_us = 0;  ///< max final rank clock
  std::vector<simnet::TimeUs> rank_end_us;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// The engine: owns the platform fabric, the trace, and rank scheduling.
class Engine {
 public:
  Engine(simnet::Platform platform, int nranks, EngineOptions opt = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `body` on every rank to completion (or deadlock/exception).
  /// May be called repeatedly; rank clocks, epochs, and the trace reset at
  /// each call, and fabric contention state resets too unless EngineOptions
  /// says otherwise. Rank threads persist across calls.
  RunResult run(const std::function<void(Rank&)>& body);

  [[nodiscard]] const simnet::Platform& platform() const { return platform_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] simnet::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] simnet::Trace& trace() { return trace_; }

  // --- protocol for communication layers (called from rank threads) ---

  /// Executes `fn` under the global virtual-time ordering: the calling rank
  /// yields, is re-granted when it has the minimum clock among runnable
  /// ranks, and runs `fn` while holding the engine lock. After `fn`, blocked
  /// ranks' wait conditions are re-evaluated.
  void perform(Rank& r, const std::function<void()>& fn);

  /// Blocks until `cond` returns a wake time; advances the rank clock to
  /// max(clock, wake). `cond` is evaluated under the engine lock and must be
  /// monotonic: once satisfiable it stays satisfiable. `what` labels the
  /// wait in deadlock reports. If `finalize` is non-null it runs under the
  /// engine lock immediately after the clock update (e.g. to consume the
  /// matched message atomically with the wake decision).
  void wait(Rank& r, const char* what,
            const std::function<std::optional<double>()>& cond,
            const std::function<void()>& finalize = {});

 private:
  struct AbortException {};

  void worker_main(int id);
  void rank_main(int id);
  void schedule_locked();
  void wake_satisfied_locked();
  void check_abort_locked(const Rank& r) const;
  void check_watchdog_locked(const Rank& r);
  void set_state_locked(Rank& r, Rank::State s);

  simnet::Platform platform_;
  int nranks_;
  EngineOptions opt_;
  std::unique_ptr<simnet::Fabric> fabric_;
  simnet::Trace trace_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Rank>> ranks_;  // created once, reset per run

  // Persistent worker pool (lazily spawned by the first run()).
  std::vector<std::thread> threads_;
  const std::function<void(Rank&)>* body_ = nullptr;
  std::uint64_t run_gen_ = 0;  ///< bumped per run(); workers key off it
  bool shutdown_ = false;

  // Scheduler state, reset per run. ready_ holds exactly the ids whose
  // state is kReady; blocked_count_ counts kBlocked ranks.
  std::vector<int> ready_;
  int blocked_count_ = 0;
  int granted_ = -1;
  int done_count_ = 0;
  bool abort_ = false;
  ErrorCode abort_code_ = ErrorCode::kDeadlock;
  std::string abort_reason_;
  std::string body_error_;
  std::condition_variable run_cv_;
};

}  // namespace mrl::runtime
