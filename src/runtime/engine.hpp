// Deterministic cooperative rank engine (conservative parallel discrete-event
// simulation, sequentialized).
//
// Each rank runs real application code, but exactly one rank executes at a
// time (a baton). Every fabric-visible action goes through Engine::perform(),
// which re-queues the caller and grants the baton to the runnable rank with
// the smallest virtual clock. Actions therefore execute in global
// virtual-time order, which makes link contention causally correct and the
// whole simulation bit-reproducible.
//
// Blocking operations (receives, signal waits) use Engine::wait() with a
// condition closure that returns the wake-up virtual time once satisfiable.
// If every live rank is blocked, the engine reports a deadlock instead of
// hanging — with each rank's self-described wait reason.
//
// Execution backends (EngineOptions::backend, DESIGN.md §8):
//   * kFibers (default) — every rank is a stackful user-level fiber
//     (runtime/fiber.{hpp,cpp}) and the whole engine runs on ONE OS thread.
//     perform()/wait() hand the baton over with a direct user-space context
//     switch: no mutex, no condvar, no kernel involvement. Because a fiber
//     is just a stack (a few hundred KiB of lazily committed, guard-paged
//     virtual memory), rank counts in the thousands are practical where the
//     thread backend would exhaust OS resources.
//   * kThreads — the legacy backend: each rank is a parked OS thread and the
//     baton is a targeted mutex/condvar handoff. Kept selectable because
//     ThreadSanitizer cannot follow user-level context switches (TSan CI
//     pins this backend) and as the reference for the abl_design
//     fibers-vs-threads dispatch ablation.
// Both backends drive the identical scheduler state machine in the identical
// order, so virtual times, traces, and CSVs are bit-identical across them
// (asserted by runtime/core tests).
//
// Scheduling hot paths (sweeps call run() thousands of times):
//   * rank fibers/threads are created once, on the first run(), and parked
//     between runs — repeated run() calls reuse them instead of recreating
//     nranks execution contexts per grid point;
//   * baton handoff is targeted: only the granted rank resumes (a rank whose
//     wait condition becomes satisfiable is re-queued but stays suspended
//     until actually granted), and on the fiber backend a rank that remains
//     the min-clock runnable rank continues with no switch at all;
//   * the scheduler selects the min-clock rank from an indexed binary
//     min-heap keyed (wake time, rank id) — push/erase/top are O(log n) with
//     a per-rank position index, so dispatch cost no longer scales with the
//     number of runnable ranks (DESIGN.md §10). Ties break toward the lowest
//     rank id, exactly the order the legacy linear scan produced, so output
//     is bit-identical to it (SchedulerKind::kLinearScan keeps the legacy
//     structure selectable for the abl_design ablation and as a
//     differential-testing oracle);
//   * blocked-condition re-evaluation walks a dedicated blocked-rank index —
//     only actual waiters are visited, never all ranks — and is skipped
//     entirely while no rank is blocked;
//   * collective-style AND p2p waits carry a WaitGate (a monotone counter +
//     threshold): gated waiters are parked in a per-counter threshold heap
//     and their conditions are not re-evaluated at all until the counter
//     reaches the threshold. Without this, a P-rank barrier/fence wave costs
//     Σ|blocked| ≈ P²/2 condition closures (minutes of wall time at 100k
//     ranks); with it a wave is O(P log P) (DESIGN.md §10, §12);
//   * the scheduler's per-rank hot fields (clock, wake, state, gate slot,
//     wait condition) live in parallel flat arrays indexed by rank id — a
//     structure-of-arrays layout — instead of pointer-chased per-rank
//     objects, so dispatch and wake walks touch a few contiguous cache
//     lines per rank instead of a heap object each (DESIGN.md §12).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/checker.hpp"
#include "runtime/fiber.hpp"
#include "runtime/metrics.hpp"
#include "simnet/fabric.hpp"
#include "simnet/platform.hpp"
#include "simnet/spans.hpp"
#include "simnet/time.hpp"
#include "simnet/trace.hpp"
#include "util/indexed_heap.hpp"
#include "util/status.hpp"

namespace mrl::runtime {

class Engine;

/// Rank execution backend (see the header comment and DESIGN.md §8).
enum class EngineBackend {
  kFibers,   ///< stackful fibers, one OS thread, user-space baton handoff
  kThreads,  ///< one parked OS thread per rank, mutex/condvar baton handoff
};

[[nodiscard]] const char* to_string(EngineBackend b);

/// Ready-queue data structure (DESIGN.md §10).
enum class SchedulerKind {
  kIndexedHeap,  ///< indexed binary min-heap over (wake, id); O(log n) dispatch
  kLinearScan,   ///< legacy O(ranks) scan + std::find removal (ablation oracle)
};

[[nodiscard]] const char* to_string(SchedulerKind s);

/// Process-wide default scheduler for newly built EngineOptions (initially
/// kIndexedHeap). Both produce bit-identical simulations; the linear scan is
/// kept for the abl_design dispatch ablation and differential tests.
[[nodiscard]] SchedulerKind default_scheduler();
void set_default_scheduler(SchedulerKind s);

/// Process-wide default backend for newly built EngineOptions. Starts at
/// kFibers (coerced to kThreads in builds where fibers are unsupported,
/// e.g. TSan); CLI/bench `--backend` flags override it.
[[nodiscard]] EngineBackend default_backend();
void set_default_backend(EngineBackend b);

/// Process-wide default for EngineOptions::watchdog_virtual_us (initially
/// 1e9). CLI/bench `--watchdog-us` flags override it; 0 disables the
/// watchdog.
[[nodiscard]] double default_watchdog_virtual_us();
void set_default_watchdog_virtual_us(double us);

/// Process-wide default for EngineOptions::fiber_stack_bytes (initially
/// 256 KiB). Lowering it makes very-high-rank-count runs cheaper, which
/// matters when metrics-enabled runs poison whole stacks for the HWM scan.
[[nodiscard]] std::size_t default_fiber_stack_bytes();
void set_default_fiber_stack_bytes(std::size_t bytes);

/// Process-wide default for EngineOptions::stack_pool (initially true).
/// When on, fiber stacks are carved from pooled slabs (runtime/fiber.hpp:
/// StackPool — one mmap per slab instead of per fiber); `--stack-pool 0`
/// restores mmap-per-fiber with optional guard pages.
[[nodiscard]] bool default_stack_pool();
void set_default_stack_pool(bool on);

/// Process-wide default for EngineOptions::trace (initially false; workloads
/// that derive summaries from the trace force it on per-engine regardless).
/// The CLI/bench `--trace`/`--profile` flags flip it so engines constructed
/// outside the workload wrappers also record.
[[nodiscard]] bool default_trace();
void set_default_trace(bool on);

/// Process-wide default for EngineOptions::spans (initially false). The
/// CLI/bench `--trace`/`--profile` flags flip it on (DESIGN.md §14).
[[nodiscard]] bool default_spans();
void set_default_spans(bool on);

/// Optional re-evaluation hint for Engine::wait (DESIGN.md §10, §12).
/// `counter` points at a monotonically nondecreasing std::uint64_t (e.g. a
/// collective generation, or a per-(src,dst) message sequence number) that
/// only changes inside Engine::perform bodies and outlives the wait. The
/// contract: the wait condition is unsatisfiable while
/// `*counter < threshold`, and the condition can only BECOME satisfiable in
/// a perform that also advances the counter. Gated waiters skip per-perform
/// condition re-evaluation entirely — the engine parks them in a per-counter
/// threshold heap and only evaluates the condition when the counter crosses
/// the threshold, turning O(P²) collective/recv waves into O(P log P). If
/// the condition is still unsatisfiable at the crossing (e.g. a message
/// arrived on the gated channel but with a non-matching tag), the waiter is
/// re-parked at the counter's current value + 1 — the next advance re-tests
/// it. Collective generations satisfy the stricter "satisfiable at
/// threshold" property and never re-park. A default-constructed gate (null
/// counter) means "no hint": the condition is re-evaluated after every
/// perform, as always. The linear-scan scheduler ignores gates, preserving
/// the legacy brute-force behaviour as a differential-testing oracle.
struct WaitGate {
  const std::uint64_t* counter = nullptr;
  std::uint64_t threshold = 0;
};

/// Per-rank execution context. Handed by reference to the rank body; valid
/// only for the duration of Engine::run().
///
/// Rank itself carries only the cold, mostly-immutable identity fields; the
/// scheduler-hot mutable state (clock, wake, run state, gate slot, wait
/// condition) lives in the Engine's SoA arrays indexed by id() — now() and
/// advance() are inline delegates (defined after Engine). This keeps a
/// million Rank objects at ~56 B each and keeps the dispatch working set in
/// flat arrays.
class Rank {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] simnet::TimeUs now() const;

  /// Charges local compute time (the only way user code consumes virtual
  /// time outside communication).
  void advance(double dt_us);

  /// Endpoint hosting this rank on the platform topology.
  [[nodiscard]] int endpoint() const { return endpoint_; }

  /// Compute-time multiplier from fault injection (1.0 unless this rank is
  /// a straggler). Communication layers apply it in their compute() helpers;
  /// advance() itself is unscaled because it also implements absolute-time
  /// waits (flush/quiet completion), which are not compute.
  [[nodiscard]] double compute_scale() const { return compute_scale_; }

  /// Sender-side synchronization epoch (bumped by comm layers at each sync;
  /// the trace uses it to compute messages-per-sync, and the metrics layer
  /// counts it as one synchronization). Defined after Engine.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  void bump_epoch();

  [[nodiscard]] Engine& engine() const { return *engine_; }

  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

 private:
  friend class Engine;
  Rank() = default;

  Engine* engine_ = nullptr;
  int id_ = -1;
  int size_ = 0;
  int endpoint_ = -1;
  std::uint64_t epoch_ = 0;
  double compute_scale_ = 1.0;
  /// Last blocking wait this rank entered (and when, in virtual time) —
  /// survives the wait itself, so watchdog/deadlock reports can say what a
  /// stuck-or-finished rank last blocked on, not just who is blocked now.
  const char* last_wait_what_ = nullptr;
  simnet::TimeUs last_wait_t_ = 0;
};

struct EngineOptions {
  bool trace = default_trace();      ///< record every message
  /// Record per-rank execution spans (simnet/spans.hpp, DESIGN.md §14) for
  /// the profiler and critical-path analyzer. Like metrics: off by default,
  /// one branch per hook when disabled, and never perturbs simulated time —
  /// enabling it leaves every CSV byte-identical.
  bool spans = default_spans();
  bool reset_fabric_each_run = true; ///< clear contention state per run()
  /// Virtual-time progress watchdog: when a rank's clock passes this limit
  /// at a communication operation (perform/wait), the run is converted into
  /// Status(kTimeout) with per-rank diagnostics instead of spinning forever
  /// (e.g. a CAS retry storm that never wins under injected faults). The
  /// watchdog only observes communication ops — a body that loops without
  /// ever touching the engine is outside its contract. 0 disables it.
  double watchdog_virtual_us = default_watchdog_virtual_us();
  /// Rank execution backend. kFibers is coerced to kThreads in builds where
  /// fibers are unsupported (TSan — see fibers_supported()).
  EngineBackend backend = default_backend();
  /// Ready-queue structure. kIndexedHeap and kLinearScan produce bit-identical
  /// simulations; the linear scan exists for ablation and differential tests.
  SchedulerKind scheduler = default_scheduler();
  /// Usable stack bytes per rank fiber (fiber backend only). Stacks are
  /// lazily committed virtual memory with a guard page, so thousands of
  /// ranks are cheap; raise this for rank bodies with deep call chains or
  /// large stack frames.
  std::size_t fiber_stack_bytes = default_fiber_stack_bytes();
  /// Carve fiber stacks out of a pooled slab (one big mmap, recycled slots)
  /// instead of one mmap per fiber (DESIGN.md §12). Defaults to the
  /// process-wide default (on); mmap-per-fiber remains selectable for the
  /// guard-paged debugging configuration and the abl ablation.
  bool stack_pool = default_stack_pool();
  /// Collect deterministic per-rank/per-link metrics (DESIGN.md §9) and, on
  /// the fiber backend, per-fiber stack high-water-marks. Disabled metrics
  /// cost one branch per hook and change no simulated time either way.
  bool metrics = default_metrics();
  /// Run the RMA race & synchronization checker (DESIGN.md §11). Like
  /// metrics: off by default, one branch per hook when disabled, and never
  /// perturbs simulated time — enabling it leaves every CSV byte-identical.
  /// Violations turn an otherwise-ok run into Status(kFailedPrecondition).
  bool check = check::default_check();
  /// Shadow-history cap per (window, owner-rank) region for the checker.
  std::uint64_t check_history = check::default_check_history();
};

struct RunResult {
  Status status;
  simnet::TimeUs makespan_us = 0;  ///< max final rank clock
  std::vector<simnet::TimeUs> rank_end_us;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// The engine: owns the platform fabric, the trace, and rank scheduling.
class Engine {
 public:
  Engine(simnet::Platform platform, int nranks, EngineOptions opt = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `body` on every rank to completion (or deadlock/exception).
  /// May be called repeatedly; rank clocks, epochs, and the trace reset at
  /// each call, and fabric contention state resets too unless EngineOptions
  /// says otherwise. Rank fibers/threads persist across calls. A reentrant
  /// call (from a rank body, or concurrently from another thread) returns
  /// Status(kInvalidArgument) instead of starting.
  RunResult run(const std::function<void(Rank&)>& body);

  [[nodiscard]] const simnet::Platform& platform() const { return platform_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  /// Backend actually in use (after any TSan coercion).
  [[nodiscard]] EngineBackend backend() const { return opt_.backend; }
  [[nodiscard]] SchedulerKind scheduler() const { return opt_.scheduler; }
  [[nodiscard]] simnet::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] simnet::Trace& trace() { return trace_; }
  [[nodiscard]] simnet::Spans& spans() { return spans_; }
  [[nodiscard]] const simnet::Spans& spans() const { return spans_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] check::Checker& checker() { return checker_; }
  [[nodiscard]] const check::Checker& checker() const { return checker_; }

  /// Records one fabric-visible message into the trace AND the metrics
  /// collector (the single choke point that keeps the two in agreement).
  /// `is_get` marks round trips that pull bytes toward the issuing rank.
  void record_msg(const simnet::MsgRecord& rec, bool is_get = false) {
    trace_.record(rec);
    metrics_.on_msg(rec, is_get);
  }

  /// Records one blocking-advance execution span (DESIGN.md §14): the rank's
  /// clock advanced from `t0` to now inside a communication round trip or
  /// drain (get/atomic/flush/quiet/send-drain) without parking in the
  /// engine. `q_us`/`s_us` carry the fabric's queueing/serialization share
  /// of the interval; the remainder is latency. No-op unless spans are on.
  void record_advance_span(Rank& r, simnet::SpanKind kind, simnet::TimeUs t0,
                           int peer, std::uint64_t bytes, double q_us = 0,
                           double s_us = 0) {
    if (!opt_.spans) return;
    simnet::SpanRecord sp;
    sp.rank = r.id();
    sp.peer = peer;
    sp.kind = kind;
    sp.t_begin = t0;
    sp.t_end = r.now();
    sp.bytes = bytes;
    sp.q_us = q_us;
    sp.s_us = s_us;
    spans_.record(sp);
  }

  /// Snapshot of the last completed run: per-rank counters/histograms,
  /// per-link utilization/queueing, makespan and (fiber backend) stack
  /// high-water-marks. Empty sections when metrics are disabled.
  [[nodiscard]] MetricsReport metrics_report() const;

  /// Per-fiber stack high-water-marks in rank order. Empty on the thread
  /// backend or when metrics are disabled (stacks are only poisoned — and
  /// therefore measurable — on metrics-enabled fiber runs).
  [[nodiscard]] std::vector<std::size_t> stack_high_water_bytes() const;

  // --- protocol for communication layers (called from rank contexts) ---

  /// Executes `fn` under the global virtual-time ordering: the calling rank
  /// yields, is re-granted when it has the minimum clock among runnable
  /// ranks, and runs `fn` while the engine is quiescent. After `fn`, blocked
  /// ranks' wait conditions are re-evaluated.
  void perform(Rank& r, const std::function<void()>& fn);

  /// Blocks until `cond` returns a wake time; advances the rank clock to
  /// max(clock, wake). `cond` is evaluated while the engine is quiescent and
  /// must be monotonic: once satisfiable it stays satisfiable. `what` labels
  /// the wait in deadlock reports. If `finalize` is non-null it runs
  /// immediately after the clock update (e.g. to consume the matched message
  /// atomically with the wake decision). `gate`, when non-null, is a
  /// monotone-counter re-evaluation hint (see WaitGate): the engine will not
  /// re-test `cond` until `*gate.counter >= gate.threshold`.
  void wait(Rank& r, const char* what,
            const std::function<std::optional<double>()>& cond,
            const std::function<void()>& finalize = {},
            WaitGate gate = {});

  /// Aborts the current run with `code` from inside a perform body or rank
  /// context (used by the checker for collective mismatches, where letting
  /// the run continue would crash on mismatched payloads). Does not return:
  /// unwinds the calling rank via the same abort machinery as the watchdog.
  [[noreturn]] void abort_run(Rank& r, ErrorCode code, std::string reason);

 private:
  friend class Rank;

  struct AbortException {};
  struct FiberStart {
    Engine* engine = nullptr;
    int id = -1;
  };

  enum class RankState : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  /// rank_slot_ sentinel values (>= 0 is a position in blocked_).
  static constexpr std::int32_t kSlotNone = -1;
  static constexpr std::int32_t kSlotGated = -2;

  // Shared scheduler state machine (naturally serialized on the fiber
  // backend; guarded by mu_ on the thread backend — the _locked suffix
  // refers to that contract).
  void reset_run_state_locked(const std::function<void(Rank&)>& body);
  RunResult collect_result_locked();
  void set_state_locked(int id, RankState s);
  [[nodiscard]] int pick_min_ready_locked() const;
  /// Records the causal edge for a wait about to be re-queued: the satisfier
  /// is the rank currently holding the baton (granted_ — the perform or
  /// finalize that made the condition satisfiable).
  void note_wake_cause_locked(std::size_t waiter) {
    if (!opt_.spans) return;
    rank_cause_rank_[waiter] = granted_;
    rank_cause_t_[waiter] = rank_clock_[static_cast<std::size_t>(granted_)];
    // A satisfier inside a wait finalize has its own wait span still pending
    // (recorded after the finalize returns): count it, so the backward walk
    // resumes past that span instead of mistaking it for compute.
    rank_cause_nspans_[waiter] =
        spans_.rank_count(granted_) + (finalize_rank_ == granted_ ? 1u : 0u);
  }
  /// Appends the last few recorded spans of the first few blocked ranks to a
  /// deadlock/watchdog report (spans enabled only; terminal path).
  void append_span_tails_locked(std::ostringstream& os) const;
  void note_deadlock_locked();
  void note_body_error_locked(int id, const char* what);
  void wake_satisfied_locked();
  void check_abort_locked(const Rank& r) const;
  void check_watchdog_locked(const Rank& r);
  void notify_all_ranks_locked();

  // Thread backend.
  RunResult run_threads(const std::function<void(Rank&)>& body);
  void worker_main(int id);
  void rank_main(int id);
  void schedule_locked();
  void thread_perform(Rank& r, const std::function<void()>& fn);
  void thread_wait(Rank& r, const char* what,
                   const std::function<std::optional<double>()>& cond,
                   const std::function<void()>& finalize, WaitGate gate);

  // Fiber backend.
  RunResult run_fibers(const std::function<void(Rank&)>& body);
  static void fiber_entry(void* start);
  void fiber_worker(int id);
  void fiber_yield(Rank& r);
  void fiber_exit_run(Rank& r);
  void fiber_perform(Rank& r, const std::function<void()>& fn);
  void fiber_wait(Rank& r, const char* what,
                  const std::function<std::optional<double>()>& cond,
                  const std::function<void()>& finalize, WaitGate gate);

  // WaitGate registration (kIndexedHeap only; the linear scan ignores
  // gates). One channel per distinct counter pointer with live waiters;
  // gate_index_ maps counter pointer -> gates_ slot so registration is O(1)
  // even when thousands of p2p channels are gated at once.
  void register_gated_waiter_locked(int id, WaitGate gate);
  void wake_gated_locked();

  simnet::Platform platform_;
  int nranks_;
  EngineOptions opt_;
  std::unique_ptr<simnet::Fabric> fabric_;
  simnet::Trace trace_;
  simnet::Spans spans_;
  Metrics metrics_;
  check::Checker checker_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Rank>> ranks_;  // cold identity, reset per run

  // SoA rank hot fields, indexed by rank id (DESIGN.md §12). Exactly the
  // state the scheduler reads in its dispatch/wake loops; sized once at
  // construction, reset per run.
  std::vector<simnet::TimeUs> rank_clock_;
  std::vector<simnet::TimeUs> rank_wake_;  ///< scheduling priority while kReady
  std::vector<RankState> rank_state_;
  /// kBlocked bookkeeping: >= 0 is this rank's slot in blocked_, kSlotGated
  /// means parked in a gate channel (NOT in blocked_), kSlotNone otherwise.
  std::vector<std::int32_t> rank_slot_;
  std::vector<const std::function<std::optional<double>()>*> rank_cond_;
  std::vector<const char*> rank_what_;  ///< wait label for deadlock reports
  /// Causal wake edge per rank (spans enabled only, else unsized): who
  /// satisfied this rank's current wait, at what virtual time, and how many
  /// of the satisfier's spans preceded the action (SpanRecord::cause_*).
  /// Reset to -1 at each wait entry; written at re-queue time.
  std::vector<std::int32_t> rank_cause_rank_;
  std::vector<simnet::TimeUs> rank_cause_t_;
  std::vector<std::uint32_t> rank_cause_nspans_;

  /// run() in progress (reentrancy guard; atomic so a concurrent run()
  /// attempt from another thread is also rejected instead of racing).
  std::atomic<bool> running_{false};

  // Persistent thread-backend worker pool (lazily spawned by the first
  // thread-backend run()). Per-rank condvars live here — outside Rank — so
  // the fiber backend never pays 48 B × ranks for machinery it cannot use.
  std::vector<std::thread> threads_;
  std::unique_ptr<std::condition_variable[]> thread_cvs_;
  const std::function<void(Rank&)>* body_ = nullptr;
  std::uint64_t run_gen_ = 0;  ///< bumped per run(); workers key off it
  bool shutdown_ = false;

  // Persistent fiber-backend contexts (lazily created by the first
  // fiber-backend run()). main_fiber_ is the context of whichever thread is
  // inside run(); rank fibers park between runs suspended in
  // fiber_exit_run().
  Fiber main_fiber_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<FiberStart> fiber_start_;

  // Scheduler state, reset per run. Exactly the ids whose state is kReady
  // live in ready_heap_ (kIndexedHeap) or ready_ (kLinearScan); exactly the
  // kBlocked ids live in blocked_ (kIndexedHeap — the blocked-rank index
  // that wake_satisfied_locked walks instead of all ranks), and
  // blocked_count_ counts them under either scheduler.
  util::IndexedMinHeap<simnet::TimeUs> ready_heap_;
  std::vector<int> ready_;
  std::vector<int> blocked_;
  int blocked_count_ = 0;
  // Gated waiters (WaitGate, kIndexedHeap only): one channel per distinct
  // monotone counter, waiters ordered by (threshold, rank id) so equal
  // thresholds drain in ascending rank order. Channels with no waiters are
  // swap-removed; the whole registry is cleared per run. Gated ranks are
  // kBlocked and counted in blocked_count_ but are NOT in blocked_ — they
  // are re-evaluated only when their counter crosses their threshold.
  struct GateChannel {
    const std::uint64_t* counter = nullptr;
    std::priority_queue<std::pair<std::uint64_t, int>,
                        std::vector<std::pair<std::uint64_t, int>>,
                        std::greater<>>
        waiters;
  };
  std::vector<GateChannel> gates_;
  std::unordered_map<const std::uint64_t*, std::size_t> gate_index_;
  int gated_count_ = 0;
  int granted_ = -1;
  /// Rank currently executing a wait-finalize (engine quiescent; -1 outside
  /// finalizes). Only read by note_wake_cause_locked, see there.
  int finalize_rank_ = -1;
  int done_count_ = 0;
  bool abort_ = false;
  ErrorCode abort_code_ = ErrorCode::kDeadlock;
  std::string abort_reason_;
  std::string body_error_;
  std::condition_variable run_cv_;
};

inline simnet::TimeUs Rank::now() const {
  return engine_->rank_clock_[static_cast<std::size_t>(id_)];
}

inline void Rank::advance(double dt_us) {
  MRL_CHECK(dt_us >= 0.0);
  engine_->rank_clock_[static_cast<std::size_t>(id_)] += dt_us;
}

inline void Rank::bump_epoch() {
  ++epoch_;
  engine_->metrics().on_sync(id_);
}

}  // namespace mrl::runtime
