// Deterministic runtime metrics (DESIGN.md §9).
//
// Two layers, with different determinism contracts:
//
//   * Metrics — the engine-owned per-run collector. Every hook is invoked
//     from a rank context while the engine is quiescent, i.e. in global
//     virtual-time order, so per-rank counters, histograms and blocked-time
//     sums are bit-identical across execution backends and --jobs values
//     for a single run. Zero overhead when disabled: each hook is an inline
//     enabled_ check.
//
//   * MetricsRegistry — the process-wide aggregate that `--metrics out.csv`
//     dumps. Engines publish their per-run reports on run() completion, and
//     under a parallel sweep those publishes arrive in a nondeterministic
//     order. The registry therefore only accumulates quantities that are
//     exactly commutative — u64 counter sums, histogram bucket-count sums,
//     and maxima — never floating-point sums, so its CSV is byte-identical
//     across {fibers,threads} × {--jobs 1,N} (asserted by tests).
//
// Per-fiber stack high-water-marks ride along in MetricsReport but are kept
// out of both csv_rows() and the registry: the thread backend has no fiber
// stacks, and cross-backend identity of the comparable sections is the
// whole point. Export them with stack_csv_rows().
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "simnet/trace.hpp"
#include "util/histogram.hpp"
#include "util/status.hpp"

namespace mrl::runtime {

/// Exact (integer) per-rank counters: commutative under +, safe to
/// aggregate in any order.
struct OpCounters {
  std::uint64_t sends = 0;         ///< two-sided messages issued
  std::uint64_t recvs = 0;         ///< messages/puts delivered to this rank
  std::uint64_t puts = 0;          ///< one-sided puts (incl. put-with-signal)
  std::uint64_t gets = 0;          ///< one-sided get round trips
  std::uint64_t atomics = 0;       ///< CAS / fetch-op round trips
  std::uint64_t cas_failures = 0;  ///< CAS attempts that lost (=> retries)
  std::uint64_t collectives = 0;   ///< collective participations
  std::uint64_t syncs = 0;         ///< synchronization epochs closed
  std::uint64_t waits = 0;         ///< blocking wait entries
  std::uint64_t bytes_sent = 0;    ///< payload bytes issued (sends/puts/atomics)
  std::uint64_t bytes_recv = 0;    ///< payload bytes landed (recvs/gets)
  std::uint64_t drops = 0;         ///< fault-injected drops observed (sender side)
  std::uint64_t violations = 0;    ///< RMA checker findings (DESIGN.md §11)

  void add(const OpCounters& o);
  /// Fabric-visible operations — equals the trace record count for layers
  /// that trace every op (MPI; SHMEM gets are metrics-only, see DESIGN §9).
  [[nodiscard]] std::uint64_t fabric_ops() const {
    return sends + puts + gets + atomics;
  }
};

/// Everything one rank accumulated over one engine run.
struct RankMetrics {
  OpCounters ops;
  double blocked_us = 0;       ///< virtual time spent inside Engine::wait
  Log2Histogram msg_bytes;     ///< issued-message payload sizes
  Log2Histogram wait_us;       ///< per-wait virtual durations
  Log2Histogram query_us;      ///< per-query serving latencies (embedding)
};

/// One direction of one physical link.
struct LinkMetrics {
  std::string name;
  int link = 0;
  int dir = 0;
  std::uint64_t msgs = 0;  ///< messages that claimed a lane on this dlink
  double busy_us = 0;      ///< lane-hold time (utilization = busy/makespan)
  double queue_us = 0;     ///< head-of-line wait for a free lane
};

/// Snapshot of one completed engine run.
struct MetricsReport {
  int nranks = 0;
  double makespan_us = 0;
  std::vector<RankMetrics> ranks;
  std::vector<LinkMetrics> links;
  /// Per-fiber stack high-water-marks (fiber backend only; else empty).
  std::vector<std::size_t> stack_hwm_bytes;
  std::size_t stack_usable_bytes = 0;

  /// Deterministic whole-run totals (fixed rank-id accumulation order).
  [[nodiscard]] RankMetrics totals() const;

  /// Long-format CSV: header then total/rank/link/hist sections. Excludes
  /// the stack section so the rows are backend-independent.
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;
  /// Stack-HWM section rows (same column layout, no header).
  [[nodiscard]] std::vector<std::vector<std::string>> stack_csv_rows() const;
  [[nodiscard]] std::string to_json() const;
};

/// Engine-owned collector. The engine serializes every hook call.
class Metrics {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Re-dimensions and zeroes per-rank state (start of each run).
  void reset(int nranks);

  /// One fabric-visible message (mirrors Trace::record). `is_get` marks
  /// round trips that pull bytes toward the issuing rank.
  void on_msg(const simnet::MsgRecord& rec, bool is_get) {
    if (enabled_) on_msg_slow(rec, is_get);
  }
  /// Delivery of `bytes` payload bytes to `rank` (recv match, applied put).
  void on_recv(int rank, std::uint64_t bytes) {
    if (!enabled_) return;
    RankMetrics& m = rank_at(rank);
    ++m.ops.recvs;
    m.ops.bytes_recv += bytes;
  }
  /// SHMEM-style get that bypasses the trace entirely.
  void on_get(int rank, std::uint64_t bytes) {
    if (!enabled_) return;
    RankMetrics& m = rank_at(rank);
    ++m.ops.gets;
    m.ops.bytes_recv += bytes;
    m.msg_bytes.add(static_cast<double>(bytes));
  }
  /// Outcome of one CAS attempt; a loss means the caller must retry.
  void on_cas_attempt(int rank, bool won) {
    if (!enabled_) return;
    if (!won) ++rank_at(rank).ops.cas_failures;
  }
  void on_collective(int rank) {
    if (!enabled_) return;
    ++rank_at(rank).ops.collectives;
  }
  void on_sync(int rank) {
    if (!enabled_) return;
    ++rank_at(rank).ops.syncs;
  }
  /// One Engine::wait completed after `blocked_us` of virtual time.
  void on_wait(int rank, double blocked_us) {
    if (enabled_) on_wait_slow(rank, blocked_us);
  }
  /// RMA checker findings attributed to `rank` (added once, at run end, so
  /// the counter is exact whether the run finished or was aborted).
  void on_violations(int rank, std::uint64_t n) {
    if (!enabled_) return;
    rank_at(rank).ops.violations += n;
  }
  /// One served query completed after `latency_us` of virtual time
  /// (serving-style workloads: the embedding lookup bench).
  void on_query(int rank, double latency_us) {
    if (!enabled_) return;
    rank_at(rank).query_us.add(latency_us);
  }

  [[nodiscard]] const std::vector<RankMetrics>& ranks() const {
    return ranks_;
  }

 private:
  RankMetrics& rank_at(int rank) {
    return ranks_[static_cast<std::size_t>(rank)];
  }
  void on_msg_slow(const simnet::MsgRecord& rec, bool is_get);
  void on_wait_slow(int rank, double blocked_us);

  bool enabled_ = false;
  std::vector<RankMetrics> ranks_;
};

/// Process-wide default for EngineOptions::metrics (initially false).
/// CLI/bench `--metrics` flags flip it on.
[[nodiscard]] bool default_metrics();
void set_default_metrics(bool on);

/// Order-independent process-wide aggregate of every published run.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Thread-safe; called by Engine::run on successful metrics-enabled runs.
  void publish(const MetricsReport& report);
  void reset();

  [[nodiscard]] std::uint64_t runs() const;
  /// Aggregate op-counter totals across every published run (exact u64 sums;
  /// the perf harness derives simulated-ops/sec from these).
  [[nodiscard]] OpCounters totals() const;

  /// One link type's aggregate across all published runs, keyed by
  /// (spec name, direction) — parallel links sharing a spec merge. Times
  /// accumulate as integer picoseconds (llround(us * 1e6)) so the sums are
  /// commutative: publish order (backend, job count) cannot change them.
  struct LinkTotals {
    std::string name;
    int dir = 0;
    std::uint64_t msgs = 0;
    std::uint64_t busy_pico = 0;
    std::uint64_t queue_pico = 0;
    [[nodiscard]] double busy_us() const {
      return static_cast<double>(busy_pico) * 1e-6;
    }
    [[nodiscard]] double queue_us() const {
      return static_cast<double>(queue_pico) * 1e-6;
    }
  };
  /// Sorted by (name, dir); deterministic regardless of publish order.
  [[nodiscard]] std::vector<LinkTotals> link_totals() const;

  /// CSV of the aggregate (total + histogram + link sections). Every cell
  /// derives from commutative accumulation, so the bytes are independent of
  /// publish order — i.e. of backend and job count.
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;
  Status write_csv(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  struct LinkAgg {
    std::uint64_t msgs = 0;
    std::uint64_t busy_pico = 0;
    std::uint64_t queue_pico = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t runs_ = 0;
  int max_nranks_ = 0;
  double max_makespan_us_ = 0;  ///< max is exact, unlike a double sum
  OpCounters totals_;
  Log2Histogram msg_bytes_;
  Log2Histogram wait_us_;
  Log2Histogram query_us_;
  std::map<std::pair<std::string, int>, LinkAgg> links_;
};

/// Writes report/registry rows to `path` (thin write_csv_file wrapper).
Status write_metrics_csv(const std::string& path,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace mrl::runtime
