#include "runtime/profiler.hpp"

#include <cmath>
#include <fstream>
#include <utility>

#include "runtime/engine.hpp"
#include "simnet/critpath.hpp"
#include "simnet/topology.hpp"
#include "util/log.hpp"

namespace mrl::runtime {

namespace {

std::mutex g_trace_ranks_mu;
TraceRanks g_trace_ranks;

std::uint64_t pico(double us) {
  return static_cast<std::uint64_t>(std::llround(us * 1e6));
}

simnet::RunCapture build_capture(Engine& e, const RunResult& res) {
  simnet::RunCapture c;
  c.nranks = e.nranks();
  c.makespan_us = res.makespan_us;
  c.rank_end_us = res.rank_end_us;
  c.msgs = e.trace().records();
  c.spans = e.spans().records();
  const simnet::Topology& topo = e.fabric().topology();
  c.dlink_names.reserve(static_cast<std::size_t>(topo.num_links()) * 2);
  for (int l = 0; l < topo.num_links(); ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      c.dlink_names.push_back(topo.link(l).name + (dir != 0 ? "/1" : "/0"));
    }
  }
  return c;
}

template <typename T>
int cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

int cmp_msgs(const simnet::RecordStore& a, const simnet::RecordStore& b) {
  if (int c = cmp3(a.size(), b.size())) return c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const simnet::MsgRecord& x = a[i];
    const simnet::MsgRecord& y = b[i];
    if (int c = cmp3(x.src_rank, y.src_rank)) return c;
    if (int c = cmp3(x.dst_rank, y.dst_rank)) return c;
    if (int c = cmp3(x.bytes, y.bytes)) return c;
    if (int c = cmp3(static_cast<int>(x.kind), static_cast<int>(y.kind)))
      return c;
    if (int c = cmp3(x.epoch, y.epoch)) return c;
    if (int c = cmp3(x.t_issue, y.t_issue)) return c;
    if (int c = cmp3(x.t_arrival, y.t_arrival)) return c;
    if (int c = cmp3(x.drops, y.drops)) return c;
    if (int c = cmp3(x.q_us, y.q_us)) return c;
    if (int c = cmp3(x.s_us, y.s_us)) return c;
    if (int c = cmp3(x.dlink, y.dlink)) return c;
  }
  return 0;
}

int cmp_spans(const simnet::SpanStore& a, const simnet::SpanStore& b) {
  if (int c = cmp3(a.size(), b.size())) return c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const simnet::SpanRecord& x = a[i];
    const simnet::SpanRecord& y = b[i];
    if (int c = cmp3(x.rank, y.rank)) return c;
    if (int c = cmp3(x.peer, y.peer)) return c;
    if (int c = cmp3(static_cast<int>(x.kind), static_cast<int>(y.kind)))
      return c;
    if (int c = cmp3(x.t_begin, y.t_begin)) return c;
    if (int c = cmp3(x.t_end, y.t_end)) return c;
    if (int c = cmp3(x.cause_t, y.cause_t)) return c;
    if (int c = cmp3(x.cause_nspans, y.cause_nspans)) return c;
    if (int c = cmp3(x.bytes, y.bytes)) return c;
    if (int c = cmp3(x.gate, y.gate)) return c;
    if (int c = cmp3(x.q_us, y.q_us)) return c;
    if (int c = cmp3(x.s_us, y.s_us)) return c;
  }
  return 0;
}

/// Total order over captures with equal keys, so the winner is independent
/// of the (nondeterministic) order offers arrive in under --jobs N.
int cmp_capture(const simnet::RunCapture& a, const simnet::RunCapture& b) {
  if (int c = cmp3(a.nranks, b.nranks)) return c;
  if (int c = cmp3(a.makespan_us, b.makespan_us)) return c;
  if (int c = cmp3(a.rank_end_us, b.rank_end_us)) return c;
  if (int c = cmp_msgs(a.msgs, b.msgs)) return c;
  if (int c = cmp_spans(a.spans, b.spans)) return c;
  return cmp3(a.dlink_names, b.dlink_names);
}

}  // namespace

TraceRanks default_trace_ranks() {
  std::lock_guard<std::mutex> lk(g_trace_ranks_mu);
  return g_trace_ranks;
}

void set_default_trace_ranks(TraceRanks r) {
  std::lock_guard<std::mutex> lk(g_trace_ranks_mu);
  g_trace_ranks = r;
}

ProfileCapture& ProfileCapture::instance() {
  static ProfileCapture* const inst = new ProfileCapture();
  return *inst;
}

void ProfileCapture::offer(Engine& e, const RunResult& res) {
  const std::array<std::uint64_t, 4> key{
      pico(res.makespan_us), static_cast<std::uint64_t>(e.nranks()),
      static_cast<std::uint64_t>(e.spans().records().size()),
      static_cast<std::uint64_t>(e.trace().records().size())};
  std::lock_guard<std::mutex> lk(mu_);
  if (has_ && key < key_) return;
  if (has_ && key == key_) {
    // Exact key tie: keep the elementwise-smaller capture. Ties are rare
    // (identical-makespan grid points), so materializing the candidate here
    // is fine; what matters is that the outcome is order-independent.
    simnet::RunCapture cand = build_capture(e, res);
    if (cmp_capture(cand, cap_) < 0) cap_ = std::move(cand);
    return;
  }
  cap_ = build_capture(e, res);
  key_ = key;
  has_ = true;
}

bool ProfileCapture::has_capture() const {
  std::lock_guard<std::mutex> lk(mu_);
  return has_;
}

simnet::RunCapture ProfileCapture::capture() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cap_;
}

void ProfileCapture::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  has_ = false;
  key_ = {};
  cap_ = simnet::RunCapture{};
}

bool dump_captured_trace(const std::string& path, const std::string& format) {
  if (!ProfileCapture::instance().has_capture()) {
    MRL_LOG_WARN("--trace: no spans-enabled run completed; nothing to write");
    return false;
  }
  const simnet::RunCapture cap = ProfileCapture::instance().capture();
  const TraceRanks tr = default_trace_ranks();
  if (format == "csv") {
    return export_trace_csv(cap, path, tr.lo, tr.hi);
  }
  return export_capture_chrome(cap, path, tr.lo, tr.hi);
}

bool dump_captured_profile(const std::string& path) {
  if (!ProfileCapture::instance().has_capture()) {
    MRL_LOG_WARN("--profile: no spans-enabled run completed; nothing to write");
    return false;
  }
  const simnet::RunCapture cap = ProfileCapture::instance().capture();
  simnet::CritPathInput in;
  in.nranks = cap.nranks;
  in.msgs = &cap.msgs;
  in.spans = &cap.spans;
  in.rank_end_us = &cap.rank_end_us;
  in.dlink_names = &cap.dlink_names;
  const simnet::CritPathReport rep = simnet::analyze_critical_path(in);
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  f << rep.text;
  return f.good();
}

}  // namespace mrl::runtime
