#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace mrl::runtime {

Engine::Engine(simnet::Platform platform, int nranks, EngineOptions opt)
    : platform_(std::move(platform)), nranks_(nranks), opt_(opt) {
  MRL_CHECK(nranks_ >= 1);
  MRL_CHECK_MSG(nranks_ <= platform_.max_ranks(),
                "more ranks than the platform can host");
  fabric_ = platform_.make_fabric();
  trace_.set_enabled(opt_.trace);
  ranks_.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i) {
    std::unique_ptr<Rank> r(new Rank());  // ctor is Engine-private
    r->engine_ = this;
    r->id_ = i;
    r->size_ = nranks_;
    r->endpoint_ = platform_.endpoint_of_rank(i, nranks_);
    r->compute_scale_ = fabric_->faults().straggler_scale(i);
    ranks_.push_back(std::move(r));
  }
}

Engine::~Engine() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
    for (auto& r : ranks_) r->cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

RunResult Engine::run(const std::function<void(Rank&)>& body) {
  std::unique_lock lk(mu_);
  MRL_CHECK_MSG(body_ == nullptr, "Engine::run is not reentrant");
  if (opt_.reset_fabric_each_run) fabric_->reset();
  trace_.clear();
  ready_.clear();
  ready_.reserve(static_cast<std::size_t>(nranks_));
  for (auto& r : ranks_) {
    r->clock_ = 0;
    r->epoch_ = 0;
    r->state_ = Rank::State::kReady;
    r->wake_ = 0;
    r->cond_ = nullptr;
    r->what_ = "";
    ready_.push_back(r->id_);
  }
  blocked_count_ = 0;
  granted_ = -1;
  done_count_ = 0;
  abort_ = false;
  abort_code_ = ErrorCode::kDeadlock;
  abort_reason_.clear();
  body_error_.clear();
  body_ = &body;
  ++run_gen_;

  if (threads_.empty()) {
    // Lazy persistent pool: spawned once, parked between runs.
    threads_.reserve(static_cast<std::size_t>(nranks_));
    for (int i = 0; i < nranks_; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  } else {
    for (auto& r : ranks_) r->cv_.notify_one();  // new generation
  }
  schedule_locked();  // grant the first baton
  while (done_count_ != nranks_) run_cv_.wait(lk);
  body_ = nullptr;

  RunResult res;
  res.rank_end_us.reserve(static_cast<std::size_t>(nranks_));
  for (const auto& r : ranks_) {
    res.rank_end_us.push_back(r->clock_);
    res.makespan_us = std::max(res.makespan_us, r->clock_);
  }
  if (!body_error_.empty()) {
    res.status = Status(ErrorCode::kInternal, body_error_);
  } else if (abort_) {
    res.status = Status(abort_code_, abort_reason_);
  }
  return res;
}

void Engine::worker_main(int id) {
  Rank& r = *ranks_[static_cast<std::size_t>(id)];
  std::uint64_t seen_gen = 0;
  std::unique_lock lk(mu_);
  for (;;) {
    while (!shutdown_ && run_gen_ == seen_gen) r.cv_.wait(lk);
    if (shutdown_) return;
    seen_gen = run_gen_;
    lk.unlock();
    rank_main(id);
    lk.lock();
  }
}

void Engine::rank_main(int id) {
  Rank& r = *ranks_[static_cast<std::size_t>(id)];
  {
    std::unique_lock lk(mu_);
    while (granted_ != id && !abort_) r.cv_.wait(lk);
    if (abort_) {
      set_state_locked(r, Rank::State::kDone);
      ++done_count_;
      if (done_count_ == nranks_) run_cv_.notify_all();
      return;
    }
    set_state_locked(r, Rank::State::kRunning);
  }
  try {
    (*body_)(r);
  } catch (const AbortException&) {
    // Engine-initiated unwind (deadlock elsewhere); nothing to record.
  } catch (const std::exception& e) {
    std::lock_guard lk(mu_);
    if (body_error_.empty()) {
      body_error_ =
          "rank " + std::to_string(id) + " threw: " + std::string(e.what());
    }
    abort_ = true;
    abort_reason_ = body_error_;
  } catch (...) {
    std::lock_guard lk(mu_);
    if (body_error_.empty()) {
      body_error_ = "rank " + std::to_string(id) + " threw unknown exception";
    }
    abort_ = true;
    abort_reason_ = body_error_;
  }
  {
    std::lock_guard lk(mu_);
    set_state_locked(r, Rank::State::kDone);
    ++done_count_;
    if (abort_) {
      for (auto& other : ranks_) other->cv_.notify_all();
    }
    if (done_count_ == nranks_) {
      run_cv_.notify_all();
    } else {
      schedule_locked();
    }
  }
}

void Engine::check_abort_locked(const Rank&) const {
  if (abort_) throw AbortException{};
}

void Engine::check_watchdog_locked(const Rank& r) {
  if (opt_.watchdog_virtual_us <= 0 || r.clock_ < opt_.watchdog_virtual_us) {
    return;
  }
  // Livelock: the rank keeps making communication calls but its virtual
  // clock has run past any plausible completion time. Convert the run into
  // a diagnosable timeout instead of spinning forever.
  std::ostringstream os;
  os << "progress watchdog: rank " << r.id_ << " passed the virtual-time "
     << "limit (" << opt_.watchdog_virtual_us << "us) —";
  for (const auto& other : ranks_) {
    os << " rank " << other->id_ << " at t=" << other->clock_ << "us";
    switch (other->state_) {
      case Rank::State::kBlocked:
        os << " [blocked on " << other->what_ << "]";
        break;
      case Rank::State::kDone: os << " [done]"; break;
      default: os << " [runnable]"; break;
    }
    os << ";";
  }
  abort_ = true;
  abort_code_ = ErrorCode::kTimeout;
  abort_reason_ = os.str();
  MRL_LOG_ERROR("%s", abort_reason_.c_str());
  for (auto& other : ranks_) other->cv_.notify_all();
  throw AbortException{};
}

void Engine::set_state_locked(Rank& r, Rank::State s) {
  if (r.state_ == s) return;
  if (r.state_ == Rank::State::kReady) {
    const auto it = std::find(ready_.begin(), ready_.end(), r.id_);
    MRL_CHECK(it != ready_.end());
    *it = ready_.back();
    ready_.pop_back();
  } else if (r.state_ == Rank::State::kBlocked) {
    --blocked_count_;
  }
  r.state_ = s;
  if (s == Rank::State::kReady) {
    ready_.push_back(r.id_);
  } else if (s == Rank::State::kBlocked) {
    ++blocked_count_;
  }
}

void Engine::schedule_locked() {
  if (abort_) {
    for (auto& r : ranks_) r->cv_.notify_all();
    return;
  }
  // Min (wake, id) over the incrementally maintained ready list — for the
  // dominant 2-rank sweeps this inspects one or two entries, never all
  // ranks. Ties break toward the lowest rank id (deterministic order).
  int best = -1;
  simnet::TimeUs best_wake = 0;
  for (const int id : ready_) {
    const Rank& r = *ranks_[static_cast<std::size_t>(id)];
    if (best == -1 || r.wake_ < best_wake ||
        (r.wake_ == best_wake && id < best)) {
      best = id;
      best_wake = r.wake_;
    }
  }
  if (best != -1) {
    granted_ = best;
    // Targeted handoff: only the granted rank's thread is woken.
    ranks_[static_cast<std::size_t>(best)]->cv_.notify_one();
    return;
  }
  // No runnable rank. If anyone is still blocked, that's a deadlock.
  if (done_count_ < nranks_) {
    std::ostringstream os;
    os << "deadlock: all live ranks are blocked —";
    for (const auto& r : ranks_) {
      if (r->state_ == Rank::State::kBlocked) {
        os << " rank " << r->id_ << " waiting on [" << r->what_ << "] at t="
           << r->clock_ << "us;";
      }
    }
    abort_ = true;
    abort_reason_ = os.str();
    MRL_LOG_ERROR("%s", abort_reason_.c_str());
    for (auto& r : ranks_) r->cv_.notify_all();
  }
}

void Engine::wake_satisfied_locked() {
  // Re-queue satisfiable waiters without waking their threads: the wake hint
  // becomes their scheduling priority, and schedule_locked() signals them
  // if and when they are actually granted the baton.
  if (blocked_count_ == 0) return;
  int remaining = blocked_count_;
  for (auto& r : ranks_) {
    if (remaining == 0) break;
    if (r->state_ != Rank::State::kBlocked) continue;
    --remaining;
    MRL_CHECK(r->cond_ != nullptr);
    if (auto w = (*r->cond_)()) {
      r->wake_ = std::max(r->clock_, *w);
      set_state_locked(*r, Rank::State::kReady);
    }
  }
}

void Engine::perform(Rank& r, const std::function<void()>& fn) {
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  check_watchdog_locked(r);
  r.wake_ = r.clock_;
  set_state_locked(r, Rank::State::kReady);
  schedule_locked();
  while (granted_ != r.id_ && !abort_) {
    r.cv_.wait(lk);
  }
  check_abort_locked(r);
  set_state_locked(r, Rank::State::kRunning);
  fn();
  wake_satisfied_locked();
}

void Engine::wait(Rank& r, const char* what,
                  const std::function<std::optional<double>()>& cond,
                  const std::function<void()>& finalize) {
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  check_watchdog_locked(r);
  // The caller enters holding the baton (it was the granted runner). Only a
  // baton-relinquishing thread may invoke the scheduler; after this thread
  // has been woken from kBlocked it no longer holds the baton and must wait
  // to be granted by the current holder's next yield.
  bool holding = true;
  for (;;) {
    if (auto w = cond()) {
      // Satisfiable: schedule at the wake time, re-evaluate once granted so
      // an earlier-arriving candidate delivered meanwhile wins.
      r.wake_ = std::max(r.clock_, *w);
      set_state_locked(r, Rank::State::kReady);
      if (holding) schedule_locked();
      while (granted_ != r.id_ && !abort_) {
        r.cv_.wait(lk);
      }
      check_abort_locked(r);
      set_state_locked(r, Rank::State::kRunning);
      auto w2 = cond();
      MRL_CHECK_MSG(w2.has_value(),
                    "wait condition became unsatisfiable (must be monotonic)");
      r.clock_ = std::max(r.clock_, *w2);
      if (finalize) {
        finalize();
        wake_satisfied_locked();
      }
      return;
    }
    r.cond_ = &cond;
    r.what_ = what;
    set_state_locked(r, Rank::State::kBlocked);
    if (holding) {
      // May detect a deadlock and set abort_ synchronously.
      schedule_locked();
      holding = false;
    }
    while (r.state_ == Rank::State::kBlocked && !abort_) {
      r.cv_.wait(lk);
    }
    check_abort_locked(r);
    r.cond_ = nullptr;
    // Re-queued as kReady with a wake hint (and possibly already granted);
    // the loop re-evaluates cond and goes through the satisfiable path.
  }
}

}  // namespace mrl::runtime
