#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace mrl::runtime {

Engine::Engine(simnet::Platform platform, int nranks, EngineOptions opt)
    : platform_(std::move(platform)), nranks_(nranks), opt_(opt) {
  MRL_CHECK(nranks_ >= 1);
  MRL_CHECK_MSG(nranks_ <= platform_.max_ranks(),
                "more ranks than the platform can host");
  fabric_ = platform_.make_fabric();
  trace_.set_enabled(opt_.trace);
}

Engine::~Engine() = default;

RunResult Engine::run(const std::function<void(Rank&)>& body) {
  {
    std::lock_guard lk(mu_);
    if (opt_.reset_fabric_each_run) fabric_->reset();
    ranks_.clear();
    for (int i = 0; i < nranks_; ++i) {
      std::unique_ptr<Rank> r(new Rank());  // ctor is Engine-private
      r->engine_ = this;
      r->id_ = i;
      r->size_ = nranks_;
      r->endpoint_ = platform_.endpoint_of_rank(i, nranks_);
      r->state_ = Rank::State::kReady;
      r->wake_ = 0;
      ranks_.push_back(std::move(r));
    }
    granted_ = -1;
    done_count_ = 0;
    abort_ = false;
    abort_reason_.clear();
    body_error_.clear();
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i) {
    threads.emplace_back([this, i, &body] { rank_main(i, body); });
  }
  {
    std::lock_guard lk(mu_);
    schedule_locked();  // grant the first baton
  }
  for (auto& t : threads) t.join();

  RunResult res;
  res.rank_end_us.reserve(static_cast<std::size_t>(nranks_));
  for (const auto& r : ranks_) {
    res.rank_end_us.push_back(r->clock_);
    res.makespan_us = std::max(res.makespan_us, r->clock_);
  }
  if (!body_error_.empty()) {
    res.status = Status(ErrorCode::kInternal, body_error_);
  } else if (abort_) {
    res.status = Status(ErrorCode::kDeadlock, abort_reason_);
  }
  return res;
}

void Engine::rank_main(int id, const std::function<void(Rank&)>& body) {
  Rank& r = *ranks_[static_cast<std::size_t>(id)];
  {
    std::unique_lock lk(mu_);
    while (granted_ != id && !abort_) r.cv_.wait(lk);
    if (abort_) {
      r.state_ = Rank::State::kDone;
      ++done_count_;
      if (done_count_ == nranks_) run_cv_.notify_all();
      return;
    }
    r.state_ = Rank::State::kRunning;
  }
  try {
    body(r);
  } catch (const AbortException&) {
    // Engine-initiated unwind (deadlock elsewhere); nothing to record.
  } catch (const std::exception& e) {
    std::lock_guard lk(mu_);
    if (body_error_.empty()) {
      body_error_ =
          "rank " + std::to_string(id) + " threw: " + std::string(e.what());
    }
    abort_ = true;
    abort_reason_ = body_error_;
  } catch (...) {
    std::lock_guard lk(mu_);
    if (body_error_.empty()) {
      body_error_ = "rank " + std::to_string(id) + " threw unknown exception";
    }
    abort_ = true;
    abort_reason_ = body_error_;
  }
  {
    std::lock_guard lk(mu_);
    r.state_ = Rank::State::kDone;
    ++done_count_;
    if (abort_) {
      for (auto& other : ranks_) other->cv_.notify_all();
    }
    if (done_count_ == nranks_) {
      run_cv_.notify_all();
    } else {
      schedule_locked();
    }
  }
}

void Engine::check_abort_locked(const Rank&) const {
  if (abort_) throw AbortException{};
}

void Engine::schedule_locked() {
  if (abort_) {
    for (auto& r : ranks_) r->cv_.notify_all();
    return;
  }
  int best = -1;
  for (const auto& r : ranks_) {
    if (r->state_ != Rank::State::kReady) continue;
    if (best == -1 || r->wake_ < ranks_[static_cast<std::size_t>(best)]->wake_) {
      best = r->id_;
    }
  }
  if (best != -1) {
    granted_ = best;
    ranks_[static_cast<std::size_t>(best)]->cv_.notify_all();
    return;
  }
  // No runnable rank. If anyone is still blocked, that's a deadlock.
  if (done_count_ < nranks_) {
    std::ostringstream os;
    os << "deadlock: all live ranks are blocked —";
    for (const auto& r : ranks_) {
      if (r->state_ == Rank::State::kBlocked) {
        os << " rank " << r->id_ << " waiting on [" << r->what_ << "] at t="
           << r->clock_ << "us;";
      }
    }
    abort_ = true;
    abort_reason_ = os.str();
    MRL_LOG_ERROR("%s", abort_reason_.c_str());
    for (auto& r : ranks_) r->cv_.notify_all();
  }
}

void Engine::wake_satisfied_locked() {
  for (auto& r : ranks_) {
    if (r->state_ != Rank::State::kBlocked) continue;
    MRL_CHECK(r->cond_ != nullptr);
    if (auto w = (*r->cond_)()) {
      r->state_ = Rank::State::kReady;
      r->wake_ = std::max(r->clock_, *w);
      r->cv_.notify_all();
    }
  }
}

void Engine::perform(Rank& r, const std::function<void()>& fn) {
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  r.state_ = Rank::State::kReady;
  r.wake_ = r.clock_;
  schedule_locked();
  while (granted_ != r.id_ && !abort_) {
    r.cv_.wait(lk);
  }
  check_abort_locked(r);
  r.state_ = Rank::State::kRunning;
  fn();
  wake_satisfied_locked();
}

void Engine::wait(Rank& r, const char* what,
                  const std::function<std::optional<double>()>& cond,
                  const std::function<void()>& finalize) {
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  // The caller enters holding the baton (it was the granted runner). Only a
  // baton-relinquishing thread may invoke the scheduler; after this thread
  // has been woken from kBlocked it no longer holds the baton and must wait
  // to be granted by the current holder's next yield.
  bool holding = true;
  for (;;) {
    if (auto w = cond()) {
      // Satisfiable: schedule at the wake time, re-evaluate once granted so
      // an earlier-arriving candidate delivered meanwhile wins.
      r.state_ = Rank::State::kReady;
      r.wake_ = std::max(r.clock_, *w);
      if (holding) schedule_locked();
      while (granted_ != r.id_ && !abort_) {
        r.cv_.wait(lk);
      }
      check_abort_locked(r);
      r.state_ = Rank::State::kRunning;
      auto w2 = cond();
      MRL_CHECK_MSG(w2.has_value(),
                    "wait condition became unsatisfiable (must be monotonic)");
      r.clock_ = std::max(r.clock_, *w2);
      if (finalize) {
        finalize();
        wake_satisfied_locked();
      }
      return;
    }
    r.state_ = Rank::State::kBlocked;
    r.cond_ = &cond;
    r.what_ = what;
    if (holding) {
      // May detect a deadlock and set abort_ synchronously.
      schedule_locked();
      holding = false;
    }
    while (r.state_ == Rank::State::kBlocked && !abort_) {
      r.cv_.wait(lk);
    }
    check_abort_locked(r);
    r.cond_ = nullptr;
    // Woken as kReady with a wake hint; loop re-evaluates cond and goes
    // through the satisfiable path (acquiring the baton properly).
  }
}

}  // namespace mrl::runtime
