#include "runtime/engine.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/profiler.hpp"
#include "util/log.hpp"

namespace mrl::runtime {

namespace {

std::atomic<EngineBackend> g_default_backend{EngineBackend::kFibers};
std::atomic<SchedulerKind> g_default_scheduler{SchedulerKind::kIndexedHeap};
std::atomic<double> g_default_watchdog_virtual_us{1e9};
std::atomic<std::size_t> g_default_fiber_stack_bytes{256 * 1024};
std::atomic<bool> g_default_stack_pool{true};
std::atomic<bool> g_default_trace{false};
std::atomic<bool> g_default_spans{false};

}  // namespace

const char* to_string(EngineBackend b) {
  return b == EngineBackend::kFibers ? "fibers" : "threads";
}

const char* to_string(SchedulerKind s) {
  return s == SchedulerKind::kIndexedHeap ? "heap" : "linear";
}

SchedulerKind default_scheduler() {
  return g_default_scheduler.load(std::memory_order_relaxed);
}

void set_default_scheduler(SchedulerKind s) {
  g_default_scheduler.store(s, std::memory_order_relaxed);
}

EngineBackend default_backend() {
  const EngineBackend b = g_default_backend.load(std::memory_order_relaxed);
  if (b == EngineBackend::kFibers && !fibers_supported()) {
    return EngineBackend::kThreads;
  }
  return b;
}

void set_default_backend(EngineBackend b) {
  g_default_backend.store(b, std::memory_order_relaxed);
}

double default_watchdog_virtual_us() {
  return g_default_watchdog_virtual_us.load(std::memory_order_relaxed);
}

void set_default_watchdog_virtual_us(double us) {
  g_default_watchdog_virtual_us.store(us, std::memory_order_relaxed);
}

std::size_t default_fiber_stack_bytes() {
  return g_default_fiber_stack_bytes.load(std::memory_order_relaxed);
}

void set_default_fiber_stack_bytes(std::size_t bytes) {
  g_default_fiber_stack_bytes.store(bytes, std::memory_order_relaxed);
}

bool default_stack_pool() {
  return g_default_stack_pool.load(std::memory_order_relaxed);
}

void set_default_stack_pool(bool on) {
  g_default_stack_pool.store(on, std::memory_order_relaxed);
}

bool default_trace() { return g_default_trace.load(std::memory_order_relaxed); }

void set_default_trace(bool on) {
  g_default_trace.store(on, std::memory_order_relaxed);
}

bool default_spans() { return g_default_spans.load(std::memory_order_relaxed); }

void set_default_spans(bool on) {
  g_default_spans.store(on, std::memory_order_relaxed);
}

Engine::Engine(simnet::Platform platform, int nranks, EngineOptions opt)
    : platform_(std::move(platform)), nranks_(nranks), opt_(opt) {
  MRL_CHECK(nranks_ >= 1);
  MRL_CHECK_MSG(nranks_ <= platform_.max_ranks(),
                "more ranks than the platform can host");
  if (opt_.backend == EngineBackend::kFibers && !fibers_supported()) {
    opt_.backend = EngineBackend::kThreads;  // TSan build — see fiber.hpp
  }
  fabric_ = platform_.make_fabric();
  trace_.set_enabled(opt_.trace);
  spans_.set_enabled(opt_.spans);
  metrics_.set_enabled(opt_.metrics);
  checker_.set_enabled(opt_.check);
  checker_.set_history_limit(opt_.check_history);
  const auto n = static_cast<std::size_t>(nranks_);
  ranks_.reserve(n);
  for (int i = 0; i < nranks_; ++i) {
    std::unique_ptr<Rank> r(new Rank());  // ctor is Engine-private
    r->engine_ = this;
    r->id_ = i;
    r->size_ = nranks_;
    r->endpoint_ = platform_.endpoint_of_rank(i, nranks_);
    r->compute_scale_ = fabric_->faults().straggler_scale(i);
    ranks_.push_back(std::move(r));
  }
  rank_clock_.resize(n, 0);
  rank_wake_.resize(n, 0);
  rank_state_.resize(n, RankState::kReady);
  rank_slot_.resize(n, kSlotNone);
  rank_cond_.resize(n, nullptr);
  rank_what_.resize(n, "");
  if (opt_.spans) {
    rank_cause_rank_.resize(n, -1);
    rank_cause_t_.resize(n, 0);
    rank_cause_nspans_.resize(n, 0);
  }
}

Engine::~Engine() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
    notify_all_ranks_locked();
  }
  for (auto& t : threads_) t.join();
  // Fiber-backend contexts park suspended between runs; destroying them just
  // releases their stacks (Fiber::~Fiber — back to the pool, or munmap).
}

void Engine::notify_all_ranks_locked() {
  if (thread_cvs_ == nullptr) return;  // fiber backend: nothing parked on CVs
  for (int i = 0; i < nranks_; ++i) thread_cvs_[i].notify_all();
}

RunResult Engine::run(const std::function<void(Rank&)>& body) {
  if (running_.exchange(true)) {
    // Called from inside a rank body (same thread on the fiber backend, a
    // worker thread on the thread backend) or concurrently from another
    // thread: either would corrupt the in-progress schedule.
    RunResult res;
    res.status = Status(ErrorCode::kInvalidArgument,
                        "Engine::run is not reentrant: a run is already in "
                        "progress on this engine");
    return res;
  }
  RunResult res = opt_.backend == EngineBackend::kFibers ? run_fibers(body)
                                                         : run_threads(body);
  running_.store(false);
  bool checker_verdict = false;
  if (checker_.enabled()) {
    if (res.ok()) {
      // End-of-run sweep (never-completed puts), then convert an otherwise
      // clean run into a checker verdict. The report text is built purely
      // from virtual-time-ordered events, so it is bit-identical across
      // backends, job counts, and schedulers.
      checker_.on_run_end();
      if (checker_.has_violations()) {
        res.status = Status(ErrorCode::kFailedPrecondition, checker_.report());
      }
    }
    checker_verdict = res.status.code() == ErrorCode::kFailedPrecondition;
    if (check::default_check_report() && !checker_.violations().empty()) {
      // The registry sorts at dump time, so the nondeterministic publish
      // order under parallel sweeps cannot perturb the exported JSON bytes.
      check::CheckReportRegistry::instance().publish(checker_.violations());
    }
    const auto& counts = checker_.violation_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) {
        metrics_.on_violations(static_cast<int>(i), counts[i]);
      }
    }
  }
  if (opt_.metrics && (res.ok() || checker_verdict)) {
    // Registry aggregation is restricted to commutative quantities, so the
    // nondeterministic publish order under parallel sweeps cannot perturb
    // the exported bytes (DESIGN.md §9). Checker verdicts still publish:
    // the simulation itself completed, and the CSV is where the violations
    // counter family lands.
    MetricsRegistry::instance().publish(metrics_report());
  }
  if (opt_.spans && (res.ok() || checker_verdict)) {
    // Same gating as the metrics publish: the simulation completed (possibly
    // with a checker verdict), so its trace/spans are a coherent run the
    // profiler may select (DESIGN.md §14).
    ProfileCapture::instance().offer(*this, res);
  }
  return res;
}

MetricsReport Engine::metrics_report() const {
  MetricsReport rep;
  rep.nranks = nranks_;
  if (!metrics_.enabled()) return rep;
  rep.ranks = metrics_.ranks();
  for (const simnet::TimeUs c : rank_clock_) {
    rep.makespan_us = std::max(rep.makespan_us, c);
  }
  const simnet::Topology& topo = fabric_->topology();
  rep.links.reserve(static_cast<std::size_t>(topo.num_links()) * 2);
  for (int l = 0; l < topo.num_links(); ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      rep.links.push_back(LinkMetrics{topo.link(l).name, l, dir,
                                      fabric_->link_msgs(l, dir),
                                      fabric_->link_busy_us(l, dir),
                                      fabric_->link_queue_us(l, dir)});
    }
  }
  rep.stack_hwm_bytes = stack_high_water_bytes();
  if (!fibers_.empty() && fibers_.front()->created()) {
    rep.stack_usable_bytes = fibers_.front()->stack_usable_bytes();
  }
  return rep;
}

std::vector<std::size_t> Engine::stack_high_water_bytes() const {
  std::vector<std::size_t> hwm;
  if (!metrics_.enabled() || opt_.backend != EngineBackend::kFibers ||
      fibers_.empty()) {
    return hwm;
  }
  hwm.reserve(fibers_.size());
  for (const auto& f : fibers_) hwm.push_back(f->stack_high_water_bytes());
  return hwm;
}

// ---------------------------------------------------------------------------
// Scheduler state machine, shared by both backends. "_locked" refers to the
// thread backend's mu_ contract; on the fiber backend everything is naturally
// serialized on one OS thread and the same functions run lock-free.
// ---------------------------------------------------------------------------

void Engine::reset_run_state_locked(const std::function<void(Rank&)>& body) {
  if (opt_.reset_fabric_each_run) fabric_->reset();
  trace_.clear();
  if (opt_.spans) {
    spans_.reset(nranks_);
    std::fill(rank_cause_rank_.begin(), rank_cause_rank_.end(), -1);
    std::fill(rank_cause_t_.begin(), rank_cause_t_.end(), simnet::TimeUs{0});
    std::fill(rank_cause_nspans_.begin(), rank_cause_nspans_.end(), 0u);
  }
  metrics_.reset(nranks_);
  if (checker_.enabled()) checker_.reset(nranks_);
  const bool heap = opt_.scheduler == SchedulerKind::kIndexedHeap;
  ready_.clear();
  blocked_.clear();
  if (heap) {
    ready_heap_.reset(nranks_);
  } else {
    ready_.reserve(static_cast<std::size_t>(nranks_));
  }
  for (int i = 0; i < nranks_; ++i) {
    const auto s = static_cast<std::size_t>(i);
    Rank& r = *ranks_[s];
    r.epoch_ = 0;
    r.last_wait_what_ = nullptr;
    r.last_wait_t_ = 0;
    rank_clock_[s] = 0;
    rank_wake_[s] = 0;
    rank_state_[s] = RankState::kReady;
    rank_slot_[s] = kSlotNone;
    rank_cond_[s] = nullptr;
    rank_what_[s] = "";
    if (heap) {
      ready_heap_.push(i, 0);
    } else {
      ready_.push_back(i);
    }
  }
  blocked_count_ = 0;
  gates_.clear();
  gate_index_.clear();
  gated_count_ = 0;
  granted_ = -1;
  finalize_rank_ = -1;
  done_count_ = 0;
  abort_ = false;
  abort_code_ = ErrorCode::kDeadlock;
  abort_reason_.clear();
  body_error_.clear();
  body_ = &body;
}

RunResult Engine::collect_result_locked() {
  RunResult res;
  res.rank_end_us.reserve(static_cast<std::size_t>(nranks_));
  for (const simnet::TimeUs c : rank_clock_) {
    res.rank_end_us.push_back(c);
    res.makespan_us = std::max(res.makespan_us, c);
  }
  if (!body_error_.empty()) {
    res.status = Status(ErrorCode::kInternal, body_error_);
  } else if (abort_) {
    res.status = Status(abort_code_, abort_reason_);
  }
  return res;
}

void Engine::set_state_locked(int id, RankState s) {
  const auto i = static_cast<std::size_t>(id);
  if (rank_state_[i] == s) return;
  const bool heap = opt_.scheduler == SchedulerKind::kIndexedHeap;
  if (rank_state_[i] == RankState::kReady) {
    if (heap) {
      ready_heap_.erase(id);
    } else {
      const auto it = std::find(ready_.begin(), ready_.end(), id);
      MRL_CHECK(it != ready_.end());
      *it = ready_.back();
      ready_.pop_back();
    }
  } else if (rank_state_[i] == RankState::kBlocked) {
    --blocked_count_;
    if (rank_slot_[i] == kSlotGated) {
      // Parked in a gate channel, not in blocked_. The channel entry is
      // popped by wake_gated_locked (or skipped as stale on abort unwind).
      rank_slot_[i] = kSlotNone;
      --gated_count_;
    } else if (heap) {
      // Swap-remove from the blocked-rank index via the position slot.
      const std::int32_t p = rank_slot_[i];
      MRL_CHECK(p >= 0 && blocked_[static_cast<std::size_t>(p)] == id);
      const int last = blocked_.back();
      blocked_[static_cast<std::size_t>(p)] = last;
      rank_slot_[static_cast<std::size_t>(last)] = p;
      blocked_.pop_back();
      rank_slot_[i] = kSlotNone;
    }
  }
  rank_state_[i] = s;
  if (s == RankState::kReady) {
    // rank_wake_ is always finalized before a rank is (re)queued, so the
    // heap key never changes while the rank sits in the heap.
    if (heap) {
      ready_heap_.push(id, rank_wake_[i]);
    } else {
      ready_.push_back(id);
    }
  } else if (s == RankState::kBlocked) {
    ++blocked_count_;
    if (rank_slot_[i] == kSlotGated) {
      // Caller set the gate slot and registered the (threshold, id) channel
      // entry; the rank stays out of blocked_ so generic re-evaluation
      // skips it.
      ++gated_count_;
    } else if (heap) {
      rank_slot_[i] = static_cast<std::int32_t>(blocked_.size());
      blocked_.push_back(id);
    }
  }
}

int Engine::pick_min_ready_locked() const {
  if (opt_.scheduler == SchedulerKind::kIndexedHeap) {
    // Heap top IS the (wake, id)-lexicographic minimum: same pick, same
    // lowest-rank-id tie-break as the linear scan below, in O(1).
    return ready_heap_.top();
  }
  // Min (wake, id) over the incrementally maintained ready list — for the
  // dominant 2-rank sweeps this inspects one or two entries, never all
  // ranks. Ties break toward the lowest rank id (deterministic order).
  int best = -1;
  simnet::TimeUs best_wake = 0;
  for (const int id : ready_) {
    const simnet::TimeUs w = rank_wake_[static_cast<std::size_t>(id)];
    if (best == -1 || w < best_wake || (w == best_wake && id < best)) {
      best = id;
      best_wake = w;
    }
  }
  return best;
}

void Engine::append_span_tails_locked(std::ostringstream& os) const {
  // Terminal diagnostics only (deadlock/watchdog): the tail of each stuck
  // rank's timeline, so hangs are diagnosable without a separate trace run.
  // One backward scan over the global span store; bounded rank/span counts
  // keep the report readable at 100k+ ranks.
  if (!opt_.spans) return;
  constexpr std::size_t kMaxRanks = 8;
  constexpr std::size_t kMaxSpans = 4;
  std::vector<int> stuck;
  for (int i = 0; i < nranks_ && stuck.size() < kMaxRanks; ++i) {
    if (rank_state_[static_cast<std::size_t>(i)] == RankState::kBlocked) {
      stuck.push_back(i);
    }
  }
  if (stuck.empty()) return;
  const simnet::SpanStore& st = spans_.records();
  std::vector<std::vector<simnet::SpanRecord>> tails(stuck.size());
  std::size_t filled = 0;
  for (std::size_t j = st.size(); j > 0 && filled < stuck.size(); --j) {
    const simnet::SpanRecord& sp = st[j - 1];
    for (std::size_t k = 0; k < stuck.size(); ++k) {
      if (sp.rank != stuck[k] || tails[k].size() >= kMaxSpans) continue;
      tails[k].push_back(sp);
      if (tails[k].size() == kMaxSpans) ++filled;
      break;
    }
  }
  os << " recent spans:";
  for (std::size_t k = 0; k < stuck.size(); ++k) {
    os << " rank " << stuck[k] << " [";
    for (std::size_t i = tails[k].size(); i > 0; --i) {  // oldest first
      const simnet::SpanRecord& sp = tails[k][i - 1];
      os << to_string(sp.kind) << " " << sp.t_begin << ".." << sp.t_end
         << "us";
      if (sp.peer >= 0) os << " peer " << sp.peer;
      if (i > 1) os << ", ";
    }
    os << "];";
  }
}

void Engine::note_deadlock_locked() {
  std::ostringstream os;
  os << "deadlock: all live ranks are blocked —";
  for (int i = 0; i < nranks_; ++i) {
    const auto s = static_cast<std::size_t>(i);
    if (rank_state_[s] == RankState::kBlocked) {
      os << " rank " << i << " waiting on [" << rank_what_[s] << "] at t="
         << rank_clock_[s] << "us;";
    } else if (rank_state_[s] == RankState::kDone) {
      // Finished ranks are often the cause (e.g. a rank that skipped a
      // collective): say what they last blocked on before exiting.
      const Rank& r = *ranks_[s];
      os << " rank " << i << " done at t=" << rank_clock_[s] << "us";
      if (r.last_wait_what_ != nullptr) {
        os << " (last blocked on [" << r.last_wait_what_ << "] at t="
           << r.last_wait_t_ << "us)";
      }
      os << ";";
    }
  }
  if (checker_.enabled()) os << checker_.deadlock_note();
  append_span_tails_locked(os);
  abort_ = true;
  abort_reason_ = os.str();
  MRL_LOG_ERROR("%s", abort_reason_.c_str());
}

void Engine::note_body_error_locked(int id, const char* what) {
  if (body_error_.empty()) {
    body_error_ = what != nullptr
                      ? "rank " + std::to_string(id) + " threw: " + what
                      : "rank " + std::to_string(id) +
                            " threw unknown exception";
  }
  abort_ = true;
  abort_reason_ = body_error_;
}

void Engine::wake_satisfied_locked() {
  // Re-queue satisfiable waiters without resuming them: the wake hint
  // becomes their scheduling priority, and they run if and when they are
  // actually granted the baton.
  //
  // Wait conditions are monotonic and side-effect free (they are evaluated
  // speculatively and repeatedly — see Engine::wait), so the set of woken
  // ranks and their wake times do not depend on evaluation order; only the
  // ready queue's (wake, id) order decides who runs next. That makes the
  // unordered blocked-rank index below observably identical to the legacy
  // ascending-id scan.
  if (blocked_count_ == 0) return;
  if (opt_.scheduler == SchedulerKind::kIndexedHeap) {
    if (gated_count_ > 0) wake_gated_locked();
    // Walk only actual waiters. A wake swap-removes blocked_[i], so the
    // index advances only past ranks that stayed blocked.
    for (std::size_t i = 0; i < blocked_.size();) {
      const int id = blocked_[i];
      const auto s = static_cast<std::size_t>(id);
      MRL_CHECK(rank_cond_[s] != nullptr);
      if (auto w = (*rank_cond_[s])()) {
        rank_wake_[s] = std::max(rank_clock_[s], *w);
        note_wake_cause_locked(s);
        set_state_locked(id, RankState::kReady);
      } else {
        ++i;
      }
    }
    return;
  }
  int remaining = blocked_count_;
  for (int id = 0; id < nranks_ && remaining != 0; ++id) {
    const auto s = static_cast<std::size_t>(id);
    if (rank_state_[s] != RankState::kBlocked) continue;
    --remaining;
    MRL_CHECK(rank_cond_[s] != nullptr);
    if (auto w = (*rank_cond_[s])()) {
      rank_wake_[s] = std::max(rank_clock_[s], *w);
      note_wake_cause_locked(s);
      set_state_locked(id, RankState::kReady);
    }
  }
}

void Engine::register_gated_waiter_locked(int id, WaitGate gate) {
  const auto [it, inserted] = gate_index_.try_emplace(gate.counter, 0);
  if (inserted) {
    it->second = gates_.size();
    GateChannel& ch = gates_.emplace_back();
    ch.counter = gate.counter;
    ch.waiters.emplace(gate.threshold, id);
    return;
  }
  gates_[it->second].waiters.emplace(gate.threshold, id);
}

void Engine::wake_gated_locked() {
  // One raw u64 load per live channel, then pop exactly the waiters whose
  // threshold the counter has reached. Waiters whose threshold is still
  // ahead are never visited — this is what keeps a P-rank wave O(P log P)
  // instead of O(P²). Channel visit order never affects results: waking
  // only pushes into the ready heap, whose (wake, id) order is
  // insertion-order independent.
  for (std::size_t g = 0; g < gates_.size();) {
    GateChannel& ch = gates_[g];
    while (!ch.waiters.empty() && *ch.counter >= ch.waiters.top().first) {
      const int id = ch.waiters.top().second;
      ch.waiters.pop();
      const auto s = static_cast<std::size_t>(id);
      // Stale entries (rank already unwound by an abort, or re-parked and
      // woken via a fresher entry) are skipped.
      if (rank_state_[s] != RankState::kBlocked || rank_slot_[s] != kSlotGated) {
        continue;
      }
      MRL_CHECK(rank_cond_[s] != nullptr);
      if (const auto w = (*rank_cond_[s])()) {
        rank_wake_[s] = std::max(rank_clock_[s], *w);
        note_wake_cause_locked(s);
        set_state_locked(id, RankState::kReady);
      } else {
        // Counter crossed but the condition is still unsatisfiable — e.g. a
        // message arrived on the gated (src,dst) channel with a tag this
        // receive does not match. Re-park at the counter's next value: the
        // WaitGate contract says the condition can only become satisfiable
        // in a perform that advances the counter, so nothing is missed.
        // (The new threshold exceeds the current counter value, so this
        // entry is not re-popped by the drain loop above.)
        ch.waiters.emplace(*ch.counter + 1, id);
      }
    }
    if (ch.waiters.empty()) {
      // Swap-remove the drained channel so dead counters are not loaded
      // (and cannot dangle) on later passes.
      gate_index_.erase(ch.counter);
      if (g + 1 != gates_.size()) {
        gates_[g] = std::move(gates_.back());
        gate_index_[gates_[g].counter] = g;
      }
      gates_.pop_back();
    } else {
      ++g;
    }
  }
}

void Engine::check_abort_locked(const Rank&) const {
  if (abort_) throw AbortException{};
}

void Engine::check_watchdog_locked(const Rank& r) {
  if (opt_.watchdog_virtual_us <= 0 ||
      rank_clock_[static_cast<std::size_t>(r.id_)] < opt_.watchdog_virtual_us) {
    return;
  }
  // Livelock: the rank keeps making communication calls but its virtual
  // clock has run past any plausible completion time. Convert the run into
  // a diagnosable timeout instead of spinning forever.
  std::ostringstream os;
  os << "progress watchdog: rank " << r.id_ << " passed the virtual-time "
     << "limit (" << opt_.watchdog_virtual_us << "us) —";
  for (int i = 0; i < nranks_; ++i) {
    const auto s = static_cast<std::size_t>(i);
    os << " rank " << i << " at t=" << rank_clock_[s] << "us";
    switch (rank_state_[s]) {
      case RankState::kBlocked:
        os << " [blocked on " << rank_what_[s] << "]";
        break;
      case RankState::kDone: os << " [done]"; break;
      default: os << " [runnable]"; break;
    }
    // The last blocking op a runnable-or-done rank entered is usually the
    // protocol step the stuck party is spinning against (e.g. a CAS retry
    // storm): name it and its virtual time.
    const Rank& other = *ranks_[s];
    if (rank_state_[s] != RankState::kBlocked &&
        other.last_wait_what_ != nullptr) {
      os << " (last blocked on [" << other.last_wait_what_ << "] at t="
         << other.last_wait_t_ << "us)";
    }
    os << ";";
  }
  if (checker_.enabled()) os << checker_.deadlock_note();
  append_span_tails_locked(os);
  abort_ = true;
  abort_code_ = ErrorCode::kTimeout;
  abort_reason_ = os.str();
  MRL_LOG_ERROR("%s", abort_reason_.c_str());
  notify_all_ranks_locked();  // thread backend
  throw AbortException{};
}

void Engine::abort_run(Rank&, ErrorCode code, std::string reason) {
  // Called from inside a perform body (the engine is quiescent; on the
  // thread backend mu_ is already held by thread_perform) — same contract
  // and unwind path as check_watchdog_locked.
  abort_ = true;
  abort_code_ = code;
  abort_reason_ = std::move(reason);
  MRL_LOG_ERROR("%s", abort_reason_.c_str());
  notify_all_ranks_locked();  // thread backend
  throw AbortException{};
}

// ---------------------------------------------------------------------------
// Public protocol: dispatch on the backend chosen at construction.
// ---------------------------------------------------------------------------

void Engine::perform(Rank& r, const std::function<void()>& fn) {
  if (opt_.backend == EngineBackend::kFibers) {
    fiber_perform(r, fn);
  } else {
    thread_perform(r, fn);
  }
}

void Engine::wait(Rank& r, const char* what,
                  const std::function<std::optional<double>()>& cond,
                  const std::function<void()>& finalize, WaitGate gate) {
  // Blocked duration is measured in virtual time (the rank clock), so it is
  // identical across backends and job counts by construction.
  const auto s = static_cast<std::size_t>(r.id_);
  const simnet::TimeUs t0 = rank_clock_[s];
  r.last_wait_what_ = what;
  r.last_wait_t_ = t0;
  // Captured before the linear-scan zeroing below: the span's gate field
  // must not depend on the scheduler (byte-identity contract).
  const std::uint64_t gate_thr = gate.counter != nullptr ? gate.threshold : 0;
  if (opt_.spans) rank_cause_rank_[s] = -1;
  // The linear-scan scheduler ignores gates: it brute-force re-evaluates
  // every blocked condition, which is exactly the oracle the cross-scheduler
  // identity tests compare the gated path against.
  if (opt_.scheduler != SchedulerKind::kIndexedHeap) gate = {};
  if (opt_.backend == EngineBackend::kFibers) {
    fiber_wait(r, what, cond, finalize, gate);
  } else {
    thread_wait(r, what, cond, finalize, gate);
  }
  if (opt_.spans) {
    // Causeless when the condition was satisfiable at entry (the rank never
    // parked, though virtual time may still have advanced to the wake time).
    simnet::SpanRecord sp;
    sp.rank = r.id_;
    sp.kind = simnet::span_kind_from_wait_label(what);
    sp.t_begin = t0;
    sp.t_end = rank_clock_[s];
    sp.gate = gate_thr;
    if (rank_cause_rank_[s] >= 0) {
      sp.peer = rank_cause_rank_[s];
      sp.cause_t = rank_cause_t_[s];
      sp.cause_nspans = rank_cause_nspans_[s];
    }
    spans_.record(sp);
  }
  metrics_.on_wait(r.id_, rank_clock_[s] - t0);
}

// ---------------------------------------------------------------------------
// Thread backend: one parked OS thread per rank, mutex/condvar baton.
// ---------------------------------------------------------------------------

RunResult Engine::run_threads(const std::function<void(Rank&)>& body) {
  std::unique_lock lk(mu_);
  reset_run_state_locked(body);
  ++run_gen_;

  if (threads_.empty()) {
    // Lazy persistent pool: spawned once, parked between runs. Per-rank
    // condvars are allocated here — only thread-backend engines pay for
    // them.
    thread_cvs_ = std::make_unique<std::condition_variable[]>(
        static_cast<std::size_t>(nranks_));
    threads_.reserve(static_cast<std::size_t>(nranks_));
    for (int i = 0; i < nranks_; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  } else {
    for (int i = 0; i < nranks_; ++i) thread_cvs_[i].notify_one();  // new gen
  }
  schedule_locked();  // grant the first baton
  while (done_count_ != nranks_) run_cv_.wait(lk);
  body_ = nullptr;
  return collect_result_locked();
}

void Engine::worker_main(int id) {
  std::condition_variable& cv = thread_cvs_[static_cast<std::size_t>(id)];
  std::uint64_t seen_gen = 0;
  std::unique_lock lk(mu_);
  for (;;) {
    while (!shutdown_ && run_gen_ == seen_gen) cv.wait(lk);
    if (shutdown_) return;
    seen_gen = run_gen_;
    lk.unlock();
    rank_main(id);
    lk.lock();
  }
}

void Engine::rank_main(int id) {
  Rank& r = *ranks_[static_cast<std::size_t>(id)];
  std::condition_variable& cv = thread_cvs_[static_cast<std::size_t>(id)];
  {
    std::unique_lock lk(mu_);
    while (granted_ != id && !abort_) cv.wait(lk);
    if (abort_) {
      set_state_locked(id, RankState::kDone);
      ++done_count_;
      if (done_count_ == nranks_) run_cv_.notify_all();
      return;
    }
    set_state_locked(id, RankState::kRunning);
  }
  try {
    (*body_)(r);
  } catch (const AbortException&) {
    // Engine-initiated unwind (deadlock elsewhere); nothing to record.
  } catch (const std::exception& e) {
    std::lock_guard lk(mu_);
    note_body_error_locked(id, e.what());
  } catch (...) {
    std::lock_guard lk(mu_);
    note_body_error_locked(id, nullptr);
  }
  {
    std::lock_guard lk(mu_);
    set_state_locked(id, RankState::kDone);
    ++done_count_;
    if (abort_) {
      notify_all_ranks_locked();
    }
    if (done_count_ == nranks_) {
      run_cv_.notify_all();
    } else {
      schedule_locked();
    }
  }
}

void Engine::schedule_locked() {
  if (abort_) {
    notify_all_ranks_locked();
    return;
  }
  const int best = pick_min_ready_locked();
  if (best != -1) {
    granted_ = best;
    // Targeted handoff: only the granted rank's thread is woken.
    thread_cvs_[static_cast<std::size_t>(best)].notify_one();
    return;
  }
  // No runnable rank. If anyone is still blocked, that's a deadlock.
  if (done_count_ < nranks_) {
    note_deadlock_locked();
    notify_all_ranks_locked();
  }
}

void Engine::thread_perform(Rank& r, const std::function<void()>& fn) {
  const int id = r.id_;
  const auto s = static_cast<std::size_t>(id);
  std::condition_variable& cv = thread_cvs_[s];
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  check_watchdog_locked(r);
  rank_wake_[s] = rank_clock_[s];
  set_state_locked(id, RankState::kReady);
  schedule_locked();
  while (granted_ != id && !abort_) {
    cv.wait(lk);
  }
  check_abort_locked(r);
  set_state_locked(id, RankState::kRunning);
  fn();
  wake_satisfied_locked();
}

void Engine::thread_wait(Rank& r, const char* what,
                         const std::function<std::optional<double>()>& cond,
                         const std::function<void()>& finalize,
                         WaitGate gate) {
  const int id = r.id_;
  const auto s = static_cast<std::size_t>(id);
  std::condition_variable& cv = thread_cvs_[s];
  std::unique_lock lk(mu_);
  check_abort_locked(r);
  check_watchdog_locked(r);
  // The caller enters holding the baton (it was the granted runner). Only a
  // baton-relinquishing thread may invoke the scheduler; after this thread
  // has been woken from kBlocked it no longer holds the baton and must wait
  // to be granted by the current holder's next yield.
  bool holding = true;
  for (;;) {
    if (auto w = cond()) {
      // Satisfiable: schedule at the wake time, re-evaluate once granted so
      // an earlier-arriving candidate delivered meanwhile wins.
      rank_wake_[s] = std::max(rank_clock_[s], *w);
      set_state_locked(id, RankState::kReady);
      if (holding) schedule_locked();
      while (granted_ != id && !abort_) {
        cv.wait(lk);
      }
      check_abort_locked(r);
      set_state_locked(id, RankState::kRunning);
      auto w2 = cond();
      MRL_CHECK_MSG(w2.has_value(),
                    "wait condition became unsatisfiable (must be monotonic)");
      rank_clock_[s] = std::max(rank_clock_[s], *w2);
      if (finalize) {
        finalize_rank_ = id;
        finalize();
        wake_satisfied_locked();
        finalize_rank_ = -1;
      }
      return;
    }
    rank_cond_[s] = &cond;
    rank_what_[s] = what;
    if (gate.counter != nullptr) {
      rank_slot_[s] = kSlotGated;
      register_gated_waiter_locked(id, gate);
    }
    set_state_locked(id, RankState::kBlocked);
    if (holding) {
      // May detect a deadlock and set abort_ synchronously.
      schedule_locked();
      holding = false;
    }
    while (rank_state_[s] == RankState::kBlocked && !abort_) {
      cv.wait(lk);
    }
    check_abort_locked(r);
    rank_cond_[s] = nullptr;
    // Re-queued as kReady with a wake hint (and possibly already granted);
    // the loop re-evaluates cond and goes through the satisfiable path.
  }
}

// ---------------------------------------------------------------------------
// Fiber backend: every rank is a stackful fiber, the whole engine runs on
// the single thread that called run(), and the baton is a direct user-space
// context switch. The scheduling decisions are the same as the thread
// backend's, in the same order, so the two produce bit-identical results.
// ---------------------------------------------------------------------------

RunResult Engine::run_fibers(const std::function<void(Rank&)>& body) {
  reset_run_state_locked(body);
  // The calling thread may differ between runs (e.g. one engine driven from
  // different sweep-pool workers), so (re)adopt it each run.
  main_fiber_.adopt_thread();
  if (fibers_.empty()) {
    // Lazy persistent contexts: created once, parked between runs suspended
    // in fiber_exit_run().
    fiber_start_.resize(static_cast<std::size_t>(nranks_));
    fibers_.reserve(static_cast<std::size_t>(nranks_));
    // Guarded stacks cost two kernel VMAs each and vm.max_map_count caps a
    // process at ~65k mappings; past that, skip the guard pages and rely on
    // the stack HWM sentinel (poison_stack) to audit headroom instead.
    // Pooled stacks amortize further: one slab VMA hosts many slots
    // (DESIGN.md §12).
    const bool guard = !opt_.stack_pool && nranks_ <= 16384;
    for (int i = 0; i < nranks_; ++i) {
      fiber_start_[static_cast<std::size_t>(i)] = FiberStart{this, i};
      auto f = std::make_unique<Fiber>();
      if (opt_.stack_pool) {
        f->create_pooled(opt_.fiber_stack_bytes, &Engine::fiber_entry,
                         &fiber_start_[static_cast<std::size_t>(i)]);
      } else {
        f->create(opt_.fiber_stack_bytes, &Engine::fiber_entry,
                  &fiber_start_[static_cast<std::size_t>(i)], guard);
      }
      // Poisoning commits the stack pages, so only pay for it when the
      // metrics report will actually read the high-water marks.
      if (opt_.metrics) f->poison_stack();
      fibers_.push_back(std::move(f));
    }
  }
  const int first = pick_min_ready_locked();
  MRL_CHECK(first != -1);
  granted_ = first;
  Fiber::switch_to(main_fiber_, *fibers_[static_cast<std::size_t>(first)]);
  if (abort_) {
    // Fibers suspended mid-wait still hold live frames (user code with
    // destructors). Resume each one so it observes abort_, throws
    // AbortException, unwinds cleanly, and parks as kDone.
    for (int i = 0; i < nranks_; ++i) {
      while (rank_state_[static_cast<std::size_t>(i)] != RankState::kDone) {
        granted_ = i;
        Fiber::switch_to(main_fiber_, *fibers_[static_cast<std::size_t>(i)]);
      }
    }
  }
  MRL_CHECK(done_count_ == nranks_);
  body_ = nullptr;
  return collect_result_locked();
}

void Engine::fiber_entry(void* start) {
  auto* s = static_cast<FiberStart*>(start);
  s->engine->fiber_worker(s->id);  // never returns (parks between runs)
}

void Engine::fiber_worker(int id) {
  Rank& r = *ranks_[static_cast<std::size_t>(id)];
  for (;;) {
    // Granted: either the first grant of a fresh run, or an abort-unwind
    // resume for a rank whose body never started this run.
    if (!abort_) {
      set_state_locked(id, RankState::kRunning);
      try {
        (*body_)(r);
      } catch (const AbortException&) {
        // Engine-initiated unwind (deadlock/watchdog/abort elsewhere).
      } catch (const std::exception& e) {
        note_body_error_locked(id, e.what());
      } catch (...) {
        note_body_error_locked(id, nullptr);
      }
    }
    set_state_locked(id, RankState::kDone);
    ++done_count_;
    fiber_exit_run(r);
  }
}

// Departure switch at the end of a rank's run: hand the baton onward (or
// report back to run_fibers). The fiber parks here, suspended, until a later
// run() grants it again.
void Engine::fiber_exit_run(Rank& r) {
  Fiber& self = *fibers_[static_cast<std::size_t>(r.id_)];
  if (abort_ || done_count_ == nranks_) {
    Fiber::switch_to(self, main_fiber_);
  } else {
    const int next = pick_min_ready_locked();
    if (next != -1) {
      granted_ = next;
      Fiber::switch_to(self, *fibers_[static_cast<std::size_t>(next)]);
    } else {
      // Everyone left alive is blocked.
      note_deadlock_locked();
      Fiber::switch_to(self, main_fiber_);
    }
  }
  // Resumed: granted at the start of a subsequent run().
  MRL_CHECK(granted_ == r.id_);
}

// Relinquish the baton and return once this rank is granted again. The
// caller must already be queued (kReady) unless it is kBlocked, in which
// case running out of runnable ranks means deadlock.
void Engine::fiber_yield(Rank& r) {
  const int next = pick_min_ready_locked();
  if (next == r.id_) {
    // Still the min-clock runnable rank: keep the baton, no switch at all.
    granted_ = r.id_;
    return;
  }
  if (next == -1) {
    note_deadlock_locked();
    throw AbortException{};
  }
  granted_ = next;
  Fiber::switch_to(*fibers_[static_cast<std::size_t>(r.id_)],
                   *fibers_[static_cast<std::size_t>(next)]);
  // Resumed: either granted, or being unwound after an abort elsewhere.
  check_abort_locked(r);
  MRL_CHECK(granted_ == r.id_);
}

void Engine::fiber_perform(Rank& r, const std::function<void()>& fn) {
  const auto s = static_cast<std::size_t>(r.id_);
  check_abort_locked(r);
  check_watchdog_locked(r);
  rank_wake_[s] = rank_clock_[s];
  set_state_locked(r.id_, RankState::kReady);
  fiber_yield(r);
  set_state_locked(r.id_, RankState::kRunning);
  fn();
  wake_satisfied_locked();
}

void Engine::fiber_wait(Rank& r, const char* what,
                        const std::function<std::optional<double>()>& cond,
                        const std::function<void()>& finalize, WaitGate gate) {
  const int id = r.id_;
  const auto s = static_cast<std::size_t>(id);
  check_abort_locked(r);
  check_watchdog_locked(r);
  // Mirrors thread_wait exactly, including the `holding` rule: once this
  // rank has been resumed from kBlocked it was granted by the previous
  // holder's yield, so it must NOT yield again before running — doing so
  // would re-enter the scheduler at a different point than the thread
  // backend and could diverge the grant order.
  bool holding = true;
  for (;;) {
    if (auto w = cond()) {
      rank_wake_[s] = std::max(rank_clock_[s], *w);
      set_state_locked(id, RankState::kReady);
      if (holding) fiber_yield(r);
      MRL_CHECK(granted_ == id);
      set_state_locked(id, RankState::kRunning);
      auto w2 = cond();
      MRL_CHECK_MSG(w2.has_value(),
                    "wait condition became unsatisfiable (must be monotonic)");
      rank_clock_[s] = std::max(rank_clock_[s], *w2);
      if (finalize) {
        finalize_rank_ = id;
        finalize();
        wake_satisfied_locked();
        finalize_rank_ = -1;
      }
      return;
    }
    rank_cond_[s] = &cond;
    rank_what_[s] = what;
    if (gate.counter != nullptr) {
      rank_slot_[s] = kSlotGated;
      register_gated_waiter_locked(id, gate);
    }
    set_state_locked(id, RankState::kBlocked);
    // Suspend until granted (wake_satisfied_locked re-queues us when the
    // condition becomes satisfiable; a later yield then picks us). Detects
    // deadlock synchronously if no rank is runnable.
    fiber_yield(r);
    holding = false;
    rank_cond_[s] = nullptr;
    // Re-evaluate cond via the satisfiable path (monotonic ⇒ it holds now).
  }
}

}  // namespace mrl::runtime
