// Process-wide profiler capture (DESIGN.md §14).
//
// `--trace PATH` / `--profile PATH` dump ONE run's message trace, execution
// spans, and critical-path report at process exit, but a bench may execute
// thousands of engine runs (sweeps × repetitions) completing in a
// nondeterministic order under `--jobs N`. ProfileCapture therefore keeps
// exactly one RunCapture, selected by a deterministic total order on
// (makespan picoseconds, nranks, span count, message count) — the slowest
// run wins, exact key ties broken by an elementwise record comparison — so
// the captured bytes are independent of publish order, i.e. identical
// across execution backends, schedulers, and job counts (asserted by
// tests/profile_test.cpp and the CI byte-compare job).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "simnet/trace_export.hpp"

namespace mrl::runtime {

class Engine;
struct RunResult;

/// Process-wide `--trace-ranks A-B` filter, applied at dump time (slice
/// output only; counter tracks always cover the whole run). hi < 0 means
/// "through the last rank".
struct TraceRanks {
  int lo = 0;
  int hi = -1;
};

[[nodiscard]] TraceRanks default_trace_ranks();
void set_default_trace_ranks(TraceRanks r);

/// The singleton that owns the winning RunCapture.
class ProfileCapture {
 public:
  static ProfileCapture& instance();

  /// Offers a completed spans-enabled run (called by Engine::run).
  /// Thread-safe; keeps the capture that is maximal under the deterministic
  /// order described in the header comment. Cheap when the offered run loses
  /// on the key alone — the stores are only copied for a winner.
  void offer(Engine& e, const RunResult& res);

  [[nodiscard]] bool has_capture() const;
  /// Copy of the winning capture (default-constructed when none).
  [[nodiscard]] simnet::RunCapture capture() const;
  void reset();

 private:
  ProfileCapture() = default;

  mutable std::mutex mu_;
  bool has_ = false;
  std::array<std::uint64_t, 4> key_{};  ///< makespan_pico, nranks, spans, msgs
  simnet::RunCapture cap_;
};

/// Writes the captured run to `path`: format "chrome" emits the combined
/// Chrome tracing JSON (messages + rank timelines + counters), format "csv"
/// the message-trace CSV (same columns as export_trace_csv). Both apply the
/// process-wide trace-ranks filter. Returns false (with a warning log) when
/// nothing was captured or the file cannot be written.
bool dump_captured_trace(const std::string& path, const std::string& format);

/// Writes the captured run's deterministic critical-path report
/// (simnet/critpath.hpp) to `path`. Returns false when nothing was captured
/// or the file cannot be written.
bool dump_captured_profile(const std::string& path);

}  // namespace mrl::runtime
