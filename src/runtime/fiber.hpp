// Stackful user-level fibers for the engine's cooperative rank scheduler.
//
// One Fiber is one suspended call stack. switch_to() transfers control from
// the currently executing context to another entirely in user space: on
// x86-64 it is a hand-rolled callee-saved-register swap (tens of
// nanoseconds, no mutex, no condvar, no kernel involvement — not even the
// sigprocmask syscall swapcontext() performs); on other architectures it
// falls back to POSIX swapcontext().
//
// Stack allocation comes in two flavors (DESIGN.md §12):
//   * create() — one mmap per fiber, optionally with a PROT_NONE guard page
//     below the usable region so an overflow faults immediately instead of
//     silently corrupting a neighboring fiber's stack. The guard costs two
//     kernel VMAs per fiber; Linux caps a process at vm.max_map_count
//     (~65k) mappings.
//   * create_pooled() — the stack is a slot carved out of a process-wide
//     pooled slab (StackPool): one large mmap hosts many equally sized
//     slots, and destroyed fibers return their slot to a freelist for
//     reuse. One slab = one VMA regardless of how many fibers it hosts, so
//     million-fiber engines stay far from the VMA cap and repeated
//     engine construction recycles already-faulted pages instead of paying
//     mmap/munmap churn. Pooled slots are unguarded (adjacent slots abut);
//     the stack high-water-mark sentinel audits headroom instead.
//
// Sanitizer support:
//   * AddressSanitizer — every switch is bracketed with
//     __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber so
//     ASan always knows which stack is active (including its fake-stack
//     when detect_stack_use_after_return is on). Recycled pool slots are
//     explicitly unpoisoned on release so a dead fiber's redzones cannot
//     leak into its successor.
//   * ThreadSanitizer — TSan cannot follow user-level context switches made
//     behind its back; fibers_supported() reports false under TSan and the
//     engine silently falls back to the OS-thread backend (see
//     DESIGN.md §8).
#pragma once

#include <cstddef>

namespace mrl::runtime {

/// True when the stackful-fiber backend works under the current build
/// configuration (false under ThreadSanitizer).
[[nodiscard]] bool fibers_supported();

/// Target bytes per pooled stack slab (process-wide; initially 64 MiB).
/// Each slab hosts floor(slab_bytes / slot_bytes) slots (at least one).
/// Takes effect for slabs carved after the call; existing slabs keep their
/// geometry. CLI flag `--stack-pool-slab-mb` sets it.
[[nodiscard]] std::size_t stack_pool_slab_bytes();
void set_stack_pool_slab_bytes(std::size_t bytes);

/// Pool occupancy snapshot, for tests and capacity audits.
struct StackPoolStats {
  std::size_t slabs = 0;        ///< mmap'd slabs alive (never unmapped)
  std::size_t total_slots = 0;  ///< slots carved across all slabs
  std::size_t free_slots = 0;   ///< slots currently on freelists
};
[[nodiscard]] StackPoolStats stack_pool_stats();

/// Returns every free slot's pages to the kernel (madvise MADV_DONTNEED)
/// without giving up the address space: the slots stay on the freelists and
/// the slab VMAs stay mapped, but resident memory drops to what live fibers
/// actually use. Costs the next tenant refaults of zeroed pages, so this is
/// for measurement hygiene (the perf harness trims between sections so one
/// section's stacks don't inflate the next section's RSS) and memory-pressure
/// relief — not for the steady-state sweep path, which wants the reuse.
void stack_pool_trim();

class Fiber {
 public:
  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Allocates a stack of (at least) `stack_bytes` usable bytes and primes
  /// the fiber so the first switch_to() into it enters `entry(arg)`.
  /// `entry` must never return — a fiber ends its life suspended in a
  /// switch_to() away from itself (or is simply destroyed while parked).
  ///
  /// `guard` adds a PROT_NONE page below the usable region so an overflow
  /// faults immediately. Each guarded stack costs two kernel VMAs, and
  /// Linux caps a process at vm.max_map_count (~65k) mappings — so engines
  /// with very large worlds (100k+ ranks) must pass guard=false and rely on
  /// the stack high-water-mark sentinel to audit headroom instead.
  void create(std::size_t stack_bytes, void (*entry)(void*), void* arg,
              bool guard = true);

  /// Like create(), but the stack is an unguarded slot from the process-wide
  /// StackPool (see the header comment). The slot returns to the pool's
  /// freelist when this Fiber is destroyed.
  void create_pooled(std::size_t stack_bytes, void (*entry)(void*), void* arg);

  /// Marks this Fiber as the calling OS thread's native context so created
  /// fibers can switch back to it. Call before the first switch of every
  /// scheduling episode: the episode's owning thread may change between
  /// calls (e.g. an engine driven from different sweep-pool workers).
  void adopt_thread();

  /// Suspends `from` (which must be the currently executing context) and
  /// resumes `to`. Returns when `from` is next switched to.
  static void switch_to(Fiber& from, Fiber& to);

  /// True once create() gave this fiber its own stack.
  [[nodiscard]] bool created() const { return stack_mem_ != nullptr; }

  /// Fills the not-yet-touched part of the stack with a sentinel pattern so
  /// stack_high_water_bytes() can later tell how deep execution reached.
  /// Call right after create(), before the first switch-in. Commits the
  /// stack's pages, so it is opt-in (metrics runs only).
  void poison_stack();

  /// Deepest stack use observed since poison_stack(), in bytes from the top
  /// of the usable region. Zero if the stack was never poisoned.
  [[nodiscard]] std::size_t stack_high_water_bytes() const;

  /// Usable (guard-page-excluded) stack bytes.
  [[nodiscard]] std::size_t stack_usable_bytes() const;

  // Used by the entry trampolines; not part of the public surface.
  void run_entry_for_trampoline();

 private:
  /// Shared tail of create()/create_pooled(): primes the switch context on
  /// the usable region starting at `lo`.
  void init_context(char* lo, std::size_t usable);

  void* sp_ = nullptr;          ///< asm backend: saved stack pointer
  void* uctx_ = nullptr;        ///< ucontext backend: heap ucontext_t
  void* stack_mem_ = nullptr;   ///< stack base (guard page + usable stack)
  std::size_t stack_total_ = 0; ///< total stack bytes incl. guard page
  std::size_t guard_bytes_ = 0; ///< PROT_NONE prefix (0 = unguarded stack)
  bool pooled_ = false;         ///< stack_mem_ is a StackPool slot
  void (*entry_)(void*) = nullptr;
  void* arg_ = nullptr;
  bool poisoned_ = false;       ///< stack filled with the HWM sentinel
  // AddressSanitizer bookkeeping (unused members cost nothing otherwise).
  void* asan_fake_ = nullptr;         ///< fake-stack handle while suspended
  const void* asan_bottom_ = nullptr; ///< stack region for ASan
  std::size_t asan_size_ = 0;
};

}  // namespace mrl::runtime
