// Stackful user-level fibers for the engine's cooperative rank scheduler.
//
// One Fiber is one suspended call stack. switch_to() transfers control from
// the currently executing context to another entirely in user space: on
// x86-64 it is a hand-rolled callee-saved-register swap (tens of
// nanoseconds, no mutex, no condvar, no kernel involvement — not even the
// sigprocmask syscall swapcontext() performs); on other architectures it
// falls back to POSIX swapcontext(). Fiber stacks are mmap'd with a
// PROT_NONE guard page below the usable region so an overflow faults
// immediately instead of silently corrupting a neighboring fiber's stack.
//
// Sanitizer support:
//   * AddressSanitizer — every switch is bracketed with
//     __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber so
//     ASan always knows which stack is active (including its fake-stack
//     when detect_stack_use_after_return is on).
//   * ThreadSanitizer — TSan cannot follow user-level context switches made
//     behind its back; fibers_supported() reports false under TSan and the
//     engine silently falls back to the OS-thread backend (see
//     DESIGN.md §8).
#pragma once

#include <cstddef>

namespace mrl::runtime {

/// True when the stackful-fiber backend works under the current build
/// configuration (false under ThreadSanitizer).
[[nodiscard]] bool fibers_supported();

class Fiber {
 public:
  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Allocates a stack of (at least) `stack_bytes` usable bytes and primes
  /// the fiber so the first switch_to() into it enters `entry(arg)`.
  /// `entry` must never return — a fiber ends its life suspended in a
  /// switch_to() away from itself (or is simply destroyed while parked).
  ///
  /// `guard` adds a PROT_NONE page below the usable region so an overflow
  /// faults immediately. Each guarded stack costs two kernel VMAs, and
  /// Linux caps a process at vm.max_map_count (~65k) mappings — so engines
  /// with very large worlds (100k+ ranks) must pass guard=false and rely on
  /// the stack high-water-mark sentinel to audit headroom instead.
  void create(std::size_t stack_bytes, void (*entry)(void*), void* arg,
              bool guard = true);

  /// Marks this Fiber as the calling OS thread's native context so created
  /// fibers can switch back to it. Call before the first switch of every
  /// scheduling episode: the episode's owning thread may change between
  /// calls (e.g. an engine driven from different sweep-pool workers).
  void adopt_thread();

  /// Suspends `from` (which must be the currently executing context) and
  /// resumes `to`. Returns when `from` is next switched to.
  static void switch_to(Fiber& from, Fiber& to);

  /// True once create() gave this fiber its own stack.
  [[nodiscard]] bool created() const { return stack_mem_ != nullptr; }

  /// Fills the not-yet-touched part of the stack with a sentinel pattern so
  /// stack_high_water_bytes() can later tell how deep execution reached.
  /// Call right after create(), before the first switch-in. Commits the
  /// stack's pages, so it is opt-in (metrics runs only).
  void poison_stack();

  /// Deepest stack use observed since poison_stack(), in bytes from the top
  /// of the usable region. Zero if the stack was never poisoned.
  [[nodiscard]] std::size_t stack_high_water_bytes() const;

  /// Usable (guard-page-excluded) stack bytes.
  [[nodiscard]] std::size_t stack_usable_bytes() const;

  // Used by the entry trampolines; not part of the public surface.
  void run_entry_for_trampoline();

 private:
  void* sp_ = nullptr;          ///< asm backend: saved stack pointer
  void* uctx_ = nullptr;        ///< ucontext backend: heap ucontext_t
  void* stack_mem_ = nullptr;   ///< mmap base (guard page + usable stack)
  std::size_t stack_total_ = 0; ///< total mapped bytes incl. guard page
  std::size_t guard_bytes_ = 0; ///< PROT_NONE prefix (0 = unguarded stack)
  void (*entry_)(void*) = nullptr;
  void* arg_ = nullptr;
  bool poisoned_ = false;       ///< stack filled with the HWM sentinel
  // AddressSanitizer bookkeeping (unused members cost nothing otherwise).
  void* asan_fake_ = nullptr;         ///< fake-stack handle while suspended
  const void* asan_bottom_ = nullptr; ///< stack region for ASan
  std::size_t asan_size_ = 0;
};

}  // namespace mrl::runtime
