// One-sided hashtable: remote CAS inserts over MPI RMA windows (Sec III-C).
// A failed CAS acquires an overflow node by fetch-add and publishes it with
// a second CAS on the bucket tail (lock-free push); MPI_Win_flush_local
// orders the node write before the publish.
#include <algorithm>

#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "util/units.hpp"
#include "workloads/hashtable/hashtable.hpp"

namespace mrl::workloads::hashtable {

Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg0) {
  // Size the overflow heap for the exact worst-case occupancy of the insert
  // stream (grow-only; placement and traffic of fitting runs are unchanged).
  const Config cfg = with_sized_overflow(cfg0, nranks);
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);
  bool exhausted = false;

  const std::uint64_t n_local = inserts_per_rank(cfg, nranks);
  const std::uint64_t actual = n_local * static_cast<std::uint64_t>(nranks);

  std::vector<Partition> parts;
  parts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) parts.emplace_back(cfg);
  std::vector<std::uint64_t> collisions(static_cast<std::size_t>(nranks), 0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    Partition& mine = parts[static_cast<std::size_t>(c.rank())];
    mpi::WinHandle w_table =
        c.create_win(mine.table.data(), mine.table.size() * 8);
    mpi::WinHandle w_tail =
        c.create_win(mine.tail.data(), mine.tail.size() * 8);
    mpi::WinHandle w_next = c.create_win(&mine.next_free, 8);
    mpi::WinHandle w_over =
        c.create_win(mine.overflow.data(), mine.overflow.size() * 8);

    c.barrier();
    if (c.rank() == 0) t0 = c.now();

    const std::uint64_t base =
        static_cast<std::uint64_t>(c.rank()) * n_local;
    for (std::uint64_t k = 0; k < n_local; ++k) {
      const std::uint64_t key = key_for(cfg.seed, base + k);
      const Placement pl = place(key, nranks, cfg.slots_per_rank);
      const std::uint64_t old =
          w_table.compare_and_swap(0, key, pl.owner, pl.slot * 8);
      if (old == 0) continue;  // won the slot
      ++collisions[static_cast<std::size_t>(c.rank())];
      const std::uint64_t idx = w_next.fetch_add(1, pl.owner, 0);
      if (idx >= cfg.overflow_per_rank) {
        // Unreachable for the generated stream (auto-sized above); a
        // hand-built Config degrades to an error status, not an abort.
        exhausted = true;
        continue;
      }
      std::uint64_t guess = 0;
      for (;;) {
        const std::uint64_t node[2] = {key, guess};
        w_over.put(node, 16, pl.owner, idx * 16);
        w_over.flush_local(pl.owner);
        const std::uint64_t prev_tail =
            w_tail.compare_and_swap(guess, idx + 1, pl.owner, pl.slot * 8);
        if (prev_tail == guess) break;
        guess = prev_tail;  // lost the race: relink and retry
      }
    }
    // End of the insert phase: there was no synchronization until here.
    w_over.flush_all();

    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    // Apply all in-flight overflow-node puts so the host can verify.
    w_over.fence();
  });

  Result out;
  out.status = run.status;
  if (exhausted && out.status.is_ok()) {
    out.status =
        Status(ErrorCode::kResourceExhausted, "overflow heap exhausted");
  }
  out.time_us = t1 - t0;
  out.inserted = actual;
  out.updates_per_sec =
      out.time_us > 0 ? static_cast<double>(actual) / (out.time_us * 1e-6) : 0;
  for (std::uint64_t v : collisions) out.collisions += v;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok() && !exhausted) {
    out.verify_ok = verify_partitions(parts, cfg, actual).is_ok();
  }
  out.msgs = eng.trace().summarize(simnet::OpKind::kAtomic);
  return out;
}

}  // namespace mrl::workloads::hashtable
