#include "workloads/hashtable/hashtable.hpp"

#include <algorithm>
#include <string>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace mrl::workloads::hashtable {

std::uint64_t key_for(std::uint64_t seed, std::uint64_t i) {
  SplitMix64 sm(seed ^ (i * 0x9E3779B97F4A7C15ULL + 0x1234567ULL));
  std::uint64_t k = sm.next();
  return k | 1ULL;  // nonzero (0 marks an empty slot)
}

Placement place(std::uint64_t key, int nranks, std::uint64_t slots_per_rank) {
  SplitMix64 sm(key);
  const std::uint64_t h = sm.next();
  Placement p;
  p.owner = static_cast<int>(h % static_cast<std::uint64_t>(nranks));
  p.slot = (h / static_cast<std::uint64_t>(nranks)) % slots_per_rank;
  return p;
}

std::uint64_t inserts_per_rank(const Config& cfg, int nranks) {
  return (cfg.total_inserts + static_cast<std::uint64_t>(nranks) - 1) /
         static_cast<std::uint64_t>(nranks);
}

std::uint64_t required_overflow_per_rank(const Config& cfg, int nranks) {
  const std::uint64_t actual =
      inserts_per_rank(cfg, nranks) * static_cast<std::uint64_t>(nranks);
  // Encode each insert's destination as owner * slots_per_rank + slot, sort,
  // and count the excess beyond one key per distinct bucket, per owner.
  std::vector<std::uint64_t> dest(actual);
  for (std::uint64_t i = 0; i < actual; ++i) {
    const Placement pl =
        place(key_for(cfg.seed, i), nranks, cfg.slots_per_rank);
    dest[i] =
        static_cast<std::uint64_t>(pl.owner) * cfg.slots_per_rank + pl.slot;
  }
  std::sort(dest.begin(), dest.end());
  std::uint64_t worst = 0;
  std::uint64_t i = 0;
  while (i < actual) {
    const std::uint64_t owner = dest[i] / cfg.slots_per_rank;
    std::uint64_t overflow = 0;
    while (i < actual && dest[i] / cfg.slots_per_rank == owner) {
      std::uint64_t run = 1;
      while (i + run < actual && dest[i + run] == dest[i]) ++run;
      overflow += run - 1;  // one key lives in the table slot itself
      i += run;
    }
    worst = std::max(worst, overflow);
  }
  return worst;
}

Config with_sized_overflow(const Config& cfg, int nranks) {
  Config out = cfg;
  const std::uint64_t need = required_overflow_per_rank(cfg, nranks);
  if (need > out.overflow_per_rank) out.overflow_per_rank = need;
  return out;
}

Status verify_partitions(const std::vector<Partition>& parts,
                         const Config& cfg, std::uint64_t actual_inserts) {
  const int nranks = static_cast<int>(parts.size());
  std::vector<std::uint64_t> stored;
  stored.reserve(actual_inserts);
  for (int r = 0; r < nranks; ++r) {
    const Partition& p = parts[static_cast<std::size_t>(r)];
    for (std::uint64_t s = 0; s < cfg.slots_per_rank; ++s) {
      const std::uint64_t key = p.table[s];
      if (key == 0) continue;
      const Placement pl = place(key, nranks, cfg.slots_per_rank);
      if (pl.owner != r || pl.slot != s) {
        return Status(ErrorCode::kInternal,
                      "table key stored in wrong slot at rank " +
                          std::to_string(r));
      }
      stored.push_back(key);
    }
    // Walk every bucket chain.
    for (std::uint64_t s = 0; s < cfg.slots_per_rank; ++s) {
      std::uint64_t cursor = p.tail[s];
      std::uint64_t walked = 0;
      while (cursor != 0) {
        if (cursor > p.next_free) {
          return Status(ErrorCode::kInternal, "dangling overflow pointer");
        }
        const std::uint64_t key = p.overflow[2 * (cursor - 1)];
        const Placement pl = place(key, nranks, cfg.slots_per_rank);
        if (pl.owner != r || pl.slot != s) {
          return Status(ErrorCode::kInternal,
                        "overflow key chained to wrong bucket");
        }
        stored.push_back(key);
        cursor = p.overflow[2 * (cursor - 1) + 1];
        if (++walked > cfg.overflow_per_rank) {
          return Status(ErrorCode::kInternal, "overflow chain cycle");
        }
      }
    }
  }
  if (stored.size() != actual_inserts) {
    return Status(ErrorCode::kInternal,
                  "stored " + std::to_string(stored.size()) + " keys, expected " +
                      std::to_string(actual_inserts));
  }
  std::vector<std::uint64_t> expected;
  expected.reserve(actual_inserts);
  for (std::uint64_t i = 0; i < actual_inserts; ++i) {
    expected.push_back(key_for(cfg.seed, i));
  }
  std::sort(stored.begin(), stored.end());
  std::sort(expected.begin(), expected.end());
  if (stored != expected) {
    return Status(ErrorCode::kInternal, "stored key multiset mismatch");
  }
  return Status::ok();
}

}  // namespace mrl::workloads::hashtable
