// Two-sided hashtable (Sec III-C): every insert broadcasts an
// (owner, key, pos) triplet to all other ranks with MPI_Isend, then waits
// for P-1 messages with MPI_Recv(ANY_SOURCE, ANY_TAG); the owner applies
// the insert locally. P messages per synchronization, 3 words per message
// (Table II) — this is what makes two-sided ~5x slower at 128 ranks.
#include <algorithm>

#include "mpi/comm.hpp"
#include "workloads/hashtable/hashtable.hpp"

namespace mrl::workloads::hashtable {

namespace {

void local_insert(Partition& p, std::uint64_t key, std::uint64_t slot,
                  std::uint64_t overflow_cap, std::uint64_t* collisions,
                  bool* exhausted) {
  if (p.table[slot] == 0) {
    p.table[slot] = key;
    return;
  }
  ++*collisions;
  const std::uint64_t idx = p.next_free++;
  if (idx >= overflow_cap) {
    // Unreachable for the generated stream (overflow is auto-sized); a
    // hand-built Config degrades to an error status, not an abort.
    *exhausted = true;
    return;
  }
  p.overflow[2 * idx] = key;
  p.overflow[2 * idx + 1] = p.tail[slot];
  p.tail[slot] = idx + 1;
}

}  // namespace

Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg0) {
  // Size the overflow heap for the exact worst-case occupancy of the insert
  // stream (grow-only; placement and traffic of fitting runs are unchanged).
  const Config cfg = with_sized_overflow(cfg0, nranks);
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);
  bool exhausted = false;

  const std::uint64_t n_local = inserts_per_rank(cfg, nranks);
  const std::uint64_t actual = n_local * static_cast<std::uint64_t>(nranks);

  std::vector<Partition> parts;
  parts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) parts.emplace_back(cfg);
  std::vector<std::uint64_t> collisions(static_cast<std::size_t>(nranks), 0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    Partition& mine = parts[static_cast<std::size_t>(c.rank())];
    std::uint64_t* my_coll = &collisions[static_cast<std::size_t>(c.rank())];

    c.barrier();
    if (c.rank() == 0) t0 = c.now();

    const std::uint64_t base =
        static_cast<std::uint64_t>(c.rank()) * n_local;
    std::uint64_t triplet[3];
    std::uint64_t incoming[3];
    // Receives lag the sends by a small window so message latency pipelines
    // behind per-op overhead (nonblocking sends allow rounds in flight).
    constexpr std::uint64_t kLag = 8;
    auto drain_round = [&] {
      for (int m = 0; m + 1 < nranks; ++m) {
        c.recv(incoming, sizeof(incoming), mpi::kAnySource, mpi::kAnyTag);
        if (incoming[0] == static_cast<std::uint64_t>(c.rank())) {
          local_insert(mine, incoming[1], incoming[2], cfg.overflow_per_rank,
                       my_coll, &exhausted);
          c.compute(0.05);
        }
      }
    };
    for (std::uint64_t k = 0; k < n_local; ++k) {
      const std::uint64_t key = key_for(cfg.seed, base + k);
      const Placement pl = place(key, nranks, cfg.slots_per_rank);
      triplet[0] = static_cast<std::uint64_t>(pl.owner);
      triplet[1] = key;
      triplet[2] = pl.slot;
      for (int r = 0; r < nranks; ++r) {
        if (r == c.rank()) continue;
        mpi::Request req = c.isend(triplet, sizeof(triplet), r, 0);
        static_cast<void>(req);  // eager: payload captured at issue
      }
      if (pl.owner == c.rank()) {
        local_insert(mine, key, pl.slot, cfg.overflow_per_rank, my_coll,
                     &exhausted);
        c.compute(0.05);
      }
      if (k >= kLag) drain_round();
    }
    for (std::uint64_t k = 0; k < std::min(kLag, n_local); ++k) drain_round();

    c.barrier();
    if (c.rank() == 0) t1 = c.now();
  });

  Result out;
  out.status = run.status;
  if (exhausted && out.status.is_ok()) {
    out.status =
        Status(ErrorCode::kResourceExhausted, "overflow heap exhausted");
  }
  out.time_us = t1 - t0;
  out.inserted = actual;
  out.updates_per_sec =
      out.time_us > 0 ? static_cast<double>(actual) / (out.time_us * 1e-6) : 0;
  for (std::uint64_t v : collisions) out.collisions += v;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok() && !exhausted) {
    out.verify_ok = verify_partitions(parts, cfg, actual).is_ok();
  }
  out.msgs = eng.trace().summarize(simnet::OpKind::kSend);
  return out;
}

}  // namespace mrl::workloads::hashtable
