// Distributed hash table — the paper's sender-driven random-access workload
// (Sec III-C). Each rank owns a table partition plus an overflow heap.
//
//   one-sided  — inserts are remote atomic compare-and-swaps; collisions
//                acquire an overflow node by atomic fetch-add and push it on
//                the bucket chain with a second CAS (Treiber push). No
//                synchronization until the end (Table II: 1e6 msg/sync).
//   two-sided  — each insert broadcasts an (owner, key, pos) triplet to all
//                other ranks with MPI_Isend and waits for P-1 messages with
//                MPI_Recv(ANY_SOURCE); the owner applies the insert locally
//                (Table II: P msg/sync, 3 words per message).
//   shmem GPU  — the one-sided design over NVSHMEM-style atomics.
//
// Every variant is verified: the multiset of keys stored across all
// partitions (tables + chained overflow nodes) must equal the generated
// insert stream, and every stored key must hash to its partition/slot.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/platform.hpp"
#include "simnet/trace.hpp"
#include "util/status.hpp"

namespace mrl::workloads::hashtable {

struct Config {
  std::uint64_t total_inserts = 100000;  ///< paper runs 1e6
  std::uint64_t slots_per_rank = 1u << 15;
  std::uint64_t overflow_per_rank = 1u << 14;
  std::uint64_t seed = 5;
  bool verify = true;
};

struct Result {
  double time_us = 0;
  double updates_per_sec = 0;  ///< aggregate inserts/s (the paper's "GUPS")
  std::uint64_t inserted = 0;
  std::uint64_t collisions = 0;  ///< inserts that went to overflow
  bool verified = false;
  bool verify_ok = false;
  simnet::TraceSummary msgs;
  Status status;
};

/// Deterministic unique nonzero key for global insert index i.
std::uint64_t key_for(std::uint64_t seed, std::uint64_t i);

/// Hash a key to (owner rank, local slot).
struct Placement {
  int owner = 0;
  std::uint64_t slot = 0;
};
Placement place(std::uint64_t key, int nranks, std::uint64_t slots_per_rank);

/// One rank's storage: table, bucket-chain tails, overflow nodes (key, prev).
struct Partition {
  std::vector<std::uint64_t> table;      ///< slots (0 = empty)
  std::vector<std::uint64_t> tail;       ///< per slot: overflow idx+1 (0=none)
  std::vector<std::uint64_t> overflow;   ///< 2 words per node: key, prev
  std::uint64_t next_free = 0;

  explicit Partition(const Config& cfg)
      : table(cfg.slots_per_rank, 0),
        tail(cfg.slots_per_rank, 0),
        overflow(2 * cfg.overflow_per_rank, 0) {}
};

/// Checks all partitions against the generated key stream; returns OK or a
/// description of the first inconsistency.
Status verify_partitions(const std::vector<Partition>& parts,
                         const Config& cfg, std::uint64_t actual_inserts);

/// Inserts per rank (rounded up so every rank does the same count; the
/// two-sided protocol is round-based).
std::uint64_t inserts_per_rank(const Config& cfg, int nranks);

/// Exact worst-case overflow nodes any one rank needs for the full insert
/// stream: max over owners of Σ over that owner's slots of
/// max(0, keys hashed to the slot − 1). Placement depends only on
/// (key, nranks, slots_per_rank) — never on protocol or timing — so every
/// variant's overflow occupancy is exactly this, independent of insert
/// interleaving.
std::uint64_t required_overflow_per_rank(const Config& cfg, int nranks);

/// `cfg` with overflow_per_rank grown (never shrunk) to fit the insert
/// stream. slots_per_rank is untouched, so key placement — and therefore
/// the simulated traffic of already-fitting runs — is unchanged.
Config with_sized_overflow(const Config& cfg, int nranks);

Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg);
Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg);
Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const Config& cfg);

}  // namespace mrl::workloads::hashtable
