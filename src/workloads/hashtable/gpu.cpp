// GPU hashtable: NVSHMEM-style atomic compare-and-swap inserts into
// symmetric-heap partitions (Sec III-C). Identical protocol to the
// one-sided MPI variant; message delivery order within a PE pair is FIFO,
// so the node write lands before the tail publish.
#include <algorithm>
#include <cstring>

#include "shmem/shmem.hpp"
#include "workloads/hashtable/hashtable.hpp"

namespace mrl::workloads::hashtable {

Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const Config& cfg0) {
  // Size the overflow heap for the exact worst-case occupancy of the insert
  // stream (grow-only; placement and traffic of fitting runs are unchanged).
  // The symmetric heap below is budgeted from the EFFECTIVE sizes.
  const Config cfg = with_sized_overflow(cfg0, nranks);
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);
  bool exhausted = false;

  const std::uint64_t n_local = inserts_per_rank(cfg, nranks);
  const std::uint64_t actual = n_local * static_cast<std::uint64_t>(nranks);

  std::vector<Partition> parts;
  parts.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) parts.emplace_back(cfg);
  std::vector<std::uint64_t> collisions(static_cast<std::size_t>(nranks), 0);
  double t0 = 0, t1 = 0;

  shmem::World::Options wopt;
  wopt.heap_bytes =
      (cfg.slots_per_rank * 2 + cfg.overflow_per_rank * 2 + 8) * 8 +
      (1u << 16);

  const auto run = shmem::World::run(
      eng,
      [&](shmem::Ctx& s) {
        auto table = s.allocate<std::uint64_t>(cfg.slots_per_rank);
        auto tail = s.allocate<std::uint64_t>(cfg.slots_per_rank);
        auto next = s.allocate<std::uint64_t>(1);
        auto over = s.allocate<std::uint64_t>(2 * cfg.overflow_per_rank);

        s.barrier_all();
        if (s.pe() == 0) t0 = s.now();

        const std::uint64_t base =
            static_cast<std::uint64_t>(s.pe()) * n_local;
        for (std::uint64_t k = 0; k < n_local; ++k) {
          const std::uint64_t key = key_for(cfg.seed, base + k);
          const Placement pl = place(key, nranks, cfg.slots_per_rank);
          const std::uint64_t old =
              s.atomic_compare_swap(table.at(pl.slot), 0, key, pl.owner);
          if (old == 0) continue;
          ++collisions[static_cast<std::size_t>(s.pe())];
          const std::uint64_t idx = s.atomic_fetch_add(next, 1, pl.owner);
          if (idx >= cfg.overflow_per_rank) {
            // Unreachable for the generated stream (auto-sized above); a
            // hand-built Config degrades to an error status, not an abort.
            exhausted = true;
            continue;
          }
          std::uint64_t guess = 0;
          for (;;) {
            const std::uint64_t node[2] = {key, guess};
            s.put_nbi(over.at(2 * idx), node, 2, pl.owner);
            // FIFO per PE pair orders the node write before the CAS below.
            const std::uint64_t prev_tail = s.atomic_compare_swap(
                tail.at(pl.slot), guess, idx + 1, pl.owner);
            if (prev_tail == guess) break;
            guess = prev_tail;
          }
        }
        s.quiet();

        s.barrier_all();  // applies every in-flight delivery
        if (s.pe() == 0) t1 = s.now();

        // Copy my partition out for host-side verification.
        Partition& mine = parts[static_cast<std::size_t>(s.pe())];
        std::memcpy(mine.table.data(), s.local(table),
                    cfg.slots_per_rank * 8);
        std::memcpy(mine.tail.data(), s.local(tail), cfg.slots_per_rank * 8);
        std::memcpy(mine.overflow.data(), s.local(over),
                    2 * cfg.overflow_per_rank * 8);
        mine.next_free = *s.local(next);
      },
      wopt);

  Result out;
  out.status = run.status;
  if (exhausted && out.status.is_ok()) {
    out.status =
        Status(ErrorCode::kResourceExhausted, "overflow heap exhausted");
  }
  out.time_us = t1 - t0;
  out.inserted = actual;
  out.updates_per_sec =
      out.time_us > 0 ? static_cast<double>(actual) / (out.time_us * 1e-6) : 0;
  for (std::uint64_t v : collisions) out.collisions += v;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok() && !exhausted) {
    out.verify_ok = verify_partitions(parts, cfg, actual).is_ok();
  }
  out.msgs = eng.trace().summarize(simnet::OpKind::kAtomic);
  return out;
}

}  // namespace mrl::workloads::hashtable
