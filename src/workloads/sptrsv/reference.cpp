// Sequential supernodal forward substitution — the verification oracle for
// all three distributed variants, plus shared dense kernels and the
// platform compute-charge model.
#include <algorithm>
#include <cmath>

#include "util/status.hpp"
#include "workloads/sptrsv/kernels.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

namespace mrl::workloads::sptrsv {

namespace detail {

void trsv_lower(const std::vector<double>& diag, double* x, int size) {
  for (int r = 0; r < size; ++r) {
    double acc = x[r];
    for (int c = 0; c < r; ++c) {
      acc -= diag[static_cast<std::size_t>(r) * size + c] * x[c];
    }
    x[r] = acc / diag[static_cast<std::size_t>(r) * size + r];
  }
}

void gemv_sub(const std::vector<double>& B, const double* x, double* acc,
              int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    double s = 0;
    for (int c = 0; c < cols; ++c) {
      s += B[static_cast<std::size_t>(r) * cols + c] * x[c];
    }
    acc[r] -= s;
  }
}

}  // namespace detail

std::vector<double> reference_solve(const SupernodalMatrix& L,
                                    const std::vector<double>& b) {
  MRL_CHECK(static_cast<int>(b.size()) == L.n());
  std::vector<double> x = b;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    const int first = L.sn_first(J);
    const int cj = L.sn_size(J);
    detail::trsv_lower(L.diag(J), x.data() + first, cj);
    for (const SupernodalMatrix::Block& blk : L.col(J)) {
      detail::gemv_sub(blk.vals, x.data() + first,
                       x.data() + L.sn_first(blk.I), L.sn_size(blk.I), cj);
    }
  }
  return x;
}

double relative_error(const std::vector<double>& x,
                      const std::vector<double>& y) {
  MRL_CHECK(x.size() == y.size() && !x.empty());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num = std::max(num, std::abs(x[i] - y[i]));
    den = std::max(den, std::abs(y[i]));
  }
  return den > 0 ? num / den : num;
}

double kernel_time_us(const simnet::Platform& platform, double flops) {
  const simnet::ComputeModel& cm = platform.compute();
  if (cm.lanes > 1) {
    // Tiny GEMV/TRSV kernels run far below peak on a GPU; charge a low
    // efficiency plus a per-kernel floor (persistent-kernel dispatch).
    return std::max(flops / (cm.flops_per_us * 0.002), 0.05);
  }
  return flops / cm.flops_per_us;
}

}  // namespace mrl::workloads::sptrsv
