// Internal dense kernels shared by the SpTRSV reference and the distributed
// variants.
#pragma once

#include <vector>

namespace mrl::workloads::sptrsv::detail {

/// x_J <- L_JJ^{-1} x_J (dense lower-triangular, row-major `size` x `size`).
void trsv_lower(const std::vector<double>& diag, double* x, int size);

/// acc -= B * x  (B is rows x cols row-major).
void gemv_sub(const std::vector<double>& B, const double* x, double* acc,
              int rows, int cols);

}  // namespace mrl::workloads::sptrsv::detail
