// One-sided SpTRSV: the paper's 4-operation message —
//   MPI_Put(data); MPI_Win_flush; MPI_Put(signal); MPI_Win_flush;
// plus the Listing-1 receiver acknowledgment: scan the whole signal array
// once per expected message, charging per-element poll cost. This is the
// variant whose extra operations and ack scan make it SLOWER than two-sided
// and stop it scaling at high process counts (Fig 8).
#include <algorithm>
#include <cstring>

#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "workloads/sptrsv/solver_core.hpp"

namespace mrl::workloads::sptrsv {

Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> b = L.make_rhs(cfg.rhs_seed);
  const std::vector<double> ref =
      cfg.verify ? reference_solve(L, b) : std::vector<double>{};

  std::vector<double> x_global(static_cast<std::size_t>(L.n()), 0.0);
  double t0 = 0, t1 = 0;

  std::uint64_t max_sn = 0;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    max_sn = std::max(max_sn, static_cast<std::uint64_t>(L.sn_size(J)));
  }
  const std::uint64_t slot_bytes = max_sn * 8;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    const SolvePlan plan = SolvePlan::build(L, nranks, c.rank());
    const int my_slots = plan.total_slots(c.rank());

    // Window layout: [slots * slot_bytes data][slots * 8 signal words].
    std::vector<std::byte> winmem(
        static_cast<std::size_t>(my_slots) * (slot_bytes + 8), std::byte{0});
    mpi::WinHandle win = c.create_win(winmem.data(), winmem.size());
    auto sig_at = [&](int slot) {
      std::uint64_t v = 0;
      std::memcpy(&v,
                  winmem.data() +
                      static_cast<std::size_t>(my_slots) * slot_bytes +
                      static_cast<std::size_t>(slot) * 8,
                  8);
      return v;
    };

    // The paper's 4-op send: put data, flush, put signal, flush.
    auto send_slot = [&](int dest, int slot, const double* vals, int count) {
      const std::uint64_t dest_slots =
          static_cast<std::uint64_t>(plan.total_slots(dest));
      win.put(vals, static_cast<std::uint64_t>(count) * 8, dest,
              static_cast<std::uint64_t>(slot) * slot_bytes);
      win.flush(dest);
      const std::uint64_t one = 1;
      win.put(&one, 8, dest, dest_slots * slot_bytes +
                                 static_cast<std::uint64_t>(slot) * 8,
              simnet::OpKind::kSignal);
      win.flush(dest);
    };

    SolverCore core(
        L, plan, b, platform,
        [&](int J, const double* xv, int dest) {
          send_slot(dest, plan.x_slot(dest, J), xv, L.sn_size(J));
        },
        [&](int I, const double* sv, int dest) {
          send_slot(dest, plan.lsum_slot(dest, I, c.rank()), sv, L.sn_size(I));
        },
        [&](double us) { c.compute(us); });

    c.barrier();
    if (c.rank() == 0) t0 = c.now();

    core.start();
    // Listing 1: receiver acknowledgment scan.
    const int n_x = static_cast<int>(plan.x_cols[static_cast<std::size_t>(
        c.rank())].size());
    std::vector<std::int8_t> valid(static_cast<std::size_t>(my_slots), 0);
    int recv_count = 0;
    std::vector<double> vals(static_cast<std::size_t>(max_sn));
    while (recv_count < my_slots) {
      bool any = false;
      win.sync();  // make arrived puts visible (MPI_Win_sync)
      // One full pass over the mask array, charged per element — the
      // "extra work to maintain data arrival" of Sec III-B.
      c.compute(cfg.poll_cost_us * my_slots);
      for (int i = 0; i < my_slots; ++i) {
        if (valid[static_cast<std::size_t>(i)] != 0) continue;
        if (sig_at(i) != 1) continue;
        valid[static_cast<std::size_t>(i)] = 1;
        ++recv_count;
        any = true;
        std::memcpy(vals.data(),
                    winmem.data() + static_cast<std::size_t>(i) * slot_bytes,
                    slot_bytes);
        if (i < n_x) {
          core.on_x(plan.x_cols[static_cast<std::size_t>(c.rank())]
                               [static_cast<std::size_t>(i)],
                    vals.data());
        } else {
          const auto& pr = plan.lsum_pairs[static_cast<std::size_t>(c.rank())]
                                          [static_cast<std::size_t>(i - n_x)];
          core.on_lsum(pr.first, vals.data());
        }
      }
      if (!any && recv_count < my_slots) win.wait_any_unapplied();
    }

    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    for (int J : plan.my_diag) {
      const int f = L.sn_first(J);
      for (int i = 0; i < L.sn_size(J); ++i) {
        x_global[static_cast<std::size_t>(f + i)] =
            core.x()[static_cast<std::size_t>(f + i)];
      }
    }
  });

  Result out;
  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok()) out.rel_err = relative_error(x_global, ref);
  out.msgs = eng.trace().summarize(simnet::OpKind::kPut);
  return out;
}

}  // namespace mrl::workloads::sptrsv
