// 2D block-cyclic partitioning and the precomputed solve plan.
#include <algorithm>
#include <set>

#include "util/status.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

namespace mrl::workloads::sptrsv {

ProcessGrid ProcessGrid::near_square(int nranks) {
  MRL_CHECK(nranks >= 1);
  int best = 1;
  for (int p = 1; p * p <= nranks; ++p) {
    if (nranks % p == 0) best = p;
  }
  ProcessGrid g;
  g.pr = best;
  g.pc = nranks / best;
  return g;
}

int SolvePlan::x_slot(int rank, int J) const {
  const auto& cols = x_cols[static_cast<std::size_t>(rank)];
  const auto it = std::lower_bound(cols.begin(), cols.end(), J);
  MRL_CHECK(it != cols.end() && *it == J);
  return static_cast<int>(it - cols.begin());
}

int SolvePlan::lsum_slot(int rank, int I, int src) const {
  const auto& pairs = lsum_pairs[static_cast<std::size_t>(rank)];
  const auto it =
      std::lower_bound(pairs.begin(), pairs.end(), std::make_pair(I, src));
  MRL_CHECK(it != pairs.end() && it->first == I && it->second == src);
  return static_cast<int>(x_cols[static_cast<std::size_t>(rank)].size() +
                          (it - pairs.begin()));
}

SolvePlan SolvePlan::build(const SupernodalMatrix& L, int nranks, int me) {
  SolvePlan plan;
  plan.grid = ProcessGrid::near_square(nranks);
  plan.me = me;
  const int S = L.num_supernodes();
  plan.col_blocks.resize(static_cast<std::size_t>(S));
  plan.row_remaining.assign(static_cast<std::size_t>(S), 0);
  plan.deps.assign(static_cast<std::size_t>(S), 0);
  plan.fanout.resize(static_cast<std::size_t>(S));
  plan.x_cols.resize(static_cast<std::size_t>(nranks));
  plan.lsum_pairs.resize(static_cast<std::size_t>(nranks));

  std::vector<std::set<int>> contributors(static_cast<std::size_t>(S));
  for (int J = 0; J < S; ++J) {
    const int d = plan.grid.owner(J, J);
    std::set<int> col_owners;
    for (const SupernodalMatrix::Block& blk : L.col(J)) {
      const int o = plan.grid.owner(blk.I, J);
      col_owners.insert(o);
      contributors[static_cast<std::size_t>(blk.I)].insert(o);
      if (o == me) {
        plan.col_blocks[static_cast<std::size_t>(J)].push_back(
            static_cast<int>(plan.my_blocks.size()));
        plan.my_blocks.push_back(LocalBlock{blk.I, J, &blk});
        ++plan.row_remaining[static_cast<std::size_t>(blk.I)];
      }
    }
    if (d == me) plan.my_diag.push_back(J);
    for (int o : col_owners) {
      if (o == d) continue;  // the diagonal owner uses its x locally
      plan.fanout[static_cast<std::size_t>(J)].push_back(o);
      plan.x_cols[static_cast<std::size_t>(o)].push_back(J);
      if (o == me) ++plan.expected_x;
    }
  }
  for (int I = 0; I < S; ++I) {
    const int d = plan.grid.owner(I, I);
    bool local_contrib = false;
    for (int c : contributors[static_cast<std::size_t>(I)]) {
      if (c == d) {
        local_contrib = true;
        continue;
      }
      plan.lsum_pairs[static_cast<std::size_t>(d)].emplace_back(I, c);
      if (d == me) ++plan.expected_lsum;
      if (d == me) ++plan.deps[static_cast<std::size_t>(I)];
    }
    if (d == me && local_contrib) ++plan.deps[static_cast<std::size_t>(I)];
  }
  // x_cols are filled in ascending J; lsum_pairs in ascending (I, src)
  // because the outer loop ascends over I and sets iterate in order.
  return plan;
}

}  // namespace mrl::workloads::sptrsv
