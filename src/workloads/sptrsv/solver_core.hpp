// The DAG execution core shared by all three SpTRSV variants. Communication
// is injected through callbacks so the same dependency/accumulation logic is
// exercised by two-sided MPI, 4-op one-sided MPI, and SHMEM put-with-signal.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "util/status.hpp"
#include "workloads/sptrsv/kernels.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

namespace mrl::workloads::sptrsv {

class SolverCore {
 public:
  /// send_x(J, values, dest): fan x_J out to `dest`.
  /// send_lsum(I, values, dest): send my accumulated partial sum for row I.
  /// charge(us): account compute virtual time.
  SolverCore(const SupernodalMatrix& L, const SolvePlan& plan,
             const std::vector<double>& b, const simnet::Platform& platform,
             std::function<void(int, const double*, int)> send_x,
             std::function<void(int, const double*, int)> send_lsum,
             std::function<void(double)> charge)
      : L_(L),
        plan_(plan),
        platform_(platform),
        send_x_(std::move(send_x)),
        send_lsum_(std::move(send_lsum)),
        charge_(std::move(charge)),
        row_remaining_(plan.row_remaining),
        deps_(plan.deps),
        x_(static_cast<std::size_t>(L.n()), 0.0),
        acc_(static_cast<std::size_t>(L.n()), 0.0) {
    // Diagonal owners start from the right-hand side.
    for (int J : plan_.my_diag) {
      const int f = L_.sn_first(J);
      for (int i = 0; i < L_.sn_size(J); ++i) {
        x_[static_cast<std::size_t>(f + i)] = b[static_cast<std::size_t>(f + i)];
      }
    }
  }

  /// Solves every initially-ready supernode (no incoming dependencies).
  void start() {
    for (int J : plan_.my_diag) {
      if (deps_[static_cast<std::size_t>(J)] == 0) ready_.push_back(J);
    }
    drain();
  }

  /// Handles a received x_J broadcast.
  void on_x(int J, const double* xvals) {
    process_column(J, xvals);
    drain();
  }

  /// Handles a received partial-sum message for row I.
  void on_lsum(int I, const double* vals) {
    MRL_CHECK(plan_.grid.owner(I, I) == plan_.me);
    const int f = L_.sn_first(I);
    for (int i = 0; i < L_.sn_size(I); ++i) {
      x_[static_cast<std::size_t>(f + i)] -= vals[i];
    }
    complete_dep(I);
    drain();
  }

  /// Solution vector; only segments of supernodes whose diagonal I own are
  /// meaningful.
  [[nodiscard]] const std::vector<double>& x() const { return x_; }
  [[nodiscard]] int solved_count() const { return solved_; }

 private:
  void drain() {
    while (!ready_.empty()) {
      const int J = ready_.front();
      ready_.pop_front();
      solve_and_fanout(J);
    }
  }

  void complete_dep(int I) {
    int& d = deps_[static_cast<std::size_t>(I)];
    MRL_CHECK(d > 0);
    if (--d == 0) ready_.push_back(I);
  }

  void solve_and_fanout(int J) {
    const int f = L_.sn_first(J);
    const int cj = L_.sn_size(J);
    detail::trsv_lower(L_.diag(J), x_.data() + f, cj);
    charge_(kernel_time_us(platform_, static_cast<double>(cj) * cj));
    ++solved_;
    for (int dest : plan_.fanout[static_cast<std::size_t>(J)]) {
      send_x_(J, x_.data() + f, dest);
    }
    process_column(J, x_.data() + f);  // my own blocks in column J
  }

  void process_column(int J, const double* xvals) {
    for (int idx : plan_.col_blocks[static_cast<std::size_t>(J)]) {
      const SolvePlan::LocalBlock& lb =
          plan_.my_blocks[static_cast<std::size_t>(idx)];
      const int rows = L_.sn_size(lb.I);
      const int fI = L_.sn_first(lb.I);
      // acc holds +sum(L_IJ * x_J); gemv_sub subtracts, so negate by
      // accumulating into a negative buffer: keep acc = sum by subtracting
      // into it and flipping sign at use. Simpler: acc -= B*x, and the
      // row's contribution to x_I is +acc (since x_I -= sum == x_I += acc).
      detail::gemv_sub(lb.block->vals, xvals, acc_.data() + fI, rows,
                       L_.sn_size(J));
      charge_(kernel_time_us(platform_,
                             2.0 * rows * static_cast<double>(L_.sn_size(J))));
      int& rem = row_remaining_[static_cast<std::size_t>(lb.I)];
      MRL_CHECK(rem > 0);
      if (--rem == 0) {
        const int d = plan_.grid.owner(lb.I, lb.I);
        if (d == plan_.me) {
          // Local contribution: x_I += acc_I (acc is the negated sum).
          for (int i = 0; i < rows; ++i) {
            x_[static_cast<std::size_t>(fI + i)] +=
                acc_[static_cast<std::size_t>(fI + i)];
          }
          complete_dep(lb.I);
        } else {
          // Remote: send the positive partial sum (receiver subtracts).
          lsum_buf_.assign(static_cast<std::size_t>(rows), 0.0);
          for (int i = 0; i < rows; ++i) {
            lsum_buf_[static_cast<std::size_t>(i)] =
                -acc_[static_cast<std::size_t>(fI + i)];
          }
          send_lsum_(lb.I, lsum_buf_.data(), d);
        }
      }
    }
  }

  const SupernodalMatrix& L_;
  const SolvePlan& plan_;
  const simnet::Platform& platform_;
  std::function<void(int, const double*, int)> send_x_;
  std::function<void(int, const double*, int)> send_lsum_;
  std::function<void(double)> charge_;
  std::vector<int> row_remaining_;
  std::vector<int> deps_;
  std::vector<double> x_;
  std::vector<double> acc_;
  std::vector<double> lsum_buf_;
  std::deque<int> ready_;
  int solved_ = 0;
};

}  // namespace mrl::workloads::sptrsv
