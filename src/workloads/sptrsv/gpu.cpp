// GPU SpTRSV: NVSHMEM-style — one fused put-with-signal per message and
// nvshmem_wait_until_any in a loop sized by the expected message count
// (Sec III-B). Slot buffers live in the symmetric heap (max slot count
// across PEs keeps allocation symmetric).
#include <algorithm>
#include <cstring>

#include "shmem/shmem.hpp"
#include "workloads/sptrsv/solver_core.hpp"

namespace mrl::workloads::sptrsv {

Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> b = L.make_rhs(cfg.rhs_seed);
  const std::vector<double> ref =
      cfg.verify ? reference_solve(L, b) : std::vector<double>{};

  std::vector<double> x_global(static_cast<std::size_t>(L.n()), 0.0);
  double t0 = 0, t1 = 0;

  std::uint64_t max_sn = 0;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    max_sn = std::max(max_sn, static_cast<std::uint64_t>(L.sn_size(J)));
  }
  const std::uint64_t slot_doubles = max_sn;

  // Symmetric allocations must agree across PEs: size by the max slot count.
  std::uint64_t max_slots = 1;
  for (int r = 0; r < nranks; ++r) {
    const SolvePlan p = SolvePlan::build(L, nranks, r);
    max_slots = std::max(max_slots,
                         static_cast<std::uint64_t>(p.total_slots(r)));
  }

  shmem::World::Options wopt;
  wopt.heap_bytes = max_slots * (slot_doubles * 8 + 8) + (1u << 16);

  const auto run = shmem::World::run(
      eng,
      [&](shmem::Ctx& s) {
        const SolvePlan plan = SolvePlan::build(L, nranks, s.pe());
        const int my_slots = plan.total_slots(s.pe());

        auto data = s.allocate<double>(max_slots * slot_doubles);
        auto sig = s.allocate<std::uint64_t>(max_slots);

        auto send_slot = [&](int dest, int slot, const double* vals,
                             int count) {
          s.put_signal_nbi(
              data.at(static_cast<std::uint64_t>(slot) * slot_doubles), vals,
              static_cast<std::uint64_t>(count),
              sig.at(static_cast<std::uint64_t>(slot)), 1, dest);
        };

        SolverCore core(
            L, plan, b, platform,
            [&](int J, const double* xv, int dest) {
              send_slot(dest, plan.x_slot(dest, J), xv, L.sn_size(J));
            },
            [&](int I, const double* sv, int dest) {
              send_slot(dest, plan.lsum_slot(dest, I, s.pe()), sv,
                        L.sn_size(I));
            },
            [&](double us) { s.compute(us); });

        s.barrier_all();
        if (s.pe() == 0) t0 = s.now();

        core.start();
        const int n_x = static_cast<int>(
            plan.x_cols[static_cast<std::size_t>(s.pe())].size());
        std::vector<std::int32_t> status(
            static_cast<std::size_t>(std::max(my_slots, 1)), 0);
        std::vector<double> vals(static_cast<std::size_t>(max_sn));
        for (int m = 0; m < my_slots; ++m) {
          const std::size_t i = s.wait_until_any(
              sig, static_cast<std::size_t>(my_slots), status.data(), 1);
          status[i] = 1;  // mask out, like the paper's validindex[]
          std::memcpy(vals.data(),
                      s.local(data) + i * slot_doubles, slot_doubles * 8);
          if (static_cast<int>(i) < n_x) {
            core.on_x(plan.x_cols[static_cast<std::size_t>(s.pe())][i],
                      vals.data());
          } else {
            const auto& pr =
                plan.lsum_pairs[static_cast<std::size_t>(s.pe())]
                               [i - static_cast<std::size_t>(n_x)];
            core.on_lsum(pr.first, vals.data());
          }
        }
        s.quiet();

        s.barrier_all();
        if (s.pe() == 0) t1 = s.now();
        for (int J : plan.my_diag) {
          const int f = L.sn_first(J);
          for (int i = 0; i < L.sn_size(J); ++i) {
            x_global[static_cast<std::size_t>(f + i)] =
                core.x()[static_cast<std::size_t>(f + i)];
          }
        }
      },
      wopt);

  Result out;
  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok()) out.rel_err = relative_error(x_global, ref);
  out.msgs = eng.trace().summarize(simnet::OpKind::kPutSignal);
  return out;
}

}  // namespace mrl::workloads::sptrsv
