// Sparse triangular solve (SpTRSV) on a supernodal lower-triangular factor —
// the paper's DAG workload (Sec III-B).
//
// The matrix is a synthetic supernodal L mimicking an LU factor from
// SuperLU_DIST (the paper used an M3D-C1 fusion matrix, 126K x 126K, 1e8
// nnz): consecutive columns grouped into supernodes, a dense lower-
// triangular diagonal block per supernode, and dense off-diagonal row
// blocks with distance-decaying fill. Message sizes equal supernode sizes
// (24 B .. 1040 B, avg ~100 words — Table II).
//
// Distribution: 2D block-cyclic over a pr x pc process grid. The solve is
// the standard supernodal forward substitution:
//   1. the diagonal owner of J solves x_J once all partial sums arrived,
//   2. x_J fans out to every process owning an off-diagonal block in col J,
//   3. block owners accumulate L_IJ * x_J into per-row partial sums and send
//      one message per (process, row) to the diagonal owner.
//
// Variants:
//   two-sided  — MPI_Isend + MPI_Recv(ANY_SOURCE) loop (1 op per message)
//   one-sided  — MPI_Put(data) + flush + MPI_Put(signal) + flush (4 ops) and
//                the paper's Listing-1 receiver-acknowledgment scan loop
//   shmem GPU  — put_signal_nbi + wait_until_any (1 op per message)
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "simnet/platform.hpp"
#include "simnet/trace.hpp"
#include "util/status.hpp"

namespace mrl::workloads::sptrsv {

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

struct GenConfig {
  int n = 3000;           ///< dimension
  int min_sn = 3;         ///< min supernode size (24 B messages)
  int max_sn = 130;       ///< max supernode size (1040 B messages)
  double fill = 4.0;      ///< average off-diagonal blocks per supernode column
  /// Fraction of fill placed with 1/distance decay (near-diagonal bands);
  /// the rest lands uniformly below the diagonal. Low locality gives the
  /// wide elimination-tree parallelism of real reordered factors; high
  /// locality produces long sequential dependency chains.
  double locality = 0.45;
  std::uint64_t seed = 7;
};

/// Supernodal lower-triangular matrix in block-column storage.
class SupernodalMatrix {
 public:
  struct Block {
    int I = 0;                 ///< supernode row index
    std::vector<double> vals;  ///< dense rows(I) x cols(J), row-major
  };

  static SupernodalMatrix generate(const GenConfig& cfg);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int num_supernodes() const {
    return static_cast<int>(sn_start_.size()) - 1;
  }
  [[nodiscard]] int sn_first(int J) const { return sn_start_[J]; }
  [[nodiscard]] int sn_size(int J) const {
    return sn_start_[J + 1] - sn_start_[J];
  }
  /// Dense lower-triangular diagonal block of J (size x size, row-major).
  [[nodiscard]] const std::vector<double>& diag(int J) const {
    return diag_[J];
  }
  /// Off-diagonal blocks of column J, sorted by ascending I.
  [[nodiscard]] const std::vector<Block>& col(int J) const { return cols_[J]; }

  [[nodiscard]] std::uint64_t nnz() const;

  /// Deterministic right-hand side for this matrix/seed.
  [[nodiscard]] std::vector<double> make_rhs(std::uint64_t seed) const;

 private:
  int n_ = 0;
  std::vector<int> sn_start_;               // size S+1
  std::vector<std::vector<double>> diag_;   // per supernode
  std::vector<std::vector<Block>> cols_;    // per supernode column
};

/// Sequential supernodal forward substitution (the verification oracle).
std::vector<double> reference_solve(const SupernodalMatrix& L,
                                    const std::vector<double>& b);

/// Normwise relative error max_i |x-y| / max_i |y|.
double relative_error(const std::vector<double>& x,
                      const std::vector<double>& y);

// ---------------------------------------------------------------------------
// Partition / solve plan
// ---------------------------------------------------------------------------

/// 2D block-cyclic process grid.
struct ProcessGrid {
  int pr = 1, pc = 1;
  [[nodiscard]] int owner(int I, int J) const {
    return (I % pr) * pc + (J % pc);
  }
  [[nodiscard]] int size() const { return pr * pc; }
  static ProcessGrid near_square(int nranks);
};

/// Everything a rank needs to run the solve, precomputed identically on all
/// ranks from the shared matrix structure.
struct SolvePlan {
  ProcessGrid grid;
  int me = -1;

  struct LocalBlock {
    int I, J;
    const SupernodalMatrix::Block* block;
  };
  std::vector<LocalBlock> my_blocks;          ///< off-diagonal blocks I own
  std::vector<int> my_diag;                   ///< supernodes whose diag I own

  std::vector<std::vector<int>> col_blocks;   ///< my block idx per column J
  std::vector<int> row_remaining;             ///< my unprocessed blocks per row
  std::vector<int> deps;                      ///< diag-owner: outstanding contribs
  std::vector<std::vector<int>> fanout;       ///< per col J: ranks needing x_J

  int expected_x = 0;      ///< x messages I will receive
  int expected_lsum = 0;   ///< partial-sum messages I will receive

  /// One-sided slot maps (receiver-side order; identical on every rank).
  /// x slot for (rank, J) and lsum slot for (diag owner, I, contributor).
  std::vector<std::vector<int>> x_cols;       ///< per rank: sorted cols expected
  std::vector<std::vector<std::pair<int, int>>> lsum_pairs;  ///< per rank: (I, src)

  [[nodiscard]] int total_slots(int rank) const {
    return static_cast<int>(x_cols[rank].size() + lsum_pairs[rank].size());
  }
  /// Slot index of column J's x message at `rank` (slots order: x then lsum).
  [[nodiscard]] int x_slot(int rank, int J) const;
  /// Slot index of the (I, src) partial-sum message at `rank`.
  [[nodiscard]] int lsum_slot(int rank, int I, int src) const;

  static SolvePlan build(const SupernodalMatrix& L, int nranks, int me);
};

// ---------------------------------------------------------------------------
// Runs
// ---------------------------------------------------------------------------

struct Config {
  GenConfig gen;
  std::uint64_t rhs_seed = 99;
  bool verify = true;
  double poll_cost_us = 0.003;  ///< Listing-1 per-element scan cost (CPU)
};

struct Result {
  double time_us = 0;
  double rel_err = 0;
  bool verified = false;
  simnet::TraceSummary msgs;  ///< data messages (kSend / kPut / kPutSignal)
  Status status;
};

Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg);
Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg);
Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg);

/// Compute-time charge for a dense kernel of `flops` on this platform.
double kernel_time_us(const simnet::Platform& platform, double flops);

}  // namespace mrl::workloads::sptrsv
