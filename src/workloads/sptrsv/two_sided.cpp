// Two-sided SpTRSV: MPI_Isend for x fan-out and partial sums; a
// MPI_Recv(ANY_SOURCE) loop sized by the precomputed expected message count
// (the paper's baseline, Sec III-B).
#include <cstring>

#include "mpi/comm.hpp"
#include "workloads/sptrsv/solver_core.hpp"

namespace mrl::workloads::sptrsv {

namespace {
constexpr int kTagX = 0;
constexpr int kTagLsum = 1;
}  // namespace

Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const SupernodalMatrix& L, const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> b = L.make_rhs(cfg.rhs_seed);
  const std::vector<double> ref =
      cfg.verify ? reference_solve(L, b) : std::vector<double>{};

  std::vector<double> x_global(static_cast<std::size_t>(L.n()), 0.0);
  double t0 = 0, t1 = 0;

  int max_sn = 0;
  for (int J = 0; J < L.num_supernodes(); ++J) {
    max_sn = std::max(max_sn, L.sn_size(J));
  }

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    const SolvePlan plan = SolvePlan::build(L, nranks, c.rank());
    std::vector<std::byte> sendbuf(8 + static_cast<std::size_t>(max_sn) * 8);
    auto send_msg = [&](int id, const double* vals, int count, int dest,
                        int tag) {
      const std::int64_t id64 = id;
      std::memcpy(sendbuf.data(), &id64, 8);
      std::memcpy(sendbuf.data() + 8, vals,
                  static_cast<std::size_t>(count) * 8);
      // Eager protocol: payload is captured at issue; the request's only
      // use would be local buffer reuse, which the copy already covers.
      mpi::Request req = c.isend(
          sendbuf.data(), 8 + static_cast<std::size_t>(count) * 8, dest, tag);
      static_cast<void>(req);
    };

    SolverCore core(
        L, plan, b, platform,
        [&](int J, const double* xv, int dest) {
          send_msg(J, xv, L.sn_size(J), dest, kTagX);
        },
        [&](int I, const double* sv, int dest) {
          send_msg(I, sv, L.sn_size(I), dest, kTagLsum);
        },
        [&](double us) { c.compute(us); });

    c.barrier();
    if (c.rank() == 0) t0 = c.now();

    core.start();
    std::vector<std::byte> recvbuf(sendbuf.size());
    std::vector<double> vals(static_cast<std::size_t>(max_sn));
    for (int m = 0; m < plan.expected_x + plan.expected_lsum; ++m) {
      const mpi::RecvInfo info =
          c.recv(recvbuf.data(), recvbuf.size(), mpi::kAnySource, mpi::kAnyTag);
      std::int64_t id64 = 0;
      std::memcpy(&id64, recvbuf.data(), 8);
      std::memcpy(vals.data(), recvbuf.data() + 8, info.bytes - 8);
      if (info.tag == kTagX) {
        core.on_x(static_cast<int>(id64), vals.data());
      } else {
        core.on_lsum(static_cast<int>(id64), vals.data());
      }
    }

    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    // Publish my solved segments (ranks own disjoint segments).
    for (int J : plan.my_diag) {
      const int f = L.sn_first(J);
      for (int i = 0; i < L.sn_size(J); ++i) {
        x_global[static_cast<std::size_t>(f + i)] =
            core.x()[static_cast<std::size_t>(f + i)];
      }
    }
  });

  Result out;
  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  if (cfg.verify && run.ok()) out.rel_err = relative_error(x_global, ref);
  out.msgs = eng.trace().summarize(simnet::OpKind::kSend);
  return out;
}

}  // namespace mrl::workloads::sptrsv
