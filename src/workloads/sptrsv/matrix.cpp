#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "workloads/sptrsv/sptrsv.hpp"

namespace mrl::workloads::sptrsv {

SupernodalMatrix SupernodalMatrix::generate(const GenConfig& cfg) {
  MRL_CHECK(cfg.n > cfg.max_sn && cfg.min_sn >= 1);
  MRL_CHECK(cfg.max_sn >= cfg.min_sn);
  Xoshiro256 rng(cfg.seed);

  SupernodalMatrix m;
  m.n_ = cfg.n;
  // Partition columns into supernodes; sqrt-skewed sizes push the average
  // towards the paper's ~100 words per message.
  m.sn_start_.push_back(0);
  while (m.sn_start_.back() < cfg.n) {
    const double u = rng.uniform01();
    int size = cfg.min_sn +
               static_cast<int>(std::sqrt(u) * (cfg.max_sn - cfg.min_sn));
    size = std::min(size, cfg.n - m.sn_start_.back());
    m.sn_start_.push_back(m.sn_start_.back() + size);
  }
  const int S = m.num_supernodes();
  m.diag_.resize(static_cast<std::size_t>(S));
  m.cols_.resize(static_cast<std::size_t>(S));

  auto rnd_val = [&rng] { return rng.uniform_real(-1.0, 1.0); };

  for (int J = 0; J < S; ++J) {
    const int cj = m.sn_size(J);
    // Dense lower-triangular diagonal block with dominant diagonal.
    auto& dg = m.diag_[static_cast<std::size_t>(J)];
    dg.assign(static_cast<std::size_t>(cj) * cj, 0.0);
    for (int r = 0; r < cj; ++r) {
      double rowsum = 0;
      for (int c = 0; c < r; ++c) {
        const double v = rnd_val();
        dg[static_cast<std::size_t>(r) * cj + c] = v;
        rowsum += std::abs(v);
      }
      dg[static_cast<std::size_t>(r) * cj + r] = rowsum + 1.0;
    }
    // Off-diagonal row blocks: a locality-weighted mix of near-diagonal
    // (1/distance) and uniform Bernoulli fill, expected cfg.fill blocks per
    // column.
    if (J + 1 < S) {
      double weight_total = 0;
      for (int I = J + 1; I < S; ++I) weight_total += 1.0 / (I - J);
      const double uniform_p = cfg.fill * (1.0 - cfg.locality) / (S - J - 1);
      for (int I = J + 1; I < S; ++I) {
        const double decay_p =
            cfg.fill * cfg.locality * (1.0 / (I - J)) / weight_total;
        const double p = std::min(1.0, decay_p + uniform_p);
        if (!rng.bernoulli(p)) continue;
        Block b;
        b.I = I;
        const int ri = m.sn_size(I);
        b.vals.resize(static_cast<std::size_t>(ri) * cj);
        for (double& v : b.vals) v = rnd_val() * 0.5;
        m.cols_[static_cast<std::size_t>(J)].push_back(std::move(b));
      }
    }
  }
  return m;
}

std::uint64_t SupernodalMatrix::nnz() const {
  std::uint64_t total = 0;
  for (int J = 0; J < num_supernodes(); ++J) {
    const int cj = sn_size(J);
    total += static_cast<std::uint64_t>(cj) * (cj + 1) / 2;
    for (const Block& b : cols_[static_cast<std::size_t>(J)]) {
      total += static_cast<std::uint64_t>(sn_size(b.I)) * cj;
    }
  }
  return total;
}

std::vector<double> SupernodalMatrix::make_rhs(std::uint64_t seed) const {
  Xoshiro256 rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n_));
  for (double& v : b) v = rng.uniform_real(-1.0, 1.0);
  return b;
}

}  // namespace mrl::workloads::sptrsv
