// Embedding lookup over minimpi RMA windows: each rank exposes its table
// shard through a window and serves its query stream with blocking
// MPI_Get-style reads (request/response round trips), batch by batch.
#include <algorithm>
#include <cstring>

#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "util/stats.hpp"
#include "workloads/embedding/embedding.hpp"

namespace mrl::workloads::embedding {

namespace {
// Host-side pooling/reduction cost per gathered element (us): charged per
// query over lookups × dim whether the row came from the fabric or a
// replica, so caching changes network time only.
constexpr double kPoolUsPerElem = 5e-4;
}  // namespace

Result run_mpi(const simnet::Platform& platform, int nranks,
               const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);
  const ZipfGen zipf(cfg.rows, cfg.zipf_s);
  const std::uint64_t qpr = cfg.queries_per_rank;

  std::vector<double> latency(static_cast<std::size_t>(nranks) * qpr, 0.0);
  std::vector<std::uint64_t> gets(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> naive(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(nranks), 0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    const int p = c.rank();
    const auto sp = static_cast<std::size_t>(p);
    const std::uint64_t elems =
        local_elems(cfg.policy, p, nranks, cfg.rows, cfg.dim);
    std::vector<float> shard(std::max<std::uint64_t>(elems, 1), 0.0f);
    // Shards are filled before create_win exposes them, so no local_write
    // annotations are needed: nothing can race with pre-exposure stores.
    for (std::uint64_t e = 0; e < elems; ++e) {
      const RowCol rc =
          elem_to_rowcol(cfg.policy, p, nranks, cfg.rows, cfg.dim, e);
      shard[e] = table_value(rc.row, rc.col);
    }
    mpi::WinHandle win =
        c.create_win(shard.data(), shard.size() * sizeof(float));

    c.barrier();
    if (p == 0) t0 = c.now();

    std::vector<std::uint64_t> rows_buf;
    std::vector<std::uint64_t> batch_rows;
    std::vector<GetSpan> spans;
    std::vector<float> staging;
    for (std::uint64_t q0 = 0; q0 < qpr; q0 += cfg.batch) {
      const std::uint64_t nq = std::min(cfg.batch, qpr - q0);
      const simnet::TimeUs t_batch = c.now();
      batch_rows.clear();
      for (std::uint64_t i = 0; i < nq; ++i) {
        const std::uint64_t gid = static_cast<std::uint64_t>(p) * qpr + q0 + i;
        query_rows(zipf, cfg.seed, gid, cfg.lookups_per_query, rows_buf);
        for (const std::uint64_t row : rows_buf) {
          if (row < cfg.hot_rows) {
            ++hits[sp];  // replicated heavy hitter: no fabric traffic
            continue;
          }
          batch_rows.push_back(row);
        }
      }
      naive[sp] += build_spans(cfg.policy, nranks, cfg.rows, cfg.dim,
                               batch_rows, cfg.combine, spans);
      std::uint64_t total = 0;
      for (const GetSpan& s : spans) total += s.elems;
      staging.resize(std::max<std::uint64_t>(total, 1));
      std::uint64_t soff = 0;
      // Single serving thread: gets issue serially (each is a blocking
      // round trip), exactly the small-op pattern the roofline model bills.
      for (const GetSpan& s : spans) {
        win.get(staging.data() + soff, s.elems * sizeof(float), s.owner,
                s.elem_off * sizeof(float));
        soff += s.elems;
      }
      gets[sp] += spans.size();
      bytes[sp] += total * sizeof(float);
      c.compute(kPoolUsPerElem * static_cast<double>(nq) *
                static_cast<double>(cfg.lookups_per_query) *
                static_cast<double>(cfg.dim));
      const double lat = c.now() - t_batch;
      for (std::uint64_t i = 0; i < nq; ++i) {
        latency[sp * qpr + q0 + i] = lat;
        eng.metrics().on_query(p, lat);
      }
      if (cfg.verify) {
        soff = 0;
        for (const GetSpan& s : spans) {
          for (std::uint64_t e = 0; e < s.elems; ++e) {
            const RowCol rc = elem_to_rowcol(cfg.policy, s.owner, nranks,
                                             cfg.rows, cfg.dim, s.elem_off + e);
            if (staging[soff + e] != table_value(rc.row, rc.col)) bad[sp] = 1;
          }
          soff += s.elems;
        }
      }
    }

    c.barrier();
    if (p == 0) t1 = c.now();
    win.fence();
  });

  Result out;
  out.status = run.status;
  out.time_us = t1 - t0;
  out.queries = qpr * static_cast<std::uint64_t>(nranks);
  out.qps = out.time_us > 0
                ? static_cast<double>(out.queries) / (out.time_us * 1e-6)
                : 0;
  if (!latency.empty() && run.ok()) {
    out.p50_us = percentile(latency, 50);
    out.p95_us = percentile(latency, 95);
    out.p99_us = percentile(latency, 99);
  }
  for (int r = 0; r < nranks; ++r) {
    const auto sr = static_cast<std::size_t>(r);
    out.gets += gets[sr];
    out.gets_naive += naive[sr];
    out.cache_hits += hits[sr];
    out.bytes += bytes[sr];
  }
  out.verified = cfg.verify;
  if (cfg.verify && run.ok()) {
    out.verify_ok =
        std::none_of(bad.begin(), bad.end(), [](std::uint8_t b) { return b; });
  }
  out.msgs = eng.trace().summarize();
  return out;
}

}  // namespace mrl::workloads::embedding
