// Distributed embedding-lookup serving — the DLRM-style inference workload
// (PAPERS.md: "Dissecting Embedding Bag Performance in DLRM Inference") on
// the one-sided machinery. The first latency-SLO scenario in the repo: the
// stencil/SpTRSV/hashtable benches measure throughput; this one measures
// queries/sec against p99 per-query latency.
//
// Shape: an (rows × dim) float table sharded across ranks. Each rank is a
// serving thread receiving batches of queries; a query gathers
// `lookups_per_query` rows (Zipf-distributed — real embedding traffic is
// heavily skewed toward a few hot rows) via blocking one-sided gets and
// pools them. Three levers the bench sweeps:
//
//   - Shard policy. kRow (row r lives whole on rank r % P), kColumn (every
//     rank owns a dim-slice of all rows; each lookup touches all P ranks),
//     kHybrid (Pr × Pc grid; each lookup touches Pc ranks).
//   - Software combining. Per batch and per owner, requested row slices are
//     deduplicated, sorted by local offset and merged into maximal
//     contiguous gets — the classic answer to the per-message α the roofline
//     model charges small ops. Skew makes combining *more* effective (hot
//     rows repeat within a batch), which is exactly the measurable ablation.
//   - Hot-row replication. Rows [0, hot_rows) — the Zipf head, since row ids
//     are assigned in popularity order — are treated as replicated on every
//     rank and served without network traffic.
//
// Determinism: the query stream is keyed (seed, global query id) exactly
// like simnet/fault keys its draws, so any rank/batch/jobs decomposition
// sees the same rows; all QPS/latency numbers are virtual-time quantities
// and byte-identical across backends, schedulers and --jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/platform.hpp"
#include "simnet/trace.hpp"
#include "util/status.hpp"

namespace mrl::workloads::embedding {

/// How the (rows × dim) table is laid out across ranks.
enum class ShardPolicy : std::uint8_t {
  kRow,     ///< row r → rank r % P, whole dim
  kColumn,  ///< rank p → contiguous dim-slice of every row
  kHybrid,  ///< Pr × Pc grid: row group picks the grid row, dim-slice the col
};

[[nodiscard]] const char* to_string(ShardPolicy p);

struct Config {
  std::uint64_t rows = 1u << 13;           ///< table rows
  std::uint64_t dim = 32;                  ///< floats per row
  std::uint64_t queries_per_rank = 32;     ///< serving load per rank
  std::uint64_t lookups_per_query = 16;    ///< rows gathered per query
  std::uint64_t batch = 8;                 ///< queries per serving batch
  double zipf_s = 0.99;                    ///< skew exponent (0 = uniform)
  ShardPolicy policy = ShardPolicy::kRow;
  bool combine = true;                     ///< software combining on/off
  std::uint64_t hot_rows = 0;              ///< replicated heavy-hitter rows
  std::uint64_t seed = 1234;               ///< query-stream seed
  bool verify = true;                      ///< check gathered payloads
};

struct Result {
  double time_us = 0;       ///< makespan of the timed serving phase
  double qps = 0;           ///< aggregate queries per (virtual) second
  double p50_us = 0;        ///< per-query latency percentiles
  double p95_us = 0;
  double p99_us = 0;
  std::uint64_t queries = 0;
  std::uint64_t gets = 0;         ///< network gets actually issued
  std::uint64_t gets_naive = 0;   ///< row-slice fetches before combining
  std::uint64_t cache_hits = 0;   ///< lookups served by hot-row replicas
  std::uint64_t bytes = 0;        ///< payload bytes fetched over the fabric
  bool verified = false;
  bool verify_ok = false;
  simnet::TraceSummary msgs;
  Status status;
};

/// Deterministic table contents: table[row][col] == table_value(row, col)
/// everywhere, so gathered payloads are verifiable without a golden copy.
[[nodiscard]] float table_value(std::uint64_t row, std::uint64_t col);

/// Zipf(s) sampler over [0, rows) by inverse CDF. Rank i has weight
/// (i+1)^-s, so row ids are in popularity order: row 0 is the hottest.
class ZipfGen {
 public:
  ZipfGen(std::uint64_t rows, double s);
  /// Inverse CDF at u ∈ [0, 1).
  [[nodiscard]] std::uint64_t sample(double u) const;
  /// P(row <= i) — exposed for the golden-value tests.
  [[nodiscard]] double cdf(std::uint64_t i) const;

 private:
  std::vector<double> cum_;  ///< normalized cumulative weights
};

/// Rows gathered by global query `q`: `lookups` draws from the stream
/// keyed (seed, q) — independent of which rank/batch/jobs slot runs it.
void query_rows(const ZipfGen& zipf, std::uint64_t seed, std::uint64_t q,
                std::uint64_t lookups, std::vector<std::uint64_t>& out);

// --- sharding arithmetic (all offsets/lengths in table elements) ---------

/// Hybrid grid: Pr is the largest divisor of nranks <= sqrt(nranks).
struct Grid {
  int pr = 1;
  int pc = 1;
};
[[nodiscard]] Grid hybrid_grid(int nranks);

/// Local table size (elements) rank `pe` owns under `policy`.
[[nodiscard]] std::uint64_t local_elems(ShardPolicy policy, int pe,
                                        int nranks, std::uint64_t rows,
                                        std::uint64_t dim);

/// Inverse layout map: element `e` of rank `pe`'s local table holds
/// table[row][col]. Used to fill shards and to verify fetched spans.
struct RowCol {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
};
[[nodiscard]] RowCol elem_to_rowcol(ShardPolicy policy, int pe, int nranks,
                                    std::uint64_t rows, std::uint64_t dim,
                                    std::uint64_t elem);

/// One get: `elems` contiguous elements at `elem_off` in `owner`'s table.
struct GetSpan {
  int owner = 0;
  std::uint64_t elem_off = 0;
  std::uint64_t elems = 0;
};

/// Builds the get list covering `batch_rows` under `policy`. With
/// `combine` false: one span per (row, shard slice) in lookup order,
/// duplicates kept — the naive per-row gather. With `combine` true: spans
/// are deduplicated per owner, sorted by offset and merged into maximal
/// contiguous runs. Returns the naive span count (the combining ablation's
/// denominator); `out` receives the spans to issue, in deterministic order.
std::uint64_t build_spans(ShardPolicy policy, int nranks, std::uint64_t rows,
                          std::uint64_t dim,
                          const std::vector<std::uint64_t>& batch_rows,
                          bool combine, std::vector<GetSpan>& out);

Result run_mpi(const simnet::Platform& platform, int nranks,
               const Config& cfg);
Result run_shmem(const simnet::Platform& platform, int nranks,
                 const Config& cfg);

}  // namespace mrl::workloads::embedding
