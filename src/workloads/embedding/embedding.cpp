// Embedding workload core: deterministic Zipf query stream, sharding
// arithmetic, and the software-combining span builder shared by the MPI and
// SHMEM runners.
#include "workloads/embedding/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace mrl::workloads::embedding {

namespace {

// All three policies are one Pr × Pc grid: kRow is P × 1, kColumn is 1 × P,
// kHybrid the balanced factorization. Row r lives in grid row r % Pr; grid
// column cp owns a contiguous dim-slice; rank = grid_row * Pc + cp.
Grid grid_for(ShardPolicy policy, int nranks) {
  switch (policy) {
    case ShardPolicy::kRow:
      return {nranks, 1};
    case ShardPolicy::kColumn:
      return {1, nranks};
    case ShardPolicy::kHybrid:
      return hybrid_grid(nranks);
  }
  return {nranks, 1};
}

// Columns owned by grid column `cp` (remainder spread over the low columns).
std::uint64_t cols_of(int cp, std::uint64_t dim, int pc) {
  const std::uint64_t base = dim / static_cast<std::uint64_t>(pc);
  const std::uint64_t rem = dim % static_cast<std::uint64_t>(pc);
  return base + (static_cast<std::uint64_t>(cp) < rem ? 1 : 0);
}

std::uint64_t col_base(int cp, std::uint64_t dim, int pc) {
  const std::uint64_t base = dim / static_cast<std::uint64_t>(pc);
  const std::uint64_t rem = dim % static_cast<std::uint64_t>(pc);
  const auto c = static_cast<std::uint64_t>(cp);
  return c * base + std::min(c, rem);
}

// Rows living in grid row `g` (those r < rows with r % pr == g).
std::uint64_t rows_of(int g, std::uint64_t rows, int pr) {
  const auto p = static_cast<std::uint64_t>(pr);
  const auto gg = static_cast<std::uint64_t>(g);
  if (gg >= rows) return 0;
  return (rows - gg + p - 1) / p;
}

}  // namespace

const char* to_string(ShardPolicy p) {
  switch (p) {
    case ShardPolicy::kRow:
      return "row";
    case ShardPolicy::kColumn:
      return "col";
    case ShardPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

float table_value(std::uint64_t row, std::uint64_t col) {
  std::uint64_t h = row * 0x9E3779B97F4A7C15ULL + col + 1;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  // 20 mantissa-exact bits: float comparison against the fetched payload is
  // an exact equality check, no tolerance needed.
  return static_cast<float>(h & 0xFFFFF) * (1.0f / 1048576.0f);
}

ZipfGen::ZipfGen(std::uint64_t rows, double s) {
  MRL_CHECK(rows > 0);
  cum_.resize(rows);
  double total = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cum_[i] = total;
  }
  for (double& c : cum_) c /= total;
  cum_.back() = 1.0;  // guard against rounding; sample(u<1) stays in range
}

std::uint64_t ZipfGen::sample(double u) const {
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  if (it == cum_.end()) return cum_.size() - 1;
  return static_cast<std::uint64_t>(it - cum_.begin());
}

double ZipfGen::cdf(std::uint64_t i) const {
  MRL_CHECK(i < cum_.size());
  return cum_[i];
}

void query_rows(const ZipfGen& zipf, std::uint64_t seed, std::uint64_t q,
                std::uint64_t lookups, std::vector<std::uint64_t>& out) {
  // Keyed (seed, query id) like simnet/fault keys its draws: the stream is
  // independent of which rank, batch or --jobs slot evaluates it.
  Xoshiro256 rng = Xoshiro256::for_stream(seed, q);
  out.clear();
  out.reserve(lookups);
  for (std::uint64_t k = 0; k < lookups; ++k) {
    out.push_back(zipf.sample(rng.uniform01()));
  }
}

Grid hybrid_grid(int nranks) {
  Grid g{1, nranks};
  for (int d = static_cast<int>(std::sqrt(static_cast<double>(nranks)));
       d >= 1; --d) {
    if (nranks % d == 0) {
      g.pr = d;
      g.pc = nranks / d;
      break;
    }
  }
  return g;
}

std::uint64_t local_elems(ShardPolicy policy, int pe, int nranks,
                          std::uint64_t rows, std::uint64_t dim) {
  const Grid g = grid_for(policy, nranks);
  const int gr = pe / g.pc;
  const int cp = pe % g.pc;
  return rows_of(gr, rows, g.pr) * cols_of(cp, dim, g.pc);
}

RowCol elem_to_rowcol(ShardPolicy policy, int pe, int nranks,
                      std::uint64_t rows, std::uint64_t dim,
                      std::uint64_t elem) {
  const Grid g = grid_for(policy, nranks);
  const int gr = pe / g.pc;
  const int cp = pe % g.pc;
  const std::uint64_t c = cols_of(cp, dim, g.pc);
  MRL_CHECK(c > 0);
  RowCol rc;
  rc.row = (elem / c) * static_cast<std::uint64_t>(g.pr) +
           static_cast<std::uint64_t>(gr);
  rc.col = col_base(cp, dim, g.pc) + elem % c;
  MRL_CHECK(rc.row < rows);
  return rc;
}

std::uint64_t build_spans(ShardPolicy policy, int nranks, std::uint64_t rows,
                          std::uint64_t dim,
                          const std::vector<std::uint64_t>& batch_rows,
                          bool combine, std::vector<GetSpan>& out) {
  const Grid g = grid_for(policy, nranks);
  out.clear();
  std::uint64_t naive = 0;
  for (const std::uint64_t row : batch_rows) {
    const int gr = static_cast<int>(row % static_cast<std::uint64_t>(g.pr));
    for (int cp = 0; cp < g.pc; ++cp) {
      const std::uint64_t len = cols_of(cp, dim, g.pc);
      if (len == 0) continue;  // dim < Pc leaves some slices empty
      ++naive;
      GetSpan s;
      s.owner = gr * g.pc + cp;
      s.elem_off = (row / static_cast<std::uint64_t>(g.pr)) * len;
      s.elems = len;
      out.push_back(s);
    }
  }
  if (!combine) return naive;
  // Software combining: sort per (owner, offset) and merge overlapping or
  // adjacent spans into maximal contiguous gets. Duplicate rows collapse as
  // exact overlaps; row-policy rows r and r+P land in adjacent local rows
  // and fuse into one larger message — amortizing the per-message α.
  std::sort(out.begin(), out.end(), [](const GetSpan& a, const GetSpan& b) {
    if (a.owner != b.owner) return a.owner < b.owner;
    if (a.elem_off != b.elem_off) return a.elem_off < b.elem_off;
    return a.elems < b.elems;
  });
  std::size_t w = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[w - 1].owner == out[i].owner &&
        out[i].elem_off <= out[w - 1].elem_off + out[w - 1].elems) {
      const std::uint64_t end = out[i].elem_off + out[i].elems;
      const std::uint64_t cur = out[w - 1].elem_off + out[w - 1].elems;
      if (end > cur) out[w - 1].elems = end - out[w - 1].elem_off;
      continue;
    }
    out[w++] = out[i];
  }
  out.resize(w);
  return naive;
}

}  // namespace mrl::workloads::embedding
