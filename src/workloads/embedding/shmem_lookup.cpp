// Embedding lookup over the minishmem symmetric heap: shards live in one
// collective allocation (sized for the largest shard, as symmetric memory
// must be), and lookups are blocking shmem_get round trips.
#include <algorithm>
#include <cstring>

#include "shmem/shmem.hpp"
#include "util/stats.hpp"
#include "workloads/embedding/embedding.hpp"

namespace mrl::workloads::embedding {

namespace {
constexpr double kPoolUsPerElem = 5e-4;  // same host pooling charge as MPI
}  // namespace

Result run_shmem(const simnet::Platform& platform, int nranks,
                 const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);
  const ZipfGen zipf(cfg.rows, cfg.zipf_s);
  const std::uint64_t qpr = cfg.queries_per_rank;

  std::uint64_t max_elems = 1;
  for (int r = 0; r < nranks; ++r) {
    max_elems = std::max(
        max_elems, local_elems(cfg.policy, r, nranks, cfg.rows, cfg.dim));
  }

  std::vector<double> latency(static_cast<std::size_t>(nranks) * qpr, 0.0);
  std::vector<std::uint64_t> gets(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> naive(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(nranks), 0);
  double t0 = 0, t1 = 0;

  const auto run = shmem::World::run(eng, [&](shmem::Ctx& s) {
    const int p = s.pe();
    const auto sp = static_cast<std::size_t>(p);
    const shmem::Sym<float> tbl = s.allocate<float>(max_elems);
    const std::uint64_t elems =
        local_elems(cfg.policy, p, nranks, cfg.rows, cfg.dim);
    float* mine = s.local(tbl);
    for (std::uint64_t e = 0; e < elems; ++e) {
      const RowCol rc =
          elem_to_rowcol(cfg.policy, p, nranks, cfg.rows, cfg.dim, e);
      mine[e] = table_value(rc.row, rc.col);
    }
    // The barrier both publishes the filled shards and (being a global RMA
    // sync) resets the checker's history, so the serving phase starts clean.
    s.barrier_all();
    if (p == 0) t0 = s.now();

    std::vector<std::uint64_t> rows_buf;
    std::vector<std::uint64_t> batch_rows;
    std::vector<GetSpan> spans;
    std::vector<float> staging;
    for (std::uint64_t q0 = 0; q0 < qpr; q0 += cfg.batch) {
      const std::uint64_t nq = std::min(cfg.batch, qpr - q0);
      const simnet::TimeUs t_batch = s.now();
      batch_rows.clear();
      for (std::uint64_t i = 0; i < nq; ++i) {
        const std::uint64_t gid = static_cast<std::uint64_t>(p) * qpr + q0 + i;
        query_rows(zipf, cfg.seed, gid, cfg.lookups_per_query, rows_buf);
        for (const std::uint64_t row : rows_buf) {
          if (row < cfg.hot_rows) {
            ++hits[sp];
            continue;
          }
          batch_rows.push_back(row);
        }
      }
      naive[sp] += build_spans(cfg.policy, nranks, cfg.rows, cfg.dim,
                               batch_rows, cfg.combine, spans);
      std::uint64_t total = 0;
      for (const GetSpan& sg : spans) total += sg.elems;
      staging.resize(std::max<std::uint64_t>(total, 1));
      std::uint64_t soff = 0;
      for (const GetSpan& sg : spans) {
        s.get(staging.data() + soff, tbl.at(sg.elem_off), sg.elems, sg.owner);
        soff += sg.elems;
      }
      gets[sp] += spans.size();
      bytes[sp] += total * sizeof(float);
      s.compute(kPoolUsPerElem * static_cast<double>(nq) *
                static_cast<double>(cfg.lookups_per_query) *
                static_cast<double>(cfg.dim));
      const double lat = s.now() - t_batch;
      for (std::uint64_t i = 0; i < nq; ++i) {
        latency[sp * qpr + q0 + i] = lat;
        eng.metrics().on_query(p, lat);
      }
      if (cfg.verify) {
        soff = 0;
        for (const GetSpan& sg : spans) {
          for (std::uint64_t e = 0; e < sg.elems; ++e) {
            const RowCol rc =
                elem_to_rowcol(cfg.policy, sg.owner, nranks, cfg.rows,
                               cfg.dim, sg.elem_off + e);
            if (staging[soff + e] != table_value(rc.row, rc.col)) bad[sp] = 1;
          }
          soff += sg.elems;
        }
      }
    }

    s.barrier_all();
    if (p == 0) t1 = s.now();
  });

  Result out;
  out.status = run.status;
  out.time_us = t1 - t0;
  out.queries = qpr * static_cast<std::uint64_t>(nranks);
  out.qps = out.time_us > 0
                ? static_cast<double>(out.queries) / (out.time_us * 1e-6)
                : 0;
  if (!latency.empty() && run.ok()) {
    out.p50_us = percentile(latency, 50);
    out.p95_us = percentile(latency, 95);
    out.p99_us = percentile(latency, 99);
  }
  for (int r = 0; r < nranks; ++r) {
    const auto sr = static_cast<std::size_t>(r);
    out.gets += gets[sr];
    out.gets_naive += naive[sr];
    out.cache_hits += hits[sr];
    out.bytes += bytes[sr];
  }
  out.verified = cfg.verify;
  if (cfg.verify && run.ok()) {
    out.verify_ok =
        std::none_of(bad.begin(), bad.end(), [](std::uint8_t b) { return b; });
  }
  out.msgs = eng.trace().summarize();
  return out;
}

}  // namespace mrl::workloads::embedding
