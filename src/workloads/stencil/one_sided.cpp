// One-sided stencil: four MPI_Put inside a pair of MPI_Win_fence per
// iteration (the paper's one-sided CPU implementation, Sec III-A). One
// window exposes all four incoming halo buffers; senders compute their
// peers' buffer offsets from the (deterministic) decomposition.
#include <algorithm>

#include "mpi/comm.hpp"
#include "mpi/win.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl::workloads::stencil {

Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> reference =
      cfg.verify ? serial_reference(cfg) : std::vector<double>{};

  Result out;
  std::vector<double> errs(static_cast<std::size_t>(nranks), 0.0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    const Decomp d = make_decomp(cfg.n, nranks, c.rank(), cfg.px, cfg.py);
    LocalBlock blk(cfg, d);
    mpi::WinHandle win = c.create_win(blk.in_region(), blk.in_region_bytes());

    const int peers[4] = {d.west, d.east, d.north, d.south};
    auto opposite = [](int side) { return side ^ 1; };

    c.barrier();
    if (c.rank() == 0) t0 = c.now();
    for (int it = 0; it < cfg.iters; ++it) {
      blk.pack_edges();
      // Fence pair: the opening fence separates last iteration's halo reads
      // from this iteration's remote writes.
      win.fence();
      for (int s = 0; s < 4; ++s) {
        if (peers[s] < 0) continue;
        const Decomp pd = make_decomp(cfg.n, nranks, peers[s], cfg.px, cfg.py);
        win.put(blk.out(s), blk.edge_count(s) * sizeof(double), peers[s],
                LocalBlock::in_offset_bytes(pd, opposite(s)));
      }
      win.fence();
      blk.sweep();
      c.compute(sweep_time_us(
          platform, blk.sweep_bytes(),
          static_cast<std::uint64_t>(d.w()) * static_cast<std::uint64_t>(d.h())));
    }
    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    if (cfg.verify) {
      errs[static_cast<std::size_t>(c.rank())] = blk.compare(reference, cfg.n);
    }
  });

  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  out.max_abs_err = *std::max_element(errs.begin(), errs.end());
  out.msgs = eng.trace().summarize(simnet::OpKind::kPut);
  if (eng.metrics().enabled()) out.metrics = eng.metrics_report();
  return out;
}

}  // namespace mrl::workloads::stencil
