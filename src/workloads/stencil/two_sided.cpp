// Two-sided stencil: four MPI_Isend/MPI_Irecv pairs + MPI_Waitall per
// iteration (the paper's baseline BSP implementation).
#include <algorithm>

#include "mpi/comm.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl::workloads::stencil {

Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> reference =
      cfg.verify ? serial_reference(cfg) : std::vector<double>{};

  Result out;
  std::vector<double> errs(static_cast<std::size_t>(nranks), 0.0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    const Decomp d = make_decomp(cfg.n, nranks, c.rank(), cfg.px, cfg.py);
    LocalBlock blk(cfg, d);
    // (neighbor, my outgoing side, my incoming side); the tag names the side
    // the message lands on at the RECEIVER.
    struct Edge {
      int peer;
      int out_side;
      int in_side;
    };
    const Edge edges[4] = {
        {d.west, LocalBlock::kWest, LocalBlock::kWest},
        {d.east, LocalBlock::kEast, LocalBlock::kEast},
        {d.north, LocalBlock::kNorth, LocalBlock::kNorth},
        {d.south, LocalBlock::kSouth, LocalBlock::kSouth},
    };
    auto opposite = [](int side) { return side ^ 1; };  // W<->E, N<->S

    c.barrier();
    if (c.rank() == 0) t0 = c.now();
    for (int it = 0; it < cfg.iters; ++it) {
      blk.pack_edges();
      std::vector<mpi::Request> reqs;
      for (const Edge& e : edges) {
        if (e.peer < 0) continue;
        // My out[side] becomes the peer's in[opposite(side)].
        reqs.push_back(c.isend(blk.out(e.out_side),
                               blk.edge_count(e.out_side) * sizeof(double),
                               e.peer, opposite(e.out_side)));
        reqs.push_back(c.irecv(blk.in(e.in_side),
                               blk.edge_count(e.in_side) * sizeof(double),
                               e.peer, e.in_side));
      }
      c.waitall(reqs);
      blk.sweep();
      c.compute(sweep_time_us(
          platform, blk.sweep_bytes(),
          static_cast<std::uint64_t>(d.w()) * static_cast<std::uint64_t>(d.h())));
    }
    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    if (cfg.verify) {
      errs[static_cast<std::size_t>(c.rank())] = blk.compare(reference, cfg.n);
    }
  });

  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  out.max_abs_err = *std::max_element(errs.begin(), errs.end());
  out.msgs = eng.trace().summarize(simnet::OpKind::kSend);
  if (eng.metrics().enabled()) out.metrics = eng.metrics_report();
  return out;
}

}  // namespace mrl::workloads::stencil
