// GPU stencil: NVSHMEM-style put-with-signal halo exchange
// (nvshmem_double_put_signal_nbi + nvshmem_uint64_wait_until_all, Sec III-A).
// Incoming halo buffers live in the symmetric heap, sized by the maximum
// block so every PE's allocation is symmetric; signals carry the iteration
// number so they never need resetting. Halo buffers are double-buffered by
// iteration parity: a neighbor may run one iteration ahead, and its next put
// must not clobber data this PE has not consumed yet.
#include <algorithm>
#include <cstring>

#include "shmem/shmem.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl::workloads::stencil {

Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const Config& cfg) {
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> reference =
      cfg.verify ? serial_reference(cfg) : std::vector<double>{};

  Result out;
  std::vector<double> errs(static_cast<std::size_t>(nranks), 0.0);
  double t0 = 0, t1 = 0;

  int px = cfg.px, py = cfg.py;
  if (px <= 0 || py <= 0) choose_grid(nranks, &px, &py);
  const int max_w = (cfg.n + px - 1) / px;
  const int max_h = (cfg.n + py - 1) / py;

  shmem::World::Options wopt;
  wopt.heap_bytes =
      static_cast<std::uint64_t>(4 * (max_w + max_h)) * sizeof(double) +
      8 * 8 + (1u << 16);

  const auto run = shmem::World::run(
      eng,
      [&](shmem::Ctx& s) {
        const Decomp d = make_decomp(cfg.n, nranks, s.pe(), px, py);
        LocalBlock blk(cfg, d);
        // Symmetric incoming halo buffers (max-sized, two parities) and
        // 2x4 signals.
        shmem::Sym<double> in_sym[2][4];
        for (int par = 0; par < 2; ++par) {
          in_sym[par][0] = s.allocate<double>(static_cast<std::uint64_t>(max_h));
          in_sym[par][1] = s.allocate<double>(static_cast<std::uint64_t>(max_h));
          in_sym[par][2] = s.allocate<double>(static_cast<std::uint64_t>(max_w));
          in_sym[par][3] = s.allocate<double>(static_cast<std::uint64_t>(max_w));
        }
        auto sig = s.allocate<std::uint64_t>(8);  // [parity*4 + side]

        const int peers[4] = {d.west, d.east, d.north, d.south};
        std::int32_t mask[4];
        for (int i = 0; i < 4; ++i) mask[i] = peers[i] < 0 ? 1 : 0;
        auto opposite = [](int side) { return side ^ 1; };

        s.barrier_all();
        if (s.pe() == 0) t0 = s.now();
        for (int it = 0; it < cfg.iters; ++it) {
          const int par = it % 2;
          blk.pack_edges();
          for (int side = 0; side < 4; ++side) {
            if (peers[side] < 0) continue;
            // My out[side] lands in the peer's parity buffer for
            // in[opposite(side)], then the matching signal is set to it+1.
            const std::uint64_t slot =
                static_cast<std::uint64_t>(par * 4 + opposite(side));
            s.put_signal_nbi(in_sym[par][opposite(side)], blk.out(side),
                             blk.edge_count(side), sig.at(slot),
                             static_cast<std::uint64_t>(it) + 1, peers[side]);
          }
          s.wait_until_all(sig.at(static_cast<std::uint64_t>(par * 4)), 4,
                           mask, static_cast<std::uint64_t>(it) + 1);
          // Stage symmetric halo buffers into the block's working halos.
          for (int side = 0; side < 4; ++side) {
            if (peers[side] < 0) continue;
            std::memcpy(blk.in(side), s.local(in_sym[par][side]),
                        blk.edge_count(side) * sizeof(double));
          }
          s.quiet();  // source buffers reusable next iteration
          blk.sweep();
          s.compute(sweep_time_us(platform, blk.sweep_bytes(),
                                  static_cast<std::uint64_t>(d.w()) *
                                      static_cast<std::uint64_t>(d.h())));
        }
        s.barrier_all();
        if (s.pe() == 0) t1 = s.now();
        if (cfg.verify) {
          errs[static_cast<std::size_t>(s.pe())] =
              blk.compare(reference, cfg.n);
        }
      },
      wopt);

  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  out.max_abs_err = *std::max_element(errs.begin(), errs.end());
  out.msgs = eng.trace().summarize(simnet::OpKind::kPutSignal);
  if (eng.metrics().enabled()) out.metrics = eng.metrics_report();
  return out;
}

}  // namespace mrl::workloads::stencil
