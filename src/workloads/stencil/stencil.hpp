// 2D 5-point Jacobi stencil with halo exchange — the paper's BSP workload
// (Sec III-A). Three variants share one numerical kernel and decomposition:
//
//   two-sided    — 4x MPI_Isend/Irecv + Waitall per iteration
//   one-sided    — 4x MPI_Put inside a pair of MPI_Win_fence
//   shmem (GPU)  — nvshmem-style put_signal_nbi + wait_until_all
//
// Halos travel through contiguous side buffers (packed columns), so message
// size = edge length * 8 bytes and msg/sync = #neighbors (<= 4), matching
// Table II. All variants are verified bit-for-bit against a serial reference.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/engine.hpp"
#include "simnet/platform.hpp"
#include "simnet/trace.hpp"

namespace mrl::workloads::stencil {

struct Config {
  int n = 1024;        ///< global grid is n x n (paper runs 16384)
  int iters = 10;      ///< Jacobi sweeps
  int px = 0;          ///< process grid (0 = choose near-square)
  int py = 0;
  bool verify = true;  ///< compare against the serial reference
  std::uint64_t seed = 42;
};

struct Result {
  double time_us = 0;        ///< virtual makespan of the iteration loop
  double max_abs_err = 0;    ///< vs serial reference (0 expected)
  bool verified = false;
  simnet::TraceSummary msgs; ///< data-message stats (for roofline dots)
  /// Populated when the engine ran with EngineOptions::metrics enabled
  /// (includes per-fiber stack high-water marks on the fiber backend).
  runtime::MetricsReport metrics;
  Status status;
};

/// One rank's block of the 2D decomposition.
struct Decomp {
  int px = 1, py = 1;   ///< process grid
  int rx = 0, ry = 0;   ///< my coordinates
  int x0 = 0, x1 = 0;   ///< [x0, x1) global column range
  int y0 = 0, y1 = 0;   ///< [y0, y1) global row range
  int west = -1, east = -1, north = -1, south = -1;  ///< neighbor ranks

  [[nodiscard]] int w() const { return x1 - x0; }
  [[nodiscard]] int h() const { return y1 - y0; }
  [[nodiscard]] int neighbors() const {
    return (west >= 0) + (east >= 0) + (north >= 0) + (south >= 0);
  }
};

/// Near-square process grid for `nranks` (px * py == nranks).
void choose_grid(int nranks, int* px, int* py);

/// Block decomposition of the n x n grid for `rank` of `nranks`.
Decomp make_decomp(int n, int nranks, int rank, int px, int py);

/// Deterministic initial value of cell (row, col) for a given seed.
double initial_value(int n, int row, int col, std::uint64_t seed);

/// Serial reference: `iters` Jacobi sweeps on the full grid (row-major).
std::vector<double> serial_reference(const Config& cfg);

/// Per-rank working state shared by all three variants.
class LocalBlock {
 public:
  LocalBlock(const Config& cfg, const Decomp& d);

  /// Packs the four outgoing edges into the contiguous side buffers.
  void pack_edges();

  /// One Jacobi sweep reading incoming halo buffers; swaps cur/next.
  void sweep();

  /// Max |cur - reference| over my block.
  [[nodiscard]] double compare(const std::vector<double>& reference,
                               int n) const;

  /// Compute cost of one sweep + packing, in streamed bytes.
  [[nodiscard]] std::uint64_t sweep_bytes() const;

  [[nodiscard]] const Decomp& decomp() const { return d_; }
  [[nodiscard]] double* out(int side) { return out_[side].data(); }
  [[nodiscard]] double* in(int side) { return in_all_.data() + in_off_[side]; }
  [[nodiscard]] std::uint64_t edge_count(int side) const;

  /// Contiguous region holding all four incoming halo buffers (exposed as
  /// one RMA window / symmetric slab).
  [[nodiscard]] double* in_region() { return in_all_.data(); }
  [[nodiscard]] std::uint64_t in_region_bytes() const {
    return in_all_.size() * sizeof(double);
  }
  /// Byte offset of a side's incoming buffer within in_region (depends only
  /// on the decomposition, so senders can compute it for their peers).
  static std::uint64_t in_offset_bytes(const Decomp& d, int side);

  // Side indices.
  static constexpr int kWest = 0, kEast = 1, kNorth = 2, kSouth = 3;

 private:
  [[nodiscard]] double& at(std::vector<double>& g, int r, int c) const {
    return g[static_cast<std::size_t>(r) * d_.w() + c];
  }
  [[nodiscard]] double at(const std::vector<double>& g, int r, int c) const {
    return g[static_cast<std::size_t>(r) * d_.w() + c];
  }

  Decomp d_;
  std::vector<double> cur_, next_;
  std::vector<double> out_[4];
  std::vector<double> in_all_;
  std::size_t in_off_[4] = {0, 0, 0, 0};
};

/// Compute-time charge for one sweep: CPU ranks stream at membw; GPU PEs use
/// the occupancy/bandwidth kernel envelope.
double sweep_time_us(const simnet::Platform& platform, std::uint64_t bytes,
                     std::uint64_t cells);

Result run_two_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg);
Result run_one_sided(const simnet::Platform& platform, int nranks,
                     const Config& cfg);
Result run_shmem_gpu(const simnet::Platform& platform, int nranks,
                     const Config& cfg);

/// Host-staged GPU baseline (the paper's introduction motivation): GPU
/// compute, but halos cross PCIe to the host, move via host two-sided MPI,
/// and cross back — with kernel-launch/sync overhead per stage.
Result run_host_staged_gpu(const simnet::Platform& platform, int nranks,
                           const Config& cfg);

}  // namespace mrl::workloads::stencil
