// Host-staged GPU stencil — the baseline the paper's introduction argues
// against: "the most common way of communicating on multiple GPU systems is
// to communicate via the host processor". GPU kernels compute; every halo
// exchange stages through the host (D2H copy, host two-sided MPI, H2D copy)
// with kernel-launch/synchronization overhead on both sides. Contrast with
// run_shmem_gpu, where the GPU initiates puts directly.
#include <algorithm>

#include "mpi/comm.hpp"
#include "util/units.hpp"
#include "workloads/stencil/stencil.hpp"

namespace mrl::workloads::stencil {

namespace {
// PCIe4 x16 staging rate and per-transfer launch/sync overhead.
constexpr double kPcieGbs = 25.0;
constexpr double kStageOverheadUs = 8.0;  // cudaMemcpy + stream sync
}  // namespace

Result run_host_staged_gpu(const simnet::Platform& platform, int nranks,
                           const Config& cfg) {
  MRL_CHECK_MSG(platform.is_gpu(), "host staging needs a GPU platform");
  runtime::EngineOptions opt;
  opt.trace = true;
  runtime::Engine eng(platform, nranks, opt);

  const std::vector<double> reference =
      cfg.verify ? serial_reference(cfg) : std::vector<double>{};

  Result out;
  std::vector<double> errs(static_cast<std::size_t>(nranks), 0.0);
  double t0 = 0, t1 = 0;

  const auto run = mpi::World::run(eng, [&](mpi::Comm& c) {
    // Host-initiated two-sided MPI is the p2p flavor on GPU platforms.
    const Decomp d = make_decomp(cfg.n, nranks, c.rank(), cfg.px, cfg.py);
    LocalBlock blk(cfg, d);
    const int peers[4] = {d.west, d.east, d.north, d.south};
    auto opposite = [](int side) { return side ^ 1; };
    auto stage_us = [&](std::uint64_t bytes) {
      return kStageOverheadUs +
             static_cast<double>(bytes) * gbs_to_us_per_byte(kPcieGbs);
    };

    c.barrier();
    if (c.rank() == 0) t0 = c.now();
    for (int it = 0; it < cfg.iters; ++it) {
      blk.pack_edges();
      // D2H: all outgoing halos cross PCIe to the host before any send.
      std::uint64_t out_bytes = 0;
      for (int s = 0; s < 4; ++s) {
        if (peers[s] >= 0) out_bytes += blk.edge_count(s) * sizeof(double);
      }
      if (out_bytes > 0) c.compute(stage_us(out_bytes));

      std::vector<mpi::Request> reqs;
      for (int s = 0; s < 4; ++s) {
        if (peers[s] < 0) continue;
        reqs.push_back(c.isend(blk.out(s), blk.edge_count(s) * sizeof(double),
                               peers[s], opposite(s)));
        reqs.push_back(c.irecv(blk.in(s), blk.edge_count(s) * sizeof(double),
                               peers[s], s));
      }
      c.waitall(reqs);

      // H2D: received halos go back to the device.
      if (out_bytes > 0) c.compute(stage_us(out_bytes));

      blk.sweep();
      c.compute(sweep_time_us(
          platform, blk.sweep_bytes(),
          static_cast<std::uint64_t>(d.w()) * static_cast<std::uint64_t>(d.h())));
    }
    c.barrier();
    if (c.rank() == 0) t1 = c.now();
    if (cfg.verify) {
      errs[static_cast<std::size_t>(c.rank())] = blk.compare(reference, cfg.n);
    }
  });

  out.status = run.status;
  out.time_us = t1 - t0;
  out.verified = cfg.verify;
  out.max_abs_err = *std::max_element(errs.begin(), errs.end());
  out.msgs = eng.trace().summarize(simnet::OpKind::kSend);
  if (eng.metrics().enabled()) out.metrics = eng.metrics_report();
  return out;
}

}  // namespace mrl::workloads::stencil
