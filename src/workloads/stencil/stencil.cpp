#include "workloads/stencil/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "shmem/gpu.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::workloads::stencil {

void choose_grid(int nranks, int* px, int* py) {
  MRL_CHECK(nranks >= 1);
  int best = 1;
  for (int p = 1; p * p <= nranks; ++p) {
    if (nranks % p == 0) best = p;
  }
  *py = best;           // rows of ranks
  *px = nranks / best;  // cols of ranks
}

Decomp make_decomp(int n, int nranks, int rank, int px, int py) {
  if (px <= 0 || py <= 0) choose_grid(nranks, &px, &py);
  MRL_CHECK_MSG(px * py == nranks, "process grid must equal nranks");
  MRL_CHECK_MSG(px <= n && py <= n, "more ranks than grid rows/cols");
  Decomp d;
  d.px = px;
  d.py = py;
  d.rx = rank % px;
  d.ry = rank / px;
  auto split = [](int total, int parts, int idx) {
    return idx * (static_cast<long long>(total)) / parts;
  };
  d.x0 = static_cast<int>(split(n, px, d.rx));
  d.x1 = static_cast<int>(split(n, px, d.rx + 1));
  d.y0 = static_cast<int>(split(n, py, d.ry));
  d.y1 = static_cast<int>(split(n, py, d.ry + 1));
  d.west = d.rx > 0 ? rank - 1 : -1;
  d.east = d.rx + 1 < px ? rank + 1 : -1;
  d.north = d.ry > 0 ? rank - px : -1;
  d.south = d.ry + 1 < py ? rank + px : -1;
  return d;
}

double initial_value(int n, int row, int col, std::uint64_t seed) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(row) *
                            static_cast<std::uint64_t>(n) +
                        static_cast<std::uint64_t>(col) + 1));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

std::vector<double> serial_reference(const Config& cfg) {
  const int n = cfg.n;
  std::vector<double> cur(static_cast<std::size_t>(n) * n);
  std::vector<double> next(cur.size());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      cur[static_cast<std::size_t>(r) * n + c] =
          initial_value(n, r, c, cfg.seed);
    }
  }
  auto at = [&](std::vector<double>& g, int r, int c) -> double {
    if (r < 0 || r >= n || c < 0 || c >= n) return 0.0;  // Dirichlet boundary
    return g[static_cast<std::size_t>(r) * n + c];
  };
  for (int it = 0; it < cfg.iters; ++it) {
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        next[static_cast<std::size_t>(r) * n + c] =
            0.25 * (at(cur, r - 1, c) + at(cur, r + 1, c) + at(cur, r, c - 1) +
                    at(cur, r, c + 1));
      }
    }
    cur.swap(next);
  }
  return cur;
}

LocalBlock::LocalBlock(const Config& cfg, const Decomp& d) : d_(d) {
  cur_.resize(static_cast<std::size_t>(d_.w()) * d_.h());
  next_.resize(cur_.size());
  for (int r = 0; r < d_.h(); ++r) {
    for (int c = 0; c < d_.w(); ++c) {
      at(cur_, r, c) = initial_value(cfg.n, d_.y0 + r, d_.x0 + c, cfg.seed);
    }
  }
  // Side buffers: columns have h entries, rows have w entries. Incoming
  // buffers start at 0 (the Dirichlet value) for global edges and live in
  // one contiguous slab so they can be exposed as a single window.
  out_[kWest].assign(static_cast<std::size_t>(d_.h()), 0.0);
  out_[kEast].assign(static_cast<std::size_t>(d_.h()), 0.0);
  out_[kNorth].assign(static_cast<std::size_t>(d_.w()), 0.0);
  out_[kSouth].assign(static_cast<std::size_t>(d_.w()), 0.0);
  std::size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    in_off_[s] = total;
    total += out_[s].size();
  }
  in_all_.assign(total, 0.0);
}

std::uint64_t LocalBlock::in_offset_bytes(const Decomp& d, int side) {
  const std::uint64_t h = static_cast<std::uint64_t>(d.h());
  const std::uint64_t w = static_cast<std::uint64_t>(d.w());
  const std::uint64_t offs[4] = {0, h, 2 * h, 2 * h + w};
  return offs[side] * sizeof(double);
}

std::uint64_t LocalBlock::edge_count(int side) const {
  return (side == kWest || side == kEast) ? static_cast<std::uint64_t>(d_.h())
                                          : static_cast<std::uint64_t>(d_.w());
}

void LocalBlock::pack_edges() {
  for (int r = 0; r < d_.h(); ++r) {
    out_[kWest][static_cast<std::size_t>(r)] = at(cur_, r, 0);
    out_[kEast][static_cast<std::size_t>(r)] = at(cur_, r, d_.w() - 1);
  }
  for (int c = 0; c < d_.w(); ++c) {
    out_[kNorth][static_cast<std::size_t>(c)] = at(cur_, 0, c);
    out_[kSouth][static_cast<std::size_t>(c)] = at(cur_, d_.h() - 1, c);
  }
}

void LocalBlock::sweep() {
  const int w = d_.w();
  const int h = d_.h();
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const double up = r > 0 ? at(cur_, r - 1, c) : in(kNorth)[c];
      const double down = r + 1 < h ? at(cur_, r + 1, c) : in(kSouth)[c];
      const double left = c > 0 ? at(cur_, r, c - 1) : in(kWest)[r];
      const double right = c + 1 < w ? at(cur_, r, c + 1) : in(kEast)[r];
      at(next_, r, c) = 0.25 * (up + down + left + right);
    }
  }
  cur_.swap(next_);
}

double LocalBlock::compare(const std::vector<double>& reference,
                           int n) const {
  double err = 0;
  for (int r = 0; r < d_.h(); ++r) {
    for (int c = 0; c < d_.w(); ++c) {
      const double ref =
          reference[static_cast<std::size_t>(d_.y0 + r) * n + (d_.x0 + c)];
      err = std::max(err, std::abs(at(cur_, r, c) - ref));
    }
  }
  return err;
}

std::uint64_t LocalBlock::sweep_bytes() const {
  // Jacobi streams ~3 doubles per cell (read cur, neighbor reuse via cache,
  // write next) plus the packed edges.
  const std::uint64_t cells =
      static_cast<std::uint64_t>(d_.w()) * static_cast<std::uint64_t>(d_.h());
  const std::uint64_t edges =
      2ull * (static_cast<std::uint64_t>(d_.w()) + d_.h());
  return cells * 24 + edges * 8;
}

double sweep_time_us(const simnet::Platform& platform, std::uint64_t bytes,
                     std::uint64_t cells) {
  const simnet::ComputeModel& cm = platform.compute();
  if (cm.lanes > 1) {
    return shmem::GpuExecModel(cm).kernel_time_us(bytes, cells,
                                                  /*item_us=*/0.01);
  }
  return static_cast<double>(bytes) * gbs_to_us_per_byte(cm.membw_gbs);
}

}  // namespace mrl::workloads::stencil
