#include "simnet/platform.hpp"

#include <cmath>
#include <limits>

#include "util/status.hpp"

namespace mrl::simnet {

namespace {

/// Connects per-node NICs to a central switch (multi-node CPU platforms).
void wire_nics_to_switch(Topology& topo, const std::vector<int>& nics,
                         double bw_gbs, double lat_us) {
  if (nics.size() < 2) return;
  const int sw = topo.add_endpoint("switch", EndpointKind::kSwitch);
  for (int nic : nics) {
    topo.add_link(nic, sw,
                  LinkSpec{"Slingshot", bw_gbs, lat_us, /*channels=*/1});
  }
}

}  // namespace

const LogGP& Platform::params(Runtime r) const {
  switch (r) {
    case Runtime::kTwoSidedMpi: return two_sided_;
    case Runtime::kOneSidedMpi: return one_sided_;
    case Runtime::kShmem: return shmem_;
  }
  MRL_CHECK_MSG(false, "bad runtime");
  return two_sided_;
}

LogGP& Platform::mutable_params(Runtime r) {
  return const_cast<LogGP&>(params(r));
}

int Platform::endpoint_of_rank(int rank, int nranks) const {
  MRL_CHECK(nranks >= 1 && nranks <= max_ranks_);
  MRL_CHECK(rank >= 0 && rank < nranks);
  const int neps = static_cast<int>(compute_eps_.size());
  if (is_gpu_) return compute_eps_[rank];  // one rank (PE) per GPU
  if (nranks <= neps) return compute_eps_[rank];
  // Balanced block distribution: rank r -> block floor(r*neps/nranks).
  const int block = static_cast<int>(
      (static_cast<long long>(rank) * neps) / nranks);
  return compute_eps_[block];
}

double Platform::hw_rtt_us(int rank_a, int rank_b, int nranks) const {
  const int ea = endpoint_of_rank(rank_a, nranks);
  const int eb = endpoint_of_rank(rank_b, nranks);
  if (ea == eb) return 2.0 * local_latency_us_;
  return topo_->route_latency_us(ea, eb) + topo_->route_latency_us(eb, ea);
}

double Platform::pair_peak_gbs(int rank_a, int rank_b, int nranks) const {
  const int ea = endpoint_of_rank(rank_a, nranks);
  const int eb = endpoint_of_rank(rank_b, nranks);
  if (ea == eb) return local_bw_gbs_;
  double bw = std::numeric_limits<double>::infinity();
  for (const DirectedLink& dl : topo_->route(ea, eb)) {
    bw = std::min(bw, topo_->link(dl.link).bandwidth_gbs);
  }
  return bw;
}

std::unique_ptr<Fabric> Platform::make_fabric() const {
  return std::make_unique<Fabric>(topo_.get(), route_mode_, local_bw_gbs_,
                                  local_latency_us_, faults_);
}

// ---------------------------------------------------------------------------
// Perlmutter CPU: per node two Milan sockets joined by Infinity Fabric
// (4 ports x 32 GB/s/dir; a single stream rides one port at 32 GB/s, which is
// the "achieved close to the IF peak of 32 GB/s" in Fig 3a). NIC hangs off
// socket 0 via PCIe4 at 25 GB/s.
// ---------------------------------------------------------------------------
Platform Platform::perlmutter_cpu(int nodes) {
  MRL_CHECK(nodes >= 1);
  Platform p;
  p.name_ = nodes == 1 ? "Perlmutter CPU"
                       : "Perlmutter CPU (" + std::to_string(nodes) + " nodes)";
  auto topo = std::make_shared<Topology>();
  std::vector<int> nics;
  for (int n = 0; n < nodes; ++n) {
    const std::string tag = nodes == 1 ? "" : ("n" + std::to_string(n) + ".");
    const int s0 = topo->add_endpoint(tag + "milan0", EndpointKind::kSocket);
    const int s1 = topo->add_endpoint(tag + "milan1", EndpointKind::kSocket);
    topo->add_link(s0, s1,
                   LinkSpec{"IF CPU-CPU", /*bw=*/128.0, /*lat=*/0.25,
                            /*channels=*/4});
    const int nic = topo->add_endpoint(tag + "nic", EndpointKind::kNic);
    topo->add_link(s0, nic, LinkSpec{"PCIe4.0", 25.0, 0.35, 1});
    nics.push_back(nic);
    p.compute_eps_.push_back(s0);
    p.compute_eps_.push_back(s1);
  }
  wire_nics_to_switch(*topo, nics, 25.0, 0.45);
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 64;  // 64 Milan cores per socket
  p.max_ranks_ = static_cast<int>(p.compute_eps_.size()) * p.ranks_per_ep_;
  // CrayMPI calibration: two-sided 1-msg latency 2*o+L = 3.3 us, floor 0.3 us;
  // one-sided per-op latency 20% lower.
  p.two_sided_ = LogGP{/*L=*/2.70, /*o=*/0.30, /*g=*/0.05, 0.0};
  p.one_sided_ = LogGP{/*L=*/2.16, /*o=*/0.24, /*g=*/0.05, 0.0};
  p.one_sided_.atomic_L_us = 1.25;  // one CAS in ~2 us (Sec III-C)
  p.shmem_ = p.one_sided_;  // no GPU runtime on the CPU partition
  p.compute_ = ComputeModel{/*membw=*/3.2, /*flops=*/3.3e3, /*lanes=*/1};
  p.local_bw_gbs_ = 32.0;
  p.local_latency_us_ = 0.25;
  p.rank_pump_gbs_ = 32.0;  // one core streams ~one IF port (Fig 3a)
  p.info_ = PlatformInfo{"-", "-", "-", "-",
                         "2xAMD EPYC 7763", "Infinity Fabric", "CrayMPI",
                         "PCIe4.0"};
  return p;
}

// ---------------------------------------------------------------------------
// Frontier CPU: one Milan-class EPYC per node; NUMA quadrants communicate
// over on-die Infinity Fabric at 36 GB/s (the paper's ultimate on-node bound,
// Fig 1). NICs attach through IF CPU-GPU -> PCIe4 ESM (50 GB/s).
// ---------------------------------------------------------------------------
Platform Platform::frontier_cpu(int nodes) {
  MRL_CHECK(nodes >= 1);
  Platform p;
  p.name_ = nodes == 1 ? "Frontier CPU"
                       : "Frontier CPU (" + std::to_string(nodes) + " nodes)";
  auto topo = std::make_shared<Topology>();
  std::vector<int> nics;
  for (int n = 0; n < nodes; ++n) {
    const std::string tag = nodes == 1 ? "" : ("n" + std::to_string(n) + ".");
    int quad[4];
    for (int q = 0; q < 4; ++q) {
      quad[q] = topo->add_endpoint(tag + "quad" + std::to_string(q),
                                   EndpointKind::kSocket);
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        topo->add_link(quad[a], quad[b],
                       LinkSpec{"IF on-die", 36.0, 0.20, 1});
      }
    }
    const int nic = topo->add_endpoint(tag + "nic0", EndpointKind::kNic);
    topo->add_link(quad[0], nic, LinkSpec{"PCIe4 ESM", 50.0, 0.30, 1});
    nics.push_back(nic);
    for (int q = 0; q < 4; ++q) p.compute_eps_.push_back(quad[q]);
  }
  wire_nics_to_switch(*topo, nics, 25.0, 0.45);
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 16;  // 64 cores / 4 quadrants
  p.max_ranks_ = static_cast<int>(p.compute_eps_.size()) * p.ranks_per_ep_;
  p.two_sided_ = LogGP{/*L=*/2.80, /*o=*/0.32, /*g=*/0.05, 0.0};
  p.one_sided_ = LogGP{/*L=*/2.30, /*o=*/0.26, /*g=*/0.05, 0.0};
  p.one_sided_.atomic_L_us = 1.30;
  p.shmem_ = p.one_sided_;
  p.compute_ = ComputeModel{3.2, 3.3e3, 1};
  p.local_bw_gbs_ = 36.0;
  p.local_latency_us_ = 0.25;
  p.rank_pump_gbs_ = 36.0;
  p.info_ = PlatformInfo{"-", "-", "-", "-",
                         "1xAMD EPYC 7A53", "Infinity Fabric", "CrayMPI",
                         "Infinity Fabric and PCIe4.0 ESM"};
  return p;
}

// ---------------------------------------------------------------------------
// Summit CPU: two POWER9 sockets over X-Bus. The paper observes ~25 GB/s
// achieved despite the 64 GB/s peak, so the link models the achieved rate
// (documented substitution). Spectrum MPI one-sided is consistently slower
// than two-sided: higher per-op overhead and software latency.
// ---------------------------------------------------------------------------
Platform Platform::summit_cpu(int nodes) {
  MRL_CHECK(nodes >= 1);
  Platform p;
  p.name_ = nodes == 1 ? "Summit CPU"
                       : "Summit CPU (" + std::to_string(nodes) + " nodes)";
  auto topo = std::make_shared<Topology>();
  std::vector<int> nics;
  for (int n = 0; n < nodes; ++n) {
    const std::string tag = nodes == 1 ? "" : ("n" + std::to_string(n) + ".");
    const int s0 = topo->add_endpoint(tag + "power9_0", EndpointKind::kSocket);
    const int s1 = topo->add_endpoint(tag + "power9_1", EndpointKind::kSocket);
    topo->add_link(s0, s1,
                   LinkSpec{"X-Bus", 25.0, 0.30, 1, /*occupancy=*/0.4});
    const int nic = topo->add_endpoint(tag + "nic", EndpointKind::kNic);
    topo->add_link(s0, nic, LinkSpec{"PCIe4.0", 16.0, 0.40, 1});
    nics.push_back(nic);
    p.compute_eps_.push_back(s0);
    p.compute_eps_.push_back(s1);
  }
  wire_nics_to_switch(*topo, nics, 12.5, 0.60);
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 21;  // 21 usable cores per socket (42 per node)
  p.max_ranks_ = static_cast<int>(p.compute_eps_.size()) * p.ranks_per_ep_;
  // Spectrum MPI: two-sided 1-msg latency ~3 us; one-sided consistently worse.
  p.two_sided_ = LogGP{/*L=*/2.10, /*o=*/0.45, /*g=*/0.08, 0.0};
  p.one_sided_ = LogGP{/*L=*/6.50, /*o=*/0.90, /*g=*/0.08, 0.0};
  p.one_sided_.atomic_L_us = 2.50;  // Spectrum MPI atomics are slow
  p.shmem_ = p.one_sided_;
  p.compute_ = ComputeModel{2.8, 2.5e3, 1};
  p.local_bw_gbs_ = 25.0;
  p.local_latency_us_ = 0.30;
  p.rank_pump_gbs_ = 25.0;
  p.info_ = PlatformInfo{"-", "-", "-", "-",
                         "2xIBM POWER9", "X-Bus", "IBM Spectrum", "PCIe4.0"};
  return p;
}

// ---------------------------------------------------------------------------
// Perlmutter GPU: four A100s, fully connected. Twelve NVLink3 ports per GPU
// in three groups of four: each pair gets 100 GB/s/dir as 4 lanes x 25 GB/s.
// A single put stream rides one lane — splitting a large message across lanes
// is what buys the 2.9x of Fig 10. CAS 0.8 us = o(0.5) + RTT(2 x 0.15).
// ---------------------------------------------------------------------------
Platform Platform::perlmutter_gpu() {
  Platform p;
  p.name_ = "Perlmutter GPU";
  p.is_gpu_ = true;
  auto topo = std::make_shared<Topology>();
  int g[4];
  for (int i = 0; i < 4; ++i) {
    g[i] = topo->add_endpoint("a100_" + std::to_string(i), EndpointKind::kGpu);
    p.compute_eps_.push_back(g[i]);
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      topo->add_link(g[a], g[b],
                     LinkSpec{"NVLink3", 100.0, 0.15, /*channels=*/4});
    }
  }
  const int s0 = topo->add_endpoint("milan", EndpointKind::kSocket);
  for (int i = 0; i < 4; ++i) {
    topo->add_link(g[i], s0, LinkSpec{"PCIe4.0", 25.0, 0.35, 1});
  }
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 1;
  p.max_ranks_ = 4;
  // NVSHMEM put-with-signal: 1-msg latency ~4 us, floor ~0.5 us (Fig 4a).
  p.shmem_ = LogGP{/*L=*/3.35, /*o=*/0.50, /*g=*/0.04, 0.0};
  p.two_sided_ = LogGP{/*L=*/6.0, /*o=*/1.0, /*g=*/0.08, 0.0};  // host-staged
  p.one_sided_ = p.shmem_;
  p.compute_ = ComputeModel{/*membw=*/1300.0, /*flops=*/9.7e6, /*lanes=*/80};
  p.local_bw_gbs_ = 1300.0;
  p.local_latency_us_ = 0.10;
  p.info_ = PlatformInfo{"4xA100", "NVLINK3", "cudatoolkit v11.7 NVSHMEM v2.8.0",
                         "PCIe4", "1xAMD EPYC 7763", "-", "-", "PCIe4.0"};
  return p;
}

// ---------------------------------------------------------------------------
// Summit GPU: six V100s in the dual-island dumbbell. Within an island the
// three GPUs are fully connected by NVLink2 (50 GB/s/dir = 2 lanes x 25);
// islands talk through their POWER9 sockets over X-Bus, which caps the
// cross-island stream at 32 GB/s and stretches the CAS round trip to 1.6 us.
// ---------------------------------------------------------------------------
Platform Platform::summit_gpu() {
  Platform p;
  p.name_ = "Summit GPU";
  p.is_gpu_ = true;
  auto topo = std::make_shared<Topology>();
  int g[6];
  for (int i = 0; i < 6; ++i) {
    g[i] = topo->add_endpoint("v100_" + std::to_string(i), EndpointKind::kGpu);
    p.compute_eps_.push_back(g[i]);
  }
  const int s0 = topo->add_endpoint("power9_0", EndpointKind::kSocket);
  const int s1 = topo->add_endpoint("power9_1", EndpointKind::kSocket);
  // Island 0: g0,g1,g2 on socket 0; island 1: g3,g4,g5 on socket 1.
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      topo->add_link(g[a], g[b], LinkSpec{"NVLink2", 50.0, 0.25, 2});
      topo->add_link(g[3 + a], g[3 + b], LinkSpec{"NVLink2", 50.0, 0.25, 2});
    }
  }
  for (int i = 0; i < 3; ++i) {
    topo->add_link(g[i], s0, LinkSpec{"NVLink2 CPU-GPU", 50.0, 0.25, 2});
    topo->add_link(g[3 + i], s1, LinkSpec{"NVLink2 CPU-GPU", 50.0, 0.25, 2});
  }
  topo->add_link(s0, s1,
                 LinkSpec{"X-Bus", 32.0, 0.05, 1, /*occupancy=*/0.4});
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 1;
  p.max_ranks_ = 6;
  // NVSHMEM on Summit: 1-msg put latency ~5 us (Fig 8 discussion), with a
  // heavy per-put overhead — the V100-generation proxy path is slow per
  // message even though its atomics are fast (CAS 1.0/1.6 us). This is what
  // makes latency-bound DAG codes run SLOWER on more Summit GPUs while
  // stencils (few large messages per sync) still scale.
  p.shmem_ = LogGP{/*L=*/1.75, /*o=*/3.00, /*g=*/0.30, 0.0};
  p.shmem_.atomic_o_us = 0.50;
  p.two_sided_ = LogGP{/*L=*/7.0, /*o=*/1.2, /*g=*/0.10, 0.0};  // host-staged
  p.one_sided_ = p.shmem_;
  p.compute_ = ComputeModel{/*membw=*/800.0, /*flops=*/7.0e6, /*lanes=*/80};
  p.local_bw_gbs_ = 800.0;
  p.local_latency_us_ = 0.10;
  p.info_ = PlatformInfo{"6xV100", "NVLINK2", "CUDA v11.0.3 NVSHMEM v2.8.0",
                         "NVLINK2", "2xIBM POWER9", "X-Bus", "IBM Spectrum",
                         "PCIe4.0"};
  return p;
}

// ---------------------------------------------------------------------------
// Frontier GPU (projection — the paper's future work): four MI250X packages,
// each with two GCDs joined by in-package Infinity Fabric (200 GB/s/dir as
// 4 lanes); packages fully connected by external IF (50 GB/s/dir, 1 lane);
// the Trento CPU hangs off package 0's fabric at 36 GB/s. ROC_SHMEM-class
// software costs: heavier per-put overhead than NVSHMEM, fast atomics.
// ---------------------------------------------------------------------------
Platform Platform::frontier_gpu() {
  Platform p;
  p.name_ = "Frontier GPU";
  p.is_gpu_ = true;
  auto topo = std::make_shared<Topology>();
  int gcd[8];
  for (int i = 0; i < 8; ++i) {
    gcd[i] = topo->add_endpoint("mi250x_" + std::to_string(i / 2) + "_gcd" +
                                    std::to_string(i % 2),
                                EndpointKind::kGpu);
    p.compute_eps_.push_back(gcd[i]);
  }
  for (int pkg = 0; pkg < 4; ++pkg) {
    topo->add_link(gcd[2 * pkg], gcd[2 * pkg + 1],
                   LinkSpec{"IF in-package", 200.0, 0.10, 4});
  }
  // Package-to-package external IF: connect even GCDs pairwise.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      topo->add_link(gcd[2 * a], gcd[2 * b],
                     LinkSpec{"IF GPU-GPU", 50.0, 0.30, 1});
    }
  }
  const int cpu = topo->add_endpoint("trento", EndpointKind::kSocket);
  topo->add_link(gcd[0], cpu, LinkSpec{"IF CPU-GPU", 36.0, 0.25, 1});
  topo->finalize();
  p.topo_ = std::move(topo);
  p.ranks_per_ep_ = 1;
  p.max_ranks_ = 8;
  // ROC_SHMEM-class costs (projected): put latency ~6 us at 1 msg/sync,
  // per-put overhead between NVSHMEM-on-Summit and -on-Perlmutter.
  p.shmem_ = LogGP{/*L=*/3.5, /*o=*/2.0, /*g=*/0.20, 0.0};
  p.shmem_.atomic_o_us = 0.6;
  p.two_sided_ = LogGP{/*L=*/7.5, /*o=*/1.2, /*g=*/0.10, 0.0};  // host-staged
  p.one_sided_ = p.shmem_;
  p.compute_ = ComputeModel{/*membw=*/1600.0, /*flops=*/2.4e7, /*lanes=*/110};
  p.local_bw_gbs_ = 1600.0;
  p.local_latency_us_ = 0.10;
  p.info_ = PlatformInfo{"4xMI250X (8 GCD)", "Infinity Fabric",
                         "ROC_SHMEM (projected)", "Infinity Fabric",
                         "1xAMD Trento", "-", "-", "PCIe4 ESM"};
  return p;
}

std::vector<Platform> Platform::all() {
  std::vector<Platform> v;
  v.push_back(summit_gpu());
  v.push_back(perlmutter_gpu());
  v.push_back(frontier_gpu());
  v.push_back(perlmutter_cpu());
  v.push_back(frontier_cpu());
  v.push_back(summit_cpu());
  return v;
}

}  // namespace mrl::simnet
