#include "simnet/fabric.hpp"

#include <algorithm>
#include <limits>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::simnet {

Fabric::Fabric(const Topology* topo, RouteMode mode, double local_bw_gbs,
               double local_latency_us, const FaultSpec& faults)
    : topo_(topo),
      mode_(mode),
      local_bw_gbs_(local_bw_gbs),
      local_latency_us_(local_latency_us),
      local_ser_(local_bw_gbs),
      fault_(faults, topo != nullptr ? topo->num_links() * 2 : 0) {
  MRL_CHECK(topo_ != nullptr && topo_->finalized());
  MRL_CHECK(local_bw_gbs_ > 0);
  dlink_state_.reserve(static_cast<std::size_t>(topo_->num_links()) * 2);
  for (int l = 0; l < topo_->num_links(); ++l) {
    dlink_state_.emplace_back(topo_->link(l));
    dlink_state_.emplace_back(topo_->link(l));
  }
}

TransferResult Fabric::transfer(const TransferParams& p) {
  MRL_CHECK(p.src_ep >= 0 && p.src_ep < topo_->num_endpoints());
  MRL_CHECK(p.dst_ep >= 0 && p.dst_ep < topo_->num_endpoints());
  MRL_CHECK(p.src_rank >= 0);
  total_bytes_ += p.bytes;
  ++total_msgs_;

  // Injection: the issuing rank serializes its own message launches — the
  // LogGP gap g plus, when a pump rate is set, the time to source the bytes.
  if (static_cast<std::size_t>(p.src_rank) >= injector_free_.size()) {
    injector_free_.resize(static_cast<std::size_t>(p.src_rank) + 1, kTimeZero);
  }
  TimeUs& inj = injector_free_[static_cast<std::size_t>(p.src_rank)];
  const TimeUs inject_start = std::max(p.start_us, inj);
  const double pump_us =
      p.pump_gbs > 0
          ? static_cast<double>(p.bytes) * gbs_to_us_per_byte(p.pump_gbs)
          : 0.0;
  inj = inject_start + p.inj_gap_us + pump_us;

  TransferResult r;
  r.inject_free_us = inj;

  if (p.src_ep == p.dst_ep) {
    // Same-endpoint (shared-memory) transfer. The local rate's per-byte cost
    // is pre-derived once (SerCost) — same value as dividing per message.
    double ser = local_ser_.ser_us(p.bytes);
    if (p.per_stream_gbs > 0) {
      ser = std::max(ser, static_cast<double>(p.bytes) *
                              gbs_to_us_per_byte(p.per_stream_gbs));
    }
    if (p.pump_gbs > 0) {
      ser = std::max(ser, pump_us);
    }
    r.arrival_us = inject_start + p.sw_latency_us + local_latency_us_ + ser;
    r.queue_us = inject_start - p.start_us;
    r.ser_us = ser;
    return r;
  }

  const std::vector<DirectedLink>& path = topo_->route(p.src_ep, p.dst_ep);
  MRL_CHECK(!path.empty());

  if (mode_ == RouteMode::kCutThrough) {
    // Head propagates hop by hop; the body streams at the slowest lane rate.
    TimeUs head = inject_start;
    double bottleneck_gbs = p.per_stream_gbs > 0
                                ? p.per_stream_gbs
                                : std::numeric_limits<double>::infinity();
    if (p.pump_gbs > 0) bottleneck_gbs = std::min(bottleneck_gbs, p.pump_gbs);
    struct Claim {
      LinkState* state;
      int lane;
      TimeUs start;
      double occupancy;
    };
    // Claim records live for one transfer(): bump-allocated from the fabric
    // scratch arena instead of a fresh heap vector per message.
    scratch_.reset();
    Claim* claims = scratch_.alloc_array<Claim>(path.size());
    std::size_t nclaims = 0;
    int total_drops = 0;
    double lane_wait = 0;
    double max_lane_wait = -1.0;
    double min_lane_gbs = std::numeric_limits<double>::infinity();
    std::int32_t wait_dlink = -1;   // hop with the longest head-of-line wait
    std::int32_t bottleneck_dlink = -1;  // slowest lane (uncontended fallback)
    for (const DirectedLink& dl : path) {
      LinkState& st = dlink_state_[static_cast<std::size_t>(dl.id())];
      const LinkState::LaneClaim lc = st.claim(head);
      // Fault perturbation for this message-hop: neutral (0 extra latency,
      // 1.0 bandwidth scale, 0 drops) unless a FaultSpec is active, so the
      // arithmetic below stays bit-identical on a pristine fabric.
      const FaultModel::HopFault hf = fault_.next_hop_fault(dl.id(), lc.start);
      claims[nclaims++] = Claim{&st, lc.lane, lc.start, st.msg_occupancy_us()};
      const double w = lc.start - head;
      lane_wait += w;
      if (w > max_lane_wait) {
        max_lane_wait = w;
        wait_dlink = dl.id();
      }
      if (st.channel_gbs() < min_lane_gbs) {
        min_lane_gbs = st.channel_gbs();
        bottleneck_dlink = dl.id();
      }
      head = lc.start + st.latency_us() + hf.extra_latency_us;
      bottleneck_gbs =
          std::min(bottleneck_gbs, st.channel_gbs() * hf.bw_scale);
      total_drops += hf.drops;
    }
    const double ser =
        static_cast<double>(p.bytes) * gbs_to_us_per_byte(bottleneck_gbs);
    // Every dropped attempt costs the retransmit timeout plus a full
    // reserialization before the surviving copy gets through.
    const double drop_extra =
        total_drops == 0
            ? 0.0
            : total_drops *
                  (fault_.spec().retransmit_timeout_us + ser);
    r.arrival_us = head + ser + drop_extra + p.sw_latency_us;
    r.drops = total_drops;
    r.queue_us = (inject_start - p.start_us) + lane_wait +
                 total_drops * fault_.spec().retransmit_timeout_us;
    r.ser_us = ser * (1 + total_drops);
    r.dlink = max_lane_wait > 0 ? wait_dlink : bottleneck_dlink;
    // Each claimed lane is busy until the tail has passed it (or for the
    // link's per-message occupancy floor, whichever is longer).
    for (std::size_t i = 0; i < nclaims; ++i) {
      const Claim& c = claims[i];
      const double hold = std::max(ser + drop_extra, c.occupancy);
      c.state->set_lane_free_at(c.lane, c.start + hold);
      c.state->add_busy(hold);
    }
  } else {
    // Store-and-forward: the whole message is serialized on every hop. The
    // per-lane rate is pre-derived in the LinkState (SerCost), so a pristine
    // hop costs a multiply; a fault-scaled hop re-derives exactly as before.
    TimeUs t = inject_start;
    int total_drops = 0;
    double queue = inject_start - p.start_us;
    double ser_total = 0;
    double max_lane_wait = -1.0;
    double min_lane_gbs = std::numeric_limits<double>::infinity();
    std::int32_t wait_dlink = -1;
    std::int32_t bottleneck_dlink = -1;
    for (const DirectedLink& dl : path) {
      LinkState& st = dlink_state_[static_cast<std::size_t>(dl.id())];
      const LinkState::LaneClaim lc = st.claim(t);
      const FaultModel::HopFault hf = fault_.next_hop_fault(dl.id(), lc.start);
      double ser = st.ser().ser_us_scaled(p.bytes, hf.bw_scale);
      if (p.per_stream_gbs > 0) {
        ser = std::max(ser, static_cast<double>(p.bytes) *
                                gbs_to_us_per_byte(p.per_stream_gbs));
      }
      if (p.pump_gbs > 0) ser = std::max(ser, pump_us);
      const double drop_extra =
          hf.drops == 0
              ? 0.0
              : hf.drops * (fault_.spec().retransmit_timeout_us + ser);
      const double lat = st.latency_us() + hf.extra_latency_us;
      const double hold = std::max(ser + drop_extra, st.msg_occupancy_us());
      const double w = lc.start - t;
      queue += w + hf.drops * fault_.spec().retransmit_timeout_us;
      ser_total += ser * (1 + hf.drops);
      if (w > max_lane_wait) {
        max_lane_wait = w;
        wait_dlink = dl.id();
      }
      if (st.channel_gbs() < min_lane_gbs) {
        min_lane_gbs = st.channel_gbs();
        bottleneck_dlink = dl.id();
      }
      t = lc.start + lat + ser + drop_extra;
      st.set_lane_free_at(lc.lane, lc.start + lat + hold);
      st.add_busy(hold);
      total_drops += hf.drops;
    }
    r.arrival_us = t + p.sw_latency_us;
    r.drops = total_drops;
    r.queue_us = queue;
    r.ser_us = ser_total;
    r.dlink = max_lane_wait > 0 ? wait_dlink : bottleneck_dlink;
  }
  return r;
}

RoundTripFault Fabric::sample_round_trip(int src_ep, int dst_ep,
                                         TimeUs now_us) {
  RoundTripFault rt;
  if (!fault_.enabled() || src_ep == dst_ep) return rt;
  MRL_CHECK(src_ep >= 0 && src_ep < topo_->num_endpoints());
  MRL_CHECK(dst_ep >= 0 && dst_ep < topo_->num_endpoints());
  for (int leg = 0; leg < 2; ++leg) {
    const int from = leg == 0 ? src_ep : dst_ep;
    const int to = leg == 0 ? dst_ep : src_ep;
    for (const DirectedLink& dl : topo_->route(from, to)) {
      const FaultModel::HopFault hf = fault_.next_hop_fault(dl.id(), now_us);
      rt.extra_us += hf.extra_latency_us +
                     hf.drops * fault_.spec().retransmit_timeout_us;
      rt.drops += hf.drops;
    }
  }
  return rt;
}

void Fabric::reset() {
  injector_free_.clear();
  for (LinkState& s : dlink_state_) s.reset();
  fault_.reset();
  total_bytes_ = 0;
  total_msgs_ = 0;
}

double Fabric::link_busy_us(int link_id, int dir) const {
  MRL_CHECK(link_id >= 0 && link_id < topo_->num_links());
  MRL_CHECK(dir == 0 || dir == 1);
  return dlink_state_[static_cast<std::size_t>(link_id) * 2 + dir].busy_us();
}

double Fabric::link_queue_us(int link_id, int dir) const {
  MRL_CHECK(link_id >= 0 && link_id < topo_->num_links());
  MRL_CHECK(dir == 0 || dir == 1);
  return dlink_state_[static_cast<std::size_t>(link_id) * 2 + dir].queue_us();
}

std::uint64_t Fabric::link_msgs(int link_id, int dir) const {
  MRL_CHECK(link_id >= 0 && link_id < topo_->num_links());
  MRL_CHECK(dir == 0 || dir == 1);
  return dlink_state_[static_cast<std::size_t>(link_id) * 2 + dir].msgs();
}

}  // namespace mrl::simnet
