#include "simnet/fabric.hpp"

#include <algorithm>
#include <limits>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::simnet {

Fabric::Fabric(const Topology* topo, RouteMode mode, double local_bw_gbs,
               double local_latency_us)
    : topo_(topo),
      mode_(mode),
      local_bw_gbs_(local_bw_gbs),
      local_latency_us_(local_latency_us) {
  MRL_CHECK(topo_ != nullptr && topo_->finalized());
  MRL_CHECK(local_bw_gbs_ > 0);
  dlink_state_.reserve(static_cast<std::size_t>(topo_->num_links()) * 2);
  for (int l = 0; l < topo_->num_links(); ++l) {
    dlink_state_.emplace_back(topo_->link(l));
    dlink_state_.emplace_back(topo_->link(l));
  }
}

TransferResult Fabric::transfer(const TransferParams& p) {
  MRL_CHECK(p.src_ep >= 0 && p.src_ep < topo_->num_endpoints());
  MRL_CHECK(p.dst_ep >= 0 && p.dst_ep < topo_->num_endpoints());
  MRL_CHECK(p.src_rank >= 0);
  total_bytes_ += p.bytes;
  ++total_msgs_;

  // Injection: the issuing rank serializes its own message launches — the
  // LogGP gap g plus, when a pump rate is set, the time to source the bytes.
  if (static_cast<std::size_t>(p.src_rank) >= injector_free_.size()) {
    injector_free_.resize(static_cast<std::size_t>(p.src_rank) + 1, kTimeZero);
  }
  TimeUs& inj = injector_free_[static_cast<std::size_t>(p.src_rank)];
  const TimeUs inject_start = std::max(p.start_us, inj);
  const double pump_us =
      p.pump_gbs > 0
          ? static_cast<double>(p.bytes) * gbs_to_us_per_byte(p.pump_gbs)
          : 0.0;
  inj = inject_start + p.inj_gap_us + pump_us;

  TransferResult r;
  r.inject_free_us = inj;

  if (p.src_ep == p.dst_ep) {
    // Same-endpoint (shared-memory) transfer.
    double ser =
        static_cast<double>(p.bytes) * gbs_to_us_per_byte(local_bw_gbs_);
    if (p.per_stream_gbs > 0) {
      ser = std::max(ser, static_cast<double>(p.bytes) *
                              gbs_to_us_per_byte(p.per_stream_gbs));
    }
    if (p.pump_gbs > 0) {
      ser = std::max(ser, pump_us);
    }
    r.arrival_us = inject_start + p.sw_latency_us + local_latency_us_ + ser;
    return r;
  }

  const std::vector<DirectedLink>& path = topo_->route(p.src_ep, p.dst_ep);
  MRL_CHECK(!path.empty());

  if (mode_ == RouteMode::kCutThrough) {
    // Head propagates hop by hop; the body streams at the slowest lane rate.
    TimeUs head = inject_start;
    double bottleneck_gbs = p.per_stream_gbs > 0
                                ? p.per_stream_gbs
                                : std::numeric_limits<double>::infinity();
    if (p.pump_gbs > 0) bottleneck_gbs = std::min(bottleneck_gbs, p.pump_gbs);
    struct Claim {
      LinkState* state;
      int lane;
      TimeUs start;
      double occupancy;
    };
    std::vector<Claim> claims;
    claims.reserve(path.size());
    for (const DirectedLink& dl : path) {
      const LinkSpec& spec = topo_->link(dl.link);
      LinkState& st = dlink_state_[static_cast<std::size_t>(dl.id())];
      const int lane = st.earliest_lane();
      const TimeUs start = std::max(head, st.lane_free_at(lane));
      claims.push_back(Claim{&st, lane, start, spec.msg_occupancy_us});
      head = start + spec.latency_us;
      bottleneck_gbs = std::min(bottleneck_gbs, spec.channel_gbs());
    }
    const double ser =
        static_cast<double>(p.bytes) * gbs_to_us_per_byte(bottleneck_gbs);
    r.arrival_us = head + ser + p.sw_latency_us;
    // Each claimed lane is busy until the tail has passed it (or for the
    // link's per-message occupancy floor, whichever is longer).
    for (const Claim& c : claims) {
      const double hold = std::max(ser, c.occupancy);
      c.state->set_lane_free_at(c.lane, c.start + hold);
      c.state->add_busy(hold);
    }
  } else {
    // Store-and-forward: the whole message is serialized on every hop.
    TimeUs t = inject_start;
    for (const DirectedLink& dl : path) {
      const LinkSpec& spec = topo_->link(dl.link);
      LinkState& st = dlink_state_[static_cast<std::size_t>(dl.id())];
      const int lane = st.earliest_lane();
      const TimeUs start = std::max(t, st.lane_free_at(lane));
      double ser = spec.channel_ser_us(p.bytes);
      if (p.per_stream_gbs > 0) {
        ser = std::max(ser, static_cast<double>(p.bytes) *
                                gbs_to_us_per_byte(p.per_stream_gbs));
      }
      if (p.pump_gbs > 0) ser = std::max(ser, pump_us);
      const double hold = std::max(ser, spec.msg_occupancy_us);
      t = start + spec.latency_us + ser;
      st.set_lane_free_at(lane, start + spec.latency_us + hold);
      st.add_busy(hold);
    }
    r.arrival_us = t + p.sw_latency_us;
  }
  return r;
}

void Fabric::reset() {
  injector_free_.clear();
  for (LinkState& s : dlink_state_) s.reset();
  total_bytes_ = 0;
  total_msgs_ = 0;
}

double Fabric::link_busy_us(int link_id, int dir) const {
  MRL_CHECK(link_id >= 0 && link_id < topo_->num_links());
  MRL_CHECK(dir == 0 || dir == 1);
  return dlink_state_[static_cast<std::size_t>(link_id) * 2 + dir].busy_us();
}

}  // namespace mrl::simnet
