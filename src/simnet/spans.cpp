#include "simnet/spans.hpp"

#include <cstring>

namespace mrl::simnet {

std::string to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRecv: return "recv";
    case SpanKind::kUnapplied: return "unapplied";
    case SpanKind::kFence: return "fence";
    case SpanKind::kCollective: return "collective";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kSignalWait: return "signal_wait";
    case SpanKind::kWait: return "wait";
    case SpanKind::kSendDrain: return "send_drain";
    case SpanKind::kGet: return "get";
    case SpanKind::kAtomic: return "atomic";
    case SpanKind::kFlush: return "flush";
    case SpanKind::kQuiet: return "quiet";
  }
  return "?";
}

SpanKind span_kind_from_wait_label(const char* label) {
  if (label == nullptr) return SpanKind::kWait;
  if (std::strcmp(label, "recv") == 0) return SpanKind::kRecv;
  if (std::strcmp(label, "win.wait_any_unapplied") == 0) {
    return SpanKind::kUnapplied;
  }
  if (std::strcmp(label, "win.fence") == 0) return SpanKind::kFence;
  if (std::strcmp(label, "collective") == 0) return SpanKind::kCollective;
  if (std::strcmp(label, "shmem.barrier_all") == 0) return SpanKind::kBarrier;
  if (std::strncmp(label, "shmem.wait_until", 16) == 0) {
    return SpanKind::kSignalWait;
  }
  return SpanKind::kWait;
}

}  // namespace mrl::simnet
