// Seeded, bit-deterministic fault injection for the simulated fabric.
//
// A FaultSpec describes *how* a fabric misbehaves — per-hop latency jitter,
// periodic bandwidth-degradation windows, transient link outages, message
// drops that cost a retransmit timeout per attempt, and per-rank compute
// stragglers. A FaultModel turns the spec into concrete per-message
// perturbations.
//
// Determinism contract: every random draw comes from a fresh
// Xoshiro256::for_stream substream keyed by (experiment seed, directed link
// id, per-link message ordinal). The engine serializes fabric access in
// virtual-time order, so the ordinal sequence — and therefore every
// perturbation — is byte-identical across runs, machines, and `--jobs`
// values. An empty (default) FaultSpec is a strict no-op: the fabric
// produces bit-identical timings to a fault-free build.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/time.hpp"

namespace mrl::simnet {

/// Tunable fault intensities. All fields default to "off"; a
/// default-constructed spec disables the layer entirely.
struct FaultSpec {
  std::uint64_t seed = 0x5EEDF007ULL;  ///< experiment seed for all substreams

  // --- per-hop latency jitter -------------------------------------------
  /// Extra per-hop latency, uniform in [0, latency_jitter_us) per message.
  double latency_jitter_us = 0;

  // --- bandwidth-degradation windows ------------------------------------
  /// Fraction of lane bandwidth lost inside a degradation window (0..1).
  double bw_degrade_frac = 0;
  /// Period of the square-wave degradation windows (virtual us).
  double bw_degrade_period_us = 500.0;
  /// Fraction of each period spent degraded (0..1). Window phase is derived
  /// from (seed, link id), so links degrade at different virtual times.
  double bw_degrade_duty = 0.3;

  // --- transient link outages -------------------------------------------
  /// Probability that a message-hop hits a transient outage.
  double outage_prob = 0;
  /// Stall charged to the message head when an outage hits (virtual us).
  double outage_us = 25.0;

  // --- message drops + retransmission -----------------------------------
  /// Probability that one transmission attempt is dropped. Each drop costs
  /// retransmit_timeout_us plus a full reserialization on the hop.
  double drop_prob = 0;
  /// Sender-side timeout before a dropped attempt is retransmitted.
  double retransmit_timeout_us = 20.0;
  /// Upper bound on retransmissions per message-hop (keeps costs finite).
  int max_retransmits = 8;

  // --- origin-side retry backoff (atomics / gets under drops) -----------
  /// First backoff step charged by retry-aware callers per observed drop;
  /// doubles per drop up to backoff_cap_us. 0 disables backoff accounting.
  double backoff_base_us = 0;
  double backoff_cap_us = 200.0;

  // --- per-rank compute stragglers ---------------------------------------
  /// Probability that a rank is a straggler (drawn once per rank from the
  /// seed, not per run — a given rank is consistently slow or consistently
  /// healthy for one seed).
  double straggler_prob = 0;
  /// Compute-time multiplier applied to straggler ranks (>= 1).
  double straggler_factor = 1.5;

  /// True when any fault dimension is active.
  [[nodiscard]] bool enabled() const {
    return latency_jitter_us > 0 || (bw_degrade_frac > 0 && bw_degrade_duty > 0)
           || outage_prob > 0 || drop_prob > 0 || straggler_prob > 0;
  }

  /// Preset spec scaling every dimension with one knob in [0, 1]
  /// (0 = pristine fabric, 1 = heavily degraded). Used by the fault sweep
  /// bench and `msgroof_cli --faults`.
  static FaultSpec at_intensity(double intensity, std::uint64_t seed);
};

/// Per-fabric fault state: the spec plus per-directed-link message ordinals.
/// Owned by the Fabric; reset together with fabric contention state so
/// repeated engine runs replay identical fault sequences.
class FaultModel {
 public:
  FaultModel(const FaultSpec& spec, int num_dlinks);

  /// Perturbation applied to one message crossing one directed link.
  struct HopFault {
    double extra_latency_us = 0;  ///< jitter + outage stall on the head
    double bw_scale = 1.0;        ///< lane bandwidth multiplier (0..1]
    int drops = 0;                ///< dropped transmission attempts
  };

  /// Samples (and consumes the ordinal of) the fault for the next message on
  /// `dlink` whose head reaches the link at virtual time `head_us`.
  /// Returns a neutral HopFault — and consumes nothing — when disabled.
  HopFault next_hop_fault(int dlink, TimeUs head_us);

  /// Total origin-side exponential backoff charged for `drops` observed
  /// drops: sum of min(backoff_base * 2^k, backoff_cap). Pure.
  [[nodiscard]] double backoff_us(int drops) const;

  /// Compute-time multiplier for `rank` (1.0 unless the rank is a
  /// straggler). Stateless: keyed by (seed, rank) only.
  [[nodiscard]] double straggler_scale(int rank) const;

  /// Clears the per-link ordinals (called by Fabric::reset()).
  void reset();

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  FaultSpec spec_;
  bool enabled_ = false;
  std::vector<std::uint64_t> ordinal_;  ///< per directed link, reset per run
};

}  // namespace mrl::simnet
