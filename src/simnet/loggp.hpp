// LogGP parameter sets (Alexandrov et al., "LogGP: incorporating long
// messages into the LogP model"). The Message Roofline Model is expressed in
// these terms; the fabric charges them to application code.
//
//   L — end-to-end software+stack latency per message (processor independent)
//   o — per-MPI/SHMEM-operation overhead paid by the issuing processor
//   g — gap between consecutive message injections at one endpoint
//   G — seconds per byte (1/bandwidth); in the fabric G is derived from the
//       channel bandwidth along the route, so LogGP here carries only a
//       per-stream cap used by the analytical model
#pragma once

#include <string>

namespace mrl::simnet {

/// One runtime's LogGP parameters on one platform (e.g. "two-sided CrayMPI
/// on Perlmutter CPU").
struct LogGP {
  double L_us = 3.0;        ///< software latency per message
  double o_us = 0.3;        ///< overhead per operation (each MPI call)
  double g_us = 0.05;       ///< injection gap between messages
  double per_stream_gbs = 0.0;  ///< 0 = uncapped (use link channel bandwidth)
  /// Extra software latency for remote atomics (CAS/fetch-op). Atomics
  /// bypass most of the put software path: ~0 for GPU-initiated NVSHMEM
  /// (CAS = o + hardware RTT), a bit over 1 us for MPI one-sided.
  double atomic_L_us = 0.0;
  /// Per-operation overhead for remote atomics; < 0 means "same as o_us".
  /// NVSHMEM on Summit issues atomics much faster than signalled puts.
  double atomic_o_us = -1.0;

  [[nodiscard]] double atomic_o() const {
    return atomic_o_us < 0 ? o_us : atomic_o_us;
  }

  [[nodiscard]] std::string to_string() const;
};

/// The communication runtimes the paper compares.
enum class Runtime {
  kTwoSidedMpi,   ///< MPI_Isend/Irecv/Waitall (2 ops per message)
  kOneSidedMpi,   ///< MPI_Put + flush + signal put + flush (4 ops per message)
  kShmem,         ///< GPU-initiated put-with-signal (1 op per message)
};

std::string to_string(Runtime r);

}  // namespace mrl::simnet
