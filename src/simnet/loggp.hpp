// LogGP parameter sets (Alexandrov et al., "LogGP: incorporating long
// messages into the LogP model"). The Message Roofline Model is expressed in
// these terms; the fabric charges them to application code.
//
//   L — end-to-end software+stack latency per message (processor independent)
//   o — per-MPI/SHMEM-operation overhead paid by the issuing processor
//   g — gap between consecutive message injections at one endpoint
//   G — seconds per byte (1/bandwidth); in the fabric G is derived from the
//       channel bandwidth along the route, so LogGP here carries only a
//       per-stream cap used by the analytical model
#pragma once

#include <cstdint>
#include <string>

namespace mrl::simnet {

/// One runtime's LogGP parameters on one platform (e.g. "two-sided CrayMPI
/// on Perlmutter CPU").
struct LogGP {
  double L_us = 3.0;        ///< software latency per message
  double o_us = 0.3;        ///< overhead per operation (each MPI call)
  double g_us = 0.05;       ///< injection gap between messages
  double per_stream_gbs = 0.0;  ///< 0 = uncapped (use link channel bandwidth)
  /// Extra software latency for remote atomics (CAS/fetch-op). Atomics
  /// bypass most of the put software path: ~0 for GPU-initiated NVSHMEM
  /// (CAS = o + hardware RTT), a bit over 1 us for MPI one-sided.
  double atomic_L_us = 0.0;
  /// Per-operation overhead for remote atomics; < 0 means "same as o_us".
  /// NVSHMEM on Summit issues atomics much faster than signalled puts.
  double atomic_o_us = -1.0;

  [[nodiscard]] double atomic_o() const {
    return atomic_o_us < 0 ? o_us : atomic_o_us;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Pre-derived serialization cost for a stream of messages through one lane
/// (or one shared-memory path). Costing a message under LogGP's G term means
/// converting a bandwidth to microseconds-per-byte — a divide. A lane's rate
/// is fixed, so the divide is hoisted here and each queued op pays a multiply.
///
/// The scaled overload keeps fault-perturbed hops exact: when the bandwidth
/// scale leaves the rate unchanged (scale == 1.0, the pristine-fabric common
/// case) the pre-derived rate is bit-identical to re-deriving; otherwise it
/// falls back to the full per-message derivation.
class SerCost {
 public:
  SerCost() = default;
  explicit SerCost(double gbs);

  [[nodiscard]] double gbs() const { return gbs_; }

  /// Microseconds to serialize `bytes` at the pre-derived rate.
  [[nodiscard]] double ser_us(std::uint64_t bytes) const {
    return static_cast<double>(bytes) * us_per_byte_;
  }

  /// Microseconds to serialize `bytes` at `gbs() * bw_scale`.
  [[nodiscard]] double ser_us_scaled(std::uint64_t bytes,
                                     double bw_scale) const;

 private:
  double gbs_ = 0;
  double us_per_byte_ = 0;
};

/// Closed-form LogGP injection cost for a back-to-back batch of n messages
/// from one endpoint: the first pays the overhead o, each successive launch
/// is separated by the gap g. Used when a runtime costs a whole queue of
/// same-shaped ops at once instead of looping per message.
[[nodiscard]] double batch_inject_us(const LogGP& p, std::uint64_t n);

/// The communication runtimes the paper compares.
enum class Runtime {
  kTwoSidedMpi,   ///< MPI_Isend/Irecv/Waitall (2 ops per message)
  kOneSidedMpi,   ///< MPI_Put + flush + signal put + flush (4 ops per message)
  kShmem,         ///< GPU-initiated put-with-signal (1 op per message)
};

std::string to_string(Runtime r);

}  // namespace mrl::simnet
