// Virtual time. All simulator clocks are doubles in microseconds — the unit
// the paper reports latencies in. Determinism comes from the engine's total
// ordering of events, not from the representation.
#pragma once

#include <limits>

namespace mrl::simnet {

using TimeUs = double;

inline constexpr TimeUs kTimeInf = std::numeric_limits<double>::infinity();
inline constexpr TimeUs kTimeZero = 0.0;

}  // namespace mrl::simnet
