#include "simnet/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "util/status.hpp"

namespace mrl::simnet {

namespace {

// All attribution happens in integer picoseconds with llround'ed interval
// BOUNDARIES (not durations): amount([lo,hi]) = pico(hi) - pico(lo), so
// adjacent intervals telescope and the category totals sum exactly to
// pico(makespan) no matter how the walk slices the timeline.
std::int64_t pico(TimeUs t) { return std::llround(t * 1e6); }

double us(std::int64_t p) { return static_cast<double>(p) * 1e-6; }

bool is_msg_wait(SpanKind k) {
  return k == SpanKind::kRecv || k == SpanKind::kUnapplied ||
         k == SpanKind::kSignalWait;
}

bool is_sync_wait(SpanKind k) {
  return k == SpanKind::kCollective || k == SpanKind::kBarrier ||
         k == SpanKind::kFence || k == SpanKind::kWait;
}

/// Split of one attributed segment, in picoseconds.
struct Split {
  std::int64_t queue = 0;
  std::int64_t ser = 0;
  std::int64_t lat = 0;
  std::int64_t sync = 0;
};

/// Clips the (q_us, s_us) decomposition into a segment of `seg` picoseconds;
/// the exact remainder lands in latency or sync per `rest_is_sync`.
Split clip_split(std::int64_t seg, double q_us, double s_us,
                 bool rest_is_sync) {
  Split out;
  out.queue = std::min<std::int64_t>(std::max<std::int64_t>(pico(q_us), 0),
                                     seg);
  out.ser = std::min<std::int64_t>(std::max<std::int64_t>(pico(s_us), 0),
                                   seg - out.queue);
  const std::int64_t rest = seg - out.queue - out.ser;
  if (rest_is_sync) {
    out.sync = rest;
  } else {
    out.lat = rest;
  }
  return out;
}

struct TopEntry {
  std::int64_t pico = 0;
  int id = 0;
};

void append_top(std::ostringstream& os, const char* title,
                const std::vector<std::int64_t>& per_id,
                const std::function<std::string(int)>& name) {
  std::vector<TopEntry> top;
  for (std::size_t i = 0; i < per_id.size(); ++i) {
    if (per_id[i] > 0) top.push_back({per_id[i], static_cast<int>(i)});
  }
  if (top.empty()) return;
  std::sort(top.begin(), top.end(), [](const TopEntry& a, const TopEntry& b) {
    if (a.pico != b.pico) return a.pico > b.pico;
    return a.id < b.id;
  });
  if (top.size() > 10) top.resize(10);
  os << title << "\n";
  char buf[160];
  for (const TopEntry& e : top) {
    std::snprintf(buf, sizeof buf, "  %-24s %14.3f us\n",
                  name(e.id).c_str(), us(e.pico));
    os << buf;
  }
}

}  // namespace

CritPathReport analyze_critical_path(const CritPathInput& in) {
  CritPathReport rep;
  MRL_CHECK(in.spans != nullptr && in.rank_end_us != nullptr);
  MRL_CHECK(in.nranks >= 1 &&
            in.rank_end_us->size() == static_cast<std::size_t>(in.nranks));
  const SpanStore& store = *in.spans;

  // Last-finishing rank (ties break toward the lowest id).
  int end_rank = 0;
  for (int i = 1; i < in.nranks; ++i) {
    if ((*in.rank_end_us)[static_cast<std::size_t>(i)] >
        (*in.rank_end_us)[static_cast<std::size_t>(end_rank)]) {
      end_rank = i;
    }
  }
  rep.end_rank = end_rank;
  rep.makespan_pico = static_cast<std::uint64_t>(
      pico((*in.rank_end_us)[static_cast<std::size_t>(end_rank)]));

  // Per-rank span index lists, in recording order. A rank's clock is
  // monotone, so its t_end sequence is nondecreasing — binary-searchable.
  std::vector<std::vector<std::size_t>> by_rank(
      static_cast<std::size_t>(in.nranks));
  for (std::size_t i = 0; i < store.size(); ++i) {
    by_rank[static_cast<std::size_t>(store[i].rank)].push_back(i);
  }

  // Message index sorted by (dst, arrival, store order) for flight joins.
  std::vector<std::size_t> midx;
  const RecordStore* msgs = in.msgs;
  if (msgs != nullptr) {
    midx.resize(msgs->size());
    for (std::size_t i = 0; i < midx.size(); ++i) midx[i] = i;
    std::sort(midx.begin(), midx.end(), [&](std::size_t a, std::size_t b) {
      const MsgRecord& ma = (*msgs)[a];
      const MsgRecord& mb = (*msgs)[b];
      if (ma.dst_rank != mb.dst_rank) return ma.dst_rank < mb.dst_rank;
      if (ma.t_arrival != mb.t_arrival) return ma.t_arrival < mb.t_arrival;
      return a < b;
    });
  }
  // Finds the message delivered to `dst` at exactly `arrival`, preferring
  // (src, t_issue) == (peer, issue) when a causal edge names the sender;
  // otherwise the first record in store order. -1 if none.
  const auto find_msg = [&](int dst, TimeUs arrival, int peer,
                            TimeUs issue) -> std::ptrdiff_t {
    if (msgs == nullptr || midx.empty()) return -1;
    const auto lo = std::lower_bound(
        midx.begin(), midx.end(), std::make_pair(dst, arrival),
        [&](std::size_t a, const std::pair<int, TimeUs>& key) {
          const MsgRecord& m = (*msgs)[a];
          if (m.dst_rank != key.first) return m.dst_rank < key.first;
          return m.t_arrival < key.second;
        });
    std::ptrdiff_t first = -1;
    for (auto it = lo; it != midx.end(); ++it) {
      const MsgRecord& m = (*msgs)[*it];
      if (m.dst_rank != dst || m.t_arrival != arrival) break;
      if (first == -1) first = static_cast<std::ptrdiff_t>(*it);
      if (peer >= 0 && m.src_rank == peer && m.t_issue == issue) {
        return static_cast<std::ptrdiff_t>(*it);
      }
    }
    return first;
  };

  // ---- the backward walk ----
  std::vector<std::int64_t> rank_stall(static_cast<std::size_t>(in.nranks), 0);
  std::vector<std::int64_t> link_pico;  // grown on use, by directed link id
  std::int64_t compute = 0, latency = 0, ser = 0, queue = 0, sync = 0;
  std::ostringstream path;
  constexpr std::uint64_t kMaxPathLines = 200;
  std::uint64_t path_lines = 0;
  char buf[256];
  const auto path_line = [&](TimeUs lo, TimeUs hi, int rank,
                             const std::string& what) {
    ++path_lines;
    if (path_lines > kMaxPathLines) return;
    std::snprintf(buf, sizeof buf, "  %.3f..%.3f us rank %d %s\n", lo, hi,
                  rank, what.c_str());
    path << buf;
  };

  int cur = end_rank;
  TimeUs t = (*in.rank_end_us)[static_cast<std::size_t>(end_rank)];
  std::size_t limit = by_rank[static_cast<std::size_t>(cur)].size();
  // Backstop: the walk strictly descends in (time, per-rank span position),
  // so this cap is never reached on well-formed inputs; if it ever is, the
  // remainder is attributed to compute and the report says so.
  const std::uint64_t step_cap =
      2 * store.size() + 2 * static_cast<std::uint64_t>(in.nranks) + 64;

  for (;;) {
    ++rep.steps;
    if (rep.steps > step_cap) {
      compute += pico(t);
      rep.truncated = true;
      path_line(0, t, cur, "walk truncated (step cap); remainder -> compute");
      break;
    }
    const std::vector<std::size_t>& lst = by_rank[static_cast<std::size_t>(cur)];
    // Largest k < limit with span k's t_end <= t.
    std::size_t hi = std::min(limit, lst.size());
    std::size_t k = hi;
    {
      std::size_t a = 0, b = hi;
      while (a < b) {  // first index with t_end > t
        const std::size_t mid = (a + b) / 2;
        if (store[lst[mid]].t_end > t) {
          b = mid;
        } else {
          a = mid + 1;
        }
      }
      k = a;  // spans [0, k) have t_end <= t
    }
    if (k == 0) {
      compute += pico(t);
      path_line(0, t, cur, "compute (run start)");
      break;
    }
    const SpanRecord& spn = store[lst[k - 1]];
    const TimeUs b0 = spn.t_begin;
    const TimeUs e = spn.t_end;
    const std::int64_t gap = pico(t) - pico(e);
    compute += gap;

    const bool wait_kind = is_msg_wait(spn.kind) || is_sync_wait(spn.kind);
    const bool has_cause = wait_kind && spn.peer >= 0;
    // Segment start: a causal wait attributes the full dependency window
    // [cause_t, e] (for a message wake that IS the flight window, issue to
    // arrival, even when it began before this rank blocked — overlapped
    // communication); otherwise the span's own extent [b0, e].
    const TimeUs c0 = has_cause ? std::min(spn.cause_t, e) : b0;
    const std::int64_t seg = pico(e) - pico(c0);

    Split sp;
    std::ptrdiff_t mi = -1;
    if (is_msg_wait(spn.kind)) {
      mi = find_msg(cur, e, has_cause ? spn.peer : -1,
                    has_cause ? spn.cause_t : 0);
      if (mi >= 0) {
        const MsgRecord& m = (*msgs)[static_cast<std::size_t>(mi)];
        sp = clip_split(seg, m.q_us, m.s_us, /*rest_is_sync=*/false);
        if (m.dlink >= 0) {
          if (static_cast<std::size_t>(m.dlink) >= link_pico.size()) {
            link_pico.resize(static_cast<std::size_t>(m.dlink) + 1, 0);
          }
          link_pico[static_cast<std::size_t>(m.dlink)] += sp.queue + sp.ser;
        }
      } else {
        sp.lat = seg;  // no record (e.g. tracing off): count it as latency
      }
    } else if (is_sync_wait(spn.kind)) {
      sp.sync = seg;
    } else {
      // Blocking-advance op: the call site recorded the fabric q/s share.
      const bool rest_sync =
          spn.kind == SpanKind::kFlush || spn.kind == SpanKind::kQuiet;
      sp = clip_split(seg, spn.q_us, spn.s_us, rest_sync);
    }
    queue += sp.queue;
    ser += sp.ser;
    latency += sp.lat;
    sync += sp.sync;
    rank_stall[static_cast<std::size_t>(cur)] += seg;

    std::string what = to_string(spn.kind);
    if (spn.peer >= 0) {
      what += (wait_kind ? " <- rank " : " -> rank ") +
              std::to_string(spn.peer);
    }
    if (spn.bytes > 0) what += " " + std::to_string(spn.bytes) + "B";
    {
      char det[128];
      std::snprintf(det, sizeof det, " (q %.3f ser %.3f lat %.3f sync %.3f",
                    us(sp.queue), us(sp.ser), us(sp.lat), us(sp.sync));
      what += det;
      if (gap > 0) {
        std::snprintf(det, sizeof det, " +compute %.3f", us(gap));
        what += det;
      }
      what += ")";
    }
    path_line(c0, t, cur, what);

    if (has_cause) {
      // Follow the causal edge: resume on the satisfying rank at the moment
      // it acted, bounded to the spans that preceded the action.
      cur = spn.peer;
      t = c0;
      limit = spn.cause_nspans;
    } else {
      t = b0;
      limit = k - 1;
    }
  }

  rep.compute_pico = static_cast<std::uint64_t>(compute);
  rep.latency_pico = static_cast<std::uint64_t>(latency);
  rep.ser_pico = static_cast<std::uint64_t>(ser);
  rep.queue_pico = static_cast<std::uint64_t>(queue);
  rep.sync_pico = static_cast<std::uint64_t>(sync);

  // ---- fixed-format report ----
  std::ostringstream os;
  std::snprintf(buf, sizeof buf,
                "critical path: makespan %.3f us, ends at rank %d (%llu "
                "steps)%s\n",
                us(static_cast<std::int64_t>(rep.makespan_pico)), end_rank,
                static_cast<unsigned long long>(rep.steps),
                rep.truncated ? " [truncated]" : "");
  os << buf;
  os << "category totals (exactly partition the makespan):\n";
  const auto pct = [&](std::uint64_t p) {
    return rep.makespan_pico == 0
               ? 0.0
               : 100.0 * static_cast<double>(p) /
                     static_cast<double>(rep.makespan_pico);
  };
  const auto cat = [&](const char* name, std::uint64_t p) {
    std::snprintf(buf, sizeof buf, "  %-16s %14.3f us  %5.1f%%\n", name,
                  us(static_cast<std::int64_t>(p)), pct(p));
    os << buf;
  };
  cat("compute", rep.compute_pico);
  cat("sync wait", rep.sync_pico);
  cat("net latency", rep.latency_pico);
  cat("serialization", rep.ser_pico);
  cat("queueing", rep.queue_pico);

  append_top(os, "top ranks by critical-path stall:", rank_stall,
             [](int id) { return "rank " + std::to_string(id); });
  append_top(os, "top links on the critical path:", link_pico, [&](int id) {
    if (in.dlink_names != nullptr &&
        static_cast<std::size_t>(id) < in.dlink_names->size()) {
      return (*in.dlink_names)[static_cast<std::size_t>(id)];
    }
    return "dlink " + std::to_string(id);
  });

  os << "path (most recent first):\n" << path.str();
  if (path_lines > kMaxPathLines) {
    std::snprintf(buf, sizeof buf, "  (... %llu more steps)\n",
                  static_cast<unsigned long long>(path_lines - kMaxPathLines));
    os << buf;
  }
  rep.text = os.str();
  return rep;
}

}  // namespace mrl::simnet
