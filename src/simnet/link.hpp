// Link descriptions and per-direction channel contention state.
//
// A link is an undirected physical connection (Infinity Fabric, X-Bus,
// NVLink2/3, PCIe4, Slingshot) with a per-direction aggregate bandwidth split
// across `channels` independent lanes. A single message stream occupies one
// lane, so its serialization rate is bandwidth/channels — this is how NVLink
// port groups are modeled and what makes message-splitting pay off (Fig 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/loggp.hpp"
#include "simnet/time.hpp"
#include "util/indexed_heap.hpp"

namespace mrl::simnet {

/// Immutable description of a physical link.
struct LinkSpec {
  std::string name;          ///< e.g. "IF CPU-CPU", "NVLink3 g0-g1"
  double bandwidth_gbs = 0;  ///< aggregate per-direction bandwidth, GB/s (1e9)
  double latency_us = 0;     ///< hardware traversal latency per hop
  int channels = 1;          ///< independent lanes per direction
  /// Minimum per-message lane hold time: protocol engines (e.g. the Summit
  /// X-Bus coherence path) serialize small transactions regardless of size.
  double msg_occupancy_us = 0;

  /// Serialization rate of a single message stream (one lane), GB/s.
  [[nodiscard]] double channel_gbs() const {
    return bandwidth_gbs / channels;
  }
  /// Microseconds to push `bytes` through one lane.
  [[nodiscard]] double channel_ser_us(std::uint64_t bytes) const;
  /// Microseconds to push `bytes` at full aggregate bandwidth.
  [[nodiscard]] double full_ser_us(std::uint64_t bytes) const;
};

/// Mutable contention state for ONE direction of a link: when each lane is
/// next free, plus the spec-derived per-message costs cached once at
/// construction so the fabric's per-hop loop never re-derives them.
///
/// Lane selection is incremental: a single-lane link short-circuits to lane
/// 0, a multi-lane link keeps an indexed min-heap over (free-at, lane) whose
/// top is exactly the first minimum a linear std::min_element scan would
/// return (ties break toward the lowest lane index).
class LinkState {
 public:
  explicit LinkState(const LinkSpec& spec);

  /// Picks the lane that frees earliest; returns its index.
  [[nodiscard]] int earliest_lane() const {
    return lane_next_free_.size() == 1 ? 0 : lane_heap_.top();
  }

  [[nodiscard]] TimeUs lane_free_at(int lane) const {
    return lane_next_free_[lane];
  }
  void set_lane_free_at(int lane, TimeUs t);

  /// Spec-derived constants (identical values to re-deriving per message).
  [[nodiscard]] double channel_gbs() const { return ser_.gbs(); }
  [[nodiscard]] double latency_us() const { return latency_us_; }
  [[nodiscard]] double msg_occupancy_us() const { return msg_occupancy_us_; }
  /// Pre-derived one-lane serialization cost (see SerCost).
  [[nodiscard]] const SerCost& ser() const { return ser_; }

  /// A lane grant for one message whose head reaches this hop at `head`.
  struct LaneClaim {
    int lane = 0;      ///< claimed lane index
    TimeUs start = 0;  ///< when serialization starts (head or lane-free time)
  };

  /// Claims the earliest-free lane, accounting the head-of-line wait and the
  /// message count. The caller publishes the hold via set_lane_free_at()
  /// once the tail time is known.
  [[nodiscard]] LaneClaim claim(TimeUs head);

  [[nodiscard]] int num_lanes() const {
    return static_cast<int>(lane_next_free_.size());
  }

  /// Total busy time accumulated (for utilization reporting).
  [[nodiscard]] double busy_us() const { return busy_us_; }
  void add_busy(double us) { busy_us_ += us; }

  /// Head-of-line time transfers spent waiting for a free lane.
  [[nodiscard]] double queue_us() const { return queue_us_; }
  void add_queue(double us) { queue_us_ += us; }

  /// Messages that claimed a lane in this direction.
  [[nodiscard]] std::uint64_t msgs() const { return msgs_; }
  void note_msg() { ++msgs_; }

  void reset();

 private:
  std::vector<TimeUs> lane_next_free_;
  util::IndexedMinHeap<TimeUs> lane_heap_;  ///< only populated for >1 lanes
  SerCost ser_;
  double latency_us_ = 0.0;
  double msg_occupancy_us_ = 0.0;
  double busy_us_ = 0.0;
  double queue_us_ = 0.0;
  std::uint64_t msgs_ = 0;
};

}  // namespace mrl::simnet
