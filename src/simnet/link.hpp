// Link descriptions and per-direction channel contention state.
//
// A link is an undirected physical connection (Infinity Fabric, X-Bus,
// NVLink2/3, PCIe4, Slingshot) with a per-direction aggregate bandwidth split
// across `channels` independent lanes. A single message stream occupies one
// lane, so its serialization rate is bandwidth/channels — this is how NVLink
// port groups are modeled and what makes message-splitting pay off (Fig 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/time.hpp"

namespace mrl::simnet {

/// Immutable description of a physical link.
struct LinkSpec {
  std::string name;          ///< e.g. "IF CPU-CPU", "NVLink3 g0-g1"
  double bandwidth_gbs = 0;  ///< aggregate per-direction bandwidth, GB/s (1e9)
  double latency_us = 0;     ///< hardware traversal latency per hop
  int channels = 1;          ///< independent lanes per direction
  /// Minimum per-message lane hold time: protocol engines (e.g. the Summit
  /// X-Bus coherence path) serialize small transactions regardless of size.
  double msg_occupancy_us = 0;

  /// Serialization rate of a single message stream (one lane), GB/s.
  [[nodiscard]] double channel_gbs() const {
    return bandwidth_gbs / channels;
  }
  /// Microseconds to push `bytes` through one lane.
  [[nodiscard]] double channel_ser_us(std::uint64_t bytes) const;
  /// Microseconds to push `bytes` at full aggregate bandwidth.
  [[nodiscard]] double full_ser_us(std::uint64_t bytes) const;
};

/// Mutable contention state for ONE direction of a link: when each lane is
/// next free. The fabric picks the earliest-available lane per transfer.
class LinkState {
 public:
  explicit LinkState(const LinkSpec& spec);

  /// Picks the lane that frees earliest; returns its index.
  [[nodiscard]] int earliest_lane() const;

  [[nodiscard]] TimeUs lane_free_at(int lane) const {
    return lane_next_free_[lane];
  }
  void set_lane_free_at(int lane, TimeUs t) { lane_next_free_[lane] = t; }

  [[nodiscard]] int num_lanes() const {
    return static_cast<int>(lane_next_free_.size());
  }

  /// Total busy time accumulated (for utilization reporting).
  [[nodiscard]] double busy_us() const { return busy_us_; }
  void add_busy(double us) { busy_us_ += us; }

  /// Head-of-line time transfers spent waiting for a free lane.
  [[nodiscard]] double queue_us() const { return queue_us_; }
  void add_queue(double us) { queue_us_ += us; }

  /// Messages that claimed a lane in this direction.
  [[nodiscard]] std::uint64_t msgs() const { return msgs_; }
  void note_msg() { ++msgs_; }

  void reset();

 private:
  std::vector<TimeUs> lane_next_free_;
  double busy_us_ = 0.0;
  double queue_us_ = 0.0;
  std::uint64_t msgs_ = 0;
};

}  // namespace mrl::simnet
