#include "simnet/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::simnet {

std::string to_string(EndpointKind k) {
  switch (k) {
    case EndpointKind::kSocket: return "socket";
    case EndpointKind::kGpu: return "gpu";
    case EndpointKind::kNic: return "nic";
    case EndpointKind::kSwitch: return "switch";
  }
  return "unknown";
}

int Topology::add_endpoint(std::string name, EndpointKind kind) {
  MRL_CHECK(!finalized_);
  endpoints_.push_back(Endpoint{std::move(name), kind});
  adj_.emplace_back();
  return static_cast<int>(endpoints_.size()) - 1;
}

int Topology::add_link(int a, int b, LinkSpec spec) {
  MRL_CHECK(!finalized_);
  MRL_CHECK(a >= 0 && a < num_endpoints());
  MRL_CHECK(b >= 0 && b < num_endpoints());
  MRL_CHECK(a != b);
  MRL_CHECK(spec.bandwidth_gbs > 0 && spec.channels >= 1);
  const int id = static_cast<int>(links_.size());
  links_.push_back(std::move(spec));
  link_ends_.emplace_back(a, b);
  adj_[a].push_back(Adj{b, DirectedLink{id, 0}});
  adj_[b].push_back(Adj{a, DirectedLink{id, 1}});
  return id;
}

void Topology::finalize() {
  MRL_CHECK(!finalized_);
  const int n = num_endpoints();
  routes_.assign(static_cast<std::size_t>(n) * n, {});
  route_lat_.assign(static_cast<std::size_t>(n) * n, 0.0);
  route_chan_gbs_.assign(static_cast<std::size_t>(n) * n,
                         std::numeric_limits<double>::infinity());

  // BFS from each source; neighbors are visited in insertion order and ties
  // keep the first-found parent, so routes are deterministic.
  for (int src = 0; src < n; ++src) {
    std::vector<int> dist(n, -1);
    std::vector<DirectedLink> parent_link(n);
    std::vector<int> parent(n, -1);
    std::deque<int> q{src};
    dist[src] = 0;
    while (!q.empty()) {
      const int u = q.front();
      q.pop_front();
      for (const Adj& e : adj_[u]) {
        if (dist[e.peer] != -1) continue;
        dist[e.peer] = dist[u] + 1;
        parent[e.peer] = u;
        parent_link[e.peer] = e.dlink;
        q.push_back(e.peer);
      }
    }
    for (int dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      MRL_CHECK_MSG(dist[dst] != -1, "topology is disconnected");
      std::vector<DirectedLink> path;
      for (int v = dst; v != src; v = parent[v]) path.push_back(parent_link[v]);
      std::reverse(path.begin(), path.end());
      double lat = 0.0;
      double chan = std::numeric_limits<double>::infinity();
      for (const DirectedLink& dl : path) {
        lat += links_[dl.link].latency_us;
        chan = std::min(chan, links_[dl.link].channel_gbs());
      }
      const std::size_t idx = static_cast<std::size_t>(src) * n + dst;
      routes_[idx] = std::move(path);
      route_lat_[idx] = lat;
      route_chan_gbs_[idx] = chan;
    }
  }
  finalized_ = true;
}

const Endpoint& Topology::endpoint(int id) const {
  MRL_CHECK(id >= 0 && id < num_endpoints());
  return endpoints_[id];
}

const LinkSpec& Topology::link(int id) const {
  MRL_CHECK(id >= 0 && id < num_links());
  return links_[id];
}

int Topology::link_endpoint(int link_id, int side) const {
  MRL_CHECK(link_id >= 0 && link_id < num_links());
  MRL_CHECK(side == 0 || side == 1);
  return side == 0 ? link_ends_[link_id].first : link_ends_[link_id].second;
}

const std::vector<DirectedLink>& Topology::route(int src, int dst) const {
  MRL_CHECK(finalized_);
  MRL_CHECK(src >= 0 && src < num_endpoints());
  MRL_CHECK(dst >= 0 && dst < num_endpoints());
  return routes_[static_cast<std::size_t>(src) * num_endpoints() + dst];
}

double Topology::route_latency_us(int src, int dst) const {
  MRL_CHECK(finalized_);
  return route_lat_[static_cast<std::size_t>(src) * num_endpoints() + dst];
}

double Topology::route_channel_gbs(int src, int dst) const {
  MRL_CHECK(finalized_);
  return route_chan_gbs_[static_cast<std::size_t>(src) * num_endpoints() + dst];
}

std::vector<int> Topology::endpoints_of_kind(EndpointKind k) const {
  std::vector<int> out;
  for (int i = 0; i < num_endpoints(); ++i)
    if (endpoints_[i].kind == k) out.push_back(i);
  return out;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "endpoints:\n";
  for (int i = 0; i < num_endpoints(); ++i) {
    os << "  [" << i << "] " << endpoints_[i].name << " ("
       << to_string(endpoints_[i].kind) << ")\n";
  }
  os << "links:\n";
  for (int i = 0; i < num_links(); ++i) {
    const LinkSpec& s = links_[i];
    os << "  " << endpoints_[link_ends_[i].first].name << " <-> "
       << endpoints_[link_ends_[i].second].name << "  " << s.name << "  "
       << format_gbs(s.bandwidth_gbs) << "/dir"
       << ", " << s.channels << " ch"
       << ", " << format_time_us(s.latency_us) << " hop\n";
  }
  return os.str();
}

}  // namespace mrl::simnet
