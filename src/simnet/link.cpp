#include "simnet/link.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::simnet {

double LinkSpec::channel_ser_us(std::uint64_t bytes) const {
  MRL_CHECK(bandwidth_gbs > 0 && channels > 0);
  return static_cast<double>(bytes) * gbs_to_us_per_byte(channel_gbs());
}

double LinkSpec::full_ser_us(std::uint64_t bytes) const {
  MRL_CHECK(bandwidth_gbs > 0);
  return static_cast<double>(bytes) * gbs_to_us_per_byte(bandwidth_gbs);
}

LinkState::LinkState(const LinkSpec& spec)
    : lane_next_free_(static_cast<std::size_t>(spec.channels), kTimeZero),
      ser_(spec.channel_gbs()),
      latency_us_(spec.latency_us),
      msg_occupancy_us_(spec.msg_occupancy_us) {
  MRL_CHECK(spec.channels >= 1);
  if (spec.channels > 1) {
    lane_heap_.reset(spec.channels);
    for (int l = 0; l < spec.channels; ++l) lane_heap_.push(l, kTimeZero);
  }
}

void LinkState::set_lane_free_at(int lane, TimeUs t) {
  lane_next_free_[static_cast<std::size_t>(lane)] = t;
  if (lane_next_free_.size() > 1) lane_heap_.update(lane, t);
}

LinkState::LaneClaim LinkState::claim(TimeUs head) {
  LaneClaim c;
  c.lane = earliest_lane();
  c.start = std::max(head, lane_next_free_[static_cast<std::size_t>(c.lane)]);
  ++msgs_;
  queue_us_ += c.start - head;
  return c;
}

void LinkState::reset() {
  std::fill(lane_next_free_.begin(), lane_next_free_.end(), kTimeZero);
  if (lane_next_free_.size() > 1) {
    for (int l = 0; l < static_cast<int>(lane_next_free_.size()); ++l) {
      lane_heap_.update(l, kTimeZero);
    }
  }
  busy_us_ = 0.0;
  queue_us_ = 0.0;
  msgs_ = 0;
}

}  // namespace mrl::simnet
