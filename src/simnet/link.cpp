#include "simnet/link.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::simnet {

double LinkSpec::channel_ser_us(std::uint64_t bytes) const {
  MRL_CHECK(bandwidth_gbs > 0 && channels > 0);
  return static_cast<double>(bytes) * gbs_to_us_per_byte(channel_gbs());
}

double LinkSpec::full_ser_us(std::uint64_t bytes) const {
  MRL_CHECK(bandwidth_gbs > 0);
  return static_cast<double>(bytes) * gbs_to_us_per_byte(bandwidth_gbs);
}

LinkState::LinkState(const LinkSpec& spec)
    : lane_next_free_(static_cast<std::size_t>(spec.channels), kTimeZero) {
  MRL_CHECK(spec.channels >= 1);
}

int LinkState::earliest_lane() const {
  const auto it =
      std::min_element(lane_next_free_.begin(), lane_next_free_.end());
  return static_cast<int>(it - lane_next_free_.begin());
}

void LinkState::reset() {
  std::fill(lane_next_free_.begin(), lane_next_free_.end(), kTimeZero);
  busy_us_ = 0.0;
  queue_us_ = 0.0;
  msgs_ = 0;
}

}  // namespace mrl::simnet
