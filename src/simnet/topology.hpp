// Node/system topology: endpoints (sockets, GPUs, NICs, switches) connected
// by links, with min-hop routing. Immutable after finalize(); the Fabric owns
// all mutable contention state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/link.hpp"

namespace mrl::simnet {

/// What an endpoint is. Ranks/PEs are hosted only on kSocket/kGpu endpoints.
enum class EndpointKind { kSocket, kGpu, kNic, kSwitch };

std::string to_string(EndpointKind k);

struct Endpoint {
  std::string name;
  EndpointKind kind = EndpointKind::kSocket;
};

/// A directed link reference: undirected link `link` traversed in direction
/// `dir` (0 = a->b, 1 = b->a). Directed id = link*2 + dir.
struct DirectedLink {
  int link = -1;
  int dir = 0;
  [[nodiscard]] int id() const { return link * 2 + dir; }
};

/// Immutable graph of endpoints and links with precomputed min-hop routes.
class Topology {
 public:
  /// Adds an endpoint; returns its id.
  int add_endpoint(std::string name, EndpointKind kind);

  /// Adds an undirected link between endpoints a and b; returns link id.
  int add_link(int a, int b, LinkSpec spec);

  /// Computes all-pairs min-hop routes (ties broken by smaller endpoint id,
  /// so routing is deterministic). Must be called once before use.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] int num_endpoints() const {
    return static_cast<int>(endpoints_.size());
  }
  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] const Endpoint& endpoint(int id) const;
  [[nodiscard]] const LinkSpec& link(int id) const;
  [[nodiscard]] int link_endpoint(int link_id, int side) const;  ///< side 0/1

  /// Directed links along the min-hop route src -> dst. Empty when src==dst.
  [[nodiscard]] const std::vector<DirectedLink>& route(int src, int dst) const;

  /// Sum of hardware latencies along the route (0 for src==dst).
  [[nodiscard]] double route_latency_us(int src, int dst) const;

  /// Min over the route of single-lane bandwidths; kTimeInf-like large value
  /// for src==dst (local transfers are costed by the Platform instead).
  [[nodiscard]] double route_channel_gbs(int src, int dst) const;

  /// Endpoint ids of a given kind, in creation order.
  [[nodiscard]] std::vector<int> endpoints_of_kind(EndpointKind k) const;

  /// One-line-per-link ASCII description (used by the Table I bench).
  [[nodiscard]] std::string describe() const;

 private:
  struct Adj {
    int peer;
    DirectedLink dlink;
  };
  std::vector<Endpoint> endpoints_;
  std::vector<LinkSpec> links_;
  std::vector<std::pair<int, int>> link_ends_;
  std::vector<std::vector<Adj>> adj_;
  // routes_[src * N + dst]
  std::vector<std::vector<DirectedLink>> routes_;
  std::vector<double> route_lat_;
  std::vector<double> route_chan_gbs_;
  bool finalized_ = false;
};

}  // namespace mrl::simnet
