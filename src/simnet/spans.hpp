// Per-rank execution spans: every interval a rank spends inside a blocking
// wait or a blocking-advance communication operation, with the op kind, the
// peer, the payload bytes, the WaitGate threshold, and — for waits satisfied
// by another rank's action — the causal (rank, virtual time) edge the
// critical-path analyzer (critpath.hpp, DESIGN.md §14) walks backward.
//
// The engine records spans in global virtual-time order (one rank executes
// at a time), so the store's byte content is identical across execution
// backends, schedulers, and --jobs values. Disabled spans cost one branch
// per hook, exactly like Trace and Metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/time.hpp"
#include "simnet/trace.hpp"

namespace mrl::simnet {

enum class SpanKind : std::uint8_t {
  // Blocking waits, recorded by Engine::wait (kind derived from the label).
  kRecv,        ///< two-sided receive match ("recv")
  kUnapplied,   ///< MPI_Win wait for an unapplied put ("win.wait_any_unapplied")
  kFence,       ///< MPI_Win_fence rendezvous ("win.fence")
  kCollective,  ///< MPI collective rendezvous ("collective")
  kBarrier,     ///< SHMEM barrier/reduction rendezvous ("shmem.barrier_all")
  kSignalWait,  ///< SHMEM wait_until / signal wait ("shmem.wait_until*")
  kWait,        ///< any other Engine::wait label
  // Blocking-advance operations, recorded at their call sites: the rank's
  // clock advanced by a round trip / drain without parking in the engine.
  kSendDrain,   ///< MPI_Wait on a send until inject-free
  kGet,         ///< one-sided get round trip
  kAtomic,      ///< CAS / fetch-op round trip
  kFlush,       ///< MPI_Win flush / flush_local remote-completion drain
  kQuiet,       ///< shmem_quiet remote-completion drain
};

std::string to_string(SpanKind k);

/// Maps an Engine::wait label to its span kind (exact match; unknown labels
/// fall back to kWait).
SpanKind span_kind_from_wait_label(const char* label);

struct SpanRecord {
  std::int32_t rank = -1;
  /// Wait kinds: the rank whose action satisfied the wait (-1 if the wait
  /// never parked). Op kinds: the target/peer rank of the operation.
  std::int32_t peer = -1;
  SpanKind kind = SpanKind::kWait;
  TimeUs t_begin = 0;
  TimeUs t_end = 0;
  /// Wait kinds with peer >= 0: the satisfying rank's virtual time when it
  /// performed the action (its clock at the perform — for a message wake,
  /// the issue time of the message).
  TimeUs cause_t = 0;
  /// Span count of the satisfying rank at the wake, i.e. the number of its
  /// spans that precede the causal action — the backward walk's resume
  /// bound (guarantees termination).
  std::uint32_t cause_nspans = 0;
  std::uint64_t bytes = 0;
  std::uint64_t gate = 0;  ///< WaitGate threshold (0 = ungated)
  /// Op kinds: queueing / serialization share of the span (fabric
  /// decomposition); the remainder is latency.
  double q_us = 0;
  double s_us = 0;
};

using SpanStore = ChunkedStore<SpanRecord>;

/// Engine-owned span collector. The engine serializes all recording.
class Spans {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Clears the store and re-dimensions per-rank counts (start of each run).
  void reset(int nranks) {
    records_.clear();
    rank_count_.assign(static_cast<std::size_t>(nranks), 0);
  }

  /// Appends one span; zero-duration spans are dropped so the store only
  /// holds intervals that can carry attribution.
  void record(const SpanRecord& r) {
    if (!enabled_ || !(r.t_end > r.t_begin)) return;
    records_.push_back(r);
    ++rank_count_[static_cast<std::size_t>(r.rank)];
  }

  [[nodiscard]] const SpanStore& records() const { return records_; }

  /// Spans recorded so far for `rank` (feeds SpanRecord::cause_nspans).
  [[nodiscard]] std::uint32_t rank_count(int rank) const {
    return rank_count_[static_cast<std::size_t>(rank)];
  }

 private:
  bool enabled_ = false;
  SpanStore records_;
  std::vector<std::uint32_t> rank_count_;
};

}  // namespace mrl::simnet
