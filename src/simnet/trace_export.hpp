// Trace export: dump a communication trace as CSV or as Chrome tracing JSON
// (load in chrome://tracing or Perfetto — one row per rank, one slice per
// message from issue to arrival).
#pragma once

#include <iosfwd>
#include <string>

#include "simnet/trace.hpp"

namespace mrl::simnet {

/// CSV: src,dst,bytes,kind,epoch,t_issue_us,t_arrival_us.
void export_trace_csv(const Trace& trace, std::ostream& os);
bool export_trace_csv(const Trace& trace, const std::string& path);

/// Chrome tracing JSON ("traceEvents" array of complete events; pid 0,
/// tid = source rank, us timestamps).
void export_trace_chrome(const Trace& trace, std::ostream& os);
bool export_trace_chrome(const Trace& trace, const std::string& path);

}  // namespace mrl::simnet
