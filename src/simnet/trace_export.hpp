// Trace export: dump a communication trace as CSV or as Chrome tracing JSON
// (load in chrome://tracing or Perfetto — one row per rank, one slice per
// message from issue to arrival).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simnet/spans.hpp"
#include "simnet/time.hpp"
#include "simnet/trace.hpp"

namespace mrl::simnet {

/// CSV: src,dst,bytes,kind,epoch,t_issue_us,t_arrival_us.
void export_trace_csv(const Trace& trace, std::ostream& os);
bool export_trace_csv(const Trace& trace, const std::string& path);

/// Chrome tracing JSON ("traceEvents" array of complete events; pid 0,
/// tid = source rank, us timestamps).
void export_trace_chrome(const Trace& trace, std::ostream& os);
bool export_trace_chrome(const Trace& trace, const std::string& path);

/// Everything one completed run contributes to the profiler/exporters: the
/// message trace, the per-rank execution spans, per-rank end times, and the
/// directed-link display names (DESIGN.md §14). Copyable value type — the
/// process-wide ProfileCapture (runtime/profiler.hpp) snapshots one of these
/// per Engine::run.
struct RunCapture {
  int nranks = 0;
  TimeUs makespan_us = 0;
  std::vector<TimeUs> rank_end_us;
  RecordStore msgs;
  SpanStore spans;
  std::vector<std::string> dlink_names;  ///< indexed by directed link id
};

/// Combined Chrome/Perfetto trace of a captured run: pid 0 carries the
/// message slices (tid = source rank, exactly export_trace_chrome's shape),
/// pid 1 the per-rank execution timelines (tid = rank, one slice per span),
/// pid 2 counter tracks (per-directed-link in-flight messages and global
/// in-flight puts). `rank_lo`/`rank_hi` bound the slice output to a rank
/// range (--trace-ranks; rank_hi < 0 means "through the last rank");
/// counter tracks always cover the whole run.
void export_capture_chrome(const RunCapture& c, std::ostream& os,
                           int rank_lo = 0, int rank_hi = -1);
bool export_capture_chrome(const RunCapture& c, const std::string& path,
                           int rank_lo = 0, int rank_hi = -1);

/// Message-trace CSV of a captured run — exactly export_trace_csv's columns
/// and cell bytes, filtered to source ranks in [rank_lo, rank_hi].
void export_trace_csv(const RunCapture& c, std::ostream& os, int rank_lo = 0,
                      int rank_hi = -1);
bool export_trace_csv(const RunCapture& c, const std::string& path,
                      int rank_lo = 0, int rank_hi = -1);

/// Execution-span CSV (rank,kind,t_begin_us,t_end_us,peer,cause_t_us,
/// cause_nspans,bytes,gate,q_us,s_us), rank-range filtered like the Chrome
/// export.
void export_spans_csv(const RunCapture& c, std::ostream& os, int rank_lo = 0,
                      int rank_hi = -1);
bool export_spans_csv(const RunCapture& c, const std::string& path,
                      int rank_lo = 0, int rank_hi = -1);

}  // namespace mrl::simnet
