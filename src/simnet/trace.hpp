// Communication trace: every message the runtime moves, with issue/arrival
// times and the synchronization epoch it belongs to. The Message Roofline
// workload dots (Fig 6) and the latency-vs-msg/sync analysis (Fig 7) are
// computed from these records.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "simnet/time.hpp"
#include "util/arena.hpp"

namespace mrl::simnet {

enum class OpKind : std::uint8_t {
  kSend,        ///< two-sided message
  kPut,         ///< one-sided put (data)
  kPutSignal,   ///< fused put-with-signal (SHMEM)
  kSignal,      ///< one-sided put carrying only a signal word
  kAtomic,      ///< CAS / fetch-op round trip
  kCollective,  ///< barrier/reduction constituent
};

std::string to_string(OpKind k);

struct MsgRecord {
  std::int32_t src_rank = -1;
  std::int32_t dst_rank = -1;
  std::uint64_t bytes = 0;
  TimeUs t_issue = 0;    ///< virtual time the operation was issued
  TimeUs t_arrival = 0;  ///< virtual time the payload landed at dst
  OpKind kind = OpKind::kSend;
  std::uint64_t epoch = 0;  ///< sender-side synchronization epoch
  std::int32_t drops = 0;   ///< fault-injected transmission drops (retransmitted)
  // Cost decomposition of (t_arrival - t_issue), filled by the fabric (see
  // TransferResult). Trailing fields with defaults: existing positional
  // brace-init call sites and the CSV exporter are unaffected.
  double q_us = 0;           ///< head-of-line + injector + retransmit waits
  double s_us = 0;           ///< bandwidth serialization (incl. re-sends)
  std::int32_t dlink = -1;   ///< dominant directed link (-1: same-endpoint)
};

/// Aggregate view of a trace used by the roofline overlays.
struct TraceSummary {
  std::uint64_t num_msgs = 0;
  std::uint64_t num_epochs = 0;
  double total_bytes = 0;
  double avg_msg_bytes = 0;
  double avg_msgs_per_sync = 0;   ///< messages / sender epochs
  double avg_latency_us = 0;      ///< mean (arrival - issue)
  double min_msg_bytes = 0;
  double max_msg_bytes = 0;
  double span_us = 0;             ///< last arrival - first issue
  double sustained_gbs = 0;       ///< total bytes / span
  std::uint64_t total_drops = 0;  ///< fault-injected drops across messages
};

/// Chunked append-only record storage. A single doubling vector holding 8M
/// records (a 1M-rank stencil step) momentarily keeps ~1.5x the trace live
/// during the realloc and copies hundreds of MB; fixed 64Ki-record chunks
/// cap the growth spike at one chunk (~3 MiB) and never move old records.
/// Indexing is two shifts, and clear() keeps the chunks for the next run.
/// Templated so the profiler's per-rank execution spans (DESIGN.md §14)
/// share the same storage discipline as message records.
template <typename T>
class ChunkedStore {
 public:
  static constexpr std::size_t kChunkShift = 16;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  ChunkedStore() = default;
  ChunkedStore(ChunkedStore&&) = default;
  ChunkedStore& operator=(ChunkedStore&&) = default;
  ChunkedStore(const ChunkedStore& o) { *this = o; }
  ChunkedStore& operator=(const ChunkedStore& o) {
    if (this == &o) return *this;
    chunks_.clear();
    chunks_.reserve(o.chunks_.size());
    for (const auto& c : o.chunks_) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
      std::copy(c.get(), c.get() + kChunkSize, chunks_.back().get());
    }
    size_ = o.size_;
    return *this;
  }

  void push_back(const T& r) {
    if ((size_ >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    chunks_[size_ >> kChunkShift][size_ & kChunkMask] = r;
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }  // chunks stay allocated for the next run

  [[nodiscard]] const T& operator[](std::size_t i) const {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const ChunkedStore* s, std::size_t i) : store_(s), i_(i) {}
    reference operator*() const { return (*store_)[i_]; }
    pointer operator->() const { return &(*store_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++i_;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const ChunkedStore* store_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

using RecordStore = ChunkedStore<MsgRecord>;

/// Append-only trace. The engine serializes all recording, so no locking.
class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const MsgRecord& rec) {
    if (enabled_) records_.push_back(rec);
  }
  void clear() { records_.clear(); }

  [[nodiscard]] const RecordStore& records() const { return records_; }

  [[nodiscard]] TraceSummary summarize() const;

  /// Summary restricted to one op kind.
  [[nodiscard]] TraceSummary summarize(OpKind kind) const;

 private:
  bool enabled_ = false;
  RecordStore records_;
  /// Scratch for the (sender, epoch) pairs built while summarizing; reused
  /// across calls instead of allocating a node-based set per summary.
  mutable util::Arena scratch_;
};

}  // namespace mrl::simnet
