// Communication trace: every message the runtime moves, with issue/arrival
// times and the synchronization epoch it belongs to. The Message Roofline
// workload dots (Fig 6) and the latency-vs-msg/sync analysis (Fig 7) are
// computed from these records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/time.hpp"
#include "util/arena.hpp"

namespace mrl::simnet {

enum class OpKind : std::uint8_t {
  kSend,        ///< two-sided message
  kPut,         ///< one-sided put (data)
  kPutSignal,   ///< fused put-with-signal (SHMEM)
  kSignal,      ///< one-sided put carrying only a signal word
  kAtomic,      ///< CAS / fetch-op round trip
  kCollective,  ///< barrier/reduction constituent
};

std::string to_string(OpKind k);

struct MsgRecord {
  std::int32_t src_rank = -1;
  std::int32_t dst_rank = -1;
  std::uint64_t bytes = 0;
  TimeUs t_issue = 0;    ///< virtual time the operation was issued
  TimeUs t_arrival = 0;  ///< virtual time the payload landed at dst
  OpKind kind = OpKind::kSend;
  std::uint64_t epoch = 0;  ///< sender-side synchronization epoch
  std::int32_t drops = 0;   ///< fault-injected transmission drops (retransmitted)
};

/// Aggregate view of a trace used by the roofline overlays.
struct TraceSummary {
  std::uint64_t num_msgs = 0;
  std::uint64_t num_epochs = 0;
  double total_bytes = 0;
  double avg_msg_bytes = 0;
  double avg_msgs_per_sync = 0;   ///< messages / sender epochs
  double avg_latency_us = 0;      ///< mean (arrival - issue)
  double min_msg_bytes = 0;
  double max_msg_bytes = 0;
  double span_us = 0;             ///< last arrival - first issue
  double sustained_gbs = 0;       ///< total bytes / span
  std::uint64_t total_drops = 0;  ///< fault-injected drops across messages
};

/// Append-only trace. The engine serializes all recording, so no locking.
class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const MsgRecord& rec) {
    if (enabled_) records_.push_back(rec);
  }
  void clear() { records_.clear(); }

  [[nodiscard]] const std::vector<MsgRecord>& records() const {
    return records_;
  }

  [[nodiscard]] TraceSummary summarize() const;

  /// Summary restricted to one op kind.
  [[nodiscard]] TraceSummary summarize(OpKind kind) const;

 private:
  bool enabled_ = false;
  std::vector<MsgRecord> records_;
  /// Scratch for the (sender, epoch) pairs built while summarizing; reused
  /// across calls instead of allocating a node-based set per summary.
  mutable util::Arena scratch_;
};

}  // namespace mrl::simnet
