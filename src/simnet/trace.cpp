#include "simnet/trace.hpp"

#include <algorithm>
#include <utility>

#include "util/units.hpp"

namespace mrl::simnet {

std::string to_string(OpKind k) {
  switch (k) {
    case OpKind::kSend: return "send";
    case OpKind::kPut: return "put";
    case OpKind::kPutSignal: return "put_signal";
    case OpKind::kSignal: return "signal";
    case OpKind::kAtomic: return "atomic";
    case OpKind::kCollective: return "collective";
  }
  return "unknown";
}

namespace {
// One pass over the records in recorded order — the floating-point
// accumulation order is exactly the order the old ref-vector walk used, so
// the summary values are bit-identical. Distinct (sender, epoch) pairs are
// counted with a sort+unique over an arena scratch array instead of a
// node-per-element std::set.
template <typename Pred>
TraceSummary summarize_filtered(const RecordStore& records,
                                util::Arena& scratch, Pred pred) {
  TraceSummary s;
  scratch.reset();
  using Epoch = std::pair<std::int32_t, std::uint64_t>;  // (sender, epoch)
  Epoch* epochs = scratch.alloc_array<Epoch>(records.size());
  std::size_t ne = 0;
  double first_issue = 0;
  double last_arrival = 0;
  double lat_sum = 0;
  for (const MsgRecord& r : records) {
    if (!pred(r)) continue;
    if (s.num_msgs == 0) {
      first_issue = r.t_issue;
      last_arrival = r.t_arrival;
      s.min_msg_bytes = static_cast<double>(r.bytes);
      s.max_msg_bytes = s.min_msg_bytes;
    }
    ++s.num_msgs;
    s.total_bytes += static_cast<double>(r.bytes);
    lat_sum += r.t_arrival - r.t_issue;
    first_issue = std::min(first_issue, r.t_issue);
    last_arrival = std::max(last_arrival, r.t_arrival);
    s.min_msg_bytes = std::min(s.min_msg_bytes, static_cast<double>(r.bytes));
    s.max_msg_bytes = std::max(s.max_msg_bytes, static_cast<double>(r.bytes));
    s.total_drops += static_cast<std::uint64_t>(r.drops);
    epochs[ne++] = Epoch{r.src_rank, r.epoch};
  }
  if (s.num_msgs == 0) return s;
  std::sort(epochs, epochs + ne);
  s.num_epochs =
      static_cast<std::uint64_t>(std::unique(epochs, epochs + ne) - epochs);
  s.avg_msg_bytes = s.total_bytes / static_cast<double>(s.num_msgs);
  s.avg_msgs_per_sync =
      static_cast<double>(s.num_msgs) / static_cast<double>(s.num_epochs);
  s.avg_latency_us = lat_sum / static_cast<double>(s.num_msgs);
  s.span_us = last_arrival - first_issue;
  s.sustained_gbs =
      s.span_us > 0 ? bytes_per_us_to_gbs(s.total_bytes, s.span_us) : 0.0;
  return s;
}
}  // namespace

TraceSummary Trace::summarize() const {
  return summarize_filtered(records_, scratch_,
                            [](const MsgRecord&) { return true; });
}

TraceSummary Trace::summarize(OpKind kind) const {
  return summarize_filtered(records_, scratch_,
                            [kind](const MsgRecord& r) { return r.kind == kind; });
}

}  // namespace mrl::simnet
