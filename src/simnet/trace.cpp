#include "simnet/trace.hpp"

#include <algorithm>
#include <set>

#include "util/units.hpp"

namespace mrl::simnet {

std::string to_string(OpKind k) {
  switch (k) {
    case OpKind::kSend: return "send";
    case OpKind::kPut: return "put";
    case OpKind::kPutSignal: return "put_signal";
    case OpKind::kSignal: return "signal";
    case OpKind::kAtomic: return "atomic";
    case OpKind::kCollective: return "collective";
  }
  return "unknown";
}

namespace {
TraceSummary summarize_records(const std::vector<const MsgRecord*>& recs) {
  TraceSummary s;
  if (recs.empty()) return s;
  s.num_msgs = recs.size();
  double first_issue = recs.front()->t_issue;
  double last_arrival = recs.front()->t_arrival;
  double lat_sum = 0;
  s.min_msg_bytes = static_cast<double>(recs.front()->bytes);
  s.max_msg_bytes = s.min_msg_bytes;
  std::set<std::pair<std::int32_t, std::uint64_t>> epochs;  // (sender, epoch)
  for (const MsgRecord* r : recs) {
    s.total_bytes += static_cast<double>(r->bytes);
    lat_sum += r->t_arrival - r->t_issue;
    first_issue = std::min(first_issue, r->t_issue);
    last_arrival = std::max(last_arrival, r->t_arrival);
    s.min_msg_bytes = std::min(s.min_msg_bytes, static_cast<double>(r->bytes));
    s.max_msg_bytes = std::max(s.max_msg_bytes, static_cast<double>(r->bytes));
    s.total_drops += static_cast<std::uint64_t>(r->drops);
    epochs.insert({r->src_rank, r->epoch});
  }
  s.num_epochs = epochs.size();
  s.avg_msg_bytes = s.total_bytes / static_cast<double>(s.num_msgs);
  s.avg_msgs_per_sync =
      static_cast<double>(s.num_msgs) / static_cast<double>(s.num_epochs);
  s.avg_latency_us = lat_sum / static_cast<double>(s.num_msgs);
  s.span_us = last_arrival - first_issue;
  s.sustained_gbs =
      s.span_us > 0 ? bytes_per_us_to_gbs(s.total_bytes, s.span_us) : 0.0;
  return s;
}
}  // namespace

TraceSummary Trace::summarize() const {
  std::vector<const MsgRecord*> refs;
  refs.reserve(records_.size());
  for (const auto& r : records_) refs.push_back(&r);
  return summarize_records(refs);
}

TraceSummary Trace::summarize(OpKind kind) const {
  std::vector<const MsgRecord*> refs;
  for (const auto& r : records_)
    if (r.kind == kind) refs.push_back(&r);
  return summarize_records(refs);
}

}  // namespace mrl::simnet
