#include "simnet/trace_export.hpp"

#include <fstream>
#include <ostream>

#include "util/csv.hpp"
#include "util/log.hpp"

namespace mrl::simnet {

void export_trace_csv(const Trace& trace, std::ostream& os) {
  CsvWriter w(os);
  w.header({"src", "dst", "bytes", "kind", "epoch", "t_issue_us",
            "t_arrival_us", "drops"});
  for (const MsgRecord& r : trace.records()) {
    w.row({std::to_string(r.src_rank), std::to_string(r.dst_rank),
           std::to_string(r.bytes), to_string(r.kind),
           std::to_string(r.epoch), std::to_string(r.t_issue),
           std::to_string(r.t_arrival), std::to_string(r.drops)});
  }
}

bool export_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_trace_csv(trace, f);
  return f.good();
}

void export_trace_chrome(const Trace& trace, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const MsgRecord& r : trace.records()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << to_string(r.kind) << " " << r.bytes << "B -> r"
       << r.dst_rank << "\",\"cat\":\"" << to_string(r.kind)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r.src_rank
       << ",\"ts\":" << r.t_issue
       << ",\"dur\":" << (r.t_arrival - r.t_issue)
       << ",\"args\":{\"bytes\":" << r.bytes << ",\"epoch\":" << r.epoch
       << ",\"dst\":" << r.dst_rank << ",\"drops\":" << r.drops << "}}";
  }
  os << "]}";
}

bool export_trace_chrome(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_trace_chrome(trace, f);
  return f.good();
}

}  // namespace mrl::simnet
