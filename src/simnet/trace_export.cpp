#include "simnet/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>

#include "util/csv.hpp"
#include "util/log.hpp"

namespace mrl::simnet {

void export_trace_csv(const Trace& trace, std::ostream& os) {
  CsvWriter w(os);
  w.header({"src", "dst", "bytes", "kind", "epoch", "t_issue_us",
            "t_arrival_us", "drops"});
  for (const MsgRecord& r : trace.records()) {
    w.row({std::to_string(r.src_rank), std::to_string(r.dst_rank),
           std::to_string(r.bytes), to_string(r.kind),
           std::to_string(r.epoch), std::to_string(r.t_issue),
           std::to_string(r.t_arrival), std::to_string(r.drops)});
  }
}

bool export_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_trace_csv(trace, f);
  return f.good();
}

void export_trace_chrome(const Trace& trace, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const MsgRecord& r : trace.records()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << to_string(r.kind) << " " << r.bytes << "B -> r"
       << r.dst_rank << "\",\"cat\":\"" << to_string(r.kind)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r.src_rank
       << ",\"ts\":" << r.t_issue
       << ",\"dur\":" << (r.t_arrival - r.t_issue)
       << ",\"args\":{\"bytes\":" << r.bytes << ",\"epoch\":" << r.epoch
       << ",\"dst\":" << r.dst_rank << ",\"drops\":" << r.drops << "}}";
  }
  os << "]}";
}

bool export_trace_chrome(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_trace_chrome(trace, f);
  return f.good();
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      os << ' ';
    } else {
      os << ch;
    }
  }
}

/// One +1/-1 edge of a counter series, ordered by (time, sequence) so the
/// emitted absolute values are independent of how the edges were generated.
struct CounterEdge {
  TimeUs t = 0;
  std::int64_t seq = 0;
  int delta = 0;
};

void emit_counter(std::ostream& os, bool& first, const char* name, int tid,
                  std::vector<CounterEdge>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const CounterEdge& a, const CounterEdge& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.seq < b.seq;
            });
  std::int64_t v = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    v += edges[i].delta;
    // Collapse same-timestamp edges into one final value.
    if (i + 1 < edges.size() && edges[i + 1].t == edges[i].t) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, name);
    os << "\",\"ph\":\"C\",\"pid\":2,\"tid\":" << tid
       << ",\"ts\":" << edges[i].t << ",\"args\":{\"v\":" << v << "}}";
  }
}

}  // namespace

void export_capture_chrome(const RunCapture& c, std::ostream& os, int rank_lo,
                           int rank_hi) {
  if (rank_hi < 0) rank_hi = c.nranks - 1;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto meta = [&](int pid, const char* name) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << name << "\"}}";
  };
  meta(0, "messages");
  meta(1, "ranks");
  meta(2, "counters");
  // pid 0: message slices (same shape as export_trace_chrome).
  for (const MsgRecord& r : c.msgs) {
    if (r.src_rank < rank_lo || r.src_rank > rank_hi) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << to_string(r.kind) << " " << r.bytes << "B -> r"
       << r.dst_rank << "\",\"cat\":\"" << to_string(r.kind)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r.src_rank
       << ",\"ts\":" << r.t_issue << ",\"dur\":" << (r.t_arrival - r.t_issue)
       << ",\"args\":{\"bytes\":" << r.bytes << ",\"epoch\":" << r.epoch
       << ",\"dst\":" << r.dst_rank << ",\"drops\":" << r.drops << "}}";
  }
  // pid 1: per-rank execution timelines.
  for (const SpanRecord& s : c.spans) {
    if (s.rank < rank_lo || s.rank > rank_hi) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << to_string(s.kind) << "\",\"cat\":\"span\""
       << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.rank
       << ",\"ts\":" << s.t_begin << ",\"dur\":" << (s.t_end - s.t_begin)
       << ",\"args\":{\"peer\":" << s.peer << ",\"bytes\":" << s.bytes
       << ",\"gate\":" << s.gate << ",\"cause_t\":" << s.cause_t
       << ",\"q\":" << s.q_us << ",\"s\":" << s.s_us << "}}";
  }
  // pid 2: counter tracks — per-directed-link in-flight messages and the
  // global in-flight one-sided put count. Edges at issue/arrival; always
  // unfiltered so the counters describe the whole run.
  std::vector<std::vector<CounterEdge>> per_dlink;
  std::vector<CounterEdge> puts;
  std::int64_t seq = 0;
  for (const MsgRecord& r : c.msgs) {
    if (r.dlink >= 0) {
      if (static_cast<std::size_t>(r.dlink) >= per_dlink.size()) {
        per_dlink.resize(static_cast<std::size_t>(r.dlink) + 1);
      }
      auto& e = per_dlink[static_cast<std::size_t>(r.dlink)];
      e.push_back({r.t_issue, seq, +1});
      e.push_back({r.t_arrival, seq, -1});
    }
    if (r.kind == OpKind::kPut || r.kind == OpKind::kPutSignal ||
        r.kind == OpKind::kSignal) {
      puts.push_back({r.t_issue, seq, +1});
      puts.push_back({r.t_arrival, seq, -1});
    }
    ++seq;
  }
  for (std::size_t d = 0; d < per_dlink.size(); ++d) {
    if (per_dlink[d].empty()) continue;
    const std::string name =
        d < c.dlink_names.size() ? c.dlink_names[d] + " in-flight"
                                 : "dlink " + std::to_string(d) + " in-flight";
    emit_counter(os, first, name.c_str(), static_cast<int>(d), per_dlink[d]);
  }
  if (!puts.empty()) {
    emit_counter(os, first, "in-flight puts",
                 static_cast<int>(per_dlink.size()), puts);
  }
  os << "]}";
}

bool export_capture_chrome(const RunCapture& c, const std::string& path,
                           int rank_lo, int rank_hi) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_capture_chrome(c, f, rank_lo, rank_hi);
  return f.good();
}

void export_trace_csv(const RunCapture& c, std::ostream& os, int rank_lo,
                      int rank_hi) {
  if (rank_hi < 0) rank_hi = c.nranks - 1;
  CsvWriter w(os);
  w.header({"src", "dst", "bytes", "kind", "epoch", "t_issue_us",
            "t_arrival_us", "drops"});
  for (const MsgRecord& r : c.msgs) {
    if (r.src_rank < rank_lo || r.src_rank > rank_hi) continue;
    w.row({std::to_string(r.src_rank), std::to_string(r.dst_rank),
           std::to_string(r.bytes), to_string(r.kind),
           std::to_string(r.epoch), std::to_string(r.t_issue),
           std::to_string(r.t_arrival), std::to_string(r.drops)});
  }
}

bool export_trace_csv(const RunCapture& c, const std::string& path,
                      int rank_lo, int rank_hi) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_trace_csv(c, f, rank_lo, rank_hi);
  return f.good();
}

void export_spans_csv(const RunCapture& c, std::ostream& os, int rank_lo,
                      int rank_hi) {
  if (rank_hi < 0) rank_hi = c.nranks - 1;
  CsvWriter w(os);
  w.header({"rank", "kind", "t_begin_us", "t_end_us", "peer", "cause_t_us",
            "cause_nspans", "bytes", "gate", "q_us", "s_us"});
  for (const SpanRecord& s : c.spans) {
    if (s.rank < rank_lo || s.rank > rank_hi) continue;
    w.row({std::to_string(s.rank), to_string(s.kind),
           std::to_string(s.t_begin), std::to_string(s.t_end),
           std::to_string(s.peer), std::to_string(s.cause_t),
           std::to_string(s.cause_nspans), std::to_string(s.bytes),
           std::to_string(s.gate), std::to_string(s.q_us),
           std::to_string(s.s_us)});
  }
}

bool export_spans_csv(const RunCapture& c, const std::string& path,
                      int rank_lo, int rank_hi) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open %s", path.c_str());
    return false;
  }
  export_spans_csv(c, f, rank_lo, rank_hi);
  return f.good();
}

}  // namespace mrl::simnet
