// Deterministic critical-path analyzer (DESIGN.md §14).
//
// Walks the dependency graph of a completed run backward from the
// last-finishing rank: message arrivals, collective releases, and gate
// satisfactions are edges (SpanRecord::peer/cause_t/cause_nspans), local
// execution is the fallback. Every virtual microsecond of the makespan is
// attributed to exactly one of five categories — compute, network latency,
// bandwidth serialization, queueing, synchronization wait — using integer
// picoseconds with telescoping interval boundaries, so the category totals
// sum EXACTLY to the final virtual time and the whole report is
// byte-identical across execution backends, schedulers, and --jobs values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/spans.hpp"
#include "simnet/time.hpp"
#include "simnet/trace.hpp"

namespace mrl::simnet {

struct CritPathInput {
  int nranks = 0;
  /// Message records (for flight q/s/latency splits and per-link
  /// attribution); may be null — recv segments then fall back to latency.
  const RecordStore* msgs = nullptr;
  const SpanStore* spans = nullptr;                  ///< required
  const std::vector<TimeUs>* rank_end_us = nullptr;  ///< required
  /// Display name per directed link id (optional).
  const std::vector<std::string>* dlink_names = nullptr;
};

struct CritPathReport {
  // Category totals in integer picoseconds (1 us = 1e6 pico). Their sum is
  // exactly makespan_pico.
  std::uint64_t compute_pico = 0;
  std::uint64_t latency_pico = 0;
  std::uint64_t ser_pico = 0;
  std::uint64_t queue_pico = 0;
  std::uint64_t sync_pico = 0;
  std::uint64_t makespan_pico = 0;
  int end_rank = -1;        ///< last-finishing rank the walk starts from
  std::uint64_t steps = 0;  ///< path nodes visited
  bool truncated = false;   ///< step-cap backstop hit (remainder -> compute)
  std::string text;         ///< full fixed-format human-readable report

  [[nodiscard]] std::uint64_t total_pico() const {
    return compute_pico + latency_pico + ser_pico + queue_pico + sync_pico;
  }
};

/// Pure function of its deterministic inputs; safe to call from any thread.
CritPathReport analyze_critical_path(const CritPathInput& in);

}  // namespace mrl::simnet
