// Platform registry: the machines of the paper's Table I, as topology graphs
// plus calibrated LogGP parameter sets per communication runtime.
//
// Calibration sources (all from the paper text):
//   Perlmutter CPU — IF CPU-CPU achieved ~32 GB/s on node; two-sided latency
//     lines 5 us -> 0.3 us; SpTRSV sync: two-sided 3.3 us (1 op), one-sided
//     5 us (4 ops); one-sided ~20% lower per-op latency.
//   Frontier CPU — IF bound 36 GB/s; NIC path IF -> PCIe4 ESM (50 GB/s).
//   Summit CPU — X-Bus peak 64 GB/s but ~25 GB/s achieved (we model the
//     achieved rate); Spectrum MPI one-sided consistently SLOWER than
//     two-sided; two-sided latency ~3 us.
//   Perlmutter GPU — NVLink3 100 GB/s/dir per pair (4 ports x 25);
//     put latency 4 us -> 0.5 us; CAS 0.8 us.
//   Summit GPU — dual-island dumbbell; NVLink2 50 GB/s/dir intra-island
//     (2 ports x 25), 32 GB/s across sockets; put latency ~5 us; CAS 1.0 us
//     intra-socket / 1.6 us cross-socket.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/loggp.hpp"
#include "simnet/topology.hpp"

namespace mrl::simnet {

/// Per-rank compute cost parameters (used by workloads to charge compute
/// virtual time).
struct ComputeModel {
  double membw_gbs = 3.2;     ///< streaming memory bandwidth per rank
  double flops_per_us = 3e3;  ///< scalar FLOP rate per rank (MFLOP/s / 1e0)
  int lanes = 1;              ///< concurrent compute lanes (GPU thread blocks)
};

/// Table I row metadata (for the tab01 reproduction).
struct PlatformInfo {
  std::string gpus_per_node = "-";
  std::string gpu_interconnect = "-";
  std::string gpu_runtime = "-";
  std::string gpu_cpu_interconnect = "-";
  std::string cpus = "-";
  std::string cpu_cpu_interconnect = "-";
  std::string cpu_runtime = "-";
  std::string cpu_nic_interconnect = "-";
};

/// A machine: immutable topology + parameters. Cheap to copy (topology is
/// shared).
class Platform {
 public:
  /// Perlmutter CPU partition: 2x AMD Milan per node, IF CPU-CPU, CrayMPI.
  static Platform perlmutter_cpu(int nodes = 1);
  /// Frontier CPU: 1x Milan (4 NUMA quadrants over on-die IF), CrayMPI.
  static Platform frontier_cpu(int nodes = 1);
  /// Summit CPU: 2x POWER9 over X-Bus, Spectrum MPI (one-sided is slow).
  static Platform summit_cpu(int nodes = 1);
  /// Perlmutter GPU: 4x A100 fully connected by NVLink3, NVSHMEM-style.
  static Platform perlmutter_gpu();
  /// Summit GPU: 6x V100 in the dual-island dumbbell topology, NVSHMEM-style.
  static Platform summit_gpu();
  /// Frontier GPU: 4x MI250X (8 GCDs) over Infinity Fabric, ROC_SHMEM-style.
  /// The paper could NOT run this configuration (ROC_SHMEM lacked
  /// wait_until_any); parameters are projections from public MI250X specs,
  /// provided for the paper's stated future work.
  static Platform frontier_gpu();

  /// All registry platforms, in Table I order.
  static std::vector<Platform> all();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] std::shared_ptr<const Topology> topology_ptr() const {
    return topo_;
  }
  [[nodiscard]] RouteMode route_mode() const { return route_mode_; }
  void set_route_mode(RouteMode m) { route_mode_ = m; }

  /// Fault-injection spec baked into fabrics built by make_fabric(). The
  /// default (empty) spec keeps the fabric bit-identical to a fault-free
  /// build.
  [[nodiscard]] const FaultSpec& faults() const { return faults_; }
  void set_faults(const FaultSpec& f) { faults_ = f; }

  [[nodiscard]] const LogGP& params(Runtime r) const;
  [[nodiscard]] LogGP& mutable_params(Runtime r);

  [[nodiscard]] const ComputeModel& compute() const { return compute_; }
  [[nodiscard]] ComputeModel& mutable_compute() { return compute_; }

  [[nodiscard]] double local_bw_gbs() const { return local_bw_gbs_; }
  [[nodiscard]] double local_latency_us() const { return local_latency_us_; }

  /// Rate at which one rank can source message bytes (0 = unlimited). A CPU
  /// core streams at roughly the on-node fabric rate, so a single rank pair
  /// achieves ~one lane of bandwidth; GPU PEs drive all NVLink ports at once.
  [[nodiscard]] double rank_pump_gbs() const { return rank_pump_gbs_; }

  [[nodiscard]] bool is_gpu() const { return is_gpu_; }
  [[nodiscard]] const PlatformInfo& info() const { return info_; }

  /// Maximum number of ranks this platform can host.
  [[nodiscard]] int max_ranks() const { return max_ranks_; }

  /// Endpoint hosting rank `rank` out of `nranks` total. GPU platforms map
  /// one rank per GPU in device order (so Summit rank 3 is the first GPU on
  /// the second island); CPU platforms block-distribute across sockets.
  [[nodiscard]] int endpoint_of_rank(int rank, int nranks) const;

  /// Hardware round-trip latency between the endpoints hosting two ranks
  /// (used for atomics, which bypass the software put path).
  [[nodiscard]] double hw_rtt_us(int rank_a, int rank_b, int nranks) const;

  /// Peak single-pair bandwidth between ranks 0 and nranks-1 (the roofline
  /// ceiling for pairwise sweeps).
  [[nodiscard]] double pair_peak_gbs(int rank_a, int rank_b, int nranks) const;

  /// Builds a fresh fabric over this platform's topology.
  [[nodiscard]] std::unique_ptr<Fabric> make_fabric() const;

 private:
  Platform() = default;

  std::string name_;
  std::shared_ptr<const Topology> topo_;
  RouteMode route_mode_ = RouteMode::kCutThrough;
  std::vector<int> compute_eps_;
  int ranks_per_ep_ = 1;
  int max_ranks_ = 1;
  bool is_gpu_ = false;
  LogGP two_sided_, one_sided_, shmem_;
  ComputeModel compute_;
  double local_bw_gbs_ = 20.0;
  double local_latency_us_ = 0.3;
  double rank_pump_gbs_ = 0.0;
  FaultSpec faults_;
  PlatformInfo info_;
};

}  // namespace mrl::simnet
