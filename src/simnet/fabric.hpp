// The fabric: computes when a message injected at a source endpoint becomes
// visible at a destination endpoint, charging LogGP injection gaps, per-lane
// link serialization, hop latencies, and the runtime's software latency.
//
// Two routing cost modes (an ablation in the paper's spirit):
//   kCutThrough    — the head moves hop by hop (paying contention + hop
//                    latency), the body streams at the bottleneck lane rate.
//   kStoreForward  — the full message is serialized onto every hop in turn.
//
// The engine guarantees transfer() calls arrive in nondecreasing virtual-time
// order, which makes lane contention causally correct and deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/fault.hpp"
#include "simnet/loggp.hpp"
#include "simnet/time.hpp"
#include "simnet/topology.hpp"
#include "util/arena.hpp"

namespace mrl::simnet {

enum class RouteMode { kCutThrough, kStoreForward };

/// One message handed to the fabric.
struct TransferParams {
  int src_ep = 0;            ///< source endpoint id
  int dst_ep = 0;            ///< destination endpoint id
  int src_rank = 0;          ///< issuing rank (per-rank injection pump)
  std::uint64_t bytes = 0;   ///< payload size
  TimeUs start_us = 0;       ///< virtual time the NIC gets the message
  double sw_latency_us = 0;  ///< runtime software latency (LogGP L share)
  double inj_gap_us = 0;     ///< LogGP g charged at the source injector
  double per_stream_gbs = 0; ///< optional per-stream bandwidth cap (0 = none)
  /// Rate at which the issuing rank can source bytes (0 = unlimited). A CPU
  /// core streams at its memory bandwidth, so one rank cannot drive multiple
  /// link lanes concurrently; GPU PEs have parallel DMA engines (0).
  double pump_gbs = 0;
};

struct TransferResult {
  TimeUs inject_free_us = 0;  ///< when the source may inject the next message
  TimeUs arrival_us = 0;      ///< when the last byte is visible at dst
  int drops = 0;              ///< fault-injected transmission drops (charged)
  // Decomposition of (arrival_us - start_us) for the profiler/critical-path
  // analyzer (DESIGN.md §14). The remainder after queue + serialization is
  // pure latency (hop + software + fault extra-latency).
  double queue_us = 0;      ///< injector + head-of-line + retransmit waits
  double ser_us = 0;        ///< bandwidth serialization (incl. re-sends)
  std::int32_t dlink = -1;  ///< dominant directed link (-1: same-endpoint)
};

/// Fault perturbation for an analytic (non-transfer) round trip, e.g. the
/// get/atomic request-response paths that bypass transfer().
struct RoundTripFault {
  double extra_us = 0;  ///< jitter/outage/retransmit time charged at origin
  int drops = 0;        ///< dropped attempts (input to backoff accounting)
};

/// Per-endpoint/per-link mutable state plus the transfer cost function.
class Fabric {
 public:
  /// `local_bw_gbs`/`local_latency_us` cost same-endpoint transfers (ranks
  /// sharing a socket communicate through shared memory). `faults` perturbs
  /// link traversals; the default (empty) spec is a strict no-op.
  Fabric(const Topology* topo, RouteMode mode, double local_bw_gbs,
         double local_latency_us, const FaultSpec& faults = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Cost one message. Mutates injector and lane contention state.
  TransferResult transfer(const TransferParams& p);

  /// Samples fault perturbations along the src->dst->src round trip at
  /// virtual time `now_us` for operations costed analytically (gets,
  /// atomics). Returns zeros — consuming no fault state — when faults are
  /// disabled or the endpoints coincide.
  RoundTripFault sample_round_trip(int src_ep, int dst_ep, TimeUs now_us);

  /// Clears all contention state (between repetitions of an experiment),
  /// including fault-injection ordinals.
  void reset();

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] RouteMode mode() const { return mode_; }
  [[nodiscard]] const FaultModel& faults() const { return fault_; }

  /// Total bytes moved and per-link busy time since construction/reset.
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_msgs() const { return total_msgs_; }
  [[nodiscard]] double link_busy_us(int link_id, int dir) const;
  /// Head-of-line lane-wait time and message count per directed link.
  [[nodiscard]] double link_queue_us(int link_id, int dir) const;
  [[nodiscard]] std::uint64_t link_msgs(int link_id, int dir) const;

 private:
  const Topology* topo_;
  RouteMode mode_;
  double local_bw_gbs_;
  double local_latency_us_;
  SerCost local_ser_;                       // pre-derived shared-memory rate
  std::vector<TimeUs> injector_free_;       // per source rank (grown on use)
  std::vector<LinkState> dlink_state_;      // per directed link (2 per link)
  FaultModel fault_;                        // seeded fault perturbations
  util::Arena scratch_;                     // per-transfer claim records
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_msgs_ = 0;
};

}  // namespace mrl::simnet
