#include "simnet/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace mrl::simnet {

namespace {
// Salt separating the straggler substream family from the per-hop family.
constexpr std::uint64_t kStragglerSalt = 0x57A661E5ULL;
}  // namespace

FaultSpec FaultSpec::at_intensity(double intensity, std::uint64_t seed) {
  MRL_CHECK(intensity >= 0.0);
  FaultSpec f;
  f.seed = seed;
  if (intensity <= 0) return f;  // pristine
  const double s = std::min(intensity, 1.0);
  f.latency_jitter_us = 2.0 * s;
  f.bw_degrade_frac = 0.5 * s;
  f.bw_degrade_period_us = 500.0;
  f.bw_degrade_duty = 0.3;
  f.outage_prob = 0.01 * s;
  f.outage_us = 25.0;
  f.drop_prob = 0.02 * s;
  f.retransmit_timeout_us = 20.0;
  f.max_retransmits = 8;
  f.backoff_base_us = 1.0;
  f.backoff_cap_us = 200.0;
  f.straggler_prob = 0.25 * s;
  f.straggler_factor = 1.0 + 0.5 * s;
  return f;
}

FaultModel::FaultModel(const FaultSpec& spec, int num_dlinks)
    : spec_(spec), enabled_(spec.enabled()) {
  MRL_CHECK(num_dlinks >= 0);
  MRL_CHECK(spec_.bw_degrade_frac >= 0 && spec_.bw_degrade_frac < 1.0);
  MRL_CHECK(spec_.drop_prob >= 0 && spec_.drop_prob < 1.0);
  MRL_CHECK(spec_.outage_prob >= 0 && spec_.outage_prob <= 1.0);
  MRL_CHECK(spec_.straggler_factor >= 1.0);
  MRL_CHECK(spec_.max_retransmits >= 0);
  ordinal_.assign(static_cast<std::size_t>(num_dlinks), 0);
}

FaultModel::HopFault FaultModel::next_hop_fault(int dlink, TimeUs head_us) {
  HopFault hf;
  if (!enabled_) return hf;
  MRL_CHECK(dlink >= 0 &&
            static_cast<std::size_t>(dlink) < ordinal_.size());
  const std::uint64_t ord = ordinal_[static_cast<std::size_t>(dlink)]++;
  // One independent substream per (seed, link, message ordinal): the draw
  // order below is fixed, so a given message sees the same perturbation no
  // matter which worker/engine simulates it.
  Xoshiro256 g = Xoshiro256::for_stream(
      spec_.seed, ((static_cast<std::uint64_t>(dlink) + 1) << 40) + ord);
  if (spec_.latency_jitter_us > 0) {
    hf.extra_latency_us += g.uniform_real(0.0, spec_.latency_jitter_us);
  }
  if (spec_.outage_prob > 0 && g.bernoulli(spec_.outage_prob)) {
    hf.extra_latency_us += spec_.outage_us;
  }
  if (spec_.bw_degrade_frac > 0 && spec_.bw_degrade_duty > 0 &&
      spec_.bw_degrade_period_us > 0) {
    // Square-wave degradation in virtual time; each link's window phase is a
    // fixed function of (seed, link) so the wave itself is deterministic.
    SplitMix64 sm(spec_.seed ^ (0xD06F00DULL + static_cast<std::uint64_t>(dlink)));
    const double phase = static_cast<double>(sm.next() >> 11) * 0x1.0p-53 *
                         spec_.bw_degrade_period_us;
    const double pos =
        std::fmod(std::max(head_us, 0.0) + phase, spec_.bw_degrade_period_us);
    if (pos < spec_.bw_degrade_duty * spec_.bw_degrade_period_us) {
      hf.bw_scale = 1.0 - spec_.bw_degrade_frac;
    }
  }
  if (spec_.drop_prob > 0) {
    while (hf.drops < spec_.max_retransmits && g.bernoulli(spec_.drop_prob)) {
      ++hf.drops;
    }
  }
  return hf;
}

double FaultModel::backoff_us(int drops) const {
  if (drops <= 0 || spec_.backoff_base_us <= 0) return 0.0;
  double total = 0;
  double step = spec_.backoff_base_us;
  for (int i = 0; i < drops; ++i) {
    total += std::min(step, spec_.backoff_cap_us);
    step *= 2.0;
  }
  return total;
}

double FaultModel::straggler_scale(int rank) const {
  if (!enabled_ || spec_.straggler_prob <= 0) return 1.0;
  Xoshiro256 g = Xoshiro256::for_stream(spec_.seed ^ kStragglerSalt,
                                        static_cast<std::uint64_t>(rank));
  return g.bernoulli(spec_.straggler_prob) ? spec_.straggler_factor : 1.0;
}

void FaultModel::reset() {
  std::fill(ordinal_.begin(), ordinal_.end(), 0ULL);
}

}  // namespace mrl::simnet
