#include "simnet/loggp.hpp"

#include <cstdio>

namespace mrl::simnet {

std::string LogGP::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "LogGP{L=%.3fus o=%.3fus g=%.3fus per_stream=%.1fGB/s}", L_us,
                o_us, g_us, per_stream_gbs);
  return buf;
}

std::string to_string(Runtime r) {
  switch (r) {
    case Runtime::kTwoSidedMpi: return "two-sided MPI";
    case Runtime::kOneSidedMpi: return "one-sided MPI";
    case Runtime::kShmem: return "SHMEM (put-with-signal)";
  }
  return "unknown";
}

}  // namespace mrl::simnet
