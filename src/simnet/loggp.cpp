#include "simnet/loggp.hpp"

#include <cstdio>

#include "util/units.hpp"

namespace mrl::simnet {

SerCost::SerCost(double gbs)
    : gbs_(gbs), us_per_byte_(gbs > 0 ? gbs_to_us_per_byte(gbs) : 0.0) {}

double SerCost::ser_us_scaled(std::uint64_t bytes, double bw_scale) const {
  const double eff_gbs = gbs_ * bw_scale;
  if (eff_gbs == gbs_) return ser_us(bytes);  // pristine fast path, exact
  return static_cast<double>(bytes) * gbs_to_us_per_byte(eff_gbs);
}

double batch_inject_us(const LogGP& p, std::uint64_t n) {
  if (n == 0) return 0.0;
  return p.o_us + static_cast<double>(n - 1) * p.g_us;
}

std::string LogGP::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "LogGP{L=%.3fus o=%.3fus g=%.3fus per_stream=%.1fGB/s}", L_us,
                o_us, g_us, per_stream_gbs);
  return buf;
}

std::string to_string(Runtime r) {
  switch (r) {
    case Runtime::kTwoSidedMpi: return "two-sided MPI";
    case Runtime::kOneSidedMpi: return "one-sided MPI";
    case Runtime::kShmem: return "SHMEM (put-with-signal)";
  }
  return "unknown";
}

}  // namespace mrl::simnet
