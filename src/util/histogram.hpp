// Log2-bucketed histogram: message-size and latency distributions in traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mrl {

/// Histogram over power-of-two buckets: bucket k holds values in
/// [2^k, 2^(k+1)). Values < 1 land in bucket 0.
class Log2Histogram {
 public:
  void add(double value);
  void add_n(double value, std::uint64_t n);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t bucket_count(int k) const;
  [[nodiscard]] int min_bucket() const;
  [[nodiscard]] int max_bucket() const;

  /// Lower edge of bucket k (2^k).
  static double bucket_lo(int k);

  /// Human-readable half-open range of bucket k. Bucket 0 also absorbs
  /// every value in [0, 1), so its label is "[0, 2)", not "[1, 2)".
  static std::string bucket_label(int k);

  /// Merges another histogram bucket-wise (exact integer addition, so the
  /// result is independent of merge order).
  void merge(const Log2Histogram& other);

  /// ASCII rendering: one line per non-empty bucket with a proportional bar.
  /// Non-zero buckets always draw at least one '#'.
  [[nodiscard]] std::string render(const std::string& unit = "",
                                   int bar_width = 40) const;

 private:
  std::vector<std::uint64_t> counts_;  // index = bucket
  std::uint64_t total_ = 0;
};

}  // namespace mrl
