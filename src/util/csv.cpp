#include "util/csv.hpp"

#include <fstream>
#include <ostream>

#include "util/log.hpp"

namespace mrl {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(fields[i]);
  }
  os_ << '\n';
}

bool write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open CSV file for writing: %s", path.c_str());
    return false;
  }
  CsvWriter w(f);
  for (const auto& r : rows) w.row(r);
  return f.good();
}

}  // namespace mrl
