#include "util/csv.hpp"

#include <fstream>
#include <ostream>

#include "util/log.hpp"

namespace mrl {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(fields[i]);
  }
  os_ << '\n';
}

Status write_csv_file(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows) {
  std::ofstream f(path);
  if (!f) {
    MRL_LOG_WARN("cannot open CSV file for writing: %s", path.c_str());
    return Status(ErrorCode::kNotFound,
                  "cannot open CSV file for writing: " + path);
  }
  CsvWriter w(f);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    w.row(rows[i]);
    if (!f.good()) {
      MRL_LOG_WARN("CSV write failed (disk full?): %s", path.c_str());
      return Status(ErrorCode::kInternal,
                    "CSV write failed at row " + std::to_string(i) + " of " +
                        path + " (disk full?)");
    }
  }
  f.flush();
  if (!f.good()) {
    MRL_LOG_WARN("CSV flush failed: %s", path.c_str());
    return Status(ErrorCode::kInternal, "CSV flush failed for " + path);
  }
  return Status::ok();
}

}  // namespace mrl
