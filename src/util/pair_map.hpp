// Map keyed by an ordered (src, dst) rank pair.
//
// The FIFO-channel state in mpi::World and shmem::World is logically a
// P x P matrix, but real communication patterns touch only the pairs that
// actually exchange messages (a stencil rank talks to 4 neighbors, not to
// all P-1). A dense matrix is the fastest representation up to a few
// thousand ranks and an O(P^2) memory wall above it — 100k ranks would
// materialize 80 GB per matrix. PairMap keeps the dense array below
// kDenseRanks and switches to an open-addressing hash table above it, so
// lookups stay O(1) either way and storage tracks the touched-pair count.
//
// Reference stability: at() returns a reference that stays valid until the
// next reset(). The dense array is sized once per reset, and hash-mode
// values live in fixed-size chunks that never move when the key table
// rehashes — only the (key -> chunk index) slots are rebuilt. The engine's
// WaitGate mechanism relies on this: per-(src,dst) monotone sequence
// counters stored in a PairMap are registered as gate counters by address
// and must survive unrelated insertions (DESIGN.md §12).
//
// Determinism: the map is only ever accessed by key (never iterated), and
// every entry is default-constructed on first touch — exactly the dense
// array's semantics — so the representation cannot influence simulation
// results, let alone output bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.hpp"

namespace mrl::util {

template <typename V>
class PairMap {
 public:
  /// Largest world size that still uses the dense representation
  /// (2048^2 * 8 B = 32 MB per matrix — cheap; 4096^2 would be 128 MB).
  static constexpr int kDenseRanks = 2048;

  /// (Re)dimensions for an nranks-sized world and drops all entries.
  /// Invalidates every reference previously returned by at().
  void reset(int nranks) {
    MRL_CHECK(nranks >= 0);
    n_ = nranks;
    chunks_.clear();
    if (n_ <= kDenseRanks) {
      dense_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                    V{});
      keys_.clear();
      idx_.clear();
      mask_ = 0;
      used_ = 0;
    } else {
      dense_.clear();
      dense_.shrink_to_fit();
      keys_.assign(kInitialSlots, kEmpty);
      idx_.assign(kInitialSlots, 0);
      mask_ = kInitialSlots - 1;
      used_ = 0;
    }
  }

  /// Value for (src, dst), default-constructed on first access. The
  /// returned reference is stable until the next reset(): values never
  /// move, even when the hash table grows.
  V& at(int src, int dst) {
    MRL_CHECK(src >= 0 && src < n_ && dst >= 0 && dst < n_);
    const std::uint64_t key =
        static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n_) +
        static_cast<std::uint64_t>(dst);
    if (!dense_.empty() || n_ <= kDenseRanks) {
      return dense_[static_cast<std::size_t>(key)];
    }
    if ((used_ + 1) * 4 > (mask_ + 1) * 3) grow();  // keep load <= 3/4
    std::size_t i = slot_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return value_at(idx_[i]);
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    const std::size_t vi = used_++;
    idx_[i] = static_cast<std::uint32_t>(vi);
    if ((vi >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<V[]>(kChunkSize));
      // Value chunks are uninitialized storage for non-class V; match the
      // dense array's default-construction semantics explicitly.
      for (std::size_t j = 0; j < kChunkSize; ++j) {
        chunks_.back()[j] = V{};
      }
    }
    return value_at(vi);
  }

  /// Touched-pair count (dense mode reports the full matrix size).
  [[nodiscard]] std::size_t entries() const {
    return dense_.empty() ? used_ : dense_.size();
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;  // power of two
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] V& value_at(std::size_t vi) {
    return chunks_[vi >> kChunkShift][vi & (kChunkSize - 1)];
  }

  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    // Fibonacci multiplicative hash: src*n+dst keys are highly regular, and
    // the multiply spreads consecutive keys across the table.
    return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ULL) & mask_;
  }

  void grow() {
    // Rehash the key slots only; values stay in their chunks, so references
    // handed out by at() keep pointing at live storage.
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_idx = std::move(idx_);
    const std::size_t slots = (mask_ + 1) * 2;
    keys_.assign(slots, kEmpty);
    idx_.assign(slots, 0);
    mask_ = slots - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmpty) continue;
      std::size_t i = slot_of(old_keys[j]);
      while (keys_[i] != kEmpty) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      idx_[i] = old_idx[j];
    }
  }

  int n_ = 0;
  std::vector<V> dense_;            // non-empty <=> dense mode (or n_ == 0)
  std::vector<std::uint64_t> keys_; // hash mode: kEmpty marks free slots
  std::vector<std::uint32_t> idx_;  // hash mode: slot -> value index
  std::vector<std::unique_ptr<V[]>> chunks_;  // hash mode: stable value store
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
};

}  // namespace mrl::util
