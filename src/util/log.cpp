#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace mrl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff: return "OFF";
  }
  return "???";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[msgroof %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void log(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace detail

}  // namespace mrl
