#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.hpp"

namespace mrl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

namespace {
// An empty accumulator has no mean/min/max; NaN is unambiguous where 0.0
// would be indistinguishable from a legitimate zero in a report.
constexpr double kNoSample = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double RunningStats::mean() const { return n_ ? mean_ : kNoSample; }

double RunningStats::variance() const {
  if (n_ == 0) return kNoSample;
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : kNoSample; }

double RunningStats::max() const { return n_ ? max_ : kNoSample; }

double percentile(std::vector<double> sample, double q) {
  MRL_CHECK(!sample.empty());
  MRL_CHECK(q >= 0.0 && q <= 100.0);
  // NaN has no order: std::sort on a NaN-containing range is undefined
  // behavior and would silently scramble the order statistics.
  for (const double x : sample) {
    MRL_CHECK_MSG(!std::isnan(x), "percentile over a NaN-containing sample");
  }
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double pos = q / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double median(std::vector<double> sample) {
  return percentile(std::move(sample), 50.0);
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  MRL_CHECK(xs.size() == ys.size());
  MRL_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  MRL_CHECK_MSG(std::abs(denom) > 1e-300, "x values must not be constant");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double geomean(const std::vector<double>& xs) {
  MRL_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    MRL_CHECK(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace mrl
