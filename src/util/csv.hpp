// Minimal CSV emission for figure series (each bench also dumps its series as
// CSV so plots can be regenerated outside the harness).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace mrl {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; fields containing comma/quote/newline are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header then rows.
  void header(const std::vector<std::string>& fields) { row(fields); }

  /// Escapes a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
};

/// Writes rows to a file. Stream state is checked after every row and after
/// the final flush, so a full disk or unwritable path surfaces as an error
/// Status (with the failing path) instead of silently dropping rows.
Status write_csv_file(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows);

}  // namespace mrl
