// Minimal CSV emission for figure series (each bench also dumps its series as
// CSV so plots can be regenerated outside the harness).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrl {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; fields containing comma/quote/newline are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header then rows.
  void header(const std::vector<std::string>& fields) { row(fields); }

  /// Escapes a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
};

/// Writes rows to a file; returns false (and logs) on I/O failure.
bool write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace mrl
