#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.hpp"

namespace mrl {

namespace {
int bucket_of(double value) {
  if (value < 1.0) return 0;
  return static_cast<int>(std::floor(std::log2(value)));
}
}  // namespace

void Log2Histogram::add(double value) { add_n(value, 1); }

void Log2Histogram::add_n(double value, std::uint64_t n) {
  MRL_CHECK(value >= 0.0);
  const int k = bucket_of(value);
  if (static_cast<std::size_t>(k) >= counts_.size()) counts_.resize(k + 1, 0);
  counts_[k] += n;
  total_ += n;
}

std::uint64_t Log2Histogram::bucket_count(int k) const {
  if (k < 0 || static_cast<std::size_t>(k) >= counts_.size()) return 0;
  return counts_[k];
}

int Log2Histogram::min_bucket() const {
  for (std::size_t k = 0; k < counts_.size(); ++k)
    if (counts_[k]) return static_cast<int>(k);
  return -1;
}

int Log2Histogram::max_bucket() const {
  for (std::size_t k = counts_.size(); k-- > 0;)
    if (counts_[k]) return static_cast<int>(k);
  return -1;
}

double Log2Histogram::bucket_lo(int k) { return std::ldexp(1.0, k); }

std::string Log2Histogram::bucket_label(int k) {
  // bucket_of() folds [0, 1) into bucket 0, so its true range is [0, 2).
  const double lo = k == 0 ? 0.0 : bucket_lo(k);
  std::ostringstream os;
  os << "[" << lo << ", " << bucket_lo(k + 1) << ")";
  return os.str();
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t k = 0; k < other.counts_.size(); ++k) {
    counts_[k] += other.counts_[k];
  }
  total_ += other.total_;
}

std::string Log2Histogram::render(const std::string& unit,
                                  int bar_width) const {
  std::ostringstream os;
  const int lo = min_bucket();
  const int hi = max_bucket();
  if (lo < 0) {
    os << "(empty histogram)\n";
    return os.str();
  }
  std::uint64_t peak = 0;
  for (int k = lo; k <= hi; ++k) peak = std::max(peak, bucket_count(k));
  for (int k = lo; k <= hi; ++k) {
    const std::uint64_t c = bucket_count(k);
    int bar = peak ? static_cast<int>(
        static_cast<double>(c) / static_cast<double>(peak) * bar_width) : 0;
    if (c > 0 && bar < 1) bar = 1;  // never truncate a non-empty bucket away
    os << bucket_label(k) << " " << unit << "\t" << c << "\t"
       << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  return os.str();
}

}  // namespace mrl
