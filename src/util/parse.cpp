#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mrl {

std::optional<long long> parse_i64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<unsigned long long> parse_u64(std::string_view s, int base) {
  if (s.empty() || s.front() == '-' || s.front() == '+' ||
      std::isspace(static_cast<unsigned char>(s.front()))) {
    return std::nullopt;
  }
  // strtoull handles the 0x/0 prefixes from_chars does not; strictness is
  // restored by requiring full consumption and checking ERANGE.
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, base);
  if (end != buf.c_str() + buf.size() || end == buf.c_str() || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return std::nullopt;
  }
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str() ||
      errno == ERANGE || !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

std::optional<long long> parse_cli_int(const char* s, long long min,
                                       const char* what) {
  const auto v = s != nullptr ? parse_i64(s) : std::nullopt;
  if (!v || *v < min) {
    std::fprintf(stderr, "invalid %s '%s' (need an integer >= %lld)\n", what,
                 s != nullptr ? s : "", min);
    return std::nullopt;
  }
  return v;
}

}  // namespace mrl
