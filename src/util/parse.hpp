// Strict numeric parsing for CLI front-ends.
//
// std::atoi turns any garbage ("banana", "", "12x") into 0 without a word,
// which silently becomes a 0-rank or 0-iteration run. These parsers consume
// the ENTIRE string or fail, reject leading whitespace, and surface range
// errors, so every demo/CLI can reject bad arguments with a usage error.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mrl {

/// Base-10 signed integer: optional leading '-', digits, nothing else.
[[nodiscard]] std::optional<long long> parse_i64(std::string_view s);

/// Unsigned integer. base 0 accepts 0x/0 prefixes (like strtoull).
[[nodiscard]] std::optional<unsigned long long> parse_u64(std::string_view s,
                                                          int base = 10);

/// Finite floating-point number (rejects "nan"/"inf" and trailing junk).
[[nodiscard]] std::optional<double> parse_f64(std::string_view s);

/// CLI convenience: parses `s` as an integer >= `min`, printing
/// "invalid <what> '<s>' ..." to stderr on failure. Callers just need
/// `if (!v) usage();`.
[[nodiscard]] std::optional<long long> parse_cli_int(const char* s,
                                                     long long min,
                                                     const char* what);

}  // namespace mrl
