// Lightweight error handling for msgroof.
//
// The simulator is a library: internal invariant violations are programming
// errors and abort loudly (MRL_CHECK); recoverable conditions surface as
// Status / Result<T> so callers can react without exceptions crossing the
// rank-thread boundary.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mrl {

/// Error categories used across the library.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kDeadlock,
  kTimeout,
  kNotFound,
  kResourceExhausted,
  kInternal,
};

/// Human-readable name for an ErrorCode.
constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kDeadlock: return "DEADLOCK";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "MRL_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}
}  // namespace detail

/// A status: OK or an error code plus message. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(mrl::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Result<T>: a value or a Status. Minimal expected<>-style type so the
/// library has no exception-based error paths across threads.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) { // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      status_ = Status(ErrorCode::kInternal, "Result constructed from OK status");
    }
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    check_has_value();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  // Accessing value() on an error Result is a programming error: abort with
  // the carried status instead of dereferencing an empty optional.
  void check_has_value() const {
    if (!value_.has_value()) {
      detail::check_failed("Result::value()", __FILE__, __LINE__,
                           status_.message().c_str());
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace mrl

/// Invariant check: aborts with location on failure. Used for programming
/// errors only (never for user-input validation).
#define MRL_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::mrl::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MRL_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond))                                                        \
      ::mrl::detail::check_failed(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)
