// Tiny leveled logger. Intentionally printf-style: bench binaries and the
// simulator emit a handful of diagnostics; no dependency, no allocation on
// the disabled path.
#pragma once

#include <cstdarg>

namespace mrl {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

}  // namespace mrl

#define MRL_LOG_DEBUG(...) ::mrl::detail::log(::mrl::LogLevel::kDebug, __VA_ARGS__)
#define MRL_LOG_INFO(...) ::mrl::detail::log(::mrl::LogLevel::kInfo, __VA_ARGS__)
#define MRL_LOG_WARN(...) ::mrl::detail::log(::mrl::LogLevel::kWarn, __VA_ARGS__)
#define MRL_LOG_ERROR(...) ::mrl::detail::log(::mrl::LogLevel::kError, __VA_ARGS__)
