// Unit formatting/parsing helpers shared by benches and reports.
//
// Conventions used throughout msgroof (matching the paper):
//   time       — microseconds (double, "us")
//   bandwidth  — GB/s with GB = 1e9 bytes (network convention)
//   sizes      — bytes; pretty-printed with binary prefixes (KiB/MiB)
#pragma once

#include <cstdint>
#include <string>

namespace mrl {

/// Bytes transferred in t_us microseconds -> GB/s (GB = 1e9 B).
double bytes_per_us_to_gbs(double bytes, double t_us);

/// GB/s -> microseconds per byte (the LogGP "G" parameter).
double gbs_to_us_per_byte(double gbs);

/// Microseconds per byte -> GB/s.
double us_per_byte_to_gbs(double us_per_byte);

/// "4 KiB", "131 KiB", "2 MiB", "24 B" — binary prefixes.
std::string format_bytes(std::uint64_t bytes);

/// "3.30 us", "1.25 ms", "2.00 s" — picks a readable scale.
std::string format_time_us(double us);

/// "32.00 GB/s", "512.00 MB/s".
std::string format_gbs(double gbs);

/// Fixed-precision double without trailing garbage: format_double(3.14159, 2)
/// == "3.14".
std::string format_double(double v, int precision);

/// "1e+06"-style compact count used on msg/sync axes.
std::string format_count(std::uint64_t n);

}  // namespace mrl
