// Bump-pointer arena for per-operation transient scratch (DESIGN.md §10).
//
// The simulator's hot paths used to pay one or more heap allocations per
// simulated operation: the fabric's per-transfer lane-claim vector and the
// trace summarizer's per-call record/epoch buffers. An Arena turns those
// into a pointer bump: allocate() carves from a current block, reset()
// rewinds to empty while RETAINING the blocks, so a steady-state caller
// (one reset per transfer / per summarize) performs zero heap allocations
// after warm-up.
//
// Contract:
//   * returned memory is uninitialized; only trivially-destructible types
//     may live in it (alloc_array enforces this) — reset() never runs
//     destructors;
//   * not thread-safe — each owner (a Fabric, a Trace) is already
//     serialized by the engine;
//   * AddressSanitizer-aware: rewound and not-yet-allocated bytes are
//     poisoned, so a stale pointer into reset() memory is a hard ASan error
//     instead of silent reuse (the ASan/UBSan CI jobs exercise this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace mrl::util {

class Arena {
 public:
  /// Blocks grow geometrically from `min_block_bytes` as needed.
  explicit Arena(std::size_t min_block_bytes = 16 * 1024);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage, aligned to `align` (power of two, <= 16).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Uninitialized array of `n` Ts. T must be trivially destructible:
  /// reset() rewinds the memory without running destructors.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is rewound, never destructed");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, retaining every block for reuse (and poisoning the
  /// vacated bytes under ASan).
  void reset();

  /// Bytes handed out since the last reset (diagnostic).
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Total block capacity currently retained (diagnostic).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Block {
    unsigned char* data = nullptr;
    std::size_t size = 0;
  };

  /// Makes a block with >= `bytes` free and points cursor_ into it.
  void* grow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t min_block_bytes_;
  std::size_t cur_block_ = 0;  ///< index of the block being bumped
  std::size_t cur_off_ = 0;    ///< bump offset within blocks_[cur_block_]
  std::size_t in_use_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mrl::util
