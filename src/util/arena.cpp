#include "util/arena.hpp"

#include <cstdlib>
#include <new>

#include "util/status.hpp"

// ASan poisoning: keep rewound arena bytes unreadable so use-after-reset is
// a hard error under the sanitizer CI jobs, not silent corruption.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MRL_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define MRL_ARENA_ASAN 1
#endif

#if defined(MRL_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#define MRL_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define MRL_ARENA_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define MRL_ARENA_POISON(addr, size) ((void)0)
#define MRL_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace mrl::util {

namespace {
// ASan poison granularity is 8 bytes; rounding every allocation keeps the
// poison boundary off live data regardless of the requested alignment.
constexpr std::size_t kQuantum = 8;

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::size_t min_block_bytes)
    : min_block_bytes_(min_block_bytes < 64 ? 64 : min_block_bytes) {}

Arena::~Arena() {
  for (Block& b : blocks_) {
    MRL_ARENA_UNPOISON(b.data, b.size);
    ::operator delete(b.data, std::align_val_t{16});
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  MRL_CHECK(align != 0 && (align & (align - 1)) == 0 && align <= 16);
  const std::size_t want = round_up(bytes < 1 ? 1 : bytes, kQuantum);
  if (cur_block_ < blocks_.size()) {
    Block& b = blocks_[cur_block_];
    const std::size_t off = round_up(cur_off_, align < kQuantum ? kQuantum : align);
    if (off + want <= b.size) {
      cur_off_ = off + want;
      in_use_ += want;
      unsigned char* p = b.data + off;
      MRL_ARENA_UNPOISON(p, want);
      return p;
    }
    // Try the next retained block (after reset() they are all empty).
    if (cur_block_ + 1 < blocks_.size() &&
        want <= blocks_[cur_block_ + 1].size) {
      ++cur_block_;
      cur_off_ = 0;
      return allocate(bytes, align);
    }
  }
  return grow(want, align);
}

void* Arena::grow(std::size_t bytes, std::size_t align) {
  std::size_t size = min_block_bytes_;
  if (!blocks_.empty()) size = blocks_.back().size * 2;
  if (size < bytes) size = round_up(bytes, kQuantum);
  Block b;
  b.data = static_cast<unsigned char*>(
      ::operator new(size, std::align_val_t{16}));
  b.size = size;
  MRL_ARENA_POISON(b.data, b.size);
  capacity_ += size;
  blocks_.push_back(b);
  cur_block_ = blocks_.size() - 1;
  cur_off_ = bytes;
  in_use_ += bytes;
  MRL_ARENA_UNPOISON(b.data, bytes);
  (void)align;  // block bases are 16-aligned, covering every legal align
  return b.data;
}

void Arena::reset() {
  for (Block& b : blocks_) MRL_ARENA_POISON(b.data, b.size);
  cur_block_ = 0;
  cur_off_ = 0;
  in_use_ = 0;
}

}  // namespace mrl::util
