// Indexed binary min-heap over a dense id universe [0, n).
//
// The scheduler-grade priority queue used by the engine's ready queue
// (runtime/engine.cpp, DESIGN.md §10) and the fabric's per-link lane picker
// (simnet/link.cpp). Both need the same three things a plain
// std::priority_queue cannot give:
//
//   * O(log n) removal of an ARBITRARY id (a rank leaving the ready queue
//     because it was granted or blocked; never via lazy deletion, which
//     would make memory grow with history);
//   * O(log n) key update for an id already in the heap (a lane's next-free
//     time moving forward after a claim) — the classic decrease/increase-key;
//   * a deterministic total order: ties on the key break toward the LOWEST
//     id, so the heap's top is exactly the (key, id)-lexicographic minimum a
//     linear scan over ids in ascending order would find. That tie-break is
//     load-bearing — it is the engine's documented "equal wake time => lowest
//     rank id runs first" contract, and it makes the heap a drop-in
//     replacement for the legacy linear scan with bit-identical output.
//
// The position index (id -> heap slot) is a dense vector, so contains() and
// the start of erase()/update() are O(1) with no hashing.
#pragma once

#include <cstddef>
#include <vector>

#include "util/status.hpp"

namespace mrl::util {

template <typename Key>
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;

  /// Re-dimensions the id universe to [0, n) and empties the heap. Keeps
  /// allocated storage, so per-run resets of a persistent engine are cheap.
  void reset(int n) {
    MRL_CHECK(n >= 0);
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(n));
    pos_.assign(static_cast<std::size_t>(n), -1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] int size() const { return static_cast<int>(heap_.size()); }
  [[nodiscard]] int universe() const { return static_cast<int>(pos_.size()); }

  [[nodiscard]] bool contains(int id) const {
    return pos_[static_cast<std::size_t>(id)] >= 0;
  }

  [[nodiscard]] Key key_of(int id) const {
    const int p = pos_[static_cast<std::size_t>(id)];
    MRL_CHECK(p >= 0);
    return heap_[static_cast<std::size_t>(p)].key;
  }

  /// Inserts `id` with `key`. The id must be in-universe and absent.
  void push(int id, Key key) {
    MRL_CHECK(id >= 0 && id < universe());
    MRL_CHECK(pos_[static_cast<std::size_t>(id)] < 0);
    heap_.push_back(Entry{key, id});
    pos_[static_cast<std::size_t>(id)] = static_cast<int>(heap_.size()) - 1;
    sift_up(static_cast<int>(heap_.size()) - 1);
  }

  /// Id of the (key, id)-minimum, or -1 when empty.
  [[nodiscard]] int top() const { return heap_.empty() ? -1 : heap_[0].id; }

  [[nodiscard]] Key top_key() const {
    MRL_CHECK(!heap_.empty());
    return heap_[0].key;
  }

  void pop() {
    MRL_CHECK(!heap_.empty());
    remove_at(0);
  }

  /// Removes an arbitrary id in O(log n).
  void erase(int id) {
    const int p = pos_[static_cast<std::size_t>(id)];
    MRL_CHECK(p >= 0);
    remove_at(p);
  }

  /// Changes the key of an id already in the heap (decrease OR increase).
  void update(int id, Key key) {
    const int p = pos_[static_cast<std::size_t>(id)];
    MRL_CHECK(p >= 0);
    const Key old = heap_[static_cast<std::size_t>(p)].key;
    heap_[static_cast<std::size_t>(p)].key = key;
    if (key < old) {
      sift_up(p);
    } else if (old < key) {
      sift_down(p);
    }
  }

 private:
  struct Entry {
    Key key;
    int id;
  };

  // Strict (key, id)-lexicographic order; ids are unique, so it totals.
  [[nodiscard]] bool less(const Entry& a, const Entry& b) const {
    return a.key < b.key || (!(b.key < a.key) && a.id < b.id);
  }

  void place(int slot, const Entry& e) {
    heap_[static_cast<std::size_t>(slot)] = e;
    pos_[static_cast<std::size_t>(e.id)] = slot;
  }

  void sift_up(int i) {
    const Entry e = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
      const int parent = (i - 1) / 2;
      if (!less(e, heap_[static_cast<std::size_t>(parent)])) break;
      place(i, heap_[static_cast<std::size_t>(parent)]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(int i) {
    const Entry e = heap_[static_cast<std::size_t>(i)];
    const int n = static_cast<int>(heap_.size());
    for (;;) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[static_cast<std::size_t>(child + 1)],
                                heap_[static_cast<std::size_t>(child)])) {
        ++child;
      }
      if (!less(heap_[static_cast<std::size_t>(child)], e)) break;
      place(i, heap_[static_cast<std::size_t>(child)]);
      i = child;
    }
    place(i, e);
  }

  void remove_at(int p) {
    const int id = heap_[static_cast<std::size_t>(p)].id;
    pos_[static_cast<std::size_t>(id)] = -1;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (p == static_cast<int>(heap_.size())) return;  // removed the tail
    place(p, last);
    // The hole filler may need to move either way relative to its new
    // neighborhood.
    sift_up(p);
    sift_down(pos_[static_cast<std::size_t>(last.id)]);
  }

  std::vector<Entry> heap_;
  std::vector<int> pos_;  ///< id -> heap slot, -1 when absent
};

}  // namespace mrl::util
