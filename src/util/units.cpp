#include "util/units.hpp"

#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace mrl {

double bytes_per_us_to_gbs(double bytes, double t_us) {
  MRL_CHECK(t_us > 0.0);
  // bytes / us = 1e6 bytes/s; GB/s = 1e9 bytes/s.
  return bytes / t_us * 1e-3;
}

double gbs_to_us_per_byte(double gbs) {
  MRL_CHECK(gbs > 0.0);
  return 1e-3 / gbs;
}

double us_per_byte_to_gbs(double us_per_byte) {
  MRL_CHECK(us_per_byte > 0.0);
  return 1e-3 / us_per_byte;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = kKiB * 1024;
  constexpr std::uint64_t kGiB = kMiB * 1024;
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu GiB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu MiB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof(buf), "%llu KiB",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_time_us(double us) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f s", us * 1e-6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us * 1e-3);
  } else if (us >= 1.0 || us == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.2f us", us);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", us * 1e3);
  }
  return buf;
}

std::string format_gbs(double gbs) {
  char buf[64];
  if (gbs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", gbs);
  } else if (gbs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f MB/s", gbs * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f KB/s", gbs * 1e6);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  char buf[64];
  if (n >= 1000000 && n % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(n / 1000000));
  } else if (n >= 1000 && n % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(n / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace mrl
