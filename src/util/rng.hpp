// Deterministic, seedable pseudo-random generators.
//
// The simulator must be bit-reproducible across runs, so all randomness in
// workload generation flows through these engines (never std::random_device
// or unseeded std engines). Xoshiro256** is the workhorse; SplitMix64 seeds it
// and derives independent per-rank streams from a single experiment seed.
#pragma once

#include <cstdint>
#include <limits>

#include "util/status.hpp"

namespace mrl {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used for seeding and for
/// deriving independent substreams (seed ^ stream-id mixing).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose PRNG with 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent stream for (seed, stream) — e.g. one per rank.
  static Xoshiro256 for_stream(std::uint64_t seed, std::uint64_t stream) {
    SplitMix64 sm(seed ^ (0xA0761D6478BD642FULL * (stream + 1)));
    Xoshiro256 g(sm.next());
    return g;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) {
    MRL_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling (bias negligible for
    // simulation workloads; deterministic and fast).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    MRL_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mrl
