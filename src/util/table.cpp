#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/status.hpp"

namespace mrl {

namespace {
constexpr const char* kSeparatorSentinel = "\x01";
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MRL_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  MRL_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() {
  rows_.push_back({kSeparatorSentinel});
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&](char fill, char join) {
    std::string s = "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      s.append(width[c] + 2, fill);
      s += (c + 1 == width.size()) ? '+' : join;
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += ' ';
      s += cell;
      s.append(width[c] - cell.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  os << rule('-', '+');
  os << line(header_);
  os << rule('=', '+');
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      os << rule('-', '+');
    } else {
      os << line(row);
    }
  }
  os << rule('-', '+');
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace mrl
