// Streaming and batch summary statistics used by sweeps, traces and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace mrl {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  // mean/variance/stddev/min/max return quiet NaN when no sample has been
  // added: an empty accumulator is not the same thing as one that observed
  // zeros, and reports must be able to tell them apart.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile over a sample (linear interpolation between order statistics).
/// q in [0,100]. Sample need not be sorted; a copy is sorted internally.
/// The sample must not contain NaN (checked — sorting NaNs is UB).
double percentile(std::vector<double> sample, double q);

/// Median convenience wrapper.
double median(std::vector<double> sample);

/// Simple least-squares fit of y = a + b*x. Returns {a, b}.
/// Requires xs.size() == ys.size() >= 2 with non-constant xs.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Geometric mean of strictly positive values.
double geomean(const std::vector<double>& xs);

}  // namespace mrl
