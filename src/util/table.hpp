// ASCII table rendering for paper-style tables (Table I/II reproductions and
// bench output rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mrl {

/// Builds and renders a left/right-aligned ASCII table:
///
///   TextTable t({"Machine", "GPUs", "Peak BW"});
///   t.add_row({"Perlmutter GPU", "4xA100", "100 GB/s"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at the current position.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

  /// Renders the table with a title line (optional) and box-drawing rules.
  [[nodiscard]] std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  // A row with the sentinel single cell "\x01" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace mrl
