// Deterministic RMA race & synchronization checker (DESIGN.md §11).
//
// An opt-in dynamic correctness layer for the one-sided runtimes. Because the
// engine executes every fabric-visible action in global virtual-time order,
// classic happens-before race detection becomes *reproducible*: the same
// program produces byte-identical verdicts across execution backends, job
// counts and schedulers — the property PARCOACH-style tools cannot get from a
// real machine.
//
// Three cooperating mechanisms:
//
//   1. Happens-before tracking. Each rank carries a vector clock, advanced by
//      every access it issues and joined across synchronization edges:
//      p2p send→recv (the sender's clock snapshot rides with the message),
//      collectives/fences/barriers (all entrants' clocks merge, everyone
//      adopts the merge on completion), and delivery observation (applying an
//      arrived put joins the target with the origin's clock at issue).
//
//   2. Shadow access history. Every put/get/atomic — plus explicitly
//      annotated local reads/writes (WinHandle::local_read etc.) — leaves a
//      compact record {rank, order clock, kind, byte range, virtual time} in
//      the per-(window, owner-rank) region it touched. A new access scans the
//      region for conflicting records (byte overlap, different ranks, not
//      both atomic, at least one write) that are unordered in happens-before,
//      and reports the first-divergence pair: the new access plus the
//      earliest-virtual-time conflicting endpoint (one line per racing
//      access, not the quadratic set of pairs). Put records stay "in flight"
//      — unordered before *everything* — until the origin completes them
//      (flush / quiet / fence) or the target observes their application;
//      that models MPI-3 / SHMEM completion rules, where issuing a put
//      guarantees nothing and flush_local only licenses origin-buffer reuse.
//
//   3. Epoch discipline. Per-origin outstanding-put state catches
//      order-sensitive misuse the pure happens-before graph would forgive:
//      a signal put issued while a data put to the same target is still
//      unflushed (MPI 4-op discipline), a fused put-with-signal issued while
//      plain puts to the same target are unquieted (SHMEM), a local read of a
//      window range some arrived-but-unapplied put overlaps (missing
//      MPI_Win_sync), and ranks finishing with puts that were never completed
//      by any flush/quiet/fence.
//
// Collective matching rides on the same rendezvous the runtimes already use:
// the first entrant of a generation fixes the expected (kind, root, bytes)
// signature and every later entrant must match it, otherwise the run aborts
// with both signatures — instead of the silent hang or payload corruption a
// real MPI program would get.
//
// Violations are recorded (not thrown) and surface as
// Status(kFailedPrecondition) from Engine::run; a collective mismatch aborts
// immediately because the runtimes' kind-agnostic rendezvous would otherwise
// crash on mismatched payloads. Everything here is called from rank contexts
// while the engine is quiescent, so no locking and full determinism; when
// disabled every hook is a single branch and no simulated time ever changes
// either way (the checker never advances clocks).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "simnet/time.hpp"
#include "util/status.hpp"

namespace mrl::check {

/// What an access record represents. Atomics (including fused signal words
/// and signal waits) never conflict with each other; everything else follows
/// the usual at-least-one-write rule.
enum class AccessKind : std::uint8_t {
  kPut,         ///< one-sided put (data or MPI signal put)
  kGet,         ///< one-sided get (non-atomic read)
  kAtomic,      ///< CAS / fetch-op / fused signal word / signal wait
  kLocalRead,   ///< annotated local load from exposed memory
  kLocalWrite,  ///< annotated local store to exposed memory
};

[[nodiscard]] const char* to_string(AccessKind k);

/// Flavor of a put, for the epoch-discipline rules (W1/S1 in DESIGN.md §11).
enum class PutClass : std::uint8_t {
  kData,    ///< plain data put
  kSignal,  ///< MPI put of a bare signal word (OpKind::kSignal)
  kFused,   ///< SHMEM put-with-signal (data + atomic signal, one op)
};

/// Collective signature checked across ranks at each rendezvous generation.
struct CollSig {
  const char* kind = "";     ///< "barrier", "allreduce_sum", "bcast", ...
  int root = -1;             ///< rooted collectives only; -1 otherwise
  std::uint64_t bytes = 0;   ///< payload element bytes; 0 for barriers
};

/// Handles a communication layer stashes next to its pending-delivery state
/// so applying a put can be reported back. kNoRec = not recorded (checker
/// disabled at issue, or region history full).
inline constexpr std::uint32_t kNoRec = ~0u;
struct PutHandles {
  std::uint32_t data = kNoRec;
  std::uint32_t sig = kNoRec;
};

/// Result of a collective-enter hook.
struct CollEnter {
  bool ok = true;           ///< false => signature mismatch (abort the run)
  std::uint64_t gen = 0;    ///< generation to pass to on_collective_complete
};

/// One structured checker verdict (`--check-report`, DESIGN.md §11). `text`
/// is exactly the line report() prints; the other fields carry the same
/// information machine-readably. Fields that do not apply to a kind hold
/// their defaults (-1 ranks, 0 times/ranges).
struct Violation {
  /// "race", "collective_mismatch", "signal_overtake", "unapplied_read",
  /// or "missing_completion".
  std::string kind;
  /// Region or channel the verdict is about, e.g. "win0@rank3" or
  /// "shmem.world".
  std::string space;
  std::int32_t rank_a = -1;  ///< detecting/offending rank
  std::int32_t rank_b = -1;  ///< conflicting peer rank, -1 when n/a
  simnet::TimeUs t_a = 0;    ///< virtual time of the detecting access
  simnet::TimeUs t_b = 0;    ///< virtual time of the conflicting access
  std::uint64_t off_a = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t off_b = 0;
  std::uint64_t bytes_b = 0;
  std::string text;  ///< the human-readable report line
};

/// The per-engine checker. All hooks are called with the engine quiescent,
/// in global virtual-time order; none of them advances simulated time.
class Checker {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Max shadow records kept per (space, owner) region; accesses beyond the
  /// cap go unchecked (counted and reported once, never a violation).
  void set_history_limit(std::uint64_t n) { history_limit_ = n; }

  /// Re-dimensions per-run state (start of each Engine::run). Spaces and
  /// channels registered by a previous run are dropped; communication worlds
  /// re-register lazily from inside perform bodies.
  void reset(int nranks);

  // --- registration (first use, inside a perform body) ---

  /// A "space" is one window / symmetric heap: nranks exposure regions with
  /// independent per-rank byte offsets.
  int add_space(std::string name);
  /// A "channel" is one collective rendezvous (world collectives, one per
  /// window fence, the SHMEM barrier). `clears_space` >= 0 marks a channel
  /// whose completion is a global RMA sync for that space (fence / SHMEM
  /// barrier): all of the space's puts complete and its history resets.
  int add_channel(std::string name, int clears_space = -1);

  // --- happens-before edges ---

  /// Two-sided send: snapshot the sender's clock onto the (src,dst) wire,
  /// keyed by the runtime's per-pair FIFO sequence number.
  void on_send(int src, int dst, std::uint64_t seq);
  /// Two-sided receive of the message carrying `seq`: join the snapshot.
  void on_recv(int dst, int src, std::uint64_t seq);

  /// Collective entry. Verifies the signature against the generation's first
  /// entrant, merges the entrant's clock, and (for the last entrant of a
  /// clears_space channel) completes + clears that space's history. Returns
  /// ok=false on signature mismatch, with the diagnostic recorded; the
  /// caller must abort the run with report().
  CollEnter on_collective_enter(int chan, int rank, const CollSig& sig,
                                simnet::TimeUs t);
  /// Collective completion (after the rendezvous wait): adopt the merged
  /// clock of generation `gen`.
  void on_collective_complete(int chan, int rank, std::uint64_t gen);

  // --- one-sided accesses ---

  /// Put issue: records the access (in flight), scans for races, and runs
  /// the epoch-discipline rules (signal-overtakes-data). For kFused, `sig_off`
  /// names the 8-byte signal word and a second (atomic) record is created.
  PutHandles on_put(int origin, int space, int owner, std::uint64_t off,
                    std::uint64_t bytes, PutClass cls, std::uint64_t sig_off,
                    simnet::TimeUs t);
  /// Blocking get: read record, complete immediately.
  void on_get(int origin, int space, int owner, std::uint64_t off,
              std::uint64_t bytes, simnet::TimeUs t);
  /// Blocking atomic (8 bytes at `off`): atomic record, complete immediately.
  void on_atomic(int origin, int space, int owner, std::uint64_t off,
                 simnet::TimeUs t);
  /// Annotated local access to my own exposure region. `unapplied_overlap`
  /// is supplied by the caller (it owns the pending-delivery queue): a read
  /// overlapping an arrived-but-unapplied put is the missing-Win_sync bug.
  void on_local(int rank, int space, std::uint64_t off, std::uint64_t bytes,
                bool is_write, bool unapplied_overlap, simnet::TimeUs t);
  /// Signal wait (wait_until family): an atomic read of the watched words.
  void on_signal_wait(int rank, int space, std::uint64_t off,
                      std::uint64_t bytes, simnet::TimeUs t);

  // --- put completion ---

  /// Origin-side completion (flush/quiet/fence): every in-flight put by
  /// `origin` in `space` to `target` (-1 = all targets) becomes ordered at
  /// the origin's current clock. Completion is per-target: `flush(t1)` never
  /// discharges obligations to `t2`.
  void on_flush(int origin, int space, int target);
  /// Local-only completion (MPI_Win_flush_local): the origin's source
  /// buffers are reusable, but the puts are NOT remotely complete — they
  /// stay in flight (unordered before everything), still overtakeable by
  /// signals (W1) and still leaked if the rank finishes without a real
  /// flush/quiet/fence (W2). The only effect is diagnostic: later W1/W2
  /// reports name flush_local explicitly instead of claiming the put was
  /// never completed at all.
  void on_flush_local(int origin, int space, int target);
  /// Target-side observation: the pending delivery carrying `h` was applied
  /// to `owner`'s region; `owner` joins the origin's issue-time clock and the
  /// record completes.
  void on_applied(int space, int owner, const PutHandles& h);

  // --- run boundary ---

  /// End-of-run sweep (all bodies returned): ranks holding puts that were
  /// never completed nor observed get a missing-completion violation.
  void on_run_end();

  // --- results ---

  [[nodiscard]] bool has_violations() const { return !violations_.empty(); }
  [[nodiscard]] std::size_t violation_count() const {
    return violations_.size();
  }
  /// Per-rank violation counts (attributed to the detecting access's rank),
  /// for the metrics `violations` counter family.
  [[nodiscard]] const std::vector<std::uint64_t>& violation_counts() const {
    return per_rank_violations_;
  }
  /// Stored structured verdicts (capped at the same limit as report lines),
  /// in detection order — deterministic across backends/jobs/schedulers.
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Full multi-line report: header + one line per violation (capped), in
  /// detection order — deterministic across backends/jobs/schedulers.
  [[nodiscard]] std::string report() const;
  /// One-line annotation for deadlock/watchdog reports: in-progress
  /// collective generations with entered counts and missing ranks.
  [[nodiscard]] std::string deadlock_note() const;

 private:
  /// A vector clock stored as a shared dense baseline plus a sparse overlay.
  /// Dense per-rank clocks are O(ranks²) — 80 GB at the 100k-rank smoke test
  /// (the same wall util::PairMap removed from the runtime's FIFO state).
  /// Every collective here is world-wide, so each completed wave collapses
  /// all ranks onto one shared base vector (the merged wave clock, built once
  /// per wave); between collectives a rank's `delta` holds only components it
  /// advanced itself or learned point-to-point — O(neighbors), not O(ranks).
  /// Snapshots (wire messages, in-flight put records) are cheap Clock copies.
  struct Clock {
    std::shared_ptr<const std::vector<std::uint64_t>> base;
    /// Sorted by rank; each value strictly exceeds the base component.
    std::vector<std::pair<std::int32_t, std::uint64_t>> delta;
  };

  struct Rec {
    std::int32_t rank = -1;
    AccessKind kind = AccessKind::kPut;
    PutClass cls = PutClass::kData;
    bool in_flight = false;  ///< put not yet flushed/quieted nor observed
    bool applied = false;    ///< delivery applied at the target
    /// flush_local completed this put locally (origin buffer reusable) but
    /// not remotely; only sharpens W1/W2 diagnostics, never orders anything.
    bool locally_complete = false;
    std::uint64_t off = 0;
    std::uint64_t bytes = 0;
    /// Ordering clock: the component of `rank`'s clock that must be known
    /// (vc[observer][rank] >= order_clk) for this access to happen-before a
    /// later one. ~0 while a put is in flight.
    std::uint64_t order_clk = 0;
    simnet::TimeUs t = 0;
    /// Origin clock snapshot at issue (puts only; base is null otherwise);
    /// kept until the target applies the delivery, then freed.
    Clock vc;
  };
  struct Region {
    std::vector<Rec> recs;
    std::uint64_t overflow = 0;  ///< accesses dropped past history_limit_
  };
  struct Space {
    std::string name;
    std::vector<Region> regions;  ///< one per owner rank
  };
  struct InFlight {
    int space = -1;
    int owner = -1;
    std::uint32_t idx = kNoRec;
  };
  struct ChanSlot {
    std::uint64_t gen = ~0ull;
    /// Merged wave clock (dense base, empty delta): dominates every
    /// entrant's clock, so completion adopts it instead of joining.
    Clock merged;
  };
  struct Channel {
    std::string name;
    int clears_space = -1;
    std::uint64_t gen = 0;
    int entered = 0;
    CollSig expected;
    int first_rank = -1;
    simnet::TimeUs first_t = 0;
    std::vector<std::uint8_t> in_wave;  ///< ranks inside the current wave
    std::vector<std::uint64_t> merged;  ///< accumulating entrant clocks
    /// First entrant's base: later same-base entrants merge only their
    /// deltas (O(delta) instead of O(ranks) per entrant).
    std::shared_ptr<const std::vector<std::uint64_t>> wave_base;
    ChanSlot done[4];                   ///< sealed merges, ring like CollSlot
  };
  struct Wire {  ///< in-flight p2p clock snapshots for one (src,dst) pair
    std::uint64_t key = 0;  ///< (src << 32) | dst; wires_ is sorted by key
    std::vector<std::pair<std::uint64_t, Clock>> msgs;
  };

  /// Component `r` of clock `c`.
  [[nodiscard]] std::uint64_t clk(const Clock& c, int r) const;
  /// Raises component `r` of `c` to at least `v`.
  void set_clk(Clock& c, int r, std::uint64_t v);
  /// Materializes `c` as a dense vector (base with delta applied).
  [[nodiscard]] std::vector<std::uint64_t> dense(const Clock& c) const;
  void tick(int rank);
  void join(int rank, const Clock& other);
  [[nodiscard]] Wire& wire(int src, int dst);
  /// Scans `region` for conflicts with a new access, records the access,
  /// returns its record index (kNoRec when the history is full).
  std::uint32_t scan_and_record(int space, int owner, Rec rec);
  [[nodiscard]] bool conflicts(const Rec& a, const Rec& b) const;
  void add_violation(Violation v);
  [[nodiscard]] std::string where(int space, int owner) const;

  bool enabled_ = false;
  int nranks_ = 0;
  std::uint64_t history_limit_ = 1u << 16;
  /// Base shared by all clocks at run start (all zeros).
  std::shared_ptr<const std::vector<std::uint64_t>> zero_base_;
  std::vector<Clock> vc_;  ///< per-rank vector clocks
  std::vector<Space> spaces_;
  std::vector<Channel> channels_;
  std::vector<Wire> wires_;
  std::vector<std::vector<InFlight>> in_flight_;  ///< per origin rank
  std::vector<Violation> violations_;
  std::vector<std::uint64_t> per_rank_violations_;
  std::uint64_t suppressed_ = 0;  ///< violations past the report cap
};

/// Process-wide default for EngineOptions::check (initially false, or true
/// when the MSGROOF_CHECK environment variable is set non-zero — that is how
/// CI runs the whole test suite checker-enabled). CLI/bench `--check` flags
/// flip it on.
[[nodiscard]] bool default_check();
void set_default_check(bool on);

/// Process-wide default for the per-region shadow-history cap (initially
/// 65536). CLI/bench `--check-history N` flags override it.
[[nodiscard]] std::uint64_t default_check_history();
void set_default_check_history(std::uint64_t n);

/// Whether engines publish their verdicts to the CheckReportRegistry at run
/// end (initially false; the `--check-report PATH` flag flips it on along
/// with the checker itself).
[[nodiscard]] bool default_check_report();
void set_default_check_report(bool on);

/// Machine-readable JSON for a verdict list: schema tag
/// "msgroof.check_report.v1", a violation count, and one object per verdict
/// with every Violation field (times in microseconds, fixed 3-decimal
/// format). Schema-stable and test-pinned.
void write_check_report_json(const std::vector<Violation>& violations,
                             std::ostream& os);

/// Process-wide collection of every published run's verdicts, for the
/// `--check-report PATH` dump. Publishes arrive in nondeterministic order
/// under parallel sweeps, so the dump sorts violations lexicographically by
/// their full field tuple — the bytes are independent of backend, scheduler
/// and --jobs, like the metrics registry.
class CheckReportRegistry {
 public:
  static CheckReportRegistry& instance();

  void publish(const std::vector<Violation>& violations);
  void reset();
  [[nodiscard]] std::vector<Violation> sorted_violations() const;
  Status write_json(const std::string& path) const;

 private:
  CheckReportRegistry() = default;

  mutable std::mutex mu_;
  std::vector<Violation> violations_;
};

}  // namespace mrl::check
