#include "check/checker.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <tuple>
#include <utility>

namespace mrl::check {
namespace {

// Cap on stored violation lines. Detection (and the per-rank counters) keep
// going past the cap; the report just notes how many lines were suppressed.
constexpr std::size_t kMaxStoredViolations = 200;

std::string fmt_t(simnet::TimeUs t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fus", t);
  return buf;
}

std::string fmt_range(std::uint64_t off, std::uint64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%" PRIu64 ", %" PRIu64 ")", off,
                off + bytes);
  return buf;
}

// Signal-word traffic is exempt from atomic-vs-atomic conflicts: bare MPI
// signal puts, the atomic half of fused SHMEM put-with-signal, explicit
// atomics, and signal waits all model word-atomic hardware operations.
bool atomic_class(AccessKind k, PutClass c) {
  return k == AccessKind::kAtomic ||
         (k == AccessKind::kPut && c == PutClass::kSignal);
}

bool is_write(AccessKind k) {
  return k == AccessKind::kPut || k == AccessKind::kAtomic ||
         k == AccessKind::kLocalWrite;
}

}  // namespace

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::kPut:
      return "put";
    case AccessKind::kGet:
      return "get";
    case AccessKind::kAtomic:
      return "atomic";
    case AccessKind::kLocalRead:
      return "local_read";
    case AccessKind::kLocalWrite:
      return "local_write";
  }
  return "?";
}

void Checker::reset(int nranks) {
  nranks_ = nranks;
  zero_base_ = std::make_shared<const std::vector<std::uint64_t>>(
      static_cast<std::size_t>(nranks), 0);
  vc_.assign(static_cast<std::size_t>(nranks), Clock{zero_base_, {}});
  spaces_.clear();
  channels_.clear();
  wires_.clear();
  in_flight_.assign(static_cast<std::size_t>(nranks), {});
  violations_.clear();
  per_rank_violations_.assign(static_cast<std::size_t>(nranks), 0);
  suppressed_ = 0;
}

int Checker::add_space(std::string name) {
  Space s;
  s.name = std::move(name);
  s.regions.resize(static_cast<std::size_t>(nranks_));
  spaces_.push_back(std::move(s));
  return static_cast<int>(spaces_.size()) - 1;
}

int Checker::add_channel(std::string name, int clears_space) {
  Channel c;
  c.name = std::move(name);
  c.clears_space = clears_space;
  c.in_wave.assign(static_cast<std::size_t>(nranks_), 0);
  channels_.push_back(std::move(c));
  return static_cast<int>(channels_.size()) - 1;
}

std::uint64_t Checker::clk(const Clock& c, int r) const {
  const auto key = static_cast<std::int32_t>(r);
  const auto it = std::lower_bound(
      c.delta.begin(), c.delta.end(), key,
      [](const auto& e, std::int32_t k) { return e.first < k; });
  if (it != c.delta.end() && it->first == key) return it->second;
  return (*c.base)[static_cast<std::size_t>(r)];
}

void Checker::set_clk(Clock& c, int r, std::uint64_t v) {
  if (v <= (*c.base)[static_cast<std::size_t>(r)]) return;
  const auto key = static_cast<std::int32_t>(r);
  const auto it = std::lower_bound(
      c.delta.begin(), c.delta.end(), key,
      [](const auto& e, std::int32_t k) { return e.first < k; });
  if (it != c.delta.end() && it->first == key) {
    it->second = std::max(it->second, v);
  } else {
    c.delta.insert(it, {key, v});
  }
}

std::vector<std::uint64_t> Checker::dense(const Clock& c) const {
  std::vector<std::uint64_t> out = *c.base;
  for (const auto& [r, v] : c.delta) {
    auto& slot = out[static_cast<std::size_t>(r)];
    slot = std::max(slot, v);
  }
  return out;
}

void Checker::tick(int rank) {
  Clock& c = vc_[static_cast<std::size_t>(rank)];
  set_clk(c, rank, clk(c, rank) + 1);
}

void Checker::join(int rank, const Clock& other) {
  Clock& mine = vc_[static_cast<std::size_t>(rank)];
  if (mine.base == other.base) {
    // Common case: both clocks sit on the same collective-wave baseline, so
    // only the sparse overlays differ.
    for (const auto& [r, v] : other.delta) set_clk(mine, r, v);
    return;
  }
  // Bases diverged (a snapshot crossing a collective boundary): fall back to
  // a dense elementwise max, which becomes this rank's private base.
  auto merged = std::make_shared<std::vector<std::uint64_t>>(dense(mine));
  for (int r = 0; r < nranks_; ++r) {
    auto& slot = (*merged)[static_cast<std::size_t>(r)];
    slot = std::max(slot, clk(other, r));
  }
  mine.base = std::move(merged);
  mine.delta.clear();
}

Checker::Wire& Checker::wire(int src, int dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src))
                             << 32) |
                            static_cast<std::uint32_t>(dst);
  const auto it = std::lower_bound(
      wires_.begin(), wires_.end(), key,
      [](const Wire& w, std::uint64_t k) { return w.key < k; });
  if (it != wires_.end() && it->key == key) return *it;
  Wire w;
  w.key = key;
  return *wires_.insert(it, std::move(w));
}

void Checker::add_violation(Violation v) {
  if (v.rank_a >= 0 && v.rank_a < nranks_) {
    ++per_rank_violations_[static_cast<std::size_t>(v.rank_a)];
  }
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(std::move(v));
  } else {
    ++suppressed_;
  }
}

std::string Checker::where(int space, int owner) const {
  std::string s = spaces_[static_cast<std::size_t>(space)].name;
  s += "@rank";
  s += std::to_string(owner);
  return s;
}

bool Checker::conflicts(const Rec& a, const Rec& b) const {
  if (a.rank == b.rank) return false;
  // Empty ranges (e.g. the data half of a pure-signal put_signal with zero
  // payload bytes) touch no memory and cannot race.
  if (a.bytes == 0 || b.bytes == 0) return false;
  if (a.off >= b.off + b.bytes || b.off >= a.off + a.bytes) return false;
  if (!is_write(a.kind) && !is_write(b.kind)) return false;
  if (atomic_class(a.kind, a.cls) && atomic_class(b.kind, b.cls)) return false;
  return true;
}

std::uint32_t Checker::scan_and_record(int space, int owner, Rec rec) {
  Region& region =
      spaces_[static_cast<std::size_t>(space)].regions[static_cast<std::size_t>(
          owner)];
  const Clock& observer_vc = vc_[static_cast<std::size_t>(rec.rank)];
  // First-divergence reporting: with k unordered conflicting writers the
  // full pair set is quadratic and unreadable. Records are appended in
  // global virtual-time order, so the first unordered conflict in scan
  // order is the earliest conflicting endpoint — report that one pair per
  // new access and stop.
  for (const Rec& old : region.recs) {
    if (!conflicts(old, rec)) continue;
    // old happens-before the new access iff old has completed and the new
    // access's rank already knows old.rank's clock past old's order point.
    const bool ordered =
        !old.in_flight && old.order_clk <= clk(observer_vc, old.rank);
    if (ordered) continue;
    Violation viol;
    viol.kind = "race";
    viol.space = where(space, owner);
    viol.rank_a = rec.rank;
    viol.rank_b = old.rank;
    viol.t_a = rec.t;
    viol.t_b = old.t;
    viol.off_a = rec.off;
    viol.bytes_a = rec.bytes;
    viol.off_b = old.off;
    viol.bytes_b = old.bytes;
    std::string v = "race on ";
    v += viol.space;
    v += ": ";
    v += to_string(rec.kind);
    v += " by rank " + std::to_string(rec.rank) + " @" + fmt_t(rec.t) +
         " bytes " + fmt_range(rec.off, rec.bytes);
    v += " conflicts with ";
    v += to_string(old.kind);
    if (old.in_flight) {
      v += old.locally_complete ? " (in flight; flush_local only)"
                                : " (in flight)";
    }
    v += " by rank " + std::to_string(old.rank) + " @" + fmt_t(old.t) +
         " bytes " + fmt_range(old.off, old.bytes);
    v += " — unordered in happens-before";
    viol.text = std::move(v);
    add_violation(std::move(viol));
    break;
  }
  if (region.recs.size() >=
      static_cast<std::size_t>(history_limit_)) {
    ++region.overflow;
    return kNoRec;
  }
  region.recs.push_back(std::move(rec));
  return static_cast<std::uint32_t>(region.recs.size()) - 1;
}

void Checker::on_send(int src, int dst, std::uint64_t seq) {
  if (!enabled_) return;
  tick(src);
  wire(src, dst).msgs.emplace_back(seq, vc_[static_cast<std::size_t>(src)]);
}

void Checker::on_recv(int dst, int src, std::uint64_t seq) {
  if (!enabled_) return;
  Wire& w = wire(src, dst);
  // Keyed lookup, not front-pop: tag-filtered matching can consume the
  // wire out of FIFO order.
  for (std::size_t i = 0; i < w.msgs.size(); ++i) {
    if (w.msgs[i].first != seq) continue;
    join(dst, w.msgs[i].second);
    w.msgs.erase(w.msgs.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  tick(dst);
}

CollEnter Checker::on_collective_enter(int chan, int rank, const CollSig& sig,
                                       simnet::TimeUs t) {
  CollEnter out;
  if (!enabled_) return out;
  Channel& c = channels_[static_cast<std::size_t>(chan)];
  out.gen = c.gen;
  if (c.entered == 0) {
    c.expected = sig;
    c.first_rank = rank;
    c.first_t = t;
  } else if (std::strcmp(c.expected.kind, sig.kind) != 0 ||
             c.expected.root != sig.root || c.expected.bytes != sig.bytes) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "collective mismatch on %s (gen %" PRIu64
                  "): rank %d @%s entered %s(root=%d, bytes=%" PRIu64
                  ") but rank %d @%s entered %s(root=%d, bytes=%" PRIu64 ")",
                  c.name.c_str(), c.gen, rank, fmt_t(t).c_str(), sig.kind,
                  sig.root, sig.bytes, c.first_rank,
                  fmt_t(c.first_t).c_str(), c.expected.kind, c.expected.root,
                  c.expected.bytes);
    Violation viol;
    viol.kind = "collective_mismatch";
    viol.space = c.name;
    viol.rank_a = rank;
    viol.rank_b = c.first_rank;
    viol.t_a = t;
    viol.t_b = c.first_t;
    viol.bytes_a = sig.bytes;
    viol.bytes_b = c.expected.bytes;
    viol.text = buf;
    add_violation(std::move(viol));
    out.ok = false;
    return out;
  }
  tick(rank);
  const Clock& mine = vc_[static_cast<std::size_t>(rank)];
  if (c.entered == 0) {
    // First entrant seeds the wave merge densely; same-base followers (the
    // norm — everyone shares the previous wave's baseline) then cost only
    // their delta sizes, keeping a wave at O(ranks) total, not O(ranks²).
    c.merged = dense(mine);
    c.wave_base = mine.base;
  } else if (mine.base == c.wave_base) {
    for (const auto& [r, v] : mine.delta) {
      auto& slot = c.merged[static_cast<std::size_t>(r)];
      slot = std::max(slot, v);
    }
  } else {
    for (int r = 0; r < nranks_; ++r) {
      auto& slot = c.merged[static_cast<std::size_t>(r)];
      slot = std::max(slot, clk(mine, r));
    }
  }
  c.in_wave[static_cast<std::size_t>(rank)] = 1;
  ++c.entered;
  if (c.entered == nranks_) {
    ChanSlot& slot = c.done[c.gen % 4];
    slot.gen = c.gen;
    slot.merged.base = std::make_shared<const std::vector<std::uint64_t>>(
        std::move(c.merged));
    slot.merged.delta.clear();
    c.merged = {};
    c.wave_base = nullptr;
    std::fill(c.in_wave.begin(), c.in_wave.end(), std::uint8_t{0});
    c.entered = 0;
    ++c.gen;
    if (c.clears_space >= 0) {
      // Global RMA sync (fence / SHMEM barrier): every put on this space is
      // complete, and the history restarts — nothing before the sync can
      // race with anything after it. The runtime applied all pending
      // deliveries before this hook ran, so no record handles survive.
      Space& sp = spaces_[static_cast<std::size_t>(c.clears_space)];
      for (Region& region : sp.regions) region.recs.clear();
      for (auto& fl : in_flight_) {
        fl.erase(std::remove_if(fl.begin(), fl.end(),
                                [&](const InFlight& f) {
                                  return f.space == c.clears_space;
                                }),
                 fl.end());
      }
    }
  }
  return out;
}

void Checker::on_collective_complete(int chan, int rank, std::uint64_t gen) {
  if (!enabled_) return;
  Channel& c = channels_[static_cast<std::size_t>(chan)];
  const ChanSlot& slot = c.done[gen % 4];
  if (slot.gen == gen) {
    // The merged wave clock dominates this rank's: the rank was blocked
    // since entering, and the only mid-wave mutation — an on_applied join —
    // injects some origin's issue-time snapshot, which that origin's own
    // entry clock (already merged) dominates. So adopt the wave clock as the
    // new shared baseline instead of joining: O(1), and it is exactly this
    // collapse that keeps every rank's delta sparse between collectives.
    vc_[static_cast<std::size_t>(rank)] = Clock{slot.merged.base, {}};
  }
  tick(rank);
}

PutHandles Checker::on_put(int origin, int space, int owner,
                           std::uint64_t off, std::uint64_t bytes,
                           PutClass cls, std::uint64_t sig_off,
                           simnet::TimeUs t) {
  PutHandles h;
  if (!enabled_) return h;

  // Epoch discipline before recording: a signal issued while earlier data
  // puts to the same target are still in flight may overtake them (MPI RMA
  // and SHMEM both order signal delivery only after flush/quiet).
  if (cls == PutClass::kSignal || cls == PutClass::kFused) {
    for (const InFlight& f : in_flight_[static_cast<std::size_t>(origin)]) {
      if (f.space != space || f.owner != owner || f.idx == kNoRec) continue;
      const Rec& prior = spaces_[static_cast<std::size_t>(space)]
                             .regions[static_cast<std::size_t>(owner)]
                             .recs[f.idx];
      if (!prior.in_flight || prior.cls != PutClass::kData) continue;
      Violation viol;
      viol.kind = "signal_overtake";
      viol.space = where(space, owner);
      viol.rank_a = origin;
      viol.rank_b = owner;
      viol.t_a = t;
      viol.t_b = prior.t;
      viol.off_a = off;
      viol.bytes_a = bytes;
      viol.off_b = prior.off;
      viol.bytes_b = prior.bytes;
      std::string v = cls == PutClass::kSignal
                          ? "sync misuse: signal put by rank "
                          : "sync misuse: put_signal by rank ";
      v += std::to_string(origin) + " @" + fmt_t(t) + " to " +
           viol.space + " may overtake unflushed data put bytes " +
           fmt_range(prior.off, prior.bytes) + " @" + fmt_t(prior.t);
      if (prior.locally_complete) {
        v += " (flush_local completed it locally only; it does not order "
             "remote delivery)";
      }
      v += cls == PutClass::kSignal ? " — flush before signaling"
                                    : " — quiet before put_signal";
      viol.text = std::move(v);
      add_violation(std::move(viol));
      break;  // one diagnostic per signal op, not one per pending put
    }
  }

  tick(origin);
  Rec rec;
  rec.rank = origin;
  rec.kind = AccessKind::kPut;
  rec.cls = cls;
  rec.in_flight = true;
  rec.off = off;
  rec.bytes = bytes;
  rec.order_clk = ~0ull;
  rec.t = t;
  rec.vc = vc_[static_cast<std::size_t>(origin)];  // cheap: shared base
  h.data = scan_and_record(space, owner, std::move(rec));
  if (h.data != kNoRec) {
    in_flight_[static_cast<std::size_t>(origin)].push_back(
        {space, owner, h.data});
  }

  if (cls == PutClass::kFused) {
    Rec sig;
    sig.rank = origin;
    sig.kind = AccessKind::kAtomic;
    sig.cls = PutClass::kFused;
    sig.in_flight = true;
    sig.off = sig_off;
    sig.bytes = 8;
    sig.order_clk = ~0ull;
    sig.t = t;
    sig.vc = vc_[static_cast<std::size_t>(origin)];
    h.sig = scan_and_record(space, owner, std::move(sig));
    if (h.sig != kNoRec) {
      in_flight_[static_cast<std::size_t>(origin)].push_back(
          {space, owner, h.sig});
    }
  }
  return h;
}

void Checker::on_get(int origin, int space, int owner, std::uint64_t off,
                     std::uint64_t bytes, simnet::TimeUs t) {
  if (!enabled_) return;
  tick(origin);
  Rec rec;
  rec.rank = origin;
  rec.kind = AccessKind::kGet;
  rec.off = off;
  rec.bytes = bytes;
  rec.order_clk = clk(vc_[static_cast<std::size_t>(origin)], origin);
  rec.t = t;
  scan_and_record(space, owner, std::move(rec));
}

void Checker::on_atomic(int origin, int space, int owner, std::uint64_t off,
                        simnet::TimeUs t) {
  if (!enabled_) return;
  tick(origin);
  Rec rec;
  rec.rank = origin;
  rec.kind = AccessKind::kAtomic;
  rec.off = off;
  rec.bytes = 8;
  rec.order_clk = clk(vc_[static_cast<std::size_t>(origin)], origin);
  rec.t = t;
  scan_and_record(space, owner, std::move(rec));
}

void Checker::on_local(int rank, int space, std::uint64_t off,
                       std::uint64_t bytes, bool is_write_access,
                       bool unapplied_overlap, simnet::TimeUs t) {
  if (!enabled_) return;
  if (unapplied_overlap && !is_write_access) {
    Violation viol;
    viol.kind = "unapplied_read";
    viol.space = where(space, rank);
    viol.rank_a = rank;
    viol.t_a = t;
    viol.off_a = off;
    viol.bytes_a = bytes;
    viol.text = "sync misuse: local_read by rank " + std::to_string(rank) +
                " @" + fmt_t(t) + " of " + viol.space + " bytes " +
                fmt_range(off, bytes) +
                " overlaps an arrived but unapplied put — missing "
                "MPI_Win_sync / wait before reading";
    add_violation(std::move(viol));
  }
  tick(rank);
  Rec rec;
  rec.rank = rank;
  rec.kind = is_write_access ? AccessKind::kLocalWrite : AccessKind::kLocalRead;
  rec.off = off;
  rec.bytes = bytes;
  rec.order_clk = clk(vc_[static_cast<std::size_t>(rank)], rank);
  rec.t = t;
  scan_and_record(space, rank, std::move(rec));
}

void Checker::on_signal_wait(int rank, int space, std::uint64_t off,
                             std::uint64_t bytes, simnet::TimeUs t) {
  if (!enabled_) return;
  tick(rank);
  Rec rec;
  rec.rank = rank;
  rec.kind = AccessKind::kAtomic;  // signal waits model atomic word loads
  rec.off = off;
  rec.bytes = bytes;
  rec.order_clk = clk(vc_[static_cast<std::size_t>(rank)], rank);
  rec.t = t;
  scan_and_record(space, rank, std::move(rec));
}

void Checker::on_flush(int origin, int space, int target) {
  if (!enabled_) return;
  // Tick first so the order point is strictly newer than any clock snapshot
  // that escaped via earlier sends: only post-flush knowledge orders the put.
  tick(origin);
  const std::uint64_t order =
      clk(vc_[static_cast<std::size_t>(origin)], origin);
  auto& fl = in_flight_[static_cast<std::size_t>(origin)];
  for (std::size_t i = 0; i < fl.size();) {
    const InFlight& f = fl[i];
    if (f.space != space || (target >= 0 && f.owner != target)) {
      ++i;
      continue;
    }
    Rec& rec = spaces_[static_cast<std::size_t>(f.space)]
                   .regions[static_cast<std::size_t>(f.owner)]
                   .recs[f.idx];
    if (rec.in_flight) {
      rec.in_flight = false;
      rec.order_clk = std::min(rec.order_clk, order);
    }
    fl.erase(fl.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void Checker::on_flush_local(int origin, int space, int target) {
  if (!enabled_) return;
  // Deliberately no tick, no order-clock stamp, no in-flight erasure:
  // MPI_Win_flush_local licenses reuse of the origin's source buffers (which
  // the checker never tracks) and nothing else. The puts remain in flight —
  // a later signal still overtakes them (W1) and finishing without a real
  // flush still leaks them (W2). We only mark the records so those verdicts
  // can name flush_local instead of claiming no completion call was made.
  for (const InFlight& f : in_flight_[static_cast<std::size_t>(origin)]) {
    if (f.space != space || (target >= 0 && f.owner != target)) continue;
    if (f.idx == kNoRec) continue;
    Rec& rec = spaces_[static_cast<std::size_t>(f.space)]
                   .regions[static_cast<std::size_t>(f.owner)]
                   .recs[f.idx];
    if (rec.in_flight) rec.locally_complete = true;
  }
}

void Checker::on_applied(int space, int owner, const PutHandles& h) {
  if (!enabled_) return;
  Region& region =
      spaces_[static_cast<std::size_t>(space)].regions[static_cast<std::size_t>(
          owner)];
  const std::uint32_t handles[2] = {h.data, h.sig};
  for (std::uint32_t idx : handles) {
    if (idx == kNoRec) continue;
    Rec& rec = region.recs[idx];
    rec.applied = true;
    if (rec.vc.base != nullptr) {
      // The target observes the delivery: it now knows everything the origin
      // knew when it issued the put.
      join(owner, rec.vc);
      const std::uint64_t issue_clk = clk(rec.vc, rec.rank);
      rec.order_clk = std::min(rec.order_clk, issue_clk);
      rec.vc = Clock{};
    }
    if (rec.in_flight) {
      rec.in_flight = false;
      auto& fl = in_flight_[static_cast<std::size_t>(rec.rank)];
      fl.erase(std::remove_if(fl.begin(), fl.end(),
                              [&](const InFlight& f) {
                                return f.space == space && f.owner == owner &&
                                       f.idx == idx;
                              }),
               fl.end());
    }
  }
}

void Checker::on_run_end() {
  if (!enabled_) return;
  for (int origin = 0; origin < nranks_; ++origin) {
    const auto& fl = in_flight_[static_cast<std::size_t>(origin)];
    for (const InFlight& f : fl) {
      const Rec& rec = spaces_[static_cast<std::size_t>(f.space)]
                           .regions[static_cast<std::size_t>(f.owner)]
                           .recs[f.idx];
      if (!rec.in_flight) continue;
      Violation viol;
      viol.kind = "missing_completion";
      viol.space = where(f.space, f.owner);
      viol.rank_a = origin;
      viol.rank_b = f.owner;
      viol.t_a = rec.t;
      viol.off_a = rec.off;
      viol.bytes_a = rec.bytes;
      viol.text = "sync misuse: put by rank " + std::to_string(origin) +
                  " @" + fmt_t(rec.t) + " to " + viol.space + " bytes " +
                  fmt_range(rec.off, rec.bytes) +
                  (rec.locally_complete
                       ? " was completed only locally (flush_local is "
                         "not remote completion)"
                       : " was never completed") +
                  " — missing flush/quiet/fence before finishing";
      add_violation(std::move(viol));
    }
  }
}

std::string Checker::report() const {
  std::string out = "RMA checker: " +
                    std::to_string(violations_.size() + suppressed_) +
                    " violation(s)";
  std::uint64_t dropped = 0;
  for (const Space& sp : spaces_) {
    for (const Region& region : sp.regions) dropped += region.overflow;
  }
  if (dropped != 0) {
    out += " (history limit reached: " + std::to_string(dropped) +
           " accesses unchecked; raise --check-history)";
  }
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    out += "\n  [" + std::to_string(i + 1) + "] " + violations_[i].text;
  }
  if (suppressed_ != 0) {
    out += "\n  ... " + std::to_string(suppressed_) + " more suppressed";
  }
  return out;
}

std::string Checker::deadlock_note() const {
  std::string out;
  for (const Channel& c : channels_) {
    if (c.entered == 0) continue;
    out += "\n  collective " + c.name + " gen " + std::to_string(c.gen) +
           ": " + std::to_string(c.entered) + "/" + std::to_string(nranks_) +
           " entered (" + c.expected.kind + "), waiting for ranks";
    int listed = 0;
    for (int r = 0; r < nranks_; ++r) {
      if (c.in_wave[static_cast<std::size_t>(r)]) continue;
      if (listed == 8) {
        out += " ...";
        break;
      }
      out += (listed == 0 ? " " : ", ") + std::to_string(r);
      ++listed;
    }
  }
  return out;
}

namespace {
std::atomic<bool> g_default_check{[] {
  const char* env = std::getenv("MSGROOF_CHECK");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}()};
std::atomic<std::uint64_t> g_default_check_history{1u << 16};
}  // namespace

bool default_check() { return g_default_check.load(std::memory_order_relaxed); }
void set_default_check(bool on) {
  g_default_check.store(on, std::memory_order_relaxed);
}
std::uint64_t default_check_history() {
  return g_default_check_history.load(std::memory_order_relaxed);
}
void set_default_check_history(std::uint64_t n) {
  g_default_check_history.store(n, std::memory_order_relaxed);
}

namespace {
std::atomic<bool> g_default_check_report{false};

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (ch == '\n') {
      os << "\\n";
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      os << ' ';
    } else {
      os << ch;
    }
  }
  os << '"';
}

std::string fmt_us(simnet::TimeUs t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}
}  // namespace

bool default_check_report() {
  return g_default_check_report.load(std::memory_order_relaxed);
}
void set_default_check_report(bool on) {
  g_default_check_report.store(on, std::memory_order_relaxed);
}

void write_check_report_json(const std::vector<Violation>& violations,
                             std::ostream& os) {
  os << "{\n  \"schema\": \"msgroof.check_report.v1\",\n"
     << "  \"violation_count\": " << violations.size() << ",\n"
     << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"kind\": ";
    json_string(os, v.kind);
    os << ", \"space\": ";
    json_string(os, v.space);
    os << ", \"rank_a\": " << v.rank_a << ", \"rank_b\": " << v.rank_b
       << ", \"t_a_us\": " << fmt_us(v.t_a) << ", \"t_b_us\": " << fmt_us(v.t_b)
       << ", \"off_a\": " << v.off_a << ", \"bytes_a\": " << v.bytes_a
       << ", \"off_b\": " << v.off_b << ", \"bytes_b\": " << v.bytes_b
       << ", \"text\": ";
    json_string(os, v.text);
    os << "}";
  }
  os << (violations.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

CheckReportRegistry& CheckReportRegistry::instance() {
  static CheckReportRegistry* const inst = new CheckReportRegistry();
  return *inst;
}

void CheckReportRegistry::publish(const std::vector<Violation>& violations) {
  std::lock_guard<std::mutex> lk(mu_);
  violations_.insert(violations_.end(), violations.begin(), violations.end());
}

void CheckReportRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  violations_.clear();
}

std::vector<Violation> CheckReportRegistry::sorted_violations() const {
  std::vector<Violation> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = violations_;
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.kind, a.space, a.rank_a, a.rank_b, a.t_a, a.t_b, a.off_a,
                    a.bytes_a, a.off_b, a.bytes_b, a.text) <
           std::tie(b.kind, b.space, b.rank_a, b.rank_b, b.t_a, b.t_b, b.off_a,
                    b.bytes_a, b.off_b, b.bytes_b, b.text);
  });
  return out;
}

Status CheckReportRegistry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return Status(ErrorCode::kNotFound,
                  "cannot open check-report path " + path);
  }
  write_check_report_json(sorted_violations(), f);
  if (!f.good()) {
    return Status(ErrorCode::kNotFound,
                  "short write to check-report path " + path);
  }
  return Status::ok();
}

}  // namespace mrl::check
