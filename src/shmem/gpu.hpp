// GPU execution model: maps data-parallel device work to virtual time.
//
// A PE is a whole GPU. Compute is charged as the max of the bandwidth time
// (bytes touched / device memory bandwidth) and the occupancy-limited time
// (ceil(items / concurrent lanes) * per-item latency) — the usual
// throughput/latency envelope of a streaming kernel. This is what gives the
// paper's "each GPU can have eighty thread blocks scheduled simultaneously"
// its 320x-per-node parallelism advantage over serial CPU ranks (Sec III-A).
#pragma once

#include <cstdint>

#include "simnet/platform.hpp"

namespace mrl::shmem {

class GpuExecModel {
 public:
  explicit GpuExecModel(const simnet::ComputeModel& cm) : cm_(&cm) {}

  /// Time to stream `bytes` through device memory.
  [[nodiscard]] double stream_time_us(std::uint64_t bytes) const;

  /// Time for `items` independent work items of `item_us` each, executed
  /// `lanes` at a time.
  [[nodiscard]] double occupancy_time_us(std::uint64_t items,
                                         double item_us) const;

  /// Streaming kernel: max of the two envelopes.
  [[nodiscard]] double kernel_time_us(std::uint64_t bytes_touched,
                                      std::uint64_t items,
                                      double item_us) const;

  [[nodiscard]] int lanes() const { return cm_->lanes; }

 private:
  const simnet::ComputeModel* cm_;
};

}  // namespace mrl::shmem
