// minishmem: an NVSHMEM-shaped one-sided runtime on the msgroof engine.
//
// PEs own slices of a symmetric heap; senders write directly into remote
// slices with nonblocking put-with-signal (ONE operation per message — the
// key cost asymmetry vs. 4-op one-sided MPI), receivers block on signal
// words with wait_until / wait_until_all / wait_until_any, and inserts use
// remote atomics. Modeled after the paper's NVSHMEM usage:
//   nvshmem_double_put_signal_nbi, nvshmem_uint64_wait_until_{all,any},
//   nvshmem_quiet, atomic compare-and-swap.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "runtime/engine.hpp"
#include "simnet/loggp.hpp"
#include "simnet/trace.hpp"
#include "util/pair_map.hpp"

namespace mrl::shmem {

class Ctx;

/// Typed offset into the symmetric heap: the same offset is valid on every
/// PE (the defining property of SHMEM symmetric allocation).
template <typename T>
struct Sym {
  std::uint64_t offset = 0;

  [[nodiscard]] Sym<T> at(std::uint64_t index) const {
    return Sym<T>{offset + index * sizeof(T)};
  }
};

/// Shared world state: per-PE heap arenas, pending deliveries, rendezvous.
class World {
 public:
  struct Options {
    std::uint64_t heap_bytes = 64ull << 20;  ///< symmetric heap per PE
    /// When false, put payloads are not captured/applied (timing only) —
    /// used by bandwidth sweeps whose data content is irrelevant.
    bool capture_payloads = true;
  };

  /// Runs `body` as an SPMD SHMEM program over the engine's ranks (PEs).
  static runtime::RunResult run(runtime::Engine& engine,
                                const std::function<void(Ctx&)>& body,
                                Options opt);
  static runtime::RunResult run(runtime::Engine& engine,
                                const std::function<void(Ctx&)>& body) {
    return run(engine, body, Options{});
  }

 private:
  friend class Ctx;

  World(runtime::Engine& engine, Options opt);

  struct Delivery {
    std::uint64_t off = 0;
    std::uint64_t data_bytes = 0;
    std::vector<std::byte> data;  ///< empty when payload capture is off
    // Optional fused signal (put-with-signal): applied atomically with data.
    bool has_signal = false;
    std::uint64_t sig_off = 0;
    std::uint64_t sig_val = 0;
    simnet::TimeUs arrival = 0;
    std::uint64_t seq = 0;
    /// Checker shadow-record handles, reported back at application.
    std::uint32_t chk_data = check::kNoRec;
    std::uint32_t chk_sig = check::kNoRec;
  };
  struct Outstanding {
    int target = -1;
    simnet::TimeUs remote_done = 0;
    simnet::TimeUs local_done = 0;
  };
  struct CollSlot {
    std::uint64_t gen = ~0ULL;
    simnet::TimeUs done_at = 0;
    double sum = 0;
  };

  /// Applies all deliveries for `pe` with arrival <= cutoff, in order.
  void apply_locked(int pe, simnet::TimeUs cutoff);

  /// Lazily registers the symmetric heap's shadow space and the barrier
  /// channel with the RMA checker (must run inside a perform body; the
  /// checker resets after World construction, at engine-run start).
  void chk_register_locked();

  simnet::TimeUs clamp_fifo(int src, int dst, simnet::TimeUs arrival);

  runtime::Engine& engine_;
  Options opt_;
  int npes_;
  std::vector<std::vector<std::byte>> heap_;        // per PE arena
  std::uint64_t heap_used_ = 0;                     // symmetric bump pointer
  // Allocation log: the k-th collective allocate() on every PE must return
  // the same offset; entries are (bytes, offset).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> alloc_log_;
  std::vector<std::vector<Delivery>> pending_;      // per destination PE
  /// Total deliveries ever pushed toward each PE — the WaitGate counter for
  /// signal waits (Ctx::wait_local, DESIGN.md §12). Sized once, so entries
  /// have stable addresses for the World's lifetime.
  std::vector<std::uint64_t> delivery_pushes_;
  std::vector<std::vector<Outstanding>> outstanding_;  // per origin PE
  // Keyed (src, dst); sparse above PairMap::kDenseRanks so large worlds
  // don't materialize O(P^2) channel state.
  util::PairMap<simnet::TimeUs> fifo_last_;
  std::uint64_t seq_ = 0;

  // barrier_all rendezvous
  std::uint64_t gen_ = 0;
  int entered_ = 0;
  simnet::TimeUs max_enter_ = 0;
  double acc_sum_ = 0;
  CollSlot done_[4];

  // RMA-checker registration: the symmetric heap's shadow space and the
  // barrier channel (barrier_all implies quiet, so its completion clears
  // the space's access history).
  int chk_space_ = -1;
  int chk_chan_ = -1;
};

/// Per-PE handle (the `Ctx&` each PE body receives).
class Ctx {
 public:
  [[nodiscard]] int pe() const { return rank_->id(); }
  [[nodiscard]] int n_pes() const { return world_->npes_; }
  [[nodiscard]] simnet::TimeUs now() const { return rank_->now(); }
  /// Charges local compute virtual time (scaled up on fault-injected
  /// straggler ranks).
  void compute(double us) { rank_->advance(us * rank_->compute_scale()); }
  [[nodiscard]] runtime::Rank& rank_ctx() { return *rank_; }

  /// Collective symmetric allocation (all PEs must call in the same order
  /// with the same size). Memory is zero-initialized.
  template <typename T>
  Sym<T> allocate(std::uint64_t count) {
    return Sym<T>{alloc_bytes(count * sizeof(T), alignof(T))};
  }

  /// Local address of a symmetric object on this PE.
  template <typename T>
  [[nodiscard]] T* local(Sym<T> s) {
    return reinterpret_cast<T*>(heap_base() + s.offset);
  }
  template <typename T>
  [[nodiscard]] const T* local(Sym<T> s) const {
    return reinterpret_cast<const T*>(heap_base() + s.offset);
  }

  /// Nonblocking put of `count` elements into `dest` on `target_pe`.
  template <typename T>
  void put_nbi(Sym<T> dest, const T* src, std::uint64_t count, int target_pe) {
    put_bytes_nbi(dest.offset, src, count * sizeof(T), target_pe,
                  /*sig_off=*/0, /*sig_val=*/0, /*has_signal=*/false);
  }

  /// Fused put-with-signal: data lands, then `sig` is set to `sig_val`,
  /// visible atomically to waits on the target. ONE runtime operation.
  template <typename T>
  void put_signal_nbi(Sym<T> dest, const T* src, std::uint64_t count,
                      Sym<std::uint64_t> sig, std::uint64_t sig_val,
                      int target_pe) {
    put_bytes_nbi(dest.offset, src, count * sizeof(T), target_pe, sig.offset,
                  sig_val, /*has_signal=*/true);
  }

  /// Blocks until my local `sig` equals `val`.
  void wait_until(Sym<std::uint64_t> sig, std::uint64_t val);

  /// Blocks until some unmasked (status[i]==0) entry of sigs[0..n) equals
  /// `val`; returns its index. Mirrors nvshmem_uint64_wait_until_any.
  std::size_t wait_until_any(Sym<std::uint64_t> sigs, std::size_t n,
                             const std::int32_t* status, std::uint64_t val);

  /// Blocks until every unmasked entry equals `val`.
  void wait_until_all(Sym<std::uint64_t> sigs, std::size_t n,
                      const std::int32_t* status, std::uint64_t val);

  /// Remote completion of all my outstanding nonblocking ops.
  void quiet();

  /// Blocking remote atomics (return the previous value).
  std::uint64_t atomic_compare_swap(Sym<std::uint64_t> target,
                                    std::uint64_t compare, std::uint64_t value,
                                    int target_pe);
  std::uint64_t atomic_fetch_add(Sym<std::uint64_t> target, std::uint64_t add,
                                 int target_pe);

  /// Blocking get (round trip).
  template <typename T>
  void get(T* dest, Sym<T> src, std::uint64_t count, int target_pe) {
    get_bytes(dest, src.offset, count * sizeof(T), target_pe);
  }

  void barrier_all();
  double sum_all(double v);  ///< allreduce-sum convenience

  /// RMA-checker annotations for direct loads/stores of my own
  /// symmetric-heap memory (free no-ops unless --check is on). A read
  /// overlapping an arrived-but-unapplied delivery is the missing-wait bug.
  template <typename T>
  void local_read(Sym<T> s, std::uint64_t count = 1) {
    local_access(s.offset, count * sizeof(T), /*is_write=*/false);
  }
  template <typename T>
  void local_write(Sym<T> s, std::uint64_t count = 1) {
    local_access(s.offset, count * sizeof(T), /*is_write=*/true);
  }

 private:
  friend class World;
  Ctx(World* world, runtime::Rank* rank) : world_(world), rank_(rank) {}

  [[nodiscard]] std::byte* heap_base() {
    return world_->heap_[static_cast<std::size_t>(pe())].data();
  }
  [[nodiscard]] const std::byte* heap_base() const {
    return world_->heap_[static_cast<std::size_t>(pe())].data();
  }

  [[nodiscard]] const simnet::LogGP& params() const;

  std::uint64_t alloc_bytes(std::uint64_t bytes, std::uint64_t align);
  void put_bytes_nbi(std::uint64_t dest_off, const void* src,
                     std::uint64_t bytes, int target_pe, std::uint64_t sig_off,
                     std::uint64_t sig_val, bool has_signal);
  void get_bytes(void* dest, std::uint64_t src_off, std::uint64_t bytes,
                 int target_pe);
  std::uint64_t atomic_rmw(std::uint64_t target_off, std::uint64_t operand,
                           std::uint64_t compare, bool is_cas, int target_pe);

  /// Shared wait loop: re-applies arrivals until `pred` holds locally.
  void wait_local(const char* what, const std::function<bool()>& pred);

  double sum_all_kind(const char* kind, double v);
  void local_access(std::uint64_t off, std::uint64_t bytes, bool is_write);
  void note_signal_wait(std::uint64_t off, std::uint64_t bytes);

  World* world_;
  runtime::Rank* rank_;
  int allocs_done_ = 0;
};

}  // namespace mrl::shmem
