#include "shmem/shmem.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::shmem {

World::World(runtime::Engine& engine, Options opt)
    : engine_(engine), opt_(opt), npes_(engine.nranks()) {
  heap_.resize(static_cast<std::size_t>(npes_));
  for (auto& h : heap_) h.assign(opt_.heap_bytes, std::byte{0});
  pending_.resize(static_cast<std::size_t>(npes_));
  delivery_pushes_.resize(static_cast<std::size_t>(npes_), 0);
  outstanding_.resize(static_cast<std::size_t>(npes_));
  fifo_last_.reset(npes_);
}

runtime::RunResult World::run(runtime::Engine& engine,
                              const std::function<void(Ctx&)>& body,
                              Options opt) {
  World world(engine, opt);
  return engine.run([&world, &body](runtime::Rank& rank) {
    Ctx ctx(&world, &rank);
    body(ctx);
  });
}

simnet::TimeUs World::clamp_fifo(int src, int dst, simnet::TimeUs arrival) {
  simnet::TimeUs& last = fifo_last_.at(src, dst);
  last = std::max(last, arrival);
  return last;
}

void World::chk_register_locked() {
  auto& chk = engine_.checker();
  if (!chk.enabled() || chk_space_ >= 0) return;
  chk_space_ = chk.add_space("symheap");
  // barrier_all implies quiet(): its completion clears the symheap's access
  // history, so races are only reported within one barrier interval.
  chk_chan_ = chk.add_channel("shmem.world", chk_space_);
}

void World::apply_locked(int pe, simnet::TimeUs cutoff) {
  auto& pend = pending_[static_cast<std::size_t>(pe)];
  if (pend.empty()) return;
  auto it = std::partition(pend.begin(), pend.end(), [&](const Delivery& d) {
    return d.arrival > cutoff;
  });
  std::vector<Delivery> ready(std::make_move_iterator(it),
                              std::make_move_iterator(pend.end()));
  pend.erase(it, pend.end());
  std::sort(ready.begin(), ready.end(), [](const Delivery& a, const Delivery& b) {
    return a.arrival != b.arrival ? a.arrival < b.arrival : a.seq < b.seq;
  });
  std::byte* base = heap_[static_cast<std::size_t>(pe)].data();
  auto& metrics = engine_.metrics();
  auto& chk = engine_.checker();
  for (const Delivery& d : ready) {
    if (!d.data.empty()) std::memcpy(base + d.off, d.data.data(), d.data.size());
    if (d.has_signal) {
      std::memcpy(base + d.sig_off, &d.sig_val, sizeof(d.sig_val));
    }
    metrics.on_recv(pe, d.data_bytes);
    if (chk.enabled() && chk_space_ >= 0) {
      chk.on_applied(chk_space_, pe, check::PutHandles{d.chk_data, d.chk_sig});
    }
  }
}

const simnet::LogGP& Ctx::params() const {
  return world_->engine_.platform().params(simnet::Runtime::kShmem);
}

std::uint64_t Ctx::alloc_bytes(std::uint64_t bytes, std::uint64_t align) {
  // Collective symmetric allocation: the k-th call on every PE returns the
  // same offset. The first PE to reach index k advances the shared bump
  // pointer; the others verify the size and reuse the logged offset.
  std::uint64_t offset = 0;
  const int my_index = allocs_done_++;
  world_->engine_.perform(*rank_, [&] {
    auto& log = world_->alloc_log_;
    if (my_index == static_cast<int>(log.size())) {
      std::uint64_t off = world_->heap_used_;
      off = (off + align - 1) / align * align;
      MRL_CHECK_MSG(
          off + bytes <= world_->opt_.heap_bytes,
          "symmetric heap exhausted (raise World::Options::heap_bytes)");
      world_->heap_used_ = off + bytes;
      log.emplace_back(bytes, off);
    }
    MRL_CHECK_MSG(my_index < static_cast<int>(log.size()),
                  "shmem allocate() calls out of order across PEs");
    const auto& rec = log[static_cast<std::size_t>(my_index)];
    MRL_CHECK_MSG(rec.first == bytes,
                  "asymmetric shmem allocation (PEs disagree on size)");
    offset = rec.second;
  });
  return offset;
}

void Ctx::put_bytes_nbi(std::uint64_t dest_off, const void* src,
                        std::uint64_t bytes, int target_pe,
                        std::uint64_t sig_off, std::uint64_t sig_val,
                        bool has_signal) {
  MRL_CHECK(target_pe >= 0 && target_pe < n_pes());
  const simnet::LogGP& pp = params();
  rank_->advance(pp.o_us);  // ONE operation per message
  auto& eng = world_->engine_;
  eng.perform(*rank_, [&] {
    MRL_CHECK_MSG(dest_off + bytes <= world_->opt_.heap_bytes,
                  "put outside symmetric heap");
    simnet::TransferParams tp;
    tp.src_ep = rank_->endpoint();
    tp.dst_ep = eng.platform().endpoint_of_rank(target_pe, n_pes());
    tp.src_rank = pe();
    tp.pump_gbs = eng.platform().rank_pump_gbs();
    tp.bytes = bytes + (has_signal ? 8 : 0);
    tp.start_us = rank_->now();
    tp.sw_latency_us = pp.L_us;
    tp.inj_gap_us = pp.g_us;
    tp.per_stream_gbs = pp.per_stream_gbs;
    const simnet::TransferResult tr = eng.fabric().transfer(tp);
    const simnet::TimeUs arrival =
        world_->clamp_fifo(pe(), target_pe, tr.arrival_us);

    World::Delivery d;
    d.off = dest_off;
    d.data_bytes = bytes;
    if (bytes > 0 && world_->opt_.capture_payloads) {
      const auto* p = static_cast<const std::byte*>(src);
      d.data.assign(p, p + bytes);
    }
    d.has_signal = has_signal;
    d.sig_off = sig_off;
    d.sig_val = sig_val;
    d.arrival = arrival;
    d.seq = world_->seq_++;
    auto& chk = eng.checker();
    if (chk.enabled()) {
      world_->chk_register_locked();
      const check::PutHandles h = chk.on_put(
          pe(), world_->chk_space_, target_pe, dest_off, bytes,
          has_signal ? check::PutClass::kFused : check::PutClass::kData,
          sig_off, rank_->now());
      d.chk_data = h.data;
      d.chk_sig = h.sig;
    }
    world_->pending_[static_cast<std::size_t>(target_pe)].push_back(
        std::move(d));
    // Advance the target's delivery gate counter: a PE parked in a gated
    // signal wait (wait_local) is only re-evaluated when this moves.
    ++world_->delivery_pushes_[static_cast<std::size_t>(target_pe)];
    world_->outstanding_[static_cast<std::size_t>(pe())].push_back(
        World::Outstanding{target_pe, arrival, tr.inject_free_us});
    eng.record_msg(simnet::MsgRecord{
        pe(), target_pe, bytes, rank_->now(), arrival,
        has_signal ? simnet::OpKind::kPutSignal : simnet::OpKind::kPut,
        rank_->epoch(), tr.drops, tr.queue_us, tr.ser_us, tr.dlink});
  });
}

void Ctx::get_bytes(void* dest, std::uint64_t src_off, std::uint64_t bytes,
                    int target_pe) {
  MRL_CHECK(target_pe >= 0 && target_pe < n_pes());
  const simnet::LogGP& pp = params();
  rank_->advance(pp.o_us);
  auto& eng = world_->engine_;
  const simnet::TimeUs t0 = rank_->now();
  double total_us = 0;
  double q_us = 0;
  double s_us = 0;
  eng.perform(*rank_, [&] {
    const double rtt = eng.platform().hw_rtt_us(pe(), target_pe, n_pes());
    const double bw = eng.platform().pair_peak_gbs(pe(), target_pe, n_pes());
    // Fault extras (jitter/outage stalls, retransmit timeouts, origin
    // backoff) are all zero on a pristine fabric.
    const simnet::RoundTripFault rtf = eng.fabric().sample_round_trip(
        rank_->endpoint(), eng.platform().endpoint_of_rank(target_pe, n_pes()),
        rank_->now());
    q_us = rtf.extra_us + eng.fabric().faults().backoff_us(rtf.drops);
    s_us = static_cast<double>(bytes) * gbs_to_us_per_byte(bw);
    total_us = pp.L_us + rtt + s_us + q_us;
    std::memcpy(
        dest,
        world_->heap_[static_cast<std::size_t>(target_pe)].data() + src_off,
        bytes);
    auto& chk = eng.checker();
    if (chk.enabled()) {
      world_->chk_register_locked();
      chk.on_get(pe(), world_->chk_space_, target_pe, src_off, bytes,
                 rank_->now());
    }
  });
  rank_->advance(total_us);
  // SHMEM gets were never traced (and adding a record would change existing
  // trace/CSV bytes), so they are counted through the metrics-only hook.
  eng.metrics().on_get(pe(), bytes);
  eng.record_advance_span(*rank_, simnet::SpanKind::kGet, t0, target_pe,
                          bytes, q_us, s_us);
}

void Ctx::wait_local(const char* what, const std::function<bool()>& pred) {
  auto& eng = world_->engine_;
  auto& pend = world_->pending_[static_cast<std::size_t>(pe())];
  // Gate counter for this PE's signal waits (DESIGN.md §12): while I am
  // blocked here pending_ can only grow (barrier_all is collective, nobody
  // else drains my queue), and every growth bumps the counter.
  const std::uint64_t& ctr =
      world_->delivery_pushes_[static_cast<std::size_t>(pe())];
  for (;;) {
    bool ok = false;
    eng.perform(*rank_, [&] {
      world_->apply_locked(pe(), rank_->now());
      ok = pred();
    });
    if (ok) {
      rank_->bump_epoch();
      return;
    }
    eng.wait(
        *rank_, what,
        [&]() -> std::optional<double> {
          if (pend.empty()) return std::nullopt;
          double first = pend.front().arrival;
          for (const World::Delivery& d : pend) {
            first = std::min(first, d.arrival);
          }
          return first;
        },
        [&] { world_->apply_locked(pe(), rank_->now()); },
        runtime::WaitGate{&ctr, ctr + 1});
  }
}

// Marks the watched signal words as an atomic-class read on the waiting PE
// (so data puts racing with the poll are flagged, but the paired put_signal's
// own signal word never self-flags). Exactly one rank executes at a time, so
// touching the checker from rank context is race-free and deterministic.
void Ctx::note_signal_wait(std::uint64_t off, std::uint64_t bytes) {
  auto& chk = world_->engine_.checker();
  if (!chk.enabled()) return;
  world_->chk_register_locked();
  chk.on_signal_wait(pe(), world_->chk_space_, off, bytes, now());
}

void Ctx::wait_until(Sym<std::uint64_t> sig, std::uint64_t val) {
  note_signal_wait(sig.offset, 8);
  const std::uint64_t* p = local(sig);
  wait_local("shmem.wait_until", [p, val] { return *p == val; });
}

std::size_t Ctx::wait_until_any(Sym<std::uint64_t> sigs, std::size_t n,
                                const std::int32_t* status,
                                std::uint64_t val) {
  note_signal_wait(sigs.offset, n * 8);
  const std::uint64_t* p = local(sigs);
  std::size_t found = n;
  wait_local("shmem.wait_until_any", [&, p, val] {
    for (std::size_t i = 0; i < n; ++i) {
      if (status != nullptr && status[i] != 0) continue;
      if (p[i] == val) {
        found = i;
        return true;
      }
    }
    return false;
  });
  MRL_CHECK(found < n);
  return found;
}

void Ctx::wait_until_all(Sym<std::uint64_t> sigs, std::size_t n,
                         const std::int32_t* status, std::uint64_t val) {
  note_signal_wait(sigs.offset, n * 8);
  const std::uint64_t* p = local(sigs);
  wait_local("shmem.wait_until_all", [&, p, val] {
    for (std::size_t i = 0; i < n; ++i) {
      if (status != nullptr && status[i] != 0) continue;
      if (p[i] != val) return false;
    }
    return true;
  });
}

void Ctx::quiet() {
  const simnet::LogGP& pp = params();
  rank_->advance(pp.o_us);
  auto& eng = world_->engine_;
  const simnet::TimeUs t0 = rank_->now();
  eng.perform(*rank_, [&] {
    auto& outs = world_->outstanding_[static_cast<std::size_t>(pe())];
    simnet::TimeUs done = rank_->now();
    for (const World::Outstanding& o : outs) {
      done = std::max(done, o.remote_done);
    }
    outs.clear();
    if (done > rank_->now()) rank_->advance(done - rank_->now());
    auto& chk = eng.checker();
    if (chk.enabled() && world_->chk_space_ >= 0) {
      chk.on_flush(pe(), world_->chk_space_, /*target=*/-1);
    }
  });
  eng.record_advance_span(*rank_, simnet::SpanKind::kQuiet, t0, -1, 0);
  rank_->bump_epoch();
}

std::uint64_t Ctx::atomic_rmw(std::uint64_t target_off, std::uint64_t operand,
                              std::uint64_t compare, bool is_cas,
                              int target_pe) {
  MRL_CHECK(target_pe >= 0 && target_pe < n_pes());
  const simnet::LogGP& pp = params();
  rank_->advance(pp.atomic_o());
  auto& eng = world_->engine_;
  std::uint64_t old = 0;
  const simnet::TimeUs t0 = rank_->now();
  double total_us = 0;
  double q_us = 0;
  double s_us = 0;
  eng.perform(*rank_, [&] {
    MRL_CHECK(target_off + 8 <= world_->opt_.heap_bytes);
    auto* p = reinterpret_cast<std::uint64_t*>(
        world_->heap_[static_cast<std::size_t>(target_pe)].data() +
        target_off);
    old = *p;
    if (is_cas) {
      if (old == compare) *p = operand;
      eng.metrics().on_cas_attempt(pe(), old == compare);
    } else {
      *p = old + operand;
    }
    auto& chk = eng.checker();
    if (chk.enabled()) {
      world_->chk_register_locked();
      chk.on_atomic(pe(), world_->chk_space_, target_pe, target_off,
                    rank_->now());
    }
    // Request/response through the fabric (atomics contend on link lanes,
    // e.g. the Summit X-Bus per-transaction occupancy).
    simnet::TransferParams req;
    req.src_ep = rank_->endpoint();
    req.dst_ep = eng.platform().endpoint_of_rank(target_pe, n_pes());
    req.src_rank = pe();
    req.bytes = 8;
    req.start_us = rank_->now();
    req.sw_latency_us = pp.atomic_L_us / 2;
    const simnet::TransferResult r1 = eng.fabric().transfer(req);
    simnet::TransferParams rsp = req;
    rsp.src_ep = req.dst_ep;
    rsp.dst_ep = req.src_ep;
    rsp.src_rank = target_pe;
    rsp.start_us = r1.arrival_us;
    const simnet::TransferResult r2 = eng.fabric().transfer(rsp);
    // Retry-with-backoff accounting: dropped attempts paid their retransmit
    // timeouts inside transfer(); the origin also backs off exponentially.
    const int drops = r1.drops + r2.drops;
    const double backoff = eng.fabric().faults().backoff_us(drops);
    total_us = r2.arrival_us - rank_->now() + backoff;
    // Decomposition over both legs; the dominant-queueing leg names the link.
    q_us = r1.queue_us + r2.queue_us + backoff;
    s_us = r1.ser_us + r2.ser_us;
    const std::int32_t dlink =
        r1.queue_us >= r2.queue_us ? r1.dlink : r2.dlink;
    eng.record_msg(simnet::MsgRecord{pe(), target_pe, 8, rank_->now(),
                                     rank_->now() + total_us,
                                     simnet::OpKind::kAtomic, rank_->epoch(),
                                     drops, q_us, s_us, dlink});
  });
  rank_->advance(total_us);
  eng.record_advance_span(*rank_, simnet::SpanKind::kAtomic, t0, target_pe, 8,
                          q_us, s_us);
  return old;
}

std::uint64_t Ctx::atomic_compare_swap(Sym<std::uint64_t> target,
                                       std::uint64_t compare,
                                       std::uint64_t value, int target_pe) {
  return atomic_rmw(target.offset, value, compare, /*is_cas=*/true, target_pe);
}

std::uint64_t Ctx::atomic_fetch_add(Sym<std::uint64_t> target,
                                    std::uint64_t add, int target_pe) {
  return atomic_rmw(target.offset, add, 0, /*is_cas=*/false, target_pe);
}

void Ctx::barrier_all() { sum_all_kind("barrier_all", 0.0); }

double Ctx::sum_all(double v) { return sum_all_kind("sum_all", v); }

double Ctx::sum_all_kind(const char* kind, double v) {
  const simnet::LogGP& pp = params();
  rank_->advance(pp.o_us);
  auto& eng = world_->engine_;
  const double rounds =
      std::ceil(std::log2(static_cast<double>(std::max(2, n_pes()))));
  const double cost = rounds * (2.0 * pp.o_us + pp.L_us);

  std::uint64_t my_gen = 0;
  eng.perform(*rank_, [&] {
    my_gen = world_->gen_;
    if (world_->entered_ == 0) {
      world_->acc_sum_ = 0;
      world_->max_enter_ = 0;
    }
    ++world_->entered_;
    world_->max_enter_ = std::max(world_->max_enter_, rank_->now());
    world_->acc_sum_ += v;
    if (world_->entered_ == n_pes()) {
      // barrier also implies quiet(): everything lands before it completes.
      simnet::TimeUs done = world_->max_enter_ + cost;
      for (int r = 0; r < n_pes(); ++r) {
        for (const World::Delivery& d :
             world_->pending_[static_cast<std::size_t>(r)]) {
          done = std::max(done, d.arrival);
        }
        world_->apply_locked(r, simnet::kTimeInf);
        world_->outstanding_[static_cast<std::size_t>(r)].clear();
      }
      World::CollSlot& slot = world_->done_[my_gen % 4];
      slot.gen = my_gen;
      slot.done_at = done;
      slot.sum = world_->acc_sum_;
      world_->entered_ = 0;
      ++world_->gen_;
    }
    auto& chk = eng.checker();
    if (chk.enabled()) {
      world_->chk_register_locked();
      // Enter AFTER the last entrant's apply loop above: applying reports
      // put handles back to the checker, and the channel's space-clear on
      // the final entry would otherwise dangle them.
      const check::CollEnter ce = chk.on_collective_enter(
          world_->chk_chan_, pe(), check::CollSig{kind, -1, 0}, rank_->now());
      if (!ce.ok) {
        // A kind-blind rendezvous pairing barrier_all with sum_all would
        // silently corrupt the reduction; abort with the diagnostic.
        eng.abort_run(*rank_, ErrorCode::kFailedPrecondition, chk.report());
      }
    }
  });
  const World::CollSlot& slot = world_->done_[my_gen % 4];
  // Gated on the barrier generation (see runtime::WaitGate, DESIGN.md §10).
  eng.wait(
      *rank_, "shmem.barrier_all",
      [&]() -> std::optional<double> {
        if (world_->gen_ <= my_gen) return std::nullopt;
        MRL_CHECK(slot.gen == my_gen);
        return slot.done_at;
      },
      {}, runtime::WaitGate{&world_->gen_, my_gen + 1});
  auto& chk = eng.checker();
  if (chk.enabled() && world_->chk_chan_ >= 0) {
    chk.on_collective_complete(world_->chk_chan_, pe(), my_gen);
  }
  rank_->bump_epoch();
  eng.metrics().on_collective(pe());
  return slot.sum;
}

void Ctx::local_access(std::uint64_t off, std::uint64_t bytes, bool is_write) {
  auto& chk = world_->engine_.checker();
  if (!chk.enabled() || world_->chk_space_ < 0) return;
  // A read overlapping a delivery that has arrived but was not yet applied
  // on this PE means the program skipped the wait_until/barrier that would
  // have drained it — exactly the missing-synchronization bug. Exactly one
  // rank executes at a time, so the direct scan is race-free and
  // deterministic.
  bool unapplied = false;
  for (const World::Delivery& d :
       world_->pending_[static_cast<std::size_t>(pe())]) {
    if (d.arrival > now()) continue;
    const bool data_hit =
        d.off < off + bytes && off < d.off + d.data_bytes;
    const bool sig_hit =
        d.has_signal && d.sig_off < off + bytes && off < d.sig_off + 8;
    if (data_hit || sig_hit) {
      unapplied = true;
      break;
    }
  }
  chk.on_local(pe(), world_->chk_space_, off, bytes, is_write, unapplied,
               now());
}

}  // namespace mrl::shmem
