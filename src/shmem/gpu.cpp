#include "shmem/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace mrl::shmem {

double GpuExecModel::stream_time_us(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * gbs_to_us_per_byte(cm_->membw_gbs);
}

double GpuExecModel::occupancy_time_us(std::uint64_t items,
                                       double item_us) const {
  const auto lanes_u = static_cast<std::uint64_t>(std::max(1, cm_->lanes));
  const std::uint64_t waves = (items + lanes_u - 1) / lanes_u;
  return static_cast<double>(waves) * item_us;
}

double GpuExecModel::kernel_time_us(std::uint64_t bytes_touched,
                                    std::uint64_t items,
                                    double item_us) const {
  return std::max(stream_time_us(bytes_touched),
                  occupancy_time_us(items, item_us));
}

}  // namespace mrl::shmem
