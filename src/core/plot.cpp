#include "core/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/status.hpp"

namespace mrl::core {

AsciiPlot::AsciiPlot(std::string title, std::string xlabel, std::string ylabel,
                     int width, int height)
    : title_(std::move(title)),
      xlabel_(std::move(xlabel)),
      ylabel_(std::move(ylabel)),
      width_(width),
      height_(height) {
  MRL_CHECK(width_ >= 20 && height_ >= 8);
}

void AsciiPlot::add_series(Series s) {
  MRL_CHECK(s.xs.size() == s.ys.size());
  series_.push_back(std::move(s));
}

std::string AsciiPlot::render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (s.xs[i] <= 0 || s.ys[i] <= 0) continue;  // log scale: skip
      any = true;
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, s.ys[i]);
      ymax = std::max(ymax, s.ys[i]);
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  if (!any) {
    os << "(no data)\n";
    return os.str();
  }
  const double lx0 = std::log10(xmin), lx1 = std::log10(xmax * 1.0001);
  const double ly0 = std::log10(ymin), ly1 = std::log10(ymax * 1.0001);
  const double xspan = std::max(lx1 - lx0, 1e-9);
  const double yspan = std::max(ly1 - ly0, 1e-9);

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (s.xs[i] <= 0 || s.ys[i] <= 0) continue;
      const int cx = static_cast<int>((std::log10(s.xs[i]) - lx0) / xspan *
                                      (width_ - 1));
      const int cy = static_cast<int>((std::log10(s.ys[i]) - ly0) / yspan *
                                      (height_ - 1));
      const int row = height_ - 1 - std::clamp(cy, 0, height_ - 1);
      const int col = std::clamp(cx, 0, width_ - 1);
      char& cell = grid[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == s.symbol) ? s.symbol : '@';
    }
  }

  char buf[64];
  for (int r = 0; r < height_; ++r) {
    const double ly = ly1 - (ly1 - ly0) * r / (height_ - 1);
    if (r % 4 == 0 || r == height_ - 1) {
      std::snprintf(buf, sizeof(buf), "%9.3g |", std::pow(10.0, ly));
      os << buf;
    } else {
      os << "          |";
    }
    os << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "          +" << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  // x tick labels at the edges and middle.
  std::snprintf(buf, sizeof(buf), "%11.3g", std::pow(10.0, lx0));
  os << buf;
  const int mid_pad = width_ / 2 - 8;
  os << std::string(static_cast<std::size_t>(std::max(1, mid_pad)), ' ');
  std::snprintf(buf, sizeof(buf), "%.3g", std::pow(10.0, (lx0 + lx1) / 2));
  os << buf;
  std::snprintf(buf, sizeof(buf), "%14.3g", std::pow(10.0, lx1));
  os << std::string(static_cast<std::size_t>(std::max(
            1, width_ - mid_pad - 20)), ' ')
     << buf << '\n';
  os << "   x: " << xlabel_ << "   y: " << ylabel_ << '\n';
  for (const Series& s : series_) {
    os << "   [" << s.symbol << "] " << s.label << '\n';
  }
  return os.str();
}

}  // namespace mrl::core
