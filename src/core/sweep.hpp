// Bandwidth sweep drivers: run real communication code on the simulated
// fabric over a (message size x messages-per-sync) grid and report sustained
// bandwidth — the "empirical dots" of the paper's Figs 1, 3, 4.
//
// Benchmark shapes (windowed, like osu_bw):
//   two-sided      — sender: m x MPI_Isend + Waitall + wait for 0-byte ack;
//                    receiver: m x Irecv + Waitall + Isend(ack).
//   one-sided MPI  — origin: m x MPI_Put + MPI_Win_flush(target); the flush
//                    waits for remote completion, giving intrinsic
//                    back-pressure (no ack message needed).
//   SHMEM          — PE: m x put_signal_nbi + quiet.
//   atomic CAS     — m blocking compare-and-swaps (latency probe).
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "simnet/platform.hpp"
#include "util/status.hpp"

namespace mrl::core {

enum class SweepKind {
  kTwoSided,
  kOneSidedMpi,
  kShmemPutSignal,
  kAtomicCas,
};

std::string to_string(SweepKind k);

struct SweepConfig {
  SweepKind kind = SweepKind::kTwoSided;
  std::vector<std::uint64_t> msg_sizes;       ///< bytes per message
  std::vector<std::uint64_t> msgs_per_sync;   ///< the concurrency axis
  int iters = 10;                             ///< sync windows per point
  int nranks = 2;
  int sender = 0;
  int receiver = 1;
  /// Concurrent grid points (each on its own engine). <= 0 uses
  /// core::default_jobs(); 1 is the exact sequential legacy path. Results
  /// are bit-identical for every value — grid points are isolated
  /// simulations written to pre-assigned output slots.
  int jobs = 0;

  /// Default grid: sizes 8 B .. 4 MiB (x4), msg/sync 1 .. 1e4 (x10).
  static SweepConfig defaults(SweepKind kind);
};

/// Runs the sweep on `platform`; one engine run per grid point. Grid points
/// execute `cfg.jobs`-wide in parallel; output order matches the
/// (msg_sizes x msgs_per_sync) iteration order regardless of jobs.
///
/// A grid point that ends in deadlock or trips the engine's virtual-time
/// watchdog (possible under an aggressive FaultSpec) surfaces as an error
/// Status — the first failing point in grid order, independent of `jobs`.
Result<std::vector<SweepPoint>> run_sweep(const simnet::Platform& platform,
                                          const SweepConfig& cfg);

/// Mean latency of one blocking remote atomic CAS between two ranks
/// (Fig 4's 0.8 us / 1.0 us / 1.6 us probes).
double measure_cas_latency_us(const simnet::Platform& platform, int nranks,
                              int origin, int target, int reps = 64);

/// Fits roofline parameters from a fresh sweep on the platform. `jobs`
/// forwards to SweepConfig::jobs (<= 0 = core::default_jobs()).
Result<RooflineParams> calibrate_roofline(const simnet::Platform& platform,
                                          SweepKind kind, int jobs = 0);

}  // namespace mrl::core
