// Figure assembly: turns model ceilings + empirical points into the paper's
// Message Roofline figures (ASCII plot + table + CSV rows).
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "simnet/trace.hpp"

namespace mrl::core {

/// A workload dot on the roofline (Fig 6): where an application's observed
/// (message size, msg/sync, sustained GB/s) sits against the ceilings.
struct WorkloadDot {
  std::string label;
  double bytes = 0;
  double msgs_per_sync = 1;
  double measured_gbs = 0;
};

/// One complete Message Roofline figure.
class RooflineFigure {
 public:
  RooflineFigure(std::string title, RooflineParams params);

  /// Adds the rounded-model ceiling curves for the given msg/sync values
  /// (each is a curve over message size).
  void add_model_curves(const std::vector<double>& msgs_per_sync,
                        double min_bytes = 8, double max_bytes = 4 << 20);

  /// Adds the sharp-model single-message roofline for reference.
  void add_sharp_curve(double min_bytes = 8, double max_bytes = 4 << 20);

  /// Adds empirical sweep points as one series.
  void add_points(const std::string& label, char symbol,
                  const std::vector<SweepPoint>& points);

  /// Adds a named workload dot.
  void add_dot(const WorkloadDot& dot);

  /// ASCII plot + parameter line + dot table.
  [[nodiscard]] std::string render() const;

  /// CSV rows: series,label,bytes,msgs_per_sync,gbs.
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;

 private:
  struct PointSeries {
    std::string label;
    char symbol;
    std::vector<SweepPoint> points;
  };
  std::string title_;
  RooflineParams params_;
  std::vector<double> curve_msync_;
  double curve_min_bytes_ = 8;
  double curve_max_bytes_ = 4 << 20;
  bool sharp_ = false;
  std::vector<PointSeries> series_;
  std::vector<WorkloadDot> dots_;
};

/// Derives a workload's roofline dot from its recorded trace (data-message
/// kinds only; signals are runtime overhead, matching Table II accounting).
WorkloadDot dot_from_trace(const std::string& label,
                           const simnet::Trace& trace, simnet::OpKind kind);

}  // namespace mrl::core
