#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace mrl::core {

namespace {

int hardware_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

std::atomic<int> g_default_jobs{0};  // 0 = not overridden yet

}  // namespace

int default_jobs() {
  const int j = g_default_jobs.load(std::memory_order_relaxed);
  return j >= 1 ? j : hardware_jobs();
}

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs >= 1 ? jobs : 0, std::memory_order_relaxed);
}

int resolve_jobs(int jobs) { return jobs >= 1 ? jobs : default_jobs(); }

void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(int, std::size_t)>& fn) {
  MRL_CHECK(static_cast<bool>(fn));
  jobs = resolve_jobs(jobs);
  if (n == 0) return;
  if (jobs == 1 || n == 1) {
    // Exact sequential legacy path: caller's thread, ascending order.
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  const int nworkers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto work = [&](int worker) {
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(worker, i);
      } catch (...) {
        {
          std::lock_guard lk(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        return;
      }
    }
  };

  // Worker 0 is the calling thread, so jobs == N spins up N-1 extra threads
  // and the pool degrades gracefully when the grid is small.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int w = 1; w < nworkers; ++w) {
    threads.emplace_back(work, w);
  }
  work(0);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mrl::core
