// Message-splitting analysis (paper Fig 10): transmit a fixed message VOLUME
// as k concurrent smaller put-with-signal messages. On channelized links
// (NVLink port groups) a single stream rides one lane, so splitting buys
// aggregate bandwidth until per-message overhead dominates.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/platform.hpp"

namespace mrl::core {

struct SplitPoint {
  std::uint64_t volume_bytes = 0;  ///< total bytes per sync window
  int ways = 1;                    ///< number of concurrent messages
  double time_us = 0;              ///< one sync window (puts + quiet)
  double gbs = 0;
  double speedup_vs_1 = 0;         ///< filled by run_split_sweep
};

struct SplitConfig {
  std::vector<std::uint64_t> volumes;  ///< default 1 KiB .. 16 MiB
  std::vector<int> ways;               ///< default {1, 2, 4, 8}
  int iters = 8;
  int sender = 0;
  int receiver = 1;
  int nranks = 2;

  static SplitConfig defaults();
};

/// Runs the split sweep with SHMEM put-with-signal on `platform` (meant for
/// the GPU platforms; works on any).
std::vector<SplitPoint> run_split_sweep(const simnet::Platform& platform,
                                        const SplitConfig& cfg);

}  // namespace mrl::core
