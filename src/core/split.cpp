#include "core/split.hpp"

#include <algorithm>
#include <map>

#include "shmem/shmem.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::core {

SplitConfig SplitConfig::defaults() {
  SplitConfig cfg;
  for (std::uint64_t v = 1024; v <= (16ull << 20); v *= 2) {
    cfg.volumes.push_back(v);
  }
  cfg.ways = {1, 2, 4, 8};
  return cfg;
}

std::vector<SplitPoint> run_split_sweep(const simnet::Platform& platform,
                                        const SplitConfig& cfg) {
  MRL_CHECK(!cfg.volumes.empty() && !cfg.ways.empty());
  std::vector<SplitPoint> out;
  for (std::uint64_t volume : cfg.volumes) {
    for (int ways : cfg.ways) {
      MRL_CHECK(ways >= 1);
      const std::uint64_t chunk = volume / static_cast<std::uint64_t>(ways);
      MRL_CHECK_MSG(chunk > 0, "volume smaller than split ways");

      runtime::Engine eng(platform, cfg.nranks);
      double elapsed = 0;
      shmem::World::Options opt;
      opt.heap_bytes = std::max<std::uint64_t>(volume + 64 * 8, 1u << 20);
      opt.capture_payloads = false;  // timing-only transfers
      const auto res = shmem::World::run(
          eng,
          [&](shmem::Ctx& s) {
            auto data = s.allocate<std::byte>(volume);
            auto sig = s.allocate<std::uint64_t>(
                static_cast<std::uint64_t>(ways));
            std::vector<std::byte> origin(chunk);
            s.barrier_all();
            const double t0 = s.now();
            if (s.pe() == cfg.sender) {
              for (int it = 0; it < cfg.iters; ++it) {
                for (int j = 0; j < ways; ++j) {
                  s.put_signal_nbi(
                      data.at(static_cast<std::uint64_t>(j) * chunk),
                      origin.data(), chunk,
                      sig.at(static_cast<std::uint64_t>(j)), 1, cfg.receiver);
                }
                s.quiet();
              }
              elapsed = s.now() - t0;
            }
            s.barrier_all();
          },
          opt);
      MRL_CHECK_MSG(res.ok(), res.status.message().c_str());

      SplitPoint pt;
      pt.volume_bytes = volume;
      pt.ways = ways;
      pt.time_us = elapsed / cfg.iters;
      pt.gbs = bytes_per_us_to_gbs(
          static_cast<double>(volume) * cfg.iters, elapsed);
      out.push_back(pt);
    }
  }
  // Fill speedups relative to the unsplit (ways == 1) time per volume.
  std::map<std::uint64_t, double> base;
  for (const SplitPoint& p : out) {
    if (p.ways == 1) base[p.volume_bytes] = p.time_us;
  }
  for (SplitPoint& p : out) {
    const auto it = base.find(p.volume_bytes);
    if (it != base.end() && p.time_us > 0) {
      p.speedup_vs_1 = it->second / p.time_us;
    }
  }
  return out;
}

}  // namespace mrl::core
