// Deterministic task pool for embarrassingly parallel sweep/bench work.
//
// Every figure and calibration in this repo is assembled from hundreds of
// *independent* engine runs (one per grid point). parallel_for_indexed()
// runs those points concurrently while keeping the output bit-identical to
// the sequential order: each index owns a pre-assigned output slot, so the
// result layout never depends on completion order, and each point's engine
// is fully isolated (own fabric, own virtual clocks). `jobs == 1` takes an
// exact sequential fast path on the calling thread — no pool, no atomics —
// which doubles as the reference behavior for determinism tests.
#pragma once

#include <cstddef>
#include <functional>

namespace mrl::core {

/// Process-wide default for the `jobs` knob. Starts at
/// std::thread::hardware_concurrency(); bench binaries override it from
/// `--jobs N`. Always >= 1.
int default_jobs();

/// Sets the process-wide default; values < 1 reset to hardware concurrency.
void set_default_jobs(int jobs);

/// Resolves a per-call jobs request: <= 0 means "use default_jobs()".
int resolve_jobs(int jobs);

/// Runs fn(worker, index) for every index in [0, n), distributing indices
/// dynamically over min(jobs, n) workers. `worker` is a dense id in
/// [0, jobs) that is stable for the lifetime of one call — callers use it
/// to reuse per-worker scratch state (e.g. one runtime::Engine per worker)
/// across many indices. The first exception thrown by any fn invocation is
/// captured, remaining indices are abandoned as workers drain, and the
/// exception is rethrown on the calling thread after all workers joined.
/// jobs <= 0 resolves via resolve_jobs(); jobs == 1 (or n <= 1) runs inline
/// on the calling thread with worker == 0 — the exact legacy sequential
/// path.
void parallel_for_indexed(std::size_t n, int jobs,
                          const std::function<void(int, std::size_t)>& fn);

}  // namespace mrl::core
