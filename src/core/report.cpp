#include "core/report.hpp"

#include <cmath>
#include <sstream>

#include "core/plot.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mrl::core {

RooflineFigure::RooflineFigure(std::string title, RooflineParams params)
    : title_(std::move(title)), params_(params) {}

void RooflineFigure::add_model_curves(const std::vector<double>& msgs_per_sync,
                                      double min_bytes, double max_bytes) {
  curve_msync_ = msgs_per_sync;
  curve_min_bytes_ = min_bytes;
  curve_max_bytes_ = max_bytes;
}

void RooflineFigure::add_sharp_curve(double min_bytes, double max_bytes) {
  sharp_ = true;
  curve_min_bytes_ = min_bytes;
  curve_max_bytes_ = max_bytes;
}

void RooflineFigure::add_points(const std::string& label, char symbol,
                                const std::vector<SweepPoint>& points) {
  series_.push_back(PointSeries{label, symbol, points});
}

void RooflineFigure::add_dot(const WorkloadDot& dot) { dots_.push_back(dot); }

std::string RooflineFigure::render() const {
  RooflineModel model(params_);
  AsciiPlot plot(title_, "message size (bytes)", "sustained bandwidth (GB/s)");

  auto sample_sizes = [&] {
    std::vector<double> xs;
    for (double b = curve_min_bytes_; b <= curve_max_bytes_; b *= 1.5) {
      xs.push_back(b);
    }
    return xs;
  };

  static const char kCurveSymbols[] = {'.', ',', ':', ';', '\'', '`'};
  int ci = 0;
  for (double m : curve_msync_) {
    Series s;
    std::ostringstream label;
    label << "rounded model, msg/sync=" << m;
    s.label = label.str();
    s.symbol = kCurveSymbols[ci++ % 6];
    for (double b : sample_sizes()) {
      s.xs.push_back(b);
      s.ys.push_back(model.rounded_gbs(b, m));
    }
    plot.add_series(std::move(s));
  }
  if (sharp_) {
    Series s;
    s.label = "sharp model, msg/sync=1";
    s.symbol = '-';
    for (double b : sample_sizes()) {
      s.xs.push_back(b);
      s.ys.push_back(model.sharp_gbs(b, 1));
    }
    plot.add_series(std::move(s));
  }
  for (const PointSeries& ps : series_) {
    Series s;
    s.label = ps.label;
    s.symbol = ps.symbol;
    for (const SweepPoint& p : ps.points) {
      s.xs.push_back(p.bytes);
      s.ys.push_back(p.measured_gbs);
    }
    plot.add_series(std::move(s));
  }
  int di = 0;
  static const char kDotSymbols[] = {'O', 'X', 'H', 'S', 'D'};
  for (const WorkloadDot& d : dots_) {
    Series s;
    s.label = d.label + " (msg/sync=" + format_double(d.msgs_per_sync, 1) +
              ", " + format_bytes(static_cast<std::uint64_t>(d.bytes)) + ")";
    s.symbol = kDotSymbols[di++ % 5];
    s.xs = {d.bytes};
    s.ys = {d.measured_gbs};
    plot.add_series(std::move(s));
  }

  std::ostringstream os;
  os << plot.render();
  os << "model: " << params_.to_string() << '\n';
  if (!dots_.empty()) {
    TextTable t({"workload", "msg size", "msg/sync", "sustained",
                 "rounded bound", "% of bound"});
    RooflineModel m(params_);
    for (const WorkloadDot& d : dots_) {
      const double bound = m.rounded_gbs(d.bytes, d.msgs_per_sync);
      t.add_row({d.label, format_bytes(static_cast<std::uint64_t>(d.bytes)),
                 format_double(d.msgs_per_sync, 1), format_gbs(d.measured_gbs),
                 format_gbs(bound),
                 format_double(100.0 * d.measured_gbs / bound, 1)});
    }
    os << t.render("workload dots vs Message Roofline bound");
  }
  return os.str();
}

std::vector<std::vector<std::string>> RooflineFigure::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"series", "bytes", "msgs_per_sync", "gbs"});
  RooflineModel model(params_);
  for (double m : curve_msync_) {
    for (double b = curve_min_bytes_; b <= curve_max_bytes_; b *= 2) {
      rows.push_back({"model_m" + format_double(m, 0), format_double(b, 0),
                      format_double(m, 0),
                      format_double(model.rounded_gbs(b, m), 4)});
    }
  }
  for (const PointSeries& ps : series_) {
    for (const SweepPoint& p : ps.points) {
      rows.push_back({ps.label, format_double(p.bytes, 0),
                      format_double(p.msgs_per_sync, 0),
                      format_double(p.measured_gbs, 4)});
    }
  }
  for (const WorkloadDot& d : dots_) {
    rows.push_back({"dot:" + d.label, format_double(d.bytes, 0),
                    format_double(d.msgs_per_sync, 2),
                    format_double(d.measured_gbs, 4)});
  }
  return rows;
}

WorkloadDot dot_from_trace(const std::string& label,
                           const simnet::Trace& trace, simnet::OpKind kind) {
  const simnet::TraceSummary s = trace.summarize(kind);
  WorkloadDot d;
  d.label = label;
  d.bytes = s.avg_msg_bytes;
  d.msgs_per_sync = s.avg_msgs_per_sync;
  d.measured_gbs = s.sustained_gbs;
  return d;
}

}  // namespace mrl::core
