// Fitting Message Roofline parameters (o, L, peak) from empirical sweep
// points — "the diagonal ceilings (latency lines) are inferred based [on]
// the empirical data" (paper Figs 1, 3, 4).
#pragma once

#include <vector>

#include "core/model.hpp"

namespace mrl::core {

struct FitOptions {
  int coordinate_passes = 60;   ///< coordinate-descent sweeps
  int refine_steps = 40;        ///< golden-section steps per coordinate
};

struct FitResult {
  RooflineParams params;
  double rms_log_error = 0;  ///< RMS of log(model/measured)
};

/// Fits the rounded Message Roofline model to measured (B, m, GB/s) points
/// by minimizing squared log-bandwidth error with bounded coordinate
/// descent. Robust to the usual sweep shapes (needs points in both the
/// latency-bound and bandwidth-bound regimes for a well-conditioned fit).
FitResult fit_roofline(const std::vector<SweepPoint>& points,
                       FitOptions opt = {});

}  // namespace mrl::core
