// ASCII log-log plots: every figure bench renders its series in the
// terminal so the roofline shapes are inspectable without a plotting stack
// (each bench also dumps CSV for external tools).
#pragma once

#include <string>
#include <vector>

namespace mrl::core {

struct Series {
  std::string label;
  char symbol = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string xlabel, std::string ylabel,
            int width = 76, int height = 22);

  /// Adds a scatter/line series (points are plotted individually).
  void add_series(Series s);

  /// Renders grid, log-scale axes with decade ticks, points, and a legend.
  [[nodiscard]] std::string render() const;

 private:
  std::string title_, xlabel_, ylabel_;
  int width_, height_;
  std::vector<Series> series_;
};

}  // namespace mrl::core
