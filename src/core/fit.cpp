#include "core/fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace mrl::core {

namespace {

double rms_log_error(const RooflineParams& p,
                     const std::vector<SweepPoint>& pts) {
  RooflineModel m(p);
  double acc = 0;
  for (const SweepPoint& pt : pts) {
    const double model = m.rounded_gbs(pt.bytes, pt.msgs_per_sync);
    const double e = std::log(model / pt.measured_gbs);
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(pts.size()));
}

/// Golden-section minimization of f over [lo, hi] (log-spaced parameter).
template <typename F>
double golden_min(F&& f, double lo, double hi, int steps) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = std::log(lo);
  double b = std::log(hi);
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(std::exp(c));
  double fd = f(std::exp(d));
  for (int i = 0; i < steps; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(std::exp(c));
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(std::exp(d));
    }
  }
  return std::exp((a + b) / 2.0);
}

}  // namespace

FitResult fit_roofline(const std::vector<SweepPoint>& points,
                       FitOptions opt) {
  MRL_CHECK_MSG(points.size() >= 3, "need at least 3 points to fit");
  for (const SweepPoint& p : points) {
    MRL_CHECK(p.bytes > 0 && p.msgs_per_sync >= 1 && p.measured_gbs > 0);
  }

  // Initial guesses: peak from the fastest observation; L from the slowest
  // small-message single-message point; o from the high-m asymptote.
  RooflineParams cur;
  cur.peak_gbs = 0;
  double min_bytes = points.front().bytes;
  for (const SweepPoint& p : points) {
    cur.peak_gbs = std::max(cur.peak_gbs, p.measured_gbs);
    min_bytes = std::min(min_bytes, p.bytes);
  }
  cur.peak_gbs *= 1.05;
  cur.L_us = 3.0;
  cur.o_us = 0.3;

  const double o_lo = 1e-3;
  const double o_hi = 100.0;
  const double l_lo = 1e-2;
  const double l_hi = 1e3;
  const double bw_lo = cur.peak_gbs * 0.2;
  const double bw_hi = cur.peak_gbs * 2.0;

  for (int pass = 0; pass < opt.coordinate_passes; ++pass) {
    cur.o_us = golden_min(
        [&](double v) {
          RooflineParams t = cur;
          t.o_us = v;
          return rms_log_error(t, points);
        },
        o_lo, o_hi, opt.refine_steps);
    cur.L_us = golden_min(
        [&](double v) {
          RooflineParams t = cur;
          t.L_us = v;
          return rms_log_error(t, points);
        },
        l_lo, l_hi, opt.refine_steps);
    cur.peak_gbs = golden_min(
        [&](double v) {
          RooflineParams t = cur;
          t.peak_gbs = v;
          return rms_log_error(t, points);
        },
        bw_lo, bw_hi, opt.refine_steps);
  }

  FitResult res;
  res.params = cur;
  res.rms_log_error = rms_log_error(cur, points);
  return res;
}

}  // namespace mrl::core
